package spantree

import "spantree/internal/core"

// Test-only access to the work-stealing algorithm's ablation toggles,
// which are deliberately not part of the public Options.

type wsToggles struct {
	noSteal  bool
	noStub   bool
	stealOne bool
}

func findWS(g *Graph, p int, t wsToggles) ([]VID, error) {
	parent, _, err := core.SpanningForest(g, core.Options{
		NumProcs: p,
		Seed:     1,
		NoSteal:  t.noSteal,
		NoStub:   t.noStub,
		StealOne: t.stealOne,
	})
	return parent, err
}
