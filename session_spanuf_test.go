package spantree

import (
	"context"
	"errors"
	"testing"
	"time"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

// TestSessionSpanUFMatchesFind pins the pooled spanuf path to the
// one-shot public API across the session graph families: identical
// forests at p=1 (both deterministic), valid forests with equal root
// counts at p=4.
func TestSessionSpanUFMatchesFind(t *testing.T) {
	for name, g := range sessionFamilies() {
		fresh, err := Find(g, Options{Algorithm: AlgSpanUF, NumProcs: 1})
		if err != nil {
			t.Fatalf("%s: Find: %v", name, err)
		}
		s, err := NewSession(g, SessionOptions{Algorithm: AlgSpanUF, NumProcs: 1})
		if err != nil {
			t.Fatalf("%s: NewSession: %v", name, err)
		}
		if s.Algorithm() != AlgSpanUF {
			t.Fatalf("%s: Algorithm() = %v", name, s.Algorithm())
		}
		for run := 0; run < 3; run++ {
			res, err := s.Find(11)
			if err != nil {
				t.Fatalf("%s run %d: %v", name, run, err)
			}
			if res.SpanUF == nil || res.WorkStealing != nil {
				t.Fatalf("%s run %d: stats populated for the wrong algorithm", name, run)
			}
			for v := range fresh.Parent {
				if res.Parent[v] != fresh.Parent[v] {
					t.Fatalf("%s run %d: parent[%d] = %d, Find got %d",
						name, run, v, res.Parent[v], fresh.Parent[v])
				}
			}
			if res.Roots != fresh.Roots || res.TreeEdges != fresh.TreeEdges {
				t.Fatalf("%s run %d: roots/edges %d/%d, Find got %d/%d",
					name, run, res.Roots, res.TreeEdges, fresh.Roots, fresh.TreeEdges)
			}
		}
		s.Close()

		s4, err := NewSession(g, SessionOptions{Algorithm: AlgSpanUF, NumProcs: 4})
		if err != nil {
			t.Fatalf("%s: NewSession p=4: %v", name, err)
		}
		wantRoots := graph.NumComponents(g)
		for run := 0; run < 3; run++ {
			res, err := s4.Find(uint64(run) + 100)
			if err != nil {
				t.Fatalf("%s p=4 run %d: %v", name, run, err)
			}
			if err := Verify(g, res.Parent); err != nil {
				t.Fatalf("%s p=4 run %d: %v", name, run, err)
			}
			if res.Roots != wantRoots {
				t.Fatalf("%s p=4 run %d: %d roots, want %d", name, run, res.Roots, wantRoots)
			}
		}
		s4.Close()
	}
}

// TestSessionSpanUFZeroAlloc: the zero-steady-state-allocation serving
// guarantee holds for the spanuf workspace too, on both layouts.
func TestSessionSpanUFZeroAlloc(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, layout := range []Layout{LayoutWide, LayoutCompact} {
			s, err := NewSession(gen.Torus2D(32, 32), SessionOptions{
				Algorithm: AlgSpanUF, NumProcs: p, Layout: layout,
			})
			if err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, err := s.FindContext(context.Background(), 42); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("p=%d layout=%v: AllocsPerRun = %v, want 0", p, layout, avg)
			}
			s.Close()
		}
	}
}

// TestSessionSpanUFCancelThenReuse: the typed-error and reuse contract
// carries over to spanuf sessions.
func TestSessionSpanUFCancelThenReuse(t *testing.T) {
	g := gen.RandomConnected(400, 900, 3)
	s, err := NewSession(g, SessionOptions{Algorithm: AlgSpanUF, NumProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.FindContext(expired, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}

	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.FindContext(canceled, 2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}

	res, err := s.FindContext(context.Background(), 3)
	if err != nil {
		t.Fatalf("after cancels: %v", err)
	}
	if err := Verify(g, res.Parent); err != nil {
		t.Fatalf("after cancels: %v", err)
	}
}

// TestSessionRejectsUnpooledAlgorithms: only the two provisioned
// algorithms have workspaces behind them.
func TestSessionRejectsUnpooledAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgSV, AlgSVLocks, AlgSequentialBFS} {
		if _, err := NewSession(gen.Chain(10), SessionOptions{Algorithm: alg}); err == nil {
			t.Errorf("NewSession accepted %v", alg)
		}
	}
}
