// Package spantree finds spanning trees and spanning forests of
// undirected graphs in parallel on shared-memory machines.
//
// It is a faithful, production-grade implementation of the randomized
// work-stealing spanning-tree algorithm of Bader and Cong ("A Fast,
// Parallel Spanning Tree Algorithm for Symmetric Multiprocessors
// (SMPs)", IPDPS 2004), together with the baselines the paper evaluates
// against — sequential BFS/DFS traversal and the Shiloach-Vishkin and
// Hirschberg-Chandra-Sarwate PRAM algorithms adapted to SMPs — the
// paper's full set of graph generators, an independent result verifier,
// and the Helman-JáJá SMP cost model used to reproduce the paper's
// experimental figures.
//
// # Quick start
//
//	g := spantree.NewRandomGraph(1<<20, 3<<19, 42) // n vertices, 1.5n edges
//	res, err := spantree.Find(g, spantree.Options{
//		Algorithm: spantree.AlgWorkStealing,
//		NumProcs:  8,
//	})
//	if err != nil { ... }
//	// res.Parent[v] is v's parent in the forest (None for roots).
//
// Every algorithm returns a spanning forest for disconnected inputs,
// with exactly one root per connected component.
package spantree

import (
	"context"
	"fmt"
	"time"

	"spantree/internal/chaos"
	"spantree/internal/conncomp"
	"spantree/internal/core"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/spanas"
	"spantree/internal/spanhcs"
	"spantree/internal/spanlevel"
	"spantree/internal/spanrm"
	"spantree/internal/spanseq"
	"spantree/internal/spansv"
	"spantree/internal/spanuf"
	"spantree/internal/verify"
)

// Graph is an immutable undirected graph in compressed-sparse-row form.
type Graph = graph.Graph

// VID is a vertex identifier.
type VID = graph.VID

// Edge is an undirected edge.
type Edge = graph.Edge

// None marks the absence of a vertex (the parent of a root).
const None = graph.None

// ErrCanceled is returned (wrapped) by FindContext when the context is
// canceled mid-run; errors.Is(err, context.Canceled) also holds.
var ErrCanceled = fault.ErrCanceled

// ErrDeadline is returned (wrapped) by FindContext when the context's
// deadline expires mid-run; errors.Is(err, context.DeadlineExceeded)
// also holds.
var ErrDeadline = fault.ErrDeadline

// ErrStalled is returned by a session whose stuck-run watchdog
// (SessionOptions.StallBudget) observed no worker progress for a full
// stall budget. The run drained cooperatively and the session remains
// reusable.
var ErrStalled = fault.ErrStalled

// PanicError is the structured record of a worker panic recovered by
// the hardened runtime: the worker id, the panic value, and the stack.
// Find does not return it as an error for the work-stealing algorithm —
// the run degrades to sequential BFS and still yields a valid forest,
// with the PanicError recorded in Result.WorkStealing.Panic — but the
// other parallel algorithms surface it directly.
type PanicError = fault.PanicError

// AsPanicError returns the *PanicError in err's chain, if any.
func AsPanicError(err error) (*PanicError, bool) { return fault.AsPanicError(err) }

// ValidationError is the typed rejection returned by input validation:
// a machine-checkable code plus the first offending location.
type ValidationError = graph.ValidationError

// ValidationCode classifies a ValidationError.
type ValidationCode = graph.ValidationCode

// AsValidationError returns the *ValidationError in err's chain, if any.
func AsValidationError(err error) (*ValidationError, bool) {
	return graph.AsValidationError(err)
}

// ChaosEnabled reports whether this binary was built with the chaos
// build tag, i.e. whether Options.ChaosSeed can inject faults.
const ChaosEnabled = chaos.Enabled

// Algorithm selects the spanning-tree algorithm to run.
type Algorithm int

const (
	// AlgWorkStealing is the paper's algorithm: stub spanning tree plus
	// work-stealing graph traversal. The recommended default.
	AlgWorkStealing Algorithm = iota
	// AlgSequentialBFS is the best sequential algorithm (the paper's
	// reference line).
	AlgSequentialBFS
	// AlgSequentialDFS is the iterative depth-first variant.
	AlgSequentialDFS
	// AlgSequentialUF is the union-find edge sweep.
	AlgSequentialUF
	// AlgSV is Shiloach-Vishkin graft-and-shortcut with CAS elections.
	AlgSV
	// AlgSVLocks is the lock-based SV election variant (slow; kept for
	// the paper's ablation).
	AlgSVLocks
	// AlgHCS is the Hirschberg-Chandra-Sarwate style hook-to-minimum
	// variant.
	AlgHCS
	// AlgAwerbuchShiloach is the textbook Awerbuch-Shiloach algorithm
	// with explicit star detection and conditional + unconditional
	// hooks.
	AlgAwerbuchShiloach
	// AlgLevelBFS is a level-synchronous parallel BFS: same O((n+m)/p)
	// work as the work-stealing algorithm but one barrier per BFS level
	// instead of O(1) barriers in total.
	AlgLevelBFS
	// AlgSpanUF is the edge-centric CAS-hook spanning forest: one flat
	// parallel sweep over the edges through a lock-free union-find
	// (link-by-index with smaller-to-larger hooking, path-compressed
	// finds, a CAS per tree-edge election). No frontier queues and no
	// per-level barriers, so it is indifferent to graph diameter; the
	// traversal's queue-free complement (see internal/spanuf).
	AlgSpanUF
)

// String returns the canonical short name used by the CLI tools.
func (a Algorithm) String() string {
	switch a {
	case AlgWorkStealing:
		return "workstealing"
	case AlgSequentialBFS:
		return "seqbfs"
	case AlgSequentialDFS:
		return "seqdfs"
	case AlgSequentialUF:
		return "sequf"
	case AlgSV:
		return "sv"
	case AlgSVLocks:
		return "svlocks"
	case AlgHCS:
		return "hcs"
	case AlgAwerbuchShiloach:
		return "as"
	case AlgLevelBFS:
		return "levelbfs"
	case AlgSpanUF:
		return "spanuf"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a short name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("spantree: unknown algorithm %q", s)
}

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgWorkStealing, AlgSequentialBFS, AlgSequentialDFS, AlgSequentialUF,
		AlgSV, AlgSVLocks, AlgHCS, AlgAwerbuchShiloach, AlgLevelBFS, AlgSpanUF,
	}
}

// ChunkPolicy selects how a parallel worker's drain chunk is chosen.
// One controller implementation (internal/sched) serves the whole tree:
// the work-stealing traversal's queue drains and the dynamic
// parallel-for sweeps of every other parallel algorithm.
type ChunkPolicy = core.ChunkPolicy

const (
	// ChunkAdaptive (the default) grows and shrinks each processor's
	// drain chunk at run time from queue depth and steal pressure.
	ChunkAdaptive = core.ChunkAdaptive
	// ChunkFixed drains exactly Options.ChunkSize vertices per lock
	// acquisition.
	ChunkFixed = core.ChunkFixed
)

// ParseChunkPolicy converts a CLI name ("adaptive" or "fixed") into a
// ChunkPolicy.
func ParseChunkPolicy(s string) (ChunkPolicy, error) { return core.ParseChunkPolicy(s) }

// Direction selects the work-stealing traversal's direction policy.
type Direction = core.Direction

const (
	// DirectionAuto (the default) lets the traversal switch between
	// top-down push and bottom-up sweep phases on frontier density —
	// dense frontiers claim the remaining vertices with one parent-array
	// scan per sweep instead of per-edge queue traffic.
	DirectionAuto = core.DirectionAuto
	// DirectionTopDown pins the traversal to the pure top-down push (the
	// ablation baseline and the pre-direction-optimization behavior).
	DirectionTopDown = core.DirectionTopDown
)

// ParseDirection converts a CLI name ("auto" or "topdown") into a
// Direction.
func ParseDirection(s string) (Direction, error) { return core.ParseDirection(s) }

// Layout selects the CSR layout the work-stealing hot loops read.
type Layout = core.Layout

const (
	// LayoutWide (the default) reads the int64-offset Graph directly.
	LayoutWide = core.LayoutWide
	// LayoutCompact mirrors the graph into a uint32 offsets-plus-
	// adjacency arena (one allocation, built once per run or once per
	// Session) and reads that, halving the hot path's bytes per offset.
	// Requires the vertex count and adjacency length to fit uint32.
	LayoutCompact = core.LayoutCompact
)

// ParseLayout converts a CLI name ("wide" or "compact") into a Layout.
func ParseLayout(s string) (Layout, error) { return core.ParseLayout(s) }

// Options configures Find.
type Options struct {
	// Algorithm selects the algorithm; the zero value is the paper's
	// work-stealing algorithm.
	Algorithm Algorithm
	// NumProcs is the number of virtual processors for the parallel
	// algorithms; 0 means 1. Sequential algorithms ignore it.
	NumProcs int
	// Seed drives all randomized behavior (stub walk, victim choice).
	Seed uint64
	// Deg2Eliminate enables the degree-2 elimination preprocessing for
	// the work-stealing algorithm.
	Deg2Eliminate bool
	// FallbackThreshold enables the pathological-case detection of the
	// work-stealing algorithm: when at least this many virtual
	// processors are simultaneously idle with nothing stealable, the run
	// finishes with a Shiloach-Vishkin pass. 0 disables detection.
	FallbackThreshold int
	// ChunkPolicy selects how each worker's drain chunk is chosen, for
	// every parallel algorithm (they all run on the shared dynamic
	// scheduler). The zero value, ChunkAdaptive, lets each processor tune
	// its own chunk at run time (growing while its queue is deep and
	// steals succeed, shrinking when thieves starve); ChunkFixed drains
	// exactly ChunkSize vertices per lock acquisition.
	ChunkPolicy ChunkPolicy
	// ChunkSize is the number of vertices a worker drains from its queue
	// (or claims from its index range) per lock acquisition, and the
	// flush cadence of its batched child pushes and progress counts.
	// Under ChunkFixed, 0 means a tuned default (64) and 1 reproduces the
	// unbatched per-vertex hot path; under ChunkAdaptive it caps the
	// controller's growth (0 means the default cap, 256).
	ChunkSize int
	// Direction selects the work-stealing traversal's direction policy
	// (the zero value, DirectionAuto, enables the bottom-up phase switch
	// on large graphs; DirectionTopDown pins the pure push traversal).
	// Other algorithms ignore it.
	Direction Direction
	// Layout selects the CSR layout the hot loops read (the zero value,
	// LayoutWide, reads the Graph directly; LayoutCompact builds a
	// uint32 mirror per run). Honored by the work-stealing traversal and
	// AlgSpanUF; the other algorithms ignore it.
	Layout Layout
	// Shards splits the work-stealing traversal into that many
	// contiguous vertex-range shards, each traversed by its own team
	// over a compact intra-shard CSR view, with the cross-shard edges
	// stitched into one forest afterwards (a union-find sweep over the
	// contracted shard-component graph). 0 or 1 runs the classic
	// single-team path — the shards=1 special case of the same engine.
	// NumProcs stays the total worker budget: with Shards <= NumProcs
	// the teams split it, with Shards > NumProcs single-worker teams run
	// in sequential waves. Requires FallbackThreshold == 0 and ignores
	// Layout (shard views are always compact). Only the work-stealing
	// algorithm honors it.
	Shards int
	// Model, when non-nil, accumulates Helman-JáJá cost-model counters
	// for the run (see the smpmodel package via Result.ModeledTime).
	Model *smpmodel.Model
	// Obs, when non-nil, is the observability recorder the run reports
	// into: per-worker counters (work, steals, queue high-water, barrier
	// waits) and, when the recorder has tracing enabled, an event
	// timeline. Supported by the work-stealing algorithm and the SV
	// family; create one fresh recorder per Find call with at least
	// NumProcs worker slots.
	Obs *obs.Recorder
	// Verify re-checks the output against the independent verifier
	// before returning (recommended in tests, off by default).
	Verify bool
	// ValidateInput runs graph.Validate on g before dispatch and returns
	// its typed *ValidationError on malformed CSR input instead of
	// computing an arbitrary forest (off by default: the builders always
	// produce valid graphs, so the check only pays off on hand-built or
	// deserialized inputs).
	ValidateInput bool
	// ChaosSeed, when non-zero, arms the deterministic fault-injection
	// layer with this seed for the run: seeded stalls, vetoed steals and
	// scheduling perturbations at the runtime's chaos points. It requires
	// a binary built with the chaos build tag (see ChaosEnabled) — Find
	// returns an error otherwise rather than silently running clean.
	ChaosSeed uint64
}

// Result is the outcome of Find.
type Result struct {
	// Parent is the spanning forest: Parent[v] is v's parent, or None
	// when v is the root of its component's tree.
	Parent []VID
	// Roots is the number of tree roots == connected components.
	Roots int
	// TreeEdges is the number of tree edges (n - Roots).
	TreeEdges int
	// Elapsed is the wall-clock time of the algorithm run (excluding
	// verification).
	Elapsed time.Duration
	// Algorithm echoes the algorithm that ran.
	Algorithm Algorithm
	// WorkStealing holds the work-stealing algorithm's statistics when
	// it ran (nil otherwise).
	WorkStealing *core.Stats
	// SV holds graft-and-shortcut statistics for AlgSV/AlgSVLocks/AlgHCS
	// (nil otherwise).
	SV *spansv.Stats
	// HCS holds HCS statistics when AlgHCS ran (nil otherwise).
	HCS *spanhcs.Stats
	// AS holds Awerbuch-Shiloach statistics when AlgAwerbuchShiloach ran.
	AS *spanas.Stats
	// LevelBFS holds level-synchronous BFS statistics when AlgLevelBFS
	// ran.
	LevelBFS *spanlevel.Stats
	// RandomMating holds statistics when FindRandomMating ran.
	RandomMating *spanrm.Stats
	// SpanUF holds CAS-hook union-find statistics when AlgSpanUF ran
	// (nil otherwise).
	SpanUF *spanuf.Stats
}

// Find computes a spanning forest of g. It is FindContext with a
// background context: no cancellation, no deadline.
func Find(g *Graph, opt Options) (*Result, error) {
	return FindContext(context.Background(), g, opt)
}

// FindContext is Find under a context: when ctx is canceled or its
// deadline expires, every worker observes the shared stop flag at its
// next chunk boundary, the team drains through abortable barriers (no
// goroutine is left parked), and FindContext returns ErrCanceled or
// ErrDeadline with whatever partial statistics the run accumulated. An
// already-expired context is rejected before any worker starts.
//
// A worker panic does not propagate: the run trips the same flag, the
// team drains, and the work-stealing algorithm degrades to sequential
// BFS — the caller still receives a valid forest, with the structured
// PanicError in Result.WorkStealing.Panic. The other parallel
// algorithms return the PanicError instead.
func FindContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("spantree: nil graph")
	}
	p := opt.NumProcs
	if p == 0 {
		p = 1
	}
	if p < 0 {
		return nil, fmt.Errorf("spantree: NumProcs = %d, need >= 0", p)
	}
	if opt.ValidateInput {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("spantree: %w", err)
		}
	}
	var inj *chaos.Injector
	if opt.ChaosSeed != 0 {
		if !chaos.Enabled {
			return nil, fmt.Errorf("spantree: ChaosSeed is set but this binary was built without the chaos build tag (go build -tags chaos)")
		}
		inj = chaos.New(chaos.DefaultConfig(opt.ChaosSeed, p), opt.Obs)
	}
	cancel := &fault.Flag{}
	stop := fault.Watch(ctx, cancel)
	defer stop()
	// An already-expired context is rejected synchronously: the Watch
	// goroutine trips the flag eventually, but "eventually" must not
	// mean a dead context still launches a team.
	if err := ctx.Err(); err != nil {
		cancel.TripContext(err)
		return nil, cancel.Err()
	}
	res := &Result{Algorithm: opt.Algorithm}
	start := time.Now()
	switch opt.Algorithm {
	case AlgWorkStealing:
		parent, stats, err := core.SpanningForest(g, core.Options{
			NumProcs:          p,
			Seed:              opt.Seed,
			Model:             opt.Model,
			Obs:               opt.Obs,
			Deg2Eliminate:     opt.Deg2Eliminate,
			FallbackThreshold: opt.FallbackThreshold,
			ChunkPolicy:       opt.ChunkPolicy,
			ChunkSize:         opt.ChunkSize,
			Direction:         opt.Direction,
			Layout:            opt.Layout,
			Shards:            opt.Shards,
			Cancel:            cancel,
			Chaos:             inj,
		})
		if err != nil {
			return nil, err
		}
		res.Parent, res.WorkStealing = parent, &stats
	case AlgSequentialBFS, AlgSequentialDFS, AlgSequentialUF:
		// The sequential baselines have no chunk boundaries to poll; an
		// already-tripped flag is still honored before the scan starts.
		if cancel.Tripped() {
			return nil, cancel.Err()
		}
		switch opt.Algorithm {
		case AlgSequentialBFS:
			res.Parent = spanseq.BFS(g, opt.Model.Probe(0))
		case AlgSequentialDFS:
			res.Parent = spanseq.DFS(g, opt.Model.Probe(0))
		default:
			res.Parent = spanseq.UnionFind(g, opt.Model.Probe(0))
		}
	case AlgSV, AlgSVLocks:
		parent, stats, err := spansv.SpanningForest(g, spansv.Options{
			NumProcs:    p,
			UseLocks:    opt.Algorithm == AlgSVLocks,
			Model:       opt.Model,
			Obs:         opt.Obs,
			ChunkPolicy: opt.ChunkPolicy,
			ChunkSize:   opt.ChunkSize,
			Cancel:      cancel,
			Chaos:       inj,
		})
		if err != nil {
			return nil, err
		}
		res.Parent, res.SV = parent, &stats
	case AlgHCS:
		parent, stats, err := spanhcs.SpanningForest(g, spanhcs.Options{
			NumProcs:    p,
			Model:       opt.Model,
			ChunkPolicy: opt.ChunkPolicy,
			ChunkSize:   opt.ChunkSize,
			Cancel:      cancel,
			Chaos:       inj,
		})
		if err != nil {
			return nil, err
		}
		res.Parent = parent
		res.HCS = &stats
	case AlgAwerbuchShiloach:
		parent, stats, err := spanas.SpanningForest(g, spanas.Options{
			NumProcs:    p,
			Model:       opt.Model,
			ChunkPolicy: opt.ChunkPolicy,
			ChunkSize:   opt.ChunkSize,
			Cancel:      cancel,
			Chaos:       inj,
		})
		if err != nil {
			return nil, err
		}
		res.Parent = parent
		res.AS = &stats
	case AlgLevelBFS:
		parent, stats, err := spanlevel.SpanningForest(g, spanlevel.Options{
			NumProcs:    p,
			Model:       opt.Model,
			ChunkPolicy: opt.ChunkPolicy,
			ChunkSize:   opt.ChunkSize,
			Cancel:      cancel,
			Chaos:       inj,
		})
		if err != nil {
			return nil, err
		}
		res.Parent = parent
		res.LevelBFS = &stats
	case AlgSpanUF:
		parent, stats, err := spanuf.SpanningForest(g, spanuf.Options{
			NumProcs:    p,
			Compact:     opt.Layout == LayoutCompact,
			Model:       opt.Model,
			Obs:         opt.Obs,
			ChunkPolicy: opt.ChunkPolicy,
			ChunkSize:   opt.ChunkSize,
			Cancel:      cancel,
			Chaos:       inj,
		})
		if err != nil {
			return nil, err
		}
		res.Parent = parent
		res.SpanUF = &stats
	default:
		return nil, fmt.Errorf("spantree: unknown algorithm %v", opt.Algorithm)
	}
	res.Elapsed = time.Since(start)
	for _, p := range res.Parent {
		if p == None {
			res.Roots++
		}
	}
	res.TreeEdges = len(res.Parent) - res.Roots
	if opt.Verify {
		if err := verify.Forest(g, res.Parent); err != nil {
			return nil, fmt.Errorf("spantree: %v produced an invalid forest: %w", opt.Algorithm, err)
		}
	}
	return res, nil
}

// Verify independently checks that parent is a valid spanning forest of
// g (see the verify package for the exact conditions).
func Verify(g *Graph, parent []VID) error {
	return verify.Forest(g, parent)
}

// ConnectedComponents labels every vertex with a component id in
// [0, count) derived from a spanning forest computed by the
// work-stealing algorithm with p virtual processors.
func ConnectedComponents(g *Graph, p int, seed uint64) ([]VID, int, error) {
	return conncomp.Labels(g, p, seed)
}

// ConnectedComponentsCount returns only the number of connected
// components of g, computed with the work-stealing spanning-forest
// algorithm on p virtual processors.
func ConnectedComponentsCount(g *Graph, p int, seed uint64) (int, error) {
	_, count, err := conncomp.Labels(g, p, seed)
	return count, err
}
