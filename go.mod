module spantree

go 1.22
