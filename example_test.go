package spantree_test

import (
	"fmt"

	"spantree"
)

// The examples below are compiled and executed by go test, and rendered
// by godoc as usage documentation for the public API.

func ExampleFind() {
	// A small torus — one of the paper's regular-mesh workloads.
	g := spantree.NewTorus2D(32, 32)

	res, err := spantree.Find(g, spantree.Options{
		Algorithm: spantree.AlgWorkStealing,
		NumProcs:  4,
		Seed:      1,
		Verify:    true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tree edges:", res.TreeEdges)
	fmt.Println("components:", res.Roots)
	// Output:
	// tree edges: 1023
	// components: 1
}

func ExampleFind_comparingAlgorithms() {
	g := spantree.NewConnectedRandomGraph(2000, 3000, 7)
	for _, alg := range []spantree.Algorithm{
		spantree.AlgSequentialBFS,
		spantree.AlgSV,
		spantree.AlgWorkStealing,
	} {
		res, err := spantree.Find(g, spantree.Options{
			Algorithm: alg, NumProcs: 4, Seed: 7, Verify: true,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d edges\n", alg, res.TreeEdges)
	}
	// Output:
	// seqbfs: 1999 edges
	// sv: 1999 edges
	// workstealing: 1999 edges
}

func ExampleVerify() {
	g := spantree.NewChain(4) // 0-1-2-3
	// A hand-built parent array: 1 is the root.
	parent := []spantree.VID{1, spantree.None, 1, 2}
	fmt.Println("valid:", spantree.Verify(g, parent) == nil)

	// Break it: vertex 3 claims non-adjacent 0 as its parent.
	parent[3] = 0
	fmt.Println("still valid:", spantree.Verify(g, parent) == nil)
	// Output:
	// valid: true
	// still valid: false
}

func ExampleConnectedComponents() {
	// Two separate triangles.
	g, err := spantree.NewGraph(6, []spantree.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	if err != nil {
		panic(err)
	}
	labels, count, err := spantree.ConnectedComponents(g, 2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", count)
	fmt.Println("same side:", labels[0] == labels[1], labels[0] == labels[5])
	// Output:
	// components: 2
	// same side: true false
}

func ExampleEliminateDegree2() {
	// The paper's degenerate chain collapses to its two endpoints.
	g := spantree.NewChain(1000)
	red := spantree.EliminateDegree2(g)
	fmt.Println("reduced vertices:", red.Reduced.NumVertices())
	fmt.Println("eliminated:", red.NumEliminated())
	// Output:
	// reduced vertices: 2
	// eliminated: 998
}

func ExampleBiconnectedComponents() {
	// Two triangles sharing vertex 2 (a "bowtie"): vertex 2 is the
	// single point of failure.
	g, err := spantree.NewGraph(5, []spantree.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
	})
	if err != nil {
		panic(err)
	}
	bc := spantree.BiconnectedComponents(g)
	fmt.Println("blocks:", bc.NumComponents)
	fmt.Println("articulation points:", bc.ArticulationPoints)
	// Output:
	// blocks: 2
	// articulation points: [2]
}
