package spantree

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spantree/internal/fault"
	"spantree/internal/gen"
)

// TestSessionStalledThenReuse drives the watchdog contract through the
// public session API: a run in which every worker wedges (no progress,
// but still able to drain once aborted) returns ErrStalled within the
// stall budget, and the same pooled session then serves healthy
// requests allocation-free and goroutine-flat — a stall trip must not
// cost the serving layer its zero-allocation steady state.
func TestSessionStalledThenReuse(t *testing.T) {
	g := gen.RandomConnected(2000, 4000, 7)
	var on atomic.Bool
	var flag atomic.Pointer[fault.Flag]
	hook := func(tid int) {
		f := flag.Load()
		for on.Load() && f != nil && !f.Tripped() {
			time.Sleep(200 * time.Microsecond)
		}
	}
	s, err := NewSession(g, SessionOptions{
		NumProcs:    2,
		StallBudget: 25 * time.Millisecond,
		testHook:    hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	flag.Store(s.rt.Flag())

	if _, err := s.Find(1); err != nil {
		t.Fatalf("healthy run: %v", err)
	}
	base := runtime.NumGoroutine()

	on.Store(true)
	_, err = s.FindContext(context.Background(), 2)
	on.Store(false)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled run: err = %v, want ErrStalled", err)
	}

	// Reuse: FindContext rearms the flag itself, so no caller-side reset
	// is needed — the next request just works.
	for i := 0; i < 5; i++ {
		res, err := s.Find(uint64(10 + i))
		if err != nil {
			t.Fatalf("run %d after stall: %v", i, err)
		}
		if res.Roots != 1 {
			t.Fatalf("run %d after stall: %d roots, want 1", i, res.Roots)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := s.Find(42); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("AllocsPerRun after a stall trip = %v, want 0", avg)
	}
	// The watchdog monitor is parked, not respawned, so the goroutine
	// count stays flat across the trip (allow the scheduler a moment).
	for i := 0; i < 100 && runtime.NumGoroutine() > base; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Fatalf("goroutines grew across a stall trip: %d -> %d", base, after)
	}
}
