package spantree

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

// sessionFamilies are the graph families the pooled-vs-fresh equality
// tests sweep: regular mesh, scale-free-ish random, high-diameter chain
// with a tail of singletons (disconnected), and a star (max-degree hub).
func sessionFamilies() map[string]*Graph {
	return map[string]*Graph{
		"torus":        gen.Torus2D(24, 24),
		"random":       gen.RandomConnected(500, 1200, 7),
		"disconnected": graph.Union(gen.Chain(300), gen.Star(50), gen.Cycle(17)),
		"star":         gen.Star(400),
	}
}

// TestSessionMatchesFind pins the pooled public API to the one-shot
// public API across graph families: identical forests at p=1 (both
// deterministic), valid forests with equal root counts at p=4.
func TestSessionMatchesFind(t *testing.T) {
	for name, g := range sessionFamilies() {
		fresh, err := Find(g, Options{NumProcs: 1, Seed: 11})
		if err != nil {
			t.Fatalf("%s: Find: %v", name, err)
		}
		s, err := NewSession(g, SessionOptions{NumProcs: 1})
		if err != nil {
			t.Fatalf("%s: NewSession: %v", name, err)
		}
		for run := 0; run < 3; run++ {
			res, err := s.Find(11)
			if err != nil {
				t.Fatalf("%s run %d: %v", name, run, err)
			}
			for v := range fresh.Parent {
				if res.Parent[v] != fresh.Parent[v] {
					t.Fatalf("%s run %d: parent[%d] = %d, Find got %d",
						name, run, v, res.Parent[v], fresh.Parent[v])
				}
			}
			if res.Roots != fresh.Roots || res.TreeEdges != fresh.TreeEdges {
				t.Fatalf("%s run %d: roots/edges %d/%d, Find got %d/%d",
					name, run, res.Roots, res.TreeEdges, fresh.Roots, fresh.TreeEdges)
			}
		}
		s.Close()

		s4, err := NewSession(g, SessionOptions{NumProcs: 4})
		if err != nil {
			t.Fatalf("%s: NewSession p=4: %v", name, err)
		}
		wantRoots := graph.NumComponents(g)
		for run := 0; run < 3; run++ {
			res, err := s4.Find(uint64(run) + 100)
			if err != nil {
				t.Fatalf("%s p=4 run %d: %v", name, run, err)
			}
			if err := Verify(g, res.Parent); err != nil {
				t.Fatalf("%s p=4 run %d: %v", name, run, err)
			}
			if res.Roots != wantRoots {
				t.Fatalf("%s p=4 run %d: %d roots, want %d", name, run, res.Roots, wantRoots)
			}
		}
		s4.Close()
	}
}

// TestSessionZeroAlloc is the headline serving guarantee: a warmed
// session executes FindContext with zero steady-state heap allocations.
// context.Background is the alloc-free path — a cancellable context
// additionally pays for its fault watcher.
func TestSessionZeroAlloc(t *testing.T) {
	for _, p := range []int{1, 4} {
		s, err := NewSession(gen.Torus2D(32, 32), SessionOptions{NumProcs: p})
		if err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, err := s.FindContext(context.Background(), 42); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("p=%d: AllocsPerRun = %v, want 0", p, avg)
		}
		s.Close()
	}
}

// TestSessionZeroAllocCompactBottomUp extends the zero-allocation
// guarantee to the new traversal variants: a session on the compact
// uint32 layout, over a graph large and low-diameter enough for the
// bottom-up phase to engage, must still run allocation-free — the
// compact mirror is built once at construction and the bottom-up claims
// buffer reuses the per-worker steal buffer.
func TestSessionZeroAllocCompactBottomUp(t *testing.T) {
	g := gen.Random(1<<14, 12<<14, 7)
	for _, p := range []int{1, 4} {
		s, err := NewSession(g, SessionOptions{NumProcs: p, Layout: LayoutCompact})
		if err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, err := s.FindContext(context.Background(), 42); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("p=%d compact: AllocsPerRun = %v, want 0", p, avg)
		}
		s.Close()
	}
}

// TestSessionShardedZeroAlloc extends the zero-allocation guarantee to
// sharded sessions: the partition, the per-shard compact views and the
// stitch scratch are all built at construction, so a warmed session
// running shard teams still serves requests without touching the heap.
func TestSessionShardedZeroAlloc(t *testing.T) {
	g := gen.Torus2D(32, 32)
	for _, sh := range []int{2, 4} {
		for _, p := range []int{1, 4} {
			s, err := NewSession(g, SessionOptions{NumProcs: p, Shards: sh})
			if err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, err := s.FindContext(context.Background(), 42); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("shards=%d p=%d: AllocsPerRun = %v, want 0", sh, p, avg)
			}
			s.Close()
		}
	}
}

// TestSessionShardedCancelThenReuse: a sharded session hit with expired
// and canceled contexts — shard teams tripped mid-flight — returns the
// typed errors and then completes cleanly, matching the one-shot result
// at p=1.
func TestSessionShardedCancelThenReuse(t *testing.T) {
	g := gen.Torus2D(32, 32)
	s, err := NewSession(g, SessionOptions{NumProcs: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.FindContext(expired, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}

	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.FindContext(canceled, 2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}

	res, err := s.FindContext(context.Background(), 3)
	if err != nil {
		t.Fatalf("after cancels: %v", err)
	}
	if err := Verify(g, res.Parent); err != nil {
		t.Fatalf("after cancels: %v", err)
	}
	if res.Roots != 1 {
		t.Fatalf("after cancels: %d roots, want 1", res.Roots)
	}
}

// TestSessionCancelThenReuse: typed errors for expired and canceled
// contexts, and a clean completion right after.
func TestSessionCancelThenReuse(t *testing.T) {
	g := gen.RandomConnected(400, 900, 3)
	s, err := NewSession(g, SessionOptions{NumProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.FindContext(expired, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}

	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.FindContext(canceled, 2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}

	res, err := s.FindContext(context.Background(), 3)
	if err != nil {
		t.Fatalf("after cancels: %v", err)
	}
	if err := Verify(g, res.Parent); err != nil {
		t.Fatalf("after cancels: %v", err)
	}
}

// TestSessionPoolGoroutinesFlat: the pool's parked teams are created
// once — the goroutine count does not grow with the request count — and
// pool Close releases every team.
func TestSessionPoolGoroutinesFlat(t *testing.T) {
	g := gen.Torus2D(16, 16)
	before := runtime.NumGoroutine()
	pool, err := NewSessionPool(g, SessionOptions{NumProcs: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 60; i++ {
		s, err := pool.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Find(uint64(i)); err != nil {
			t.Fatal(err)
		}
		pool.Release(s)
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Fatalf("goroutines grew with requests: %d -> %d", base, after)
	}
	pool.Close()
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after pool Close: %d -> %d", before, after)
	}
	if _, err := pool.Acquire(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Acquire after Close: err = %v, want ErrSessionClosed", err)
	}
}

// TestSessionPoolConcurrent hammers the pool from many goroutines (run
// under -race in CI): every request gets a session to itself, forests
// stay valid, TryAcquire never hands out a session twice.
func TestSessionPoolConcurrent(t *testing.T) {
	g := gen.RandomConnected(300, 700, 9)
	pool, err := NewSessionPool(g, SessionOptions{NumProcs: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s, err := pool.Acquire(context.Background())
				if err != nil {
					errCh <- err
					return
				}
				res, err := s.Find(uint64(w*100 + i))
				if err == nil {
					err = Verify(g, res.Parent)
				}
				pool.Release(s)
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSessionPoolTryAcquireExhaustion: TryAcquire reports exhaustion
// instead of blocking — the serving layer's admission signal.
func TestSessionPoolTryAcquireExhaustion(t *testing.T) {
	pool, err := NewSessionPool(gen.Chain(50), SessionOptions{NumProcs: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, ok := pool.TryAcquire()
	if !ok {
		t.Fatal("first TryAcquire failed")
	}
	b, ok := pool.TryAcquire()
	if !ok {
		t.Fatal("second TryAcquire failed")
	}
	if _, ok := pool.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an exhausted pool")
	}
	pool.Release(a)
	if _, err := pool.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	pool.Release(b)
}
