// Package gen implements every graph family used in the paper's
// experimental study (Section 4, "Experimental Data"), plus a few extra
// families used by the test suite:
//
//   - 2D torus (regular mesh, 4-neighbor, wraparound)
//   - 2D60 / 3D40: 2D and 3D meshes where each lattice edge is present
//     with probability 60% / 40%
//   - random graphs G(n,m): m unique edges added uniformly at random
//   - k-regular geometric graphs (k nearest neighbors of uniform random
//     points in the unit square); AD3 is the k=3 instance
//   - geographic graphs, flat and hierarchical mode, modeling wide-area
//     network (Internet) topologies with distance-dependent edge
//     probability and backbone/domain/subdomain structure
//   - degenerate chain graphs (the paper's pathological input)
//
// All generators are deterministic functions of their parameters and an
// explicit 64-bit seed.
package gen

import (
	"fmt"
	"sort"

	"spantree/internal/graph"
	"spantree/internal/xrand"
)

// Spec identifies a generator and its parameters for the registry-based
// tools (cmd/graphgen, the benchmark harness).
type Spec struct {
	// Kind is the generator name, e.g. "torus2d", "random", "ad3".
	Kind string
	// N is the requested number of vertices (generators may round, e.g.
	// to a square side; the actual count is in the produced graph).
	N int
	// M is the requested number of edges (random graphs only).
	M int
	// K is the neighbor count (geometric graphs only).
	K int
	// Seed drives all randomness.
	Seed uint64
	// RandomLabel applies a random vertex relabeling after generation,
	// reproducing the paper's "random labeling" variants.
	RandomLabel bool
}

// Generate builds the graph described by s. It returns an error for an
// unknown Kind or invalid parameters.
func Generate(s Spec) (*graph.Graph, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("gen: negative vertex count %d", s.N)
	}
	var g *graph.Graph
	switch s.Kind {
	case "torus2d":
		g = Torus2D(sideLen(s.N), sideLen(s.N))
	case "mesh2d60":
		g = Mesh2D(sideLen(s.N), sideLen(s.N), 0.60, s.Seed)
	case "mesh3d40":
		side := cubeLen(s.N)
		g = Mesh3D(side, side, side, 0.40, s.Seed)
	case "random":
		m := s.M
		if m == 0 {
			m = 3 * s.N / 2 // the paper's Fig. 3 density m = 1.5n
		}
		g = Random(s.N, m, s.Seed)
	case "geometric":
		k := s.K
		if k == 0 {
			k = 3
		}
		g = Geometric(s.N, k, s.Seed)
	case "ad3":
		g = AD3(s.N, s.Seed)
	case "geoflat":
		g = GeoFlat(s.N, DefaultGeoFlatParams(), s.Seed)
	case "geohier":
		g = GeoHier(s.N, DefaultGeoHierParams(), s.Seed)
	case "chain":
		g = Chain(s.N)
	case "star":
		g = Star(s.N)
	case "cycle":
		g = Cycle(s.N)
	case "complete":
		g = Complete(s.N)
	case "bintree":
		g = BinaryTree(s.N)
	case "grid2d":
		g = Grid2D(sideLen(s.N), sideLen(s.N))
	case "caterpillar":
		g = Caterpillar(s.N)
	default:
		return nil, fmt.Errorf("gen: unknown generator kind %q", s.Kind)
	}
	if s.RandomLabel {
		g = graph.RandomRelabel(g, s.Seed^0xDEADBEEF)
	}
	return g, nil
}

// Kinds lists the registry's generator names in sorted order.
func Kinds() []string {
	ks := []string{
		"torus2d", "mesh2d60", "mesh3d40", "random", "geometric", "ad3",
		"geoflat", "geohier", "chain", "star", "cycle", "complete",
		"bintree", "grid2d", "caterpillar",
	}
	sort.Strings(ks)
	return ks
}

// sideLen returns the side of the smallest square with at least n cells.
func sideLen(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// cubeLen returns the side of the smallest cube with at least n cells.
func cubeLen(n int) int {
	s := 1
	for s*s*s < n {
		s++
	}
	return s
}

// rng returns the generator stream for a seed and a purpose tag, so that
// different uses of the same seed stay decorrelated.
func rng(seed, tag uint64) *xrand.Rand {
	return xrand.New(seed).Split(tag)
}
