package gen

import (
	"math"
	"testing"
	"testing/quick"

	"spantree/internal/graph"
)

func TestAllKindsGenerateValidGraphs(t *testing.T) {
	for _, kind := range Kinds() {
		for _, n := range []int{0, 1, 2, 17, 256} {
			g, err := Generate(Spec{Kind: kind, N: n, Seed: 7})
			if err != nil {
				t.Fatalf("%s n=%d: %v", kind, n, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s n=%d: %v", kind, n, err)
			}
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate(Spec{Kind: "nope", N: 10}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Generate(Spec{Kind: "random", N: -1}); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a, err := Generate(Spec{Kind: kind, N: 200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Spec{Kind: kind, N: 200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%s: same spec produced different graphs", kind)
		}
	}
}

func TestGenerateRandomLabelOption(t *testing.T) {
	a, _ := Generate(Spec{Kind: "torus2d", N: 100, Seed: 3})
	b, _ := Generate(Spec{Kind: "torus2d", N: 100, Seed: 3, RandomLabel: true})
	if a.Equal(b) {
		t.Fatal("RandomLabel had no effect")
	}
	if a.NumEdges() != b.NumEdges() || a.MaxDegree() != b.MaxDegree() {
		t.Fatal("RandomLabel changed graph invariants")
	}
}

func TestTorus2DStructure(t *testing.T) {
	g := Torus2D(5, 7)
	if g.NumVertices() != 35 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Every vertex of a (>=3)x(>=3) torus has degree exactly 4.
	g = Torus2D(4, 4)
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.VID(v)) != 4 {
			t.Fatalf("torus vertex %d has degree %d", v, g.Degree(graph.VID(v)))
		}
	}
	if g.NumEdges() != 2*16 {
		t.Fatalf("4x4 torus edges = %d, want 32", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("torus not connected")
	}
	// Row-major wiring: vertex r*cols+c connects to its right neighbor.
	g = Torus2D(3, 5)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) || !g.HasEdge(0, 5) || !g.HasEdge(0, 10) {
		t.Fatal("torus wraparound wiring wrong")
	}
	// 2x2 torus: wraparound and direct edges coincide; dedup keeps it simple.
	if g := Torus2D(2, 2); g.NumEdges() != 4 {
		t.Fatalf("2x2 torus edges = %d, want 4", g.NumEdges())
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(3, 4)
	if g.NumEdges() != 3*3+2*4 {
		t.Fatalf("3x4 grid edges = %d, want 17", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("grid not connected")
	}
	if g.HasEdge(3, 4) {
		t.Fatal("grid wrapped around a row boundary")
	}
}

func TestMesh2DEdgeProbability(t *testing.T) {
	const side = 120
	g := Mesh2D(side, side, 0.60, 9)
	maxEdges := 2 * side * (side - 1)
	got := float64(g.NumEdges()) / float64(maxEdges)
	if math.Abs(got-0.60) > 0.02 {
		t.Fatalf("2D60 edge fraction %.3f, want ~0.60", got)
	}
	if Mesh2D(side, side, 0, 1).NumEdges() != 0 {
		t.Fatal("p=0 mesh has edges")
	}
	if Mesh2D(10, 10, 1, 1).NumEdges() != 2*10*9 {
		t.Fatal("p=1 mesh incomplete")
	}
}

func TestMesh3DEdgeProbability(t *testing.T) {
	const side = 24
	g := Mesh3D(side, side, side, 0.40, 9)
	maxEdges := 3 * side * side * (side - 1)
	got := float64(g.NumEdges()) / float64(maxEdges)
	if math.Abs(got-0.40) > 0.02 {
		t.Fatalf("3D40 edge fraction %.3f, want ~0.40", got)
	}
}

func TestRandomGraphProperties(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%400) + 1
		m := int(mRaw % 800)
		g := Random(n, m, seed)
		want := m
		if max := n * (n - 1) / 2; want > max {
			want = max
		}
		return g.NumVertices() == n && g.NumEdges() == want && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGraphClampsToComplete(t *testing.T) {
	g := Random(5, 1000, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("clamped edges = %d, want 10", g.NumEdges())
	}
}

func TestRandomConnected(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%300) + 2
		g := RandomConnected(n, 3*n/2, seed)
		return graph.IsConnected(g) && g.NumEdges() >= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
	if g := RandomConnected(1, 5, 1); g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatal("singleton case wrong")
	}
	if g := RandomConnected(0, 0, 1); g.NumVertices() != 0 {
		t.Fatal("empty case wrong")
	}
}

func TestGeometricKNN(t *testing.T) {
	g := Geometric(500, 4, 3)
	// Every vertex has degree >= k (k out-edges, symmetrized), and the
	// graph is k-ish regular: min degree exactly >= 4.
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.VID(v)) < 4 {
			t.Fatalf("vertex %d has degree %d < k", v, g.Degree(graph.VID(v)))
		}
	}
	// Edge count between n*k/2 (fully mutual) and n*k (no mutual pairs).
	if m := g.NumEdges(); m < 500*4/2 || m > 500*4 {
		t.Fatalf("geometric edges = %d out of expected band", m)
	}
}

func TestGeometricBruteForceAgreement(t *testing.T) {
	// Compare the grid-based kNN against brute force on a small input:
	// the symmetrized edge sets must match exactly.
	const n, k = 60, 3
	const seed = 11
	g := Geometric(n, k, seed)

	// Recompute the points exactly as Geometric does.
	r := rng(seed, 'G')
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		type cand struct {
			d2 float64
			w  int
		}
		var cs []cand
		for w := 0; w < n; w++ {
			if w == v {
				continue
			}
			dx, dy := xs[w]-xs[v], ys[w]-ys[v]
			cs = append(cs, cand{dx*dx + dy*dy, w})
		}
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(cs); j++ {
				if cs[j].d2 < cs[best].d2 {
					best = j
				}
			}
			cs[i], cs[best] = cs[best], cs[i]
			b.AddEdge(graph.VID(v), graph.VID(cs[i].w))
		}
	}
	want := b.Build()
	if !g.Equal(want) {
		t.Fatal("grid kNN disagrees with brute force")
	}
}

func TestAD3IsGeometricK3(t *testing.T) {
	a := AD3(300, 5)
	g := Geometric(300, 3, 5)
	// Same structure, different name.
	if a.NumEdges() != g.NumEdges() {
		t.Fatalf("AD3 edges %d != geometric k=3 edges %d", a.NumEdges(), g.NumEdges())
	}
}

func TestGeoFlatSparse(t *testing.T) {
	g := GeoFlat(2000, DefaultGeoFlatParams(), 13)
	if g.NumEdges() == 0 {
		t.Fatal("flat geographic graph has no edges")
	}
	if avg := g.AvgDegree(); avg > 64 {
		t.Fatalf("flat geographic graph too dense: avg degree %.1f", avg)
	}
}

func TestGeoHierConnectedAndSized(t *testing.T) {
	for _, n := range []int{1, 10, 500, 4096} {
		g := GeoHier(n, DefaultGeoHierParams(), 17)
		if g.NumVertices() != n {
			t.Fatalf("n=%d: got %d vertices", n, g.NumVertices())
		}
		if n > 0 && !graph.IsConnected(g) {
			t.Fatalf("n=%d: hierarchical geographic graph disconnected", n)
		}
	}
}

func TestSimpleShapes(t *testing.T) {
	if g := Chain(5); g.NumEdges() != 4 || graph.PseudoDiameter(g, 0) != 4 {
		t.Fatal("chain shape wrong")
	}
	if g := Cycle(6); g.NumEdges() != 6 || g.MaxDegree() != 2 {
		t.Fatal("cycle shape wrong")
	}
	if g := Cycle(2); g.NumEdges() != 1 {
		t.Fatal("2-cycle should degenerate to one edge")
	}
	if g := Star(9); g.NumEdges() != 8 || g.Degree(0) != 8 {
		t.Fatal("star shape wrong")
	}
	if g := Complete(6); g.NumEdges() != 15 {
		t.Fatal("complete graph shape wrong")
	}
	if g := BinaryTree(7); g.NumEdges() != 6 || g.Degree(0) != 2 || g.Degree(1) != 3 {
		t.Fatal("binary tree shape wrong")
	}
	if g := Caterpillar(10); !graph.IsConnected(g) || g.NumEdges() != 9 {
		t.Fatal("caterpillar shape wrong")
	}
}

func TestNegativePanics(t *testing.T) {
	cases := []func(){
		func() { Chain(-1) },
		func() { Star(-1) },
		func() { Torus2D(-1, 2) },
		func() { Mesh2D(-1, 2, 0.5, 0) },
		func() { Random(-1, 0, 0) },
		func() { Geometric(10, 0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGeoFlatDegreeStableAcrossSizes(t *testing.T) {
	// The scale-aware default cutoff keeps the average degree roughly
	// constant as n grows (a sparse WAN stays sparse).
	for _, n := range []int{2000, 16384, 65536} {
		g := GeoFlat(n, DefaultGeoFlatParams(), 13)
		if avg := g.AvgDegree(); avg < 2 || avg > 20 {
			t.Fatalf("n=%d: avg degree %.2f outside the sparse band", n, avg)
		}
	}
}
