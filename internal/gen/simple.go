package gen

import (
	"fmt"

	"spantree/internal/graph"
)

// Chain returns the degenerate chain (path) graph 0-1-2-...-(n-1), the
// paper's pathological low-connectivity input: diameter n-1, every
// interior vertex of degree 2. Row-major ("sequential") labeling; apply
// graph.RandomRelabel for the paper's random-labeling variant.
func Chain(n int) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: Chain(%d) with negative n", n))
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VID(i-1), graph.VID(i))
	}
	g := b.Build()
	g.Name = fmt.Sprintf("chain-n%d", n)
	return g
}

// Cycle returns the n-cycle 0-1-...-(n-1)-0.
func Cycle(n int) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: Cycle(%d) with negative n", n))
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VID(i-1), graph.VID(i))
	}
	if n > 2 {
		b.AddEdge(graph.VID(n-1), 0)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("cycle-n%d", n)
	return g
}

// Star returns the star with center 0 and n-1 leaves — the extreme
// load-imbalance shape from the paper's Fig. 2 discussion.
func Star(n int) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: Star(%d) with negative n", n))
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.VID(i))
	}
	g := b.Build()
	g.Name = fmt.Sprintf("star-n%d", n)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: Complete(%d) with negative n", n))
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VID(i), graph.VID(j))
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("complete-n%d", n)
	return g
}

// BinaryTree returns the complete binary tree on n vertices in heap
// order: vertex i has children 2i+1 and 2i+2.
func BinaryTree(n int) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: BinaryTree(%d) with negative n", n))
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VID((i-1)/2), graph.VID(i))
	}
	g := b.Build()
	g.Name = fmt.Sprintf("bintree-n%d", n)
	return g
}

// Caterpillar returns a caterpillar graph: a spine path of ceil(n/2)
// vertices with a leaf hanging off each spine vertex until n vertices
// are used. Mixes the chain's low connectivity with degree-3 spine
// vertices, defeating pure degree-2 elimination.
func Caterpillar(n int) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: Caterpillar(%d) with negative n", n))
	}
	b := graph.NewBuilder(n)
	spine := (n + 1) / 2
	for i := 1; i < spine; i++ {
		b.AddEdge(graph.VID(i-1), graph.VID(i))
	}
	for i := spine; i < n; i++ {
		b.AddEdge(graph.VID(i-spine), graph.VID(i))
	}
	g := b.Build()
	g.Name = fmt.Sprintf("caterpillar-n%d", n)
	return g
}
