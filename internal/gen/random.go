package gen

import (
	"fmt"

	"spantree/internal/graph"
)

// Random returns a G(n, m) random graph: m unique undirected edges added
// uniformly at random to n vertices, the construction the paper adopts
// from LEDA ("we create a random graph of n vertices and m edges by
// randomly adding m unique edges to the vertex set"). Self-loops are
// never produced. If m exceeds the number of possible edges it is
// clamped.
func Random(n, m int, seed uint64) *graph.Graph {
	if n < 0 || m < 0 {
		panic(fmt.Sprintf("gen: Random(%d,%d) with negative parameter", n, m))
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	r := rng(seed, 'R')
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for added := 0; added < m; {
		u := r.Int31n(int32(n))
		v := r.Int31n(int32(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		added++
	}
	g := b.Build()
	g.Name = fmt.Sprintf("random-n%d-m%d", n, m)
	return g
}

// RandomConnected returns a connected random graph: a uniformly random
// spanning tree backbone (random attachment order) plus extra random
// edges to reach m total. Used by tests and examples that need a single
// component; m < n-1 is raised to n-1.
func RandomConnected(n, m int, seed uint64) *graph.Graph {
	if n < 0 || m < 0 {
		panic(fmt.Sprintf("gen: RandomConnected(%d,%d) with negative parameter", n, m))
	}
	if n <= 1 {
		g := graph.NewBuilder(n).Build()
		g.Name = fmt.Sprintf("randconn-n%d-m0", n)
		return g
	}
	if m < n-1 {
		m = n - 1
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	r := rng(seed, 'C')
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	add := func(u, v graph.VID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		return true
	}
	// Random-attachment spanning tree over a random vertex order.
	order := r.Perm(n)
	for i := 1; i < n; i++ {
		add(order[i], order[r.Intn(i)])
	}
	for added := n - 1; added < m; {
		if add(r.Int31n(int32(n)), r.Int31n(int32(n))) {
			added++
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("randconn-n%d-m%d", n, m)
	return g
}
