package gen

import (
	"fmt"
	"sort"

	"spantree/internal/graph"
)

// Geometric returns the paper's k-regular geometric graph: n points
// chosen uniformly at random in the unit square, each vertex connected
// to its k nearest neighbors (by Euclidean distance). These are the
// inputs Moret and Shapiro used in their sequential MST study; AD3 is
// the k = 3 member of the family.
//
// Nearest neighbors are found with a uniform grid: cells are scanned in
// growing Chebyshev rings around the query point until the k-th best
// distance is covered by the scanned radius, giving near-linear expected
// time for uniform points.
func Geometric(n, k int, seed uint64) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: Geometric(%d,%d) with negative n", n, k))
	}
	if k < 1 {
		panic(fmt.Sprintf("gen: Geometric(%d,%d) needs k >= 1", n, k))
	}
	if k > n-1 {
		k = n - 1
	}
	r := rng(seed, 'G')
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	b := graph.NewBuilder(n)
	if n > 1 && k >= 1 {
		grid := newPointGrid(xs, ys, k)
		nn := make([]graph.VID, 0, k)
		for v := 0; v < n; v++ {
			nn = grid.kNearest(graph.VID(v), k, nn[:0])
			for _, w := range nn {
				b.AddEdge(graph.VID(v), w)
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("geometric-n%d-k%d", n, k)
	return g
}

// AD3 is the geometric graph with k = 3, the "tertiary" input used by
// Greiner, Hsu et al., Krishnamurthy et al., and Goddard et al.
func AD3(n int, seed uint64) *graph.Graph {
	g := Geometric(n, 3, seed)
	g.Name = fmt.Sprintf("ad3-n%d", n)
	return g
}

// pointGrid buckets unit-square points into side x side cells for
// k-nearest-neighbor queries.
type pointGrid struct {
	xs, ys []float64
	side   int
	cells  [][]graph.VID
}

func newPointGrid(xs, ys []float64, k int) *pointGrid {
	n := len(xs)
	// Aim for ~k points per cell so one ring usually suffices.
	side := 1
	for side*side*(k+1) < n {
		side++
	}
	g := &pointGrid{xs: xs, ys: ys, side: side, cells: make([][]graph.VID, side*side)}
	for i := 0; i < n; i++ {
		c := g.cellOf(xs[i], ys[i])
		g.cells[c] = append(g.cells[c], graph.VID(i))
	}
	return g
}

func (g *pointGrid) cellOf(x, y float64) int {
	cx := int(x * float64(g.side))
	cy := int(y * float64(g.side))
	if cx >= g.side {
		cx = g.side - 1
	}
	if cy >= g.side {
		cy = g.side - 1
	}
	return cy*g.side + cx
}

type nnCand struct {
	d2 float64
	v  graph.VID
}

// kNearest returns the k nearest neighbors of point v (excluding v),
// appending into out.
func (g *pointGrid) kNearest(v graph.VID, k int, out []graph.VID) []graph.VID {
	x, y := g.xs[v], g.ys[v]
	cx := int(x * float64(g.side))
	cy := int(y * float64(g.side))
	if cx >= g.side {
		cx = g.side - 1
	}
	if cy >= g.side {
		cy = g.side - 1
	}
	cell := 1.0 / float64(g.side)
	var cands []nnCand
	for ring := 0; ; ring++ {
		// Scan the cells whose Chebyshev distance from (cx,cy) equals ring.
		for dy := -ring; dy <= ring; dy++ {
			ny := cy + dy
			if ny < 0 || ny >= g.side {
				continue
			}
			for dx := -ring; dx <= ring; dx++ {
				if maxAbs(dx, dy) != ring {
					continue
				}
				nx := cx + dx
				if nx < 0 || nx >= g.side {
					continue
				}
				for _, w := range g.cells[ny*g.side+nx] {
					if w == v {
						continue
					}
					ddx, ddy := g.xs[w]-x, g.ys[w]-y
					cands = append(cands, nnCand{ddx*ddx + ddy*ddy, w})
				}
			}
		}
		// Points strictly within distance ring*cell of (x,y) are all inside
		// cells of Chebyshev radius <= ring+1 that we have scanned once
		// ring covers them; the safe guaranteed-covered radius after
		// scanning rings 0..ring is (ring)*cell.
		safe := float64(ring) * cell
		if len(cands) >= k {
			sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
			kth := cands[k-1].d2
			if kth <= safe*safe {
				break
			}
		}
		// The whole square is covered once ring spans the grid.
		if ring >= 2*g.side {
			sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
			break
		}
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	for _, c := range cands {
		out = append(out, c.v)
	}
	return out
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
