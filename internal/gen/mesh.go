package gen

import (
	"fmt"

	"spantree/internal/graph"
)

// Torus2D returns the rows x cols torus: every vertex is connected to
// its four lattice neighbors with wraparound. Vertices are numbered in
// row-major order, the paper's locality-friendly labeling; apply
// graph.RandomRelabel for the "random labeling" variant.
func Torus2D(rows, cols int) *graph.Graph {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gen: Torus2D(%d,%d) with negative side", rows, cols))
	}
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(r, c int) graph.VID { return graph.VID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				b.AddEdge(id(r, c), id(r, (c+1)%cols))
			}
			if rows > 1 {
				b.AddEdge(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("torus2d-%dx%d", rows, cols)
	return g
}

// Grid2D returns the rows x cols grid (mesh without wraparound),
// row-major numbering.
func Grid2D(rows, cols int) *graph.Graph {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gen: Grid2D(%d,%d) with negative side", rows, cols))
	}
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(r, c int) graph.VID { return graph.VID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("grid2d-%dx%d", rows, cols)
	return g
}

// Mesh2D is the paper's "2D60"-style irregular mesh: a rows x cols grid
// in which each lattice edge is independently present with probability
// prob. Mesh2D(side, side, 0.60, seed) reproduces 2D60.
func Mesh2D(rows, cols int, prob float64, seed uint64) *graph.Graph {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gen: Mesh2D(%d,%d) with negative side", rows, cols))
	}
	r0 := rng(seed, 'M'<<8|'2')
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(r, c int) graph.VID { return graph.VID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && r0.Prob(prob) {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows && r0.Prob(prob) {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("mesh2d-%dx%d-p%.0f", rows, cols, prob*100)
	return g
}

// Mesh3D is the paper's "3D40"-style irregular mesh: an x*y*z lattice in
// which each of the three axis-aligned lattice edges per vertex is
// independently present with probability prob. Mesh3D(s, s, s, 0.40,
// seed) reproduces 3D40.
func Mesh3D(x, y, z int, prob float64, seed uint64) *graph.Graph {
	if x < 0 || y < 0 || z < 0 {
		panic(fmt.Sprintf("gen: Mesh3D(%d,%d,%d) with negative side", x, y, z))
	}
	r0 := rng(seed, 'M'<<8|'3')
	n := x * y * z
	b := graph.NewBuilder(n)
	id := func(i, j, k int) graph.VID { return graph.VID((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x && r0.Prob(prob) {
					b.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y && r0.Prob(prob) {
					b.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z && r0.Prob(prob) {
					b.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("mesh3d-%dx%dx%d-p%.0f", x, y, z, prob*100)
	return g
}
