package gen

import (
	"fmt"
	"math"

	"spantree/internal/graph"
	"spantree/internal/xrand"
)

// GeoFlatParams configures the flat-mode geographic generator, a
// Waxman-style wide-area-network model (Calvert, Doar, Zegura): vertices
// are placed uniformly at random in the unit square, and an edge joins a
// pair at distance d with probability Alpha * exp(-d / (Beta * L)),
// where L is the maximum possible distance (sqrt(2) for the unit
// square). Only pairs within CutoffL * L are considered, which bounds
// the work at O(n * density) for the strongly distance-decayed
// parameters used in topology modeling.
type GeoFlatParams struct {
	Alpha   float64
	Beta    float64
	CutoffL float64
}

// DefaultGeoFlatParams returns parameters producing sparse graphs with
// average degree around 6-10 at every size, the regime of the paper's
// geographic inputs: CutoffL = 0 selects the scale-aware cutoff, which
// shrinks as 1/sqrt(n) so the expected neighborhood — and therefore the
// average degree — stays constant as the graph grows.
func DefaultGeoFlatParams() GeoFlatParams {
	return GeoFlatParams{Alpha: 0.9, Beta: 0, CutoffL: 0}
}

// effective resolves the parameters for an n-point instance: explicit
// values pass through; zero CutoffL/Beta select the scale-aware cutoff
// radius (a ~48-point expected candidate pool) and a decay length of a
// third of it.
func (p GeoFlatParams) effective(n int) (cutoff, betaL float64) {
	const sqrt2 = 1.4142135623730951
	cutoff = p.CutoffL * sqrt2
	if p.CutoffL == 0 && n > 0 {
		cutoff = math.Sqrt(48.0 / (math.Pi * float64(n)))
		if cutoff > 0.7 {
			cutoff = 0.7
		}
	}
	betaL = p.Beta * sqrt2
	if p.Beta == 0 {
		betaL = cutoff / 3
	}
	return cutoff, betaL
}

// GeoFlat generates a flat-mode geographic graph on n vertices.
func GeoFlat(n int, p GeoFlatParams, seed uint64) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: GeoFlat(%d) with negative n", n))
	}
	r := rng(seed, 'F')
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	b := graph.NewBuilder(n)
	addWaxmanEdges(b, xs, ys, nil, p, r)
	g := b.Build()
	g.Name = fmt.Sprintf("geoflat-n%d", n)
	return g
}

// addWaxmanEdges adds distance-probability edges among the points,
// optionally restricted to indices in subset (nil = all points). Pairs
// beyond the cutoff distance are skipped via a uniform grid.
func addWaxmanEdges(b *graph.Builder, xs, ys []float64, subset []graph.VID, p GeoFlatParams, r *xrand.Rand) {
	count := len(xs)
	if subset != nil {
		count = len(subset)
	}
	cutoff, betaL := p.effective(count)
	if cutoff <= 0 {
		return
	}
	idx := subset
	if idx == nil {
		idx = make([]graph.VID, len(xs))
		for i := range idx {
			idx[i] = graph.VID(i)
		}
	}
	side := int(1.0 / cutoff)
	if side < 1 {
		side = 1
	}
	cells := make(map[int][]graph.VID)
	cellOf := func(x, y float64) (int, int) {
		cx, cy := int(x*float64(side)), int(y*float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	for _, v := range idx {
		cx, cy := cellOf(xs[v], ys[v])
		key := cy*side + cx
		cells[key] = append(cells[key], v)
	}
	for _, v := range idx {
		cx, cy := cellOf(xs[v], ys[v])
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= side || ny < 0 || ny >= side {
					continue
				}
				for _, w := range cells[ny*side+nx] {
					if w <= v { // each unordered pair considered once
						continue
					}
					ddx, ddy := xs[w]-xs[v], ys[w]-ys[v]
					d := math.Sqrt(ddx*ddx + ddy*ddy)
					if d > cutoff {
						continue
					}
					if r.Prob(p.Alpha * math.Exp(-d/betaL)) {
						b.AddEdge(v, w)
					}
				}
			}
		}
	}
}

// GeoHierParams configures the hierarchical-mode geographic generator:
// the Internet is modeled as a backbone of core routers, domains
// clustered around backbone nodes, and subdomains clustered around
// domain nodes, following the transit-stub structure of Calvert, Doar
// and Zegura.
type GeoHierParams struct {
	// Backbone is the number of backbone vertices.
	Backbone int
	// DomainsPerBackbone and NodesPerDomain shape the middle tier.
	DomainsPerBackbone int
	NodesPerDomain     int
	// SubdomainProb is the probability a domain node sprouts a subdomain;
	// NodesPerSubdomain sizes it.
	SubdomainProb     float64
	NodesPerSubdomain int
	// Spread is the standard deviation of cluster placement around the
	// parent node, as a fraction of the unit square.
	Spread float64
	// IntraEdgeProb adds extra intra-cluster edges beyond the spanning
	// star, making clusters 2-edge-connected in expectation.
	IntraEdgeProb float64
}

// DefaultGeoHierParams returns a transit-stub-like shape.
func DefaultGeoHierParams() GeoHierParams {
	return GeoHierParams{
		Backbone:           16,
		DomainsPerBackbone: 3,
		NodesPerDomain:     8,
		SubdomainProb:      0.3,
		NodesPerSubdomain:  6,
		Spread:             0.03,
		IntraEdgeProb:      0.25,
	}
}

// GeoHier generates a hierarchical geographic graph with approximately n
// vertices: the tier sizes from p are scaled so the total vertex budget
// is n, then backbone, domains and subdomains are placed and wired. The
// returned graph is connected by construction (each tier is wired to its
// parent and the backbone is a connected Waxman graph augmented with a
// path).
func GeoHier(n int, p GeoHierParams, seed uint64) *graph.Graph {
	if n < 0 {
		panic(fmt.Sprintf("gen: GeoHier(%d) with negative n", n))
	}
	if n == 0 {
		g := graph.NewBuilder(0).Build()
		g.Name = "geohier-n0"
		return g
	}
	r := rng(seed, 'H')
	// Scale the tier shape to the vertex budget. A backbone node accounts
	// for itself plus its expected subtree.
	perDomain := float64(p.NodesPerDomain) * (1 + p.SubdomainProb*float64(p.NodesPerSubdomain)/float64(max(1, p.NodesPerDomain)))
	perBackbone := 1 + float64(p.DomainsPerBackbone)*perDomain
	backbone := int(float64(n)/perBackbone + 0.5)
	if backbone < 1 {
		backbone = 1
	}
	if backbone > n {
		backbone = n
	}

	type point struct{ x, y float64 }
	pts := make([]point, 0, n)
	addPoint := func(x, y float64) (graph.VID, bool) {
		if len(pts) >= n {
			return 0, false
		}
		pts = append(pts, point{clamp01(x), clamp01(y)})
		return graph.VID(len(pts) - 1), true
	}

	b := graph.NewBuilder(n)
	// Tier 1: backbone.
	bb := make([]graph.VID, 0, backbone)
	for i := 0; i < backbone; i++ {
		v, ok := addPoint(r.Float64(), r.Float64())
		if !ok {
			break
		}
		bb = append(bb, v)
	}
	// Wire the backbone: a path guarantees connectivity, Waxman edges add
	// realistic shortcuts.
	for i := 1; i < len(bb); i++ {
		b.AddEdge(bb[i-1], bb[i])
	}

	gauss := func(mu, sigma float64) float64 {
		// Box-Muller transform.
		u1 := r.Float64()
		for u1 == 0 {
			u1 = r.Float64()
		}
		u2 := r.Float64()
		return mu + sigma*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
	}

	// Tier 2 and 3: domains around backbone nodes, subdomains around
	// domain nodes.
	for _, bv := range bb {
		bx, by := pts[bv].x, pts[bv].y
		for d := 0; d < p.DomainsPerBackbone; d++ {
			var domain []graph.VID
			for k := 0; k < p.NodesPerDomain; k++ {
				v, ok := addPoint(gauss(bx, p.Spread), gauss(by, p.Spread))
				if !ok {
					break
				}
				domain = append(domain, v)
			}
			if len(domain) == 0 {
				continue
			}
			// Gateway connects the domain to its backbone node; the rest of
			// the domain forms a star on the gateway plus random chords.
			b.AddEdge(bv, domain[0])
			for i := 1; i < len(domain); i++ {
				b.AddEdge(domain[0], domain[i])
				if r.Prob(p.IntraEdgeProb) {
					b.AddEdge(domain[i], domain[r.Intn(i)])
				}
			}
			for _, dv := range domain {
				if !r.Prob(p.SubdomainProb) {
					continue
				}
				dx, dy := pts[dv].x, pts[dv].y
				var sub []graph.VID
				for k := 0; k < p.NodesPerSubdomain; k++ {
					v, ok := addPoint(gauss(dx, p.Spread/3), gauss(dy, p.Spread/3))
					if !ok {
						break
					}
					sub = append(sub, v)
				}
				if len(sub) == 0 {
					continue
				}
				b.AddEdge(dv, sub[0])
				for i := 1; i < len(sub); i++ {
					b.AddEdge(sub[0], sub[i])
					if r.Prob(p.IntraEdgeProb) {
						b.AddEdge(sub[i], sub[r.Intn(i)])
					}
				}
			}
		}
	}
	// Any remaining vertex budget becomes extra domain nodes on random
	// backbone vertices so the graph has exactly n vertices, connected.
	for len(pts) < n {
		bv := bb[r.Intn(len(bb))]
		v, _ := addPoint(gauss(pts[bv].x, p.Spread), gauss(pts[bv].y, p.Spread))
		b.AddEdge(bv, v)
	}
	// Waxman shortcuts over the backbone tier using the final coordinates.
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i], ys[i] = pt.x, pt.y
	}
	addWaxmanEdges(b, xs, ys, bb, GeoFlatParams{Alpha: 0.8, Beta: 0.15, CutoffL: 0.5}, r)

	g := b.Build()
	g.Name = fmt.Sprintf("geohier-n%d", n)
	return g
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
