package spanseq

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

func algorithms() map[string]func(*graph.Graph, *smpmodel.Probe) []graph.VID {
	return map[string]func(*graph.Graph, *smpmodel.Probe) []graph.VID{
		"bfs": BFS,
		"dfs": DFS,
		"uf":  UnionFind,
	}
}

func TestSequentialAlgorithmsOnShapes(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0),
		gen.Chain(1),
		gen.Chain(2),
		gen.Chain(100),
		gen.Star(50),
		gen.Cycle(30),
		gen.Complete(12),
		gen.Torus2D(6, 6),
		gen.Random(100, 150, 1),
		graph.Union(gen.Chain(5), gen.Star(4), gen.Cycle(6)),
	}
	for name, alg := range algorithms() {
		for _, g := range shapes {
			parent := alg(g, nil)
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s on %v: %v", name, g, err)
			}
		}
	}
}

func TestSequentialAlgorithmsProperty(t *testing.T) {
	for name, alg := range algorithms() {
		f := func(seed uint64, nRaw, mRaw uint16) bool {
			n := int(nRaw%300) + 1
			g := gen.Random(n, int(mRaw%600), seed)
			return verify.Forest(g, alg(g, nil)) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBFSProducesLevelOrderTree(t *testing.T) {
	// On a chain rooted at 0, BFS parents are exactly v-1.
	g := gen.Chain(50)
	parent := BFS(g, nil)
	if parent[0] != graph.None {
		t.Fatal("vertex 0 should be the root")
	}
	for v := 1; v < 50; v++ {
		if parent[v] != graph.VID(v-1) {
			t.Fatalf("parent[%d] = %d, want %d", v, parent[v], v-1)
		}
	}
}

func TestDFSDeepGraphNoOverflow(t *testing.T) {
	// 1M-vertex chain: a recursive DFS would overflow; the iterative one
	// must not.
	g := gen.Chain(1 << 20)
	parent := DFS(g, nil)
	roots := 0
	for _, p := range parent {
		if p == graph.None {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d", roots)
	}
}

func TestProbeCharges(t *testing.T) {
	g := gen.Random(200, 300, 2)
	model := smpmodel.New(1)
	parent := BFS(g, model.Probe(0))
	roots := 0
	for _, p := range parent {
		if p == graph.None {
			roots++
		}
	}
	c := model.Proc(0)
	// Fused-array counting: one non-contiguous access per visited vertex,
	// one per directed arc (the fused visited-check on parent[w]), and one
	// per discovered child (the parent write). The paper's two-array BFS
	// charges two per arc; fusing the visited bit into the parent array
	// removes one of them.
	n := g.NumVertices()
	wantNC := int64(n + len(g.Adj) + (n - roots))
	if c.NonContig != wantNC {
		t.Fatalf("BFS charged %d non-contiguous accesses, want %d", c.NonContig, wantNC)
	}
	// Adjacency streaming plus the root-normalization pass.
	if c.Contig != int64(len(g.Adj)+n) {
		t.Fatalf("BFS charged %d contiguous accesses, want %d", c.Contig, len(g.Adj)+n)
	}
}

func TestRootForest(t *testing.T) {
	// A 5-vertex path given as tree adjacency plus an isolated vertex.
	treeAdj := make([][]graph.VID, 6)
	for i := 0; i < 4; i++ {
		treeAdj[i] = append(treeAdj[i], graph.VID(i+1))
		treeAdj[i+1] = append(treeAdj[i+1], graph.VID(i))
	}
	parent := RootForest(6, treeAdj)
	if parent[0] != graph.None || parent[5] != graph.None {
		t.Fatal("roots misplaced")
	}
	for v := 1; v < 5; v++ {
		if parent[v] != graph.VID(v-1) {
			t.Fatalf("parent[%d] = %d", v, parent[v])
		}
	}
}
