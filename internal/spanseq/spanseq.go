// Package spanseq implements the sequential spanning-tree baselines: the
// breadth-first traversal the paper uses as its "Sequential" reference
// line (the best sequential algorithm, O(m+n) with a very small hidden
// constant), an iterative depth-first variant, and a union-find sweep.
// All return spanning forests as parent arrays: parent[v] == graph.None
// marks a root (one per connected component); every other vertex's
// parent edge {v, parent[v]} is a tree edge.
package spanseq

import (
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
)

// BFS computes a spanning forest by repeated breadth-first search. probe
// may be nil; when set it is charged with the fused-array operation
// counts: one non-contiguous access to visit each vertex, one per
// directed arc (the visited-check reads parent[w] directly), and one per
// discovered child (the parent write). The paper counts two accesses per
// arc for a two-array BFS; the reproduction fuses the visited bit into
// the parent array in both this baseline and the parallel traversal, so
// the modeled speedup compares equal per-vertex layouts.
func BFS(g *graph.Graph, probe *smpmodel.Probe) []graph.VID {
	n := g.NumVertices()
	parent := make([]graph.VID, n)
	for i := range parent {
		parent[i] = graph.None
	}
	queue := make([]graph.VID, 0, 1024)
	for s := 0; s < n; s++ {
		if parent[s] != graph.None {
			continue
		}
		parent[s] = graph.VID(s) // self-parent root sentinel
		queue = append(queue[:0], graph.VID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			probe.NonContig(1) // visit v: load adjacency offset
			nb := g.Neighbors(v)
			probe.Contig(int64(len(nb))) // stream the adjacency list
			for _, w := range nb {
				probe.NonContig(1) // fused visited-check on parent[w]
				if parent[w] == graph.None {
					parent[w] = v
					probe.NonContig(1) // claim: parent write
					queue = append(queue, w)
				}
			}
		}
	}
	normalizeRoots(parent, probe)
	return parent
}

// normalizeRoots rewrites the self-parent root sentinel back to
// graph.None, restoring the public forest representation (one streaming
// pass, mirroring the parallel traversal's epilogue).
func normalizeRoots(parent []graph.VID, probe *smpmodel.Probe) {
	for v := range parent {
		if parent[v] == graph.VID(v) {
			parent[v] = graph.None
		}
	}
	probe.Contig(int64(len(parent)))
}

// DFS computes a spanning forest by iterative depth-first search (an
// explicit stack; recursion would overflow on the paper's degenerate
// chain inputs).
func DFS(g *graph.Graph, probe *smpmodel.Probe) []graph.VID {
	n := g.NumVertices()
	parent := make([]graph.VID, n)
	for i := range parent {
		parent[i] = graph.None
	}
	stack := make([]graph.VID, 0, 1024)
	for s := 0; s < n; s++ {
		if parent[s] != graph.None {
			continue
		}
		parent[s] = graph.VID(s) // self-parent root sentinel
		stack = append(stack[:0], graph.VID(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			probe.NonContig(1)
			nb := g.Neighbors(v)
			probe.Contig(int64(len(nb)))
			for _, w := range nb {
				probe.NonContig(1) // fused visited-check on parent[w]
				if parent[w] == graph.None {
					parent[w] = v
					probe.NonContig(1) // claim: parent write
					stack = append(stack, w)
				}
			}
		}
	}
	normalizeRoots(parent, probe)
	return parent
}

// UnionFind computes a spanning forest by scanning the edge list once
// through a disjoint-set structure (Kruskal without weights). The
// resulting tree-edge set is converted into a parent array by a BFS over
// the selected edges.
func UnionFind(g *graph.Graph, probe *smpmodel.Probe) []graph.VID {
	n := g.NumVertices()
	uf := graph.NewUnionFind(n)
	// Collect tree edges as an adjacency structure for rooting.
	treeAdj := make([][]graph.VID, n)
	for v := 0; v < n; v++ {
		probe.NonContig(1)
		nb := g.Neighbors(graph.VID(v))
		probe.Contig(int64(len(nb)))
		for _, w := range nb {
			if graph.VID(v) >= w {
				continue
			}
			probe.NonContig(2) // two Finds, amortized
			if uf.Union(graph.VID(v), w) {
				treeAdj[v] = append(treeAdj[v], w)
				treeAdj[w] = append(treeAdj[w], graph.VID(v))
			}
		}
	}
	return RootForest(n, treeAdj)
}

// RootForest converts an undirected forest given as adjacency lists into
// a parent array by BFS from the smallest vertex of each component.
func RootForest(n int, treeAdj [][]graph.VID) []graph.VID {
	parent := make([]graph.VID, n)
	visited := make([]bool, n)
	for i := range parent {
		parent[i] = graph.None
	}
	queue := make([]graph.VID, 0, 1024)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], graph.VID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range treeAdj[v] {
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return parent
}
