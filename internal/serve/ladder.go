package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"spantree"
	"spantree/internal/gen"
)

// The degradation ladder. A graph whose runs keep stalling or blowing
// their deadlines is not served harder — it is served simpler: each
// rung strips one source of coordination from the per-request execution
// until the runs complete again, and a cooled-down stretch of healthy
// completions climbs back up.
//
//	rung 0: the configured execution (resolved shards, full p)
//	rung 1: unsharded (no partition, no stitch, one team)
//	rung 2: unsharded at half the workers
//	rung 3: sequential (p = 1 — no steals, no barriers)
//
// Rungs are per graph, not per server: one pathological graph degrades
// alone while the rest of the registry keeps its full execution.
const (
	numRungs = 4
	maxRung  = numRungs - 1
)

// degradeAfter is how many consecutive stall/deadline failures on one
// graph step its execution down a rung.
const degradeAfter = 3

// entry is one registered graph: its spec, its resolved execution, and
// its position on the degradation ladder. Pools for degraded rungs are
// built lazily on first use and kept until eviction, so flapping
// between rungs never rebuilds worker teams.
type entry struct {
	name     string
	spec     gen.Spec
	g        *spantree.Graph
	layout   spantree.Layout         // the resolved per-graph layout
	shards   int                     // the resolved per-graph shard count
	base     spantree.SessionOptions // rung-0 session options
	poolSize int

	rung     atomic.Int32
	fails    atomic.Int32 // consecutive stall/deadline failures
	lastStep atomic.Int64 // unix nanos of the last rung change

	pmu   sync.Mutex
	pools [numRungs]*spantree.SessionPool // pools[0] is built at registration
}

// optionsFor derives the session options for one rung from the rung-0
// base.
func (e *entry) optionsFor(r int32) spantree.SessionOptions {
	o := e.base
	switch {
	case r >= 3:
		o.Shards = 1
		o.NumProcs = 1
	case r == 2:
		o.Shards = 1
		if o.NumProcs > 1 {
			o.NumProcs /= 2
		}
	case r == 1:
		o.Shards = 1
	}
	return o
}

// poolFor returns the session pool serving e at its current rung,
// building it on first use. A build failure at a degraded rung falls
// back to the rung-0 pool rather than failing the request.
func (e *entry) poolFor() *spantree.SessionPool {
	r := e.rung.Load()
	if r == 0 {
		return e.pools[0]
	}
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.pools[r] == nil {
		p, err := spantree.NewSessionPool(e.g, e.optionsFor(r), e.poolSize)
		if err != nil {
			return e.pools[0]
		}
		e.pools[r] = p
	}
	return e.pools[r]
}

// closePools retires every rung's pool (eviction and shutdown).
func (e *entry) closePools() {
	e.pmu.Lock()
	pools := e.pools
	e.pools = [numRungs]*spantree.SessionPool{}
	e.pmu.Unlock()
	for _, p := range pools {
		if p != nil {
			p.Close()
		}
	}
}

// noteFailure feeds one failed run into the ladder: stalls and deadline
// blowouts are the degradation signals, and degradeAfter consecutive
// ones step the graph down a rung. Other failures (client gone, graph
// evicted) say nothing about the execution and reset nothing.
func (s *Server) noteFailure(e *entry, stallOrDeadline bool) {
	if !stallOrDeadline {
		return
	}
	if e.fails.Add(1) < degradeAfter {
		return
	}
	e.fails.Store(0)
	r := e.rung.Load()
	if r >= maxRung {
		return
	}
	if e.rung.CompareAndSwap(r, r+1) {
		e.lastStep.Store(time.Now().UnixNano())
		s.degradeSteps.Add(1)
	}
}

// noteSuccess feeds one healthy completion into the ladder: the failure
// streak resets, and once the graph has been degraded for a full
// cool-down it climbs back up one rung.
func (s *Server) noteSuccess(e *entry) {
	e.fails.Store(0)
	r := e.rung.Load()
	if r == 0 {
		return
	}
	if time.Since(time.Unix(0, e.lastStep.Load())) < s.cfg.CoolDown {
		return
	}
	if e.rung.CompareAndSwap(r, r-1) {
		e.lastStep.Store(time.Now().UnixNano())
	}
}

// maxRungHeld returns the highest rung any registered graph currently
// sits on (the readiness probe's degradation signal).
func (s *Server) maxRungHeld() int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var r int32
	for _, e := range s.graphs {
		if er := e.rung.Load(); er > r {
			r = er
		}
	}
	return r
}
