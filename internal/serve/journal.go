package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"spantree/internal/chaos"
	"spantree/internal/gen"
)

// The crash-safe registry journal. Graph registrations and evictions
// are appended to a JSON-lines file — specs only, never graph data;
// graphs regenerate from their specs — and fsynced before the mutation
// commits to the in-memory registry. A SIGKILL'd server therefore
// replays the journal on boot and restores exactly the graph set it was
// serving: append-before-commit means a mutation the client saw
// acknowledged is on disk, and a crash mid-append leaves at worst a
// truncated trailing line, which replay drops.
//
// The file grows one line per mutation, so once the op count outruns
// the live set (more than max(8, 4*live) records) it is compacted: a
// snapshot holding only the live registrations is written to a temp
// file, fsynced, and renamed over the journal — the standard atomic
// replace, so a crash during compaction leaves either the old or the
// new file, never a mix.

// journalSchema is the versioned header of every journal file.
const journalSchema = "spantree/journal/v1"

// journal ops.
const (
	journalOpRegister = "register"
	journalOpEvict    = "evict"
)

// errJournal is the typed failure of a journal append: the mutation was
// aborted and the registry is unchanged.
var errJournal = errors.New("serve: journal append failed; registry mutation aborted")

// journalRecord is one line of the file: the header (Schema set) or one
// op.
type journalRecord struct {
	Schema string       `json:"schema,omitempty"`
	Op     string       `json:"op,omitempty"`
	Name   string       `json:"name,omitempty"`
	Spec   *journalSpec `json:"spec,omitempty"`
}

// journalSpec is gen.Spec with stable wire names (the registry journal
// is a persistence format; gen.Spec's field names are not).
type journalSpec struct {
	Kind        string `json:"kind"`
	N           int    `json:"n"`
	M           int    `json:"m,omitempty"`
	K           int    `json:"k,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	RandomLabel bool   `json:"random_label,omitempty"`
}

func toJournalSpec(s gen.Spec) *journalSpec {
	return &journalSpec{Kind: s.Kind, N: s.N, M: s.M, K: s.K, Seed: s.Seed, RandomLabel: s.RandomLabel}
}

func (js *journalSpec) spec() gen.Spec {
	return gen.Spec{Kind: js.Kind, N: js.N, M: js.M, K: js.K, Seed: js.Seed, RandomLabel: js.RandomLabel}
}

// journal is the append handle. All methods take the mutex; appends hit
// the disk (write + sync) before reporting success.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	seq  uint64 // append attempts (the chaos fault index)
	recs int    // op records currently in the file
	live map[string]gen.Spec
	inj  *chaos.ServeInjector
}

// openJournal opens (or creates) the journal at path, replays it, and
// returns the handle plus the live graph set in name order. A torn tail
// (crash mid-append: a final line missing its newline, or a malformed
// final line) is truncated away so subsequent appends continue a clean
// record stream; malformed content with complete records after it is
// corruption, not a crash artifact — an error, because better to refuse
// boot than serve a registry that silently lost graphs.
func openJournal(path string, inj *chaos.ServeInjector) (*journal, []string, map[string]gen.Spec, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	j := &journal{path: path, f: f, live: make(map[string]gen.Spec), inj: inj}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	first := true
	off, validEnd := 0, 0
	torn := false
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// A final line without its newline: the classic torn append.
			torn = true
			break
		}
		line := data[off : off+nl]
		off += nl + 1
		if len(line) == 0 {
			validEnd = off
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if off < len(data) {
				f.Close()
				return nil, nil, nil, fmt.Errorf("journal %s: malformed record before end of file", path)
			}
			torn = true
			break
		}
		if first {
			first = false
			if rec.Schema != journalSchema {
				f.Close()
				return nil, nil, nil, fmt.Errorf("journal %s: schema %q, want %q", path, rec.Schema, journalSchema)
			}
			validEnd = off
			continue
		}
		switch rec.Op {
		case journalOpRegister:
			if rec.Spec == nil {
				f.Close()
				return nil, nil, nil, fmt.Errorf("journal %s: register %q without a spec", path, rec.Name)
			}
			j.live[rec.Name] = rec.Spec.spec()
		case journalOpEvict:
			delete(j.live, rec.Name)
		default:
			f.Close()
			return nil, nil, nil, fmt.Errorf("journal %s: unknown op %q", path, rec.Op)
		}
		j.recs++
		validEnd = off
	}
	if torn {
		// Truncate the torn tail so the next append continues a clean
		// stream — without this, recovery appends would land after the
		// fragment and the *next* replay would read it as corruption.
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	if first {
		// Fresh file: stamp the header now.
		if err := j.writeLine(journalRecord{Schema: journalSchema}); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	names := make([]string, 0, len(j.live))
	for name := range j.live {
		names = append(names, name)
	}
	sort.Strings(names)
	return j, names, j.live, nil
}

// AppendRegister journals one registration. On success the op is on
// disk; on failure (injected or real) nothing was committed and the
// caller must abort the mutation.
func (j *journal) AppendRegister(name string, spec gen.Spec) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{Op: journalOpRegister, Name: name, Spec: toJournalSpec(spec)}, func() {
		j.live[name] = spec
	})
}

// AppendEvict journals one eviction.
func (j *journal) AppendEvict(name string) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{Op: journalOpEvict, Name: name}, func() {
		delete(j.live, name)
	})
}

func (j *journal) append(rec journalRecord, commit func()) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.seq
	j.seq++
	if j.inj.JournalFault(seq) {
		return errJournal
	}
	if err := j.writeLine(rec); err != nil {
		return fmt.Errorf("%w: %v", errJournal, err)
	}
	commit()
	j.recs++
	j.maybeCompact()
	return nil
}

// writeLine appends one JSON line and syncs it to disk.
func (j *journal) writeLine(rec journalRecord) error {
	if j.f == nil {
		return errors.New("journal file handle lost")
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	return j.f.Sync()
}

// maybeCompact (mu held) rewrites the journal as a snapshot of the live
// set when the op log has outrun it. Compaction failures are swallowed:
// the oversized journal still replays correctly, and the next append
// retries.
func (j *journal) maybeCompact() {
	floor := 8
	if n := 4 * len(j.live); n > floor {
		floor = n
	}
	if j.recs <= floor {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	names := make([]string, 0, len(j.live))
	for name := range j.live {
		names = append(names, name)
	}
	sort.Strings(names)
	recs := make([]journalRecord, 0, len(names)+1)
	recs = append(recs, journalRecord{Schema: journalSchema})
	for _, name := range names {
		spec := j.live[name]
		recs = append(recs, journalRecord{Op: journalOpRegister, Name: name, Spec: toJournalSpec(spec)})
	}
	for _, rec := range recs {
		buf, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			return
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		// The snapshot replaced the file but we cannot reopen it; keep
		// appending to the old handle would split history, so fail hard
		// on the next append instead.
		j.f = nil
		old.Close()
		return
	}
	j.f = f
	old.Close()
	j.recs = len(j.live)
}

// Close releases the file handle.
func (j *journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
