//go:build chaos

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"spantree/internal/gen"
)

// The serving-layer chaos stress suite (chaos builds only, run under
// -race in CI). The contract under injected faults — slow sessions,
// wedged requests, aimed handler panics, journal write failures — is
// absolute: every response is a 200 or a *typed* error body, no
// goroutine outlives its server, and the registry never diverges from
// its journal. A failing seed replays deterministically: every fault in
// a run is drawn from (ChaosSeed, request id).

// chaosStressSeeds is the seed sweep width; the ISSUE floor is 50.
const chaosStressSeeds = 50

// typedStatuses is the full set of statuses the serving layer may emit
// for /v1/spantree under chaos, mapped to the code each must carry.
var typedStatuses = map[int][]string{
	http.StatusTooManyRequests:     {CodeOverloaded},
	StatusClientClosedRequest:      {CodeCanceled},
	http.StatusServiceUnavailable:  {CodeStalled},
	http.StatusGatewayTimeout:      {CodeDeadline},
	http.StatusNotFound:            {CodeNotFound},
	http.StatusInternalServerError: {CodeInternal},
}

// TestServeChaosStressSeeds sweeps chaosStressSeeds seeded fault
// schedules through a live server: concurrent clients, every fault kind
// armed at its default probability. Assertions per response: the status
// is in the typed set and the body decodes to the matching code — an
// untyped 500, an empty body, or a transport-level drop fails the seed.
// Across the whole sweep the goroutine count must come back flat.
func TestServeChaosStressSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress sweep is not a -short test")
	}
	base := runtime.NumGoroutine()
	var injected, faults int64
	for seed := uint64(1); seed <= chaosStressSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := New(Config{
				NumProcs: 2, PoolSize: 1, MaxInFlight: 4,
				MaxTimeout:  60 * time.Millisecond,
				StallBudget: 25 * time.Millisecond,
				CoolDown:    time.Millisecond,
				ChaosSeed:   seed,
			})
			defer s.Close()
			if err := s.Register("g", gen.Spec{Kind: "chain", N: 256}); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s)
			defer ts.Close()
			var wg sync.WaitGroup
			errCh := make(chan error, 64)
			var mu sync.Mutex
			local := 0
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 6; i++ {
						resp, raw := postJSON(t, ts.URL+"/v1/spantree",
							SpanTreeRequest{Graph: "g", Seed: uint64(w*100 + i), TimeoutMS: 50})
						if resp.StatusCode == http.StatusOK {
							continue
						}
						mu.Lock()
						local++
						mu.Unlock()
						codes, ok := typedStatuses[resp.StatusCode]
						if !ok {
							errCh <- fmt.Errorf("seed %d: untyped status %d (%s)", seed, resp.StatusCode, raw)
							return
						}
						var e ErrorBody
						if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
							errCh <- fmt.Errorf("seed %d: status %d without a typed body: %q", seed, resp.StatusCode, raw)
							return
						}
						found := false
						for _, c := range codes {
							if e.Error == c {
								found = true
							}
						}
						if !found {
							errCh <- fmt.Errorf("seed %d: status %d carries code %q, want one of %v", seed, resp.StatusCode, e.Error, codes)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			injected += s.inj.Injections()
			faults += int64(local)
		})
	}
	if injected == 0 {
		t.Fatal("the sweep injected nothing — the chaos plumbing is dead")
	}
	t.Logf("sweep: %d injected faults, %d non-200 responses, all typed", injected, faults)
	// Goroutine-flat across 50 server lifecycles: allow the runtime a
	// settle window for netpoller and timer goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base+4 {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > base+4 {
		t.Fatalf("goroutines leaked across the sweep: %d -> %d", base, after)
	}
}

// TestServeChaosJournalConsistency drives registry mutations through a
// journal whose writes fail from the seeded fault stream. The contract:
// a mutation answered 201/200 is durable, a mutation answered the typed
// journal 500 never happened — so a fresh server replaying the same
// file must reconstruct exactly the acknowledged set.
func TestServeChaosJournalConsistency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.journal")
	s := New(Config{NumProcs: 1, PoolSize: 1, ChaosSeed: 11})
	if err := s.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	live := map[string]bool{}
	journalFaults := 0
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("g%02d", i)
		resp, raw := postJSON(t, ts.URL+"/v1/graphs",
			RegisterRequest{Name: name, Kind: "chain", N: 16})
		switch resp.StatusCode {
		case http.StatusCreated:
			live[name] = true
		case http.StatusInternalServerError:
			if e := decodeError(t, raw); e.Error != CodeJournal {
				t.Fatalf("register %s: 500 code %q, want %q", name, e.Error, CodeJournal)
			}
			journalFaults++
		default:
			t.Fatalf("register %s: status %d body %s", name, resp.StatusCode, raw)
		}
	}
	// Evict every other acknowledged graph; evictions hit the same
	// faulty disk, and a refused one must leave the graph live.
	names := make([]string, 0, len(live))
	for n := range live {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		if i%2 != 0 {
			continue
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+n, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			delete(live, n)
		case http.StatusInternalServerError:
			if e.Error != CodeJournal {
				t.Fatalf("evict %s: 500 code %q, want %q", n, e.Error, CodeJournal)
			}
			journalFaults++
		default:
			t.Fatalf("evict %s: status %d", n, resp.StatusCode)
		}
	}
	if journalFaults == 0 {
		t.Fatal("no journal fault fired — pick a different seed")
	}
	s.Close()

	// The replayed registry is exactly the acknowledged set.
	r := New(Config{NumProcs: 1, PoolSize: 1})
	defer r.Close()
	if err := r.OpenJournal(path); err != nil {
		t.Fatalf("replay: %v", err)
	}
	got := make(map[string]bool)
	for _, info := range r.listGraphs() {
		got[info.Name] = true
	}
	if len(got) != len(live) {
		t.Fatalf("replayed %d graphs, acknowledged %d", len(got), len(live))
	}
	for n := range live {
		if !got[n] {
			t.Fatalf("acknowledged graph %s lost in replay", n)
		}
	}
	t.Logf("%d journal faults, %d graphs survived consistently", journalFaults, len(live))
}
