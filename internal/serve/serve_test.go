package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"spantree"
	"spantree/internal/gen"
	"spantree/internal/graph"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeError(t *testing.T, raw []byte) ErrorBody {
	t.Helper()
	var e ErrorBody
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body %q: %v", raw, err)
	}
	return e
}

// TestServeLifecycle walks the full API surface: health, register, list,
// run (with and without the parent array), evict, and the 404 after.
func TestServeLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{NumProcs: 2, PoolSize: 2})

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	reg := RegisterRequest{Name: "small", Kind: "torus2d", N: 256, Seed: 7}
	resp, _ = postJSON(t, ts.URL+"/v1/graphs", reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/graphs", reg)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d", resp.StatusCode)
	}
	if e := decodeError(t, raw); e.Error != CodeConflict {
		t.Fatalf("duplicate register: code %q", e.Error)
	}

	var list GraphListResponse
	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "small" || list.Graphs[0].N != 256 {
		t.Fatalf("list: %+v", list)
	}

	// A run without the parent array.
	resp, raw = postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "small", Seed: 42})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spantree: status %d body %s", resp.StatusCode, raw)
	}
	var run SpanTreeResponse
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	if run.N != 256 || run.Roots != 1 || run.TreeEdges != 255 || len(run.Parent) != 0 {
		t.Fatalf("spantree: %+v", run)
	}

	// A run returning the full forest; verify it against the same spec.
	resp, raw = postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "small", Seed: 42, IncludeParent: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spantree parent: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(gen.Spec{Kind: "torus2d", N: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Parent) != g.NumVertices() {
		t.Fatalf("parent length %d, want %d", len(run.Parent), g.NumVertices())
	}
	if err := spantree.Verify(g, run.Parent); err != nil {
		t.Fatalf("served forest invalid: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/small", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, raw = postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "small"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("spantree after evict: status %d", resp.StatusCode)
	}
	if e := decodeError(t, raw); e.Error != CodeNotFound {
		t.Fatalf("spantree after evict: code %q", e.Error)
	}
}

// TestServeGraphTooLarge: registrations above the vertex cap are turned
// away with the typed 413 before any memory is committed.
func TestServeGraphTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1, MaxVertices: 1000})
	resp, raw := postJSON(t, ts.URL+"/v1/graphs",
		RegisterRequest{Name: "big", Kind: "chain", N: 100000})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, raw); e.Error != CodeGraphTooLarge {
		t.Fatalf("code %q, want %q", e.Error, CodeGraphTooLarge)
	}
}

// TestServeOverloaded: with the admission semaphore full, a request is
// rejected immediately with the typed 429 — it never queues behind the
// in-flight work.
func TestServeOverloaded(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1, MaxInFlight: 1})
	if err := s.Register("g", gen.Spec{Kind: "chain", N: 64}); err != nil {
		t.Fatal(err)
	}
	// Occupy the only admission slot as an in-flight request would.
	if !s.lim.Acquire() {
		t.Fatal("could not take the only admission slot")
	}
	resp, raw := postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	if e := decodeError(t, raw); e.Error != CodeOverloaded {
		t.Fatalf("code %q, want %q", e.Error, CodeOverloaded)
	}
	s.lim.Release(0, false)
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// With the slot free the same request succeeds.
	resp, _ = postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
}

// TestServeDeadline: a request whose deadline expires while it waits for
// a session gets the typed 504 through the fault plumbing.
func TestServeDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1, MaxInFlight: 4})
	if err := s.Register("g", gen.Spec{Kind: "chain", N: 64}); err != nil {
		t.Fatal(err)
	}
	// Hold the pool's only session so the request's Acquire blocks until
	// its 20ms deadline fires.
	e := s.lookup("g")
	sess, ok := e.pools[0].TryAcquire()
	if !ok {
		t.Fatal("could not drain the pool")
	}
	resp, raw := postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g", TimeoutMS: 20})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, raw)
	}
	if e := decodeError(t, raw); e.Error != CodeDeadline {
		t.Fatalf("code %q, want %q", e.Error, CodeDeadline)
	}
	if got := s.deadlines.Load(); got != 1 {
		t.Fatalf("deadlines counter = %d, want 1", got)
	}
	e.pools[0].Release(sess)
	resp, _ = postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g", TimeoutMS: 5000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
}

// TestServeBadRequests: malformed JSON and unknown generator kinds map
// to the typed 400.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1})
	resp, err := http.Post(ts.URL+"/v1/spantree", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	resp2, raw := postJSON(t, ts.URL+"/v1/graphs",
		RegisterRequest{Name: "x", Kind: "nonsense", N: 10})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", resp2.StatusCode)
	}
	if e := decodeError(t, raw); e.Error != CodeBadRequest {
		t.Fatalf("unknown kind: code %q", e.Error)
	}
}

// TestServeConcurrent hammers one graph from many clients (run under
// -race in CI): every response is either a valid 200 forest summary or
// a typed 429, and the stats counters reconcile with what the clients
// saw.
func TestServeConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 2, PoolSize: 2, MaxInFlight: 4})
	if err := s.Register("g", gen.Spec{Kind: "random", N: 300, M: 700, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(gen.Spec{Kind: "random", N: 300, M: 700, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wantRoots := graph.NumComponents(g)
	var wg sync.WaitGroup
	var ok200, ok429 int64
	var mu sync.Mutex
	errCh := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, raw := postJSON(t, ts.URL+"/v1/spantree",
					SpanTreeRequest{Graph: "g", Seed: uint64(c*100 + i)})
				switch resp.StatusCode {
				case http.StatusOK:
					var run SpanTreeResponse
					if err := json.Unmarshal(raw, &run); err != nil {
						errCh <- err
						return
					}
					if run.Roots != wantRoots {
						errCh <- fmt.Errorf("roots %d, want %d", run.Roots, wantRoots)
						return
					}
					mu.Lock()
					ok200++
					mu.Unlock()
				case http.StatusTooManyRequests:
					mu.Lock()
					ok429++
					mu.Unlock()
				default:
					errCh <- fmt.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if ok200 == 0 {
		t.Fatal("no request succeeded")
	}
	if s.served.Load() != ok200 || s.rejected.Load() != ok429 {
		t.Fatalf("counters served=%d rejected=%d, clients saw %d/%d",
			s.served.Load(), s.rejected.Load(), ok200, ok429)
	}
}

// TestServeAutoLayout: the default layout policy picks the compact
// uint32 arena for graphs that fit it, reports the selection in
// GraphInfo, and still serves valid forests; explicit policies override
// the choice.
func TestServeAutoLayout(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 2, PoolSize: 1})
	if err := s.Register("g", gen.Spec{Kind: "torus2d", N: 256, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	infos := s.listGraphs()
	if len(infos) != 1 || infos[0].Layout != "compact" {
		t.Fatalf("auto policy picked %+v, want layout compact", infos)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g", IncludeParent: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spantree on auto-compact pool: status %d body %s", resp.StatusCode, raw)
	}
	var run SpanTreeResponse
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	g, _ := gen.Generate(gen.Spec{Kind: "torus2d", N: 256, Seed: 7})
	if err := spantree.Verify(g, run.Parent); err != nil {
		t.Fatalf("forest from auto-compact pool invalid: %v", err)
	}

	wide := New(Config{NumProcs: 1, PoolSize: 1, Layout: LayoutWide})
	defer wide.Close()
	if err := wide.Register("g", gen.Spec{Kind: "chain", N: 64}); err != nil {
		t.Fatal(err)
	}
	if infos := wide.listGraphs(); infos[0].Layout != "wide" {
		t.Fatalf("explicit wide policy picked %q", infos[0].Layout)
	}

	bad := New(Config{NumProcs: 1, PoolSize: 1, Layout: "sideways"})
	defer bad.Close()
	if err := bad.Register("g", gen.Spec{Kind: "chain", N: 64}); err == nil {
		t.Fatal("bad layout policy accepted")
	}
}

// TestServeSpanUF: a server configured for the CAS-hook sweep serves
// the same wire contract — valid forests, spanuf stamped in GraphInfo,
// and the traversal-only response fields zeroed.
func TestServeSpanUF(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 2, PoolSize: 1, Algorithm: spantree.AlgSpanUF})
	if err := s.Register("g", gen.Spec{Kind: "torus2d", N: 256, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if infos := s.listGraphs(); infos[0].Algorithm != "spanuf" {
		t.Fatalf("GraphInfo algorithm %q, want spanuf", infos[0].Algorithm)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g", IncludeParent: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spantree on spanuf pool: status %d body %s", resp.StatusCode, raw)
	}
	var run SpanTreeResponse
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	if run.Roots != 1 || run.TreeEdges != 255 || run.StubSize != 0 || run.Steals != 0 {
		t.Fatalf("spanuf response: %+v", run)
	}
	g, _ := gen.Generate(gen.Spec{Kind: "torus2d", N: 256, Seed: 7})
	if err := spantree.Verify(g, run.Parent); err != nil {
		t.Fatalf("forest from spanuf pool invalid: %v", err)
	}
}

// TestServe200PathZeroAlloc: the algorithm work behind a 200 stays
// allocation-free on the auto-selected compact layout, for both pooled
// algorithms. (The HTTP/JSON envelope allocates; the guarantee is that
// the session run inside it does not.)
func TestServe200PathZeroAlloc(t *testing.T) {
	for _, alg := range []spantree.Algorithm{spantree.AlgWorkStealing, spantree.AlgSpanUF} {
		s := New(Config{NumProcs: 2, PoolSize: 1, Algorithm: alg})
		if err := s.Register("g", gen.Spec{Kind: "torus2d", N: 1024, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		e := s.lookup("g")
		if e.layout != spantree.LayoutCompact {
			t.Fatalf("%v: auto policy picked %v, want compact", alg, e.layout)
		}
		sess, ok := e.pools[0].TryAcquire()
		if !ok {
			t.Fatal("pool empty")
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, err := sess.FindContext(context.Background(), 42); err != nil {
				t.Fatal(err)
			}
		})
		e.pools[0].Release(sess)
		s.Close()
		if avg != 0 {
			t.Errorf("%v on auto-compact: AllocsPerRun = %v, want 0", alg, avg)
		}
	}
}

// TestServeStats: the stats endpoint reports host shape and counters.
func TestServeStats(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1})
	if err := s.Register("g", gen.Spec{Kind: "star", N: 100}); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("spantree: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Served != 1 || st.NumCPU < 1 || st.GOMAXPROCS < 1 || len(st.Graphs) != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
