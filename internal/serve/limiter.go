package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// aimdLimiter is the adaptive admission limit: a concurrency bound that
// starts at the configured ceiling and adapts to what the backend is
// actually delivering. When observed tail latency blows the budget — or
// a run stalls or hits its deadline — the limit halves (multiplicative
// decrease); after a window of healthy completions with tail latency
// inside the budget it creeps back up one slot (additive increase).
// Compared to the fixed semaphore it replaces, the limiter sheds load
// *before* requests start queueing into the deadline cliff: the typed
// 429 is cheap for the client to retry, the 504 it prevents is not.
//
// Acquire/Release are lock-free on the hot path (two atomic adds and a
// load); the adjustment bookkeeping takes a mutex only on completion.
type aimdLimiter struct {
	max    int64         // ceiling (the configured MaxInFlight)
	budget time.Duration // tail-latency budget driving the feedback

	limit    atomic.Int64
	inflight atomic.Int64

	mu      sync.Mutex
	lats    []time.Duration // ring of recent completion latencies
	idx     int
	samples int       // completions since the last adjustment
	lastDec time.Time // last multiplicative decrease
}

// limiterWindow is how many healthy completions buy one additive
// increase step, and the size of the latency ring the tail estimate
// reads (the ring max over 64 samples sits near p98).
const limiterWindow = 64

// decreaseCooldown spaces multiplicative decreases so one burst of
// failures costs one halving, not a collapse to the floor.
const decreaseCooldown = 250 * time.Millisecond

func newAIMDLimiter(max int, budget time.Duration) *aimdLimiter {
	l := &aimdLimiter{
		max:    int64(max),
		budget: budget,
		lats:   make([]time.Duration, limiterWindow),
	}
	l.limit.Store(int64(max))
	return l
}

// Acquire claims an admission slot; false means the caller must shed
// the request (typed 429). Never blocks.
func (l *aimdLimiter) Acquire() bool {
	if l.inflight.Add(1) > l.limit.Load() {
		l.inflight.Add(-1)
		return false
	}
	return true
}

// Release returns the slot and feeds the request's outcome back into
// the limit: overloaded=true (a stall or deadline blowout) is the
// multiplicative-decrease signal; a healthy completion contributes its
// latency to the additive-increase window.
func (l *aimdLimiter) Release(lat time.Duration, overloaded bool) {
	l.inflight.Add(-1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if overloaded {
		if time.Since(l.lastDec) < decreaseCooldown {
			return
		}
		if cur := l.limit.Load(); cur > 1 {
			l.limit.Store(cur / 2)
		}
		l.lastDec = time.Now()
		l.samples = 0
		return
	}
	l.lats[l.idx] = lat
	l.idx = (l.idx + 1) % len(l.lats)
	if l.samples++; l.samples < limiterWindow {
		return
	}
	l.samples = 0
	if l.tail() <= l.budget {
		if cur := l.limit.Load(); cur < l.max {
			l.limit.Store(cur + 1)
		}
	}
}

// tail is the ring maximum — a conservative p98-ish estimate over the
// last window of completions.
func (l *aimdLimiter) tail() time.Duration {
	var t time.Duration
	for _, v := range l.lats {
		if v > t {
			t = v
		}
	}
	return t
}

// Limit returns the current admission limit (for /v1/stats and tests).
func (l *aimdLimiter) Limit() int64 { return l.limit.Load() }

// InFlight returns the currently admitted request count.
func (l *aimdLimiter) InFlight() int64 { return l.inflight.Load() }
