// Package serve is the HTTP/JSON front end of the repository: spanning
// trees as a service. A Server owns a registry of named CSR graphs,
// each with a fixed-size pool of warmed spantree.Sessions (pre-spawned
// worker teams, pre-provisioned buffers), and executes concurrent
// /v1/spantree requests on those pools with zero steady-state heap
// allocations in the algorithm itself.
//
// Admission control reuses the runtime's fault plumbing end to end: an
// adaptive AIMD concurrency limit (see limiter.go) rejects excess load
// with a typed 429 and a Retry-After hint before any work starts, each
// admitted request runs under a context whose deadline is the client's
// requested timeout clamped by the server cap, and the session layer
// translates context expiry into the typed fault.ErrDeadline/
// ErrCanceled, which the handlers map onto 504 (deadline) and 499
// (client gone). A run aborted by the stuck-run watchdog maps onto a
// retryable 503 (stalled). Every error response is a typed JSON object
// {"error": code, "message": ...} so load generators can assert on
// exact rejection classes.
//
// The resilience layer on top of that plumbing:
//
//   - A per-graph degradation ladder (ladder.go) steps a graph whose
//     runs keep stalling or blowing deadlines down to simpler execution
//     (unsharded → fewer workers → sequential) and climbs back after a
//     cool-down.
//   - A crash-safe registry journal (journal.go) replays the graph set
//     across a SIGKILL.
//   - /v1/healthz is pure liveness; /v1/readyz is readiness and turns
//     503 while the server drains or any graph is degraded.
//   - In chaos builds, a seeded per-request fault injector exercises
//     all of the above (Config.ChaosSeed).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spantree"
	"spantree/internal/chaos"
	"spantree/internal/gen"
)

// Error codes returned in the "error" field of failure responses.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeConflict      = "conflict"
	CodeGraphTooLarge = "graph_too_large"
	CodeOverloaded    = "overloaded"
	CodeDeadline      = "deadline"
	CodeCanceled      = "canceled"
	CodeInternal      = "internal"
	// CodeStalled: the stuck-run watchdog aborted the run — retryable,
	// served as 503 with a Retry-After hint.
	CodeStalled = "stalled"
	// CodeJournal: the registry journal append failed, so the mutation
	// was aborted and the registry is unchanged.
	CodeJournal = "journal_failed"
	// CodeDraining / CodeDegraded: the readiness probe's typed 503s.
	CodeDraining = "draining"
	CodeDegraded = "degraded"
)

// StatusClientClosedRequest is the non-standard (nginx) status the
// server uses when the client vanished mid-run; the client never sees
// it, but access logs and tests do.
const StatusClientClosedRequest = 499

// Layout policies for Config.Layout. Unlike the library's two-valued
// spantree.Layout, the server's policy is three-valued: the default
// auto policy decides per registered graph, picking the compact uint32
// arena whenever the graph fits it (half the offset bytes, so warmer
// caches under concurrent load) and falling back to the wide layout
// for graphs it cannot represent.
const (
	LayoutAuto    = "auto"
	LayoutWide    = "wide"
	LayoutCompact = "compact"
)

// Config sizes a Server.
type Config struct {
	// NumProcs is the per-session virtual processor count; 0 means
	// runtime.NumCPU capped at 4 (serving wants low per-request latency
	// variance, not maximum single-request speedup).
	NumProcs int
	// PoolSize is the number of warmed sessions per registered graph;
	// 0 means 2.
	PoolSize int
	// MaxInFlight bounds concurrently admitted /v1/spantree requests
	// across all graphs; excess load is rejected with a typed 429.
	// 0 means 2*PoolSize.
	MaxInFlight int
	// MaxVertices rejects graph registrations larger than this with a
	// typed 413 — the oversized-request guard. 0 means 1<<22.
	MaxVertices int
	// MaxTimeout caps the per-request deadline a client may ask for;
	// it is also the default when a request carries no timeout_ms.
	// 0 means 10s.
	MaxTimeout time.Duration
	// Warmups is the per-session warmup run count (0 means the session
	// default).
	Warmups int
	// Layout selects the CSR layout the pooled sessions read: LayoutAuto
	// (the default for the empty string) picks per graph at registration
	// — compact when the graph fits uint32, wide otherwise; LayoutWide
	// and LayoutCompact force one for every graph. The compact mirror is
	// built once per session, keeping runs allocation-free either way.
	Layout string
	// Direction selects the traversal direction policy (the zero value,
	// spantree.DirectionAuto, enables the bottom-up phase switch).
	Direction spantree.Direction
	// Shards selects the work-stealing shard count the pooled sessions
	// run with: 0 (the default) applies the auto policy per registered
	// graph — one shard per 256Ki vertices, capped at 8, so small
	// graphs keep the single-team path and cache-bound ones get compact
	// per-shard views — and any positive count forces that many shards
	// for every graph (1 forces the single-team path). Only the
	// work-stealing algorithm shards; AlgSpanUF always serves unsharded.
	Shards int
	// Algorithm selects the pooled algorithm: spantree.AlgWorkStealing
	// (the zero value) or spantree.AlgSpanUF; the session layer rejects
	// algorithms without workspace provisioning at registration.
	Algorithm spantree.Algorithm
	// StallBudget arms the per-session stuck-run watchdog: a run in
	// which no worker advances for this long is aborted with the typed
	// 503 (stalled) instead of burning its whole deadline. 0 disables.
	StallBudget time.Duration
	// CoolDown is how long a degraded graph must run failure-free
	// before climbing back up one rung of the degradation ladder.
	// 0 means 30s.
	CoolDown time.Duration
	// ChaosSeed, when nonzero in a chaos-tagged build, arms the seeded
	// per-request fault injector with chaos.DefaultServeConfig. Ignored
	// (no injector exists) in default builds.
	ChaosSeed uint64
}

func (c Config) withDefaults() Config {
	if c.NumProcs == 0 {
		c.NumProcs = runtime.NumCPU()
		if c.NumProcs > 4 {
			c.NumProcs = 4
		}
	}
	if c.PoolSize == 0 {
		c.PoolSize = 2
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * c.PoolSize
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 1 << 22
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 10 * time.Second
	}
	if c.Layout == "" {
		c.Layout = LayoutAuto
	}
	if c.CoolDown == 0 {
		c.CoolDown = 30 * time.Second
	}
	return c
}

// Server is the HTTP front end. Create with New, serve via http.Server
// (Server implements http.Handler), release with Close.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.RWMutex
	graphs  map[string]*entry
	closed  bool
	started time.Time

	// lim is the adaptive admission limit: a slot is claimed per
	// /v1/spantree request before any session work, non-blocking —
	// admission failure is an immediate typed 429, never a queue. The
	// limit itself tracks observed tail latency (limiter.go).
	lim *aimdLimiter

	// jn is the crash-safe registry journal (nil until OpenJournal).
	jn *journal
	// inj is the serving-layer chaos injector (nil outside chaos builds
	// or without a seed); reqID numbers requests for its seeded streams.
	inj   *chaos.ServeInjector
	reqID atomic.Uint64

	draining atomic.Bool // BeginDrain was called; readiness is 503

	served       atomic.Int64 // completed spantree runs
	rejected     atomic.Int64 // 429s
	deadlines    atomic.Int64 // 504s
	canceled     atomic.Int64 // client-gone aborts
	stallTrips   atomic.Int64 // watchdog-aborted runs (typed 503 stalled)
	degradeSteps atomic.Int64 // ladder step-downs across all graphs
	panics       atomic.Int64 // recovered handler panics (typed 500s)
}

// New builds a Server with the given config.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		cfg:     c,
		graphs:  make(map[string]*entry),
		started: time.Now(),
	}
	// The tail-latency budget driving the adaptive limit: half the
	// deadline cap — when the observed tail crosses it, the next step
	// is the 504 cliff, so the limit backs off first.
	s.lim = newAIMDLimiter(c.MaxInFlight, c.MaxTimeout/2)
	if c.ChaosSeed != 0 {
		s.inj = chaos.NewServe(chaos.DefaultServeConfig(c.ChaosSeed))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("DELETE /v1/drain", s.handleUndrain)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("POST /v1/graphs", s.handleRegisterGraph)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleEvictGraph)
	mux.HandleFunc("POST /v1/spantree", s.handleSpanTree)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux = mux
	return s
}

// OpenJournal attaches the crash-safe registry journal at path: the
// file is replayed first — rebuilding the graph set (pools and all)
// that a previous process was serving when it died — and every
// subsequent registration or eviction is appended and fsynced before
// it commits to the in-memory registry. Call once, before serving
// traffic.
func (s *Server) OpenJournal(path string) error {
	j, names, live, err := openJournal(path, s.inj)
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, err := s.register(name, live[name], false); err != nil {
			j.Close()
			return fmt.Errorf("journal replay of graph %q: %w", name, err)
		}
	}
	s.jn = j
	return nil
}

// BeginDrain flips the readiness probe to the typed 503 (draining) so
// load balancers rotate this instance out while in-flight and
// already-routed requests keep being served. Shutdown sequence:
// BeginDrain, wait a probe period, then http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// EndDrain cancels a drain (a rollback that keeps the instance in
// rotation after all).
func (s *Server) EndDrain() { s.draining.Store(false) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close evicts every graph, retiring the parked worker teams (in-flight
// sessions retire on release), and closes the journal.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	entries := make([]*entry, 0, len(s.graphs))
	for _, e := range s.graphs {
		entries = append(entries, e)
	}
	s.graphs = make(map[string]*entry)
	s.mu.Unlock()
	for _, e := range entries {
		e.closePools()
	}
	s.jn.Close()
}

// Register builds and registers a named graph outside HTTP (the CLI's
// preload path). Journaled like the HTTP path.
func (s *Server) Register(name string, spec gen.Spec) error {
	_, err := s.register(name, spec, true)
	return err
}

// register builds the graph and its rung-0 session pool, then commits.
// With a journal attached and journaled true, the op is appended and
// fsynced inside the commit lock, before the map insert — a mutation
// the caller sees acknowledged is on disk, and one the journal refused
// never happened. Replay passes journaled=false (those ops are already
// in the file).
func (s *Server) register(name string, spec gen.Spec, journaled bool) (*entry, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	if spec.N > s.cfg.MaxVertices {
		return nil, errTooLarge{n: spec.N, max: s.cfg.MaxVertices}
	}
	s.mu.RLock()
	_, exists := s.graphs[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("server closed")
	}
	if exists {
		return nil, errConflict{name: name}
	}
	g, err := gen.Generate(spec)
	if err != nil {
		return nil, err
	}
	if g.NumVertices() > s.cfg.MaxVertices {
		return nil, errTooLarge{n: g.NumVertices(), max: s.cfg.MaxVertices}
	}
	lay, err := s.resolveLayout(g)
	if err != nil {
		return nil, err
	}
	shards, err := s.resolveShards(g)
	if err != nil {
		return nil, err
	}
	base := spantree.SessionOptions{
		Algorithm:   s.cfg.Algorithm,
		NumProcs:    s.cfg.NumProcs,
		ChunkPolicy: spantree.ChunkAdaptive,
		Direction:   s.cfg.Direction,
		Layout:      lay,
		Shards:      shards,
		Warmups:     s.cfg.Warmups,
		StallBudget: s.cfg.StallBudget,
	}
	pool, err := spantree.NewSessionPool(g, base, s.cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	e := &entry{
		name: name, spec: spec, g: g, layout: lay, shards: shards,
		base: base, poolSize: s.cfg.PoolSize,
	}
	e.pools[0] = pool
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		pool.Close()
		return nil, fmt.Errorf("server closed")
	}
	if _, dup := s.graphs[name]; dup {
		s.mu.Unlock()
		pool.Close()
		return nil, errConflict{name: name}
	}
	if journaled {
		if err := s.jn.AppendRegister(name, spec); err != nil {
			s.mu.Unlock()
			pool.Close()
			return nil, err
		}
	}
	s.graphs[name] = e
	s.mu.Unlock()
	return e, nil
}

// resolveLayout applies the server's layout policy to one graph. The
// auto policy mirrors graph.CompactOf's representability bound: n+1
// offsets and every adjacency index must fit uint32.
func (s *Server) resolveLayout(g *spantree.Graph) (spantree.Layout, error) {
	switch s.cfg.Layout {
	case LayoutWide:
		return spantree.LayoutWide, nil
	case LayoutCompact:
		return spantree.LayoutCompact, nil
	case LayoutAuto:
		const limit = int64(1) << 32
		if int64(g.NumVertices())+1 < limit && int64(len(g.Adj)) < limit {
			return spantree.LayoutCompact, nil
		}
		return spantree.LayoutWide, nil
	}
	return spantree.LayoutWide, fmt.Errorf("bad layout policy %q (want auto, wide or compact)", s.cfg.Layout)
}

// resolveShards applies the server's shard policy to one graph: a
// positive Config.Shards forces that count, 0 scales with graph size —
// one shard per 256Ki vertices, capped at 8, so the partition's working
// sets stay cache-sized without oversplitting the worker budget. Only
// the work-stealing algorithm shards (AlgSpanUF's sweep has no shard
// concept), so other pooled algorithms always resolve to 1.
func (s *Server) resolveShards(g *spantree.Graph) (int, error) {
	if s.cfg.Algorithm != spantree.AlgWorkStealing {
		return 1, nil
	}
	if sh := s.cfg.Shards; sh != 0 {
		if sh < 0 {
			return 1, fmt.Errorf("bad shard count %d (want >= 0)", sh)
		}
		return sh, nil
	}
	sh := g.NumVertices() >> 18
	if sh < 1 {
		sh = 1
	}
	if sh > 8 {
		sh = 8
	}
	return sh, nil
}

type errTooLarge struct{ n, max int }

func (e errTooLarge) Error() string {
	return fmt.Sprintf("graph has %d vertices, server cap is %d", e.n, e.max)
}

type errConflict struct{ name string }

func (e errConflict) Error() string { return fmt.Sprintf("graph %q already registered", e.name) }

// IsConflict reports whether err is a duplicate-registration conflict
// (the CLI's journal-restore preload path tolerates these).
func IsConflict(err error) bool {
	var c errConflict
	return errors.As(err, &c)
}

// lookup returns the entry for name, or nil.
func (s *Server) lookup(name string) *entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphs[name]
}

// --- Wire types -----------------------------------------------------

// ErrorBody is every failure response.
type ErrorBody struct {
	Error   string `json:"error"`
	Message string `json:"message"`
}

// RegisterRequest is the POST /v1/graphs body.
type RegisterRequest struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	N    int    `json:"n"`
	M    int    `json:"m,omitempty"`
	K    int    `json:"k,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// RandomLabel applies the paper's random-relabeling variant.
	RandomLabel bool `json:"random_label,omitempty"`
}

// GraphInfo describes one registered graph.
type GraphInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	PoolSize int    `json:"pool_size"`
	NumProcs int    `json:"num_procs"`
	// Layout is the CSR layout the pool's sessions read ("wide" or
	// "compact") — under the auto policy, what the server picked.
	Layout string `json:"layout"`
	// Shards is the work-stealing shard count the pool's sessions run
	// with — under the auto policy, what the server picked.
	Shards int `json:"shards"`
	// Algorithm is the pooled algorithm serving this graph.
	Algorithm string `json:"algorithm"`
	// Rung is the graph's current position on the degradation ladder
	// (0 = full configured execution; see ladder.go).
	Rung int `json:"rung"`
}

// GraphListResponse is the GET /v1/graphs body.
type GraphListResponse struct {
	Graphs []GraphInfo `json:"graphs"`
}

// SpanTreeRequest is the POST /v1/spantree body.
type SpanTreeRequest struct {
	Graph string `json:"graph"`
	Seed  uint64 `json:"seed,omitempty"`
	// TimeoutMS is the client's deadline for the run, clamped by the
	// server's MaxTimeout; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeParent returns the full parent array (n entries — large).
	IncludeParent bool `json:"include_parent,omitempty"`
}

// SpanTreeResponse is the POST /v1/spantree success body.
type SpanTreeResponse struct {
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	Roots     int    `json:"roots"`
	TreeEdges int    `json:"tree_edges"`
	ElapsedUS int64  `json:"elapsed_us"`
	// StubSize and Steals describe work-stealing runs; both are zero
	// when the pool serves the CAS-hook sweep.
	StubSize int   `json:"stub_size"`
	Steals   int64 `json:"steals"`
	// HooksLost counts lost CAS elections on spanuf runs.
	HooksLost int64   `json:"hooks_lost,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	Parent    []int32 `json:"parent,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	UptimeMS   int64 `json:"uptime_ms"`
	Served     int64 `json:"served"`
	Rejected   int64 `json:"rejected"`
	Deadlines  int64 `json:"deadlines"`
	Canceled   int64 `json:"canceled"`
	InFlight   int   `json:"in_flight"`
	Goroutines int   `json:"goroutines"`
	NumCPU     int   `json:"num_cpu"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	// AdmitLimit is the adaptive admission limit's current value
	// (ceiling MaxInFlight; lower when the AIMD feedback backed off).
	AdmitLimit int64 `json:"admit_limit"`
	// StallTrips counts runs the stuck-run watchdog aborted (503s).
	StallTrips int64 `json:"stall_trips"`
	// DegradeSteps counts ladder step-downs across all graphs.
	DegradeSteps int64 `json:"degrade_steps"`
	// Panics counts handler panics recovered into typed 500s.
	Panics int64 `json:"panics"`
	// ChaosInjections counts injected serving faults (chaos builds).
	ChaosInjections int64 `json:"chaos_injections,omitempty"`
	// Draining reports whether BeginDrain flipped readiness.
	Draining bool        `json:"draining"`
	Graphs   []GraphInfo `json:"graphs"`
}

// --- Handlers -------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Error: code, Message: msg})
}

// handleHealthz is pure liveness: the process is up and the mux is
// answering. It stays 200 through drains and degradation — restarting a
// draining instance is exactly the wrong reaction.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: whether a load balancer should route new
// traffic here. Draining and degraded both answer the typed 503 —
// in-flight requests still complete, but new load belongs elsewhere.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	if rung := s.maxRungHeld(); rung > 0 {
		writeError(w, http.StatusServiceUnavailable, CodeDegraded,
			fmt.Sprintf("a graph is degraded to rung %d", rung))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleDrain / handleUndrain are the ops surface behind the readiness
// split: a preStop hook POSTs /v1/drain, probes see the 503, in-flight
// work finishes; DELETE rolls the drain back.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.BeginDrain()
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
}

func (s *Server) handleUndrain(w http.ResponseWriter, r *http.Request) {
	s.EndDrain()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// maxBodyBytes bounds request bodies; graph registrations and run
// requests are both tiny.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	e, err := s.register(req.Name, gen.Spec{
		Kind: req.Kind, N: req.N, M: req.M, K: req.K,
		Seed: req.Seed, RandomLabel: req.RandomLabel,
	}, true)
	if err != nil {
		switch {
		case errors.Is(err, errJournal):
			writeError(w, http.StatusInternalServerError, CodeJournal, err.Error())
		default:
			switch err.(type) {
			case errTooLarge:
				writeError(w, http.StatusRequestEntityTooLarge, CodeGraphTooLarge, err.Error())
			case errConflict:
				writeError(w, http.StatusConflict, CodeConflict, err.Error())
			default:
				writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			}
		}
		return
	}
	writeJSON(w, http.StatusCreated, s.graphInfo(e))
}

func (s *Server) graphInfo(e *entry) GraphInfo {
	return GraphInfo{
		Name:      e.name,
		Kind:      e.spec.Kind,
		N:         e.g.NumVertices(),
		M:         e.g.NumEdges(),
		PoolSize:  e.poolSize,
		NumProcs:  s.cfg.NumProcs,
		Layout:    e.layout.String(),
		Shards:    e.shards,
		Algorithm: s.cfg.Algorithm.String(),
		Rung:      int(e.rung.Load()),
	}
}

// listGraphs returns the registry in name order — deterministic output
// is what lets the restart test compare GET /v1/graphs byte for byte.
func (s *Server) listGraphs() []GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, s.graphInfo(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, GraphListResponse{Graphs: s.listGraphs()})
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	e, ok := s.graphs[name]
	if ok {
		// Journal before the map delete: an eviction the journal refused
		// never happened, and one it accepted survives a crash.
		if err := s.jn.AppendEvict(name); err != nil {
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, CodeJournal, err.Error())
			return
		}
		delete(s.graphs, name)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("graph %q not registered", name))
		return
	}
	// Free sessions retire now; in-flight ones when their request ends.
	e.closePools()
	writeJSON(w, http.StatusOK, map[string]string{"evicted": name})
}

func (s *Server) handleSpanTree(w http.ResponseWriter, r *http.Request) {
	// Recover first so a handler panic — in chaos builds, the injected
	// one — surfaces as a typed 500, never a transport-level drop.
	defer s.recoverPanic(w)
	var req SpanTreeRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	// Admission first: a non-blocking slot claim against the adaptive
	// limit. Excess load is turned away immediately with the typed 429
	// and a Retry-After hint rather than queued into a latency cliff.
	if !s.lim.Acquire() {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("admission limit of %d requests in flight reached", s.lim.Limit()))
		return
	}
	start := time.Now()
	overloaded := false // stall/deadline outcome; feeds the AIMD decrease
	defer func() { s.lim.Release(time.Since(start), overloaded) }()

	e := s.lookup(req.Graph)
	if e == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("graph %q not registered", req.Graph))
		return
	}
	timeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	// The request context carries both the client's disconnect and the
	// deadline; the session layer's fault plumbing translates them into
	// the typed errors mapped below.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Serving-layer chaos: at most one injected fault per request, drawn
	// from the request's own seeded stream (nil injector draws nothing).
	switch s.inj.Request(s.reqID.Add(1)) {
	case chaos.FaultPanic:
		panic(chaos.InjectedPanic{Worker: -1, Point: chaos.PointNone})
	case chaos.FaultStall:
		// The wedged backend: nothing progresses until the context
		// expires, then the failure is typed like any real stall-out.
		<-ctx.Done()
		overloaded = s.failFromContext(w, ctx.Err())
		s.noteFailure(e, overloaded)
		return
	case chaos.FaultSlow:
		t := time.NewTimer(s.inj.SlowDelay())
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			overloaded = s.failFromContext(w, ctx.Err())
			s.noteFailure(e, overloaded)
			return
		}
	}

	pool := e.poolFor()
	sess, err := pool.Acquire(ctx)
	if err != nil {
		overloaded = s.failFromContext(w, err)
		s.noteFailure(e, overloaded)
		return
	}
	res, err := sess.FindContext(ctx, req.Seed)
	if err != nil {
		pool.Release(sess)
		overloaded = s.failFromContext(w, err)
		s.noteFailure(e, overloaded)
		return
	}
	resp := SpanTreeResponse{
		Graph:     req.Graph,
		N:         len(res.Parent),
		Roots:     res.Roots,
		TreeEdges: res.TreeEdges,
		ElapsedUS: res.Elapsed.Microseconds(),
	}
	if ws := res.WorkStealing; ws != nil {
		resp.StubSize = ws.StubSize
		resp.Steals = ws.Steals
		resp.Degraded = ws.DegradedToSeq
	} else if uf := res.SpanUF; uf != nil {
		resp.HooksLost = uf.HooksLost
		resp.Degraded = uf.DegradedToSeq
	}
	if req.IncludeParent {
		resp.Parent = res.Parent
	}
	// The response borrows the session's parent buffer; the encoder
	// consumes it before the release returns the buffers to the pool.
	writeJSON(w, http.StatusOK, resp)
	pool.Release(sess)
	s.served.Add(1)
	s.noteSuccess(e)
}

// recoverPanic converts a handler panic into the typed 500. The
// admission slot was already released by the deferred limiter release
// (registered after this recover, so it runs first).
func (s *Server) recoverPanic(w http.ResponseWriter) {
	if v := recover(); v != nil {
		s.panics.Add(1)
		writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("panic: %v", v))
	}
}

// failFromContext maps the fault-layer's typed errors (and raw context
// errors from Acquire) onto HTTP statuses. The returned bool reports
// whether the failure was a stall or deadline blowout — the signals
// that feed the AIMD decrease and the degradation ladder; client
// cancellation and eviction races say nothing about the backend.
func (s *Server) failFromContext(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, spantree.ErrStalled):
		s.stallTrips.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeStalled,
			"run stalled; the watchdog aborted it — retry on another instance")
		return true
	case errors.Is(err, spantree.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		s.deadlines.Add(1)
		writeError(w, http.StatusGatewayTimeout, CodeDeadline, "run exceeded its deadline")
		return true
	case errors.Is(err, spantree.ErrCanceled) || errors.Is(err, context.Canceled):
		s.canceled.Add(1)
		writeError(w, StatusClientClosedRequest, CodeCanceled, "client closed the request")
		return false
	case errors.Is(err, spantree.ErrSessionClosed):
		writeError(w, http.StatusNotFound, CodeNotFound, "graph evicted mid-request")
		return false
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return false
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeMS:        time.Since(s.started).Milliseconds(),
		Served:          s.served.Load(),
		Rejected:        s.rejected.Load(),
		Deadlines:       s.deadlines.Load(),
		Canceled:        s.canceled.Load(),
		InFlight:        int(s.lim.InFlight()),
		Goroutines:      runtime.NumGoroutine(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		AdmitLimit:      s.lim.Limit(),
		StallTrips:      s.stallTrips.Load(),
		DegradeSteps:    s.degradeSteps.Load(),
		Panics:          s.panics.Load(),
		ChaosInjections: s.inj.Injections(),
		Draining:        s.draining.Load(),
		Graphs:          s.listGraphs(),
	})
}
