package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spantree/internal/gen"
)

// --- Adaptive admission (limiter.go) --------------------------------

// TestLimiterAIMD drives the adaptive limit through its whole feedback
// loop: ceiling admission, multiplicative decrease on overload (spaced
// by the cooldown), the floor at 1, and the additive climb after a
// window of healthy completions inside the tail budget.
func TestLimiterAIMD(t *testing.T) {
	l := newAIMDLimiter(8, 10*time.Millisecond)
	for i := 0; i < 8; i++ {
		if !l.Acquire() {
			t.Fatalf("Acquire %d refused below the ceiling", i)
		}
	}
	if l.Acquire() {
		t.Fatal("Acquire above the ceiling admitted")
	}
	// One stall/deadline outcome halves the limit; a second within the
	// cooldown is absorbed (one burst, one halving).
	l.Release(time.Millisecond, true)
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after one overload = %d, want 4", got)
	}
	l.Release(time.Millisecond, true)
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after overload inside cooldown = %d, want 4 (one halving per burst)", got)
	}
	// Past the cooldown the next overload halves again, down to the
	// floor of 1 — the limiter never refuses all traffic.
	for i := 0; i < 4; i++ {
		l.mu.Lock()
		l.lastDec = time.Now().Add(-time.Second)
		l.mu.Unlock()
		l.Release(time.Millisecond, true)
	}
	if got := l.Limit(); got != 1 {
		t.Fatalf("limit floor = %d, want 1", got)
	}
	// A full window of healthy completions with the observed tail inside
	// the budget buys back one slot; a window containing one blowout
	// (tail over budget) buys nothing.
	for i := 0; i < limiterWindow; i++ {
		l.Release(time.Millisecond, false)
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit after a healthy window = %d, want 2", got)
	}
	l.Release(time.Second, false) // poisons the ring for a full window
	for i := 0; i < limiterWindow-1; i++ {
		l.Release(time.Millisecond, false)
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit grew on a window with a blown tail: %d, want 2", got)
	}
	// The limit never climbs past the configured ceiling.
	for w := 0; w < 16*limiterWindow; w++ {
		l.Release(time.Millisecond, false)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit ceiling = %d, want 8", got)
	}
}

// --- Degradation ladder (ladder.go) ---------------------------------

// TestLadderStepDownAndRecovery: three consecutive stall/deadline
// failures step a graph down one rung; repeated bursts walk it to the
// sequential floor; readiness flips to the typed degraded 503 while any
// rung is held; and cooled-down healthy completions climb all the way
// back.
func TestLadderStepDownAndRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 4, PoolSize: 1, CoolDown: time.Nanosecond})
	if err := s.Register("g", gen.Spec{Kind: "torus2d", N: 256, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e := s.lookup("g")

	// Non-degradation failures (client gone, eviction race) must not
	// move the ladder.
	for i := 0; i < 10; i++ {
		s.noteFailure(e, false)
	}
	if r := e.rung.Load(); r != 0 {
		t.Fatalf("rung after non-overload failures = %d, want 0", r)
	}
	// A streak broken by a success must not step down either.
	s.noteFailure(e, true)
	s.noteFailure(e, true)
	s.noteSuccess(e)
	s.noteFailure(e, true)
	s.noteFailure(e, true)
	if r := e.rung.Load(); r != 0 {
		t.Fatalf("rung after a broken streak = %d, want 0", r)
	}
	e.fails.Store(0)

	// Walk down the whole ladder, one burst of degradeAfter per rung.
	for want := int32(1); want <= maxRung; want++ {
		for i := 0; i < degradeAfter; i++ {
			s.noteFailure(e, true)
		}
		if r := e.rung.Load(); r != want {
			t.Fatalf("rung after burst = %d, want %d", r, want)
		}
	}
	for i := 0; i < 2*degradeAfter; i++ {
		s.noteFailure(e, true)
	}
	if r := e.rung.Load(); r != maxRung {
		t.Fatalf("rung past the floor = %d, want %d", e.rung.Load(), maxRung)
	}
	if got := s.degradeSteps.Load(); got != int64(maxRung) {
		t.Fatalf("degradeSteps = %d, want %d", got, maxRung)
	}

	// Degraded execution still serves valid answers — the sequential
	// rung's pool is built lazily on first use.
	resp, raw := postJSON(t, ts.URL+"/v1/spantree", SpanTreeRequest{Graph: "g", Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spantree at rung %d: status %d body %s", maxRung, resp.StatusCode, raw)
	}

	// The rung shows up in GraphInfo and flips readiness to the typed
	// degraded 503. (The request above succeeded, so with the nanosecond
	// cool-down it already climbed one rung back.)
	infos := s.listGraphs()
	if len(infos) != 1 || infos[0].Rung == 0 {
		t.Fatalf("GraphInfo did not surface the rung: %+v", infos)
	}
	hr, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: status %d, want 503", hr.StatusCode)
	}
	if e := decodeError(t, body); e.Error != CodeDegraded {
		t.Fatalf("readyz while degraded: code %q, want %q", e.Error, CodeDegraded)
	}

	// Healthy completions past the (nanosecond) cool-down climb back to
	// the configured execution, one rung each.
	for i := 0; i < numRungs; i++ {
		s.noteSuccess(e)
	}
	if r := e.rung.Load(); r != 0 {
		t.Fatalf("rung after recovery = %d, want 0", r)
	}
	hr, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d, want 200", hr.StatusCode)
	}
}

// TestLadderOptions pins what each rung strips: sharding first, then
// half the workers, then all parallelism.
func TestLadderOptions(t *testing.T) {
	e := &entry{}
	e.base.NumProcs = 4
	e.base.Shards = 8
	if o := e.optionsFor(0); o.Shards != 8 || o.NumProcs != 4 {
		t.Fatalf("rung 0 options: %+v", o)
	}
	if o := e.optionsFor(1); o.Shards != 1 || o.NumProcs != 4 {
		t.Fatalf("rung 1 options: %+v", o)
	}
	if o := e.optionsFor(2); o.Shards != 1 || o.NumProcs != 2 {
		t.Fatalf("rung 2 options: %+v", o)
	}
	if o := e.optionsFor(3); o.Shards != 1 || o.NumProcs != 1 {
		t.Fatalf("rung 3 options: %+v", o)
	}
	// A single-proc base cannot halve below 1.
	e.base.NumProcs = 1
	if o := e.optionsFor(2); o.NumProcs != 1 {
		t.Fatalf("rung 2 on p=1 base: %+v", o)
	}
}

// --- Readiness and drain (serve.go) ---------------------------------

// TestServeDrainCycle: POST /v1/drain flips readiness to the typed 503
// while liveness stays 200, and DELETE restores it — the preStop
// contract the loadgen probe asserts end to end.
func TestServeDrainCycle(t *testing.T) {
	_, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1})
	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if st, _ := get("/v1/readyz"); st != http.StatusOK {
		t.Fatalf("readyz before drain: %d", st)
	}
	resp, err := http.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	st, body := get("/v1/readyz")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", st)
	}
	if e := decodeError(t, body); e.Error != CodeDraining {
		t.Fatalf("readyz while draining: code %q, want %q", e.Error, CodeDraining)
	}
	if st, _ := get("/v1/healthz"); st != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness is not readiness)", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/drain", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /v1/drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if st, _ := get("/v1/readyz"); st != http.StatusOK {
		t.Fatalf("readyz after undrain: %d, want 200", st)
	}
}

// --- Crash-safe registry (journal.go) -------------------------------

func listBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJournalCrashRestart is the headline crash-safety contract: a
// server that dies without any shutdown path (the journal file is
// simply abandoned, as under SIGKILL) is rebooted against the same
// journal and must serve the exact same GET /v1/graphs bytes —
// registrations and evictions included.
func TestJournalCrashRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.journal")
	a := New(Config{NumProcs: 1, PoolSize: 1})
	if err := a.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := a.Register(name, gen.Spec{Kind: "chain", N: 64, Seed: 3}); err != nil {
			t.Fatal(err)
		}
	}
	tsA := startHTTP(t, a)
	req, _ := http.NewRequest(http.MethodDelete, tsA.URL+"/v1/graphs/beta", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	want := listBody(t, tsA.URL)
	// No Close, no drain: the "process" is gone, only the file remains.

	b := New(Config{NumProcs: 1, PoolSize: 1})
	defer b.Close()
	if err := b.OpenJournal(path); err != nil {
		t.Fatalf("replay after crash: %v", err)
	}
	tsB := startHTTP(t, b)
	got := listBody(t, tsB.URL)
	if string(got) != string(want) {
		t.Fatalf("graph list after crash restart:\n got %s\nwant %s", got, want)
	}
	a.Close() // release the abandoned server's teams for later tests
}

// startHTTP fronts a Server the test constructed itself (the journal
// tests control Close ordering, so newTestServer's cleanup doesn't
// fit; only the HTTP listener is cleaned up here).
func startHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestJournalTornTailRecovery: a torn trailing append (crash mid-write)
// is dropped on replay and truncated away, so post-recovery appends
// keep the file replayable — the third boot must still see a clean
// stream including the post-crash registration.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.journal")
	a := New(Config{NumProcs: 1, PoolSize: 1})
	if err := a.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("kept", gen.Spec{Kind: "chain", N: 32}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"register","name":"torn","spec":{"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b := New(Config{NumProcs: 1, PoolSize: 1})
	if err := b.OpenJournal(path); err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if b.lookup("kept") == nil || b.lookup("torn") != nil {
		t.Fatal("torn tail replay: wrong live set")
	}
	if err := b.Register("after", gen.Spec{Kind: "chain", N: 32}); err != nil {
		t.Fatalf("register after torn-tail recovery: %v", err)
	}
	b.Close()

	c := New(Config{NumProcs: 1, PoolSize: 1})
	defer c.Close()
	if err := c.OpenJournal(path); err != nil {
		t.Fatalf("replay after recovery appends: %v", err)
	}
	if c.lookup("kept") == nil || c.lookup("after") == nil || c.lookup("torn") != nil {
		t.Fatal("post-recovery replay: wrong live set")
	}
}

// TestJournalCorruptionRefusesBoot: malformed content with complete
// records after it is corruption, not a crash artifact, and the server
// must refuse to boot on it rather than silently drop graphs.
func TestJournalCorruptionRefusesBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.journal")
	lines := []string{
		`{"schema":"spantree/journal/v1"}`,
		`{"op":"register","name":"a","spec":{"ki`, // torn mid-file
		`{"op":"register","name":"b","spec":{"kind":"chain","n":8}}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{NumProcs: 1, PoolSize: 1})
	defer s.Close()
	if err := s.OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestJournalCompaction: once the op log outruns the live set, the file
// is rewritten as a snapshot — and the snapshot still replays to the
// same registry.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.journal")
	s := New(Config{NumProcs: 1, PoolSize: 1})
	if err := s.OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	ts := startHTTP(t, s)
	// Churn far past the compaction floor with one graph live at a time.
	for i := 0; i < 12; i++ {
		if err := s.Register("churn", gen.Spec{Kind: "chain", N: 16}); err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/churn", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("evict %d: %v %v", i, resp.StatusCode, err)
		}
		resp.Body.Close()
	}
	if err := s.Register("live", gen.Spec{Kind: "chain", N: 16}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nlines := strings.Count(string(data), "\n")
	// 25 mutations happened; a compacted file holds the header plus the
	// live set (1 graph) plus at most the post-compaction tail.
	if nlines > 10 {
		t.Fatalf("journal not compacted: %d lines\n%s", nlines, data)
	}

	r := New(Config{NumProcs: 1, PoolSize: 1})
	defer r.Close()
	if err := r.OpenJournal(path); err != nil {
		t.Fatalf("replay of compacted journal: %v", err)
	}
	infos := r.listGraphs()
	if len(infos) != 1 || infos[0].Name != "live" {
		t.Fatalf("compacted replay: %+v", infos)
	}
}

// TestStatsCountersSurface: the new resilience counters ride the stats
// endpoint.
func TestStatsCountersSurface(t *testing.T) {
	s, ts := newTestServer(t, Config{NumProcs: 1, PoolSize: 1, MaxInFlight: 3})
	s.stallTrips.Store(2)
	s.degradeSteps.Store(1)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.AdmitLimit != 3 || st.StallTrips != 2 || st.DegradeSteps != 1 || st.Draining {
		t.Fatalf("stats: %+v", st)
	}
}
