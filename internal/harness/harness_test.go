package harness

import (
	"strings"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

func quickCfg() Config {
	return Config{
		Scale:  1 << 10,
		Procs:  []int{1, 2, 4},
		Seed:   7,
		Mode:   Modeled,
		Verify: true,
	}
}

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md promises one experiment per figure plus the ablations.
	want := []string{
		"fig3",
		"fig4-torus-rowmajor", "fig4-torus-random", "fig4-random-nlogn",
		"fig4-2d60", "fig4-3d40", "fig4-ad3",
		"fig4-geo-flat", "fig4-geo-hier",
		"fig4-chain-seq", "fig4-chain-random",
		"abl-nosteal", "abl-nostub", "abl-stealone", "abl-svlock",
		"abl-deg2", "abl-fallback", "abl-hcs", "abl-machine", "abl-family", "abl-barriers", "abl-stublen",
		"abl-chunk", "abl-direction", "abl-alg", "abl-shard",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from the registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID invented an experiment")
	}
}

func TestExperimentsRunAtQuickScale(t *testing.T) {
	cfg := quickCfg()
	for _, e := range All() {
		rep, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if rep.Table == nil || rep.Table.NumRows() == 0 {
			t.Fatalf("%s: empty table", e.ID)
		}
		var sb strings.Builder
		if _, err := rep.WriteTo(&sb); err != nil {
			t.Fatalf("%s: WriteTo: %v", e.ID, err)
		}
		if !strings.Contains(sb.String(), e.ID) {
			t.Fatalf("%s: report does not name itself", e.ID)
		}
	}
}

func TestFig3ChecksPassAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale experiment")
	}
	cfg := quickCfg()
	cfg.Scale = 1 << 14
	cfg.Fig3Procs = 8
	e, _ := ByID("fig3")
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		var sb strings.Builder
		rep.WriteTo(&sb)
		t.Fatalf("fig3 shape checks failed:\n%s", sb.String())
	}
}

func TestFig4ShapeChecksAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale experiment")
	}
	cfg := quickCfg()
	cfg.Scale = 1 << 14
	for _, id := range []string{"fig4-torus-rowmajor", "fig4-random-nlogn", "fig4-chain-seq"} {
		e, _ := ByID(id)
		rep, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			var sb strings.Builder
			rep.WriteTo(&sb)
			t.Fatalf("%s shape checks failed:\n%s", id, rep.ID+"\n"+sb.String())
		}
	}
}

func TestWallClockMode(t *testing.T) {
	cfg := quickCfg()
	cfg.Mode = WallClock
	cfg.Repeats = 1
	e, _ := ByID("fig3")
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock mode never emits modeled shape checks.
	for _, c := range rep.Checks {
		t.Fatalf("wall-clock mode produced check %q", c.Name)
	}
}

func TestWallClockPerRepetitionReports(t *testing.T) {
	// Every wall-clock repetition must produce its own report: one
	// recorder shared across repeats would accumulate, making rep k's
	// counters k+1 times a single run's. Equal labels plus distinct
	// "rep" meta is also what cmd/benchcmp's min-over-reps relies on.
	cfg := quickCfg().withDefaults()
	cfg.Mode = WallClock
	cfg.Repeats = 3
	cfg.Collector = &obs.Collector{}
	g, err := gen.Generate(gen.Spec{Kind: "random", N: 1 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := measure(cfg, g, kindWS, 4, wsConfig{}); err != nil {
		t.Fatal(err)
	}
	runs := cfg.Collector.Runs()
	if len(runs) != cfg.Repeats {
		t.Fatalf("collected %d reports, want one per repetition (%d)", len(runs), cfg.Repeats)
	}
	seen := make(map[string]bool)
	for i, r := range runs {
		if r.Label != runs[0].Label {
			t.Errorf("report %d label %q differs from %q", i, r.Label, runs[0].Label)
		}
		rep := r.Meta["rep"]
		if seen[rep] {
			t.Errorf("duplicate rep meta %q", rep)
		}
		seen[rep] = true
		if got, want := r.Snapshot.Totals.VerticesClaimed, runs[0].Snapshot.Totals.VerticesClaimed; got != want {
			t.Errorf("rep %s claimed %d vertices, rep 0 claimed %d — recorder state leaked across repetitions", rep, got, want)
		}
		if r.ElapsedNS <= 0 {
			t.Errorf("rep %s has no elapsed time", rep)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale == 0 || len(c.Procs) == 0 || c.Fig3Procs == 0 || c.Repeats == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	if c.Machine == (smpmodel.Machine{}) {
		t.Fatal("default machine missing")
	}
}

func TestModeString(t *testing.T) {
	if Modeled.String() != "modeled" || WallClock.String() != "wallclock" {
		t.Fatal("mode names wrong")
	}
}

func TestReportPassed(t *testing.T) {
	r := &Report{Checks: []Check{{Pass: true}, {Pass: true}}}
	if !r.Passed() {
		t.Fatal("all-pass report failed")
	}
	r.Checks = append(r.Checks, Check{Pass: false})
	if r.Passed() {
		t.Fatal("failing check ignored")
	}
}
