package harness

import (
	"fmt"

	"spantree/internal/core"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/stats"
)

// The ablation experiments isolate the design choices the paper calls
// out: work stealing itself, the stub spanning tree, steal-half vs
// steal-one, CAS elections vs locks in SV, degree-2 elimination, the
// pathological-case fallback, the HCS-behaves-like-SV observation, and
// the machine-profile sensitivity of the modeled results.
func registerAblations() {
	register(Experiment{
		ID:          "abl-nosteal",
		Title:       "Ablation: work stealing on vs off",
		Description: "The paper's Fig. 2 argument: without stealing, the stub walk's clustered seeds leave most processors idle. Compares time and load imbalance at the largest p.",
		run:         runAblNoSteal,
	})
	register(Experiment{
		ID:          "abl-nostub",
		Title:       "Ablation: stub spanning tree vs single seed",
		Description: "Without the stub tree only one processor has initial work, so everything must be stolen.",
		run:         runAblNoStub,
	})
	register(Experiment{
		ID:          "abl-stealone",
		Title:       "Ablation: steal-half queue vs Chase-Lev steal-one",
		Description: "Bulk stealing moves the frontier in O(1) steals; steal-one pays a steal per vertex when feeding starved processors.",
		run:         runAblStealOne,
	})
	register(Experiment{
		ID:          "abl-svlock",
		Title:       "Ablation: SV election by CAS vs per-root locks",
		Description: "The paper: 'the locking approach intuitively is slow and not scalable, and our test results agree.'",
		run:         runAblSVLock,
	})
	register(Experiment{
		ID:          "abl-deg2",
		Title:       "Ablation: degree-2 elimination preprocessing",
		Description: "The paper's preprocessing step; dramatic on chain-like inputs.",
		run:         runAblDeg2,
	})
	register(Experiment{
		ID:          "abl-fallback",
		Title:       "Ablation: pathological-case detection and SV fallback",
		Description: "Forces the idle-detection threshold on the degenerate chain and verifies the SV completion produces a valid tree.",
		run:         runAblFallback,
	})
	register(Experiment{
		ID:          "abl-hcs",
		Title:       "Ablation: HCS vs SV",
		Description: "The paper implemented HCS, found it performs like SV, and dropped it from the plots; this confirms the observation.",
		run:         runAblHCS,
	})
	register(Experiment{
		ID:          "abl-family",
		Title:       "Ablation: the full connectivity-algorithm family",
		Description: "Sequential BFS, SV, HCS, Awerbuch-Shiloach, random mating and the work-stealing algorithm on the labeling-adversarial torus — the survey comparison behind the paper's choice of baselines.",
		run:         runAblFamily,
	})
	register(Experiment{
		ID:          "abl-chunk",
		Title:       "Ablation: drain chunk policy (fixed-1 / fixed-64 / adaptive)",
		Description: "The adaptive chunk controller against the two fixed regimes it interpolates: per-vertex locking (fixed-1) and the statically tuned batch (fixed-64), across deep-frontier (torus, geometric), high-diameter (chain) and small-input-high-p shapes where each fixed setting loses somewhere.",
		run:         runAblChunk,
	})
	register(Experiment{
		ID:          "abl-direction",
		Title:       "Ablation: traversal direction policy x CSR layout",
		Description: "Direction-optimizing (top-down/bottom-up auto switching) vs pure top-down, crossed with the wide int64 CSR vs the compact uint32 arena, on the low-diameter shapes where bottom-up pays (torus, geometric) and the high-diameter chain where it must stay out of the way.",
		run:         runAblDirection,
	})
	register(Experiment{
		ID:          "abl-stublen",
		Title:       "Ablation: stub walk length",
		Description: "The paper specifies an O(p)-step random walk for the stub spanning tree; this sweeps the walk length to show the choice is insensitive as long as every processor gets a seed.",
		run:         runAblStubLen,
	})
	register(Experiment{
		ID:          "abl-barriers",
		Title:       "Ablation: O(1) barriers vs one barrier per BFS level",
		Description: "The paper's Section 3 synchronization argument: the work-stealing traversal uses a constant number of barriers while a level-synchronous parallel BFS pays one per level — Θ(diameter) on meshes.",
		run:         runAblBarriers,
	})
	register(Experiment{
		ID:          "abl-alg",
		Title:       "Ablation: work-stealing traversal vs edge-centric CAS-hook sweep",
		Description: "The algorithm-family cross on the Fig. 4 shapes: the paper's vertex-centric traversal (frontier queues, overlappable misses, diameter-long span) against the spanuf union-find sweep (flat edge loop, CAS elections, serially-dependent pointer chases). Measured shape: the traversal's cheaper overlappable per-edge traffic wins the low-diameter families by a wide margin, but its chain parallelism collapses onto one processor, so the sweep — whose span has no diameter term — collapses the gap there to near parity (below it at 2^16, slightly above at paper scale, where per-edge CAS+chase constants dominate). The checks pin the scale-robust relative shape, not the sign of the chain difference.",
		run:         runAblAlg,
	})
	register(Experiment{
		ID:          "abl-shard",
		Title:       "Ablation: sharded execution vs the single team",
		Description: "Partition the CSR into contiguous vertex ranges, run one team per shard on a compact per-shard view, stitch the shard forests through the boundary edges. Two effects compete: every shard view is a uint32 arena, so sharded runs pay the compact per-edge rates on the whole traversal while the unsharded wide baseline pays int64 ones, against the O(boundary) stitch — which collapses to a union-find over shard slots when every shard finishes as one tree. The torus rows show the win where contiguous ranges respect the topology; the geometric and random rows show the two failure modes (shard fragmentation, dense cuts) that keep the serving auto policy conservative. The honest comparison — shards=1 with the compact layout, the same rates with no stitch — bounds what sharding costs over the pure layout effect.",
		run:         runAblShard,
	})
	register(Experiment{
		ID:          "abl-machine",
		Title:       "Ablation: cost-model machine profile sensitivity",
		Description: "Re-evaluates the Fig. 3 headline point under the E4500-like and modern-x86 profiles; the shape conclusion (who wins) must survive the swap.",
		run:         runAblMachine,
	})
}

func runAblNoSteal(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	g := gen.Torus2D(s, s)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-nosteal", Title: "work stealing on vs off (torus, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("variant", "time", "detail")

	on, err := measure(cfg, g, kindWS, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	off, err := measure(cfg, g, kindWS, p, wsConfig{noSteal: true})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("steal", stats.FormatDuration(on.time), on.extra)
	rep.Table.AddRow("nosteal", stats.FormatDuration(off.time), off.extra)
	if cfg.Mode == Modeled {
		rep.Checks = append(rep.Checks, Check{
			Name:   "stealing is faster than no stealing",
			Pass:   on.time < off.time,
			Detail: fmt.Sprintf("steal %v vs nosteal %v", stats.FormatDuration(on.time), stats.FormatDuration(off.time)),
		})
	}
	return rep, nil
}

func runAblNoStub(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	g := gen.Torus2D(s, s)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-nostub", Title: "stub tree vs single seed (torus, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("variant", "time", "detail")
	with, err := measure(cfg, g, kindWS, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	without, err := measure(cfg, g, kindWS, p, wsConfig{noStub: true})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("stub", stats.FormatDuration(with.time), with.extra)
	rep.Table.AddRow("nostub", stats.FormatDuration(without.time), without.extra)
	if cfg.Mode == Modeled {
		rep.Checks = append(rep.Checks, Check{
			Name:   "stub seeding is not slower than single-seed",
			Pass:   with.time <= without.time*11/10,
			Detail: fmt.Sprintf("stub %v vs nostub %v", stats.FormatDuration(with.time), stats.FormatDuration(without.time)),
		})
	}
	return rep, nil
}

func runAblStealOne(cfg Config) (*Report, error) {
	// A star with a single seed is the stress case for the stealing
	// policy: after the hub is processed one queue holds every leaf, and
	// the other p-1 processors must be fed from it. Steal-half moves the
	// frontier in O(log) bulk operations; steal-one pays a steal per
	// leaf.
	g := gen.Star(cfg.Scale)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-stealone", Title: "steal-half vs steal-one (star, single seed, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("variant", "time", "detail")
	half, err := measure(cfg, g, kindWS, p, wsConfig{noStub: true})
	if err != nil {
		return nil, err
	}
	one, err := measure(cfg, g, kindWS, p, wsConfig{noStub: true, stealOne: true})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("steal-half", stats.FormatDuration(half.time), half.extra)
	rep.Table.AddRow("steal-one", stats.FormatDuration(one.time), one.extra)
	if cfg.Mode == Modeled {
		rep.Checks = append(rep.Checks, Check{
			Name:   "steal-half needs no more time than steal-one",
			Pass:   half.time <= one.time*11/10,
			Detail: fmt.Sprintf("half %v vs one %v", stats.FormatDuration(half.time), stats.FormatDuration(one.time)),
		})
	}
	return rep, nil
}

func runAblSVLock(cfg Config) (*Report, error) {
	n := cfg.Scale
	g := gen.Random(n, 3*n/2, cfg.Seed)
	rep := &Report{ID: "abl-svlock", Title: "SV election: CAS vs per-root locks (random graph)"}
	rep.Table = stats.NewTable("variant", "p", "time", "detail")
	p := maxProcs(cfg)
	cas, err := measure(cfg, g, kindSV, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	lock, err := measure(cfg, g, kindSVLocks, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("cas", fmt.Sprint(p), stats.FormatDuration(cas.time), cas.extra)
	rep.Table.AddRow("locks", fmt.Sprint(p), stats.FormatDuration(lock.time), lock.extra)
	if cfg.Mode == Modeled {
		rep.Checks = append(rep.Checks, Check{
			Name:   "CAS election beats locks",
			Pass:   cas.time < lock.time,
			Detail: fmt.Sprintf("cas %v vs locks %v", stats.FormatDuration(cas.time), stats.FormatDuration(lock.time)),
		})
	}
	return rep, nil
}

func runAblDeg2(cfg Config) (*Report, error) {
	rep := &Report{ID: "abl-deg2", Title: "degree-2 elimination on chain-like inputs"}
	rep.Table = stats.NewTable("graph", "variant", "time")
	p := maxProcs(cfg)
	pass := true
	for _, g := range []*graph.Graph{gen.Chain(cfg.Scale), gen.Caterpillar(cfg.Scale)} {
		off, err := measure(cfg, g, kindWS, p, wsConfig{})
		if err != nil {
			return nil, err
		}
		on, err := measure(cfg, g, kindWS, p, wsConfig{deg2: true})
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow(g.Name, "plain", stats.FormatDuration(off.time))
		rep.Table.AddRow(g.Name, "deg2", stats.FormatDuration(on.time))
		if g.Name[:5] == "chain" && on.time >= off.time {
			pass = false
		}
	}
	if cfg.Mode == Modeled {
		rep.Checks = append(rep.Checks, Check{
			Name:   "elimination wins on the pure chain",
			Pass:   pass,
			Detail: "chain reduces to O(1) vertices",
		})
	}
	return rep, nil
}

func runAblFallback(cfg Config) (*Report, error) {
	g := gen.Chain(cfg.Scale)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-fallback", Title: "idle detection and SV fallback (degenerate chain, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("variant", "time", "detail")
	plain, err := measure(cfg, g, kindWS, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	fb, err := measure(cfg, g, kindWS, p, wsConfig{fallbackAtP: true})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("no-detection", stats.FormatDuration(plain.time), plain.extra)
	rep.Table.AddRow("detect+fallback", stats.FormatDuration(fb.time), fb.extra)
	rep.Checks = append(rep.Checks, Check{
		Name:   "fallback triggers on the chain and still yields a verified tree",
		Pass:   contains(fb.extra, "fallback=yes"),
		Detail: fb.extra,
	})
	return rep, nil
}

func runAblHCS(cfg Config) (*Report, error) {
	n := cfg.Scale
	g := gen.Random(n, 3*n/2, cfg.Seed)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-hcs", Title: "HCS vs SV (random graph, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("algorithm", "time", "detail")
	sv, err := measure(cfg, g, kindSV, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	hcs, err := measure(cfg, g, kindHCS, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("SV", stats.FormatDuration(sv.time), sv.extra)
	rep.Table.AddRow("HCS", stats.FormatDuration(hcs.time), hcs.extra)
	if cfg.Mode == Modeled {
		ratio := float64(hcs.time) / float64(sv.time)
		rep.Checks = append(rep.Checks, Check{
			Name:   "HCS performs like SV (paper's reason to drop it)",
			Pass:   ratio > 0.33 && ratio < 3.0,
			Detail: fmt.Sprintf("HCS/SV time ratio %.2f", ratio),
		})
	}
	return rep, nil
}

func runAblFamily(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	g := graph.RandomRelabel(gen.Torus2D(s, s), cfg.Seed^0xA5A5)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-family", Title: "connectivity-algorithm family (torus, random labeling, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("algorithm", "time", "detail")

	seq, err := measure(cfg, g, kindSeqBFS, 1, wsConfig{})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("Sequential", stats.FormatDuration(seq.time), "")
	times := map[algoKind]measurement{}
	for _, kind := range []algoKind{kindSV, kindHCS, kindAS, kindRM, kindWS} {
		m, err := measure(cfg, g, kind, p, wsConfig{})
		if err != nil {
			return nil, err
		}
		times[kind] = m
		rep.Table.AddRow(m.algo, stats.FormatDuration(m.time), m.extra)
	}
	if cfg.Mode == Modeled {
		pass := true
		for _, kind := range []algoKind{kindSV, kindHCS, kindAS, kindRM} {
			if times[kindWS].time >= times[kind].time {
				pass = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "the new algorithm beats every graft-and-shortcut baseline",
			Pass: pass,
			Detail: fmt.Sprintf("NewAlg %v vs SV %v, HCS %v, AS %v, RandMate %v",
				stats.FormatDuration(times[kindWS].time), stats.FormatDuration(times[kindSV].time),
				stats.FormatDuration(times[kindHCS].time), stats.FormatDuration(times[kindAS].time),
				stats.FormatDuration(times[kindRM].time)),
		})
	}
	return rep, nil
}

func runAblChunk(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	p := maxProcs(cfg)
	small := 2048
	if small > cfg.Scale {
		small = cfg.Scale
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus-random", graph.RandomRelabel(gen.Torus2D(s, s), cfg.Seed^0xC4C4)},
		{"geo-hier", gen.GeoHier(cfg.Scale, gen.DefaultGeoHierParams(), cfg.Seed)},
		{"chain", gen.Chain(cfg.Scale)},
		{"small-randconn", gen.RandomConnected(small, 3*small/2, cfg.Seed)},
	}
	variants := []struct {
		name string
		ws   wsConfig
	}{
		{"fixed-1", wsConfig{forceChunk: true, chunkPolicy: core.ChunkFixed, chunkSize: 1}},
		{"fixed-64", wsConfig{forceChunk: true, chunkPolicy: core.ChunkFixed, chunkSize: 64}},
		{"adaptive", wsConfig{forceChunk: true, chunkPolicy: core.ChunkAdaptive}},
	}
	rep := &Report{ID: "abl-chunk", Title: "drain chunk policy sweep (p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("graph", "variant", "time", "stealhit", "grow", "shrink")
	times := map[string]map[string]measurement{}
	hits := map[string]map[string]float64{}
	for _, fam := range families {
		times[fam.name] = map[string]measurement{}
		hits[fam.name] = map[string]float64{}
		for _, v := range variants {
			ws := v.ws
			var st core.Stats
			ws.statsOut = &st
			m, err := measure(cfg, fam.g, kindWS, p, ws)
			if err != nil {
				return nil, err
			}
			times[fam.name][v.name] = m
			hits[fam.name][v.name] = st.StealHitRate()
			rep.Table.AddRow(fam.name, v.name, stats.FormatDuration(m.time),
				fmt.Sprintf("%.3f", st.StealHitRate()),
				fmt.Sprint(st.ChunkGrow), fmt.Sprint(st.ChunkShrink))
		}
	}
	if cfg.Mode == Modeled {
		// Under the lockstep model the chunk is cost-only, so the steal
		// schedule (and hit rate) is variant-invariant by construction;
		// the meaningful modeled comparisons are the charged times.
		deep := []string{"torus-random", "geo-hier"}
		batchWins := true
		for _, f := range deep {
			if times[f]["adaptive"].time >= times[f]["fixed-1"].time {
				batchWins = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "adaptive beats per-vertex locking on deep frontiers",
			Pass: batchWins,
			Detail: fmt.Sprintf("torus adaptive %v vs fixed-1 %v; geo %v vs %v",
				stats.FormatDuration(times["torus-random"]["adaptive"].time),
				stats.FormatDuration(times["torus-random"]["fixed-1"].time),
				stats.FormatDuration(times["geo-hier"]["adaptive"].time),
				stats.FormatDuration(times["geo-hier"]["fixed-1"].time)),
		})
		nearTuned := true
		for _, f := range deep {
			if times[f]["adaptive"].time > times[f]["fixed-64"].time*11/10 {
				nearTuned = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "adaptive stays within 10% of the tuned fixed chunk",
			Pass: nearTuned,
			Detail: fmt.Sprintf("torus adaptive %v vs fixed-64 %v; geo %v vs %v",
				stats.FormatDuration(times["torus-random"]["adaptive"].time),
				stats.FormatDuration(times["torus-random"]["fixed-64"].time),
				stats.FormatDuration(times["geo-hier"]["adaptive"].time),
				stats.FormatDuration(times["geo-hier"]["fixed-64"].time)),
		})
	} else {
		// Wall-clock: the steal hit rate is a real (scheduler-dependent)
		// signal; surface the shallow-frontier comparison as a finding
		// rather than a hard check, since single-host noise is large.
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"shallow-frontier steal hit rates pooled over %d reps: chain adaptive %.3f vs fixed-64 %.3f; small-randconn adaptive %.3f vs fixed-64 %.3f vs fixed-1 %.3f",
			cfg.Repeats,
			hits["chain"]["adaptive"], hits["chain"]["fixed-64"],
			hits["small-randconn"]["adaptive"], hits["small-randconn"]["fixed-64"],
			hits["small-randconn"]["fixed-1"]))
	}
	return rep, nil
}

func runAblDirection(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	p := maxProcs(cfg)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus-random", graph.RandomRelabel(gen.Torus2D(s, s), cfg.Seed^0xA5A5)},
		{"geo-hier", gen.GeoHier(cfg.Scale, gen.DefaultGeoHierParams(), cfg.Seed)},
		{"chain", gen.Chain(cfg.Scale)},
	}
	variants := []struct {
		name string
		ws   wsConfig
	}{
		{"topdown/wide", wsConfig{forceDirLayout: true, direction: core.DirectionTopDown, layout: core.LayoutWide}},
		{"topdown/compact", wsConfig{forceDirLayout: true, direction: core.DirectionTopDown, layout: core.LayoutCompact}},
		{"auto/wide", wsConfig{forceDirLayout: true, direction: core.DirectionAuto, layout: core.LayoutWide}},
		{"auto/compact", wsConfig{forceDirLayout: true, direction: core.DirectionAuto, layout: core.LayoutCompact}},
	}
	rep := &Report{ID: "abl-direction", Title: "direction policy x CSR layout (p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("graph", "variant", "time", "detail")
	times := map[string]map[string]measurement{}
	for _, fam := range families {
		times[fam.name] = map[string]measurement{}
		for _, v := range variants {
			m, err := measure(cfg, fam.g, kindWS, p, v.ws)
			if err != nil {
				return nil, err
			}
			times[fam.name][v.name] = m
			rep.Table.AddRow(fam.name, v.name, stats.FormatDuration(m.time), m.extra)
		}
	}
	if cfg.Mode == Modeled {
		deep := []string{"torus-random", "geo-hier"}
		rep.Checks = append(rep.Checks, Check{
			Name: "bottom-up switching wins where the frontier balloons",
			Pass: times["geo-hier"]["auto/wide"].time < times["geo-hier"]["topdown/wide"].time,
			Detail: fmt.Sprintf("geo-hier auto %v vs topdown %v (both wide)",
				stats.FormatDuration(times["geo-hier"]["auto/wide"].time),
				stats.FormatDuration(times["geo-hier"]["topdown/wide"].time)),
		})
		noHarm := true
		for _, fam := range families {
			if times[fam.name]["auto/wide"].time > times[fam.name]["topdown/wide"].time*21/20 {
				noHarm = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "auto never costs more than 5% where bottom-up cannot pay",
			Pass: noHarm,
			Detail: fmt.Sprintf("torus auto %v vs topdown %v; chain %v vs %v (both wide)",
				stats.FormatDuration(times["torus-random"]["auto/wide"].time),
				stats.FormatDuration(times["torus-random"]["topdown/wide"].time),
				stats.FormatDuration(times["chain"]["auto/wide"].time),
				stats.FormatDuration(times["chain"]["topdown/wide"].time)),
		})
		layWins := true
		for _, f := range deep {
			if times[f]["topdown/compact"].time >= times[f]["topdown/wide"].time {
				layWins = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "the compact uint32 arena cuts modeled memory traffic",
			Pass: layWins,
			Detail: fmt.Sprintf("torus compact %v vs wide %v; geo %v vs %v (both topdown)",
				stats.FormatDuration(times["torus-random"]["topdown/compact"].time),
				stats.FormatDuration(times["torus-random"]["topdown/wide"].time),
				stats.FormatDuration(times["geo-hier"]["topdown/compact"].time),
				stats.FormatDuration(times["geo-hier"]["topdown/wide"].time)),
		})
		combined := true
		for _, f := range deep {
			if times[f]["auto/compact"].time >= times[f]["topdown/wide"].time {
				combined = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "both optimizations together beat the baseline",
			Pass: combined,
			Detail: fmt.Sprintf("torus auto/compact %v vs topdown/wide %v; geo %v vs %v",
				stats.FormatDuration(times["torus-random"]["auto/compact"].time),
				stats.FormatDuration(times["torus-random"]["topdown/wide"].time),
				stats.FormatDuration(times["geo-hier"]["auto/compact"].time),
				stats.FormatDuration(times["geo-hier"]["topdown/wide"].time)),
		})
		rep.Checks = append(rep.Checks, Check{
			Name: "auto stays out of the way on the high-diameter chain",
			Pass: times["chain"]["auto/wide"].time <= times["chain"]["topdown/wide"].time*11/10,
			Detail: fmt.Sprintf("chain auto %v vs topdown %v (wide)",
				stats.FormatDuration(times["chain"]["auto/wide"].time),
				stats.FormatDuration(times["chain"]["topdown/wide"].time)),
		})
	}
	return rep, nil
}

func runAblAlg(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	pmax := maxProcs(cfg)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		// The traversal's home turf: low diameter, bounded degree.
		{"torus-random", graph.RandomRelabel(gen.Torus2D(s, s), cfg.Seed^0xA5A5)},
		// High-degree, low-diameter: the sweep's compression amortizes.
		{"random-nlogn", gen.Random(cfg.Scale, cfg.Scale*log2(cfg.Scale), cfg.Seed)},
		{"geo-hier", gen.GeoHier(cfg.Scale, gen.DefaultGeoHierParams(), cfg.Seed)},
		// Diameter n: the traversal's pathological case, the sweep's
		// indifference point.
		{"chain", gen.Chain(cfg.Scale)},
	}
	kinds := []struct {
		name string
		kind algoKind
	}{
		{"NewAlg", kindWS},
		{"SpanUF", kindSpanUF},
	}
	rep := &Report{ID: "abl-alg", Title: "traversal vs CAS-hook sweep (p = 1, " + fmt.Sprint(pmax) + ")"}
	rep.Table = stats.NewTable("graph", "algorithm", "p", "time", "detail")
	// times[family][algo][p]
	times := map[string]map[string]map[int]measurement{}
	for _, fam := range families {
		times[fam.name] = map[string]map[int]measurement{}
		for _, k := range kinds {
			times[fam.name][k.name] = map[int]measurement{}
			for _, p := range []int{1, pmax} {
				m, err := measure(cfg, fam.g, k.kind, p, wsConfig{})
				if err != nil {
					return nil, err
				}
				times[fam.name][k.name][p] = m
				rep.Table.AddRow(fam.name, k.name, fmt.Sprint(p), stats.FormatDuration(m.time), m.extra)
				if p == 1 && p == pmax {
					break
				}
			}
		}
	}
	if cfg.Mode == Modeled {
		// The shape checks encode what actually holds in the Helman-JáJá
		// model at both 2^16 and paper scale, not the folklore version of
		// the crossover. The sweep pays more per edge (two finds plus a
		// CAS election, priced as serially-dependent chases and RMWs)
		// than the traversal's overlappable queue traffic, so at p <= 8
		// the traversal wins every family outright. What distinguishes
		// the sweep is the absence of any diameter term: on the chain —
		// the traversal's pathological case, where its parallelism
		// collapses onto one processor — the gap shrinks from ~10x (torus)
		// to ~1x, crossing below 1 at small scale. The checks pin the
		// relative shape (gap collapse, scaling) rather than the
		// scale-dependent sign of the chain difference.
		rep.Checks = append(rep.Checks, Check{
			Name: "the traversal's overlappable traffic wins the low-diameter mesh",
			Pass: times["torus-random"]["NewAlg"][pmax].time < times["torus-random"]["SpanUF"][pmax].time,
			Detail: fmt.Sprintf("torus NewAlg %v vs SpanUF %v at p=%d",
				stats.FormatDuration(times["torus-random"]["NewAlg"][pmax].time),
				stats.FormatDuration(times["torus-random"]["SpanUF"][pmax].time), pmax),
		})
		// ratio = SpanUF/NewAlg in percent, at pmax.
		ratio := func(fam string) int64 {
			return int64(times[fam]["SpanUF"][pmax].time) * 100 /
				int64(times[fam]["NewAlg"][pmax].time)
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "diameter indifference collapses the gap on the chain",
			Pass: ratio("chain") < ratio("torus-random")/2,
			Detail: fmt.Sprintf("SpanUF/NewAlg ratio %d%% on the chain vs %d%% on the torus at p=%d",
				ratio("chain"), ratio("torus-random"), pmax),
		})
		rep.Checks = append(rep.Checks, Check{
			Name: "the sweep scales decisively where degrees are high",
			Pass: pmax == 1 || times["random-nlogn"]["SpanUF"][pmax].time <
				times["random-nlogn"]["SpanUF"][1].time*2/3,
			Detail: fmt.Sprintf("random-nlogn SpanUF %v at p=1 -> %v at p=%d",
				stats.FormatDuration(times["random-nlogn"]["SpanUF"][1].time),
				stats.FormatDuration(times["random-nlogn"]["SpanUF"][pmax].time), pmax),
		})
		noHarm := true
		detail := ""
		for _, fam := range families {
			one := times[fam.name]["SpanUF"][1].time
			many := times[fam.name]["SpanUF"][pmax].time
			if many > one*21/20 {
				noHarm = false
			}
			detail += fmt.Sprintf("%s %v->%v ", fam.name,
				stats.FormatDuration(one), stats.FormatDuration(many))
		}
		rep.Checks = append(rep.Checks, Check{
			Name:   "more processors never hurt the sweep (no diameter term in its span)",
			Pass:   noHarm,
			Detail: detail,
		})
	}
	return rep, nil
}

func runAblStubLen(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	g := gen.Torus2D(s, s)
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-stublen", Title: "stub walk length sweep (torus, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("stub-steps", "time", "detail")
	var times []measurement
	for _, steps := range []int{p, 2 * p, 8 * p, 64 * p} {
		m, err := measure(cfg, g, kindWS, p, wsConfig{stubSteps: steps})
		if err != nil {
			return nil, err
		}
		times = append(times, m)
		rep.Table.AddRow(fmt.Sprint(steps), stats.FormatDuration(m.time), m.extra)
	}
	if cfg.Mode == Modeled {
		lo, hi := times[0].time, times[0].time
		for _, m := range times {
			if m.time < lo {
				lo = m.time
			}
			if m.time > hi {
				hi = m.time
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name:   "running time is insensitive to the stub length",
			Pass:   hi <= lo*12/10,
			Detail: fmt.Sprintf("range %v - %v across 1p..64p steps", stats.FormatDuration(lo), stats.FormatDuration(hi)),
		})
	}
	return rep, nil
}

func runAblBarriers(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	g := gen.Torus2D(s, s) // diameter ~ s: the barrier-hostile regime
	p := maxProcs(cfg)
	rep := &Report{ID: "abl-barriers", Title: "asynchronous traversal vs level-synchronous BFS (torus, p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("algorithm", "time", "detail")
	ws, err := measure(cfg, g, kindWS, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	lv, err := measure(cfg, g, kindLevelBFS, p, wsConfig{})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("NewAlg", stats.FormatDuration(ws.time), ws.extra+" barriers=2")
	rep.Table.AddRow("LevelBFS", stats.FormatDuration(lv.time), lv.extra)
	if cfg.Mode == Modeled {
		rep.Checks = append(rep.Checks, Check{
			Name:   "constant-barrier traversal beats per-level barriers on a mesh",
			Pass:   ws.time < lv.time,
			Detail: fmt.Sprintf("NewAlg %v vs LevelBFS %v", stats.FormatDuration(ws.time), stats.FormatDuration(lv.time)),
		})
	}
	return rep, nil
}

func runAblShard(cfg Config) (*Report, error) {
	s := sqrtSide(cfg.Scale)
	p := maxProcs(cfg)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		// Row-major vertex ids: contiguous ranges are torus bands, the cut
		// is O(sqrt n) edges and every band is connected — the shape
		// sharding is built for.
		{"torus", gen.Torus2D(s, s)},
		// Geometric ids carry no spatial locality, so contiguous ranges
		// fragment into many components per shard: the stitch takes the
		// label-walk path and every component costs a quiescence reseed.
		// That tax is fixed per component, so the verdict flips with
		// scale — the single team wins at 2^16, sharding at 2^20.
		{"geo-hier", gen.GeoHier(cfg.Scale, gen.DefaultGeoHierParams(), cfg.Seed)},
		// Dense uniform edges: any bisection cuts ~half of them, so the
		// boundary list rivals the graph itself.
		{"random-nlogn", gen.Random(cfg.Scale, cfg.Scale*log2(cfg.Scale), cfg.Seed)},
	}
	auto := func(sh int, lay core.Layout) wsConfig {
		return wsConfig{forceShards: true, shards: sh,
			forceDirLayout: true, direction: core.DirectionAuto, layout: lay}
	}
	variants := []struct {
		name string
		ws   wsConfig
	}{
		{"shards=1/wide", auto(1, core.LayoutWide)},
		{"shards=1/compact", auto(1, core.LayoutCompact)},
		{"shards=2", auto(2, core.LayoutWide)},
		{"shards=4", auto(4, core.LayoutWide)},
	}
	rep := &Report{ID: "abl-shard", Title: "sharded execution vs the single team (p = " + fmt.Sprint(p) + ")"}
	rep.Table = stats.NewTable("graph", "variant", "time", "detail")
	times := map[string]map[string]measurement{}
	for _, fam := range families {
		times[fam.name] = map[string]measurement{}
		for _, v := range variants {
			m, err := measure(cfg, fam.g, kindWS, p, v.ws)
			if err != nil {
				return nil, err
			}
			times[fam.name][v.name] = m
			rep.Table.AddRow(fam.name, v.name, stats.FormatDuration(m.time), m.extra)
		}
	}
	if cfg.Mode == Modeled {
		// The headline claim, on the family sharding is built for: torus
		// bands are connected with an O(sqrt n) cut, so the shard views'
		// compact rates pay for the whole traversal while the stitch
		// collapses to the rooted fast path — O(cut) against O(m) savings,
		// at 2^16 and at paper scale alike.
		rep.Checks = append(rep.Checks, Check{
			Name: "sharding beats the wide single team on the sparse cut",
			Pass: times["torus"]["shards=2"].time < times["torus"]["shards=1/wide"].time,
			Detail: fmt.Sprintf("torus shards=2 %v vs shards=1/wide %v",
				stats.FormatDuration(times["torus"]["shards=2"].time),
				stats.FormatDuration(times["torus"]["shards=1/wide"].time)),
		})
		// The honest comparison: against shards=1 with the compact layout
		// the rate advantage vanishes and only the stitch + wave overhead
		// remains, so sharding must stay within a small factor of the
		// layout-only configuration (at p > 1 the disjoint teams often edge
		// it out outright — span folds per wave — but the check only pins
		// the bound that holds at every p).
		rep.Checks = append(rep.Checks, Check{
			Name: "stitch overhead stays within 10% of the layout-only win",
			Pass: times["torus"]["shards=2"].time <= times["torus"]["shards=1/compact"].time*11/10,
			Detail: fmt.Sprintf("torus shards=2 %v vs shards=1/compact %v",
				stats.FormatDuration(times["torus"]["shards=2"].time),
				stats.FormatDuration(times["torus"]["shards=1/compact"].time)),
		})
		// Doubling the shard count doubles the cut but halves nothing new;
		// on the sparse cut the added stitch work is noise and the win must
		// survive.
		rep.Checks = append(rep.Checks, Check{
			Name: "four shards hold the sparse-cut win",
			Pass: times["torus"]["shards=4"].time < times["torus"]["shards=1/wide"].time,
			Detail: fmt.Sprintf("torus shards=4 %v vs shards=1/wide %v",
				stats.FormatDuration(times["torus"]["shards=4"].time),
				stats.FormatDuration(times["torus"]["shards=1/wide"].time)),
		})
		// The negative space is part of the result: a uniform random graph
		// puts ~half its edges on the cut, so the boundary list rivals the
		// graph and the single team must win at every scale — this is why
		// the serving layer's auto policy shards by size with a small cap
		// instead of always sharding. (The geo-hier rows are reported but
		// not checked: shard fragmentation loses at 2^16 yet flips to a
		// win at paper scale, where the reseed tax amortizes — see
		// EXPERIMENTS.md.)
		rep.Checks = append(rep.Checks, Check{
			Name: "the single team wins when the cut is dense",
			Pass: times["random-nlogn"]["shards=1/wide"].time < times["random-nlogn"]["shards=2"].time,
			Detail: fmt.Sprintf("random shards=1/wide %v vs shards=2 %v",
				stats.FormatDuration(times["random-nlogn"]["shards=1/wide"].time),
				stats.FormatDuration(times["random-nlogn"]["shards=2"].time)),
		})
	}
	return rep, nil
}

func runAblMachine(cfg Config) (*Report, error) {
	n := cfg.Scale
	g := gen.Random(n, 3*n/2, cfg.Seed)
	p := cfg.Fig3Procs
	rep := &Report{ID: "abl-machine", Title: "machine-profile sensitivity of the modeled speedup"}
	rep.Table = stats.NewTable("profile", "seq", "newalg", "speedup")
	pass := true
	for _, mach := range []smpmodel.Machine{smpmodel.E4500(), smpmodel.Modern()} {
		c := cfg
		c.Machine = mach
		c.Mode = Modeled
		seq, err := measure(c, g, kindSeqBFS, 1, wsConfig{})
		if err != nil {
			return nil, err
		}
		ws, err := measure(c, g, kindWS, p, wsConfig{})
		if err != nil {
			return nil, err
		}
		sp := stats.Speedup(seq.time, ws.time)
		rep.Table.AddRow(mach.Name, stats.FormatDuration(seq.time), stats.FormatDuration(ws.time), fmt.Sprintf("%.2f", sp))
		if sp <= 1 {
			pass = false
		}
	}
	rep.Checks = append(rep.Checks, Check{
		Name:   "the new algorithm wins under both machine profiles",
		Pass:   pass,
		Detail: "shape conclusion survives the profile swap",
	})
	return rep, nil
}

func maxProcs(cfg Config) int {
	p := cfg.Procs[0]
	for _, q := range cfg.Procs {
		if q > p {
			p = q
		}
	}
	return p
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
