// Package harness defines and runs the reproduction experiments: one
// entry per figure in the paper's evaluation (Fig. 3 scalability and the
// ten plots of Fig. 4), plus ablation studies of the design choices the
// paper calls out. cmd/benchfig is the command-line front end.
//
// Each experiment measures algorithms in one of two modes:
//
//   - Modeled (default): algorithms run with Helman-JáJá cost-model
//     instrumentation — the work-stealing algorithm under the
//     deterministic lockstep driver — and times are computed from the
//     per-processor counters under a machine profile. This is the mode
//     that reproduces the paper's figures on any host, including the
//     single-core container this reproduction was built in (see
//     DESIGN.md, "Paper → implementation substitutions").
//
//   - Wall-clock: algorithms run concurrently and are timed; meaningful
//     parallel speedups require a multi-core host.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spantree/internal/core"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/stats"
)

// Mode selects how experiments measure time.
type Mode int

const (
	// Modeled computes times from cost-model counters (deterministic).
	Modeled Mode = iota
	// WallClock times real concurrent runs.
	WallClock
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == WallClock {
		return "wallclock"
	}
	return "modeled"
}

// Config parameterizes an experiment run.
type Config struct {
	// Scale is the vertex budget n for each input graph. The paper used
	// n = 1M; the default here is 1<<16 so the full suite runs in
	// seconds. Pass -scale 1048576 to benchfig for paper-scale inputs.
	Scale int
	// Procs is the processor counts swept by the Fig. 4 experiments.
	Procs []int
	// Fig3Procs is the fixed processor count of the Fig. 3 experiment
	// (the paper uses 8).
	Fig3Procs int
	// Seed drives graph generation and the randomized algorithm.
	Seed uint64
	// Mode selects modeled or wall-clock measurement.
	Mode Mode
	// Machine is the cost-model profile for Modeled mode.
	Machine smpmodel.Machine
	// Repeats is the number of wall-clock repetitions (min is reported).
	Repeats int
	// Verify re-checks every computed forest with the independent
	// verifier (on by default in the tools; costs one O(n+m) pass).
	Verify bool
	// ChunkPolicy and ChunkSize configure the work-stealing drain chunk
	// for every experiment that does not force its own (the chunk-size
	// ablations do). The zero values are the core defaults: adaptive
	// policy, default growth cap.
	ChunkPolicy core.ChunkPolicy
	ChunkSize   int
	// Direction and Layout configure the work-stealing traversal for
	// every experiment that does not force its own (the direction/layout
	// ablation does). The zero values are the core defaults:
	// direction-optimizing auto, wide CSR layout.
	Direction core.Direction
	Layout    core.Layout
	// Shards configures sharded execution for the work-stealing runs of
	// every experiment that does not force its own shard counts (the
	// shard ablation does). 0 and 1 are the single-team path; the
	// fallback ablation ignores it (detection requires an unsharded
	// run).
	Shards int
	// Collector, when non-nil, receives one observability Report per
	// instrumented measurement (the work-stealing and SV-family runs),
	// labeled "algo/graph/p=N" — the metrics artifact cmd/benchfig
	// writes for -metrics / -trace.
	Collector *obs.Collector
	// SpanUF substitutes the edge-centric CAS-hook sweep for the
	// work-stealing traversal in the Fig. 3 and Fig. 4 experiments
	// (benchfig -alg spanuf). Intended for pinning a spanuf wall-clock
	// baseline with -metrics: the modeled shape checks encode the
	// traversal's expected shape, so experiments skip them under the
	// substitution, and the degree-2 / ablation rows that only exist for
	// the traversal are omitted.
	SpanUF bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1 << 16
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{1, 2, 4, 8}
	}
	if c.Fig3Procs == 0 {
		c.Fig3Procs = 8
	}
	if c.Machine == (smpmodel.Machine{}) {
		c.Machine = smpmodel.E4500()
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// Check is a shape assertion derived from the paper's claims, evaluated
// against the measured data.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the result of one experiment.
type Report struct {
	ID       string
	Title    string
	Table    *stats.Table
	Findings []string
	Checks   []Check
}

// Passed reports whether all checks passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Table.String())
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  note: %s\n", f)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Experiment is one reproducible figure or ablation.
type Experiment struct {
	ID          string
	Title       string
	Description string
	run         func(cfg Config) (*Report, error)
}

// Run executes the experiment.
func (e Experiment) Run(cfg Config) (*Report, error) {
	return e.run(cfg.withDefaults())
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID with figures
// before ablations.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}
