package harness

import (
	"fmt"
	"math"

	"spantree/internal/core"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/stats"
)

// sqrtSide returns the torus/mesh side for an n-vertex budget.
func sqrtSide(n int) int { return int(math.Sqrt(float64(n))) }

// cubeSide returns the 3D mesh side for an n-vertex budget.
func cubeSide(n int) int { return int(math.Cbrt(float64(n))) }

// log2 returns ceil(log2 n) for n >= 1.
func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// fig4Plot describes one subplot of the paper's Fig. 4.
type fig4Plot struct {
	id    string
	title string
	// build constructs the input at the configured scale.
	build func(cfg Config) *graph.Graph
	// expectWSWins states whether the paper's plot shows the new
	// algorithm beating the sequential line at p >= 4. True for every
	// plot except the degenerate chains (the algorithm's stated
	// pathological case).
	expectWSWins bool
	// note is attached to the report.
	note string
}

var fig4Plots = []fig4Plot{
	{
		id:    "fig4-torus-rowmajor",
		title: "Fig 4 (torus, row-major labeling)",
		build: func(cfg Config) *graph.Graph {
			s := sqrtSide(cfg.Scale)
			return gen.Torus2D(s, s)
		},
		expectWSWins: true,
		note:         "regular topology; SV's friendly labeling",
	},
	{
		id:    "fig4-torus-random",
		title: "Fig 4 (torus, random labeling)",
		build: func(cfg Config) *graph.Graph {
			s := sqrtSide(cfg.Scale)
			return graph.RandomRelabel(gen.Torus2D(s, s), cfg.Seed^0xA5A5)
		},
		expectWSWins: true,
		note:         "regular topology; SV's adversarial labeling",
	},
	{
		id:    "fig4-random-nlogn",
		title: "Fig 4 (random graph, m = n log n)",
		build: func(cfg Config) *graph.Graph {
			n := cfg.Scale
			return gen.Random(n, n*log2(n), cfg.Seed)
		},
		expectWSWins: true,
		note:         "the paper's m = 20M ≈ n log n density at n = 1M",
	},
	{
		id:    "fig4-2d60",
		title: "Fig 4 (2D60 irregular mesh)",
		build: func(cfg Config) *graph.Graph {
			s := sqrtSide(cfg.Scale)
			return gen.Mesh2D(s, s, 0.60, cfg.Seed)
		},
		expectWSWins: true,
	},
	{
		id:    "fig4-3d40",
		title: "Fig 4 (3D40 irregular mesh)",
		build: func(cfg Config) *graph.Graph {
			s := cubeSide(cfg.Scale)
			return gen.Mesh3D(s, s, s, 0.40, cfg.Seed)
		},
		expectWSWins: true,
	},
	{
		id:    "fig4-ad3",
		title: "Fig 4 (geometric k=3, AD3)",
		build: func(cfg Config) *graph.Graph {
			return gen.AD3(cfg.Scale, cfg.Seed)
		},
		expectWSWins: true,
	},
	{
		id:    "fig4-geo-flat",
		title: "Fig 4 (geographic, flat mode)",
		build: func(cfg Config) *graph.Graph {
			return gen.GeoFlat(cfg.Scale, gen.DefaultGeoFlatParams(), cfg.Seed)
		},
		expectWSWins: true,
	},
	{
		id:    "fig4-geo-hier",
		title: "Fig 4 (geographic, hierarchical mode)",
		build: func(cfg Config) *graph.Graph {
			return gen.GeoHier(cfg.Scale, gen.DefaultGeoHierParams(), cfg.Seed)
		},
		expectWSWins: true,
	},
	{
		id:    "fig4-chain-seq",
		title: "Fig 4 (degenerate chain, sequential labeling)",
		build: func(cfg Config) *graph.Graph {
			return gen.Chain(cfg.Scale)
		},
		expectWSWins: false,
		note:         "the algorithm's stated pathological case (diameter n-1)",
	},
	{
		id:    "fig4-chain-random",
		title: "Fig 4 (degenerate chain, random labeling)",
		build: func(cfg Config) *graph.Graph {
			return graph.RandomRelabel(gen.Chain(cfg.Scale), cfg.Seed^0x5A5A)
		},
		expectWSWins: false,
		note:         "pathological case with SV-adversarial labeling",
	},
}

func init() {
	register(Experiment{
		ID:          "fig3",
		Title:       "Scalability of the new algorithm vs sequential (random graph, m = 1.5n, p = 8)",
		Description: "Reproduces Fig. 3: modeled running time of the work-stealing algorithm at p processors against sequential BFS as n grows; the paper reports speedups between 4.5 and 5.5.",
		run:         runFig3,
	})
	for _, plot := range fig4Plots {
		plot := plot
		register(Experiment{
			ID:          plot.id,
			Title:       plot.title,
			Description: "Reproduces one plot of Fig. 4: Sequential vs SV vs the new algorithm across processor counts (log-log in the paper).",
			run:         func(cfg Config) (*Report, error) { return runFig4Plot(cfg, plot) },
		})
	}
	registerAblations()
}

func runFig3(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig3", Title: "Fig 3 scalability, p = " + fmt.Sprint(cfg.Fig3Procs)}
	rep.Table = stats.NewTable("n", "m", "seq", "newalg", "speedup")
	// The paper's Fig. 3 claims are asymptotic: with chunked queue
	// draining, inputs where per-processor work is below a few chunks
	// run in the startup regime and sit under the asymptote (the
	// adaptive controller also starts at a small chunk there), so both
	// the band and the flatness statistics only cover points past that
	// knee; the findings line still reports the full range.
	amortizedN := cfg.Fig3Procs * 4 * core.DefaultChunkSize
	var speedups, flatSpeedups []float64
	for _, frac := range []int{16, 8, 4, 2, 1} {
		n := cfg.Scale / frac
		if n < 64 {
			continue
		}
		// The paper spans a random graph with m = 1.5n; at that density a
		// G(n,m) sample is disconnected, and a spanning tree experiment
		// presumes a connected input, so the reproduction uses the
		// connected variant (random spanning backbone + random extra
		// edges to the same density).
		g := gen.RandomConnected(n, 3*n/2, cfg.Seed+uint64(frac))
		seq, err := measure(cfg, g, kindSeqBFS, 1, wsConfig{})
		if err != nil {
			return nil, err
		}
		ws, err := measure(cfg, g, parallelKind(cfg), cfg.Fig3Procs, wsConfig{})
		if err != nil {
			return nil, err
		}
		sp := stats.Speedup(seq.time, ws.time)
		speedups = append(speedups, sp)
		if n >= amortizedN {
			flatSpeedups = append(flatSpeedups, sp)
		}
		rep.Table.AddRow(
			fmt.Sprint(n), fmt.Sprint(g.NumEdges()),
			stats.FormatDuration(seq.time), stats.FormatDuration(ws.time),
			fmt.Sprintf("%.2f", sp),
		)
	}
	if len(speedups) == 0 {
		return nil, fmt.Errorf("harness: fig3 scale %d too small", cfg.Scale)
	}
	minSp, maxSp := speedups[0], speedups[0]
	for _, s := range speedups {
		minSp = math.Min(minSp, s)
		maxSp = math.Max(maxSp, s)
	}
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("speedup range %.2f-%.2f at p=%d (paper: 4.5-5.5 at p=8 on the E4500)", minSp, maxSp, cfg.Fig3Procs))
	if cfg.SpanUF {
		// The band and flatness checks encode the traversal's expected
		// shape; under -alg spanuf the experiment is a measurement run
		// (baseline pinning), not a shape reproduction.
		return rep, nil
	}
	if cfg.Mode == Modeled {
		bandSpeedups := flatSpeedups
		bandNote := fmt.Sprintf(" over n >= %d", amortizedN)
		if len(bandSpeedups) == 0 {
			bandSpeedups, bandNote = speedups, ""
		}
		minB, maxB := bandSpeedups[0], bandSpeedups[0]
		for _, s := range bandSpeedups {
			minB = math.Min(minB, s)
			maxB = math.Max(maxB, s)
		}
		rep.Checks = append(rep.Checks,
			Check{
				Name:   "parallel speedup in the paper's band",
				Pass:   minB >= 3.0 && maxB <= 7.5,
				Detail: fmt.Sprintf("speedups %.2f-%.2f%s, paper band 4.5-5.5 (accepting 3.0-7.5 for the substituted cost model)", minB, maxB, bandNote),
			},
		)
		if len(flatSpeedups) >= 2 {
			minF, maxF := flatSpeedups[0], flatSpeedups[0]
			for _, s := range flatSpeedups {
				minF = math.Min(minF, s)
				maxF = math.Max(maxF, s)
			}
			rep.Checks = append(rep.Checks, Check{
				Name:   "speedup roughly flat in n (linear scaling)",
				Pass:   maxF/minF < 1.8,
				Detail: fmt.Sprintf("max/min speedup ratio %.2f over n >= %d (amortized regime)", maxF/minF, amortizedN),
			})
		} else {
			rep.Findings = append(rep.Findings, fmt.Sprintf(
				"flatness check skipped: fewer than two points at n >= %d (chunk amortization knee)", amortizedN))
		}
	}
	return rep, nil
}

func runFig4Plot(cfg Config, plot fig4Plot) (*Report, error) {
	g := plot.build(cfg)
	rep := &Report{ID: plot.id, Title: plot.title}
	rep.Table = stats.NewTable("algorithm", "p", "time", "speedup", "detail")
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("input %v, avg degree %.2f", g, g.AvgDegree()))
	if plot.note != "" {
		rep.Findings = append(rep.Findings, plot.note)
	}

	seq, err := measure(cfg, g, kindSeqBFS, 1, wsConfig{})
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("Sequential", "1", stats.FormatDuration(seq.time), "1.00", "")

	wsTimes := map[int]measurement{}
	svTimes := map[int]measurement{}
	for _, p := range cfg.Procs {
		sv, err := measure(cfg, g, kindSV, p, wsConfig{})
		if err != nil {
			return nil, err
		}
		svTimes[p] = sv
		rep.Table.AddRow("SV", fmt.Sprint(p), stats.FormatDuration(sv.time),
			fmt.Sprintf("%.2f", stats.Speedup(seq.time, sv.time)), sv.extra)
	}
	for _, p := range cfg.Procs {
		ws, err := measure(cfg, g, parallelKind(cfg), p, wsConfig{})
		if err != nil {
			return nil, err
		}
		wsTimes[p] = ws
		rep.Table.AddRow(ws.algo, fmt.Sprint(p), stats.FormatDuration(ws.time),
			fmt.Sprintf("%.2f", stats.Speedup(seq.time, ws.time)), ws.extra)
	}
	deg2Times := map[int]measurement{}
	if !plot.expectWSWins && !cfg.SpanUF {
		// The chain plots additionally show the paper's degree-2
		// elimination preprocessing, which collapses the pathological
		// chain before the traversal runs.
		for _, p := range cfg.Procs {
			d2, err := measure(cfg, g, kindWS, p, wsConfig{deg2: true})
			if err != nil {
				return nil, err
			}
			deg2Times[p] = d2
			rep.Table.AddRow("NewAlg+deg2", fmt.Sprint(p), stats.FormatDuration(d2.time),
				fmt.Sprintf("%.2f", stats.Speedup(seq.time, d2.time)), d2.extra)
		}
	}

	if cfg.Mode != Modeled {
		return rep, nil // no shape checks on arbitrary hosts
	}
	if cfg.SpanUF {
		// The Fig. 4 checks state where the traversal beats SV and by how
		// much; with the sweep substituted they would assert someone
		// else's shape. abl-alg carries the sweep's own checks.
		return rep, nil
	}
	minP, maxP := cfg.Procs[0], cfg.Procs[0]
	for _, p := range cfg.Procs {
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	rep.Checks = append(rep.Checks,
		Check{
			Name: "SV improves with processors",
			Pass: svTimes[maxP].time < svTimes[minP].time,
			Detail: fmt.Sprintf("p=%d: %v -> p=%d: %v", minP,
				stats.FormatDuration(svTimes[minP].time), maxP, stats.FormatDuration(svTimes[maxP].time)),
		},
	)
	if plot.expectWSWins {
		rep.Checks = append(rep.Checks,
			Check{
				Name: "new algorithm improves with processors",
				Pass: wsTimes[maxP].time < wsTimes[minP].time,
				Detail: fmt.Sprintf("p=%d: %v -> p=%d: %v", minP,
					stats.FormatDuration(wsTimes[minP].time), maxP, stats.FormatDuration(wsTimes[maxP].time)),
			},
			Check{
				Name: "new algorithm beats SV at every p",
				Pass: func() bool {
					for _, p := range cfg.Procs {
						if wsTimes[p].time >= svTimes[p].time {
							return false
						}
					}
					return true
				}(),
				Detail: fmt.Sprintf("at p=%d: NewAlg %v vs SV %v", maxP,
					stats.FormatDuration(wsTimes[maxP].time), stats.FormatDuration(svTimes[maxP].time)),
			},
		)
		pass := true
		for _, p := range cfg.Procs {
			if p > 2 && wsTimes[p].time >= seq.time {
				pass = false
			}
		}
		rep.Checks = append(rep.Checks, Check{
			Name: "new algorithm beats sequential for p > 2",
			Pass: pass,
			Detail: fmt.Sprintf("sequential %v, NewAlg@p=%d %v",
				stats.FormatDuration(seq.time), maxP, stats.FormatDuration(wsTimes[maxP].time)),
		})
	} else {
		// Pathological plots: the traversal is bound by the dependency
		// span of the chain, so the honest expectations are (a) no fake
		// super-serial speedup, i.e. performance comparable to SV in the
		// worst case, exactly as the paper's Section 2 discussion says,
		// and (b) the degree-2 elimination preprocessing restores the
		// win by collapsing the chain.
		rep.Checks = append(rep.Checks,
			Check{
				Name: "traversal hits the serial-dependency ceiling (paper's stated worst case)",
				Pass: wsTimes[maxP].time*2 >= seq.time,
				Detail: fmt.Sprintf("NewAlg@p=%d %v vs sequential %v: no super-serial speedup claimed",
					maxP, stats.FormatDuration(wsTimes[maxP].time), stats.FormatDuration(seq.time)),
			},
			Check{
				Name: "degree-2 elimination restores the win on the chain",
				Pass: deg2Times[maxP].time < seq.time && deg2Times[maxP].time < wsTimes[maxP].time,
				Detail: fmt.Sprintf("NewAlg+deg2@p=%d %v vs sequential %v",
					maxP, stats.FormatDuration(deg2Times[maxP].time), stats.FormatDuration(seq.time)),
			},
		)
	}
	return rep, nil
}
