package harness

import (
	"fmt"
	"time"

	"spantree/internal/core"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/spanas"
	"spantree/internal/spanhcs"
	"spantree/internal/spanlevel"
	"spantree/internal/spanrm"
	"spantree/internal/spanseq"
	"spantree/internal/spansv"
	"spantree/internal/verify"
)

// measurement is one (algorithm, p) data point.
type measurement struct {
	algo string
	p    int
	time time.Duration
	// extra carries algorithm-specific info for findings (e.g. SV
	// iteration counts, steal counts).
	extra string
}

// algoKind identifies the runner used by measure.
type algoKind int

const (
	kindSeqBFS algoKind = iota
	kindSV
	kindSVLocks
	kindHCS
	kindAS
	kindRM
	kindLevelBFS
	kindWS // the paper's work-stealing algorithm
)

func (k algoKind) label() string {
	switch k {
	case kindSeqBFS:
		return "Sequential"
	case kindSV:
		return "SV"
	case kindSVLocks:
		return "SV-locks"
	case kindHCS:
		return "HCS"
	case kindAS:
		return "AS"
	case kindRM:
		return "RandMate"
	case kindLevelBFS:
		return "LevelBFS"
	case kindWS:
		return "NewAlg"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// wsConfig carries the work-stealing variant toggles for ablations.
type wsConfig struct {
	noSteal     bool
	noStub      bool
	stealOne    bool
	deg2        bool
	fallbackAtP bool // threshold = max(1, p-1): force-detect pathologies
	stubSteps   int  // 0 = the default 2p
}

// measure runs one algorithm at one processor count and returns its
// measured (modeled or wall-clock) time. The computed forest is always
// verified when cfg.Verify is set; a verification failure is returned as
// an error since it invalidates the whole experiment.
func measure(cfg Config, g *graph.Graph, kind algoKind, p int, ws wsConfig) (measurement, error) {
	m := measurement{algo: kind.label(), p: p}
	runOnce := func(model *smpmodel.Model, rec *obs.Recorder) ([]graph.VID, string, error) {
		switch kind {
		case kindSeqBFS:
			return spanseq.BFS(g, model.Probe(0)), "", nil
		case kindSV, kindSVLocks:
			parent, st, err := spansv.SpanningForest(g, spansv.Options{
				NumProcs: p,
				UseLocks: kind == kindSVLocks,
				Model:    model,
				Obs:      rec,
			})
			return parent, fmt.Sprintf("iters=%d shortcuts=%d", st.Iterations, st.ShortcutRounds), err
		case kindHCS:
			parent, st, err := spanhcs.SpanningForest(g, spanhcs.Options{NumProcs: p, Model: model})
			return parent, fmt.Sprintf("iters=%d shortcuts=%d", st.Iterations, st.ShortcutRounds), err
		case kindAS:
			parent, st, err := spanas.SpanningForest(g, spanas.Options{NumProcs: p, Model: model})
			return parent, fmt.Sprintf("iters=%d hooks=%d+%d", st.Iterations, st.ConditionalHooks, st.UnconditionalHooks), err
		case kindRM:
			parent, st, err := spanrm.SpanningForest(g, spanrm.Options{NumProcs: p, Seed: cfg.Seed, Model: model})
			return parent, fmt.Sprintf("rounds=%d", st.Rounds), err
		case kindLevelBFS:
			parent, st, err := spanlevel.SpanningForest(g, spanlevel.Options{NumProcs: p, Model: model})
			return parent, fmt.Sprintf("levels=%d", st.Levels), err
		case kindWS:
			opt := core.Options{
				NumProcs:      p,
				Seed:          cfg.Seed,
				Model:         model,
				Obs:           rec,
				NoSteal:       ws.noSteal,
				NoStub:        ws.noStub,
				StealOne:      ws.stealOne,
				Deg2Eliminate: ws.deg2,
				StubSteps:     ws.stubSteps,
			}
			if ws.fallbackAtP {
				opt.FallbackThreshold = maxInt(1, p-1)
			}
			var (
				parent []graph.VID
				st     core.Stats
				err    error
			)
			if cfg.Mode == Modeled {
				parent, st, err = core.LockstepForest(g, opt)
			} else {
				parent, st, err = core.SpanningForest(g, opt)
			}
			extra := fmt.Sprintf("steals=%d imbalance=%.2f", st.Steals, st.MaxLoadImbalance())
			if st.FallbackTriggered {
				extra += " fallback=yes"
			}
			return parent, extra, err
		}
		return nil, "", fmt.Errorf("harness: unknown algorithm kind %d", kind)
	}

	// instrumented reports whether this algorithm kind feeds the
	// observability layer (only those runs produce a meaningful Report).
	instrumented := kind == kindWS || kind == kindSV || kind == kindSVLocks
	collect := func(rec *obs.Recorder, elapsed time.Duration) {
		if rec == nil {
			return
		}
		label := fmt.Sprintf("%s/%v/p=%d", m.algo, g, p)
		meta := map[string]string{
			"algo":  m.algo,
			"graph": g.String(),
			"p":     fmt.Sprint(p),
			"mode":  cfg.Mode.String(),
			"seed":  fmt.Sprint(cfg.Seed),
		}
		cfg.Collector.Collect(label, meta, elapsed.Nanoseconds(), rec)
	}

	if cfg.Mode == Modeled {
		model := smpmodel.New(p)
		var rec *obs.Recorder
		if instrumented {
			rec = cfg.Collector.NewRecorder(p)
		}
		parent, extra, err := runOnce(model, rec)
		if err != nil {
			return m, err
		}
		if cfg.Verify {
			if err := verify.Forest(g, parent); err != nil {
				return m, fmt.Errorf("harness: %s p=%d on %v: %w", m.algo, p, g, err)
			}
		}
		m.time = model.Time(cfg.Machine)
		m.extra = extra
		collect(rec, m.time)
		return m, nil
	}

	// Wall-clock: repeat and keep the minimum. Only the first repetition
	// is instrumented — a Recorder accumulates for its lifetime, so
	// attaching one recorder to every repeat would conflate the runs.
	best := time.Duration(0)
	var extra string
	var rec0 *obs.Recorder
	var rec0Elapsed time.Duration
	for rep := 0; rep < cfg.Repeats; rep++ {
		var rec *obs.Recorder
		if rep == 0 && instrumented {
			rec = cfg.Collector.NewRecorder(p)
		}
		start := time.Now()
		parent, e, err := runOnce(nil, rec)
		elapsed := time.Since(start)
		if err != nil {
			return m, err
		}
		if rep == 0 {
			rec0, rec0Elapsed = rec, elapsed
			if cfg.Verify {
				if err := verify.Forest(g, parent); err != nil {
					return m, fmt.Errorf("harness: %s p=%d on %v: %w", m.algo, p, g, err)
				}
			}
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
		extra = e
	}
	m.time = best
	m.extra = extra
	collect(rec0, rec0Elapsed)
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
