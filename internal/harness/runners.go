package harness

import (
	"fmt"
	"time"

	"spantree/internal/core"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/spanas"
	"spantree/internal/spanhcs"
	"spantree/internal/spanlevel"
	"spantree/internal/spanrm"
	"spantree/internal/spanseq"
	"spantree/internal/spansv"
	"spantree/internal/spanuf"
	"spantree/internal/verify"
)

// measurement is one (algorithm, p) data point.
type measurement struct {
	algo string
	p    int
	time time.Duration
	// extra carries algorithm-specific info for findings (e.g. SV
	// iteration counts, steal counts).
	extra string
}

// algoKind identifies the runner used by measure.
type algoKind int

const (
	kindSeqBFS algoKind = iota
	kindSV
	kindSVLocks
	kindHCS
	kindAS
	kindRM
	kindLevelBFS
	kindWS     // the paper's work-stealing algorithm
	kindSpanUF // the edge-centric CAS-hook union-find sweep
)

func (k algoKind) label() string {
	switch k {
	case kindSeqBFS:
		return "Sequential"
	case kindSV:
		return "SV"
	case kindSVLocks:
		return "SV-locks"
	case kindHCS:
		return "HCS"
	case kindAS:
		return "AS"
	case kindRM:
		return "RandMate"
	case kindLevelBFS:
		return "LevelBFS"
	case kindWS:
		return "NewAlg"
	case kindSpanUF:
		return "SpanUF"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// wsConfig carries the work-stealing variant toggles for ablations.
type wsConfig struct {
	noSteal     bool
	noStub      bool
	stealOne    bool
	deg2        bool
	fallbackAtP bool // threshold = max(1, p-1): force-detect pathologies
	stubSteps   int  // 0 = the default 2p
	// forceChunk overrides cfg.ChunkPolicy/ChunkSize with chunkPolicy and
	// chunkSize — the chunk ablations pin their variants regardless of
	// what the CLI asked for globally.
	forceChunk  bool
	chunkPolicy core.ChunkPolicy
	chunkSize   int
	// forceDirLayout overrides cfg.Direction/Layout with direction and
	// layout — the direction/layout ablation pins its variants the same
	// way the chunk ablations pin theirs.
	forceDirLayout bool
	direction      core.Direction
	layout         core.Layout
	// forceShards overrides cfg.Shards with shards — the shard ablation
	// pins its variants.
	forceShards bool
	shards      int
	// statsOut, when non-nil, receives the run's core.Stats for
	// ablations that check steal hit rates and controller activity. In
	// wall-clock mode the scheduler counters (steals, attempts, chunk
	// grow/shrink) are summed across repetitions — a hit rate computed
	// from one repetition's handful of attempts is binomial noise —
	// while the remaining fields reflect the final repetition.
	statsOut *core.Stats
}

// measure runs one algorithm at one processor count and returns its
// measured (modeled or wall-clock) time. The computed forest is always
// verified when cfg.Verify is set; a verification failure is returned as
// an error since it invalidates the whole experiment.
func measure(cfg Config, g *graph.Graph, kind algoKind, p int, ws wsConfig) (measurement, error) {
	m := measurement{algo: kind.label(), p: p}
	runOnce := func(model *smpmodel.Model, rec *obs.Recorder) ([]graph.VID, string, error) {
		switch kind {
		case kindSeqBFS:
			return spanseq.BFS(g, model.Probe(0)), "", nil
		case kindSV, kindSVLocks:
			parent, st, err := spansv.SpanningForest(g, spansv.Options{
				NumProcs:    p,
				UseLocks:    kind == kindSVLocks,
				Model:       model,
				Obs:         rec,
				ChunkPolicy: cfg.ChunkPolicy,
				ChunkSize:   cfg.ChunkSize,
			})
			return parent, fmt.Sprintf("iters=%d shortcuts=%d", st.Iterations, st.ShortcutRounds), err
		case kindHCS:
			parent, st, err := spanhcs.SpanningForest(g, spanhcs.Options{NumProcs: p, Model: model, ChunkPolicy: cfg.ChunkPolicy, ChunkSize: cfg.ChunkSize})
			return parent, fmt.Sprintf("iters=%d shortcuts=%d", st.Iterations, st.ShortcutRounds), err
		case kindAS:
			parent, st, err := spanas.SpanningForest(g, spanas.Options{NumProcs: p, Model: model, ChunkPolicy: cfg.ChunkPolicy, ChunkSize: cfg.ChunkSize})
			return parent, fmt.Sprintf("iters=%d hooks=%d+%d", st.Iterations, st.ConditionalHooks, st.UnconditionalHooks), err
		case kindRM:
			parent, st, err := spanrm.SpanningForest(g, spanrm.Options{NumProcs: p, Seed: cfg.Seed, Model: model, ChunkPolicy: cfg.ChunkPolicy, ChunkSize: cfg.ChunkSize})
			return parent, fmt.Sprintf("rounds=%d", st.Rounds), err
		case kindLevelBFS:
			parent, st, err := spanlevel.SpanningForest(g, spanlevel.Options{NumProcs: p, Model: model, ChunkPolicy: cfg.ChunkPolicy, ChunkSize: cfg.ChunkSize})
			return parent, fmt.Sprintf("levels=%d", st.Levels), err
		case kindSpanUF:
			layout := cfg.Layout
			if ws.forceDirLayout {
				layout = ws.layout
			}
			parent, st, err := spanuf.SpanningForest(g, spanuf.Options{
				NumProcs:    p,
				Compact:     layout == core.LayoutCompact,
				Model:       model,
				Obs:         rec,
				ChunkPolicy: cfg.ChunkPolicy,
				ChunkSize:   cfg.ChunkSize,
			})
			return parent, fmt.Sprintf("hookslost=%d finds=%d compress=%d",
				st.HooksLost, st.Finds, st.CompressionWrites), err
		case kindWS:
			opt := core.Options{
				NumProcs:      p,
				Seed:          cfg.Seed,
				Model:         model,
				Obs:           rec,
				NoSteal:       ws.noSteal,
				NoStub:        ws.noStub,
				StealOne:      ws.stealOne,
				Deg2Eliminate: ws.deg2,
				StubSteps:     ws.stubSteps,
				ChunkPolicy:   cfg.ChunkPolicy,
				ChunkSize:     cfg.ChunkSize,
				Direction:     cfg.Direction,
				Layout:        cfg.Layout,
				Shards:        cfg.Shards,
			}
			if ws.forceChunk {
				opt.ChunkPolicy = ws.chunkPolicy
				opt.ChunkSize = ws.chunkSize
			}
			if ws.forceDirLayout {
				opt.Direction = ws.direction
				opt.Layout = ws.layout
			}
			if ws.forceShards {
				opt.Shards = ws.shards
			}
			if ws.fallbackAtP {
				opt.FallbackThreshold = maxInt(1, p-1)
				opt.Shards = 0 // idle detection requires the unsharded path
			}
			var (
				parent []graph.VID
				st     core.Stats
				err    error
			)
			if cfg.Mode == Modeled {
				parent, st, err = core.LockstepForest(g, opt)
			} else {
				parent, st, err = core.SpanningForest(g, opt)
			}
			if ws.statsOut != nil {
				prev := *ws.statsOut
				*ws.statsOut = st
				ws.statsOut.Steals += prev.Steals
				ws.statsOut.StealAttempts += prev.StealAttempts
				ws.statsOut.ChunkGrow += prev.ChunkGrow
				ws.statsOut.ChunkShrink += prev.ChunkShrink
			}
			extra := fmt.Sprintf("steals=%d imbalance=%.2f", st.Steals, st.MaxLoadImbalance())
			if st.FallbackTriggered {
				extra += " fallback=yes"
			}
			return parent, extra, err
		}
		return nil, "", fmt.Errorf("harness: unknown algorithm kind %d", kind)
	}

	// instrumented reports whether this algorithm kind feeds the
	// observability layer (only those runs produce a meaningful Report).
	instrumented := kind == kindWS || kind == kindSV || kind == kindSVLocks || kind == kindSpanUF
	collect := func(rec *obs.Recorder, elapsed time.Duration, rep int) {
		if rec == nil {
			return
		}
		label := fmt.Sprintf("%s/%v/p=%d", m.algo, g, p)
		meta := map[string]string{
			"algo":  m.algo,
			"graph": g.String(),
			"p":     fmt.Sprint(p),
			"mode":  cfg.Mode.String(),
			"seed":  fmt.Sprint(cfg.Seed),
			"rep":   fmt.Sprint(rep),
		}
		if kind == kindWS || kind == kindSpanUF {
			// Stamp the variant knobs so benchcmp can warn when a baseline
			// and a current artifact measured different policies — the
			// algorithm family alongside direction and layout.
			dir, lay := cfg.Direction, cfg.Layout
			if ws.forceDirLayout {
				dir, lay = ws.direction, ws.layout
			}
			meta["layout"] = lay.String()
			if kind == kindWS {
				meta["alg"] = "workstealing"
				meta["direction"] = dir.String()
				sh := cfg.Shards
				if ws.forceShards {
					sh = ws.shards
				}
				if ws.fallbackAtP {
					sh = 0
				}
				meta["shards"] = fmt.Sprint(maxInt(1, sh))
			} else {
				meta["alg"] = "spanuf" // direction-free: no queues to steer
			}
		}
		cfg.Collector.Collect(label, meta, elapsed.Nanoseconds(), rec)
	}

	if cfg.Mode == Modeled {
		model := smpmodel.New(p)
		var rec *obs.Recorder
		if instrumented {
			rec = cfg.Collector.NewRecorder(p)
		}
		parent, extra, err := runOnce(model, rec)
		if err != nil {
			return m, err
		}
		if cfg.Verify {
			if err := verify.Forest(g, parent); err != nil {
				return m, fmt.Errorf("harness: %s p=%d on %v: %w", m.algo, p, g, err)
			}
		}
		m.time = model.Time(cfg.Machine)
		m.extra = extra
		collect(rec, m.time, 0)
		return m, nil
	}

	// Wall-clock: repeat and keep the minimum. Every repetition gets its
	// own fresh Recorder (a Recorder accumulates for its lifetime, so one
	// recorder across repeats would conflate the runs) and contributes
	// its own same-label report, distinguished by meta "rep" — consumers
	// that want the best repetition take the minimum elapsed_ns over
	// equal labels, which is exactly what cmd/benchcmp does.
	best := time.Duration(0)
	var extra string
	for rep := 0; rep < cfg.Repeats; rep++ {
		var rec *obs.Recorder
		if instrumented {
			rec = cfg.Collector.NewRecorder(p)
		}
		start := time.Now()
		parent, e, err := runOnce(nil, rec)
		elapsed := time.Since(start)
		if err != nil {
			return m, err
		}
		if rep == 0 && cfg.Verify {
			if err := verify.Forest(g, parent); err != nil {
				return m, fmt.Errorf("harness: %s p=%d on %v: %w", m.algo, p, g, err)
			}
		}
		collect(rec, elapsed, rep)
		if best == 0 || elapsed < best {
			best = elapsed
		}
		extra = e
	}
	m.time = best
	m.extra = extra
	return m, nil
}

// parallelKind is the algorithm the Fig. 3 / Fig. 4 experiments run as
// "the parallel algorithm": the paper's work-stealing traversal, or the
// CAS-hook sweep when the CLI substituted it with -alg spanuf.
func parallelKind(cfg Config) algoKind {
	if cfg.SpanUF {
		return kindSpanUF
	}
	return kindWS
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
