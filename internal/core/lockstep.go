package core

import (
	"fmt"

	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/sched"
	"spantree/internal/smpmodel"
	"spantree/internal/xrand"
)

// LockstepForest runs the same two-step algorithm as SpanningForest, but
// drives the p virtual processors deterministically in round-robin
// lockstep on the calling goroutine instead of concurrently: in each
// round every processor either processes one vertex from its queue,
// steals half of a victim's queue, or idles. All randomness comes from
// opt.Seed, so two runs with equal inputs produce identical forests,
// statistics and cost-model counters.
//
// This mode exists for the experiment harness: the reproduction's
// figures are computed from Helman-JáJá cost counters, and lockstep
// execution makes those counters exactly reproducible, whereas the
// concurrent execution's work distribution depends on the Go scheduler.
// The concurrent SpanningForest remains the production entry point and
// the one exercised for correctness under real races.
//
// Sharded runs (Options.Shards > 1) drive their teams shard by shard,
// wave by wave — deterministic by construction, since the teams'
// vertex ranges are disjoint and the stitch pass is sequential.
//
// The fallback detection maps to lockstep as follows: if
// FallbackThreshold > 0 and at least that many processors idle for
// idlePatienceRounds consecutive rounds while the traversal is
// unfinished, the run aborts into the Shiloach-Vishkin completion — the
// same condition the concurrent version detects with sleeping
// processors.
func LockstepForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("core: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	if opt.Obs != nil && opt.Obs.NumWorkers() < opt.NumProcs {
		return nil, Stats{}, fmt.Errorf("core: Obs has %d worker slots, need >= %d",
			opt.Obs.NumWorkers(), opt.NumProcs)
	}
	if opt.Shards > 1 && opt.FallbackThreshold > 0 {
		return nil, Stats{}, errShardsFallback
	}
	o := opt.withDefaults()
	if o.Deg2Eliminate {
		red := graph.EliminateDegree2(g)
		probe0 := o.Model.Probe(0)
		probe0.NonContig(int64(g.NumVertices()))
		probe0.Contig(int64(len(g.Adj)))
		inner := o
		inner.Deg2Eliminate = false
		redParent, stats, err := LockstepForest(red.Reduced, inner)
		if err != nil {
			return nil, stats, err
		}
		stats.Deg2Eliminated = red.NumEliminated()
		parent, err := red.ExpandForest(redParent)
		if err != nil {
			return nil, stats, fmt.Errorf("core: expanding degree-2 reduction: %w", err)
		}
		probe0.NonContig(int64(red.NumEliminated()))
		return parent, stats, nil
	}
	return runLockstep(g, o)
}

// idlePatienceRounds is the lockstep analogue of the concurrent
// version's "sleep for a duration before being counted": a processor
// must idle this many consecutive rounds before it counts toward the
// fallback threshold, filtering the transient idleness of startup and
// wind-down.
const idlePatienceRounds = 4

func runLockstep(g *graph.Graph, o Options) ([]graph.VID, Stats, error) {
	e, err := newEngine(g, o, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	defer e.wd.Close() // one-shot engine: the run owns the watchdog
	return e.runLockstep()
}

// runLockstep is the engine's deterministic driver: the same stub and
// stitch steps as run(), with every wave's teams driven sequentially in
// round-robin lockstep on the calling goroutine.
func (e *engine) runLockstep() ([]graph.VID, Stats, error) {
	o := e.o
	var stats Stats
	stats.VerticesPerProc = make([]int64, o.NumProcs)
	stats.EdgesPerProc = make([]int64, o.NumProcs)
	if len(e.parent) == 0 {
		return e.parent, stats, nil
	}

	// Step 1: stub spanning trees (identical to the concurrent engine).
	var rootRand xrand.Rand
	probe0 := o.Model.Probe(0)
	for si, t := range e.ts {
		e.stubRandInto(&rootRand, o.Seed, si)
		var seeds []graph.VID
		if o.NoStub {
			s := t.lo + graph.VID(rootRand.Intn(t.n))
			t.claimSeq(s, graph.None)
			seeds = []graph.VID{s}
		} else {
			seeds = stubSpanningTree(t, &rootRand, probe0, nil)
		}
		stats.StubSize += len(seeds)
		for i, s := range seeds {
			t.queues[i%t.o.NumProcs].Push(int32(s))
			probe0.NonContig(1)
			e.rec.Trace(0, obs.EvSeed, int64(s), int64(t.tidBase+i%t.o.NumProcs))
		}
	}
	o.Model.AddBarriers(1)
	e.rec.AddBarrierEpisodes(1)
	e.rec.Trace(-1, obs.EvBarrier, 1, 0)

	// Step 2: round-robin lockstep traversal, shard by shard inside each
	// wave (sequential either way on the driving goroutine; the barrier
	// accounting still groups shards into waves, mirroring the
	// concurrent engine's schedule). The watchdog arms around the
	// traversal exactly like the concurrent engine: the driver beats per
	// processed turn, so a wedged drive (a blocking test hook, a stuck
	// syscall) trips the same typed ErrStalled.
	if e.wd != nil {
		e.wd.Arm(e.cancel, e.o.StallBudget)
		defer e.wd.Disarm()
	}
	for _, wave := range e.waves {
		for _, si := range wave {
			lockstepDrive(e.ts[si], &stats)
			if e.cancel.Tripped() {
				break
			}
		}
		o.Model.AddBarriers(1)
		e.rec.AddBarrierEpisodes(1)
		e.rec.Trace(-1, obs.EvBarrier, 2, 0)
		if e.cancel.Tripped() {
			break
		}
	}
	if e.cancel.Tripped() {
		return e.stopOutcome(&stats)
	}
	e.recordSpan()
	for _, t := range e.ts {
		t.normalizeRoots()
	}
	if e.part != nil {
		e.stitchShards(probe0, e.rec.Worker(0))
	}
	e.finishStats(&stats)
	if e.ts[0].abort.Load() {
		stats.FallbackTriggered = true
		svStats, err := e.ts[0].fallback()
		stats.SVStats = svStats
		if err != nil {
			return nil, stats, err
		}
	}
	return e.parent, stats, nil
}

// lockstepDrive runs one team's traversal to completion in round-robin
// lockstep. Local worker tids map onto the global processor slots
// tidBase+tid for the recorder, the cost model, and the RNG streams —
// exactly the mapping the concurrent workers use, so a shards=1 drive
// is byte-identical to the pre-engine driver.
func lockstepDrive(t *traversal, stats *Stats) {
	o := t.o
	p := o.NumProcs
	rngs := make([]*xrand.Rand, p)
	workers := make([]*obs.Worker, p)
	// The driver is single-goroutine, so the hot-path counters can batch
	// in locals for the whole run and flush once before finishStats.
	locals := make([]obs.Local, p)
	for tid := range rngs {
		rngs[tid] = xrand.New(o.Seed).Split(uint64(t.tidBase+tid) + 1)
		workers[tid] = t.rec.Worker(t.tidBase + tid)
	}
	stealBuf := make([]int32, 0, 256)
	// out and the per-tid chunk controllers mirror the concurrent hot
	// path's batching: out is the chunk-local child buffer (the driver is
	// single-goroutine, so one buffer serves every tid), and each tid runs
	// the same sched.Controller as a concurrent worker even though the
	// round-robin driver still pops one vertex per turn for determinism.
	// The chunk is cost-model-only here — remaining[tid] counts down the
	// pops left in the current virtual drain, and each boundary charges
	// the amortized lock pairs of one chunked dequeue plus one batch
	// flush and lets the controller resize from the queue depth and the
	// failed steals charged against that tid. Forest output is therefore
	// chunk-invariant by construction, while the modeled T_M/T_C charges
	// track the adaptive schedule.
	out := make([]int32, 0, 256)
	ctrls := make([]sched.Controller, p)
	remaining := make([]int, p)
	for tid := range ctrls {
		ctrls[tid] = newChunkController(&o)
	}
	idleStreak := make([]int, p)
	seededRoots := 0
	// sinceDirCheck accumulates processed turns toward the next
	// direction-switch evaluation, matching the concurrent driver's
	// one-poll-per-DefaultChunkSize-vertices cadence; round counts and
	// queue lengths are deterministic, so the switch points are too.
	sinceDirCheck := 0
	dirPolls := 0

	// processOne runs the batched process step for one vertex: children
	// accumulate in out, are flushed with one PushBatch, and the progress
	// batch publishes immediately (the single-goroutine driver has no
	// concurrent readers to batch against).
	processOne := func(tid int, v graph.VID, probe *smpmodel.Probe, myQ workQueue) {
		t.wd.Beat(t.tidBase + tid)
		out = out[:0]
		var pend int64
		t.process(tid, v, probe, &out, &locals[tid], &pend)
		if len(out) > 0 {
			myQ.PushBatch(out)
			probe.NonContig(int64(len(out))) // copied child slots
		}
		t.visited.Add(pend)
	}

	// The round loop runs on the calling goroutine, so panic isolation is
	// one recover around the whole loop; curTid attributes the panic to
	// the virtual processor whose turn was executing. The cancel poll is
	// one atomic load per turn — the lockstep analogue of the concurrent
	// worker's chunk-boundary check.
	curTid := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.recoverWorker(curTid, r)
			}
		}()
		for t.visited.Load() < int64(t.n) && !t.abort.Load() && !t.cancel.Tripped() {
			if t.dirOpt && t.phase.Load() == phaseBottomUp {
				// Bottom-up round: every processor scans one fixed sweep
				// quantum (never idle, so the fallback and quiescence
				// bookkeeping skips the round). When the sweep cursor runs
				// past n the tid that notices runs the sweep-end decision;
				// later tids in the same round bail out of buSweepEnd and
				// simply lose their turn.
				for tid := 0; tid < p && t.visited.Load() < int64(t.n) && !t.cancel.Tripped(); tid++ {
					curTid = tid
					if h := o.testHook; h != nil {
						h(tid)
					}
					probe := o.Model.Probe(t.tidBase + tid)
					start := t.buCursor.Add(buChunk) - buChunk
					probe.NonContig(1) // shared sweep-cursor fetch-add
					if start >= int64(t.n) {
						t.buSweepEnd(workers[tid])
						continue
					}
					hi := min(int(start)+buChunk, t.n)
					t.wd.Beat(t.tidBase + tid)
					var pend int64
					stealBuf = t.scanBottomUp(int(start), hi, probe, &locals[tid], &pend, stealBuf[:0])
					if len(stealBuf) > 0 {
						t.queues[tid].PushBatch(stealBuf)
						probe.NonContig(2 + int64(len(stealBuf)))
						t.buClaims.Add(int64(len(stealBuf)))
					}
					t.visited.Add(pend)
					idleStreak[tid] = 0
				}
				stats.LockstepRounds++
				continue
			}
			idleThisRound := 0
			patientIdlers := 0
			for tid := 0; tid < p && t.visited.Load() < int64(t.n) && !t.cancel.Tripped(); tid++ {
				curTid = tid
				if h := o.testHook; h != nil {
					h(tid)
				}
				probe := o.Model.Probe(t.tidBase + tid)
				ow := workers[tid]
				myQ := t.queues[tid]
				if v, ok := myQ.Pop(); ok {
					// Charge the batched hot path's amortized costs: at each
					// virtual chunk boundary, the lock pairs of one chunked
					// dequeue plus one batch flush (the per-vertex offset load
					// is charged inside process, layout-aware). The controller
					// resizes the next virtual drain at the boundary, so the
					// modeled charges follow the adaptive schedule
					// (single-goroutine, hence still deterministic).
					if remaining[tid] == 0 {
						probe.NonContig(4)
						ctrl := &ctrls[tid]
						ctrl.Adapt(myQ.Len(), t.fail.Load(tid), &locals[tid])
						drained := myQ.Len() + 1 // this pop plus what the drain would take
						if drained > ctrl.Chunk() {
							drained = ctrl.Chunk()
						}
						remaining[tid] = drained
						locals[tid].Incr(obs.ChunkDrains)
						locals[tid].Add(obs.DrainedVertices, int64(drained))
						locals[tid].Incr(obs.DrainHistBucket(drained))
					}
					remaining[tid]--
					processOne(tid, graph.VID(v), probe, myQ)
					idleStreak[tid] = 0
					continue
				}
				if idleStreak[tid] == 0 {
					ow.Incr(obs.IdleTransitions)
					ow.Trace(obs.EvIdle, 0, 0)
					// Busy-to-idle ends the current virtual drain, mirroring the
					// concurrent worker's mandatory flush on the same transition.
					remaining[tid] = 0
				}
				if !o.NoSteal && p > 1 {
					ow.Incr(obs.StealAttempts)
					start := rngs[tid].Intn(p)
					stole := false
					for i := 0; i < p; i++ {
						victim := (start + i) % p
						if victim == tid {
							continue
						}
						if t.queues[victim].Len() < t.minSteal {
							continue
						}
						stealBuf = t.queues[victim].StealInto(stealBuf[:0])
						if len(stealBuf) == 0 {
							continue
						}
						ow.Incr(obs.StealSuccesses)
						ow.Add(obs.StolenVertices, int64(len(stealBuf)))
						ow.Trace(obs.EvSteal, int64(victim), int64(len(stealBuf)))
						probe.NonContig(int64(len(stealBuf)) + 2)
						// Process the first stolen vertex in this same turn:
						// merely re-queuing the loot would let the next
						// processor steal it back, livelocking a one-element
						// frontier under round-robin scheduling.
						myQ.PushBatch(stealBuf[1:])
						processOne(tid, graph.VID(stealBuf[0]), probe, myQ)
						stole = true
						break
					}
					if stole {
						idleStreak[tid] = 0
						continue
					}
					ow.Incr(obs.StealFailures)
					// Per-victim charge, as in the concurrent scan: only the
					// workers still hoarding sub-threshold queues shrink.
					for i := 0; i < p; i++ {
						victim := (start + i) % p
						if victim == tid {
							continue
						}
						if l := t.queues[victim].Len(); l > 0 && l < t.minSteal {
							t.fail.Record(victim)
						}
					}
					probe.NonContig(1) // fruitless poll before sleeping
				}
				idleThisRound++
				idleStreak[tid]++
				if idleStreak[tid] >= idlePatienceRounds {
					patientIdlers++
				}
			}
			if t.visited.Load() >= int64(t.n) {
				break
			}
			stats.LockstepRounds++
			if th := o.FallbackThreshold; th > 0 && patientIdlers >= th {
				t.abort.Store(true)
				workers[0].Incr(obs.FallbackTriggers)
				workers[0].Trace(obs.EvFallback, int64(patientIdlers), 0)
				break
			}
			if idleThisRound == p {
				// Quiescence: every queue is empty and nobody processed a
				// vertex this round, so the uncolored set is a union of whole
				// components; seed the next one on a rotating processor.
				if v, ok := t.nextUncolored(o.Model.Probe(t.tidBase)); ok {
					tid := seededRoots % p
					t.claimSeq(v, graph.None)
					seededRoots++
					workers[tid].Incr(obs.SeededComponents)
					workers[tid].Trace(obs.EvComponentSeed, int64(v), 0)
					t.queues[tid].Push(int32(v))
					for i := range idleStreak {
						idleStreak[i] = 0
					}
				}
				// Cursor exhausted means every vertex is colored; the loop
				// condition ends the traversal.
			}
			if t.dirOpt && t.phase.Load() == phaseTopDown {
				sinceDirCheck += p - idleThisRound
				if sinceDirCheck >= DefaultChunkSize {
					sinceDirCheck = 0
					// Rotate the frontier-poll charge across processors so
					// the ~n/DefaultChunkSize checks do not pile their p
					// queue-length reads onto one processor's T_M. The poll
					// count — not the round count — drives the rotation:
					// polls fire every ~DefaultChunkSize/p rounds, so a
					// round-based index would repeat the same residue.
					chk := dirPolls % p
					dirPolls++
					if frontier, ok := t.buShouldSwitch(o.Model.Probe(t.tidBase + chk)); ok {
						t.buEnter(frontier, workers[chk])
					}
				}
			}
		}
	}()
	for tid := range locals {
		workers[tid].Max(obs.ChunkHighWater, int64(ctrls[tid].HighWater()))
		locals[tid].FlushTo(workers[tid])
	}
}
