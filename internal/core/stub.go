package core

import (
	"sync/atomic"

	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/xrand"
)

// stubSpanningTree implements step 1 of the algorithm: a single
// processor "generates a stub spanning tree, that is, a small portion of
// the spanning tree by randomly walking the graph for O(p) steps". The
// vertices claimed by the walk are returned in discovery order; the
// caller distributes them evenly over the processors' queues.
//
// The walk claims every unvisited vertex it steps onto, so the stub is a
// subtree of the final spanning tree (each stub vertex's parent is the
// walk position it was discovered from). The walk may revisit colored
// vertices without effect; it stops early only if it reaches a vertex
// with no neighbors.
//
// Claimed vertices are appended to stub (which may be nil); a pooled
// caller passes a buffer with capacity StubSteps+1 — the walk's maximum
// yield — so the step stays allocation-free.
func stubSpanningTree(t *traversal, r *xrand.Rand, probe *smpmodel.Probe, stub []graph.VID) []graph.VID {
	start := t.lo + graph.VID(r.Intn(t.n))
	t.claimSeq(start, graph.None)
	probe.NonContig(2)
	stub = append(stub, start)
	cur := start
	for step := 0; step < t.o.StubSteps; step++ {
		// Shard traversals (g == nil) walk the intra-shard compact view —
		// its adjacency ids are global, its offsets local — so the stub
		// never leaves the shard; the identical RNG draw sequence keeps
		// the shards=1 walk byte-identical to the wide path.
		var next graph.VID
		if t.g != nil {
			nb := t.g.Neighbors(cur)
			probe.NonContig(1)
			if len(nb) == 0 {
				break
			}
			next = nb[r.Intn(len(nb))]
		} else {
			nb := t.cg.Neighbors32(cur - t.lo)
			probe.NonContig(1)
			if len(nb) == 0 {
				break
			}
			next = graph.VID(nb[r.Intn(len(nb))])
		}
		probe.NonContig(2)
		if atomic.LoadInt32(&t.parent[next]) == graph.None {
			t.claimSeq(next, cur)
			stub = append(stub, next)
		}
		cur = next
	}
	return stub
}
