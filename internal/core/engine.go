package core

// The engine layer: one execution driver behind SpanningForest,
// LockstepForest and the pooled Workspace. An engine owns the shared
// parent array and schedules one traversal (team) per shard; the
// classic single-team run is literally the shards=1 special case of the
// same code path — one shard covering the whole graph, one wave, one
// team of NumProcs workers.
//
// With Shards > 1 the graph is partitioned into contiguous vertex
// ranges (graph.PartitionCSR), each backed by a compact intra-shard
// CSR32 view. NumProcs stays the TOTAL worker budget: when S <= p every
// shard gets a team of ~p/S workers and all teams run concurrently in
// one wave; when S > p, single-worker teams run in ceil(S/p) sequential
// waves of at most p shards. Either way a team's local worker tid maps
// onto the global processor slot tidBase+tid, so one shared recorder
// and one shared cost model serve every team with no slot aliasing
// inside a wave (slot reuse across waves is sequential, with the wave
// join barrier providing the happens-before edge — the model's reading
// is p processors time-slicing over the shards).
//
// Shard teams never contend: their compact views hold only intra-shard
// edges, so claims land in disjoint parent ranges. The edges that cross
// shards are the partition's boundary list, and after every team has
// joined and normalized its roots, the stitch pass — the spanuf
// CAS-hook sweep over the contracted shard-component graph — elects one
// boundary edge per component pair and splices the shard forests
// together with the fallback's reroot-and-point idiom.

import (
	"errors"
	"fmt"

	"spantree/internal/barrier"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/sched"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
	"spantree/internal/spanuf"
	"spantree/internal/xrand"
)

// errShardsFallback rejects the one option combination the stitch pass
// cannot serve: the SV fallback abandons the traversal mid-forest,
// while stitching requires every shard forest to be complete.
var errShardsFallback = errors.New("core: Shards > 1 requires FallbackThreshold == 0 (the stitch pass needs completed shard forests)")

// stubSalt offsets the per-shard stub-walk streams far above the worker
// streams (splits 1..p of the same seed), so no shard's walk shares an
// RNG stream with any worker's victim selection.
const stubSalt = uint64(1) << 32

// engine drives one run: per-shard stub walks, the wave schedule of
// teams, the stitch pass, and stats derivation.
type engine struct {
	g      *graph.Graph
	o      Options // engine-level options (global NumProcs, defaults applied)
	parent []graph.VID
	span   []int64
	part   *graph.Partition // nil for the single-team case
	ts     []*traversal     // one per shard; len 1 when part == nil
	waves  [][]int          // shard indices per concurrent wave
	rec    *obs.Recorder
	cancel *fault.Flag
	// wd is the stuck-run watchdog (nil unless Options.StallBudget > 0).
	// One-shot drivers arm it around their traversal step and close it
	// when the run ends; a Workspace keeps it parked for its lifetime
	// and rearms it per Run.
	wd     *fault.Watchdog
	stitch *spanuf.StitchScratch
}

// newEngine builds the engine for one run of g under o (withDefaults
// already applied). mk, when non-nil, supplies pooled work queues in
// shard-major tid order (the Workspace path).
func newEngine(g *graph.Graph, o Options, mk func(n int) workQueue) (*engine, error) {
	if o.Shards > 1 && o.FallbackThreshold > 0 {
		return nil, errShardsFallback
	}
	// Modeled chaos runs charge injected perturbations into the same
	// model as the run itself (nil-safe on both sides, no-op in default
	// builds): stalls land as idle time on the stalled processor's T_C,
	// steal vetoes as a failed steal's fruitless poll.
	o.Chaos.AttachModel(o.Model)
	n := g.NumVertices()
	S := o.Shards
	if S > n && n > 0 {
		S = n
	}
	if S <= 1 || n == 0 {
		// The single-team case: one traversal covering the whole graph,
		// run through the very same engine loop as a one-shard partition
		// of one wave.
		t, err := newTraversalQ(g, o, mk)
		if err != nil {
			return nil, err
		}
		t.o.Cancel = t.cancel
		e := &engine{
			g: g, o: t.o, parent: t.parent, span: t.span,
			ts: []*traversal{t}, waves: [][]int{{0}},
			rec: t.rec, cancel: t.cancel,
		}
		e.attachWatchdog()
		return e, nil
	}

	part, err := graph.PartitionCSR(g, S, graph.CutPolicyFor(g.Name))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rec := o.Obs
	if rec == nil {
		rec = obs.New(o.NumProcs)
	}
	cancel := o.Cancel
	if cancel == nil {
		cancel = &fault.Flag{}
	}
	parent := make([]graph.VID, n)
	for i := range parent {
		parent[i] = graph.None
	}
	var span []int64
	if o.Model != nil {
		span = make([]int64, n)
	}
	e := &engine{
		g: g, o: o, parent: parent, span: span, part: part,
		rec: rec, cancel: cancel,
		stitch: spanuf.NewStitchScratch(n),
	}
	S = len(part.Shards)
	team, base, waves := shardTeams(S, o.NumProcs)
	e.waves = waves
	e.ts = make([]*traversal, S)
	for s := range e.ts {
		t := e.newShardTraversal(&part.Shards[s], team[s], base[s])
		t.initQueues(mk)
		e.ts[s] = t
	}
	e.attachWatchdog()
	return e, nil
}

// attachWatchdog builds the stuck-run watchdog when a stall budget is
// configured and hands every team a reference. Slots are the global
// processor slots, so wave-sequential teams share them exactly like
// they share recorder slots.
func (e *engine) attachWatchdog() {
	if e.o.StallBudget <= 0 {
		return
	}
	e.wd = fault.NewWatchdog(e.o.NumProcs)
	for _, t := range e.ts {
		t.wd = e.wd
	}
}

// shardTeams splits the global worker budget p over S shards: with
// S <= p, one wave of teams sized p/S (the first p%S teams one larger);
// with S > p, single-worker teams in sequential waves of at most p
// shards. tidBase is each team's first global processor slot; slots
// inside a wave never overlap and every slot is < p.
func shardTeams(S, p int) (team, base []int, waves [][]int) {
	team = make([]int, S)
	base = make([]int, S)
	if S <= p {
		q, r := p/S, p%S
		next := 0
		wave := make([]int, S)
		for s := 0; s < S; s++ {
			team[s] = q
			if s < r {
				team[s]++
			}
			base[s] = next
			next += team[s]
			wave[s] = s
		}
		return team, base, [][]int{wave}
	}
	for s := 0; s < S; s += p {
		hi := min(s+p, S)
		wave := make([]int, 0, hi-s)
		for i := s; i < hi; i++ {
			team[i] = 1
			base[i] = i - s
			wave = append(wave, i)
		}
		waves = append(waves, wave)
	}
	return team, base, waves
}

// newShardTraversal builds the team traversal for one shard: the
// compact intra-shard view as its graph (g stays nil — every hot and
// cold path reads cg, local offsets, global adjacency ids), the shared
// parent/span arrays, and the team's slice [tidBase, tidBase+team) of
// the global processor slots.
func (e *engine) newShardTraversal(sh *graph.Shard, team, base int) *traversal {
	ns := sh.NumVertices()
	so := e.o
	so.NumProcs = team
	so.Cancel = e.cancel
	return &traversal{
		cg:       sh.CSR,
		o:        so,
		n:        ns,
		lo:       sh.Lo,
		tidBase:  base,
		parent:   e.parent,
		span:     e.span,
		queues:   make([]workQueue, team),
		minSteal: minStealLen(team),
		fail:     sched.NewFailSignal(team),
		rec:      e.rec,
		cancel:   e.cancel,
		inj:      e.o.Chaos,
		dirOpt:   e.o.Direction == DirectionAuto && ns >= buMinGraph && len(sh.CSR.Adj) >= buMinAvgDeg*ns,
		buAlpha:  e.o.BottomUpAlpha,
	}
}

// stubRandInto rearms r with shard si's stub-walk stream: the plain
// seed stream for the single-team case (byte-identical to the
// pre-engine driver), a salted split per shard otherwise.
func (e *engine) stubRandInto(r *xrand.Rand, seed uint64, si int) {
	if e.part == nil {
		r.Reseed(seed)
		return
	}
	var base xrand.Rand
	base.Reseed(seed)
	r.ReseedSplit(&base, stubSalt+uint64(si))
}

// run executes both steps of the algorithm: stub walks, the wave
// schedule of work-stealing teams, and (for sharded runs) the stitch.
func (e *engine) run() ([]graph.VID, Stats, error) {
	o := e.o
	var stats Stats
	stats.VerticesPerProc = make([]int64, o.NumProcs)
	stats.EdgesPerProc = make([]int64, o.NumProcs)
	if len(e.parent) == 0 {
		return e.parent, stats, nil
	}

	// Step 1: stub spanning trees, one walk per shard, generated by a
	// single processor (charged to processor 0) and distributed
	// round-robin over the owning team's queues.
	var rootRand xrand.Rand
	probe0 := o.Model.Probe(0)
	for si, t := range e.ts {
		e.stubRandInto(&rootRand, o.Seed, si)
		var seeds []graph.VID
		if o.NoStub {
			s := t.lo + graph.VID(rootRand.Intn(t.n))
			t.claimSeq(s, graph.None)
			seeds = []graph.VID{s}
		} else {
			seeds = stubSpanningTree(t, &rootRand, probe0, nil)
		}
		stats.StubSize += len(seeds)
		for i, s := range seeds {
			t.queues[i%t.o.NumProcs].Push(int32(s))
			probe0.NonContig(1)
			e.rec.Trace(0, obs.EvSeed, int64(s), int64(t.tidBase+i%t.o.NumProcs))
		}
	}
	// One barrier separates the stub step from the traversal step; the
	// traversal itself needs only the per-wave joins (the paper's B = 2
	// for a single wave).
	o.Model.AddBarriers(1)
	e.rec.AddBarrierEpisodes(1)
	e.rec.Trace(-1, obs.EvBarrier, 1, 0)
	if e.cancel.Tripped() {
		// Canceled before the traversal even started (e.g. an already-
		// expired deadline): don't spin up the teams.
		return e.stopOutcome(&stats)
	}

	// Step 2: work-stealing graph traversal, one team per shard. The
	// teams of a wave run concurrently on disjoint global processor
	// slots and join through one barrier episode (the coordinator is the
	// extra participant), which gives the work-stealing path per-worker
	// barrier_waits just like the SV family. The stuck-run watchdog is
	// armed only around this step — the stub walk above runs on the
	// calling goroutine and never beats.
	if e.wd != nil {
		e.wd.Arm(e.cancel, e.o.StallBudget)
		defer e.wd.Disarm()
	}
	for _, wave := range e.waves {
		total := 0
		for _, si := range wave {
			total += e.ts[si].o.NumProcs
		}
		bar := barrier.NewSense(total + 1)
		bar.Observe(e.rec)
		slot := 0
		for _, si := range wave {
			t := e.ts[si]
			for tid := 0; tid < t.o.NumProcs; tid++ {
				go func(t *traversal, tid, slot int) {
					// Every worker reaches the join barrier whatever happens in
					// its body: a panic is isolated here (recorded, the run's flag
					// tripped so the teammates drain at their next poll) and the
					// coordinator below never waits on a dead goroutine.
					defer bar.Wait(slot)
					defer func() {
						if r := recover(); r != nil {
							t.recoverWorker(tid, r)
						}
					}()
					t.worker(tid)
				}(t, tid, slot)
				slot++
			}
		}
		bar.Wait(total) // the coordinator is the extra participant
		o.Model.AddBarriers(1)
		if e.cancel.Tripped() {
			break
		}
	}
	if e.cancel.Tripped() {
		return e.stopOutcome(&stats)
	}
	e.recordSpan()
	for _, t := range e.ts {
		t.normalizeRoots()
	}
	if e.part != nil {
		e.stitchShards(probe0, e.rec.Worker(0))
	}
	e.finishStats(&stats)

	if e.ts[0].abort.Load() {
		// Pathological case detected (single-team only: Shards > 1
		// rejects FallbackThreshold): finish with Shiloach-Vishkin over
		// the contracted graph.
		stats.FallbackTriggered = true
		svStats, err := e.ts[0].fallback()
		stats.SVStats = svStats
		if err != nil {
			return nil, stats, err
		}
	}
	return e.parent, stats, nil
}

// stitchShards joins the per-shard forests through the boundary edges:
// the spanuf CAS-hook sweep over the contracted shard-component graph,
// run by the coordinator after the teams joined and roots were
// normalized. Each winning hook is applied on the spot with the
// fallback's reroot-and-point idiom, keeping parent[] and the
// union-find merging in lockstep. The obs counters land on slot 0 (the
// coordinator's), sequenced after the workers by the wave joins.
func (e *engine) stitchShards(probe *smpmodel.Probe, ow *obs.Worker) {
	attach := func(u, v graph.VID) {
		rerootAt(e.parent, u)
		e.parent[u] = v
		probe.NonContig(2) // the splice's pointer writes on parent[]
	}
	var hooks int
	if e.rec.Total(obs.SeededComponents) == 0 {
		// No team ever reseeded: every shard forest is a single tree, so
		// a vertex's component label is its shard index and the stitch
		// needs neither parent walks nor the O(n) label rearm. This is
		// the common case for well-connected families (torus, mesh,
		// random) and the one that makes sharding pay: the label walks
		// are the stitch's only super-boundary cost. A stale external
		// recorder can only push us onto the general path — never the
		// other way — so the dispatch is conservative.
		hooks = e.stitch.StitchRooted(len(e.ts), e.shardIndex, e.part.Boundary, probe, attach)
	} else {
		hooks = e.stitch.Stitch(e.parent, e.part.Boundary, probe, attach)
	}
	ow.Add(obs.ShardRuns, int64(len(e.ts)))
	ow.Add(obs.BoundaryEdges, int64(len(e.part.Boundary)))
	ow.Add(obs.StitchHooks, int64(hooks))
	ow.Trace(obs.EvStitch, int64(len(e.part.Boundary)), int64(hooks))
}

// shardIndex maps a vertex to the index of the shard whose contiguous
// range holds it, by binary search over the partition's cut points.
func (e *engine) shardIndex(v graph.VID) int32 {
	sh := e.part.Shards
	lo, hi := 0, len(sh)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if v >= sh[mid].Lo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// recordSpan folds the per-shard dependency spans into the cost model:
// teams of one wave run concurrently (the wave's span is the max over
// its shards), sequential waves add.
func (e *engine) recordSpan() {
	if e.span == nil {
		return
	}
	for _, wave := range e.waves {
		var max int64
		for _, si := range wave {
			if s := e.ts[si].spanMax(); s > max {
				max = s
			}
		}
		e.o.Model.AddSpanNC(max)
	}
}

// stopOutcome resolves a run whose stop flag tripped. Context stops
// return the typed error (fault.ErrCanceled / fault.ErrDeadline) with
// the partial Stats; an isolated worker panic degrades to the
// sequential BFS so the caller still receives a valid forest, with the
// PanicError surfaced through Stats.Panic. The partially-written
// parallel parent array is abandoned, never repaired in place.
func (e *engine) stopOutcome(stats *Stats) ([]graph.VID, Stats, error) {
	if e.cancel.Cause() == fault.CauseStalled {
		e.rec.Worker(0).Incr(obs.StallTrips)
	}
	e.finishStats(stats)
	if e.cancel.Cause() == fault.CausePanicked {
		stats.Panic = e.cancel.Panic()
		stats.DegradedToSeq = true
		return spanseq.BFS(e.g, e.o.Model.Probe(0)), *stats, nil
	}
	return nil, *stats, e.cancel.Err()
}

// finishStats records the queues' high-water marks into the recorder
// and derives the public Stats values from the recorder's snapshot —
// the Stats struct is a view over the unified observability layer.
func (e *engine) finishStats(stats *Stats) {
	for _, t := range e.ts {
		for i, q := range t.queues {
			e.rec.Worker(t.tidBase+i).Max(obs.QueueHighWater, int64(q.HighWater()))
		}
	}
	snap := e.rec.Snapshot()
	stats.Steals = snap.Totals.StealSuccesses
	stats.StealAttempts = snap.Totals.StealAttempts
	stats.ChunkGrow = snap.Totals.ChunkGrow
	stats.ChunkShrink = snap.Totals.ChunkShrink
	stats.StolenVertices = snap.Totals.StolenVertices
	stats.FailedClaims = snap.Totals.FailedClaims
	stats.CursorRoots = snap.Totals.SeededComponents
	for i := 0; i < e.o.NumProcs && i < len(snap.Workers); i++ {
		stats.VerticesPerProc[i] = snap.Workers[i].VerticesClaimed
		stats.EdgesPerProc[i] = snap.Workers[i].EdgesScanned
	}
}

// finishStatsPooled is finishStats for pooled runs: the same
// derivation, but through Recorder.Total and cached per-slot handles
// instead of a Snapshot, whose slice-of-workers view allocates on every
// call.
func (e *engine) finishStatsPooled(stats *Stats, slotOW []*obs.Worker) {
	for _, t := range e.ts {
		for i, q := range t.queues {
			slotOW[t.tidBase+i].Max(obs.QueueHighWater, int64(q.HighWater()))
		}
	}
	stats.Steals = e.rec.Total(obs.StealSuccesses)
	stats.StealAttempts = e.rec.Total(obs.StealAttempts)
	stats.ChunkGrow = e.rec.Total(obs.ChunkGrow)
	stats.ChunkShrink = e.rec.Total(obs.ChunkShrink)
	stats.StolenVertices = e.rec.Total(obs.StolenVertices)
	stats.FailedClaims = e.rec.Total(obs.FailedClaims)
	stats.CursorRoots = e.rec.Total(obs.SeededComponents)
	for i := range slotOW {
		stats.VerticesPerProc[i] = slotOW[i].Get(obs.VerticesClaimed)
		stats.EdgesPerProc[i] = slotOW[i].Get(obs.EdgesScanned)
	}
}

// rearm resets every run-scoped field of the engine's traversals for
// the next pooled Run: parent sentinels, cursors, phases, the failed-
// steal signals, and the per-run seed. The recorder reset is the
// caller's (it is engine-global, one per workspace).
func (e *engine) rearm(seed uint64) {
	for i := range e.parent {
		e.parent[i] = graph.None
	}
	e.o.Seed = seed
	for _, t := range e.ts {
		t.o.Seed = seed
		t.fail.Reset()
		t.visited.Store(0)
		t.cursor.Store(0)
		t.sleepers.Store(0)
		t.abort.Store(false)
		t.phase.Store(phaseTopDown)
		t.buCursor.Store(0)
		t.buClaims.Store(0)
	}
}
