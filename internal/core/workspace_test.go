package core

import (
	"errors"
	"runtime"
	"testing"

	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

func TestWorkspaceAllShapes(t *testing.T) {
	for _, g := range shapes() {
		for _, p := range []int{1, 2, 4} {
			w, err := NewWorkspace(g, Options{NumProcs: p}, WorkspaceOptions{})
			if err != nil {
				t.Fatalf("%v p=%d: NewWorkspace: %v", g, p, err)
			}
			wantComps := graph.NumComponents(g)
			// Several runs per workspace: reuse must not corrupt state.
			for _, seed := range []uint64{1, 42, 42, 7} {
				parent, st, err := w.Run(seed)
				if err != nil {
					t.Fatalf("%v p=%d seed=%d: %v", g, p, seed, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%v p=%d seed=%d: %v", g, p, seed, err)
				}
				roots := 0
				for _, pv := range parent {
					if pv == graph.None {
						roots++
					}
				}
				if roots != wantComps {
					t.Fatalf("%v p=%d seed=%d: %d roots, want %d", g, p, seed, roots, wantComps)
				}
				if g.NumVertices() > 0 && st.StubSize == 0 {
					t.Fatalf("%v p=%d: empty stub", g, p)
				}
			}
			w.Close()
		}
	}
}

// TestWorkspaceMatchesOneShot pins the pooled path to the one-shot path:
// at p=1 both are deterministic, so the forests must be byte-identical
// run after run; at p>1 the pooled run must still be a valid forest with
// the same component structure and stub (checked in TestWorkspaceAllShapes).
func TestWorkspaceMatchesOneShot(t *testing.T) {
	for _, g := range shapes() {
		if g.NumVertices() == 0 {
			continue
		}
		fresh, freshStats, err := SpanningForest(g, Options{NumProcs: 1, Seed: 99})
		if err != nil {
			t.Fatalf("%v: one-shot: %v", g, err)
		}
		w, err := NewWorkspace(g, Options{NumProcs: 1}, WorkspaceOptions{})
		if err != nil {
			t.Fatalf("%v: NewWorkspace: %v", g, err)
		}
		for run := 0; run < 3; run++ {
			pooled, st, err := w.Run(99)
			if err != nil {
				t.Fatalf("%v run %d: %v", g, run, err)
			}
			for v := range fresh {
				if pooled[v] != fresh[v] {
					t.Fatalf("%v run %d: parent[%d] = %d, one-shot %d", g, run, v, pooled[v], fresh[v])
				}
			}
			if st.StubSize != freshStats.StubSize {
				t.Fatalf("%v run %d: stub %d, one-shot %d", g, run, st.StubSize, freshStats.StubSize)
			}
		}
		w.Close()
	}
}

// TestWorkspaceZeroAlloc is the tentpole guarantee: a warmed workspace
// runs the full two-step algorithm without a single steady-state heap
// allocation.
func TestWorkspaceZeroAlloc(t *testing.T) {
	for _, p := range []int{1, 4} {
		g := gen.Torus2D(32, 32)
		w, err := NewWorkspace(g, Options{NumProcs: p}, WorkspaceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Warm: first runs pay one-time costs (per-goroutine sleep timers).
		for i := 0; i < 3; i++ {
			if _, _, err := w.Run(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, _, err := w.Run(42); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("p=%d: AllocsPerRun = %v, want 0", p, avg)
		}
		w.Close()
	}
}

// TestWorkspaceReusableAfterCancel: a run stopped by its flag leaves the
// workspace fully functional, and the flag-reset contract (caller resets
// before re-arming) restores normal completion.
func TestWorkspaceReusableAfterCancel(t *testing.T) {
	g := gen.RandomConnected(300, 600, 3)
	w, err := NewWorkspace(g, Options{NumProcs: 2}, WorkspaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Flag().Trip(fault.CauseCanceled)
	if _, _, err := w.Run(1); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("tripped run: err = %v, want ErrCanceled", err)
	}
	// Without a reset the flag stays tripped.
	if _, _, err := w.Run(2); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("still-tripped run: err = %v, want ErrCanceled", err)
	}
	w.Flag().Reset()
	parent, _, err := w.Run(3)
	if err != nil {
		t.Fatalf("after reset: %v", err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// TestWorkspaceReusableAfterPanic: an isolated worker panic degrades the
// run to the sequential path and the parked team survives for the next
// request.
func TestWorkspaceReusableAfterPanic(t *testing.T) {
	g := gen.RandomConnected(400, 800, 5)
	w, err := NewWorkspace(g, Options{NumProcs: 2}, WorkspaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fired := false
	w.e.ts[0].o.testHook = func(tid int) {
		if tid == 1 && !fired {
			fired = true
			panic("injected")
		}
	}
	parent, st, err := w.Run(1)
	if err != nil {
		t.Fatalf("panic run: err = %v", err)
	}
	if !st.DegradedToSeq || st.Panic == nil {
		t.Fatalf("panic run: DegradedToSeq=%v Panic=%v", st.DegradedToSeq, st.Panic)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("degraded forest: %v", err)
	}
	w.e.ts[0].o.testHook = nil
	w.Flag().Reset()
	parent, st, err = w.Run(2)
	if err != nil || st.DegradedToSeq {
		t.Fatalf("after panic: err=%v degraded=%v", err, st.DegradedToSeq)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after panic: %v", err)
	}
}

// TestWorkspaceTeamDoesNotGrow: the parked team is created once — the
// goroutine count is flat across requests, and Close releases it.
func TestWorkspaceTeamDoesNotGrow(t *testing.T) {
	g := gen.Torus2D(16, 16)
	before := runtime.NumGoroutine()
	w, err := NewWorkspace(g, Options{NumProcs: 4}, WorkspaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Run(1); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, _, err := w.Run(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Fatalf("goroutines grew with requests: %d -> %d", base, after)
	}
	w.Close()
	// Close joins the team synchronously, so the count returns to the
	// pre-construction level (give the runtime a moment for exits that
	// raced the WaitGroup).
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after Close: %d -> %d", before, after)
	}
	if _, _, err := w.Run(1); !errors.Is(err, ErrWorkspaceClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrWorkspaceClosed", err)
	}
}

func TestWorkspaceRejectsUnsupportedOptions(t *testing.T) {
	g := gen.Chain(10)
	bad := []Options{
		{NumProcs: 0},
		{NumProcs: 1, StealOne: true},
		{NumProcs: 1, Deg2Eliminate: true},
		{NumProcs: 1, Cancel: &fault.Flag{}},
	}
	for i, o := range bad {
		if _, err := NewWorkspace(g, o, WorkspaceOptions{}); err == nil {
			t.Errorf("case %d: NewWorkspace accepted unsupported options", i)
		}
	}
}
