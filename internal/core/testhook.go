package core

// WithTestHook returns a copy of o with the chunk-boundary test hook
// installed: h runs at every worker chunk boundary (and every lockstep
// turn), which is how test suites outside this package inject cancels
// and panics at exact points of the schedule. The hook is deliberately
// not a public Options field — production callers have no business in
// the hot loop — but the function ships in the main build so the public
// API's robustness tests can drive the same machinery end to end.
func WithTestHook(o Options, h func(tid int)) Options {
	o.testHook = h
	return o
}
