package core

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

// drivers runs both execution modes under the same options.
func drivers() map[string]func(*graph.Graph, Options) ([]graph.VID, Stats, error) {
	return map[string]func(*graph.Graph, Options) ([]graph.VID, Stats, error){
		"concurrent": SpanningForest,
		"lockstep":   LockstepForest,
	}
}

func shapes() []*graph.Graph {
	return []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2), gen.Chain(100),
		gen.Star(64), gen.Cycle(40), gen.Complete(16),
		gen.Torus2D(8, 8), gen.Random(200, 300, 1),
		gen.RandomConnected(150, 250, 2),
		gen.AD3(120, 3), gen.GeoHier(200, gen.DefaultGeoHierParams(), 4),
		graph.Union(gen.Chain(10), gen.Star(8), gen.Cycle(7), gen.Random(30, 45, 5)),
		graph.RandomRelabel(gen.Torus2D(8, 8), 6),
		gen.BinaryTree(63), gen.Caterpillar(41),
	}
}

func TestBothDriversAllShapes(t *testing.T) {
	for name, run := range drivers() {
		for _, g := range shapes() {
			for _, p := range []int{1, 2, 4, 7} {
				parent, st, err := run(g, Options{NumProcs: p, Seed: 42})
				if err != nil {
					t.Fatalf("%s %v p=%d: %v", name, g, p, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%s %v p=%d: %v", name, g, p, err)
				}
				// One root per component, found via quiescence seeding.
				wantComps := graph.NumComponents(g)
				roots := 0
				for _, pv := range parent {
					if pv == graph.None {
						roots++
					}
				}
				if roots != wantComps {
					t.Fatalf("%s %v p=%d: %d roots, want %d", name, g, p, roots, wantComps)
				}
				if g.NumVertices() > 0 && st.StubSize == 0 {
					t.Fatalf("%s %v: empty stub", name, g)
				}
			}
		}
	}
}

func TestProperty(t *testing.T) {
	for name, run := range drivers() {
		f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
			n := int(nRaw%250) + 1
			m := int(mRaw % 500)
			p := int(pRaw%6) + 1
			g := gen.Random(n, m, seed)
			parent, _, err := run(g, Options{NumProcs: p, Seed: seed ^ 0xBEEF})
			return err == nil && verify.Forest(g, parent) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestOptionCombinations(t *testing.T) {
	combos := []Options{
		{NoSteal: true},
		{NoStub: true},
		{StealOne: true},
		{Deg2Eliminate: true},
		{FallbackThreshold: 1},
		{FallbackThreshold: 2, Deg2Eliminate: true},
		{NoSteal: true, NoStub: true},
		{StealOne: true, Deg2Eliminate: true},
		{StubSteps: 1},
		{StubSteps: 1000},
	}
	for name, run := range drivers() {
		for _, g := range shapes() {
			for i, base := range combos {
				opt := base
				opt.NumProcs = 3
				opt.Seed = uint64(i) + 9
				parent, _, err := run(g, opt)
				if err != nil {
					t.Fatalf("%s %v combo %d: %v", name, g, i, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%s %v combo %d: %v", name, g, i, err)
				}
			}
		}
	}
}

func TestLockstepDeterminism(t *testing.T) {
	g := gen.Random(500, 800, 7)
	run := func() ([]graph.VID, Stats, *smpmodel.Model) {
		model := smpmodel.New(4)
		parent, st, err := LockstepForest(g, Options{NumProcs: 4, Seed: 11, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return parent, st, model
	}
	p1, s1, m1 := run()
	p2, s2, m2 := run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("parent[%d] differs between identical lockstep runs", i)
		}
	}
	if s1.Steals != s2.Steals || s1.LockstepRounds != s2.LockstepRounds {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if m1.Time(smpmodel.E4500()) != m2.Time(smpmodel.E4500()) {
		t.Fatal("modeled time differs between identical lockstep runs")
	}
	for tid := 0; tid < 4; tid++ {
		if m1.Proc(tid) != m2.Proc(tid) {
			t.Fatalf("proc %d counters differ", tid)
		}
	}
}

func TestStatsInvariants(t *testing.T) {
	g := gen.RandomConnected(2000, 3000, 3)
	for name, run := range drivers() {
		parent, st, err := run(g, Options{NumProcs: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Forest(g, parent); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var processed int64
		for _, v := range st.VerticesPerProc {
			processed += v
		}
		// Every processed vertex was claimed first, and a connected run
		// terminates once all n are claimed, so processed <= n.
		if processed > int64(g.NumVertices()) {
			t.Fatalf("%s: processed %d > n", name, processed)
		}
		if st.StolenVertices < st.Steals {
			t.Fatalf("%s: %d steals moved %d vertices", name, st.Steals, st.StolenVertices)
		}
		if st.CursorRoots != 0 {
			t.Fatalf("%s: %d cursor roots on a connected graph", name, st.CursorRoots)
		}
		if st.MaxLoadImbalance() < 1.0 {
			t.Fatalf("%s: imbalance %f < 1", name, st.MaxLoadImbalance())
		}
	}
}

func TestCursorRootsOnDisconnected(t *testing.T) {
	g := graph.Union(gen.Chain(50), gen.Chain(50), gen.Chain(50), gen.Star(30))
	for name, run := range drivers() {
		parent, st, err := run(g, Options{NumProcs: 3, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Forest(g, parent); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The stub covers one component; the other three come from the
		// quiescence cursor.
		if st.CursorRoots != 3 {
			t.Fatalf("%s: cursor roots = %d, want 3", name, st.CursorRoots)
		}
	}
}

func TestFallbackTriggersOnChain(t *testing.T) {
	g := gen.Chain(1 << 14)
	for name, run := range drivers() {
		parent, st, err := run(g, Options{NumProcs: 6, Seed: 3, FallbackThreshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Forest(g, parent); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !st.FallbackTriggered {
			t.Fatalf("%s: fallback did not trigger on the chain", name)
		}
		if st.SVStats.Grafts == 0 {
			t.Fatalf("%s: fallback ran but grafted nothing", name)
		}
	}
}

func TestFallbackNeverTriggersOnDenseGraph(t *testing.T) {
	// The paper: "in practical terms this mechanism will almost never be
	// triggered"; a dense random graph keeps everyone busy.
	g := gen.RandomConnected(5000, 15000, 4)
	for name, run := range drivers() {
		_, st, err := run(g, Options{NumProcs: 4, Seed: 4, FallbackThreshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		if st.FallbackTriggered {
			t.Fatalf("%s: spurious fallback on a dense graph", name)
		}
	}
}

func TestDeg2Elimination(t *testing.T) {
	for name, run := range drivers() {
		for _, g := range []*graph.Graph{gen.Chain(500), gen.Cycle(400), gen.Caterpillar(301)} {
			parent, st, err := run(g, Options{NumProcs: 3, Seed: 8, Deg2Eliminate: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s %v: %v", name, g, err)
			}
			if st.Deg2Eliminated == 0 {
				t.Fatalf("%s %v: elimination removed nothing", name, g)
			}
		}
	}
}

func TestNoStealLoadImbalance(t *testing.T) {
	// Without stealing, the stub walk's clustered seeds leave most work
	// on few processors (the paper's Fig. 2 scenario): imbalance must be
	// clearly worse than with stealing. Lockstep mode gives the
	// deterministic comparison.
	g := gen.Torus2D(64, 64)
	_, with, err := LockstepForest(g, Options{NumProcs: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, without, err := LockstepForest(g, Options{NumProcs: 8, Seed: 5, NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.MaxLoadImbalance() < with.MaxLoadImbalance() {
		t.Fatalf("stealing imbalance %.2f, no-steal %.2f: stealing should balance",
			with.MaxLoadImbalance(), without.MaxLoadImbalance())
	}
	if with.Steals == 0 && without.MaxLoadImbalance() > 2 {
		t.Log("note: no steals were needed despite imbalance headroom")
	}
}

func TestSpanRecorded(t *testing.T) {
	// The chain's dependency span must scale with n; the star's must not.
	chainModel := smpmodel.New(4)
	if _, _, err := LockstepForest(gen.Chain(2000), Options{NumProcs: 4, Seed: 1, Model: chainModel}); err != nil {
		t.Fatal(err)
	}
	starModel := smpmodel.New(4)
	if _, _, err := LockstepForest(gen.Star(2000), Options{NumProcs: 4, Seed: 1, Model: starModel}); err != nil {
		t.Fatal(err)
	}
	if chainModel.SpanNC() < 1000 {
		t.Fatalf("chain span %d too small", chainModel.SpanNC())
	}
	if starModel.SpanNC() >= chainModel.SpanNC() {
		t.Fatalf("star span %d >= chain span %d", starModel.SpanNC(), chainModel.SpanNC())
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, _, err := SpanningForest(gen.Chain(3), Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, _, err := LockstepForest(gen.Chain(3), Options{NumProcs: -1}); err == nil {
		t.Fatal("negative p accepted")
	}
}

func TestFailedClaimsObservedUnderContention(t *testing.T) {
	// On a dense graph with many processors the paper observed a handful
	// of multiply-colored vertices; here those surface as failed claim
	// CASes. We only assert the counter is consistent (>= 0 and not
	// absurd), since contention depends on scheduling.
	g := gen.Complete(200)
	_, st, err := SpanningForest(g, Options{NumProcs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedClaims < 0 || st.FailedClaims > int64(g.NumVertices())*8 {
		t.Fatalf("implausible FailedClaims %d", st.FailedClaims)
	}
}
