package core

import (
	"errors"
	"testing"

	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

// fig4Families builds small instances of the ten Fig. 4 graph families —
// the same shapes the harness measures, scaled down for test time.
func fig4Families() map[string]*graph.Graph {
	n := 1 << 10
	s := 32
	return map[string]*graph.Graph{
		"torus":        gen.Torus2D(s, s),
		"torus-random": graph.RandomRelabel(gen.Torus2D(s, s), 0xA5A5),
		"random-nlogn": gen.Random(n, n*10, 7),
		"mesh2d":       gen.Mesh2D(s, s, 0.60, 7),
		"mesh3d":       gen.Mesh3D(10, 10, 10, 0.40, 7),
		"ad3":          gen.AD3(n, 7),
		"geo-flat":     gen.GeoFlat(n, gen.DefaultGeoFlatParams(), 7),
		"geo-hier":     gen.GeoHier(n, gen.DefaultGeoHierParams(), 7),
		"chain":        gen.Chain(n),
		"chain-random": graph.RandomRelabel(gen.Chain(n), 0x5A5A),
	}
}

// TestShardedForestAllFamilies is the sharded-execution property test:
// on every Fig. 4 family, for shard counts spanning the S <= p and
// S > p wave regimes (including a count that does not divide n), the
// stitched forest must verify and carry exactly one root per component.
// The deterministic lockstep driver keeps failures reproducible.
func TestShardedForestAllFamilies(t *testing.T) {
	for name, g := range fig4Families() {
		wantComps := graph.NumComponents(g)
		for _, sh := range []int{1, 2, 4, 7} {
			for _, p := range []int{1, 4} {
				parent, _, err := LockstepForest(g, Options{
					NumProcs: p, Seed: 11, Shards: sh, Model: smpmodel.New(p),
				})
				if err != nil {
					t.Fatalf("%s shards=%d p=%d: %v", name, sh, p, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%s shards=%d p=%d: %v", name, sh, p, err)
				}
				roots := 0
				for _, pv := range parent {
					if pv == graph.None {
						roots++
					}
				}
				if roots != wantComps {
					t.Fatalf("%s shards=%d p=%d: %d roots, want %d",
						name, sh, p, roots, wantComps)
				}
			}
		}
	}
}

// TestShardsOneIsSingleTeam pins the engine's shards=1 special case to
// the unsharded path: at p=1 both are deterministic, so Shards 0 and 1
// must produce byte-identical forests (they are literally the same code
// path — one shard covering the whole graph).
func TestShardsOneIsSingleTeam(t *testing.T) {
	for name, g := range fig4Families() {
		base, _, err := LockstepForest(g, Options{NumProcs: 1, Seed: 5, Model: smpmodel.New(1)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		one, _, err := LockstepForest(g, Options{NumProcs: 1, Seed: 5, Shards: 1, Model: smpmodel.New(1)})
		if err != nil {
			t.Fatalf("%s shards=1: %v", name, err)
		}
		for v := range base {
			if one[v] != base[v] {
				t.Fatalf("%s: parent[%d] = %d with shards=1, %d unsharded", name, v, one[v], base[v])
			}
		}
	}
}

// TestShardedConcurrent exercises the concurrent engine (real
// goroutines, real races under -race) across both wave regimes and a
// graph whose shard views fragment into many components, which drives
// the quiescence reseed path and the stitch's label-walk slow path.
func TestShardedConcurrent(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"torus":    gen.Torus2D(32, 32),
		"geo-hier": gen.GeoHier(1<<10, gen.DefaultGeoHierParams(), 7),
	}
	for name, g := range graphs {
		wantComps := graph.NumComponents(g)
		for _, sh := range []int{2, 4, 7} {
			for _, p := range []int{2, 4} {
				for seed := uint64(0); seed < 3; seed++ {
					parent, _, err := SpanningForest(g, Options{NumProcs: p, Seed: seed, Shards: sh})
					if err != nil {
						t.Fatalf("%s shards=%d p=%d seed=%d: %v", name, sh, p, seed, err)
					}
					if err := verify.Forest(g, parent); err != nil {
						t.Fatalf("%s shards=%d p=%d seed=%d: %v", name, sh, p, seed, err)
					}
					roots := 0
					for _, pv := range parent {
						if pv == graph.None {
							roots++
						}
					}
					if roots != wantComps {
						t.Fatalf("%s shards=%d p=%d seed=%d: %d roots, want %d",
							name, sh, p, seed, roots, wantComps)
					}
				}
			}
		}
	}
}

// TestShardsRejectFallback pins the one rejected option combination:
// the SV fallback abandons the traversal mid-forest, which the stitch
// cannot serve.
func TestShardsRejectFallback(t *testing.T) {
	g := gen.Torus2D(16, 16)
	if _, _, err := SpanningForest(g, Options{NumProcs: 2, Shards: 2, FallbackThreshold: 1}); err == nil {
		t.Fatal("SpanningForest accepted Shards > 1 with FallbackThreshold > 0")
	}
	if _, _, err := LockstepForest(g, Options{NumProcs: 2, Shards: 2, FallbackThreshold: 1, Model: smpmodel.New(2)}); err == nil {
		t.Fatal("LockstepForest accepted Shards > 1 with FallbackThreshold > 0")
	}
}

// TestShardedWorkspaceReuseAfterCancel: tripping the flag with shard
// teams mid-flight abandons the run with the typed error, and after the
// caller's Reset the same workspace — partition, shard views, stitch
// scratch and all — completes cleanly.
func TestShardedWorkspaceReuseAfterCancel(t *testing.T) {
	g := gen.Torus2D(32, 32)
	w, err := NewWorkspace(g, Options{NumProcs: 2, Shards: 4}, WorkspaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Flag().Trip(fault.CauseCanceled)
	if _, _, err := w.Run(1); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("tripped run: err = %v, want ErrCanceled", err)
	}
	w.Flag().Reset()
	parent, _, err := w.Run(2)
	if err != nil {
		t.Fatalf("after reset: %v", err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// TestShardedWorkspaceReuseAfterPanic: a worker panic inside a shard
// team degrades the run to the sequential BFS (the half-stitched
// parallel forest is abandoned, never repaired), and the parked teams
// survive for a clean sharded run right after.
func TestShardedWorkspaceReuseAfterPanic(t *testing.T) {
	g := gen.Torus2D(32, 32)
	w, err := NewWorkspace(g, Options{NumProcs: 2, Shards: 2}, WorkspaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(w.e.ts) != 2 {
		t.Fatalf("%d teams, want one per shard", len(w.e.ts))
	}
	fired := false
	// Inject into the second shard's team so the panic lands with the
	// other shard's traversal genuinely mid-flight.
	w.e.ts[1].o.testHook = func(tid int) {
		if !fired {
			fired = true
			panic("injected")
		}
	}
	parent, st, err := w.Run(1)
	if err != nil {
		t.Fatalf("panic run: err = %v", err)
	}
	if !st.DegradedToSeq || st.Panic == nil {
		t.Fatalf("panic run: DegradedToSeq=%v Panic=%v", st.DegradedToSeq, st.Panic)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("degraded forest: %v", err)
	}
	w.e.ts[1].o.testHook = nil
	w.Flag().Reset()
	parent, st, err = w.Run(2)
	if err != nil || st.DegradedToSeq {
		t.Fatalf("after panic: err=%v degraded=%v", err, st.DegradedToSeq)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after panic: %v", err)
	}
}

// TestShardedWorkspace extends the pooled-path guarantees to sharded
// runs: valid forests across reuse, and zero steady-state allocations
// once warmed — the partition, the shard views and the stitch scratch
// are all construction-time state.
func TestShardedWorkspace(t *testing.T) {
	g := gen.Torus2D(32, 32)
	for _, sh := range []int{2, 4} {
		for _, p := range []int{1, 4} {
			w, err := NewWorkspace(g, Options{NumProcs: p, Shards: sh}, WorkspaceOptions{})
			if err != nil {
				t.Fatalf("shards=%d p=%d: %v", sh, p, err)
			}
			for i := 0; i < 3; i++ {
				parent, _, err := w.Run(uint64(i))
				if err != nil {
					t.Fatalf("shards=%d p=%d run %d: %v", sh, p, i, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("shards=%d p=%d run %d: %v", sh, p, i, err)
				}
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, _, err := w.Run(42); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("shards=%d p=%d: AllocsPerRun = %v, want 0", sh, p, avg)
			}
			w.Close()
		}
	}
}
