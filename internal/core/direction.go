package core

// Direction-optimizing traversal. The work-stealing drain is a pure
// top-down push: each popped vertex streams its adjacency and CASes
// unclaimed neighbors, paying a non-contiguous queue write per claim.
// When the live frontier (queued, unprocessed vertices) is a large
// fraction of what is left unclaimed, most of those adjacency probes
// land on already-claimed vertices and the queue traffic dominates. At
// that point workers flip to a bottom-up sweep: stream the parent array
// in vertex order, and for each still-unclaimed vertex scan its
// neighbors for any claimed parent — one CAS per vertex claimed, no
// per-edge queue writes, and the parent-array stream is contiguous
// (charged as smpmodel.BottomUpScans). Claimed vertices are still
// pushed so the claimed-implies-queued invariant — and with it the
// quiescence protocol — is untouched; a sweep that claims too little
// flips back to top-down. This is the classic direction-optimizing
// (top-down / bottom-up) switch fused into the chunked drain, applied
// identically (and deterministically) in the lockstep driver.

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// Direction selects the traversal's direction policy.
type Direction int

const (
	// DirectionAuto (the default) lets the traversal switch between
	// top-down push and bottom-up sweep phases on frontier density.
	DirectionAuto Direction = iota
	// DirectionTopDown pins the traversal to the pure top-down push
	// (the pre-direction-optimization behavior; the ablation baseline).
	DirectionTopDown
)

// String returns the CLI name of the direction policy.
func (d Direction) String() string {
	if d == DirectionTopDown {
		return "topdown"
	}
	return "auto"
}

// ParseDirection converts a CLI name into a Direction.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "auto":
		return DirectionAuto, nil
	case "topdown":
		return DirectionTopDown, nil
	}
	return 0, fmt.Errorf("core: unknown direction %q (want auto or topdown)", s)
}

// Traversal phases (traversal.phase values).
const (
	phaseTopDown int32 = iota
	phaseBottomUp
)

const (
	// defaultBottomUpAlpha gates the top-down → bottom-up switch:
	// enter bottom-up when frontier*alpha >= remaining. The default
	// keeps the switch off on high-diameter inputs (a torus frontier is
	// O(sqrt n), never a quarter of the remainder) and triggers it on
	// the low-diameter generators where the frontier balloons.
	defaultBottomUpAlpha = 4
	// buBeta gates staying bottom-up: after a full sweep of the vertex
	// range, keep sweeping only if the sweep claimed at least n/buBeta
	// vertices; otherwise the frontier has thinned and top-down resumes.
	buBeta = 24
	// buGamma gates entry on absolute frontier density: enter bottom-up
	// only when frontier*buGamma >= n. A sweep always streams the whole
	// parent array, so it can only pay when a sizable fraction of the
	// graph is about to be claimed — without this gate the endgame of a
	// mesh traversal (small frontier, small remainder, ratio satisfied)
	// would trade a cheap top-down finish for full-array sweeps.
	buGamma = 16
	// buChunk is the fixed bottom-up scan quantum (vertices per cursor
	// grab). Fixed — not the adaptive chunk — so the lockstep driver
	// stays chunk-policy-invariant.
	buChunk = 64
	// buMinGraph disables direction optimization below this vertex
	// count: tiny graphs finish before a sweep pays for itself.
	buMinGraph = 4096
	// buMinAvgDeg disables direction optimization on sparse graphs
	// (fewer than this many arcs per vertex on average). A bottom-up
	// scan only pays when the early exit on the first claimed neighbor
	// skips most of a long adjacency list; with short lists every
	// non-claiming scan costs nearly as much as a top-down expansion,
	// so a sweep over the sparse remainder (measured on the m = 1.5n
	// random family: ~14 non-contiguous probes per bottom-up claim vs
	// ~3 top-down) loses even where the frontier is dense. Meshes sit
	// at degree 2-4 and are already excluded by their O(sqrt n)
	// frontiers; the geometric families (degree ~8-11) stay armed.
	buMinAvgDeg = 6
	// buMinRemaining keeps the traversal top-down for the endgame: a
	// sweep scans every vertex to find the last few stragglers, which
	// top-down reaches directly.
	buMinRemaining = 1024
)

// buShouldSwitch reports whether the frontier is dense enough to enter
// a bottom-up phase, charging the queue-length poll (one shared-counter
// read per queue) to probe. Returns the observed frontier size.
func (t *traversal) buShouldSwitch(probe *smpmodel.Probe) (int64, bool) {
	remaining := int64(t.n) - t.visited.Load()
	if remaining <= buMinRemaining {
		return 0, false
	}
	var frontier int64
	for _, q := range t.queues {
		frontier += int64(q.Len())
	}
	probe.NonContig(int64(len(t.queues)))
	dense := frontier*int64(t.buAlpha) >= remaining && frontier*buGamma >= int64(t.n)
	return frontier, dense
}

// buEnter flips the phase to bottom-up. Idempotent under buMu: the
// first worker to decide resets the sweep state, later callers bail.
func (t *traversal) buEnter(frontier int64, ow *obs.Worker) {
	t.buMu.Lock()
	defer t.buMu.Unlock()
	if t.phase.Load() != phaseTopDown {
		return
	}
	t.buClaims.Store(0)
	// The cursor reset must be visible before the phase flip: workers
	// observing phaseBottomUp grab chunks from the fresh sweep.
	t.buCursor.Store(0)
	t.phase.Store(phaseBottomUp)
	ow.Incr(obs.DirectionSwitches)
	ow.Trace(obs.EvDirection, int64(phaseBottomUp), frontier)
}

// buSweepEnd runs when a worker's cursor grab falls past n: the sweep
// is exhausted, and one worker (serialized by buMu) decides whether to
// sweep again or return to top-down. A sweep that claimed fewer than
// n/buBeta vertices, or left fewer than buMinRemaining unclaimed, ends
// the bottom-up phase.
func (t *traversal) buSweepEnd(ow *obs.Worker) {
	t.buMu.Lock()
	defer t.buMu.Unlock()
	if t.phase.Load() != phaseBottomUp || t.buCursor.Load() < int64(t.n) {
		return // another worker already reset or ended the sweep
	}
	claims := t.buClaims.Load()
	remaining := int64(t.n) - t.visited.Load()
	if remaining > buMinRemaining && claims*buBeta >= int64(t.n) {
		t.buClaims.Store(0)
		t.buCursor.Store(0) // still dense: sweep again
		return
	}
	t.phase.Store(phaseTopDown)
	ow.Incr(obs.DirectionSwitches)
	ow.Trace(obs.EvDirection, int64(phaseTopDown), claims)
}

// bottomUpQuantum runs one bottom-up scan quantum for a concurrent
// worker: grab buChunk vertices off the shared sweep cursor, scan them,
// push the claims onto the worker's own queue, and publish the visit
// count so termination and quiescence see bottom-up progress.
func (t *traversal) bottomUpQuantum(ws *workerState, myQ workQueue) {
	start := t.buCursor.Add(buChunk) - buChunk
	ws.probe.NonContig(1) // shared sweep-cursor fetch-add
	if start >= int64(t.n) {
		t.buSweepEnd(ws.ow)
		return
	}
	hi := min(int(start)+buChunk, t.n)
	// Reuse the steal buffer as the claims buffer: its 256 capacity
	// covers buChunk, and reuse keeps pooled sessions allocation-free.
	claims := t.scanBottomUp(int(start), hi, ws.probe, &ws.lc, &ws.pend, ws.stealBuf[:0])
	if len(claims) > 0 {
		myQ.PushBatch(claims)
		ws.probe.NonContig(2 + int64(len(claims)))
		t.buClaims.Add(int64(len(claims)))
	}
	t.flushVisited(ws)
}

// scanBottomUp scans vertices [lo, hi): for each still-unclaimed vertex
// it streams the adjacency until the first claimed neighbor and tries
// one CAS to adopt it as parent. Appends claimed vertices to claims and
// returns the extended slice. Shared by the concurrent and lockstep
// drivers; charging: the parent-array stream is BottomUpScans, the
// offset load and adjacency stream go to the active layout's classes,
// and each neighbor's claim-state load plus the winning CAS stay
// non-contiguous exactly as in the top-down push.
func (t *traversal) scanBottomUp(lo, hi int, probe *smpmodel.Probe,
	lc *obs.Local, pend *int64, claims []int32) []int32 {
	probe.BottomUpScan(int64(hi - lo))
	lc.Add(obs.BottomUpScanned, int64(hi-lo))
	if t.cg != nil {
		return t.scanBottomUpCompact(lo, hi, probe, lc, pend, claims)
	}
	for v := lo; v < hi; v++ {
		gv := t.lo + graph.VID(v) // sweep positions are range-local
		if atomic.LoadInt32(&t.parent[gv]) != graph.None {
			continue
		}
		nb := t.g.Neighbors(gv)
		probe.NonContig(1) // load adjacency offset
		scanned := len(nb)
		for i, w := range nb {
			probe.NonContig(1) // claim-state load of parent[w]
			if atomic.LoadInt32(&t.parent[w]) == graph.None {
				continue
			}
			scanned = i + 1
			if t.claim(gv, w) {
				probe.NonContig(1) // winning claim CAS
				if t.span != nil {
					// w's claimer publishes span[w] after its claim CAS, so
					// this read can race ahead and see the zero value; that
					// only under-counts the modeled span, and the lockstep
					// driver (which produces the figures) is exact.
					atomic.StoreInt64(&t.span[gv],
						atomic.LoadInt64(&t.span[w])+procCostNC(len(nb)))
				}
				claims = append(claims, int32(gv))
				*pend++
				lc.Incr(obs.BottomUpClaims)
			} else {
				lc.Incr(obs.FailedClaims) // raced with a top-down claim of v
			}
			break
		}
		probe.Contig(int64(scanned))
		lc.Add(obs.EdgesScanned, int64(scanned))
	}
	return claims
}

// scanBottomUpCompact is scanBottomUp's compact-layout twin: identical
// claim order, adjacency read through the uint32 arena and charged to
// the compact access classes.
func (t *traversal) scanBottomUpCompact(lo, hi int, probe *smpmodel.Probe,
	lc *obs.Local, pend *int64, claims []int32) []int32 {
	for v := lo; v < hi; v++ {
		gv := t.lo + graph.VID(v) // sweep positions are range-local
		if atomic.LoadInt32(&t.parent[gv]) != graph.None {
			continue
		}
		nb := t.cg.Neighbors32(graph.VID(v))
		probe.NonContigC(1) // load adjacency offset (uint32 arena)
		scanned := len(nb)
		for i, w := range nb {
			probe.NonContig(1) // claim-state load of parent[w]
			if atomic.LoadInt32(&t.parent[w]) == graph.None {
				continue
			}
			scanned = i + 1
			if t.claim(gv, graph.VID(w)) {
				probe.NonContig(1) // winning claim CAS
				if t.span != nil {
					atomic.StoreInt64(&t.span[gv],
						atomic.LoadInt64(&t.span[w])+procCostNC(len(nb)))
				}
				claims = append(claims, int32(gv))
				*pend++
				lc.Incr(obs.BottomUpClaims)
			} else {
				lc.Incr(obs.FailedClaims)
			}
			break
		}
		probe.ContigC(int64(scanned))
		lc.Add(obs.EdgesScanned, int64(scanned))
	}
	return claims
}
