package core

import (
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/verify"
)

// fig4Family builds a small instance of every Fig. 4 generator family,
// sized past buMinGraph so direction optimization is armed.
func fig4Family() []*graph.Graph {
	const n, seed = 1 << 12, uint64(7)
	return []*graph.Graph{
		gen.Torus2D(64, 64),
		graph.RandomRelabel(gen.Torus2D(64, 64), seed^0xA5A5),
		gen.Random(n, 12*n, seed),
		gen.Mesh2D(64, 64, 0.60, seed),
		gen.Mesh3D(16, 16, 16, 0.40, seed),
		gen.AD3(n, seed),
		gen.GeoFlat(n, gen.DefaultGeoFlatParams(), seed),
		gen.GeoHier(n, gen.DefaultGeoHierParams(), seed),
		gen.Chain(n),
		graph.RandomRelabel(gen.Chain(n), seed^0x5A5A),
	}
}

func TestDirectionAndLayoutParse(t *testing.T) {
	for _, tc := range []struct {
		in  string
		dir Direction
	}{{"auto", DirectionAuto}, {"topdown", DirectionTopDown}} {
		d, err := ParseDirection(tc.in)
		if err != nil || d != tc.dir || d.String() != tc.in {
			t.Fatalf("ParseDirection(%q) = %v, %v", tc.in, d, err)
		}
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Fatal("bad direction accepted")
	}
	for _, tc := range []struct {
		in  string
		lay Layout
	}{{"wide", LayoutWide}, {"compact", LayoutCompact}} {
		l, err := ParseLayout(tc.in)
		if err != nil || l != tc.lay || l.String() != tc.in {
			t.Fatalf("ParseLayout(%q) = %v, %v", tc.in, l, err)
		}
	}
	if _, err := ParseLayout("sparse"); err == nil {
		t.Fatal("bad layout accepted")
	}
}

// TestLayoutForestsByteIdenticalAtP1 pins that the compact layout is a
// pure re-encoding of the hot path: at p = 1 both drivers are
// deterministic, so the wide and compact layouts must claim in the same
// order and produce byte-identical forests on every Fig. 4 family.
func TestLayoutForestsByteIdenticalAtP1(t *testing.T) {
	for name, run := range drivers() {
		for _, g := range fig4Family() {
			wide, _, err := run(g, Options{NumProcs: 1, Seed: 5, Layout: LayoutWide})
			if err != nil {
				t.Fatalf("%s %v wide: %v", name, g, err)
			}
			compact, _, err := run(g, Options{NumProcs: 1, Seed: 5, Layout: LayoutCompact})
			if err != nil {
				t.Fatalf("%s %v compact: %v", name, g, err)
			}
			if len(wide) != len(compact) {
				t.Fatalf("%s %v: forest lengths differ", name, g)
			}
			for v := range wide {
				if wide[v] != compact[v] {
					t.Fatalf("%s %v: parent[%d] = %d wide vs %d compact",
						name, g, v, wide[v], compact[v])
				}
			}
			if err := verify.Forest(g, wide); err != nil {
				t.Fatalf("%s %v: %v", name, g, err)
			}
		}
	}
}

// TestBottomUpEngagesOnBallooningFrontier pins the tentpole behavior:
// on a low-diameter geometric graph the lockstep driver must actually
// switch into the bottom-up phase, claim vertices there, and still
// produce a valid forest. (A traversal may legitimately end inside the
// bottom-up phase, so only the entry switch is guaranteed.) The
// concurrent driver's switch points are scheduling-dependent, so it
// only asserts validity.
func TestBottomUpEngagesOnBallooningFrontier(t *testing.T) {
	// Dense random: low diameter and average degree 24, past the
	// buMinAvgDeg arming gate at any scale (geo-hier only crosses it
	// around n = 2^16 — its density grows with n).
	g := gen.Random(1<<14, 12<<14, 7)
	rec := obs.New(4)
	parent, _, err := LockstepForest(g, Options{NumProcs: 4, Seed: 7, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatal(err)
	}
	tot := rec.NewReport("", nil).Snapshot.Totals
	if tot.DirectionSwitches == 0 {
		t.Fatal("DirectionSwitches = 0: bottom-up never engaged")
	}
	if tot.BottomUpClaims == 0 || tot.BottomUpScanned == 0 {
		t.Fatalf("bottom-up phase idle: claims=%d scanned=%d",
			tot.BottomUpClaims, tot.BottomUpScanned)
	}

	for name, run := range drivers() {
		for _, lay := range []Layout{LayoutWide, LayoutCompact} {
			p, _, err := run(g, Options{NumProcs: 4, Seed: 7, Layout: lay})
			if err != nil {
				t.Fatalf("%s %v: %v", name, lay, err)
			}
			if err := verify.Forest(g, p); err != nil {
				t.Fatalf("%s %v: %v", name, lay, err)
			}
		}
	}
}

// TestTopDownPinDisablesSwitching: DirectionTopDown must never enter
// the bottom-up phase, whatever the frontier does.
func TestTopDownPinDisablesSwitching(t *testing.T) {
	g := gen.Random(1<<14, 12<<14, 7)
	rec := obs.New(4)
	parent, _, err := LockstepForest(g, Options{NumProcs: 4, Seed: 7, Obs: rec, Direction: DirectionTopDown})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatal(err)
	}
	tot := rec.NewReport("", nil).Snapshot.Totals
	if tot.DirectionSwitches != 0 || tot.BottomUpScanned != 0 {
		t.Fatalf("pinned top-down still switched: switches=%d scanned=%d",
			tot.DirectionSwitches, tot.BottomUpScanned)
	}
}

// TestLockstepChunkInvariantWithBottomUp extends the chunk-invariance
// pin to a graph where the bottom-up phase engages: the bottom-up scan
// quantum is fixed (buChunk), so the forest must stay identical across
// drain chunk policies even when sweeps interleave with the drain.
func TestLockstepChunkInvariantWithBottomUp(t *testing.T) {
	g := gen.Random(1<<14, 12<<14, 7)
	variants := []Options{
		{NumProcs: 4, Seed: 5, ChunkPolicy: ChunkFixed, ChunkSize: 1},
		{NumProcs: 4, Seed: 5, ChunkPolicy: ChunkFixed, ChunkSize: 64},
		{NumProcs: 4, Seed: 5, ChunkPolicy: ChunkAdaptive},
	}
	var ref []graph.VID
	for i, opt := range variants {
		parent, _, err := LockstepForest(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = parent
			if err := verify.Forest(g, parent); err != nil {
				t.Fatal(err)
			}
			continue
		}
		for v := range ref {
			if parent[v] != ref[v] {
				t.Fatalf("variant %d: parent[%d] = %d, want %d — chunk policy leaked into the schedule",
					i, v, parent[v], ref[v])
			}
		}
	}
}

// TestCompactLayoutRejectsNothingAtTestScale: the Options plumbing must
// surface CompactOf errors instead of panicking; representable graphs
// must run.
func TestCompactLayoutOnTinyGraphs(t *testing.T) {
	for name, run := range drivers() {
		for _, g := range shapes() {
			parent, _, err := run(g, Options{NumProcs: 2, Seed: 3, Layout: LayoutCompact})
			if err != nil {
				t.Fatalf("%s %v: %v", name, g, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s %v: %v", name, g, err)
			}
		}
	}
}
