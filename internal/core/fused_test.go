package core

import (
	"sync/atomic"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

// TestFusedClaimForests pins the fused parent-CAS claim representation:
// on disconnected and chain inputs (the shapes that exercise quiescence
// seeding and the deepest dependency chains), both drivers must still
// produce valid forests, the self-parent root sentinel must never leak
// into the returned array, and each component gets exactly one root.
func TestFusedClaimForests(t *testing.T) {
	inputs := []*graph.Graph{
		gen.Chain(300),
		graph.RandomRelabel(gen.Chain(300), 9),
		graph.Union(gen.Chain(40), gen.Torus2D(6, 6), gen.Star(25), gen.Chain(1)),
		graph.Union(gen.Random(80, 60, 3), gen.Cycle(12)), // random part is itself disconnected
	}
	variants := []struct {
		policy ChunkPolicy
		chunk  int
	}{
		{ChunkAdaptive, 0}, {ChunkAdaptive, 2}, {ChunkAdaptive, 64},
		{ChunkFixed, 1}, {ChunkFixed, 2}, {ChunkFixed, 64},
	}
	for name, run := range drivers() {
		for _, g := range inputs {
			for _, v := range variants {
				tag := v.policy.String()
				parent, _, err := run(g, Options{NumProcs: 4, Seed: 21, ChunkPolicy: v.policy, ChunkSize: v.chunk})
				if err != nil {
					t.Fatalf("%s %v %s chunk=%d: %v", name, g, tag, v.chunk, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%s %v %s chunk=%d: %v", name, g, tag, v.chunk, err)
				}
				roots := 0
				for w, pv := range parent {
					if pv == graph.VID(w) {
						t.Fatalf("%s %v %s chunk=%d: self-parent sentinel leaked at vertex %d", name, g, tag, v.chunk, w)
					}
					if pv == graph.None {
						roots++
					}
				}
				if want := graph.NumComponents(g); roots != want {
					t.Fatalf("%s %v %s chunk=%d: %d roots, want %d", name, g, tag, v.chunk, roots, want)
				}
			}
		}
	}
}

// TestLockstepChunkInvariantForest pins that the drain chunk — fixed at
// any size, or adaptive at any cap — is purely a cost-model parameter
// for the deterministic driver: the round-robin schedule pops one
// vertex per turn regardless, so the forest and the work distribution
// must be bit-identical across every chunk configuration.
func TestLockstepChunkInvariantForest(t *testing.T) {
	g := gen.Random(400, 700, 13)
	base, baseStats, err := LockstepForest(g, Options{NumProcs: 4, Seed: 5, ChunkPolicy: ChunkFixed, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		policy ChunkPolicy
		chunk  int
	}{
		{ChunkFixed, 2}, {ChunkFixed, 16}, {ChunkFixed, 64}, {ChunkFixed, 1024},
		{ChunkAdaptive, 0}, {ChunkAdaptive, 8}, {ChunkAdaptive, 512},
	}
	for _, v := range variants {
		tag := v.policy.String()
		parent, stats, err := LockstepForest(g, Options{NumProcs: 4, Seed: 5, ChunkPolicy: v.policy, ChunkSize: v.chunk})
		if err != nil {
			t.Fatalf("%s chunk=%d: %v", tag, v.chunk, err)
		}
		for w := range parent {
			if parent[w] != base[w] {
				t.Fatalf("%s chunk=%d: parent[%d] = %d, differs from fixed-1's %d",
					tag, v.chunk, w, parent[w], base[w])
			}
		}
		for i := range stats.VerticesPerProc {
			if stats.VerticesPerProc[i] != baseStats.VerticesPerProc[i] {
				t.Fatalf("%s chunk=%d: worker %d claimed %d vertices, fixed-1 claimed %d",
					tag, v.chunk, i, stats.VerticesPerProc[i], baseStats.VerticesPerProc[i])
			}
		}
	}
}

// BenchmarkClaim isolates the claim-step layouts the tentpole fused: the
// two-array port (load color[w], CAS color[w], write parent[w]) against
// the fused representation (load parent[w], CAS parent[w]) over a
// first-touch sweep of n vertices.
func BenchmarkClaim(b *testing.B) {
	const n = 1 << 16
	b.Run("color-plus-parent", func(b *testing.B) {
		color := make([]int32, n)
		parent := make([]graph.VID, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := i & (n - 1)
			if w == 0 {
				b.StopTimer()
				for j := range color {
					color[j] = 0
				}
				b.StartTimer()
			}
			if atomic.LoadInt32(&color[w]) != 0 {
				continue
			}
			if atomic.CompareAndSwapInt32(&color[w], 0, 1) {
				parent[w] = graph.VID(w)
			}
		}
	})
	b.Run("fused-parent-cas", func(b *testing.B) {
		parent := make([]graph.VID, n)
		for j := range parent {
			parent[j] = graph.None
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := i & (n - 1)
			if w == 0 {
				b.StopTimer()
				for j := range parent {
					parent[j] = graph.None
				}
				b.StartTimer()
			}
			if atomic.LoadInt32(&parent[w]) != graph.None {
				continue
			}
			atomic.CompareAndSwapInt32(&parent[w], graph.None, int32(w))
		}
	})
}
