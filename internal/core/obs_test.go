package core

import (
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/verify"
)

// TestObsTorusStealCounts is the integration contract of the
// observability layer: on a well-connected torus the work-stealing
// protocol must actually fire at p >= 4 (the load-balance mechanism the
// paper's argument rests on) and must be structurally silent at p = 1.
func TestObsTorusStealCounts(t *testing.T) {
	g := gen.Torus2D(64, 64)
	for name, run := range drivers() {
		for _, p := range []int{4, 8} {
			// The torus is well balanced, so whether a steal fires depends
			// on the stub placement; scan a few seeds and require that the
			// protocol engages at at least one of them.
			var snap obs.Snapshot
			var st Stats
			for seed := uint64(10); seed < 15; seed++ {
				rec := obs.New(p)
				parent, stats, err := run(g, Options{NumProcs: p, Seed: seed, Obs: rec})
				if err != nil {
					t.Fatalf("%s p=%d: %v", name, p, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%s p=%d: %v", name, p, err)
				}
				snap, st = rec.Snapshot(), stats
				if snap.Totals.StealSuccesses > 0 {
					break
				}
			}
			if snap.Totals.StealSuccesses == 0 {
				t.Errorf("%s p=%d: no steals on a torus at any probed seed", name, p)
			}
			if snap.Totals.StealAttempts < snap.Totals.StealSuccesses {
				t.Errorf("%s p=%d: attempts %d < successes %d", name, p,
					snap.Totals.StealAttempts, snap.Totals.StealSuccesses)
			}
			if snap.Totals.QueueHighWater == 0 {
				t.Errorf("%s p=%d: queue high-water never rose", name, p)
			}
			if snap.BarrierEpisodes != 2 {
				t.Errorf("%s p=%d: barrier episodes = %d, want 2 (the paper's B)",
					name, p, snap.BarrierEpisodes)
			}
			// Stats is a derived view over the same recorder.
			if st.Steals != snap.Totals.StealSuccesses {
				t.Errorf("%s p=%d: Stats.Steals = %d, snapshot %d", name, p,
					st.Steals, snap.Totals.StealSuccesses)
			}
			if st.StolenVertices != snap.Totals.StolenVertices {
				t.Errorf("%s p=%d: Stats.StolenVertices = %d, snapshot %d", name, p,
					st.StolenVertices, snap.Totals.StolenVertices)
			}
			var claimed int64
			for tid, w := range snap.Workers {
				claimed += w.VerticesClaimed
				if w.VerticesClaimed != st.VerticesPerProc[tid] {
					t.Errorf("%s p=%d worker %d: claimed %d, Stats %d", name, p,
						tid, w.VerticesClaimed, st.VerticesPerProc[tid])
				}
			}
			if claimed == 0 || claimed > int64(g.NumVertices()) {
				t.Errorf("%s p=%d: total claimed %d out of range", name, p, claimed)
			}
		}

		// p = 1: no victims exist, so the steal counters must stay zero.
		rec := obs.New(1)
		_, _, err := run(g, Options{NumProcs: 1, Seed: 7, Obs: rec})
		if err != nil {
			t.Fatalf("%s p=1: %v", name, err)
		}
		snap := rec.Snapshot()
		if snap.Totals.StealSuccesses != 0 || snap.Totals.StealAttempts != 0 ||
			snap.Totals.StolenVertices != 0 {
			t.Errorf("%s p=1: steals reported (%d attempts, %d successes, %d vertices)",
				name, snap.Totals.StealAttempts, snap.Totals.StealSuccesses,
				snap.Totals.StolenVertices)
		}
		// Every vertex is queued exactly once (claims are unique), so the
		// processed count can never exceed n. It is bounded, not exact:
		// workers notice visited == n only at chunk boundaries, so a few
		// claimed vertices can stay queued but never processed, and
		// stub-walk vertices are claimed in the sequential prologue but
		// still scanned by the traversal once popped.
		hi := int64(g.NumVertices())
		if c := snap.Totals.VerticesClaimed; c < hi/2 || c > hi {
			t.Errorf("%s p=1: claimed %d vertices, want in (%d, %d]",
				name, c, hi/2, hi)
		}
	}
}

// TestObsTraceTimeline checks that a traced run produces the expected
// event kinds in a plausible order: seeds first, then steals.
func TestObsTraceTimeline(t *testing.T) {
	g := gen.Torus2D(64, 64)
	rec := obs.New(8, obs.WithTrace(1<<14))
	if _, _, err := LockstepForest(g, Options{NumProcs: 8, Seed: 7, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	kinds := map[string]int{}
	firstSeed, firstSteal := -1, -1
	for i, e := range events {
		kinds[e.Kind]++
		if e.Kind == "seed" && firstSeed < 0 {
			firstSeed = i
		}
		if e.Kind == "steal" && firstSteal < 0 {
			firstSteal = i
		}
		if i > 0 && e.TNS < events[i-1].TNS {
			t.Fatalf("events out of order at %d: %d after %d", i, e.TNS, events[i-1].TNS)
		}
	}
	if kinds["seed"] == 0 || kinds["steal"] == 0 || kinds["barrier"] != 2 {
		t.Fatalf("unexpected kinds: %v", kinds)
	}
	if firstSeed > firstSteal {
		t.Fatalf("first steal (%d) before first seed (%d)", firstSteal, firstSeed)
	}
}

// TestObsFallbackAndComponentEvents drives the two quiescence outcomes:
// seeding extra components (disconnected input) and the SV fallback
// (degenerate chain with a threshold).
func TestObsFallbackAndComponentEvents(t *testing.T) {
	// Disconnected input: every extra component is seeded and counted.
	disc := graph.Union(gen.Chain(40), gen.Star(25), gen.Cycle(30))
	rec := obs.New(4)
	_, st, err := LockstepForest(disc, Options{NumProcs: 4, Seed: 3, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Totals.SeededComponents == 0 {
		t.Error("no seeded components on a forest input")
	}
	if snap.Totals.SeededComponents != st.CursorRoots {
		t.Errorf("seeded %d, Stats.CursorRoots %d", snap.Totals.SeededComponents, st.CursorRoots)
	}

	// Degenerate chain with detection on: the fallback must trigger and
	// be visible in the counters.
	rec = obs.New(8)
	_, st, err = LockstepForest(gen.Chain(4000), Options{
		NumProcs: 8, Seed: 3, FallbackThreshold: 7, Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FallbackTriggered {
		t.Skip("fallback did not trigger at this seed; counters untestable")
	}
	if got := rec.Snapshot().Totals.FallbackTriggers; got != 1 {
		t.Errorf("fallback_triggers = %d, want 1", got)
	}
}

// TestObsRejectsUndersizedRecorder pins the Options.Obs contract.
func TestObsRejectsUndersizedRecorder(t *testing.T) {
	g := gen.Chain(10)
	rec := obs.New(2)
	if _, _, err := SpanningForest(g, Options{NumProcs: 4, Obs: rec}); err == nil {
		t.Error("concurrent driver accepted an undersized recorder")
	}
	if _, _, err := LockstepForest(g, Options{NumProcs: 4, Obs: rec}); err == nil {
		t.Error("lockstep driver accepted an undersized recorder")
	}
}
