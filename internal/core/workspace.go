package core

import (
	"errors"
	"fmt"
	"sync"

	"spantree/internal/barrier"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/sched"
	"spantree/internal/spanseq"
	"spantree/internal/wsq"
	"spantree/internal/xrand"
)

// WorkspaceOptions sizes the provisioned buffers of a Workspace.
type WorkspaceOptions struct {
	// QueueCapacity is the per-queue frontier the workspace provisions
	// for, in vertices. The steal-half ring doubles when more than half
	// its buffer is live, so each queue's buffer is allocated at twice
	// this value — with the default (0, meaning n, the graph's vertex
	// count) no run can ever grow a queue, because the total frontier of
	// a traversal is bounded by n. A smaller value trades that guarantee
	// for memory: a run whose frontier outgrows the provision still
	// completes correctly, it just reallocates (and the session's
	// steady state is no longer allocation-free).
	QueueCapacity int
}

// ErrWorkspaceClosed is returned by Run after Close.
var ErrWorkspaceClosed = errors.New("core: Run on a closed Workspace")

// Workspace is a reusable runtime for SpanningForest on one fixed graph:
// every buffer the algorithm needs (the parent array, the work-stealing
// queues, the per-worker drain/child/steal buffers, the observability
// recorder, the seed list) is allocated once at construction, and a team
// of p worker goroutines is spawned once and parked between runs on the
// run-start channels, synchronizing each run's end through one reused
// sense-reversing barrier. A warmed workspace therefore executes Run
// with zero steady-state heap allocations — the property the serving
// layer's pooled sessions are built on.
//
// A Workspace is NOT safe for concurrent use: one Run at a time (the
// session pool enforces this by handing each workspace to one request).
// Close releases the parked team; it is the only way the goroutines
// exit, so callers must Close workspaces they drop.
type Workspace struct {
	t   *traversal
	qs  []*wsq.StealHalf // concrete queues, for Reset between runs
	bar *barrier.Sense
	ws  []workerState
	// wake[tid] carries the run-start signal to parked worker tid; close
	// retires it. The run-end synchronization is the join barrier.
	wake []chan struct{}
	wg   sync.WaitGroup

	rootRand xrand.Rand
	seeds    []graph.VID
	stats    Stats
	closed   bool
}

// NewWorkspace builds a workspace for g with the given run options.
// opt.Seed is ignored (each Run takes its own); opt.Cancel must be nil —
// the workspace owns its cancel flag, exposed through Flag. Options that
// allocate per run or change the memory shape (Model, Obs, Chaos,
// StealOne, Deg2Eliminate) are rejected: a workspace is the serving
// fast path, not the experiment harness.
func NewWorkspace(g *graph.Graph, opt Options, wopt WorkspaceOptions) (*Workspace, error) {
	if opt.NumProcs < 1 {
		return nil, fmt.Errorf("core: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	switch {
	case opt.Model != nil:
		return nil, errors.New("core: Workspace does not support a cost Model")
	case opt.Obs != nil:
		return nil, errors.New("core: Workspace does not support an external Obs recorder")
	case opt.Chaos != nil:
		return nil, errors.New("core: Workspace does not support chaos injection")
	case opt.Cancel != nil:
		return nil, errors.New("core: Workspace owns its cancel flag; use Flag instead of Options.Cancel")
	case opt.StealOne:
		return nil, errors.New("core: Workspace does not support the StealOne ablation")
	case opt.Deg2Eliminate:
		return nil, errors.New("core: Workspace does not support Deg2Eliminate")
	}
	o := opt.withDefaults()
	n := g.NumVertices()
	p := o.NumProcs

	qcap := wopt.QueueCapacity
	if qcap <= 0 || qcap > n {
		qcap = n
	}
	if qcap < 16 {
		qcap = 16
	}

	t := &traversal{
		g:        g,
		o:        o,
		n:        n,
		parent:   make([]graph.VID, n),
		queues:   make([]workQueue, p),
		minSteal: minStealLen(p),
		fail:     sched.NewFailSignal(p),
		rec:      obs.New(p),
		cancel:   &fault.Flag{},
		dirOpt:   o.Direction == DirectionAuto && n >= buMinGraph && len(g.Adj) >= buMinAvgDeg*n,
		buAlpha:  o.BottomUpAlpha,
	}
	if o.Layout == LayoutCompact {
		// The compact mirror is built once here, so pooled runs stay in
		// the allocation-free steady state whatever the layout.
		cg, err := graph.CompactOf(g)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		t.cg = cg
	}
	t.o.Cancel = t.cancel
	for i := range t.parent {
		t.parent[i] = graph.None
	}
	w := &Workspace{t: t, qs: make([]*wsq.StealHalf, p)}
	for i := range t.queues {
		// Twice the provisioned frontier: see WorkspaceOptions.QueueCapacity.
		q := wsq.NewStealHalf(2 * qcap)
		w.qs[i] = q
		t.queues[i] = stealHalfQueue{q}
	}

	// Per-worker buffers, provisioned for the worst case so the hot loop
	// never grows them: the child buffer can receive every not-yet-claimed
	// vertex of a chunk's neighborhoods (bounded by the frontier), a steal
	// takes at most half a victim's live queue.
	w.ws = make([]workerState, p)
	ctrl := newChunkController(&t.o)
	ctrlMax := ctrl.Max()
	outCap := 4 * ctrlMax
	if outCap < qcap {
		outCap = qcap
	}
	stealCap := qcap/2 + 1
	if stealCap < 256 {
		stealCap = 256
	}
	for tid := range w.ws {
		ws := &w.ws[tid]
		ws.chunk = make([]int32, ctrlMax)
		ws.out = make([]int32, 0, outCap)
		ws.stealBuf = make([]int32, 0, stealCap)
		ws.ow = t.rec.Worker(tid)
	}
	w.seeds = make([]graph.VID, 0, t.o.StubSteps+1)
	w.stats.VerticesPerProc = make([]int64, p)
	w.stats.EdgesPerProc = make([]int64, p)

	// The parked team: p goroutines created once, woken per run, joined
	// per run through the reused sense-reversing barrier (the coordinator
	// is the extra participant). They exit only when Close retires the
	// wake channels.
	w.bar = barrier.NewSense(p + 1)
	w.bar.Observe(t.rec)
	w.wake = make([]chan struct{}, p)
	for tid := range w.wake {
		w.wake[tid] = make(chan struct{})
		w.wg.Add(1)
		go func(tid int) {
			defer w.wg.Done()
			for range w.wake[tid] {
				w.runOne(tid)
			}
		}(tid)
	}
	return w, nil
}

// runOne executes one parked worker's share of one run, with the same
// isolation contract as a one-shot run: the worker reaches the join
// barrier whatever happens in its body, and a panic trips the run flag
// so the teammates drain at their next poll.
func (w *Workspace) runOne(tid int) {
	defer w.bar.Wait(tid)
	defer func() {
		if r := recover(); r != nil {
			w.t.recoverWorker(tid, r)
		}
	}()
	w.t.workerLoop(tid, &w.ws[tid])
}

// Flag returns the workspace's cancel flag. The reuse contract: callers
// that arm it (fault.Watch, TripContext) must Reset it before the next
// Run — Run itself never resets the flag, so a trip that lands between
// the caller's Watch and the run's first poll is never lost.
func (w *Workspace) Flag() *fault.Flag { return w.t.cancel }

// NumProcs returns the workspace's worker count.
func (w *Workspace) NumProcs() int { return w.t.o.NumProcs }

// Graph returns the graph the workspace was built for.
func (w *Workspace) Graph() *graph.Graph { return w.t.g }

// Run executes the two-step algorithm with the given seed on the pooled
// buffers. The returned parent slice and Stats are owned by the
// workspace and valid only until the next Run — callers consume or copy
// them before releasing the workspace.
//
// Cancellation follows the one-shot contract: if the workspace flag
// trips (via fault.Watch on Flag), Run drains and returns
// fault.ErrCanceled / fault.ErrDeadline with partial stats; an isolated
// worker panic degrades to the sequential BFS. In every case the
// workspace remains reusable.
func (w *Workspace) Run(seed uint64) ([]graph.VID, *Stats, error) {
	if w.closed {
		return nil, nil, ErrWorkspaceClosed
	}
	t := w.t
	t.o.Seed = seed

	// Rearm the shared traversal state. Everything below is written by
	// this goroutine before the wake sends, which happen-before the
	// workers' reads.
	for i := range t.parent {
		t.parent[i] = graph.None
	}
	for _, q := range w.qs {
		q.Reset()
	}
	t.fail.Reset()
	t.rec.Reset()
	t.visited.Store(0)
	t.cursor.Store(0)
	t.sleepers.Store(0)
	t.abort.Store(false)
	t.phase.Store(phaseTopDown)
	t.buCursor.Store(0)
	t.buClaims.Store(0)
	vp, ep := w.stats.VerticesPerProc, w.stats.EdgesPerProc
	clear(vp)
	clear(ep)
	w.stats = Stats{VerticesPerProc: vp, EdgesPerProc: ep}

	if t.n == 0 {
		return t.parent, &w.stats, nil
	}

	// Step 1: stub spanning tree on the calling goroutine, into the
	// pooled seed buffer.
	w.rootRand.Reseed(seed)
	w.seeds = w.seeds[:0]
	if t.o.NoStub {
		s := graph.VID(w.rootRand.Intn(t.n))
		t.claimSeq(s, graph.None)
		w.seeds = append(w.seeds, s)
	} else {
		w.seeds = stubSpanningTree(t, &w.rootRand, nil, w.seeds)
	}
	w.stats.StubSize = len(w.seeds)
	for i, s := range w.seeds {
		t.queues[i%t.o.NumProcs].Push(int32(s))
		t.rec.Trace(0, obs.EvSeed, int64(s), int64(i%t.o.NumProcs))
	}
	t.rec.AddBarrierEpisodes(1)
	t.rec.Trace(-1, obs.EvBarrier, 1, 0)
	if t.cancel.Tripped() {
		// Canceled before the traversal started (e.g. an already-expired
		// deadline): don't wake the team.
		return w.stop()
	}

	// Step 2: wake the parked team and join through the reused barrier.
	for tid := range w.ws {
		t.resetWorkerState(tid, &w.ws[tid])
	}
	for _, c := range w.wake {
		c <- struct{}{}
	}
	w.bar.Wait(t.o.NumProcs) // the coordinator is the extra participant
	if t.cancel.Tripped() {
		return w.stop()
	}
	t.normalizeRoots()
	t.finishStatsPooled(&w.stats, w.ws)

	if t.abort.Load() {
		// Pathological case detected: finish with Shiloach-Vishkin. The
		// fallback allocates — leaving the zero-alloc steady state is the
		// right trade on an input that defeated the traversal.
		w.stats.FallbackTriggered = true
		svStats, err := t.fallback()
		w.stats.SVStats = svStats
		if err != nil {
			return nil, &w.stats, err
		}
	}
	return t.parent, &w.stats, nil
}

// stop resolves a pooled run whose flag tripped, mirroring stopOutcome
// without the allocating Snapshot: context stops return the typed error
// with partial stats; a worker panic degrades to the sequential BFS.
func (w *Workspace) stop() ([]graph.VID, *Stats, error) {
	t := w.t
	t.finishStatsPooled(&w.stats, w.ws)
	if t.cancel.Cause() == fault.CausePanicked {
		w.stats.Panic = t.cancel.Panic()
		w.stats.DegradedToSeq = true
		return spanseq.BFS(t.g, nil), &w.stats, nil
	}
	return nil, &w.stats, t.cancel.Err()
}

// Close retires the parked team and marks the workspace unusable. It
// must not race a Run. Idempotent.
func (w *Workspace) Close() {
	if w.closed {
		return
	}
	w.closed = true
	for _, c := range w.wake {
		close(c)
	}
	w.wg.Wait()
}
