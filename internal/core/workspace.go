package core

import (
	"errors"
	"fmt"
	"sync"

	"spantree/internal/barrier"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/spanseq"
	"spantree/internal/wsq"
	"spantree/internal/xrand"
)

// WorkspaceOptions sizes the provisioned buffers of a Workspace.
type WorkspaceOptions struct {
	// QueueCapacity is the per-queue frontier the workspace provisions
	// for, in vertices. The steal-half ring doubles when more than half
	// its buffer is live, so each queue's buffer is allocated at twice
	// this value — with the default (0, meaning the team range's vertex
	// count) no run can ever grow a queue, because the total frontier of
	// a team's traversal is bounded by its range. A smaller value trades
	// that guarantee for memory: a run whose frontier outgrows the
	// provision still completes correctly, it just reallocates (and the
	// session's steady state is no longer allocation-free).
	QueueCapacity int
}

// ErrWorkspaceClosed is returned by Run after Close.
var ErrWorkspaceClosed = errors.New("core: Run on a closed Workspace")

// parkedWorker is one pooled worker goroutine's identity: which shard
// team it belongs to, its local tid there, and its slot on its wave's
// join barrier. wake carries the run-start signal; close retires it.
type parkedWorker struct {
	wake  chan struct{}
	shard int
	tid   int
	bslot int
}

// Workspace is a reusable runtime for SpanningForest on one fixed graph:
// every buffer the algorithm needs (the parent array, the work-stealing
// queues, the per-worker drain/child/steal buffers, the observability
// recorder, the seed list, the sharded engine's partition and stitch
// scratch) is allocated once at construction, and the worker goroutines
// are spawned once and parked between runs on the run-start channels,
// synchronizing each run's end through reused sense-reversing barriers
// (one per wave of the engine's shard schedule). A warmed workspace
// therefore executes Run with zero steady-state heap allocations — the
// property the serving layer's pooled sessions are built on — at any
// shard count.
//
// A Workspace is NOT safe for concurrent use: one Run at a time (the
// session pool enforces this by handing each workspace to one request).
// Close releases the parked team; it is the only way the goroutines
// exit, so callers must Close workspaces they drop.
type Workspace struct {
	e  *engine
	qs []*wsq.StealHalf // concrete queues, for Reset between runs
	// workers[wv] holds the parked goroutines of wave wv, joined through
	// bars[wv] (the coordinator is the extra participant).
	workers [][]parkedWorker
	bars    []*barrier.Sense
	wss     [][]workerState // [shard][local tid]
	// slotOW caches one recorder handle per global processor slot:
	// Recorder.Worker escapes its handle to the heap on every call, so
	// the handles are resolved once here and shared with the worker
	// states and the stats derivation.
	slotOW []*obs.Worker
	wg     sync.WaitGroup

	rootRand xrand.Rand
	seeds    []graph.VID
	stats    Stats
	closed   bool
}

// NewWorkspace builds a workspace for g with the given run options.
// opt.Seed is ignored (each Run takes its own); opt.Cancel must be nil —
// the workspace owns its cancel flag, exposed through Flag. Options that
// allocate per run or change the memory shape (Model, Obs, Chaos,
// StealOne, Deg2Eliminate) are rejected: a workspace is the serving
// fast path, not the experiment harness. Shards is supported — the
// partition, the per-shard views and the stitch scratch are built once
// here, so sharded pooled runs stay allocation-free too.
func NewWorkspace(g *graph.Graph, opt Options, wopt WorkspaceOptions) (*Workspace, error) {
	if opt.NumProcs < 1 {
		return nil, fmt.Errorf("core: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	switch {
	case opt.Model != nil:
		return nil, errors.New("core: Workspace does not support a cost Model")
	case opt.Obs != nil:
		return nil, errors.New("core: Workspace does not support an external Obs recorder")
	case opt.Chaos != nil:
		return nil, errors.New("core: Workspace does not support chaos injection")
	case opt.Cancel != nil:
		return nil, errors.New("core: Workspace owns its cancel flag; use Flag instead of Options.Cancel")
	case opt.StealOne:
		return nil, errors.New("core: Workspace does not support the StealOne ablation")
	case opt.Deg2Eliminate:
		return nil, errors.New("core: Workspace does not support Deg2Eliminate")
	}
	o := opt.withDefaults()

	w := &Workspace{}
	// The queue supplier runs once per worker during engine construction,
	// in shard-major tid order, handed the owning team range's vertex
	// count; twice the provisioned frontier, see WorkspaceOptions.
	mk := func(ns int) workQueue {
		q := wsq.NewStealHalf(2 * poolQueueCap(ns, wopt))
		w.qs = append(w.qs, q)
		return stealHalfQueue{q}
	}
	e, err := newEngine(g, o, mk)
	if err != nil {
		return nil, err
	}
	w.e = e

	// Per-worker buffers, provisioned for the worst case so the hot loop
	// never grows them: the child buffer can receive every not-yet-claimed
	// vertex of a chunk's neighborhoods (bounded by the team's frontier),
	// a steal takes at most half a victim's live queue.
	p := o.NumProcs
	w.slotOW = make([]*obs.Worker, p)
	for slot := range w.slotOW {
		w.slotOW[slot] = e.rec.Worker(slot)
	}
	w.wss = make([][]workerState, len(e.ts))
	for si, t := range e.ts {
		qcap := poolQueueCap(t.n, wopt)
		ctrl := newChunkController(&t.o)
		ctrlMax := ctrl.Max()
		outCap := 4 * ctrlMax
		if outCap < qcap {
			outCap = qcap
		}
		stealCap := qcap/2 + 1
		if stealCap < 256 {
			stealCap = 256
		}
		w.wss[si] = make([]workerState, t.o.NumProcs)
		for tid := range w.wss[si] {
			ws := &w.wss[si][tid]
			ws.chunk = make([]int32, ctrlMax)
			ws.out = make([]int32, 0, outCap)
			ws.stealBuf = make([]int32, 0, stealCap)
			ws.ow = w.slotOW[t.tidBase+tid]
		}
	}
	w.seeds = make([]graph.VID, 0, o.StubSteps+1)
	w.stats.VerticesPerProc = make([]int64, p)
	w.stats.EdgesPerProc = make([]int64, p)

	// The parked team: one goroutine per worker slot of every shard,
	// created once, woken per run wave by wave, joined per wave through
	// its reused sense-reversing barrier (the coordinator is the extra
	// participant). They exit only when Close retires the wake channels.
	w.workers = make([][]parkedWorker, len(e.waves))
	w.bars = make([]*barrier.Sense, len(e.waves))
	for wv, wave := range e.waves {
		total := 0
		for _, si := range wave {
			total += e.ts[si].o.NumProcs
		}
		w.bars[wv] = barrier.NewSense(total + 1)
		w.bars[wv].Observe(e.rec)
		w.workers[wv] = make([]parkedWorker, 0, total)
		slot := 0
		for _, si := range wave {
			for tid := 0; tid < e.ts[si].o.NumProcs; tid++ {
				pw := parkedWorker{
					wake: make(chan struct{}), shard: si, tid: tid, bslot: slot,
				}
				w.workers[wv] = append(w.workers[wv], pw)
				slot++
				w.wg.Add(1)
				go func(wv int, pw parkedWorker) {
					defer w.wg.Done()
					for range pw.wake {
						w.runOne(wv, pw)
					}
				}(wv, pw)
			}
		}
	}
	return w, nil
}

// poolQueueCap resolves the provisioned per-queue frontier for a team
// covering ns vertices.
func poolQueueCap(ns int, wopt WorkspaceOptions) int {
	qcap := wopt.QueueCapacity
	if qcap <= 0 || qcap > ns {
		qcap = ns
	}
	if qcap < 16 {
		qcap = 16
	}
	return qcap
}

// runOne executes one parked worker's share of one run, with the same
// isolation contract as a one-shot run: the worker reaches its wave's
// join barrier whatever happens in its body, and a panic trips the run
// flag so the teammates drain at their next poll.
func (w *Workspace) runOne(wv int, pw parkedWorker) {
	defer w.bars[wv].Wait(pw.bslot)
	t := w.e.ts[pw.shard]
	defer func() {
		if r := recover(); r != nil {
			t.recoverWorker(pw.tid, r)
		}
	}()
	t.workerLoop(pw.tid, &w.wss[pw.shard][pw.tid])
}

// Flag returns the workspace's cancel flag. The reuse contract: callers
// that arm it (fault.Watch, TripContext) must Reset it before the next
// Run — Run itself never resets the flag, so a trip that lands between
// the caller's Watch and the run's first poll is never lost.
func (w *Workspace) Flag() *fault.Flag { return w.e.cancel }

// NumProcs returns the workspace's total worker budget.
func (w *Workspace) NumProcs() int { return w.e.o.NumProcs }

// Graph returns the graph the workspace was built for.
func (w *Workspace) Graph() *graph.Graph { return w.e.g }

// Run executes the two-step algorithm with the given seed on the pooled
// buffers. The returned parent slice and Stats are owned by the
// workspace and valid only until the next Run — callers consume or copy
// them before releasing the workspace.
//
// Cancellation follows the one-shot contract: if the workspace flag
// trips (via fault.Watch on Flag), Run drains and returns
// fault.ErrCanceled / fault.ErrDeadline with partial stats; an isolated
// worker panic degrades to the sequential BFS. In every case the
// workspace remains reusable.
func (w *Workspace) Run(seed uint64) ([]graph.VID, *Stats, error) {
	if w.closed {
		return nil, nil, ErrWorkspaceClosed
	}
	e := w.e

	// Rearm the shared state. Everything below is written by this
	// goroutine before the wake sends, which happen-before the workers'
	// reads.
	e.rearm(seed)
	for _, q := range w.qs {
		q.Reset()
	}
	e.rec.Reset()
	vp, ep := w.stats.VerticesPerProc, w.stats.EdgesPerProc
	clear(vp)
	clear(ep)
	w.stats = Stats{VerticesPerProc: vp, EdgesPerProc: ep}

	if len(e.parent) == 0 {
		return e.parent, &w.stats, nil
	}

	// Step 1: stub spanning trees on the calling goroutine, one walk per
	// shard, into the pooled seed buffer.
	for si, t := range e.ts {
		e.stubRandInto(&w.rootRand, seed, si)
		w.seeds = w.seeds[:0]
		if t.o.NoStub {
			s := t.lo + graph.VID(w.rootRand.Intn(t.n))
			t.claimSeq(s, graph.None)
			w.seeds = append(w.seeds, s)
		} else {
			w.seeds = stubSpanningTree(t, &w.rootRand, nil, w.seeds)
		}
		w.stats.StubSize += len(w.seeds)
		for i, s := range w.seeds {
			t.queues[i%t.o.NumProcs].Push(int32(s))
			e.rec.Trace(0, obs.EvSeed, int64(s), int64(t.tidBase+i%t.o.NumProcs))
		}
	}
	e.rec.AddBarrierEpisodes(1)
	e.rec.Trace(-1, obs.EvBarrier, 1, 0)
	if e.cancel.Tripped() {
		// Canceled before the traversal started (e.g. an already-expired
		// deadline): don't wake the team.
		return w.stop()
	}

	// Step 2: wake the parked teams wave by wave and join each wave
	// through its reused barrier. A trip ends the schedule at the wave
	// boundary; the unwoken later waves simply stay parked, which leaves
	// them in exactly the state the next Run's wakes expect. The parked
	// watchdog rearms here and disarms synchronously on every exit path,
	// so the next Run's flag Reset can never race a late stall trip;
	// Arm/Disarm exchange a value on a preallocated channel, keeping the
	// steady state allocation-free.
	if e.wd != nil {
		e.wd.Arm(e.cancel, e.o.StallBudget)
		defer e.wd.Disarm()
	}
	for si := range e.ts {
		t := e.ts[si]
		for tid := range w.wss[si] {
			t.resetWorkerState(tid, &w.wss[si][tid])
		}
	}
	for wv := range w.workers {
		for i := range w.workers[wv] {
			w.workers[wv][i].wake <- struct{}{}
		}
		w.bars[wv].Wait(len(w.workers[wv])) // the coordinator is the extra participant
		if e.cancel.Tripped() {
			break
		}
	}
	if e.cancel.Tripped() {
		return w.stop()
	}
	for _, t := range e.ts {
		t.normalizeRoots()
	}
	if e.part != nil {
		e.stitchShards(nil, w.slotOW[0])
	}
	e.finishStatsPooled(&w.stats, w.slotOW)

	if e.ts[0].abort.Load() {
		// Pathological case detected (single-team only: Shards > 1 rejects
		// FallbackThreshold): finish with Shiloach-Vishkin. The fallback
		// allocates — leaving the zero-alloc steady state is the right
		// trade on an input that defeated the traversal.
		w.stats.FallbackTriggered = true
		svStats, err := e.ts[0].fallback()
		w.stats.SVStats = svStats
		if err != nil {
			return nil, &w.stats, err
		}
	}
	return e.parent, &w.stats, nil
}

// stop resolves a pooled run whose flag tripped, mirroring stopOutcome
// without the allocating Snapshot: context stops return the typed error
// with partial stats; a worker panic degrades to the sequential BFS.
func (w *Workspace) stop() ([]graph.VID, *Stats, error) {
	e := w.e
	if e.cancel.Cause() == fault.CauseStalled {
		w.slotOW[0].Incr(obs.StallTrips)
	}
	e.finishStatsPooled(&w.stats, w.slotOW)
	if e.cancel.Cause() == fault.CausePanicked {
		w.stats.Panic = e.cancel.Panic()
		w.stats.DegradedToSeq = true
		return spanseq.BFS(e.g, nil), &w.stats, nil
	}
	return nil, &w.stats, e.cancel.Err()
}

// Close retires the parked teams and marks the workspace unusable. It
// must not race a Run. Idempotent.
func (w *Workspace) Close() {
	if w.closed {
		return
	}
	w.closed = true
	for _, wave := range w.workers {
		for i := range wave {
			close(wave[i].wake)
		}
	}
	w.wg.Wait()
	w.e.wd.Close()
}
