package core

import (
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

// TestMinStealLenScaling pins the p-scaled steal threshold: max(2, p/2).
// These exact values are load-bearing — lowering them reintroduces the
// bursty re-idling on small graphs at high p, raising them starves
// thieves on two-processor runs.
func TestMinStealLenScaling(t *testing.T) {
	want := map[int]int{1: 2, 2: 2, 3: 2, 4: 2, 5: 2, 6: 3, 8: 4, 16: 8, 32: 16}
	for p, w := range want {
		if got := minStealLen(p); got != w {
			t.Errorf("minStealLen(%d) = %d, want %d", p, got, w)
		}
	}
	// The traversal must wire it from NumProcs.
	topt := Options{NumProcs: 8}
	tr := newTraversal(gen.Chain(10), topt.withDefaults())
	if tr.minSteal != 4 {
		t.Errorf("traversal minSteal = %d at p=8, want 4", tr.minSteal)
	}
}

// TestChunkPolicyNames pins the CLI vocabulary.
func TestChunkPolicyNames(t *testing.T) {
	if ChunkAdaptive.String() != "adaptive" || ChunkFixed.String() != "fixed" {
		t.Fatalf("policy names: %v %v", ChunkAdaptive, ChunkFixed)
	}
	for _, name := range []string{"adaptive", "fixed"} {
		cp, err := ParseChunkPolicy(name)
		if err != nil || cp.String() != name {
			t.Fatalf("ParseChunkPolicy(%q) = %v, %v", name, cp, err)
		}
	}
	if _, err := ParseChunkPolicy("sometimes"); err == nil {
		t.Fatal("bad policy name accepted")
	}
	var zero ChunkPolicy
	if zero != ChunkAdaptive {
		t.Fatal("zero value is not the adaptive default")
	}
}

// TestChunkControllerAdapts unit-tests the controller's dynamics:
// doubling toward the cap while the queue is deep and steals succeed,
// halving toward 1 on starvation or a shallow queue, and inertness
// under the fixed policy.
func TestChunkControllerAdapts(t *testing.T) {
	var lc obs.Local
	raw := Options{ChunkPolicy: ChunkAdaptive}
	o := raw.withDefaults()
	c := newChunkController(&o)
	if c.chunk != AdaptiveInitChunk || c.max != AdaptiveMaxChunk {
		t.Fatalf("adaptive start = %d cap %d, want %d cap %d", c.chunk, c.max, AdaptiveInitChunk, AdaptiveMaxChunk)
	}
	// Deep queue, no failed steals: doubles each decision up to the cap.
	for i := 0; i < 20; i++ {
		c.adapt(4*c.chunk, 0, &lc)
	}
	if c.chunk != AdaptiveMaxChunk || c.hi != AdaptiveMaxChunk {
		t.Fatalf("deep queue reached chunk=%d hi=%d, want cap %d", c.chunk, c.hi, AdaptiveMaxChunk)
	}
	// A failed steal since the last decision halves, even with depth.
	c.adapt(4*c.chunk, 1, &lc)
	if c.chunk != AdaptiveMaxChunk/2 {
		t.Fatalf("starvation did not shrink: chunk=%d", c.chunk)
	}
	// No new failures afterward: the same count does not re-shrink.
	c.adapt(4*c.chunk, 1, &lc)
	if c.chunk != AdaptiveMaxChunk {
		t.Fatalf("recovery did not grow: chunk=%d", c.chunk)
	}
	// Shallow queue shrinks toward (and floors at) 1.
	for i := 0; i < 20; i++ {
		c.adapt(0, 1, &lc)
	}
	if c.chunk != 1 {
		t.Fatalf("shallow queue floored at %d, want 1", c.chunk)
	}

	// ChunkSize caps adaptive growth and bounds the start.
	raw = Options{ChunkPolicy: ChunkAdaptive, ChunkSize: 4}
	o = raw.withDefaults()
	c = newChunkController(&o)
	if c.chunk != 4 || c.max != 4 {
		t.Fatalf("capped start = %d/%d, want 4/4", c.chunk, c.max)
	}

	// Fixed: never moves.
	raw = Options{ChunkPolicy: ChunkFixed, ChunkSize: 64}
	o = raw.withDefaults()
	c = newChunkController(&o)
	c.adapt(10_000, 5, &lc)
	c.adapt(0, 9, &lc)
	if c.chunk != 64 || c.hi != 64 {
		t.Fatalf("fixed controller moved: chunk=%d hi=%d", c.chunk, c.hi)
	}
}

// TestAdaptiveQuiescenceExactOnDisconnected drives the invariant the
// adaptive chunk must not break: progress counts are exact at every
// busy-to-idle transition, so quiescence seeds exactly one root per
// component — an undercount hangs the traversal, an overcount ends it
// early with orphaned vertices. Run under -race this also checks the
// controller adds no unsynchronized shared state.
func TestAdaptiveQuiescenceExactOnDisconnected(t *testing.T) {
	g := graph.Union(gen.Chain(500), gen.Torus2D(16, 16), gen.Star(120),
		gen.Random(400, 300, 3), gen.Chain(1), gen.Cycle(64))
	wantComps := graph.NumComponents(g)
	for name, run := range drivers() {
		for seed := uint64(0); seed < 8; seed++ {
			parent, _, err := run(g, Options{NumProcs: 8, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			roots := 0
			for _, pv := range parent {
				if pv == graph.None {
					roots++
				}
			}
			if roots != wantComps {
				t.Fatalf("%s seed=%d: %d roots, want %d — quiescence count drifted",
					name, seed, roots, wantComps)
			}
		}
	}
}

// TestAdaptiveObsCounters checks that the adaptive runtime reports its
// activity: drains and drained vertices on both drivers, controller
// growth on a deep-frontier input, and a high-water at least the
// starting chunk. The fixed policy must report no controller steps.
func TestAdaptiveObsCounters(t *testing.T) {
	g := gen.Torus2D(64, 64)
	for name, run := range drivers() {
		rec := obs.New(2)
		if _, _, err := run(g, Options{NumProcs: 2, Seed: 11, Obs: rec}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tot := rec.Snapshot().Totals
		if tot.ChunkDrains == 0 || tot.DrainedVertices == 0 {
			t.Errorf("%s: no drain accounting: %+v", name, tot)
		}
		if tot.DrainedVertices < tot.ChunkDrains {
			t.Errorf("%s: %d vertices over %d drains", name, tot.DrainedVertices, tot.ChunkDrains)
		}
		if tot.ChunkGrow == 0 {
			t.Errorf("%s: controller never grew on a deep torus frontier", name)
		}
		if tot.ChunkHighWater < AdaptiveInitChunk {
			t.Errorf("%s: chunk high-water %d below the starting chunk %d",
				name, tot.ChunkHighWater, AdaptiveInitChunk)
		}
		if tot.DrainHist == nil {
			t.Errorf("%s: no drain-size histogram", name)
		}

		rec = obs.New(2)
		if _, _, err := run(g, Options{NumProcs: 2, Seed: 11, Obs: rec, ChunkPolicy: ChunkFixed}); err != nil {
			t.Fatalf("%s fixed: %v", name, err)
		}
		tot = rec.Snapshot().Totals
		if tot.ChunkGrow != 0 || tot.ChunkShrink != 0 {
			t.Errorf("%s fixed: controller stepped (grow=%d shrink=%d)", name, tot.ChunkGrow, tot.ChunkShrink)
		}
	}
}

// TestLockstepAdaptiveDeterministic pins that the adaptive controller
// keeps the lockstep driver's determinism: two runs with equal options
// produce identical forests, cost triplets, and controller counters.
func TestLockstepAdaptiveDeterministic(t *testing.T) {
	g := gen.GeoHier(2000, gen.DefaultGeoHierParams(), 9)
	type outcome struct {
		parent  []graph.VID
		triplet string
		totals  obs.Counters
	}
	runIt := func() outcome {
		m := smpmodel.New(4)
		rec := obs.New(4)
		parent, _, err := LockstepForest(g, Options{NumProcs: 4, Seed: 17, Model: m, Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{parent, m.Triplet(), rec.Snapshot().Totals}
	}
	a, b := runIt(), runIt()
	for v := range a.parent {
		if a.parent[v] != b.parent[v] {
			t.Fatalf("forest differs at %d: %d vs %d", v, a.parent[v], b.parent[v])
		}
	}
	if a.triplet != b.triplet {
		t.Fatalf("cost triplet differs: %s vs %s", a.triplet, b.triplet)
	}
	if a.totals.ChunkDrains != b.totals.ChunkDrains ||
		a.totals.ChunkGrow != b.totals.ChunkGrow ||
		a.totals.ChunkShrink != b.totals.ChunkShrink {
		t.Fatalf("controller counters differ: %+v vs %+v", a.totals, b.totals)
	}
}
