package core

import (
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

// TestMinStealLenScaling pins the p-scaled steal threshold: max(2, p/2).
// These exact values are load-bearing — lowering them reintroduces the
// bursty re-idling on small graphs at high p, raising them starves
// thieves on two-processor runs.
func TestMinStealLenScaling(t *testing.T) {
	want := map[int]int{1: 2, 2: 2, 3: 2, 4: 2, 5: 2, 6: 3, 8: 4, 16: 8, 32: 16}
	for p, w := range want {
		if got := minStealLen(p); got != w {
			t.Errorf("minStealLen(%d) = %d, want %d", p, got, w)
		}
	}
	// The traversal must wire it from NumProcs.
	topt := Options{NumProcs: 8}
	tr, _ := newTraversal(gen.Chain(10), topt.withDefaults())
	if tr.minSteal != 4 {
		t.Errorf("traversal minSteal = %d at p=8, want 4", tr.minSteal)
	}
}

// TestChunkPolicyNames pins the CLI vocabulary.
func TestChunkPolicyNames(t *testing.T) {
	if ChunkAdaptive.String() != "adaptive" || ChunkFixed.String() != "fixed" {
		t.Fatalf("policy names: %v %v", ChunkAdaptive, ChunkFixed)
	}
	for _, name := range []string{"adaptive", "fixed"} {
		cp, err := ParseChunkPolicy(name)
		if err != nil || cp.String() != name {
			t.Fatalf("ParseChunkPolicy(%q) = %v, %v", name, cp, err)
		}
	}
	if _, err := ParseChunkPolicy("sometimes"); err == nil {
		t.Fatal("bad policy name accepted")
	}
	var zero ChunkPolicy
	if zero != ChunkAdaptive {
		t.Fatal("zero value is not the adaptive default")
	}
}

// The chunk controller's dynamics tests moved with the controller to
// internal/sched (TestControllerAdapts); what stays here is the wiring:
// the traversal must build its controllers from Options and its
// per-victim failed-steal signal with one slot per processor.
func TestControllerWiring(t *testing.T) {
	raw := Options{ChunkPolicy: ChunkAdaptive, ChunkSize: 4}
	o := raw.withDefaults()
	c := newChunkController(&o)
	if c.Chunk() != 4 || c.Max() != 4 {
		t.Fatalf("ChunkSize cap not wired: %d/%d, want 4/4", c.Chunk(), c.Max())
	}
	topt := Options{NumProcs: 8}
	tr, _ := newTraversal(gen.Chain(10), topt.withDefaults())
	tr.fail.Record(7)
	if tr.fail.Load(7) != 1 || tr.fail.Load(0) != 0 {
		t.Fatal("per-victim fail signal not wired per processor")
	}
}

// TestAdaptiveQuiescenceExactOnDisconnected drives the invariant the
// adaptive chunk must not break: progress counts are exact at every
// busy-to-idle transition, so quiescence seeds exactly one root per
// component — an undercount hangs the traversal, an overcount ends it
// early with orphaned vertices. Run under -race this also checks the
// controller adds no unsynchronized shared state.
func TestAdaptiveQuiescenceExactOnDisconnected(t *testing.T) {
	g := graph.Union(gen.Chain(500), gen.Torus2D(16, 16), gen.Star(120),
		gen.Random(400, 300, 3), gen.Chain(1), gen.Cycle(64))
	wantComps := graph.NumComponents(g)
	for name, run := range drivers() {
		for seed := uint64(0); seed < 8; seed++ {
			parent, _, err := run(g, Options{NumProcs: 8, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			roots := 0
			for _, pv := range parent {
				if pv == graph.None {
					roots++
				}
			}
			if roots != wantComps {
				t.Fatalf("%s seed=%d: %d roots, want %d — quiescence count drifted",
					name, seed, roots, wantComps)
			}
		}
	}
}

// TestAdaptiveObsCounters checks that the adaptive runtime reports its
// activity: drains and drained vertices on both drivers, controller
// growth on a deep-frontier input, and a high-water at least the
// starting chunk. The fixed policy must report no controller steps.
func TestAdaptiveObsCounters(t *testing.T) {
	g := gen.Torus2D(64, 64)
	for name, run := range drivers() {
		rec := obs.New(2)
		if _, _, err := run(g, Options{NumProcs: 2, Seed: 11, Obs: rec}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tot := rec.Snapshot().Totals
		if tot.ChunkDrains == 0 || tot.DrainedVertices == 0 {
			t.Errorf("%s: no drain accounting: %+v", name, tot)
		}
		if tot.DrainedVertices < tot.ChunkDrains {
			t.Errorf("%s: %d vertices over %d drains", name, tot.DrainedVertices, tot.ChunkDrains)
		}
		if tot.ChunkGrow == 0 {
			t.Errorf("%s: controller never grew on a deep torus frontier", name)
		}
		if tot.ChunkHighWater < AdaptiveInitChunk {
			t.Errorf("%s: chunk high-water %d below the starting chunk %d",
				name, tot.ChunkHighWater, AdaptiveInitChunk)
		}
		if tot.DrainHist == nil {
			t.Errorf("%s: no drain-size histogram", name)
		}

		rec = obs.New(2)
		if _, _, err := run(g, Options{NumProcs: 2, Seed: 11, Obs: rec, ChunkPolicy: ChunkFixed}); err != nil {
			t.Fatalf("%s fixed: %v", name, err)
		}
		tot = rec.Snapshot().Totals
		if tot.ChunkGrow != 0 || tot.ChunkShrink != 0 {
			t.Errorf("%s fixed: controller stepped (grow=%d shrink=%d)", name, tot.ChunkGrow, tot.ChunkShrink)
		}
	}
}

// TestLockstepAdaptiveDeterministic pins that the adaptive controller
// keeps the lockstep driver's determinism: two runs with equal options
// produce identical forests, cost triplets, and controller counters.
func TestLockstepAdaptiveDeterministic(t *testing.T) {
	g := gen.GeoHier(2000, gen.DefaultGeoHierParams(), 9)
	type outcome struct {
		parent  []graph.VID
		triplet string
		totals  obs.Counters
	}
	runIt := func() outcome {
		m := smpmodel.New(4)
		rec := obs.New(4)
		parent, _, err := LockstepForest(g, Options{NumProcs: 4, Seed: 17, Model: m, Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{parent, m.Triplet(), rec.Snapshot().Totals}
	}
	a, b := runIt(), runIt()
	for v := range a.parent {
		if a.parent[v] != b.parent[v] {
			t.Fatalf("forest differs at %d: %d vs %d", v, a.parent[v], b.parent[v])
		}
	}
	if a.triplet != b.triplet {
		t.Fatalf("cost triplet differs: %s vs %s", a.triplet, b.triplet)
	}
	if a.totals.ChunkDrains != b.totals.ChunkDrains ||
		a.totals.ChunkGrow != b.totals.ChunkGrow ||
		a.totals.ChunkShrink != b.totals.ChunkShrink {
		t.Fatalf("controller counters differ: %+v vs %+v", a.totals, b.totals)
	}
}
