package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/obs"
	"spantree/internal/verify"
)

// stallHook returns a chunk-boundary hook that wedges every worker —
// no beats, no claims — until the run's flag trips, which is exactly
// the shape of failure the watchdog exists to convert into a typed
// error: silently stuck, but still able to drain once aborted.
func stallHook(on *atomic.Bool, flag *fault.Flag) func(tid int) {
	return func(tid int) {
		for on.Load() && !flag.Tripped() {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func TestSpanningForestStalled(t *testing.T) {
	g := gen.RandomConnected(2000, 4000, 7)
	var flag fault.Flag
	var on atomic.Bool
	on.Store(true)
	rec := obs.New(2)
	o := WithTestHook(Options{
		NumProcs:    2,
		Seed:        1,
		StallBudget: 25 * time.Millisecond,
		Cancel:      &flag,
		Obs:         rec,
	}, stallHook(&on, &flag))
	start := time.Now()
	_, _, err := SpanningForest(g, o)
	if !errors.Is(err, fault.ErrStalled) {
		t.Fatalf("stalled run: err = %v, want ErrStalled", err)
	}
	if flag.Cause() != fault.CauseStalled {
		t.Fatalf("cause = %v, want CauseStalled", flag.Cause())
	}
	if got := rec.Total(obs.StallTrips); got != 1 {
		t.Fatalf("StallTrips = %d, want 1", got)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("stalled run took %v to abort", e)
	}
}

func TestLockstepStalled(t *testing.T) {
	g := gen.RandomConnected(2000, 4000, 7)
	var flag fault.Flag
	var on atomic.Bool
	on.Store(true)
	o := WithTestHook(Options{
		NumProcs:    2,
		Seed:        1,
		StallBudget: 25 * time.Millisecond,
		Cancel:      &flag,
	}, stallHook(&on, &flag))
	_, _, err := LockstepForest(g, o)
	if !errors.Is(err, fault.ErrStalled) {
		t.Fatalf("stalled lockstep run: err = %v, want ErrStalled", err)
	}
}

// TestWorkspaceStallReuse is the pooled half of the watchdog contract:
// a trip surfaces as ErrStalled, and after the caller's flag Reset the
// same parked team serves healthy runs again, goroutine-flat.
func TestWorkspaceStallReuse(t *testing.T) {
	g := gen.RandomConnected(2000, 4000, 7)
	w, err := NewWorkspace(g, Options{NumProcs: 2, StallBudget: 25 * time.Millisecond}, WorkspaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := w.Run(1); err != nil {
		t.Fatalf("healthy warm run: %v", err)
	}
	base := runtime.NumGoroutine()

	var on atomic.Bool
	on.Store(true)
	w.e.ts[0].o.testHook = stallHook(&on, w.Flag())
	if _, _, err := w.Run(2); !errors.Is(err, fault.ErrStalled) {
		t.Fatalf("stalled run: err = %v, want ErrStalled", err)
	}
	on.Store(false)
	w.e.ts[0].o.testHook = nil

	// The flag-reset contract is the caller's, same as after a cancel.
	w.Flag().Reset()
	for i := 0; i < 5; i++ {
		parent, _, err := w.Run(uint64(10 + i))
		if err != nil {
			t.Fatalf("run %d after stall: %v", i, err)
		}
		if err := verify.Forest(g, parent); err != nil {
			t.Fatalf("run %d after stall: %v", i, err)
		}
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Fatalf("goroutines grew across a stall trip: %d -> %d", base, after)
	}
}

// TestWorkspaceZeroAllocWatchdogArmed extends the zero-alloc guarantee
// to the hardened path: arming and disarming the watchdog every Run
// must not allocate.
func TestWorkspaceZeroAllocWatchdogArmed(t *testing.T) {
	for _, p := range []int{1, 4} {
		g := gen.Torus2D(32, 32)
		w, err := NewWorkspace(g, Options{NumProcs: p, StallBudget: time.Minute}, WorkspaceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := w.Run(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, _, err := w.Run(42); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("p=%d: AllocsPerRun with watchdog armed = %v, want 0", p, avg)
		}
		w.Close()
	}
}

// TestWatchdogNoFalseTrips: a healthy run under a tight (but feasible)
// budget completes normally — beats at chunk boundaries keep the
// monitor fed even when the budget is of the same order as the run.
func TestWatchdogNoFalseTrips(t *testing.T) {
	g := gen.Torus2D(64, 64)
	for _, shards := range []int{0, 4} {
		w, err := NewWorkspace(g, Options{NumProcs: 4, Shards: shards, StallBudget: 250 * time.Millisecond}, WorkspaceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			parent, _, err := w.Run(uint64(i))
			if err != nil {
				t.Fatalf("shards=%d run %d: %v", shards, i, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("shards=%d run %d: %v", shards, i, err)
			}
		}
		w.Close()
	}
}
