package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most want, failing the test after a generous deadline. Counting is
// inherently racy (the runtime may briefly hold finalizer or test
// goroutines), so the assertion is "returns to baseline", not equality
// at one instant.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d live, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEdgeCaseShapes is the table-driven boundary sweep: empty graph,
// single vertex, and far more processors than vertices, across both
// drivers. These are the inputs where off-by-one seeding or quiescence
// bugs bite first.
func TestEdgeCaseShapes(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		procs int
	}{
		{"empty/p1", gen.Chain(0), 1},
		{"empty/p8", gen.Chain(0), 8},
		{"single/p1", gen.Chain(1), 1},
		{"single/p8", gen.Chain(1), 8},
		{"two/p16", gen.Chain(2), 16},
		{"p-gt-n/chain", gen.Chain(5), 32},
		{"p-gt-n/star", gen.Star(7), 64},
		{"p-gt-n/disconnected", graph.Union(gen.Chain(3), gen.Chain(2)), 24},
	}
	for name, run := range drivers() {
		for _, tc := range cases {
			parent, _, err := run(tc.g, Options{NumProcs: tc.procs, Seed: 9})
			if err != nil {
				t.Fatalf("%s %s: %v", name, tc.name, err)
			}
			if len(parent) != tc.g.NumVertices() {
				t.Fatalf("%s %s: parent length %d, want %d", name, tc.name, len(parent), tc.g.NumVertices())
			}
			if err := verify.Forest(tc.g, parent); err != nil {
				t.Fatalf("%s %s: %v", name, tc.name, err)
			}
			roots := 0
			for _, pv := range parent {
				if pv == graph.None {
					roots++
				}
			}
			if want := graph.NumComponents(tc.g); roots != want {
				t.Fatalf("%s %s: %d roots, want %d", name, tc.name, roots, want)
			}
		}
	}
}

// TestCancelMidRun trips the stop flag from a chunk boundary and checks
// the typed error, the bounded response (no worker passes more than one
// further boundary), and that every worker goroutine drained.
func TestCancelMidRun(t *testing.T) {
	g := gen.Random(5000, 10000, 3)
	for name, run := range drivers() {
		for _, p := range []int{1, 2, 4, 8} {
			flag := &fault.Flag{}
			var boundaries atomic.Int64
			var lateBoundaries atomic.Int64
			before := runtime.NumGoroutine()
			parent, _, err := run(g, Options{
				NumProcs: p,
				Seed:     11,
				Cancel:   flag,
				testHook: func(tid int) {
					if flag.Tripped() {
						lateBoundaries.Add(1)
						return
					}
					if boundaries.Add(1) == int64(3*p) {
						flag.Trip(fault.CauseCanceled)
					}
				},
			})
			if !errors.Is(err, fault.ErrCanceled) {
				t.Fatalf("%s p=%d: err = %v, want ErrCanceled", name, p, err)
			}
			if parent != nil {
				t.Fatalf("%s p=%d: canceled run returned a parent array", name, p)
			}
			// Each worker checks the flag before its boundary hook, so a
			// worker can cross at most one boundary after the trip (the one
			// it had already committed to when the flag flipped).
			if late := lateBoundaries.Load(); late > int64(p) {
				t.Fatalf("%s p=%d: %d chunk boundaries crossed after cancel, want <= %d", name, p, late, p)
			}
			waitGoroutines(t, before)
		}
	}
}

// TestCancelBeforeStart covers the pre-tripped flag (an already-expired
// deadline): no team is spun up and the typed error comes straight back.
func TestCancelBeforeStart(t *testing.T) {
	g := gen.Chain(100)
	for name, run := range drivers() {
		flag := &fault.Flag{}
		flag.Trip(fault.CauseDeadline)
		before := runtime.NumGoroutine()
		parent, _, err := run(g, Options{NumProcs: 4, Seed: 1, Cancel: flag})
		if !errors.Is(err, fault.ErrDeadline) {
			t.Fatalf("%s: err = %v, want ErrDeadline", name, err)
		}
		if parent != nil {
			t.Fatalf("%s: aborted run returned a parent array", name)
		}
		waitGoroutines(t, before)
	}
}

// TestPanicIsolationDegradesToSequential injects a panic at a chunk
// boundary of one worker and checks the contract: no panic escapes, the
// caller still receives a valid spanning forest (from the sequential
// degradation), and the structured PanicError lands in Stats.
func TestPanicIsolationDegradesToSequential(t *testing.T) {
	g := gen.Random(2000, 4000, 5)
	wantComps := graph.NumComponents(g)
	for name, run := range drivers() {
		for _, p := range []int{2, 4, 8} {
			var hits atomic.Int64
			before := runtime.NumGoroutine()
			parent, stats, err := run(g, Options{
				NumProcs: p,
				Seed:     13,
				testHook: func(tid int) {
					if tid == p-1 && hits.Add(1) == 3 {
						panic("injected test panic")
					}
				},
			})
			if err != nil {
				t.Fatalf("%s p=%d: err = %v, want graceful degradation", name, p, err)
			}
			if !stats.DegradedToSeq || stats.Panic == nil {
				t.Fatalf("%s p=%d: stats = {DegradedToSeq:%v Panic:%v}, want recorded degradation",
					name, p, stats.DegradedToSeq, stats.Panic)
			}
			if stats.Panic.Value != "injected test panic" {
				t.Fatalf("%s p=%d: panic value %v not preserved", name, p, stats.Panic.Value)
			}
			if len(stats.Panic.Stack) == 0 {
				t.Fatalf("%s p=%d: panic stack not captured", name, p)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s p=%d: degraded forest invalid: %v", name, p, err)
			}
			roots := 0
			for _, pv := range parent {
				if pv == graph.None {
					roots++
				}
			}
			if roots != wantComps {
				t.Fatalf("%s p=%d: degraded forest has %d roots, want %d", name, p, roots, wantComps)
			}
			waitGoroutines(t, before)
		}
	}
}

// TestPanicRecordedInObs checks the observability side of isolation:
// the recovery increments the panicking worker's own counter slot.
func TestPanicRecordedInObs(t *testing.T) {
	g := gen.Chain(500)
	var hits atomic.Int64
	flag := &fault.Flag{}
	_, stats, err := SpanningForest(g, Options{
		NumProcs: 2,
		Seed:     7,
		Cancel:   flag,
		testHook: func(tid int) {
			if tid == 1 && hits.Add(1) == 2 {
				panic("obs probe")
			}
		},
	})
	if err != nil || stats.Panic == nil {
		t.Fatalf("err=%v panic=%v, want isolated panic", err, stats.Panic)
	}
	if stats.Panic.Worker != 1 {
		t.Fatalf("panic attributed to worker %d, want 1", stats.Panic.Worker)
	}
	if flag.Cause() != fault.CausePanicked {
		t.Fatalf("caller flag cause = %v, want panicked", flag.Cause())
	}
}

// TestFallbackHandlesPartiallyWrittenParent is the regression test for
// the fallback walk spinning forever on self-parent root sentinels: a
// partially-written claim array (what an interrupted traversal leaves
// behind, before normalizeRoots has run) must still resolve into a
// valid forest when handed to the SV completion.
func TestFallbackHandlesPartiallyWrittenParent(t *testing.T) {
	g := gen.RandomConnected(300, 600, 17)
	tr, _ := newTraversal(g, Options{NumProcs: 2, Seed: 1})
	// Simulate the interrupted state: a handful of claimed subtrees whose
	// roots still carry the parent[v] == v sentinel, everything else
	// unclaimed. Claimed edges must be real graph edges so the final
	// forest can verify.
	for _, root := range []graph.VID{0, 50, 100} {
		if !tr.claimSeq(root, graph.None) {
			t.Fatalf("seed claim of %d failed", root)
		}
		cur := root
		for range [5]int{} {
			claimed := graph.None
			for _, w := range g.Neighbors(cur) {
				if tr.claimSeq(w, cur) {
					claimed = w
					break
				}
			}
			if claimed == graph.None {
				break
			}
			cur = claimed
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := tr.fallback()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fallback: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fallback did not terminate on a sentinel-carrying parent array (walk loop regression)")
	}
	tr.normalizeRoots()
	if err := verify.Forest(g, tr.parent); err != nil {
		t.Fatalf("fallback produced an invalid forest: %v", err)
	}
	roots := 0
	for _, pv := range tr.parent {
		if pv == graph.None {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots on a connected graph, want 1", roots)
	}
}
