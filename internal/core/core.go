// Package core implements the paper's contribution: a randomized
// parallel spanning-tree algorithm for shared-memory multiprocessors
// with two main steps (Section 2, "A New Spanning Tree Algorithm For
// SMPs"):
//
//  1. Stub spanning tree: one processor generates a small portion of the
//     spanning tree by randomly walking the graph for O(p) steps; the
//     stub's vertices are distributed evenly across the processors'
//     queues as traversal seeds.
//
//  2. Work-stealing graph traversal: each processor runs the sequential
//     BFS-style traversal of Algorithm 1 from its seeds, claiming
//     (coloring) vertices and writing their parent pointers. Races to
//     color the same vertex are benign — whichever processor wins yields
//     a valid tree, only its shape differs. Idle processors steal half
//     of a random victim's queue; if even stealing finds nothing, they
//     sleep, and a quiescence protocol either hands out the next
//     uncovered component or (for pathological low-connectivity inputs,
//     when the sleeper count crosses a threshold) aborts into a
//     Shiloach-Vishkin pass over the contracted graph, the paper's
//     detection-and-fallback mechanism.
//
// The expected running time scales linearly with p for n >> p^2: each
// processor performs O((n+m)/p) work with O(1) barrier synchronizations,
// versus SV's O(log n) barriers and O((n log^2 n + m log n)/p) work.
//
// Unlike the 2004 pthreads code, vertex claiming uses a compare-and-swap
// rather than racy plain writes: Go's memory model requires synchronized
// access, and CAS preserves the algorithm's properties while making
// "only one processor succeeds at setting the vertex's parent" literal.
// The CAS lands directly on the fused parent array (graph.None means
// unclaimed; roots carry a self-parent sentinel until the end of the
// run), so claiming a vertex is one non-contiguous access instead of the
// color-load-plus-parent-write pair of a two-array port. The paper's
// multiply-colored-vertex events surface here as failed claim CASes,
// which Stats counts.
//
// The traversal hot path is batched: the owner drains its queue in
// chunks per lock acquisition, accumulates newly claimed children in a
// private buffer that it flushes with one PushBatch per chunk, and
// counts claimed vertices locally, publishing to the shared progress
// counter at chunk boundaries and (mandatorily) on every busy-to-idle
// transition — which is what keeps the quiescence invariant "all
// processors asleep ⇒ the progress count is exact" true by construction.
// The chunk itself is self-tuning by default (Options.ChunkPolicy): each
// worker's controller grows it while the local queue is deep and steals
// are succeeding and shrinks it toward 1 when thieves starve, so deep
// regular frontiers get the lock amortization of a large chunk while
// shallow or high-diameter frontiers keep their few vertices visible to
// thieves. ChunkFixed with Options.ChunkSize restores the static chunk.
package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/sched"
	"spantree/internal/smpmodel"
	"spantree/internal/spansv"
	"spantree/internal/wsq"
	"spantree/internal/xrand"
)

// DefaultChunkSize is the queue-drain chunk used when Options.ChunkSize
// is unset: the owner pays ~2 lock operations per this many vertices.
// Batching only amortizes once per-processor queue depth reaches this
// order, so inputs with n/p well below it run in the startup regime.
const DefaultChunkSize = sched.DefaultChunkSize

// Options configures a run of the algorithm.
type Options struct {
	// NumProcs is the number of virtual processors p (>= 1).
	NumProcs int
	// Seed drives the stub random walk and victim selection.
	Seed uint64
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// Obs, when non-nil, is the observability recorder the run reports
	// into (per-worker counters, optional event trace). It must have at
	// least NumProcs worker slots and should be fresh for each run —
	// Stats is derived from its totals. When nil, the run uses a private
	// recorder so Stats stays available either way.
	Obs *obs.Recorder

	// StubSteps is the length of the stub random walk; 0 means 2*p
	// (the paper specifies O(p) steps).
	StubSteps int

	// ChunkPolicy selects how the queue-drain chunk is chosen. The zero
	// value is ChunkAdaptive: a per-worker controller that grows the
	// chunk while the local queue is deep and steals are succeeding and
	// shrinks it toward 1 when thieves starve. ChunkFixed drains exactly
	// ChunkSize vertices per lock acquisition.
	ChunkPolicy ChunkPolicy

	// ChunkSize is the number of vertices a processor drains from its
	// queue per lock acquisition, and therefore also the flush cadence of
	// the per-worker child and progress batches. Under ChunkFixed, <= 0
	// means DefaultChunkSize and 1 reproduces the unbatched
	// one-lock-op-per-vertex hot path (ablation). Under ChunkAdaptive it
	// caps the controller's growth (<= 0 means AdaptiveMaxChunk).
	ChunkSize int

	// Direction selects the traversal's direction policy. The zero value
	// DirectionAuto lets workers switch to a bottom-up sweep when the
	// live frontier is a large fraction of the unclaimed remainder (on
	// graphs of at least buMinGraph vertices); DirectionTopDown pins the
	// pure push traversal (the ablation baseline).
	Direction Direction
	// BottomUpAlpha tunes the top-down to bottom-up switch: the sweep
	// starts when frontier*alpha >= remaining. <= 0 means the default
	// (defaultBottomUpAlpha).
	BottomUpAlpha int
	// Layout selects the CSR layout the traversal hot loops read. The
	// zero value LayoutWide reads graph.Graph directly; LayoutCompact
	// builds (or, through a Workspace, reuses) a uint32 graph.CSR32
	// mirror, halving the hot path's memory footprint per offset.
	Layout Layout

	// Shards partitions the execution: the vertex range is split into
	// this many contiguous shards (graph.PartitionCSR, with the
	// generator-aware cut policy picked from the graph's name), each
	// traversed by its own team of workers over a compact per-shard CSR32
	// view, and the per-shard forests are joined through the partition's
	// boundary edges by a union-find stitch pass (spanuf.Stitch). 0 or 1
	// runs the single-team path — the shards=1 special case of the same
	// engine. NumProcs is the TOTAL worker budget: with Shards <= NumProcs
	// the teams split it, with Shards > NumProcs single-worker teams run
	// in sequential waves of NumProcs. Shards > 1 requires
	// FallbackThreshold == 0 (the stitch pass needs completed shard
	// forests; the SV fallback escape hatch is a single-team remedy) and
	// ignores Layout (shard views are always compact).
	Shards int

	// Deg2Eliminate enables the degree-2 vertex elimination preprocessing
	// step described at the end of the paper's Section 2.
	Deg2Eliminate bool

	// NoSteal disables work stealing (ablation: reproduces the paper's
	// Fig. 2 load-imbalance scenario).
	NoSteal bool
	// NoStub skips the stub spanning tree and seeds only processor 0
	// (ablation).
	NoStub bool
	// StealOne replaces the steal-half queue with a Chase-Lev steal-one
	// deque (ablation of the bulk-stealing design choice).
	StealOne bool

	// FallbackThreshold, if > 0, aborts the traversal into the SV
	// fallback once at least this many processors are asleep with no
	// stealable work, the paper's detection mechanism. 0 disables the
	// fallback (the paper notes it is "almost never" triggered; the
	// degenerate-chain experiment enables it).
	FallbackThreshold int
	// IdleSleep is how long an idle processor sleeps between scans
	// (the paper's "go to sleep for a duration"); 0 means 20µs.
	IdleSleep time.Duration

	// StallBudget, if > 0, arms the stuck-run watchdog: every worker
	// bumps a padded heartbeat slot whenever it advances (drains a
	// chunk, lands a steal, scans a bottom-up quantum), and if no
	// worker anywhere advances for a full budget the run's flag trips
	// with fault.CauseStalled and the workers drain cooperatively,
	// returning fault.ErrStalled with partial stats. The watchdog
	// converts a silently wedged run (priority inversion, a straggler
	// holding the whole team, injected stalls) into a typed error while
	// the session stays reusable; workers must still reach a chunk
	// boundary to observe the trip, so a hard OS-level deadlock is out
	// of its scope. 0 disables the watchdog.
	StallBudget time.Duration

	// Cancel is the run's cooperative stop flag (nil never trips).
	// Workers poll it at chunk boundaries and idle transitions; when it
	// trips with a context cause the run drains and returns
	// fault.ErrCanceled / fault.ErrDeadline with the partial Stats.
	Cancel *fault.Flag
	// Chaos is the fault injector driving the stress suites (nil, and
	// compiled to no-ops in default builds, injects nothing).
	Chaos *chaos.Injector

	// testHook, when non-nil, runs at every worker chunk boundary (and
	// every lockstep turn) with the worker's tid. It lets the in-package
	// tests trip the cancel flag or panic at exact points without the
	// chaos build tag.
	testHook func(tid int)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.StubSteps == 0 {
		out.StubSteps = 2 * out.NumProcs
	}
	// Under ChunkAdaptive, ChunkSize <= 0 is meaningful (the controller
	// uses its own AdaptiveMaxChunk cap), so only the fixed policy
	// defaults it.
	if out.ChunkPolicy == ChunkFixed && out.ChunkSize <= 0 {
		out.ChunkSize = DefaultChunkSize
	}
	if out.BottomUpAlpha <= 0 {
		out.BottomUpAlpha = defaultBottomUpAlpha
	}
	if out.IdleSleep == 0 {
		out.IdleSleep = 20 * time.Microsecond
	}
	return out
}

// Stats reports what a run did.
type Stats struct {
	// StubSize is the number of vertices in the stub spanning tree.
	StubSize int
	// Steals counts successful steal operations; StealAttempts the
	// entries into the steal protocol (so Steals/StealAttempts is the
	// steal hit rate); StolenVertices the total vertices moved.
	Steals         int64
	StealAttempts  int64
	StolenVertices int64
	// ChunkGrow and ChunkShrink count the adaptive chunk controller's
	// steps across all workers (both 0 under ChunkPolicy fixed).
	ChunkGrow   int64
	ChunkShrink int64
	// FailedClaims counts CAS losses: a processor saw a vertex unvisited
	// but another processor claimed it first — the paper's
	// multiple-coloring race events ("less than ten vertices for a graph
	// with millions of vertices").
	FailedClaims int64
	// CursorRoots is the number of additional components discovered and
	// seeded by the quiescence protocol (0 for connected inputs).
	CursorRoots int64
	// FallbackTriggered reports whether the SV fallback ran; SVStats
	// holds its statistics when it did.
	FallbackTriggered bool
	SVStats           spansv.Stats
	// VerticesPerProc[i] is the number of vertices processor i claimed —
	// the load-balance evidence (expected ~n/p each with stealing).
	VerticesPerProc []int64
	// EdgesPerProc[i] is the number of arcs processor i scanned.
	EdgesPerProc []int64
	// Deg2Eliminated is the number of vertices removed by preprocessing.
	Deg2Eliminated int
	// LockstepRounds is the number of simulation rounds executed when
	// the deterministic lockstep driver ran (0 for concurrent runs).
	LockstepRounds int64
	// Panic is the isolated worker panic when one occurred (nil
	// otherwise); DegradedToSeq reports that the returned forest came
	// from the sequential BFS degradation path instead of the parallel
	// traversal. The forest is valid either way.
	Panic         *fault.PanicError
	DegradedToSeq bool
}

// StealHitRate returns Steals/StealAttempts, the fraction of entries
// into the steal protocol that obtained work (1.0 when no attempt was
// made — an always-busy run has nothing to regress).
func (s *Stats) StealHitRate() float64 {
	if s.StealAttempts == 0 {
		return 1
	}
	return float64(s.Steals) / float64(s.StealAttempts)
}

// MaxLoadImbalance returns max(VerticesPerProc)/mean, the headline
// load-balance figure (1.0 is perfect).
func (s *Stats) MaxLoadImbalance() float64 {
	if len(s.VerticesPerProc) == 0 {
		return 1
	}
	var sum, max int64
	for _, v := range s.VerticesPerProc {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.VerticesPerProc))
	return float64(max) / mean
}

// SpanningForest runs the algorithm and returns the forest as a parent
// array (parent[v] == graph.None marks each component's root) plus run
// statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("core: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	if opt.Obs != nil && opt.Obs.NumWorkers() < opt.NumProcs {
		return nil, Stats{}, fmt.Errorf("core: Obs has %d worker slots, need >= %d",
			opt.Obs.NumWorkers(), opt.NumProcs)
	}
	if opt.Shards > 1 && opt.FallbackThreshold > 0 {
		return nil, Stats{}, errShardsFallback
	}
	o := opt.withDefaults()

	if o.Deg2Eliminate {
		return runWithDeg2(g, o)
	}
	return run(g, o)
}

// runWithDeg2 reduces the graph, solves the reduced instance, and
// expands the forest back, charging the (parallelizable, but here
// sequential) reduction to processor 0.
func runWithDeg2(g *graph.Graph, o Options) ([]graph.VID, Stats, error) {
	red := graph.EliminateDegree2(g)
	probe0 := o.Model.Probe(0)
	// The reduction scans every vertex and edge once.
	probe0.NonContig(int64(g.NumVertices()))
	probe0.Contig(int64(len(g.Adj)))
	inner := o
	inner.Deg2Eliminate = false
	redParent, stats, err := run(red.Reduced, inner)
	if err != nil {
		return nil, stats, err
	}
	stats.Deg2Eliminated = red.NumEliminated()
	parent, err := red.ExpandForest(redParent)
	if err != nil {
		return nil, stats, fmt.Errorf("core: expanding degree-2 reduction: %w", err)
	}
	probe0.NonContig(int64(red.NumEliminated()))
	return parent, stats, nil
}

// workQueue abstracts the two queue designs (steal-half FIFO and
// Chase-Lev steal-one) behind the operations the traversal needs.
type workQueue interface {
	Push(v int32)
	PushBatch(vs []int32)
	Pop() (int32, bool)
	// PopBatch moves up to len(dst) elements into dst (owner side),
	// returning the count — the chunked drain of the hot path.
	PopBatch(dst []int32) int
	// PopBatchLen is PopBatch plus the post-drain queue length observed
	// under the same synchronization, the adaptive controller's exact
	// depth signal.
	PopBatchLen(dst []int32) (n, remaining int)
	// StealInto moves one batch from the queue into buf, returning the
	// extended slice (unchanged when nothing was stolen).
	StealInto(buf []int32) []int32
	Len() int
	// HighWater is the maximum length the queue ever reached.
	HighWater() int
}

type stealHalfQueue struct{ q *wsq.StealHalf }

func (s stealHalfQueue) Push(v int32)             { s.q.Push(v) }
func (s stealHalfQueue) PushBatch(vs []int32)     { s.q.PushBatch(vs) }
func (s stealHalfQueue) Pop() (int32, bool)       { return s.q.Pop() }
func (s stealHalfQueue) PopBatch(dst []int32) int { return s.q.PopBatch(dst) }
func (s stealHalfQueue) PopBatchLen(dst []int32) (int, int) {
	return s.q.PopBatchLen(dst)
}
func (s stealHalfQueue) StealInto(buf []int32) []int32 { return s.q.Steal(buf) }
func (s stealHalfQueue) Len() int                      { return s.q.Len() }
func (s stealHalfQueue) HighWater() int                { return s.q.HighWater() }

type chaseLevQueue struct{ q *wsq.ChaseLev }

func (c chaseLevQueue) Push(v int32) { c.q.Push(v) }
func (c chaseLevQueue) PushBatch(vs []int32) {
	for _, v := range vs {
		c.q.Push(v)
	}
}
func (c chaseLevQueue) Pop() (int32, bool) { return c.q.Pop() }
func (c chaseLevQueue) PopBatch(dst []int32) int {
	// The Chase-Lev deque has no bulk owner op; the ablation drains one
	// element per lock-free Pop.
	n := 0
	for n < len(dst) {
		v, ok := c.q.Pop()
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n
}
func (c chaseLevQueue) PopBatchLen(dst []int32) (int, int) {
	// No bulk owner op on the deque; the remaining length is a racy
	// post-drain snapshot, which is all the ablation needs.
	return c.PopBatch(dst), c.q.Len()
}
func (c chaseLevQueue) StealInto(buf []int32) []int32 {
	if v, ok := c.q.Steal(); ok {
		return append(buf, v)
	}
	return buf
}
func (c chaseLevQueue) Len() int       { return c.q.Len() }
func (c chaseLevQueue) HighWater() int { return c.q.HighWater() }

// traversal holds the shared state of the work-stealing phase of one
// team. A single-team run has one traversal covering the whole graph; a
// sharded run (engine.go) has one per shard, all writing into the same
// shared parent array over disjoint vertex ranges.
type traversal struct {
	g *graph.Graph
	// cg is the compact uint32 mirror of g, non-nil exactly when
	// Options.Layout is LayoutCompact: the hot loops read it, while the
	// cold paths (stub walk, fallback, quiescence, span reporting,
	// verification) always keep the wide g. Shard traversals have g ==
	// nil and cg set to the shard's intra-shard view: offsets indexed by
	// the local id v-lo, adjacency ids global.
	cg *graph.CSR32
	o  Options
	n  int
	// lo is the first vertex of this traversal's range [lo, lo+n): 0 for
	// a whole-graph traversal, the shard's lower bound for a shard team.
	// parent and span are indexed by GLOBAL vertex id throughout.
	lo graph.VID
	// tidBase maps this team's local worker ids onto the run's global
	// processor slots: local tid uses recorder slot and model processor
	// tidBase+tid. 0 for a whole-graph traversal.
	tidBase int
	// parent is the fused claim array: graph.None means unclaimed, any
	// other value is the claimed parent. Roots hold a self-parent
	// sentinel (parent[v] == v) while the traversal runs so they stay
	// distinguishable from unclaimed vertices; normalizeRoots rewrites
	// the sentinel to graph.None before the forest is returned. Fusing
	// claim state into the parent array halves the non-contiguous
	// accesses per scanned edge versus a separate color array and
	// shrinks per-vertex state by 4 bytes.
	parent []graph.VID
	queues []workQueue
	// span[v], in non-contiguous-access units, is the earliest virtual
	// time at which v's claim can complete: its parent's span plus the
	// cost of processing the parent. The maximum over vertices is the
	// dependency span S of the traversal, reported to the cost model so
	// Brent's bound max(W/p, S) correctly denies speedup on high-diameter
	// inputs (the paper's degenerate chain). Allocated only when a cost
	// model is attached.
	span []int64

	// minSteal is the smallest victim queue worth stealing from,
	// minStealLen(p): the constant floor of 2 scaled by p/2 at high p.
	minSteal int

	visited atomic.Int64 // claimed vertices; == n means the forest is done
	cursor  atomic.Int64 // next vertex the quiescence protocol inspects

	// fail is the per-victim failed-steal signal. Thieves whose full
	// scan comes up empty charge the specific workers still hoarding
	// sub-threshold queues; each owner's adaptive chunk controller reads
	// only its own slot at drain boundaries, so starvation shrinks the
	// drains of the workers actually being raided while well-fed workers
	// elsewhere keep their full lock amortization.
	fail *sched.FailSignal

	sleepers atomic.Int32
	abort    atomic.Bool // set when the fallback threshold trips

	// Direction-optimization state (see direction.go). dirOpt is true
	// when Options.Direction is DirectionAuto and the graph is large
	// enough to ever profit from a sweep; buAlpha is the resolved switch
	// threshold. phase is the current traversal direction; buCursor the
	// shared bottom-up sweep cursor; buClaims the running claim count of
	// the current sweep; buMu serializes phase transitions and the
	// sweep-end decision.
	dirOpt   bool
	buAlpha  int
	phase    atomic.Int32
	buCursor atomic.Int64
	buClaims atomic.Int64
	buMu     sync.Mutex

	// cancel is the run's stop flag (never nil: newTraversal substitutes
	// a private flag when the caller passed none, so panic isolation
	// always has somewhere to record its cause). inj is the chaos fault
	// injector (nil injects nothing). wd is the engine's stuck-run
	// watchdog (nil unless Options.StallBudget > 0); workers beat their
	// global slot tidBase+tid whenever they advance.
	cancel *fault.Flag
	inj    *chaos.Injector
	wd     *fault.Watchdog
	// seedMu serializes the quiescence-time seeding of new components so
	// that exactly one root is created per uncovered component.
	seedMu sync.Mutex

	// rec is the unified observability layer: all run statistics —
	// per-worker work counts, steal traffic, failed claims, seeded
	// components — live in its padded per-worker slots, and Stats is
	// derived from its snapshot after the run.
	rec *obs.Recorder
}

func newTraversal(g *graph.Graph, o Options) (*traversal, error) {
	return newTraversalQ(g, o, nil)
}

// newTraversalQ is newTraversal with an optional queue supplier (the
// Workspace path injects its pooled queues; nil allocates one-shot
// queues).
func newTraversalQ(g *graph.Graph, o Options, mk func(n int) workQueue) (*traversal, error) {
	n := g.NumVertices()
	rec := o.Obs
	if rec == nil {
		rec = obs.New(o.NumProcs)
	}
	t := &traversal{
		g:        g,
		o:        o,
		n:        n,
		parent:   make([]graph.VID, n),
		queues:   make([]workQueue, o.NumProcs),
		minSteal: minStealLen(o.NumProcs),
		fail:     sched.NewFailSignal(o.NumProcs),
		rec:      rec,
		cancel:   o.Cancel,
		inj:      o.Chaos,
		dirOpt:   o.Direction == DirectionAuto && n >= buMinGraph && len(g.Adj) >= buMinAvgDeg*n,
		buAlpha:  o.BottomUpAlpha,
	}
	if o.Layout == LayoutCompact {
		cg, err := graph.CompactOf(g)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		t.cg = cg
	}
	if t.cancel == nil {
		t.cancel = &fault.Flag{}
	}
	for i := range t.parent {
		t.parent[i] = graph.None
	}
	if o.Model != nil {
		t.span = make([]int64, n)
	}
	t.initQueues(mk)
	return t, nil
}

// initQueues builds the team's work queues. mk, when non-nil, supplies
// externally pooled queues (the Workspace path, one call per worker in
// shard-major tid order, handed the team range's vertex count);
// otherwise one-shot queues sized for the team's share of its range are
// allocated.
func (t *traversal) initQueues(mk func(n int) workQueue) {
	if mk != nil {
		for i := range t.queues {
			t.queues[i] = mk(t.n)
		}
		return
	}
	initCap := t.n/t.o.NumProcs + 16
	for i := range t.queues {
		if t.o.StealOne {
			q := wsq.NewChaseLev(64)
			// Queue high-water accounting costs a check on every push, so
			// it runs only when the caller asked to observe the run.
			q.TrackHighWater(t.o.Obs != nil)
			t.queues[i] = chaseLevQueue{q}
		} else {
			q := wsq.NewStealHalf(min(initCap, 1<<16))
			q.TrackHighWater(t.o.Obs != nil)
			t.queues[i] = stealHalfQueue{q}
		}
	}
}

// claim attempts to acquire w with parent p by a CAS directly on the
// fused parent array. Roots (p == graph.None) are claimed with the
// self-parent sentinel so they remain distinguishable from unclaimed
// vertices until normalizeRoots runs. The caller owns progress
// counting: hot paths batch it, cold paths use claimSeq.
func (t *traversal) claim(w, p graph.VID) bool {
	if p == graph.None {
		p = w
	}
	return atomic.CompareAndSwapInt32(&t.parent[w], graph.None, p)
}

// claimSeq is claim plus an immediate shared-progress update, for the
// cold paths (stub walk, quiescence seeding) where batching buys
// nothing.
func (t *traversal) claimSeq(w, p graph.VID) bool {
	if !t.claim(w, p) {
		return false
	}
	t.visited.Add(1)
	return true
}

// normalizeRoots rewrites the self-parent root sentinel of the fused
// claim array back to graph.None over this traversal's range,
// restoring the public forest representation. One streaming pass,
// charged to the team's first processor.
func (t *traversal) normalizeRoots() {
	for v := t.lo; v < t.lo+graph.VID(t.n); v++ {
		if t.parent[v] == v {
			t.parent[v] = graph.None
		}
	}
	t.o.Model.Probe(t.tidBase).Contig(int64(t.n))
}

// run executes both steps of the algorithm on g through the engine
// layer: a single-team run is the shards=1 special case of the same
// code path (see engine.go).
func run(g *graph.Graph, o Options) ([]graph.VID, Stats, error) {
	e, err := newEngine(g, o, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	defer e.wd.Close() // one-shot engine: the run owns the watchdog
	return e.run()
}

// recoverWorker records an isolated worker panic: per-worker counter and
// trace event (written on the panicking worker's own goroutine, keeping
// the recorder's single-writer contract), then the run flag trips with
// the structured PanicError so the teammates drain at their next poll.
func (t *traversal) recoverWorker(tid int, r any) {
	ow := t.rec.Worker(t.tidBase + tid)
	ow.Incr(obs.PanicsRecovered)
	ow.Trace(obs.EvPanic, 0, 0)
	t.cancel.TripPanic(&fault.PanicError{
		Worker: t.tidBase + tid, Value: r, Stack: debug.Stack(),
	})
}

// workerState is one worker's reusable hot-loop state: the per-stream
// RNG, the adaptive chunk controller, the drain/child/steal buffers, the
// cached observability handles, and the unpublished progress batch. A
// one-shot run builds one per worker goroutine on the stack; a Workspace
// keeps p of them for the life of a session and rearms them with
// resetWorkerState, which is what makes a warmed session's steady state
// allocation-free.
type workerState struct {
	r     xrand.Rand       // per-stream RNG, reseeded per run
	ctrl  sched.Controller // drain-chunk controller, rebuilt per run
	probe *smpmodel.Probe
	// ow is cached because Recorder.Worker escapes its handle to the heap
	// at every call; one handle per worker lives as long as the recorder.
	ow *obs.Worker
	// Hot-path counters batch into lc and flush at chunk boundaries;
	// per-vertex atomic stores would put a fence (XCHG) on the claim loop.
	lc obs.Local
	// chunk receives the owner-side batched drain; out accumulates the
	// children claimed while processing the chunk, flushed with a single
	// PushBatch; stealBuf receives steal loot. Together chunk and out turn
	// ~2 lock operations per vertex into ~2 per chunk. All three grow only
	// when undersized, so a pre-provisioned session never reallocates.
	chunk    []int32
	out      []int32
	stealBuf []int32
	// pend is this worker's unpublished progress: vertices claimed since
	// the last flush of the shared visited counter. It is flushed at every
	// chunk boundary and — mandatorily — before entering the idle/steal
	// phase, so whenever a worker is idle its contribution is fully
	// published and "all p asleep ⇒ visited is exact" holds by
	// construction.
	pend int64
}

// resetWorkerState (re)arms ws for one run of t's traversal: the
// controller is rebuilt from the run options, buffers are grown only
// when too small for the controller's cap, the RNG is reseeded to the
// exact stream a fresh xrand.New(seed).Split(tid+1) would produce, and
// the counter batch is zeroed. The cached recorder handle survives
// because a pooled traversal keeps one Recorder for its whole life.
func (t *traversal) resetWorkerState(tid int, ws *workerState) {
	ws.ctrl = newChunkController(&t.o)
	if cap(ws.chunk) < ws.ctrl.Max() {
		ws.chunk = make([]int32, ws.ctrl.Max())
	}
	ws.chunk = ws.chunk[:ws.ctrl.Max()]
	if cap(ws.out) < 4*ws.ctrl.Max() {
		ws.out = make([]int32, 0, 4*ws.ctrl.Max())
	}
	ws.out = ws.out[:0]
	if cap(ws.stealBuf) < 256 {
		ws.stealBuf = make([]int32, 0, 256)
	}
	ws.stealBuf = ws.stealBuf[:0]
	var base xrand.Rand
	base.Reseed(t.o.Seed)
	ws.r.ReseedSplit(&base, uint64(t.tidBase+tid)+1)
	ws.probe = t.o.Model.Probe(t.tidBase + tid)
	if ws.ow == nil {
		ws.ow = t.rec.Worker(t.tidBase + tid)
	}
	ws.lc = obs.Local{}
	ws.pend = 0
}

// flushVisited publishes ws's progress batch to the shared counter.
func (t *traversal) flushVisited(ws *workerState) {
	if ws.pend != 0 {
		t.visited.Add(ws.pend)
		ws.pend = 0
	}
}

// finishWorker drains ws's batches after its loop exits (normally or by
// panic unwinding): progress, the chunk high-water mark, counters.
func (t *traversal) finishWorker(ws *workerState) {
	t.flushVisited(ws)
	ws.ow.Max(obs.ChunkHighWater, int64(ws.ctrl.HighWater()))
	ws.lc.FlushTo(ws.ow)
}

// worker is the per-processor traversal entry point of a one-shot run:
// fresh state, then the shared loop.
func (t *traversal) worker(tid int) {
	var ws workerState
	t.resetWorkerState(tid, &ws)
	t.workerLoop(tid, &ws)
}

// workerLoop is the per-processor traversal loop: drain own queue in
// chunks, steal, and participate in the quiescence protocol when
// everything is empty.
func (t *traversal) workerLoop(tid int, ws *workerState) {
	myQ := t.queues[tid]
	defer t.finishWorker(ws)

	// fruitless counts consecutive cycles in which neither the own queue
	// nor stealing produced work. It is the "has slept for a duration"
	// patience of the paper's detection mechanism, and unlike a counter
	// local to the waiting loop it does not reset just because a victim
	// queue flickered above the steal threshold for a moment.
	fruitless := 0
	processed := 0
	// The cancel poll rides the chunk boundary the loop already pays for:
	// one extra atomic load per drain, which is what bounds the response
	// to a trip at one chunk.
	for t.visited.Load() < int64(t.n) && !t.abort.Load() && !t.cancel.Tripped() {
		if h := t.o.testHook; h != nil {
			h(tid)
		}
		t.inj.Visit(t.tidBase+tid, chaos.PointDrain)
		if t.dirOpt && t.phase.Load() == phaseBottomUp {
			// Bottom-up phase: scan one sweep quantum instead of draining
			// the queue (the queued frontier keeps for the return to
			// top-down; sweeping claims around it). The quantum always
			// advances the shared cursor or ends the sweep, so it counts
			// as watchdog progress.
			t.bottomUpQuantum(ws, myQ)
			t.wd.Beat(t.tidBase + tid)
			fruitless = 0
			continue
		}
		nPop, qrem := myQ.PopBatchLen(ws.chunk[:ws.ctrl.Chunk()])
		if nPop > 0 {
			// The progress heartbeat rides the chunk boundary the loop
			// already pays for, and only fires when the drain obtained
			// work — a team spinning idle reads as stalled.
			t.wd.Beat(t.tidBase + tid)
			ws.probe.NonContig(2) // one locked chunk dequeue
			ws.lc.Incr(obs.ChunkDrains)
			ws.lc.Add(obs.DrainedVertices, int64(nPop))
			ws.lc.Incr(obs.DrainHistBucket(nPop))
			ws.out = ws.out[:0]
			for _, v := range ws.chunk[:nPop] {
				t.process(tid, graph.VID(v), ws.probe, &ws.out, &ws.lc, &ws.pend)
			}
			if len(ws.out) > 0 {
				myQ.PushBatch(ws.out)
				ws.probe.NonContig(2 + int64(len(ws.out))) // one locked batch enqueue
			}
			t.flushVisited(ws)
			// The children just flushed are queue depth too: the next
			// drain size follows from the post-flush depth and the failed
			// steals charged against this worker specifically.
			ws.ctrl.Adapt(qrem+len(ws.out), t.fail.Load(tid), &ws.lc)
			fruitless = 0
			processed += nPop
			// The yield/flush cadence is deliberately NOT the controller's
			// chunk: it exists so the protocol behaves the same on hosts
			// with fewer cores than virtual processors (a busy goroutine
			// holding its OS thread for a whole scheduler quantum means
			// idle workers never observe stealable queues or starvation),
			// and that visibility argument doesn't change when the
			// controller shrinks. Tying it to an adaptively-shrunk chunk
			// made serial-dependency inputs yield after every vertex —
			// a 3x wall-clock penalty on the chain under oversubscription.
			if processed >= DefaultChunkSize {
				processed = 0
				ws.lc.FlushTo(ws.ow)
				// The direction check shares the yield cadence: one
				// frontier poll per DefaultChunkSize vertices processed.
				if t.dirOpt && t.phase.Load() == phaseTopDown {
					if frontier, ok := t.buShouldSwitch(ws.probe); ok {
						t.buEnter(frontier, ws.ow)
					}
				}
				runtime.Gosched()
			}
			continue
		}
		if fruitless == 0 {
			// Busy-to-idle transition: local work ran dry; make the
			// progress and counter batches visible before the idle/steal
			// phase (the quiescence protocol depends on the former).
			t.flushVisited(ws)
			ws.lc.FlushTo(ws.ow)
			ws.ow.Incr(obs.IdleTransitions)
			ws.ow.Trace(obs.EvIdle, 0, 0)
		}
		if !t.o.NoSteal {
			if w, ok := t.trySteal(tid, &ws.r, myQ, &ws.stealBuf, ws.probe, ws.ow); ok {
				t.wd.Beat(t.tidBase + tid)
				// Process one stolen vertex immediately: a thief that only
				// re-queued its loot could lose it to another thief before
				// ever popping, livelocking a one-element frontier.
				ws.out = ws.out[:0]
				t.process(tid, w, ws.probe, &ws.out, &ws.lc, &ws.pend)
				if len(ws.out) > 0 {
					myQ.PushBatch(ws.out)
					ws.probe.NonContig(2 + int64(len(ws.out)))
				}
				t.flushVisited(ws)
				fruitless = 0
				continue
			}
		}
		if !t.idleOnce(tid, myQ, fruitless, ws.probe, ws.ow) {
			return // done or aborted
		}
		fruitless++
	}
}

// process scans v's neighbors, claiming the unvisited ones (Algorithm 1,
// lines 2.2-2.7). Claimed children are appended to out (the caller's
// chunk-local buffer, flushed with one PushBatch) and counted in pend
// (the caller's unpublished progress). A chaos stall injected here
// widens the window between the parent[w] load and the claim CAS — the
// deterministic stand-in for a CAS retry storm.
func (t *traversal) process(tid int, v graph.VID, probe *smpmodel.Probe,
	out *[]int32, lc *obs.Local, pend *int64) {
	t.inj.Visit(t.tidBase+tid, chaos.PointClaim)
	lc.Incr(obs.VerticesClaimed)
	if t.cg != nil {
		t.processCompact(v, probe, out, lc, pend)
		return
	}
	nb := t.g.Neighbors(v)
	probe.NonContig(1) // load adjacency offset
	probe.Contig(int64(len(nb)))
	lc.Add(obs.EdgesScanned, int64(len(nb)))
	var childSpan int64
	if t.span != nil {
		// A child claimed while processing v completes no earlier than
		// v's own claim plus the cost of scanning v's neighborhood.
		// Span cells are accessed atomically because bottom-up sweeps
		// read a claimed neighbor's span concurrently with this store.
		childSpan = atomic.LoadInt64(&t.span[v]) + procCostNC(len(nb))
	}
	for _, w := range nb {
		probe.NonContig(1) // fused claim-state load of parent[w]
		if atomic.LoadInt32(&t.parent[w]) != graph.None {
			continue
		}
		if t.claim(w, v) {
			probe.NonContig(1) // winning claim CAS
			if t.span != nil {
				atomic.StoreInt64(&t.span[w], childSpan)
			}
			*out = append(*out, int32(w))
			*pend++
		} else {
			lc.Incr(obs.FailedClaims)
		}
	}
}

// procCostNC is the modeled non-contiguous cost of processing one vertex
// of the given degree on the batched hot path: the amortized share of the
// chunked dequeue and batched enqueue locks, the adjacency offset load,
// one fused claim-state access per incident arc, and the winning claim
// CAS for one child.
func procCostNC(deg int) int64 { return 4 + int64(deg) }

// spanMax returns the traversal's dependency span over its range: the
// maximum claim-completion time in non-contiguous units, which the
// engine folds across concurrent teams and reports to the cost model.
// It runs after the final join and before normalizeRoots, so claimed
// vertices (roots included, via the self-parent sentinel) are exactly
// those with parent != graph.None.
func (t *traversal) spanMax() int64 {
	if t.span == nil {
		return 0
	}
	var max int64
	for v := 0; v < t.n; v++ {
		gv := t.lo + graph.VID(v)
		if t.parent[gv] == graph.None {
			continue
		}
		var deg int
		if t.g != nil {
			deg = t.g.Degree(gv)
		} else {
			deg = t.cg.Degree(graph.VID(v))
		}
		if s := t.span[gv] + procCostNC(deg); s > max {
			max = s
		}
	}
	return max
}

// trySteal picks a victim by size-biased two-choice sampling: probe two
// random victims through the atomic Len mirror and steal from the longer
// — the classic power-of-two-choices bias toward loaded queues without
// scanning all p. When both samples are below the p-scaled t.minSteal
// threshold it falls back to the full id-order scan from a random start,
// so a lone long queue is still always found. On success it queues all
// but the first stolen vertex and returns the first for the caller to
// process directly. A fully fruitless scan charges a failed steal
// against each victim still holding a non-empty sub-threshold queue —
// those are the workers hiding frontier in their drains — and their
// chunk controllers read their own slot as the signal to shrink and
// keep work visible. Empty victims are not charged (they are starving
// too), and neither is the thief itself.
func (t *traversal) trySteal(tid int, r *xrand.Rand, myQ workQueue,
	stealBuf *[]int32, probe *smpmodel.Probe, ow *obs.Worker) (graph.VID, bool) {
	p := t.o.NumProcs
	if p == 1 {
		return 0, false
	}
	t.inj.Visit(t.tidBase+tid, chaos.PointSteal)
	ow.Incr(obs.StealAttempts)
	// A vetoed attempt fails before scanning any victim — the injected
	// delayed/failed-steal fault; the thief falls through to the idle
	// protocol and retries, so no work is lost, only deferred.
	if t.inj.VetoSteal(t.tidBase + tid) {
		ow.Incr(obs.StealFailures)
		return 0, false
	}
	// Two independent draws over the p-1 non-self victims (they may
	// coincide); each Len probe is one polling access of the size mirror.
	a := (tid + 1 + r.Intn(p-1)) % p
	b := (tid + 1 + r.Intn(p-1)) % p
	probe.NonContig(2)
	if t.queues[b].Len() > t.queues[a].Len() {
		a = b
	}
	if t.queues[a].Len() >= t.minSteal {
		if w, ok := t.stealFrom(a, myQ, stealBuf, probe, ow); ok {
			return w, true
		}
	}
	start := r.Intn(p)
	for i := 0; i < p; i++ {
		victim := (start + i) % p
		if victim == tid {
			continue
		}
		if t.queues[victim].Len() < t.minSteal {
			continue
		}
		if w, ok := t.stealFrom(victim, myQ, stealBuf, probe, ow); ok {
			return w, true
		}
	}
	ow.Incr(obs.StealFailures)
	for i := 0; i < p; i++ {
		victim := (start + i) % p
		if victim == tid {
			continue
		}
		if l := t.queues[victim].Len(); l > 0 && l < t.minSteal {
			t.fail.Record(victim)
		}
	}
	// A fruitless scan costs one polling access before the processor
	// sleeps; sleeping itself is free in the cost model, matching the
	// paper's condition-variable design.
	probe.NonContig(1)
	return 0, false
}

// stealFrom attempts one steal-half operation against victim, pushing
// all but the first stolen vertex onto myQ and returning the first.
func (t *traversal) stealFrom(victim int, myQ workQueue, stealBuf *[]int32,
	probe *smpmodel.Probe, ow *obs.Worker) (graph.VID, bool) {
	*stealBuf = (*stealBuf)[:0]
	*stealBuf = t.queues[victim].StealInto(*stealBuf)
	if len(*stealBuf) == 0 {
		return 0, false
	}
	ow.Incr(obs.StealSuccesses)
	ow.Add(obs.StolenVertices, int64(len(*stealBuf)))
	ow.Trace(obs.EvSteal, int64(victim), int64(len(*stealBuf)))
	probe.NonContig(int64(len(*stealBuf)) + 2) // move the loot
	myQ.PushBatch((*stealBuf)[1:])
	return graph.VID((*stealBuf)[0]), true
}

// idleOnce performs one quantum of the sleeping and quiescence protocol
// and returns true if the worker should retry its work sources, false if
// the traversal is over (done or aborted). fruitless is the caller's
// count of consecutive unproductive cycles.
//
// Quiescence invariant: when all p processors are asleep, no processor
// is processing a vertex, so no claims are in flight; every vertex
// adjacent to a colored vertex is itself colored, hence the uncolored
// vertices form whole components. The elected leader (the processor
// that observes sleepers == p) may therefore claim the next uncolored
// vertex as a fresh root — that is how disconnected inputs become
// spanning forests with exactly one root per component.
func (t *traversal) idleOnce(tid int, myQ workQueue, fruitless int, probe *smpmodel.Probe, ow *obs.Worker) bool {
	t.inj.Visit(t.tidBase+tid, chaos.PointIdle)
	t.sleepers.Add(1)
	defer t.sleepers.Add(-1)
	if t.visited.Load() >= int64(t.n) || t.abort.Load() || t.cancel.Tripped() {
		return false
	}
	s := t.sleepers.Load()
	// Paper's detection mechanism: enough sleepers => switch to SV. A
	// processor only counts after several fruitless cycles (the paper's
	// "go to sleep for a duration"), so the transient idleness of
	// startup and wind-down does not trip the threshold.
	if th := t.o.FallbackThreshold; th > 0 && fruitless >= 8 && int(s) >= th {
		if t.abort.CompareAndSwap(false, true) {
			ow.Incr(obs.FallbackTriggers)
			ow.Trace(obs.EvFallback, int64(s), 0)
		}
		return false
	}
	if int(s) == t.o.NumProcs {
		// Everyone is asleep: elect a leader to seed the next uncovered
		// component from the cursor. When the cursor is exhausted every
		// vertex has been inspected and colored, so visited == n and the
		// caller's loop exits on the next check.
		t.trySeedNextComponent(tid, myQ, probe)
		return true
	}
	if fruitless < 4 {
		runtime.Gosched()
	} else {
		time.Sleep(t.o.IdleSleep)
	}
	return true
}

// trySeedNextComponent claims the next uncolored vertex as a fresh root
// under the seeding mutex. The re-checks inside the mutex make the
// quiescence decision sound: with all p processors asleep and every
// queue empty, no claim is in flight, so every vertex adjacent to a
// colored vertex is already colored and the uncolored set is a union of
// whole components — claiming one vertex per quiescence episode yields
// exactly one root per component.
func (t *traversal) trySeedNextComponent(tid int, myQ workQueue, probe *smpmodel.Probe) bool {
	t.seedMu.Lock()
	defer t.seedMu.Unlock()
	if int(t.sleepers.Load()) != t.o.NumProcs {
		return false
	}
	for i := 0; i < t.o.NumProcs; i++ {
		if t.queues[i].Len() > 0 {
			return false
		}
	}
	v, ok := t.nextUncolored(probe)
	if !ok {
		return false
	}
	if !t.claimSeq(v, graph.None) {
		return false // unreachable at true quiescence, kept for safety
	}
	ow := t.rec.Worker(t.tidBase + tid)
	ow.Incr(obs.SeededComponents)
	ow.Trace(obs.EvComponentSeed, int64(v), 0)
	myQ.Push(int32(v))
	return true
}

// nextUncolored advances the shared cursor to the next uncolored vertex
// of this traversal's range.
func (t *traversal) nextUncolored(probe *smpmodel.Probe) (graph.VID, bool) {
	for {
		i := t.cursor.Add(1) - 1
		if i >= int64(t.n) {
			return 0, false
		}
		probe.NonContig(1)
		if atomic.LoadInt32(&t.parent[t.lo+graph.VID(i)]) == graph.None {
			return t.lo + graph.VID(i), true
		}
	}
}

// fallback completes a partially grown forest with Shiloach-Vishkin, the
// paper's remedy for pathological low-connectivity inputs: the grown
// subtrees are contracted to super-vertices (their roots) and SV grafts
// the rest.
func (t *traversal) fallback() (spansv.Stats, error) {
	n := t.n
	// Resolve every colored vertex to the root of its subtree, path-
	// compressing as we go; uncolored vertices are their own stars.
	d := make([]int32, n)
	rootOf := make([]graph.VID, n)
	for i := range rootOf {
		rootOf[i] = graph.None
	}
	var path []graph.VID
	for v := 0; v < n; v++ {
		if rootOf[v] != graph.None {
			continue
		}
		path = path[:0]
		cur := graph.VID(v)
		// The walk must also stop on the self-parent root sentinel: the
		// fallback normally runs after normalizeRoots, but a partially
		// written parent array (an interrupted run, or a caller reusing
		// one) may still carry sentinels, and following parent[cur] == cur
		// would spin here forever.
		for rootOf[cur] == graph.None && t.parent[cur] != graph.None && t.parent[cur] != cur {
			path = append(path, cur)
			cur = t.parent[cur]
		}
		root := cur
		if rootOf[cur] != graph.None {
			root = rootOf[cur]
		}
		rootOf[cur] = root
		for _, u := range path {
			rootOf[u] = root
		}
	}
	for v := 0; v < n; v++ {
		d[v] = int32(rootOf[v])
	}
	t.o.Model.Probe(0).NonContig(int64(2 * n))

	edges, svStats, err := spansv.GraftFrom(t.g, d, spansv.Options{
		NumProcs: t.o.NumProcs,
		Model:    t.o.Model,
		Obs:      t.rec,
		Cancel:   t.cancel,
		Chaos:    t.inj,
	})
	if err != nil {
		return svStats, fmt.Errorf("core: SV fallback: %w", err)
	}
	// Attach each graft edge: the graft (v,w) merged root(v)'s tree under
	// w's component. Re-root v's subtree so that v becomes its root, then
	// point v at w. Total re-rooting work is bounded by the contracted
	// forest size.
	for _, e := range edges {
		rerootAt(t.parent, e.U)
		t.parent[e.U] = e.V
	}
	return svStats, nil
}

// rerootAt reverses the parent pointers on the path from v to its root,
// making v the root of its tree. The self-parent root sentinel of the
// fused claim array terminates the walk like graph.None does: on a
// partially-written parent array (the panic/cancel degradation paths
// hand one to the fallback) a sentinel mid-path would otherwise bounce
// the reversal back on itself and detach the subtree above it.
func rerootAt(parent []graph.VID, v graph.VID) {
	prev := graph.None
	cur := v
	for cur != graph.None {
		next := parent[cur]
		if next == cur {
			next = graph.None
		}
		parent[cur] = prev
		prev = cur
		cur = next
	}
}
