package core

import (
	"fmt"

	"spantree/internal/obs"
)

// ChunkPolicy selects how a worker's queue-drain chunk is chosen.
//
// The batched hot path made the drain chunk the knob that decides
// whether the traversal load-balances: a big chunk amortizes lock
// traffic but hides up to a chunk's worth of frontier from thieves (the
// drained vertices plus the not-yet-flushed children), while a small
// chunk keeps work visible at a per-vertex lock cost. No fixed value
// fits all graph families — deep regular frontiers (torus, geometric)
// want the cap, shallow or high-diameter frontiers (chains, small
// inputs at high p) want ~1 — so the default is a per-worker controller
// that moves between the two regimes at run time.
type ChunkPolicy int

const (
	// ChunkAdaptive is the default policy: each worker grows its drain
	// chunk (doubling, up to the cap) while its queue stays deep and no
	// steal attempt is failing, and shrinks it (halving, toward 1) when
	// thieves report failed steals or the queue runs shallow.
	ChunkAdaptive ChunkPolicy = iota
	// ChunkFixed drains exactly Options.ChunkSize vertices per lock
	// acquisition — the pre-adaptive behavior, selected by the CLIs'
	// -chunk flag and used by the chunk-size ablations.
	ChunkFixed
)

// String returns the CLI name of the policy.
func (cp ChunkPolicy) String() string {
	if cp == ChunkFixed {
		return "fixed"
	}
	return "adaptive"
}

// ParseChunkPolicy converts a CLI name into a ChunkPolicy.
func ParseChunkPolicy(s string) (ChunkPolicy, error) {
	switch s {
	case "adaptive":
		return ChunkAdaptive, nil
	case "fixed":
		return ChunkFixed, nil
	}
	return 0, fmt.Errorf("core: unknown chunk policy %q (want adaptive or fixed)", s)
}

const (
	// AdaptiveInitChunk is the drain chunk an adaptive worker starts
	// from: small enough that shallow frontiers never hide more than a
	// few vertices from thieves, three doublings from the fixed default.
	AdaptiveInitChunk = 8
	// AdaptiveMaxChunk is the adaptive controller's default growth cap
	// (Options.ChunkSize overrides it when set). Deep regular frontiers
	// reach it within ~5 doublings, beyond which the lock cost per
	// vertex is already down in the noise.
	AdaptiveMaxChunk = 256
)

// minStealLen returns the smallest victim queue worth stealing from at
// processor count p: max(2, p/2). The floor of 2 leaves a single
// in-flight vertex to its owner — ripping it would only relocate the
// serial bottleneck while thrashing the queues. The p/2 scaling
// addresses the bursty re-idling seen at high p on small graphs: with
// many thieves, halving a 2-element queue hands each of them at most
// one vertex, which they exhaust immediately and re-idle, so the
// steal threshold must grow with the number of mouths a steal feeds.
// This is also what makes the paper's starvation scenario real —
// "queues of the busy processors may contain only a few elements (in
// extreme cases ... only one element). In this case work awaits busy
// processors while idle processors starve" — and therefore what the
// idle-detection fallback exists to catch.
func minStealLen(p int) int {
	if m := p / 2; m > 2 {
		return m
	}
	return 2
}

// chunkController adapts one worker's drain chunk between lock-cost
// amortization (big chunks) and frontier visibility for thieves (small
// chunks). It is consulted once per drain, entirely from worker-local
// state plus one atomic load of the traversal-wide failed-steal count,
// so it adds no coherence traffic to the hot path.
type chunkController struct {
	chunk int // next drain size
	max   int // growth cap (== chunk under ChunkFixed)
	hi    int // largest chunk reached (ChunkHighWater)
	fixed bool
	// lastFail is the traversal-wide failed-steal count observed at the
	// previous decision; any movement since means thieves are starving.
	lastFail int64
}

func newChunkController(o *Options) chunkController {
	if o.ChunkPolicy == ChunkFixed {
		k := o.ChunkSize
		return chunkController{chunk: k, max: k, hi: k, fixed: true}
	}
	max := o.ChunkSize
	if max <= 0 {
		max = AdaptiveMaxChunk
	}
	c := AdaptiveInitChunk
	if c > max {
		c = max
	}
	return chunkController{chunk: c, max: max, hi: c}
}

// adapt updates the drain chunk after a drain: qlen is the worker's
// post-flush queue depth and failNow the traversal-wide failed-steal
// count. Shrinking halves toward 1 whenever a steal failed since the
// last decision (work must become visible to thieves) or the queue is
// too shallow to fill the current chunk; growing doubles toward the cap
// only while the queue is deep enough to fill several chunks AND no
// steal is failing. Grow/shrink steps land in the observability batch.
func (c *chunkController) adapt(qlen int, failNow int64, lc *obs.Local) {
	if c.fixed {
		return
	}
	starved := failNow != c.lastFail
	c.lastFail = failNow
	switch {
	case starved || qlen < c.chunk:
		if c.chunk > 1 {
			c.chunk >>= 1
			lc.Incr(obs.ChunkShrink)
		}
	case qlen >= 4*c.chunk && c.chunk < c.max:
		c.chunk <<= 1
		if c.chunk > c.max {
			c.chunk = c.max
		}
		if c.chunk > c.hi {
			c.hi = c.chunk
		}
		lc.Incr(obs.ChunkGrow)
	}
}
