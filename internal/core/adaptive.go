package core

// The adaptive chunk controller, chunk policy, and p-scaled steal
// threshold were grown here and then extracted into internal/sched so
// the whole tree — this traversal and every parallel-for on the par
// substrate — runs one implementation of chunk control and steal
// policy. This file keeps the core-level names as aliases for
// compatibility (the public spantree package re-exports them).

import "spantree/internal/sched"

// ChunkPolicy selects how a worker's queue-drain chunk is chosen.
//
// The batched hot path made the drain chunk the knob that decides
// whether the traversal load-balances: a big chunk amortizes lock
// traffic but hides up to a chunk's worth of frontier from thieves (the
// drained vertices plus the not-yet-flushed children), while a small
// chunk keeps work visible at a per-vertex lock cost. No fixed value
// fits all graph families, so the default is a per-worker controller
// that moves between the two regimes at run time. See sched.ChunkPolicy.
type ChunkPolicy = sched.ChunkPolicy

const (
	// ChunkAdaptive is the default policy: grow the drain chunk while
	// the queue stays deep and no steal against this worker is failing,
	// shrink it on starvation or a shallow queue.
	ChunkAdaptive = sched.ChunkAdaptive
	// ChunkFixed drains exactly Options.ChunkSize vertices per lock
	// acquisition — the pre-adaptive behavior, selected by the CLIs'
	// -chunk flag and used by the chunk-size ablations.
	ChunkFixed = sched.ChunkFixed

	// AdaptiveInitChunk is the drain chunk an adaptive worker starts from.
	AdaptiveInitChunk = sched.AdaptiveInitChunk
	// AdaptiveMaxChunk is the adaptive controller's default growth cap
	// (Options.ChunkSize overrides it when set).
	AdaptiveMaxChunk = sched.AdaptiveMaxChunk
)

// ParseChunkPolicy converts a CLI name into a ChunkPolicy.
func ParseChunkPolicy(s string) (ChunkPolicy, error) { return sched.ParseChunkPolicy(s) }

// minStealLen returns the smallest victim queue worth stealing from at
// processor count p. See sched.MinStealLen for the rationale.
func minStealLen(p int) int { return sched.MinStealLen(p) }

func newChunkController(o *Options) sched.Controller {
	return sched.NewController(o.ChunkPolicy, o.ChunkSize)
}
