//go:build chaos

package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

// The chaos stress suite: drive both drivers through >= 50 seeded
// perturbation schedules each and prove the invariants the hardened
// runtime guarantees — termination, exactly-once claiming (every vertex
// has exactly one parent and the result verifies as a forest), and one
// root per component. Schedules are deterministic per seed, so any
// failure replays from the seed in the test name.

const stressSeeds = 50

func stressGraphs() []*graph.Graph {
	return []*graph.Graph{
		gen.Random(800, 1600, 3),
		graph.Union(gen.Chain(50), gen.Star(40), gen.Random(200, 300, 9)),
		gen.Torus2D(16, 16),
	}
}

func runStress(t *testing.T, name string, run func(*graph.Graph, Options) ([]graph.VID, Stats, error)) {
	t.Helper()
	for gi, g := range stressGraphs() {
		wantComps := graph.NumComponents(g)
		for seed := uint64(1); seed <= stressSeeds; seed++ {
			p := 2 + int(seed%7)
			inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
			done := make(chan struct{})
			var parent []graph.VID
			var err error
			go func() {
				defer close(done)
				parent, _, err = run(g, Options{NumProcs: p, Seed: seed, Chaos: inj})
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				t.Fatalf("%s g%d seed=%d p=%d: run did not terminate under chaos", name, gi, seed, p)
			}
			if err != nil {
				t.Fatalf("%s g%d seed=%d p=%d: %v", name, gi, seed, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s g%d seed=%d p=%d: %v", name, gi, seed, p, err)
			}
			roots := 0
			for _, pv := range parent {
				if pv == graph.None {
					roots++
				}
			}
			if roots != wantComps {
				t.Fatalf("%s g%d seed=%d p=%d: %d roots, want %d", name, gi, seed, p, roots, wantComps)
			}
			if inj.Injections() == 0 && g.NumVertices() > 100 {
				t.Fatalf("%s g%d seed=%d p=%d: chaos injected nothing (layer not wired?)", name, gi, seed, p)
			}
		}
	}
}

func TestChaosStressConcurrent(t *testing.T) { runStress(t, "concurrent", SpanningForest) }
func TestChaosStressLockstep(t *testing.T)   { runStress(t, "lockstep", LockstepForest) }

// TestChaosStressSharded drives the sharded engine — shard teams in
// both wave regimes, the quiescence reseed path, and the stitch phase —
// through the same >= 50 seeded perturbation schedules. The shard count
// varies with the seed so the sweep crosses S <= p and S > p, shard
// counts that fragment the disconnected graph, and counts that do not
// divide n.
func TestChaosStressSharded(t *testing.T) {
	runStress(t, "sharded", func(g *graph.Graph, o Options) ([]graph.VID, Stats, error) {
		o.Shards = 2 + int(o.Seed%6)
		return SpanningForest(g, o)
	})
}

// TestChaosAimedPanicStillYieldsValidTree fires an InjectedPanic at a
// chosen chaos point of a chosen worker and checks the graceful
// degradation: a valid forest plus the structured PanicError in Stats.
func TestChaosAimedPanicStillYieldsValidTree(t *testing.T) {
	g := gen.Random(1500, 3000, 21)
	wantComps := graph.NumComponents(g)
	points := []chaos.Point{chaos.PointDrain, chaos.PointClaim, chaos.PointSteal, chaos.PointIdle}
	for name, run := range drivers() {
		for _, pt := range points {
			const p = 4
			cfg := chaos.Config{
				Seed: 5, Workers: p,
				PanicPoint: pt, PanicWorker: p - 1, PanicAfter: 2,
			}
			inj := chaos.New(cfg, nil)
			before := runtime.NumGoroutine()
			parent, stats, err := run(g, Options{NumProcs: p, Seed: 3, Chaos: inj})
			if err != nil {
				t.Fatalf("%s point=%v: err = %v, want graceful degradation", name, pt, err)
			}
			if stats.Panic == nil {
				// Not every run visits every point (steal/idle need real
				// contention, which the lockstep driver reaches rarely);
				// a panic-free run must then simply be a valid normal run.
				if !stats.DegradedToSeq {
					if err := verify.Forest(g, parent); err != nil {
						t.Fatalf("%s point=%v: %v", name, pt, err)
					}
					continue
				}
				t.Fatalf("%s point=%v: degraded without a recorded panic", name, pt)
			}
			ip, ok := stats.Panic.Value.(chaos.InjectedPanic)
			if !ok {
				t.Fatalf("%s point=%v: panic value %v is not an InjectedPanic", name, pt, stats.Panic.Value)
			}
			if ip.Worker != p-1 || ip.Point != pt {
				t.Fatalf("%s point=%v: panic fired at %+v", name, pt, ip)
			}
			if !stats.DegradedToSeq {
				t.Fatalf("%s point=%v: panic recorded but run not degraded", name, pt)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s point=%v: degraded forest invalid: %v", name, pt, err)
			}
			roots := 0
			for _, pv := range parent {
				if pv == graph.None {
					roots++
				}
			}
			if roots != wantComps {
				t.Fatalf("%s point=%v: %d roots, want %d", name, pt, roots, wantComps)
			}
			waitGoroutines(t, before)
		}
	}
}

// TestChaosWithCancellation combines perturbation with mid-run cancels:
// under arbitrary seeded schedules a tripped flag must still produce
// ErrCanceled and a drained team.
func TestChaosWithCancellation(t *testing.T) {
	g := gen.Random(3000, 6000, 2)
	for name, run := range drivers() {
		for seed := uint64(1); seed <= 10; seed++ {
			p := 2 + int(seed%4)
			inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
			flag := &fault.Flag{}
			var hooks atomic.Int64
			before := runtime.NumGoroutine()
			parent, _, err := run(g, Options{
				NumProcs: p, Seed: seed, Cancel: flag, Chaos: inj,
				testHook: func(tid int) {
					if hooks.Add(1) >= int64(2*p) {
						flag.Trip(fault.CauseCanceled)
					}
				},
			})
			if !errors.Is(err, fault.ErrCanceled) {
				t.Fatalf("%s seed=%d: err = %v, want ErrCanceled", name, seed, err)
			}
			if parent != nil {
				t.Fatalf("%s seed=%d: canceled run returned a parent array", name, seed)
			}
			waitGoroutines(t, before)
		}
	}
}
