package core

// The compact-layout half of the memory-traffic work: the traversal can
// read its CSR through graph.CSR32 — uint32 offsets and adjacency in
// one arena-backed allocation — instead of the wide int64-offset
// graph.Graph. Hot loops get duplicated compact variants (one branch
// per vertex on the layout, no per-edge interface dispatch); cold paths
// (stub walk, fallback, quiescence, verification) always stay on the
// wide graph, which is kept alongside the compact mirror.

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// Layout selects the CSR layout the traversal hot path reads.
type Layout int

const (
	// LayoutWide is the default: the int64-offset graph.Graph.
	LayoutWide Layout = iota
	// LayoutCompact reads a uint32 arena (graph.CSR32) built once per
	// run — or once per Workspace, so pooled sessions stay
	// allocation-free. Requires n and the adjacency length to fit uint32.
	LayoutCompact
)

// String returns the CLI name of the layout.
func (l Layout) String() string {
	if l == LayoutCompact {
		return "compact"
	}
	return "wide"
}

// ParseLayout converts a CLI name into a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "wide":
		return LayoutWide, nil
	case "compact":
		return LayoutCompact, nil
	}
	return 0, fmt.Errorf("core: unknown layout %q (want wide or compact)", s)
}

// processCompact is the compact-layout twin of process's neighbor loop:
// identical claims in identical order (the compact arena preserves
// adjacency order, so p = 1 forests are byte-identical across layouts),
// with the offset load and adjacency stream charged to the compact
// access classes.
func (t *traversal) processCompact(v graph.VID, probe *smpmodel.Probe,
	out *[]int32, lc *obs.Local, pend *int64) {
	// The compact view's offsets are indexed by local id (v - lo, a no-op
	// for whole-graph traversals); its adjacency ids are global.
	nb := t.cg.Neighbors32(v - t.lo)
	probe.NonContigC(1) // load adjacency offset (uint32 arena)
	probe.ContigC(int64(len(nb)))
	lc.Add(obs.EdgesScanned, int64(len(nb)))
	var childSpan int64
	if t.span != nil {
		childSpan = atomic.LoadInt64(&t.span[v]) + procCostNC(len(nb))
	}
	for _, w := range nb {
		probe.NonContig(1) // fused claim-state load of parent[w]
		if atomic.LoadInt32(&t.parent[w]) != graph.None {
			continue
		}
		if t.claim(graph.VID(w), v) {
			probe.NonContig(1) // winning claim CAS
			if t.span != nil {
				atomic.StoreInt64(&t.span[w], childSpan)
			}
			*out = append(*out, int32(w))
			*pend++
		} else {
			lc.Incr(obs.FailedClaims)
		}
	}
}
