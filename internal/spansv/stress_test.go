package spansv

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/verify"
)

// These tests are the data-race certificate for SV on the shared dynamic
// scheduler (par.ForDynamic), in the style of the wsq batch stress
// tests: run the real concurrent scheduler — range publishing, chunked
// drains, steal-half on index ranges — under -race across policies and
// processor counts, and model-check the results against sequential
// references that do not depend on the schedule.

// TestSVDynamicSchedulerStress drives the full graft-and-shortcut loop
// on skewed and multi-component inputs with every chunk policy. The
// hub-heavy star slabs concentrate the election sweep's work in a few
// indices, which is exactly the shape that makes thieves raid the
// loaded worker's range.
func TestSVDynamicSchedulerStress(t *testing.T) {
	g := graph.Union(gen.Star(4000), gen.Torus2D(32, 32), gen.Chain(700),
		gen.Random(1500, 2500, 5), gen.Star(900), gen.Chain(1))
	wantComps := graph.NumComponents(g)
	cfgs := []struct {
		policy par.ChunkPolicy
		size   int
	}{
		{par.ChunkAdaptive, 0}, {par.ChunkAdaptive, 4},
		{par.ChunkFixed, 1}, {par.ChunkFixed, 64},
	}
	for _, p := range []int{1, 2, 4, 8} {
		for _, c := range cfgs {
			for rep := 0; rep < 3; rep++ {
				parent, _, err := SpanningForest(g, Options{
					NumProcs: p, ChunkPolicy: c.policy, ChunkSize: c.size,
				})
				if err != nil {
					t.Fatalf("p=%d %v/%d: %v", p, c.policy, c.size, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("p=%d %v/%d: %v", p, c.policy, c.size, err)
				}
				roots := 0
				for _, pv := range parent {
					if pv == graph.None {
						roots++
					}
				}
				if roots != wantComps {
					t.Fatalf("p=%d %v/%d: %d roots, want %d", p, c.policy, c.size, roots, wantComps)
				}
			}
		}
	}
}

// TestSVLabelsModelCheck model-checks the SV labeling over random graphs
// and random scheduler configurations: whatever the steal schedule, d[v]
// must converge to the minimum vertex id of v's component — the
// schedule-independent fixpoint of graft-to-smaller-label. The reference
// is the sequential BFS labeling, which assigns component ids in
// smallest-vertex order.
func TestSVLabelsModelCheck(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw, sizeRaw uint8) bool {
		n := int(nRaw%300) + 1
		m := int(mRaw % 600)
		p := int(pRaw%8) + 1
		g := gen.Random(n, m, seed)
		opt := Options{NumProcs: p, ChunkSize: int(sizeRaw % 9)}
		if sizeRaw%2 == 0 {
			opt.ChunkPolicy = par.ChunkFixed
			if opt.ChunkSize == 0 {
				opt.ChunkSize = 1
			}
		}
		label, comps, err := ConnectedComponents(g, opt)
		if err != nil {
			return false
		}
		ref, refComps := graph.Components(g)
		if comps != refComps {
			return false
		}
		// label[v] is the min vertex of v's component; ref ids are dense in
		// smallest-vertex order, so equal-ref ⇔ equal-label.
		firstOf := map[graph.VID]graph.VID{}
		for v := 0; v < n; v++ {
			if first, ok := firstOf[ref[v]]; ok {
				if label[v] != first {
					return false
				}
			} else {
				firstOf[ref[v]] = label[v]
				if int(label[v]) > v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
