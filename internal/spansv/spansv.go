// Package spansv implements the Shiloach-Vishkin (SV) connectivity
// algorithm adapted to compute spanning trees on an SMP, the principal
// parallel baseline of the paper.
//
// SV is a graft-and-shortcut algorithm: every component is maintained as
// a rooted star in an array D; each iteration grafts star roots onto
// smaller-labeled neighboring components and then shortcuts every tree
// back to a star by pointer jumping. On a priority CRCW PRAM the model
// arbitrates concurrent grafts; on a real SMP the paper's adaptation
// "runs an election among the processors that wish to graft the same
// tree", which this package implements with a compare-and-swap per root.
// A lock-per-root variant is provided because the paper observes that
// "the locking approach intuitively is slow and not scalable, and our
// test results agree" — the ablation benchmark quantifies that.
//
// The algorithm's running time depends on the initial labeling of the
// vertices: friendly labelings finish in one graft iteration, adversarial
// ones take up to ~log n. The experiment suite reproduces the paper's
// torus row-major vs random labeling contrast through this package.
//
// GraftFrom additionally exposes the core loop with caller-provided
// initial component labels; the work-stealing algorithm's pathological-
// case fallback uses it to finish a partially grown forest, exactly the
// paper's "merge the grown spanning subtree into a super-vertex, and
// start a different algorithm, for instance, the SV approach".
package spansv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
)

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors p (>= 1).
	NumProcs int
	// UseLocks selects the per-root mutex election instead of CAS (the
	// paper's slow variant, kept for the ablation).
	UseLocks bool
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// Obs, when non-nil, receives per-worker counters (EdgesScanned for
	// election scans, VerticesClaimed for grafts won) and barrier
	// waits/episodes from the team barrier.
	Obs *obs.Recorder
	// MaxIterations caps graft-and-shortcut iterations; 0 means n+2,
	// which always suffices (every productive iteration removes at least
	// one root). Tests use small caps to exercise early termination.
	MaxIterations int
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) that runs the election, graft, and shortcut
	// sweeps — the same -chunk knobs as the work-stealing traversal. The
	// zero values select the adaptive policy with its default cap.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips); the
	// team polls it at every barrier entry and ForDynamic chunk
	// boundary, and a tripped run returns the flag's typed error.
	Cancel *fault.Flag
	// Chaos is the fault injector (nil, and compiled to no-ops in
	// default builds, injects nothing).
	Chaos *chaos.Injector
}

// Stats reports what a run did.
type Stats struct {
	// Iterations is the number of graft-and-shortcut iterations, the
	// paper's labeling-sensitive quantity.
	Iterations int
	// ShortcutRounds is the total number of pointer-jumping rounds.
	ShortcutRounds int
	// Grafts is the number of graft operations == emitted tree edges.
	Grafts int
}

const nobody = int64(-1)

// packArc packs an arc (v,w) into an int64 for the election slots.
func packArc(v, w graph.VID) int64 {
	return int64(uint64(uint32(v))<<32 | uint64(uint32(w)))
}

func unpackArc(x int64) (v, w graph.VID) {
	return graph.VID(uint32(uint64(x) >> 32)), graph.VID(uint32(uint64(x)))
}

// SpanningForest runs SV from singleton components and returns the
// forest as a parent array plus run statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	n := g.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	edges, stats, err := GraftFrom(g, d, opt)
	if err != nil {
		return nil, stats, err
	}
	// Root the selected tree edges into a parent array. This is O(n)
	// work on top of the SV core, charged to processor 0.
	treeAdj := make([][]graph.VID, n)
	for _, e := range edges {
		treeAdj[e.U] = append(treeAdj[e.U], e.V)
		treeAdj[e.V] = append(treeAdj[e.V], e.U)
	}
	opt.Model.Probe(0).NonContig(int64(2 * len(edges)))
	parent := spanseq.RootForest(n, treeAdj)
	return parent, stats, nil
}

// GraftFrom runs the SV graft-and-shortcut loop starting from the given
// component labeling d (d[v] must form rooted stars: d[d[v]] == d[v])
// and returns the graph edges used for grafts. d is modified in place;
// on return, d[v] is the minimum initial label in v's component.
//
// Grafts only ever join distinct initial components, so the returned
// edges plus any spanning structure internal to the initial components
// form a spanning forest of g.
func GraftFrom(g *graph.Graph, d []int32, opt Options) ([]graph.Edge, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("spansv: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	n := g.NumVertices()
	if len(d) != n {
		return nil, Stats{}, fmt.Errorf("spansv: initial labeling has length %d, want %d", len(d), n)
	}
	for v := 0; v < n; v++ {
		if d[v] < 0 || int(d[v]) >= n || d[d[v]] != d[v] {
			return nil, Stats{}, fmt.Errorf("spansv: initial labeling is not a rooted star at vertex %d", v)
		}
	}
	maxIter := opt.MaxIterations
	if maxIter == 0 {
		maxIter = n + 2
	}

	winner := make([]int64, n)
	var locks []sync.Mutex
	if opt.UseLocks {
		locks = make([]sync.Mutex, n)
	}

	team := par.NewTeam(opt.NumProcs, opt.Model).Observe(opt.Obs).
		Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	edgeBufs := make([][]graph.Edge, opt.NumProcs)
	iterations, rounds := 0, 0

	if err := team.RunErr(func(c *par.Ctx) {
		runSV(c, g, d, winner, locks, edgeBufs, maxIter, &iterations, &rounds)
	}); err != nil {
		return nil, Stats{}, err
	}

	var stats Stats
	stats.Iterations = iterations
	stats.ShortcutRounds = rounds
	var edges []graph.Edge
	for _, eb := range edgeBufs {
		edges = append(edges, eb...)
	}
	stats.Grafts = len(edges)
	return edges, stats, nil
}

func runSV(c *par.Ctx, g *graph.Graph, d []int32, winner []int64, locks []sync.Mutex,
	edgeBufs [][]graph.Edge, maxIter int, iterations, rounds *int) {
	n := g.NumVertices()
	probe := c.Probe()
	ow := c.Obs()
	var myEdges []graph.Edge

	// Initialize election slots in parallel.
	c.ForDynamic(n, func(i int) { winner[i] = nobody })
	c.Barrier()

	for iter := 0; iter < maxIter; iter++ {
		// Phase A: election. For each arc (v,w), if root(w) < root(v) and
		// root(v) is a star root, root(v) is a candidate to graft along
		// this arc; the first CAS wins the election for that root.
		// Counters batch in a local per phase: a per-vertex atomic store
		// is a fence on the scan loop. The sweep is degree-weighted work,
		// so it runs on the dynamic scheduler: a worker whose block holds
		// the hubs of a skewed input sheds the surplus to thieves.
		var lc obs.Local
		c.ForDynamic(n, func(vi int) {
			v := graph.VID(vi)
			probe.NonContig(1) // load D[v]
			rv := d[v]
			nb := g.Neighbors(v)
			probe.Contig(int64(len(nb)))
			lc.Add(obs.EdgesScanned, int64(len(nb)))
			for _, w := range nb {
				probe.NonContig(2) // load D[w]; check D[rv]
				rw := d[w]
				if rw >= rv || d[rv] != rv {
					continue
				}
				if locks != nil {
					// Lock-based election (ablation): serialize on the root.
					probe.NonContig(3) // lock acquire/release traffic
					locks[rv].Lock()
					if winner[rv] == nobody {
						winner[rv] = packArc(v, w)
					}
					locks[rv].Unlock()
				} else {
					probe.NonContig(1) // CAS
					atomic.CompareAndSwapInt64(&winner[rv], nobody, packArc(v, w))
				}
			}
		})
		lc.FlushTo(ow)
		c.Barrier()

		// Phase B: apply the elected grafts. Values in d only decrease,
		// so reading d[w] while other roots are being grafted still
		// yields a label strictly below r: grafting stays acyclic.
		grafted := false
		c.ForDynamic(n, func(ri int) {
			r := graph.VID(ri)
			probe.NonContig(1)
			arc := winner[r]
			if arc == nobody {
				return
			}
			v, w := unpackArc(arc)
			probe.NonContig(2) // load D[w], store D[r]
			target := atomic.LoadInt32(&d[w])
			if target < int32(r) {
				atomic.StoreInt32(&d[r], target)
				myEdges = append(myEdges, graph.Edge{U: v, V: w})
				lc.Incr(obs.VerticesClaimed) // one graft == one tree edge won
				grafted = true
			}
			winner[r] = nobody
		})
		lc.FlushTo(ow)
		anyGraft := c.ReduceOr(grafted)
		if c.TID() == 0 {
			*iterations = iter + 1
		}
		if !anyGraft {
			break
		}

		// Phase C: shortcut every tree to a rooted star by pointer
		// jumping ("always shortcut the tree to rooted star"). This is
		// where SV's extra log n factor of non-contiguous accesses lives.
		for {
			changed := false
			c.ForDynamic(n, func(vi int) {
				v := graph.VID(vi)
				probe.NonContig(2) // load D[v], load D[D[v]]
				dv := atomic.LoadInt32(&d[v])
				ddv := atomic.LoadInt32(&d[dv])
				if dv != ddv {
					atomic.StoreInt32(&d[v], ddv)
					changed = true
				}
			})
			if c.TID() == 0 {
				*rounds++
			}
			if !c.ReduceOr(changed) {
				break
			}
		}
	}
	edgeBufs[c.TID()] = myEdges
}

// ConnectedComponents runs the SV core without rooting and returns the
// component label of every vertex (the minimum vertex id of its
// component) and the number of components.
func ConnectedComponents(g *graph.Graph, opt Options) ([]graph.VID, int, error) {
	n := g.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	_, _, err := GraftFrom(g, d, opt)
	if err != nil {
		return nil, 0, err
	}
	label := make([]graph.VID, n)
	comps := 0
	for v := 0; v < n; v++ {
		label[v] = d[v]
		if int(d[v]) == v {
			comps++
		}
	}
	return label, comps, nil
}
