package spansv

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

func TestSpanningForestShapes(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2), gen.Chain(64),
		gen.Star(40), gen.Cycle(33), gen.Complete(15),
		gen.Torus2D(7, 7), gen.Random(150, 220, 1),
		graph.Union(gen.Chain(8), gen.Star(6), gen.Cycle(5)),
		graph.RandomRelabel(gen.Chain(64), 9),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 4, 7} {
			for _, locks := range []bool{false, true} {
				parent, st, err := SpanningForest(g, Options{NumProcs: p, UseLocks: locks})
				if err != nil {
					t.Fatalf("%v p=%d locks=%v: %v", g, p, locks, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%v p=%d locks=%v: %v", g, p, locks, err)
				}
				wantEdges := g.NumVertices() - graph.NumComponents(g)
				if st.Grafts != wantEdges {
					t.Fatalf("%v p=%d: %d grafts, want %d", g, p, st.Grafts, wantEdges)
				}
			}
		}
	}
}

func TestSpanningForestProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 400)
		p := int(pRaw%6) + 1
		g := gen.Random(n, m, seed)
		parent, _, err := SpanningForest(g, Options{NumProcs: p})
		return err == nil && verify.Forest(g, parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelingSensitivity(t *testing.T) {
	// The paper's observation: SV's iteration count depends strongly on
	// the labeling. The row-major chain finishes in a couple of
	// iterations; a random labeling needs around log n.
	n := 1 << 12
	seqChain := gen.Chain(n)
	randChain := graph.RandomRelabel(seqChain, 123)

	_, stSeq, err := SpanningForest(seqChain, Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, stRand, err := SpanningForest(randChain, Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stSeq.Iterations > 3 {
		t.Fatalf("sequential labeling took %d iterations, want <= 3", stSeq.Iterations)
	}
	if stRand.Iterations <= stSeq.Iterations {
		t.Fatalf("random labeling took %d iterations, sequential %d: no sensitivity",
			stRand.Iterations, stSeq.Iterations)
	}
}

func TestGraftFromPartialState(t *testing.T) {
	// Pre-merge half the chain into one star and let SV finish.
	n := 40
	g := gen.Chain(n)
	d := make([]int32, n)
	for i := range d {
		if i < n/2 {
			d[i] = 0 // left half already one component rooted at 0
		} else {
			d[i] = int32(i)
		}
	}
	edges, st, err := GraftFrom(g, d, Options{NumProcs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The right half contributes one graft per vertex.
	if len(edges) != n/2 {
		t.Fatalf("%d graft edges, want %d", len(edges), n/2)
	}
	if st.Grafts != len(edges) {
		t.Fatal("stats disagree with edges")
	}
	// All labels collapse to 0.
	for v, dv := range d {
		if dv != 0 {
			t.Fatalf("d[%d] = %d after convergence", v, dv)
		}
	}
	// Grafts only join distinct initial components.
	for _, e := range edges {
		if e.U >= int32(n/2) == (e.V >= int32(n/2)) && (e.U < int32(n/2)) && (e.V < int32(n/2)) {
			t.Fatalf("graft edge {%d,%d} internal to the premerged component", e.U, e.V)
		}
	}
}

func TestGraftFromRejectsBadState(t *testing.T) {
	g := gen.Chain(5)
	if _, _, err := GraftFrom(g, make([]int32, 3), Options{NumProcs: 1}); err == nil {
		t.Fatal("wrong-length labeling accepted")
	}
	bad := []int32{0, 0, 3, 3, 2} // d[4]=2 but d[2]=3: not a star
	if _, _, err := GraftFrom(g, bad, Options{NumProcs: 1}); err == nil {
		t.Fatal("non-star labeling accepted")
	}
	if _, _, err := GraftFrom(g, []int32{0, 0, 9, 3, 3}, Options{NumProcs: 1}); err == nil {
		t.Fatal("out-of-range labeling accepted")
	}
	if _, _, err := SpanningForest(g, Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestMaxIterationsCap(t *testing.T) {
	// With a 1-iteration cap on a random-labeled chain, SV cannot finish;
	// the result must then fail verification (documenting that the cap
	// is a testing knob, not a correctness feature).
	g := graph.RandomRelabel(gen.Chain(256), 5)
	parent, st, err := SpanningForest(g, Options{NumProcs: 2, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 1 {
		t.Fatalf("ran %d iterations under a 1-iteration cap", st.Iterations)
	}
	if verify.Forest(g, parent) == nil {
		t.Fatal("a capped run should not produce a complete spanning tree on this input")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := graph.Union(gen.Cycle(10), gen.Chain(5), gen.Star(7))
	labels, comps, err := ConnectedComponents(g, Options{NumProcs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if comps != 3 {
		t.Fatalf("components = %d, want 3", comps)
	}
	ref, _ := graph.Components(g)
	for v := range labels {
		for w := range labels {
			if (labels[v] == labels[w]) != (ref[v] == ref[w]) {
				t.Fatalf("partition mismatch at %d,%d", v, w)
			}
		}
	}
	// Labels are component minima.
	if labels[0] != 0 || labels[10] != 10 || labels[15] != 15 {
		t.Fatalf("labels not minima: %v %v %v", labels[0], labels[10], labels[15])
	}
}

func TestModelCharges(t *testing.T) {
	g := gen.Random(500, 800, 3)
	model := smpmodel.New(4)
	if _, _, err := SpanningForest(g, Options{NumProcs: 4, Model: model}); err != nil {
		t.Fatal(err)
	}
	if model.Total().NonContig == 0 {
		t.Fatal("no cost charged")
	}
	if model.Barriers() == 0 {
		t.Fatal("no barriers recorded")
	}
	// Lock-based elections charge more than CAS ones.
	lockModel := smpmodel.New(4)
	if _, _, err := SpanningForest(g, Options{NumProcs: 4, UseLocks: true, Model: lockModel}); err != nil {
		t.Fatal(err)
	}
	if lockModel.Total().NonContig <= model.Total().NonContig {
		t.Fatal("lock elections should charge more non-contiguous accesses")
	}
}
