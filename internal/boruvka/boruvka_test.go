package boruvka

import (
	"math"
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

func TestMSFIsValidSpanningForest(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(50),
		gen.Star(30), gen.Cycle(25), gen.Complete(12),
		gen.Torus2D(6, 6), gen.Random(120, 200, 1),
		graph.Union(gen.Chain(6), gen.Cycle(7)),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 5} {
			parent, st, err := MinimumSpanningForest(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			want := g.NumVertices() - graph.NumComponents(g)
			if st.TreeEdges != want {
				t.Fatalf("%v p=%d: %d tree edges, want %d", g, p, st.TreeEdges, want)
			}
		}
	}
}

func TestMSFMatchesKruskalWeight(t *testing.T) {
	// With the default distinct pseudo-random weights the MSF is unique,
	// so parallel Borůvka and sequential Kruskal must agree on total
	// weight exactly.
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%120) + 1
		m := int(mRaw % 300)
		p := int(pRaw%4) + 1
		g := gen.Random(n, m, seed)
		_, st, err := MinimumSpanningForest(g, Options{NumProcs: p})
		if err != nil {
			return false
		}
		_, want := SequentialMSF(g, nil)
		return math.Abs(st.TotalWeight-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMSFWithExplicitWeights(t *testing.T) {
	// A 4-cycle with one heavy edge: the MST must exclude exactly the
	// heavy edge.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	w := func(u, v graph.VID) float64 {
		e := graph.Edge{U: u, V: v}.Canon()
		if e == (graph.Edge{U: 0, V: 3}) {
			return 100
		}
		return 1
	}
	parent, st, err := MinimumSpanningForest(g, Options{NumProcs: 2, Weight: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatal(err)
	}
	if st.TotalWeight != 3 {
		t.Fatalf("total weight %v, want 3 (heavy edge excluded)", st.TotalWeight)
	}
}

func TestMSFRoundsLogarithmic(t *testing.T) {
	// Borůvka halves the component count each round: rounds <= log2 n + slack.
	g := gen.RandomConnected(1<<12, 3<<11, 4)
	_, st, err := MinimumSpanningForest(g, Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds > 15 {
		t.Fatalf("%d rounds for n=4096; Borůvka should need ~log n", st.Rounds)
	}
}

func TestSequentialMSFTieBreaking(t *testing.T) {
	// Equal weights everywhere: the tie-break by edge id must still
	// produce a forest of the right size deterministically.
	g := gen.Complete(10)
	w := func(u, v graph.VID) float64 { return 1 }
	edges, total := SequentialMSF(g, w)
	if len(edges) != 9 || total != 9 {
		t.Fatalf("%d edges weight %v", len(edges), total)
	}
	edges2, _ := SequentialMSF(g, w)
	for i := range edges {
		if edges[i] != edges2[i] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, _, err := MinimumSpanningForest(gen.Chain(3), Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}
