// Package boruvka implements a parallel Borůvka minimum-spanning-forest
// algorithm on the same SMP substrate as the spanning-tree algorithms.
// MST is the first item in the paper's future-work list ("we plan to
// apply the techniques discussed in this paper to other related graph
// problems, for instance, minimum spanning tree (forest)"), and Borůvka
// is the parallel MST algorithm of the experimental studies the paper
// surveys (Chung & Condon; Dehne & Götz).
//
// Each round every component selects its minimum-weight outgoing edge
// (by atomic min-election, the same technique as the SV adaptation's
// grafts), components merge along the selected edges, and labels are
// flattened by pointer jumping. For distinct edge weights the result is
// the unique MSF; ties are broken by edge id, so the result is always a
// well-defined minimum spanning forest.
package boruvka

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
)

// WeightFunc assigns a weight to the undirected edge {u,v}. It must be
// symmetric: WeightFunc(u,v) == WeightFunc(v,u).
type WeightFunc func(u, v graph.VID) float64

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors (>= 1).
	NumProcs int
	// Weight assigns edge weights; nil means a deterministic pseudo-
	// random weight derived from the endpoint pair, giving a random
	// (but reproducible) MSF.
	Weight WeightFunc
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) running the propose/apply/flatten sweeps — the
	// degree-weighted propose sweep is where skewed inputs profit.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips);
	// Chaos the fault injector (nil injects nothing).
	Cancel *fault.Flag
	Chaos  *chaos.Injector
	// ValidateWeights pre-checks Weight over every edge and rejects NaN
	// weights with a typed error before the parallel phase starts (a NaN
	// poisons every min-election it meets, silently producing an
	// arbitrary forest).
	ValidateWeights bool
}

// Stats reports what a run did.
type Stats struct {
	// Rounds is the number of Borůvka rounds.
	Rounds int
	// TreeEdges is the number of MSF edges selected.
	TreeEdges int
	// TotalWeight is the sum of selected edge weights.
	TotalWeight float64
}

// hashWeight is the default weight: a deterministic hash of the
// canonical endpoint pair mapped to (0,1), plus a tie-breaking epsilon
// from the pair itself (hash collisions are broken by edge identity in
// candidate comparison, so equal weights are still safe).
func hashWeight(u, v graph.VID) float64 {
	if u > v {
		u, v = v, u
	}
	x := uint64(uint32(u))<<32 | uint64(uint32(v))
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// candidate packs a weight and an arc for the per-component atomic min
// election: comparisons order by weight, then by canonical edge id so
// ties are deterministic.
type candidate struct {
	weight float64
	u, v   graph.VID
	// target is the root of v's component at proposal time; hooks use
	// it (not a re-read of d[v]) so the round's hook digraph is exactly
	// the selected-edge digraph over round-start components, which is
	// acyclic apart from mutual 2-cycles.
	target int32
}

func (c candidate) less(d candidate) bool {
	if c.weight != d.weight {
		return c.weight < d.weight
	}
	cu, cv := graph.Edge{U: c.u, V: c.v}.Canon().U, graph.Edge{U: c.u, V: c.v}.Canon().V
	du, dv := graph.Edge{U: d.u, V: d.v}.Canon().U, graph.Edge{U: d.u, V: d.v}.Canon().V
	if cu != du {
		return cu < du
	}
	return cv < dv
}

// MinimumSpanningForest computes a minimum spanning forest of g and
// returns it as a parent array plus statistics.
func MinimumSpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("boruvka: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	weight := opt.Weight
	if weight == nil {
		weight = hashWeight
	}
	if opt.ValidateWeights {
		if err := g.ValidateWeights(func(u, v graph.VID) float64 { return weight(u, v) }); err != nil {
			return nil, Stats{}, fmt.Errorf("boruvka: %w", err)
		}
	}
	n := g.NumVertices()
	d := make([]int32, n) // component label, maintained as rooted stars
	for i := range d {
		d[i] = int32(i)
	}
	// Per-component best candidate, guarded by a version/lock word so a
	// multi-word candidate can be updated atomically: 0 = free.
	locks := make([]int32, n)
	best := make([]candidate, n)
	for i := range best {
		best[i].weight = math.Inf(1)
	}

	team := par.NewTeam(opt.NumProcs, opt.Model).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	edgeBufs := make([][]graph.Edge, opt.NumProcs)
	weightBufs := make([]float64, opt.NumProcs)
	rounds := 0

	err := team.RunErr(func(c *par.Ctx) {
		probe := c.Probe()
		var myEdges []graph.Edge
		myWeight := 0.0

		propose := func(root int32, cand candidate) {
			// Spinlock per root: contention is bounded by the component's
			// degree and rounds are short; a CAS loop on a version word
			// lets us update the multi-word candidate safely. Gosched in
			// the spin keeps the loop live when the host has fewer cores
			// than virtual processors.
			for !atomic.CompareAndSwapInt32(&locks[root], 0, 1) {
				runtime.Gosched()
			}
			if cand.less(best[root]) {
				best[root] = cand
			}
			atomic.StoreInt32(&locks[root], 0)
		}

		for round := 0; ; round++ {
			// Phase A: every arc proposes to its component's election.
			c.ForDynamic(n, func(vi int) {
				v := graph.VID(vi)
				probe.NonContig(1)
				rv := d[v]
				nb := g.Neighbors(v)
				probe.Contig(int64(len(nb)))
				for _, w := range nb {
					probe.NonContig(2)
					rw := d[w]
					if rw == rv {
						continue // internal edge
					}
					probe.NonContig(2) // election access
					propose(rv, candidate{weight: weight(v, w), u: v, v: w, target: rw})
				}
			})
			c.Barrier()

			// Phase B: apply the selected edges. To avoid 2-cycles when
			// two components select the same edge, the edge is applied by
			// the larger-labeled root only, pointing it at the smaller
			// root (the classic symmetric-breaking rule; the resulting
			// hook graph is acyclic).
			merged := false
			c.ForDynamic(n, func(ri int) {
				r := int32(ri)
				probe.NonContig(1)
				if d[r] != r || math.IsInf(best[r].weight, 1) {
					return
				}
				cand := best[r]
				probe.NonContig(2)
				// Mutual-selection tie-break: both endpoints' components
				// picked this same edge; only the smaller root hooks, the
				// larger keeps its label, breaking the 2-cycle.
				other := best[cand.target]
				if !math.IsInf(other.weight, 1) &&
					other.u == cand.v && other.v == cand.u && cand.target > r {
					return // the other side will hook onto us
				}
				atomic.StoreInt32(&d[r], cand.target)
				myEdges = append(myEdges, graph.Edge{U: cand.u, V: cand.v})
				myWeight += cand.weight
				merged = true
			})
			anyMerge := c.ReduceOr(merged)
			if c.TID() == 0 {
				rounds = round + 1
			}
			if !anyMerge {
				break
			}

			// Phase C: flatten to stars and reset elections.
			for {
				changed := false
				c.ForDynamic(n, func(vi int) {
					v := graph.VID(vi)
					probe.NonContig(2)
					dv := atomic.LoadInt32(&d[v])
					ddv := atomic.LoadInt32(&d[dv])
					if dv != ddv {
						atomic.StoreInt32(&d[v], ddv)
						changed = true
					}
				})
				if !c.ReduceOr(changed) {
					break
				}
			}
			c.ForDynamic(n, func(i int) {
				best[i].weight = math.Inf(1)
			})
			c.Barrier()
		}
		edgeBufs[c.TID()] = myEdges
		weightBufs[c.TID()] = myWeight
	})
	if err != nil {
		return nil, Stats{}, err
	}

	var stats Stats
	stats.Rounds = rounds
	var edges []graph.Edge
	for i, eb := range edgeBufs {
		edges = append(edges, eb...)
		stats.TotalWeight += weightBufs[i]
	}
	stats.TreeEdges = len(edges)

	treeAdj := make([][]graph.VID, n)
	for _, e := range edges {
		treeAdj[e.U] = append(treeAdj[e.U], e.V)
		treeAdj[e.V] = append(treeAdj[e.V], e.U)
	}
	parent := spanseq.RootForest(n, treeAdj)
	return parent, stats, nil
}

// SequentialMSF computes the reference minimum spanning forest with
// Kruskal's algorithm (sort all edges, union-find sweep), for verifying
// the parallel Borůvka result.
func SequentialMSF(g *graph.Graph, weight WeightFunc) ([]graph.Edge, float64) {
	if weight == nil {
		weight = hashWeight
	}
	edges := g.Edges()
	type we struct {
		w float64
		e graph.Edge
	}
	wes := make([]we, len(edges))
	for i, e := range edges {
		wes[i] = we{weight(e.U, e.V), e}
	}
	sort.Slice(wes, func(i, j int) bool {
		if wes[i].w != wes[j].w {
			return wes[i].w < wes[j].w
		}
		if wes[i].e.U != wes[j].e.U {
			return wes[i].e.U < wes[j].e.U
		}
		return wes[i].e.V < wes[j].e.V
	})
	uf := graph.NewUnionFind(g.NumVertices())
	var out []graph.Edge
	total := 0.0
	for _, x := range wes {
		if uf.Union(x.e.U, x.e.V) {
			out = append(out, x.e)
			total += x.w
		}
	}
	return out, total
}
