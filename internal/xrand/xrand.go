// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the spanning-tree library.
//
// The library never uses math/rand global state: every randomized
// component (graph generators, the stub-spanning-tree random walk, victim
// selection in work stealing) takes an explicit seed so that experiments
// are exactly reproducible. Each virtual processor derives an independent
// stream with Split, following the SplitMix64 construction.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output mix function (Steele, Lea, Flood 2014).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SplitMix64 is a tiny splittable PRNG. The zero value is a valid
// generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Rand is the library's primary generator: Xoshiro256++ seeded via
// SplitMix64. It is not safe for concurrent use; derive one per
// goroutine with Split.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a Rand seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place from seed, producing exactly the state
// New(seed) would, without allocating. It is the reuse hook for pooled
// runtimes (a warmed session reseeds its per-worker generators per
// request instead of constructing fresh ones).
func (r *Rand) Reseed(seed uint64) {
	var sm SplitMix64
	sm.state = seed
	r.s0, r.s1, r.s2, r.s3 = sm.Uint64(), sm.Uint64(), sm.Uint64(), sm.Uint64()
	// An all-zero state is the one invalid Xoshiro state; seed==specific
	// values cannot produce it through SplitMix64, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = golden
	}
}

// Split returns a new Rand with a stream independent of r's, derived from
// r's current state and the stream index. Calling Split(i) for distinct i
// yields distinct, decorrelated generators; r itself is not advanced.
func (r *Rand) Split(i uint64) *Rand {
	out := &Rand{}
	out.ReseedSplit(r, i)
	return out
}

// ReseedSplit reinitializes r in place with the independent stream that
// parent.Split(i) would produce, without allocating. parent is not
// advanced.
func (r *Rand) ReseedSplit(parent *Rand, i uint64) {
	r.Reseed(mix64(parent.s0^mix64(i+1)) + mix64(parent.s2+golden*(i+1)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value (Xoshiro256++).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns a pseudo-random 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n called with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection on the high 64 bits of a 64x64->128 product.
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as an []int32,
// via Fisher-Yates.
func (r *Rand) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the n elements addressed by swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns a pseudo-random boolean with probability 1/2.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Prob returns true with probability p (clamped to [0,1]).
func (r *Rand) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
