package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s0, s1 := r.Split(0), r.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincided %d/1000 times", same)
	}
	// Split must not advance the parent.
	a, b := New(7), New(7)
	a.Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent generator")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestUint64nProperty(t *testing.T) {
	r := New(2)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 10 buckets over Uint64n(10).
	r := New(3)
	const draws = 100000
	var counts [10]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(10)]++
	}
	want := draws / 10
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want ~%d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestExpFloat64(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		e := r.ExpFloat64()
		if e < 0 {
			t.Fatalf("ExpFloat64() = %v negative", e)
		}
		sum += e
	}
	if mean := sum / draws; math.Abs(mean-1.0) > 0.03 {
		t.Fatalf("ExpFloat64 mean %v, want ~1.0", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	f := func(nRaw uint16) bool {
		n := int(nRaw % 500)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermNotIdentity(t *testing.T) {
	p := New(7).Perm(1000)
	fixed := 0
	for i, v := range p {
		if int(v) == i {
			fixed++
		}
	}
	if fixed > 20 {
		t.Fatalf("%d fixed points in a random 1000-permutation", fixed)
	}
}

func TestShuffleConserves(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d != %d", got, sum)
	}
}

func TestProb(t *testing.T) {
	r := New(9)
	if r.Prob(0) || r.Prob(-1) {
		t.Fatal("Prob(<=0) returned true")
	}
	if !r.Prob(1) || !r.Prob(2) {
		t.Fatal("Prob(>=1) returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Prob(0.25) {
			hits++
		}
	}
	if hits < draws/5 || hits > draws*3/10 {
		t.Fatalf("Prob(0.25) hit %d/%d times", hits, draws)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the SplitMix64 paper's test vector (seed
	// 1234567).
	s := NewSplitMix64(1234567)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitMix64 draw %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestInt31nBounds(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		v := r.Int31n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int31n(7) = %d", v)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(11)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < draws*45/100 || trues > draws*55/100 {
		t.Fatalf("Bool() true %d/%d times", trues, draws)
	}
}
