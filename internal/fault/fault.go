// Package fault is the shared run-abort substrate of the parallel
// runtime: one cooperative cancel flag that every driver (the
// work-stealing traversal in internal/core, the lockstep driver, and
// the par.Team loops of the PRAM-style algorithms) polls at its chunk
// boundaries, plus the typed errors a caller receives when a run ends
// for a reason other than completion.
//
// The design mirrors the scheduler layer: exactly one implementation of
// "should this run stop, and why" serves the whole tree. A Flag trips
// exactly once with a Cause; later trips lose and the first cause wins,
// so a panic that races a deadline reports deterministically whichever
// tripped first. Workers never block on the flag — they load one atomic
// at points where they already pay a synchronization (drain boundaries,
// barrier entries, idle transitions), which is what keeps the hardened
// hot path inside the pre-hardening noise budget.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Cause says why a run stopped early.
type Cause int32

const (
	// CauseNone: the flag never tripped (the run completed).
	CauseNone Cause = iota
	// CauseCanceled: the caller's context was canceled.
	CauseCanceled
	// CauseDeadline: the caller's context deadline expired.
	CauseDeadline
	// CausePanicked: a worker panicked; the run drained cooperatively
	// and the panic value is held by the flag.
	CausePanicked
	// CauseStalled: the stuck-run watchdog observed no worker progress
	// within the stall budget and aborted the run.
	CauseStalled
)

// String returns a short name for the cause.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCanceled:
		return "canceled"
	case CauseDeadline:
		return "deadline"
	case CausePanicked:
		return "panicked"
	case CauseStalled:
		return "stalled"
	}
	return fmt.Sprintf("cause(%d)", int32(c))
}

// ErrCanceled is returned when a run was stopped by context
// cancellation. It wraps context.Canceled, so
// errors.Is(err, context.Canceled) also holds.
var ErrCanceled = fmt.Errorf("spantree: run canceled: %w", context.Canceled)

// ErrDeadline is returned when a run was stopped by a context deadline.
// It wraps context.DeadlineExceeded.
var ErrDeadline = fmt.Errorf("spantree: run deadline exceeded: %w", context.DeadlineExceeded)

// ErrStalled is returned when the stuck-run watchdog aborted a run
// because no worker made progress within the stall budget. The run
// drained cooperatively, so a pooled session stays reusable after it.
var ErrStalled = errors.New("spantree: run stalled: no worker progress within the stall budget")

// PanicError reports a worker panic that the runtime isolated: the
// remaining workers drained cleanly and, where the algorithm supports
// it, the caller still received a valid result from the sequential
// degradation path.
type PanicError struct {
	// Worker is the virtual processor id of the panicking worker, or -1
	// when the panic happened outside a worker body.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("spantree: worker %d panicked: %v", e.Worker, e.Value)
}

// AsPanicError returns the *PanicError in err's chain, if any.
func AsPanicError(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// Flag is a one-shot, cause-carrying cancel flag shared by the workers
// of one run. The zero value is ready to use; a nil *Flag is a valid
// never-tripping flag, so un-hardened callers pass nil and pay only the
// nil check.
type Flag struct {
	cause atomic.Int32
	// panicErr holds the first PanicError when cause == CausePanicked.
	panicErr atomic.Pointer[PanicError]
}

// Reset rearms the flag for a new run: the cause returns to CauseNone
// and any recorded PanicError is dropped. It is the reuse hook for
// pooled sessions, which keep one Flag per workspace instead of
// allocating one per request. The caller must guarantee no worker of a
// previous run still polls the flag (i.e. the previous run has fully
// drained) — Reset is not synchronized against concurrent Trip.
func (f *Flag) Reset() {
	if f == nil {
		return
	}
	f.cause.Store(int32(CauseNone))
	f.panicErr.Store(nil)
}

// Trip trips the flag with the given cause. Only the first trip wins;
// Trip reports whether this call was it.
func (f *Flag) Trip(c Cause) bool {
	if f == nil || c == CauseNone {
		return false
	}
	return f.cause.CompareAndSwap(int32(CauseNone), int32(c))
}

// TripPanic trips the flag with CausePanicked, recording pe. Reports
// whether this call won (a losing panic is dropped: the first stop
// cause owns the run's outcome).
func (f *Flag) TripPanic(pe *PanicError) bool {
	if f == nil || pe == nil {
		return false
	}
	if !f.cause.CompareAndSwap(int32(CauseNone), int32(CausePanicked)) {
		return false
	}
	f.panicErr.Store(pe)
	return true
}

// Tripped reports whether the flag has tripped. This is the hot-path
// poll: one atomic load, nil-safe.
func (f *Flag) Tripped() bool {
	return f != nil && f.cause.Load() != int32(CauseNone)
}

// Cause returns why the flag tripped (CauseNone when it did not).
func (f *Flag) Cause() Cause {
	if f == nil {
		return CauseNone
	}
	return Cause(f.cause.Load())
}

// Panic returns the recorded PanicError when the flag tripped with
// CausePanicked (nil otherwise). The store follows the winning CAS, so
// spin briefly for the racing writer.
func (f *Flag) Panic() *PanicError {
	if f == nil || f.Cause() != CausePanicked {
		return nil
	}
	for {
		if pe := f.panicErr.Load(); pe != nil {
			return pe
		}
	}
}

// Err maps the flag's cause onto the typed error the caller receives:
// nil when the flag never tripped, ErrCanceled/ErrDeadline for context
// stops, and the recorded *PanicError for a panic stop.
func (f *Flag) Err() error {
	switch f.Cause() {
	case CauseCanceled:
		return ErrCanceled
	case CauseDeadline:
		return ErrDeadline
	case CausePanicked:
		return f.Panic()
	case CauseStalled:
		return ErrStalled
	}
	return nil
}

// Watch trips f when ctx is done, translating ctx.Err() into
// CauseCanceled or CauseDeadline. It returns a stop function that must
// be called (typically deferred) to release the watcher goroutine; stop
// is idempotent. When ctx can never be canceled (context.Background()),
// no goroutine is spawned and stop is a no-op.
func Watch(ctx context.Context, f *Flag) (stop func()) {
	done := ctx.Done()
	if done == nil || f == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-done:
			// A stop() that happened before the cancellation must win even
			// when both channels are ready at once: re-check quit so a
			// released watcher never trips the flag late.
			select {
			case <-quit:
				return
			default:
			}
			f.Trip(causeOf(ctx.Err()))
		case <-quit:
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(quit)
		}
	}
}

// TripContext trips f from a context error (ctx.Err()), translating it
// into CauseCanceled or CauseDeadline. A nil err is a no-op, so callers
// can feed ctx.Err() unconditionally for a synchronous already-expired
// check that doesn't race the Watch goroutine.
func (f *Flag) TripContext(err error) bool {
	if err == nil {
		return false
	}
	return f.Trip(causeOf(err))
}

// causeOf maps a context error onto a Cause.
func causeOf(err error) Cause {
	if errors.Is(err, context.DeadlineExceeded) {
		return CauseDeadline
	}
	return CauseCanceled
}
