package fault

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchdogTripsOnStall(t *testing.T) {
	w := NewWatchdog(4)
	defer w.Close()
	var f Flag
	w.Arm(&f, 20*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for !f.Tripped() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never tripped a fully stalled run")
		}
		time.Sleep(time.Millisecond)
	}
	w.Disarm()
	if got := f.Cause(); got != CauseStalled {
		t.Fatalf("cause = %v, want CauseStalled", got)
	}
	if !errors.Is(f.Err(), ErrStalled) {
		t.Fatalf("Err() = %v, want ErrStalled", f.Err())
	}
	if w.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", w.Trips())
	}
}

func TestWatchdogNoTripWhileBeating(t *testing.T) {
	w := NewWatchdog(2)
	defer w.Close()
	var f Flag
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				w.Beat(1)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	w.Arm(&f, 30*time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	w.Disarm()
	close(stop)
	<-done
	if f.Tripped() {
		t.Fatalf("flag tripped (%v) despite steady heartbeats", f.Cause())
	}
}

func TestWatchdogRearmAcrossRuns(t *testing.T) {
	w := NewWatchdog(1)
	defer w.Close()

	// Run 1: healthy. Beat from this goroutine between samples.
	var f Flag
	w.Arm(&f, 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		w.Beat(0)
		time.Sleep(5 * time.Millisecond)
	}
	w.Disarm()
	if f.Tripped() {
		t.Fatalf("run 1 tripped: %v", f.Cause())
	}

	// Run 2: stalled. Same flag after Reset, pooled-session style.
	f.Reset()
	w.Arm(&f, 20*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for !f.Tripped() {
		if time.Now().After(deadline) {
			t.Fatal("rearm: watchdog never tripped the stalled run")
		}
		time.Sleep(time.Millisecond)
	}
	w.Disarm()
	if got := f.Cause(); got != CauseStalled {
		t.Fatalf("run 2 cause = %v, want CauseStalled", got)
	}

	// Run 3: healthy again after a trip — the session stays usable.
	f.Reset()
	w.Arm(&f, 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		w.Beat(0)
		time.Sleep(5 * time.Millisecond)
	}
	w.Disarm()
	if f.Tripped() {
		t.Fatalf("run 3 tripped: %v", f.Cause())
	}
	if w.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", w.Trips())
	}
}

func TestWatchdogDisarmIsSynchronous(t *testing.T) {
	w := NewWatchdog(1)
	defer w.Close()
	for i := 0; i < 50; i++ {
		var f Flag
		w.Arm(&f, time.Millisecond)
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		w.Disarm()
		tripped := f.Tripped()
		// After Disarm returns the monitor must never touch f again:
		// whatever state we observe now is final.
		time.Sleep(5 * time.Millisecond)
		if f.Tripped() != tripped {
			t.Fatal("flag tripped after Disarm returned")
		}
	}
}

func TestWatchdogNilAndZeroBudget(t *testing.T) {
	var w *Watchdog
	w.Beat(0)
	w.Arm(&Flag{}, time.Second)
	w.Disarm()
	w.Close()
	if w.Trips() != 0 {
		t.Fatal("nil watchdog reported trips")
	}

	real := NewWatchdog(1)
	defer real.Close()
	var f Flag
	real.Arm(&f, 0)  // no-op: zero budget leaves it disarmed
	real.Arm(nil, 1) // no-op: nil flag
	real.Disarm()
	time.Sleep(10 * time.Millisecond)
	if f.Tripped() {
		t.Fatal("zero-budget arm tripped the flag")
	}
}

func TestWatchdogArmDoesNotAllocate(t *testing.T) {
	w := NewWatchdog(2)
	defer w.Close()
	var f Flag
	allocs := testing.AllocsPerRun(100, func() {
		f.Reset()
		w.Arm(&f, time.Minute)
		w.Beat(0)
		w.Beat(1)
		w.Disarm()
	})
	if allocs != 0 {
		t.Fatalf("Arm/Beat/Disarm cycle allocates %.1f/run, want 0", allocs)
	}
}

func TestWatchdogBeatConcurrent(t *testing.T) {
	const workers = 8
	w := NewWatchdog(workers)
	defer w.Close()
	var f Flag
	w.Arm(&f, 50*time.Millisecond)
	var wg atomic.Int32
	done := make(chan struct{})
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Add(-1)
			for j := 0; j < 1000; j++ {
				w.Beat(tid)
			}
		}(tid)
	}
	go func() {
		for wg.Load() != 0 {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	<-done
	w.Disarm()
	if got := w.sum(); got != workers*1000 {
		t.Fatalf("heartbeat sum = %d, want %d", got, workers*1000)
	}
}
