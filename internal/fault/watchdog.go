package fault

import (
	"sync/atomic"
	"time"
)

// Watchdog detects stuck runs: every worker bumps a private padded
// heartbeat slot at its chunk boundaries (where it already pays a
// synchronization), and a single parked monitor goroutine samples the
// heartbeat sum while a run is armed. When the sum stays unchanged for
// a full stall budget — no worker anywhere claimed a chunk — the
// monitor trips the run's Flag with CauseStalled and the workers drain
// through the same cooperative abort path as a cancellation, leaving
// pooled state reusable.
//
// A Watchdog is built once and rearmed per run (Arm/Disarm), so pooled
// workspaces keep their zero-allocation steady state: Beat is one
// uncontended load+store, and Arm/Disarm exchange a value on a
// preallocated channel with the persistent monitor. A nil *Watchdog is
// valid and inert, so un-hardened callers pay only the nil check.
type Watchdog struct {
	slots []beatSlot
	trips atomic.Int64
	ctl   chan wdCtl
	ack   chan struct{}
}

// beatSlot is one worker's heartbeat, padded to its own cache line so
// beats never false-share (same layout discipline as the obs counter
// slots).
type beatSlot struct {
	n atomic.Int64
	_ [56]byte
}

// wdCtl is a monitor control message: arm with a flag and budget, or
// disarm (flag == nil) with a synchronous ack.
type wdCtl struct {
	flag   *Flag
	budget time.Duration
}

// NewWatchdog returns a watchdog for a team of `workers` virtual
// processors with its monitor goroutine parked. The caller must Close
// it when the owning workspace or engine is done.
func NewWatchdog(workers int) *Watchdog {
	if workers < 1 {
		workers = 1
	}
	w := &Watchdog{
		slots: make([]beatSlot, workers),
		ctl:   make(chan wdCtl),
		ack:   make(chan struct{}, 1),
	}
	go w.monitor()
	return w
}

// Beat records progress for worker tid. Called at chunk boundaries
// only when the worker actually advanced (claimed or drained work), so
// a run where every worker spins idle still reads as stalled. The slot
// is single-writer; load+store avoids a contended RMW.
func (w *Watchdog) Beat(tid int) {
	if w == nil {
		return
	}
	s := &w.slots[tid].n
	s.Store(s.Load() + 1)
}

// Trips returns how many runs this watchdog has aborted.
func (w *Watchdog) Trips() int64 {
	if w == nil {
		return 0
	}
	return w.trips.Load()
}

// Arm starts monitoring a run: if the heartbeat sum stays unchanged
// for a full budget, f trips with CauseStalled. A budget <= 0 leaves
// the watchdog disarmed. The caller must Disarm before resetting f for
// the next run. Arm does not allocate.
func (w *Watchdog) Arm(f *Flag, budget time.Duration) {
	if w == nil || f == nil || budget <= 0 {
		return
	}
	w.ctl <- wdCtl{flag: f, budget: budget}
}

// Disarm stops monitoring. It is synchronous: once Disarm returns the
// monitor holds no flag reference and cannot trip late, so the caller
// may safely Reset the flag for the next run. Disarm when already
// disarmed is a harmless no-op; Disarm does not allocate.
func (w *Watchdog) Disarm() {
	if w == nil {
		return
	}
	w.ctl <- wdCtl{}
	<-w.ack
}

// Close releases the monitor goroutine. The watchdog must be disarmed
// and no Arm/Disarm may race Close; Beat stays safe (it only touches
// the slots).
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	close(w.ctl)
}

// sum folds the per-worker heartbeats; monotone because each slot only
// grows, so "sum unchanged" means "no worker advanced".
func (w *Watchdog) sum() int64 {
	var t int64
	for i := range w.slots {
		t += w.slots[i].n.Load()
	}
	return t
}

// monitor is the parked watchdog goroutine. Disarmed it blocks on ctl;
// armed it samples the heartbeat sum every budget/4 (min 1ms) and
// trips the flag once the sum has been flat for a full budget. The
// sampling timer is reused across runs so arming never allocates
// beyond the timer's one-time setup.
func (w *Watchdog) monitor() {
	timer := time.NewTimer(time.Hour)
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	stopTimer()
	defer stopTimer()

	var (
		armed   bool
		flag    *Flag
		budget  time.Duration
		step    time.Duration
		last    int64
		flatFor time.Duration
	)
	arm := func(m wdCtl) {
		armed, flag, budget = true, m.flag, m.budget
		step = budget / 4
		if step < time.Millisecond {
			step = time.Millisecond
		}
		last = w.sum()
		flatFor = 0
		timer.Reset(step)
	}
	for {
		if !armed {
			m, ok := <-w.ctl
			if !ok {
				return
			}
			if m.flag != nil {
				arm(m)
			} else {
				w.ack <- struct{}{}
			}
			continue
		}
		select {
		case m, ok := <-w.ctl:
			if !ok {
				return
			}
			stopTimer()
			if m.flag != nil {
				arm(m)
			} else {
				armed, flag = false, nil
				w.ack <- struct{}{}
			}
		case <-timer.C:
			cur := w.sum()
			switch {
			case cur != last:
				last, flatFor = cur, 0
			default:
				flatFor += step
				if flatFor >= budget {
					if flag.Trip(CauseStalled) {
						w.trips.Add(1)
					}
					// Stay parked until the owner disarms and rearms;
					// the tripped run drains on its own.
					armed, flag = false, nil
					continue
				}
			}
			timer.Reset(step)
		}
	}
}
