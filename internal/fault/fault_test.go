package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFlagTripsOnce(t *testing.T) {
	var f Flag
	if f.Tripped() || f.Cause() != CauseNone || f.Err() != nil {
		t.Fatal("zero flag must be untripped")
	}
	if !f.Trip(CauseCanceled) {
		t.Fatal("first trip must win")
	}
	if f.Trip(CauseDeadline) {
		t.Fatal("second trip must lose")
	}
	if f.TripPanic(&PanicError{Worker: 1, Value: "late"}) {
		t.Fatal("late panic must lose")
	}
	if f.Cause() != CauseCanceled {
		t.Fatalf("cause = %v, want canceled", f.Cause())
	}
	if !errors.Is(f.Err(), ErrCanceled) || !errors.Is(f.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want ErrCanceled wrapping context.Canceled", f.Err())
	}
	if f.Panic() != nil {
		t.Fatal("Panic() must be nil for a context stop")
	}
}

func TestFlagTripNoneIsNoop(t *testing.T) {
	var f Flag
	if f.Trip(CauseNone) {
		t.Fatal("tripping with CauseNone must be rejected")
	}
	if f.Tripped() {
		t.Fatal("flag tripped by CauseNone")
	}
}

func TestNilFlagIsNeverTripping(t *testing.T) {
	var f *Flag
	if f.Tripped() || f.Trip(CauseCanceled) || f.Cause() != CauseNone ||
		f.Err() != nil || f.Panic() != nil || f.TripPanic(&PanicError{}) {
		t.Fatal("nil flag must be inert")
	}
}

func TestPanicTrip(t *testing.T) {
	var f Flag
	pe := &PanicError{Worker: 3, Value: "boom"}
	if !f.TripPanic(pe) {
		t.Fatal("panic trip must win on a fresh flag")
	}
	if f.Cause() != CausePanicked {
		t.Fatalf("cause = %v, want panicked", f.Cause())
	}
	if got := f.Panic(); got != pe {
		t.Fatalf("Panic() = %v, want the recorded error", got)
	}
	var want *PanicError
	if !errors.As(f.Err(), &want) || want.Worker != 3 {
		t.Fatalf("Err() = %v, want the *PanicError", f.Err())
	}
}

func TestDeadlineError(t *testing.T) {
	var f Flag
	f.Trip(CauseDeadline)
	if !errors.Is(f.Err(), ErrDeadline) || !errors.Is(f.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want ErrDeadline wrapping DeadlineExceeded", f.Err())
	}
}

func TestConcurrentTripsExactlyOneWinner(t *testing.T) {
	var f Flag
	const racers = 16
	var wg sync.WaitGroup
	wins := make([]bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				wins[i] = f.Trip(CauseCanceled)
			} else {
				wins[i] = f.TripPanic(&PanicError{Worker: i})
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		if w {
			total++
		}
	}
	if total != 1 {
		t.Fatalf("%d winners, want exactly 1", total)
	}
	// A panicked winner must expose its PanicError even to a reader that
	// raced the store.
	if f.Cause() == CausePanicked && f.Panic() == nil {
		t.Fatal("panicked flag lost its PanicError")
	}
}

func TestWatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var f Flag
	stop := Watch(ctx, &f)
	defer stop()
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !f.Tripped() {
		if time.Now().After(deadline) {
			t.Fatal("watcher never tripped the flag")
		}
		time.Sleep(time.Millisecond)
	}
	if f.Cause() != CauseCanceled {
		t.Fatalf("cause = %v, want canceled", f.Cause())
	}
}

func TestWatchDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	var f Flag
	stop := Watch(ctx, &f)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for !f.Tripped() {
		if time.Now().After(deadline) {
			t.Fatal("watcher never tripped the flag")
		}
		time.Sleep(time.Millisecond)
	}
	if f.Cause() != CauseDeadline {
		t.Fatalf("cause = %v, want deadline", f.Cause())
	}
}

func TestWatchBackgroundSpawnsNothing(t *testing.T) {
	var f Flag
	stop := Watch(context.Background(), &f)
	stop()
	stop() // idempotent
	if f.Tripped() {
		t.Fatal("background watch tripped the flag")
	}
}

func TestWatchStopReleasesWatcher(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var f Flag
	stop := Watch(ctx, &f)
	stop()
	stop() // idempotent
	cancel()
	time.Sleep(5 * time.Millisecond)
	if f.Tripped() {
		t.Fatal("stopped watcher still tripped the flag")
	}
}
