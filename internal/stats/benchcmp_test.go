package stats

import (
	"strings"
	"testing"

	"spantree/internal/obs"
)

// artifactWith builds an obs artifact of (label, elapsed, attempts,
// successes) runs.
func artifactWith(runs ...obs.Report) *obs.Artifact {
	return &obs.Artifact{Schema: obs.Schema, SchemaVersion: obs.SchemaVersion, Runs: runs}
}

func run(label string, elapsedNS, attempts, successes int64) obs.Report {
	r := obs.Report{Schema: obs.Schema, Label: label, ElapsedNS: elapsedNS}
	r.Snapshot.Totals.StealAttempts = attempts
	r.Snapshot.Totals.StealSuccesses = successes
	return r
}

func TestCompareArtifactsPassAndFail(t *testing.T) {
	base := artifactWith(
		run("NewAlg/torus2d-64x64{n=4096 m=8192}/p=4", 10_000_000, 100, 80),
	)
	// Within tolerance: +10% wall, same hit rate.
	cur := artifactWith(
		run("NewAlg/torus2d-64x64{n=4096 m=8192}/p=4", 11_000_000, 100, 80),
	)
	res := CompareArtifacts(base, cur, BenchCompareOptions{})
	if len(res.Comparisons) != 1 || res.Failed() {
		t.Fatalf("within-tolerance comparison failed: %s", res.String())
	}

	// Wall regression beyond 15%.
	cur = artifactWith(run("NewAlg/torus2d-64x64{n=4096 m=8192}/p=4", 12_000_000, 100, 80))
	res = CompareArtifacts(base, cur, BenchCompareOptions{})
	if !res.Failed() {
		t.Fatalf("20%% wall regression passed: %s", res.String())
	}

	// Steal hit rate collapse at equal wall time.
	cur = artifactWith(run("NewAlg/torus2d-64x64{n=4096 m=8192}/p=4", 10_000_000, 100, 40))
	res = CompareArtifacts(base, cur, BenchCompareOptions{})
	if !res.Failed() {
		t.Fatalf("hit-rate collapse 0.80 -> 0.40 passed: %s", res.String())
	}
}

func TestCompareArtifactsPoolsRepetitions(t *testing.T) {
	// Three same-label repetitions: wall is the min, steal counts pool.
	base := artifactWith(run("NewAlg/g/p=2", 10_000_000, 10, 8))
	cur := artifactWith(
		run("NewAlg/g/p=2", 30_000_000, 10, 2),
		run("NewAlg/g/p=2", 10_500_000, 10, 10),
		run("NewAlg/g/p=2", 40_000_000, 10, 12),
	)
	res := CompareArtifacts(base, cur, BenchCompareOptions{})
	if res.Failed() {
		t.Fatalf("pooled comparison failed: %s", res.String())
	}
	c := res.Comparisons[0]
	if c.CurWallNS != 10_500_000 {
		t.Fatalf("wall = %d, want min over repetitions 10500000", c.CurWallNS)
	}
	if got, want := c.CurHitRate, 24.0/30.0; got != want {
		t.Fatalf("hit rate = %v, want pooled %v", got, want)
	}
}

func TestCompareArtifactsMinWallFloorAndUnmatched(t *testing.T) {
	base := artifactWith(
		run("NewAlg/tiny/p=1", 50_000, 0, 0),     // under the noise floor
		run("NewAlg/gone/p=1", 10_000_000, 0, 0), // absent from current
	)
	cur := artifactWith(run("NewAlg/tiny/p=1", 500_000, 0, 0)) // 10x slower but sub-floor
	res := CompareArtifacts(base, cur, BenchCompareOptions{MinWallNS: 1_000_000})
	if res.Failed() {
		t.Fatalf("sub-floor timing gated: %s", res.String())
	}
	if len(res.Comparisons) != 1 || res.Comparisons[0].WallChecked {
		t.Fatalf("sub-floor entry should be compared but not wall-checked: %+v", res.Comparisons)
	}
	if len(res.Unmatched) != 1 || res.Unmatched[0] != "NewAlg/gone/p=1" {
		t.Fatalf("unmatched = %v", res.Unmatched)
	}
}

func TestZeroAttemptsHitRateIsOne(t *testing.T) {
	// An always-busy run (p=1, no steals) must not read as a collapse.
	base := artifactWith(run("NewAlg/g/p=1", 10_000_000, 0, 0))
	cur := artifactWith(run("NewAlg/g/p=1", 10_000_000, 0, 0))
	res := CompareArtifacts(base, cur, BenchCompareOptions{})
	if res.Failed() || res.Comparisons[0].CurHitRate != 1 {
		t.Fatalf("zero-attempt hit rate: %+v", res.Comparisons)
	}
}

func TestCompareHotpathFamilyMapping(t *testing.T) {
	baseline := []byte(`{
		"schema": "spantree/bench/hotpath/v1",
		"benchmarks": [
			{"name": "BenchmarkFig4TorusRandom/newalg-p4", "after_ns_op": 3139279},
			{"name": "BenchmarkFig4GeoHier/newalg-p8", "after_ns_op": 2465722},
			{"name": "BenchmarkStealHalfOwnerPath/chunked-64", "after_ns_op": 1}
		]
	}`)
	cur := artifactWith(
		run("NewAlg/torus2d-256x256+randlabel{n=65536 m=131072}/p=4", 3_000_000, 50, 40),
		run("NewAlg/geohier-n65536{n=65536 m=196573}/p=8", 2_400_000, 50, 40),
		run("SV/torus2d-256x256+randlabel{n=65536 m=131072}/p=4", 1, 0, 0),
	)
	res, err := CompareHotpath(baseline, cur, BenchCompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparisons) != 2 {
		t.Fatalf("compared %d entries, want the 2 covered families: %s", len(res.Comparisons), res.String())
	}
	if res.Failed() {
		t.Fatalf("faster-than-baseline run failed: %s", res.String())
	}
	// A slower run must trip the gate at the default 15%.
	cur = artifactWith(run("NewAlg/torus2d-256x256+randlabel{n=65536 m=131072}/p=4", 4_000_000, 0, 0))
	res, err = CompareHotpath(baseline, cur, BenchCompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("27%% hot-path regression passed: %s", res.String())
	}
	// Wider tolerance (the cross-host smoke setting) lets it through.
	res, err = CompareHotpath(baseline, cur, BenchCompareOptions{WallTol: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("regression within widened tolerance failed: %s", res.String())
	}
}

func TestWallNoiseBudgetAndHardBound(t *testing.T) {
	// Identical binaries run back-to-back on a shared host leave a few
	// entries in the ±20% tail, so the nightly gate runs with a small
	// soft-breach allowance plus a hard per-entry bound.
	base := artifactWith(
		run("NewAlg/a/p=8", 100_000_000, 100, 80),
		run("NewAlg/b/p=8", 100_000_000, 100, 80),
		run("NewAlg/c/p=8", 100_000_000, 100, 80),
	)
	noisy := artifactWith(
		run("NewAlg/a/p=8", 122_000_000, 100, 80), // +22%: soft breach
		run("NewAlg/b/p=8", 119_000_000, 100, 80), // +19%: soft breach
		run("NewAlg/c/p=8", 101_000_000, 100, 80),
	)
	opt := BenchCompareOptions{WallNoiseBudget: 2, WallHardTol: 0.5}
	res := CompareArtifacts(base, noisy, opt)
	if res.Failed() {
		t.Fatalf("2 soft breaches within budget 2 failed: %s", res.String())
	}
	if n := res.softBreaches(); n != 2 {
		t.Fatalf("counted %d soft breaches, want 2", n)
	}

	// A third soft breach exhausts the budget.
	noisy.Runs[2] = run("NewAlg/c/p=8", 120_000_000, 100, 80)
	if res = CompareArtifacts(base, noisy, opt); !res.Failed() {
		t.Fatalf("3 soft breaches over budget 2 passed: %s", res.String())
	}

	// One entry past the hard bound fails regardless of remaining budget.
	blowup := artifactWith(
		run("NewAlg/a/p=8", 160_000_000, 100, 80), // +60% > hard 50%
		run("NewAlg/b/p=8", 100_000_000, 100, 80),
		run("NewAlg/c/p=8", 100_000_000, 100, 80),
	)
	if res = CompareArtifacts(base, blowup, opt); !res.Failed() {
		t.Fatalf("hard-bound breach excused by the noise budget: %s", res.String())
	}

	// A steal-rate collapse inside an otherwise-soft entry is never excused.
	collapse := artifactWith(
		run("NewAlg/a/p=8", 120_000_000, 100, 20), // +20% wall AND 0.8 -> 0.2
		run("NewAlg/b/p=8", 100_000_000, 100, 80),
		run("NewAlg/c/p=8", 100_000_000, 100, 80),
	)
	if res = CompareArtifacts(base, collapse, opt); !res.Failed() {
		t.Fatalf("steal collapse excused by the noise budget: %s", res.String())
	}
}

func TestMinStealAttemptsFloor(t *testing.T) {
	// A hit-rate swing over a few dozen attempts is binomial noise; the
	// floor keeps the steal gate on well-sampled entries only.
	base := artifactWith(
		run("NewAlg/small/p=8", 10_000_000, 57, 54),    // under the floor
		run("NewAlg/big/p=8", 100_000_000, 5000, 4500), // over the floor
	)
	cur := artifactWith(
		run("NewAlg/small/p=8", 10_000_000, 71, 52), // 0.95 -> 0.73: ignored
		run("NewAlg/big/p=8", 100_000_000, 5000, 4500),
	)
	res := CompareArtifacts(base, cur, BenchCompareOptions{MinStealAttempts: 100})
	if res.Failed() {
		t.Fatalf("under-sampled hit-rate swing gated: %s", res.String())
	}
	for _, c := range res.Comparisons {
		wantChecked := c.Name == "NewAlg/big/p=8"
		if c.StealChecked != wantChecked {
			t.Fatalf("%s StealChecked = %v, want %v", c.Name, c.StealChecked, wantChecked)
		}
	}

	// The floor must not mask a collapse on a well-sampled entry.
	cur = artifactWith(
		run("NewAlg/small/p=8", 10_000_000, 57, 54),
		run("NewAlg/big/p=8", 100_000_000, 5000, 2000),
	)
	if res = CompareArtifacts(base, cur, BenchCompareOptions{MinStealAttempts: 100}); !res.Failed() {
		t.Fatalf("well-sampled collapse passed under the floor: %s", res.String())
	}
}

func TestCompareHotpathRejectsWrongSchema(t *testing.T) {
	if _, err := CompareHotpath([]byte(`{"schema":"nope"}`), artifactWith(), BenchCompareOptions{}); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestVariantWarning(t *testing.T) {
	withMeta := func(label, dir, lay string) obs.Report {
		r := run(label, 10_000_000, 0, 0)
		r.Meta = map[string]string{"direction": dir, "layout": lay}
		return r
	}
	base := artifactWith(withMeta("NewAlg/g/p=4", "auto", "wide"))
	same := artifactWith(withMeta("NewAlg/g/p=4", "auto", "wide"))
	if w := VariantWarning(Variants(base), Variants(same)); w != "" {
		t.Fatalf("matching variants warned: %q", w)
	}

	// Layout drift alone, direction drift alone, and both.
	layDrift := artifactWith(withMeta("NewAlg/g/p=4", "auto", "compact"))
	if w := VariantWarning(Variants(base), Variants(layDrift)); w == "" {
		t.Fatal("layout mismatch not warned")
	}
	dirDrift := artifactWith(withMeta("NewAlg/g/p=4", "topdown", "wide"))
	if w := VariantWarning(Variants(base), Variants(dirDrift)); w == "" {
		t.Fatal("direction mismatch not warned")
	}
	both := artifactWith(withMeta("NewAlg/g/p=4", "topdown", "compact"))
	w := VariantWarning(Variants(base), Variants(both))
	if w == "" {
		t.Fatal("double mismatch not warned")
	}

	// Artifacts that predate variant stamping stay silent: unknown is
	// not a mismatch.
	unstamped := artifactWith(run("NewAlg/g/p=4", 10_000_000, 0, 0))
	if w := VariantWarning(Variants(unstamped), Variants(both)); w != "" {
		t.Fatalf("unknown baseline warned: %q", w)
	}
	if w := VariantWarning(Variants(base), Variants(unstamped)); w != "" {
		t.Fatalf("unknown current warned: %q", w)
	}

	// Algorithm-family drift warns alongside direction and layout: a
	// spanuf baseline compared against traversal numbers (or vice versa)
	// is not a regression signal.
	withAlg := func(label, alg string) obs.Report {
		r := run(label, 10_000_000, 0, 0)
		r.Meta = map[string]string{"alg": alg, "layout": "wide"}
		return r
	}
	wsBase := artifactWith(withAlg("NewAlg/g/p=4", "workstealing"))
	ufCur := artifactWith(withAlg("SpanUF/g/p=4", "spanuf"))
	w = VariantWarning(Variants(wsBase), Variants(ufCur))
	if w == "" || !strings.Contains(w, "alg") {
		t.Fatalf("alg mismatch not warned: %q", w)
	}
	if w := VariantWarning(Variants(wsBase), Variants(artifactWith(withAlg("NewAlg/g/p=4", "workstealing")))); w != "" {
		t.Fatalf("matching alg warned: %q", w)
	}
}
