package stats

// The serving benchmark schema (spantree/serving/v1): what cmd/loadgen
// writes after driving a spantreed instance, and what cmd/benchcmp
// gates against results/BENCH_serving_baseline.json. Each scenario is
// one load shape (closed-loop at a concurrency, or open-loop at a
// rate) summarized by its latency percentiles; the regression gate
// compares p99 — the serving SLO metric — with the same soft/hard
// tolerance and noise-budget machinery as the wall-clock gate.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"spantree/internal/obs"
)

// ServingSchema identifies a serving benchmark artifact.
const ServingSchema = "spantree/serving/v1"

// ServingScenario is one measured load shape.
type ServingScenario struct {
	// Name identifies the scenario for baseline matching, e.g.
	// "closed-c4" (closed loop, concurrency 4) or "open-r200".
	Name string `json:"name"`
	// Mode is "closed" (fixed concurrency, next request on completion)
	// or "open" (fixed arrival rate).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency,omitempty"`
	RateRPS     float64 `json:"rate_rps,omitempty"`
	Graph       string  `json:"graph"`

	// Outcome counts. Requests is the total issued; OK completed with
	// 2xx; Rejected were turned away by admission control (429);
	// Deadlines hit the server deadline (504); Errors is everything
	// else (transport failures, 5xx).
	Requests  int `json:"requests"`
	OK        int `json:"ok"`
	Rejected  int `json:"rejected"`
	Deadlines int `json:"deadlines"`
	Errors    int `json:"errors"`
	// Stalled counts runs the server's stuck-run watchdog aborted (503
	// stalled) that client-side retries did not recover; Retries counts
	// retry attempts the client spent across the scenario. Both are
	// additive schema fields (absent in older artifacts).
	Stalled int `json:"stalled,omitempty"`
	Retries int `json:"retries,omitempty"`

	// DurationNS is the scenario's wall time; ThroughputRPS is
	// OK/duration.
	DurationNS    int64   `json:"duration_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Latency percentiles over successful requests, in nanoseconds.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// ServingArtifact is the serving benchmark file.
type ServingArtifact struct {
	Schema    string            `json:"schema"`
	Host      obs.HostShape     `json:"host"`
	Meta      map[string]string `json:"meta,omitempty"`
	Scenarios []ServingScenario `json:"scenarios"`
}

// WriteFile writes the artifact as indented JSON, creating parent
// directories and stamping the schema and host shape.
func (a *ServingArtifact) WriteFile(path string) error {
	a.Schema = ServingSchema
	if a.Host.NumCPU == 0 {
		a.Host = obs.CurrentHost()
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("stats: encoding serving artifact: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("stats: creating %s: %w", dir, err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("stats: writing serving artifact: %w", err)
	}
	return nil
}

// ReadServingArtifact reads a serving artifact (schema checked).
func ReadServingArtifact(path string) (*ServingArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a ServingArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("stats: decoding %s: %w", path, err)
	}
	if a.Schema != ServingSchema {
		return nil, fmt.Errorf("stats: %s has schema %q, want %q", path, a.Schema, ServingSchema)
	}
	return &a, nil
}

// LatencySummary computes the percentile fields from raw per-request
// latencies (nanoseconds; the slice is sorted in place). Percentiles
// use the nearest-rank method on successful requests only.
func (s *ServingScenario) LatencySummary(latenciesNS []int64) {
	if len(latenciesNS) == 0 {
		return
	}
	sort.Slice(latenciesNS, func(i, j int) bool { return latenciesNS[i] < latenciesNS[j] })
	rank := func(p float64) int64 {
		i := int(p*float64(len(latenciesNS))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latenciesNS) {
			i = len(latenciesNS) - 1
		}
		return latenciesNS[i]
	}
	s.P50NS = rank(0.50)
	s.P99NS = rank(0.99)
	s.P999NS = rank(0.999)
	s.MaxNS = latenciesNS[len(latenciesNS)-1]
}

// CompareServing gates a current serving artifact against a baseline,
// scenario-for-scenario on p99 latency, reusing the wall-clock gate's
// tolerance, noise-budget, and hard-bound machinery (p99 is "the wall
// metric" of a serving benchmark). A scenario whose error count grew
// from zero fails outright — latency percentiles over a different
// success population are not comparable.
func CompareServing(baseline, current *ServingArtifact, opt BenchCompareOptions) *BenchCompareResult {
	o := opt.withDefaults()
	cur := make(map[string]ServingScenario, len(current.Scenarios))
	for _, s := range current.Scenarios {
		cur[s.Name] = s
	}
	res := &BenchCompareResult{WallNoiseBudget: o.WallNoiseBudget}
	base := append([]ServingScenario(nil), baseline.Scenarios...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	for _, b := range base {
		c, ok := cur[b.Name]
		if !ok {
			res.Unmatched = append(res.Unmatched, b.Name)
			continue
		}
		cmp := compareEntry(b.Name, benchEntry{wallNS: b.P99NS}, benchEntry{wallNS: c.P99NS}, false, o)
		if b.Errors == 0 && c.Errors > 0 {
			cmp.Failures = append(cmp.Failures, fmt.Sprintf("%d requests errored (baseline had none)", c.Errors))
			cmp.WallSoftOnly = false
		}
		res.Comparisons = append(res.Comparisons, cmp)
	}
	return res
}

// DegradeRungWarning renders a warning line when either serving run was
// measured against a server holding a degradation rung (meta
// "degrade_rung" stamped by loadgen), or the two runs disagree on the
// rung. Percentiles at different rungs price different execution
// configurations (sharded vs unsharded vs sequential), so the gate
// warns instead of failing — degradation is the resilience ladder doing
// its job under ambient load, not a latency regression in the code.
func DegradeRungWarning(base, cur map[string]string) string {
	norm := func(m map[string]string) string {
		if v := m["degrade_rung"]; v != "" {
			return v
		}
		return "0"
	}
	b, c := norm(base), norm(cur)
	if b == "0" && c == "0" {
		return ""
	}
	if b == c {
		return fmt.Sprintf("warning: both runs measured at degradation rung %s — comparable to each other, but neither reflects the full configuration", b)
	}
	return fmt.Sprintf("warning: degradation rung differs — baseline %s, current %s; p99 across rungs compares different execution configurations", b, c)
}

// HostShapeWarning renders a warning line when two host shapes are both
// known and differ on timing-relevant fields, or "" when they agree.
// Shape drift makes timings incomparable, but it is the host's fault,
// not the code's — the gate warns instead of failing.
func HostShapeWarning(base, cur obs.HostShape) string {
	if !base.Differs(cur) {
		return ""
	}
	return fmt.Sprintf("warning: host shape differs — baseline %s, current %s; timings are not comparable across shapes",
		base, cur)
}
