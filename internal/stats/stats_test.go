package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-1.29099) > 1e-4 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median %v", odd.Median)
	}
	single := Summarize([]float64{7})
	if single.StdDev != 0 || single.Mean != 7 {
		t.Fatalf("single %+v", single)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestSummarizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Scale into a range where sums cannot overflow; the
				// helpers target benchmark timings, not astronomy.
				clean = append(clean, math.Mod(x, 1e12))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2.0 {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestSpeedup(t *testing.T) {
	if sp := Speedup(10*time.Second, 2*time.Second); sp != 5 {
		t.Fatalf("speedup %v", sp)
	}
	if sp := Speedup(time.Second, 0); sp != 0 {
		t.Fatalf("zero-measured speedup %v", sp)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule missing: %q", lines[1])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows %d", tb.NumRows())
	}
	// Columns align: the value column starts after the widest name cell.
	if !strings.HasPrefix(lines[2], "alpha  1") {
		t.Fatalf("alignment wrong: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2")
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV %q, want %q", got, want)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("x", "y", "z")
	tb.AddRowf("%d %s %.1f", 1, "two", 3.0)
	if tb.NumRows() != 1 {
		t.Fatal("AddRowf lost the row")
	}
	if !strings.Contains(tb.String(), "two") {
		t.Fatal("AddRowf content missing")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:         "2.000s",
		1500 * time.Microsecond: "1.500ms",
		250 * time.Nanosecond:   "250ns",
		3 * time.Microsecond:    "3.000µs",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}
