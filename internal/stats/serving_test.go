package stats

import (
	"path/filepath"
	"strings"
	"testing"

	"spantree/internal/obs"
)

func servingScenario(name string, p99 int64) ServingScenario {
	return ServingScenario{
		Name: name, Mode: "closed", Concurrency: 4, Graph: "g",
		Requests: 100, OK: 100, P50NS: p99 / 2, P99NS: p99, P999NS: p99, MaxNS: p99,
	}
}

func TestCompareServing(t *testing.T) {
	base := &ServingArtifact{Scenarios: []ServingScenario{
		servingScenario("closed-c1", 1_000_000),
		servingScenario("closed-c4", 2_000_000),
		servingScenario("gone", 1_000_000),
	}}
	cur := &ServingArtifact{Scenarios: []ServingScenario{
		servingScenario("closed-c1", 1_050_000), // +5%: within tolerance
		servingScenario("closed-c4", 3_500_000), // +75%: hard breach
	}}
	res := CompareServing(base, cur, BenchCompareOptions{WallTol: 0.5, WallHardTol: 0.7})
	if len(res.Comparisons) != 2 || len(res.Unmatched) != 1 || res.Unmatched[0] != "gone" {
		t.Fatalf("result: %+v", res)
	}
	if !res.Failed() {
		t.Fatal("75% p99 regression passed")
	}
	if got := res.Comparisons[0]; len(got.Failures) != 0 || !got.WallChecked {
		t.Fatalf("closed-c1: %+v", got)
	}

	// New errors fail even with identical latency.
	errCur := &ServingArtifact{Scenarios: []ServingScenario{servingScenario("closed-c1", 1_000_000)}}
	errCur.Scenarios[0].Errors = 3
	res = CompareServing(&ServingArtifact{Scenarios: []ServingScenario{servingScenario("closed-c1", 1_000_000)}},
		errCur, BenchCompareOptions{})
	if !res.Failed() {
		t.Fatal("errored scenario passed")
	}
}

func TestCompareServingNoiseBudget(t *testing.T) {
	base := &ServingArtifact{Scenarios: []ServingScenario{
		servingScenario("a", 1_000_000),
		servingScenario("b", 1_000_000),
	}}
	cur := &ServingArtifact{Scenarios: []ServingScenario{
		servingScenario("a", 1_600_000), // soft breach at 50% tolerance
		servingScenario("b", 1_000_000),
	}}
	opt := BenchCompareOptions{WallTol: 0.5, WallNoiseBudget: 1, WallHardTol: 2.0}
	if res := CompareServing(base, cur, opt); res.Failed() {
		t.Fatal("one soft breach exceeded a budget of one")
	}
	opt.WallNoiseBudget = 0
	if res := CompareServing(base, cur, opt); !res.Failed() {
		t.Fatal("soft breach passed without a budget")
	}
}

func TestServingArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serving.json")
	a := &ServingArtifact{
		Meta:      map[string]string{"url": "http://x"},
		Scenarios: []ServingScenario{servingScenario("closed-c1", 5)},
	}
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServingArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ServingSchema || got.Host.NumCPU < 1 || got.Host.GOMAXPROCS < 1 {
		t.Fatalf("host shape not stamped: %+v", got)
	}
	if len(got.Scenarios) != 1 || got.Scenarios[0].Name != "closed-c1" {
		t.Fatalf("scenarios: %+v", got.Scenarios)
	}
}

func TestLatencySummary(t *testing.T) {
	var s ServingScenario
	lats := make([]int64, 1000)
	for i := range lats {
		lats[i] = int64(i + 1) // 1..1000
	}
	s.LatencySummary(lats)
	if s.P50NS != 500 || s.P99NS != 990 || s.P999NS != 999 || s.MaxNS != 1000 {
		t.Fatalf("percentiles: %+v", s)
	}
}

func TestHostShapeWarning(t *testing.T) {
	a := obs.HostShape{NumCPU: 8, GOMAXPROCS: 8}
	b := obs.HostShape{NumCPU: 4, GOMAXPROCS: 4}
	if w := HostShapeWarning(a, b); !strings.Contains(w, "host shape differs") {
		t.Fatalf("warning: %q", w)
	}
	if w := HostShapeWarning(a, a); w != "" {
		t.Fatalf("same shape warned: %q", w)
	}
	// Unknown shapes (pre-stamping artifacts) never warn.
	if w := HostShapeWarning(obs.HostShape{}, b); w != "" {
		t.Fatalf("unknown shape warned: %q", w)
	}
}

func TestDegradeRungWarning(t *testing.T) {
	rung := func(v string) map[string]string {
		if v == "" {
			return nil
		}
		return map[string]string{"degrade_rung": v}
	}
	// Undegraded runs — stamped or unstamped (older artifacts) — are
	// silent.
	if w := DegradeRungWarning(rung("0"), rung("0")); w != "" {
		t.Fatalf("rung 0 vs 0 warned: %q", w)
	}
	if w := DegradeRungWarning(rung(""), rung("")); w != "" {
		t.Fatalf("unstamped vs unstamped warned: %q", w)
	}
	// A rung mismatch warns with both values.
	w := DegradeRungWarning(rung("0"), rung("2"))
	if !strings.Contains(w, "baseline 0") || !strings.Contains(w, "current 2") {
		t.Fatalf("mismatch warning: %q", w)
	}
	// An unstamped baseline against a degraded current still warns.
	if w := DegradeRungWarning(rung(""), rung("1")); w == "" {
		t.Fatal("unstamped baseline vs degraded current did not warn")
	}
	// Matching nonzero rungs warn too — comparable, but not the full
	// configuration.
	if w := DegradeRungWarning(rung("3"), rung("3")); !strings.Contains(w, "rung 3") {
		t.Fatalf("matched degraded warning: %q", w)
	}
}
