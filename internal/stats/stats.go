// Package stats provides the small statistics and table-formatting
// helpers the benchmark harness uses to report experiment results the
// way the paper does: repeated timed runs summarized by their minimum
// (the conventional benchmark estimator), speedups against a sequential
// reference, and aligned text tables / CSV series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary condenses a sample of measurements.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	StdDev       float64
}

// Summarize computes a Summary of xs. It panics on an empty sample:
// callers always control the repeat count.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// SummarizeDurations converts durations to seconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// Speedup returns reference/measured, the paper's speedup definition
// (sequential time over parallel time). It returns 0 when measured is 0.
func Speedup(reference, measured time.Duration) float64 {
	if measured == 0 {
		return 0
	}
	return float64(reference) / float64(measured)
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: the
// harness never emits commas in cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatDuration renders a duration with 3 significant figures in the
// most natural unit, for table cells.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
