package stats

// Benchmark regression gating: compare a freshly measured metrics
// artifact (spantree/obs/v1, as written by cmd/benchfig -metrics or
// cmd/spantree -metrics) against a checked-in baseline and fail when
// wall-clock time or the steal hit rate regresses beyond a tolerance.
// Two baseline shapes are accepted:
//
//   - another obs artifact (the nightly pipeline's checked-in
//     results/BENCH_nightly_baseline.json), matched label-for-label;
//
//   - the hot-path overhaul record results/BENCH_hotpath.json
//     (spantree/bench/hotpath/v1), whose benchmark names are mapped onto
//     metric labels by graph family and processor count, gating only
//     wall-clock (the record predates steal-rate reporting).
//
// Wall-clock entries are summarized by the minimum over repetitions
// (the conventional benchmark estimator, and why the harness emits one
// same-label report per repetition); steal counters are pooled across
// repetitions before forming the hit rate, which stabilizes the ratio
// on runs with few attempts.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"spantree/internal/obs"
)

// BenchCompareOptions sets the regression tolerances.
type BenchCompareOptions struct {
	// WallTol is the allowed relative wall-clock slowdown: current may be
	// up to (1+WallTol) times the baseline. 0 means the default 0.15.
	WallTol float64
	// StealTol is the allowed relative drop in steal hit rate
	// (successes/attempts): current may be as low as (1-StealTol) times
	// the baseline rate. 0 means the default 0.15.
	StealTol float64
	// MinWallNS skips the wall-clock gate for baseline entries faster
	// than this (sub-noise timings on tiny inputs gate nothing reliably).
	// The steal-rate gate still applies.
	MinWallNS int64
	// WallNoiseBudget tolerates up to this many entries over WallTol
	// before the gate fails. Back-to-back runs of identical binaries on
	// a shared host show a few entries in the ±20% tail even at
	// min-of-3, so a per-entry gate needs a small allowance to separate
	// scheduler noise from a real regression (which moves many entries,
	// or one entry past WallHardTol). Default 0: every breach fails.
	WallNoiseBudget int
	// WallHardTol is a per-entry bound the noise budget never excuses
	// (catches a localized blowup hiding inside the budget). 0 disables.
	WallHardTol float64
	// MinStealAttempts skips the steal-rate gate for entries whose
	// baseline pooled under this many attempts: with a few dozen steals
	// the hit rate is binomial noise (identical binaries measured 0.95
	// and 0.73 on the same small input), not a signal. 0 gates all.
	MinStealAttempts int64
}

func (o BenchCompareOptions) withDefaults() BenchCompareOptions {
	if o.WallTol == 0 {
		o.WallTol = 0.15
	}
	if o.StealTol == 0 {
		o.StealTol = 0.15
	}
	return o
}

// BenchComparison is the verdict for one matched entry.
type BenchComparison struct {
	// Name is the baseline entry's identity (a metric label, or a
	// hot-path benchmark name).
	Name string
	// Wall-clock, in nanoseconds (min over repetitions); WallChecked is
	// false when the baseline timing was under MinWallNS.
	BaseWallNS  int64
	CurWallNS   int64
	WallChecked bool
	// Steal hit rate (pooled successes/attempts, 1.0 when no attempts);
	// StealChecked is false for baselines without steal counters.
	BaseHitRate  float64
	CurHitRate   float64
	StealChecked bool
	// Failures lists the gates this entry broke (empty = pass).
	Failures []string
	// WallSoftOnly marks an entry whose only breach is the soft
	// wall-clock tolerance — the kind WallNoiseBudget may excuse.
	WallSoftOnly bool
}

// BenchCompareResult is the outcome of one baseline/current comparison.
type BenchCompareResult struct {
	Comparisons []BenchComparison
	// Unmatched lists baseline entries with no current counterpart.
	Unmatched []string
	// WallNoiseBudget echoes the option used, for Failed and String.
	WallNoiseBudget int
}

// Failed reports whether the comparison breaks the gate: any steal-rate
// or hard wall-clock breach fails outright; soft wall-clock breaches
// fail only when they outnumber the noise budget.
func (r *BenchCompareResult) Failed() bool {
	soft := 0
	for _, c := range r.Comparisons {
		if len(c.Failures) == 0 {
			continue
		}
		if c.WallSoftOnly {
			soft++
			continue
		}
		return true
	}
	return soft > r.WallNoiseBudget
}

// softBreaches counts entries whose only failure is the soft wall gate.
func (r *BenchCompareResult) softBreaches() int {
	n := 0
	for _, c := range r.Comparisons {
		if len(c.Failures) > 0 && c.WallSoftOnly {
			n++
		}
	}
	return n
}

// String renders the comparison as an aligned text report.
func (r *BenchCompareResult) String() string {
	var b strings.Builder
	for _, c := range r.Comparisons {
		status := "ok  "
		if len(c.Failures) > 0 {
			status = "FAIL"
			if c.WallSoftOnly && r.WallNoiseBudget > 0 {
				status = "warn"
			}
		}
		fmt.Fprintf(&b, "%s %s", status, c.Name)
		if c.WallChecked {
			fmt.Fprintf(&b, "  wall %.3fms -> %.3fms (%+.1f%%)",
				float64(c.BaseWallNS)/1e6, float64(c.CurWallNS)/1e6,
				100*(float64(c.CurWallNS)/float64(c.BaseWallNS)-1))
		}
		if c.StealChecked {
			fmt.Fprintf(&b, "  stealhit %.3f -> %.3f", c.BaseHitRate, c.CurHitRate)
		}
		b.WriteByte('\n')
		for _, f := range c.Failures {
			fmt.Fprintf(&b, "     ^ %s\n", f)
		}
	}
	for _, u := range r.Unmatched {
		fmt.Fprintf(&b, "skip %s: no matching entry in current metrics\n", u)
	}
	if r.WallNoiseBudget > 0 {
		fmt.Fprintf(&b, "wall-clock noise budget: %d/%d soft breaches used\n",
			r.softBreaches(), r.WallNoiseBudget)
	}
	return b.String()
}

// benchEntry is one label's pooled measurement.
type benchEntry struct {
	wallNS    int64 // min elapsed over repetitions (0 = no timing)
	attempts  int64
	successes int64
}

func (e benchEntry) hitRate() float64 {
	if e.attempts == 0 {
		return 1
	}
	return float64(e.successes) / float64(e.attempts)
}

// poolRuns groups an artifact's reports by label, taking the minimum
// elapsed time and summing steal counters over same-label repetitions.
func poolRuns(a *obs.Artifact) map[string]benchEntry {
	out := make(map[string]benchEntry)
	for _, run := range a.Runs {
		e := out[run.Label]
		if run.ElapsedNS > 0 && (e.wallNS == 0 || run.ElapsedNS < e.wallNS) {
			e.wallNS = run.ElapsedNS
		}
		e.attempts += run.Snapshot.Totals.StealAttempts
		e.successes += run.Snapshot.Totals.StealSuccesses
		out[run.Label] = e
	}
	return out
}

func compareEntry(name string, base, cur benchEntry, stealKnown bool, o BenchCompareOptions) BenchComparison {
	c := BenchComparison{Name: name}
	if base.wallNS > 0 && cur.wallNS > 0 && base.wallNS >= o.MinWallNS {
		c.WallChecked = true
		c.BaseWallNS, c.CurWallNS = base.wallNS, cur.wallNS
		slow := float64(cur.wallNS) / float64(base.wallNS)
		switch {
		case o.WallHardTol > 0 && slow > 1+o.WallHardTol:
			c.Failures = append(c.Failures, fmt.Sprintf(
				"wall-clock regressed %.1f%% (hard bound %.0f%%)",
				100*(slow-1), 100*o.WallHardTol))
		case slow > 1+o.WallTol:
			c.Failures = append(c.Failures, fmt.Sprintf(
				"wall-clock regressed %.1f%% (tolerance %.0f%%)",
				100*(slow-1), 100*o.WallTol))
			c.WallSoftOnly = true
		}
	}
	if stealKnown && base.attempts >= o.MinStealAttempts {
		c.StealChecked = true
		c.BaseHitRate, c.CurHitRate = base.hitRate(), cur.hitRate()
		if c.CurHitRate < c.BaseHitRate*(1-o.StealTol) {
			c.Failures = append(c.Failures, fmt.Sprintf(
				"steal hit rate dropped %.3f -> %.3f (tolerance %.0f%%)",
				c.BaseHitRate, c.CurHitRate, 100*o.StealTol))
			c.WallSoftOnly = false
		}
	}
	return c
}

// CompareArtifacts gates current against a baseline obs artifact,
// label-for-label. Labels present only on one side are reported as
// unmatched, not failed: experiments come and go, and the nightly
// baseline is refreshed deliberately.
func CompareArtifacts(baseline, current *obs.Artifact, opt BenchCompareOptions) *BenchCompareResult {
	o := opt.withDefaults()
	base := poolRuns(baseline)
	cur := poolRuns(current)
	res := &BenchCompareResult{WallNoiseBudget: o.WallNoiseBudget}
	labels := make([]string, 0, len(base))
	for l := range base {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		c, ok := cur[l]
		if !ok {
			res.Unmatched = append(res.Unmatched, l)
			continue
		}
		res.Comparisons = append(res.Comparisons, compareEntry(l, base[l], c, true, o))
	}
	return res
}

// HotpathSchema identifies results/BENCH_hotpath.json.
const HotpathSchema = "spantree/bench/hotpath/v1"

// hotpathBaseline is the subset of the hot-path record the gate needs.
type hotpathBaseline struct {
	Schema     string `json:"schema"`
	Benchmarks []struct {
		Name      string  `json:"name"`
		AfterNsOp float64 `json:"after_ns_op"`
	} `json:"benchmarks"`
}

// hotpathFamilies maps a hot-path benchmark family onto the substrings a
// metric label must contain to measure the same input. The record's
// families were measured on torus-with-random-labels and hierarchical
// geometric inputs (the two the batched-hot-path PR reported).
var hotpathFamilies = map[string][]string{
	"Fig4TorusRandom": {"torus2d", "randlabel"},
	"Fig4GeoHier":     {"geohier"},
}

// matchHotpathName parses "BenchmarkFig4TorusRandom/newalg-p8" into its
// label predicates; ok is false for names the gate does not cover
// (other algorithms, unknown families).
func matchHotpathName(name string) (substrs []string, pSuffix string, ok bool) {
	name = strings.TrimPrefix(name, "Benchmark")
	family, variant, found := strings.Cut(name, "/")
	if !found {
		return nil, "", false
	}
	subs, known := hotpathFamilies[family]
	if !known || !strings.HasPrefix(variant, "newalg-p") {
		return nil, "", false
	}
	return subs, "/p=" + strings.TrimPrefix(variant, "newalg-p"), true
}

// CompareHotpath gates current against the hot-path overhaul record:
// each covered benchmark's after_ns_op is compared with the minimum
// elapsed time over the current labels that name the same graph family
// and processor count (wall-clock only; the record has no steal
// counters). Only "NewAlg" labels are considered.
func CompareHotpath(baselineJSON []byte, current *obs.Artifact, opt BenchCompareOptions) (*BenchCompareResult, error) {
	o := opt.withDefaults()
	var hb hotpathBaseline
	if err := json.Unmarshal(baselineJSON, &hb); err != nil {
		return nil, fmt.Errorf("stats: decoding hot-path baseline: %w", err)
	}
	if hb.Schema != HotpathSchema {
		return nil, fmt.Errorf("stats: baseline schema %q, want %q", hb.Schema, HotpathSchema)
	}
	cur := poolRuns(current)
	res := &BenchCompareResult{WallNoiseBudget: o.WallNoiseBudget}
	for _, b := range hb.Benchmarks {
		subs, pSuffix, ok := matchHotpathName(b.Name)
		if !ok {
			continue
		}
		var best benchEntry
		for label, e := range cur {
			if !strings.HasPrefix(label, "NewAlg/") || !strings.HasSuffix(label, pSuffix) {
				continue
			}
			matched := true
			for _, s := range subs {
				if !strings.Contains(label, s) {
					matched = false
					break
				}
			}
			if !matched || e.wallNS == 0 {
				continue
			}
			if best.wallNS == 0 || e.wallNS < best.wallNS {
				best = e
			}
		}
		if best.wallNS == 0 {
			res.Unmatched = append(res.Unmatched, b.Name)
			continue
		}
		base := benchEntry{wallNS: int64(b.AfterNsOp)}
		res.Comparisons = append(res.Comparisons, compareEntry(b.Name, base, best, false, o))
	}
	return res, nil
}

// TraversalVariants is the set of measurement policies an obs
// artifact's parallel runs were measured under, collected from the
// "alg", "direction", "layout" and "shards" run meta the harness
// stamps. Empty slices mean the artifact predates variant stamping (or
// has no stamped runs) — unknown, so nothing to warn about.
type TraversalVariants struct {
	Algs       []string
	Directions []string
	Layouts    []string
	Shards     []string
}

// Variants collects an artifact's distinct alg, direction, layout and
// shards stamps.
func Variants(a *obs.Artifact) TraversalVariants {
	return TraversalVariants{
		Algs:       metaSet(a, "alg"),
		Directions: metaSet(a, "direction"),
		Layouts:    metaSet(a, "layout"),
		Shards:     metaSet(a, "shards"),
	}
}

func metaSet(a *obs.Artifact, key string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range a.Runs {
		if v, ok := r.Meta[key]; ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// VariantWarning renders a warning line when the baseline and current
// artifacts were measured under different direction policies or CSR
// layouts, or "" when they agree (or either side is unknown). Like a
// host-shape mismatch, a variant mismatch makes the timings
// incomparable without being a code regression, so the gate warns
// instead of failing.
func VariantWarning(base, cur TraversalVariants) string {
	var parts []string
	if d := variantDiff("alg", base.Algs, cur.Algs); d != "" {
		parts = append(parts, d)
	}
	if d := variantDiff("direction", base.Directions, cur.Directions); d != "" {
		parts = append(parts, d)
	}
	if d := variantDiff("layout", base.Layouts, cur.Layouts); d != "" {
		parts = append(parts, d)
	}
	if d := variantDiff("shards", base.Shards, cur.Shards); d != "" {
		parts = append(parts, d)
	}
	if len(parts) == 0 {
		return ""
	}
	return "warning: traversal variant differs — " + strings.Join(parts, "; ") +
		"; timings are not comparable across variants"
}

func variantDiff(name string, base, cur []string) string {
	if len(base) == 0 || len(cur) == 0 {
		return "" // unknown on one side: nothing to compare
	}
	if strings.Join(base, ",") == strings.Join(cur, ",") {
		return ""
	}
	return fmt.Sprintf("baseline %s %s, current %s",
		name, strings.Join(base, ","), strings.Join(cur, ","))
}

// LoadBenchBaseline reads a baseline file and dispatches on its schema,
// returning a closure that compares a current artifact against it, the
// baseline's host shape, and its traversal variants (both zero for
// baselines that predate the stamping, e.g. the hot-path record).
func LoadBenchBaseline(path string) (func(current *obs.Artifact, opt BenchCompareOptions) (*BenchCompareResult, error), obs.HostShape, TraversalVariants, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, obs.HostShape{}, TraversalVariants{}, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, obs.HostShape{}, TraversalVariants{}, fmt.Errorf("stats: decoding baseline %s: %w", path, err)
	}
	switch probe.Schema {
	case HotpathSchema:
		return func(current *obs.Artifact, opt BenchCompareOptions) (*BenchCompareResult, error) {
			return CompareHotpath(data, current, opt)
		}, obs.HostShape{}, TraversalVariants{}, nil
	case obs.Schema, obs.SchemaV1:
		// v1 baselines decode through the same structs: the counter
		// fields are a strict subset of v2's and obs.Event's decoder
		// accepts the legacy anonymous "a"/"b" payload spellings, so
		// existing recorded baselines keep comparing unchanged.
		var a obs.Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, obs.HostShape{}, TraversalVariants{}, fmt.Errorf("stats: decoding baseline %s: %w", path, err)
		}
		return func(current *obs.Artifact, opt BenchCompareOptions) (*BenchCompareResult, error) {
			return CompareArtifacts(&a, current, opt), nil
		}, a.Host, Variants(&a), nil
	}
	return nil, obs.HostShape{}, TraversalVariants{}, fmt.Errorf("stats: baseline %s has unsupported schema %q", path, probe.Schema)
}
