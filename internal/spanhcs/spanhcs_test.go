package spanhcs

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/spansv"
	"spantree/internal/verify"
)

func TestSpanningForestShapes(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2), gen.Chain(64),
		gen.Star(40), gen.Cycle(33), gen.Complete(15),
		gen.Torus2D(7, 7), gen.Random(150, 220, 1),
		graph.Union(gen.Chain(8), gen.Star(6), gen.Cycle(5)),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 5} {
			parent, st, err := SpanningForest(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			wantEdges := g.NumVertices() - graph.NumComponents(g)
			if st.Grafts != wantEdges {
				t.Fatalf("%v p=%d: %d grafts, want %d", g, p, st.Grafts, wantEdges)
			}
		}
	}
}

func TestSpanningForestProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%180) + 1
		m := int(mRaw % 360)
		p := int(pRaw%5) + 1
		g := gen.Random(n, m, seed)
		parent, _, err := SpanningForest(g, Options{NumProcs: p})
		return err == nil && verify.Forest(g, parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHookToMinimumConvergesFasterOnAdversarialChain(t *testing.T) {
	// Hook-to-minimum can only help (never hurt) iteration counts
	// compared to arbitrary-winner SV on the same input; it must also
	// stay within the same complexity class (the paper found the two
	// algorithms comparable).
	g := graph.RandomRelabel(gen.Chain(1<<11), 77)
	_, hcsStats, err := SpanningForest(g, Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, svStats, err := spansv.SpanningForest(g, spansv.Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hcsStats.Iterations > svStats.Iterations+2 {
		t.Fatalf("HCS took %d iterations, SV %d: min-hooking should not be slower",
			hcsStats.Iterations, svStats.Iterations)
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, _, err := SpanningForest(gen.Chain(4), Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestModelCharges(t *testing.T) {
	g := gen.Random(400, 700, 3)
	model := smpmodel.New(3)
	if _, _, err := SpanningForest(g, Options{NumProcs: 3, Model: model}); err != nil {
		t.Fatal(err)
	}
	if model.Total().NonContig == 0 || model.Barriers() == 0 {
		t.Fatal("no cost charged")
	}
}
