// Package spanhcs implements a Hirschberg-Chandra-Sarwate (HCS) style
// connectivity algorithm adapted to spanning trees on an SMP, the second
// PRAM baseline the paper implemented. HCS differs from Shiloach-Vishkin
// in how grafts are chosen: instead of an arbitrary-winner election,
// every star root deterministically hooks onto the MINIMUM-labeled
// neighboring component, which is HCS's CREW-style min-reduction over
// candidate edges (realized here with an atomic min loop).
//
// The paper reports that "our modified HCS algorithm for spanning tree
// results in similar complexities and running time as that of SV", and
// drops it from the plots; this package exists so the reproduction can
// confirm that observation (see the HCS-vs-SV benchmark).
package spanhcs

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
)

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors p (>= 1).
	NumProcs int
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// MaxIterations caps iterations; 0 means n+2 (always sufficient).
	MaxIterations int
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) running the propose/apply/shortcut sweeps.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips);
	// Chaos the fault injector (nil injects nothing).
	Cancel *fault.Flag
	Chaos  *chaos.Injector
}

// Stats reports what a run did.
type Stats struct {
	Iterations     int
	ShortcutRounds int
	Grafts         int
}

// best packs a candidate (targetRoot, v, w) into a single value ordered
// by targetRoot: lower targetRoot wins the atomic min. Layout:
// [ 2 bits zero | 31 bits targetRoot | ... ] — we use a 2-word scheme
// instead: key holds the target root, payload the arc; both are updated
// under a CAS loop on the key with the payload written before the key is
// published, re-checked by the apply phase.
type best struct {
	key int64 // target root, or none
	arc int64 // packed (v, w)
}

const none = int64(1) << 40 // larger than any vertex id

func packArc(v, w graph.VID) int64 {
	return int64(uint64(uint32(v))<<32 | uint64(uint32(w)))
}

func unpackArc(x int64) (v, w graph.VID) {
	return graph.VID(uint32(uint64(x) >> 32)), graph.VID(uint32(uint64(x)))
}

// SpanningForest runs the HCS-style algorithm and returns the forest as
// a parent array plus statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("spanhcs: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	n := g.NumVertices()
	maxIter := opt.MaxIterations
	if maxIter == 0 {
		maxIter = n + 2
	}

	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	// Per-root candidate minima. Packing root and arc into one atomic
	// word is impossible (needs 31+62 bits), so the apply phase re-reads
	// the winning arc and tolerates the benign race between a key update
	// and its arc update by re-validating the arc's roots.
	keys := make([]int64, n)
	arcs := make([]int64, n)

	team := par.NewTeam(opt.NumProcs, opt.Model).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	edgeBufs := make([][]graph.Edge, opt.NumProcs)
	iterations, rounds := 0, 0

	err := team.RunErr(func(c *par.Ctx) {
		probe := c.Probe()
		var myEdges []graph.Edge
		c.ForDynamic(n, func(i int) { keys[i] = none })
		c.Barrier()

		for iter := 0; iter < maxIter; iter++ {
			// Phase A: every arc proposes; each root keeps the minimum
			// target root seen (atomic min on keys[rv]).
			c.ForDynamic(n, func(vi int) {
				v := graph.VID(vi)
				probe.NonContig(1)
				rv := d[v]
				nb := g.Neighbors(v)
				probe.Contig(int64(len(nb)))
				for _, w := range nb {
					probe.NonContig(2)
					rw := d[w]
					if rw >= rv || d[rv] != rv {
						continue
					}
					// Atomic min loop on the candidate key.
					for {
						cur := atomic.LoadInt64(&keys[rv])
						if int64(rw) >= cur {
							break
						}
						probe.NonContig(1)
						if atomic.CompareAndSwapInt64(&keys[rv], cur, int64(rw)) {
							atomic.StoreInt64(&arcs[rv], packArc(v, w))
							break
						}
					}
				}
			})
			c.Barrier()

			// Phase B: apply grafts. The arc slot may lag its key slot by
			// one writer (the benign publication race above), so the arc
			// is re-validated: it must connect r's component to a smaller
			// root; any such arc is a correct graft even if it is not the
			// exact minimum, preserving HCS's invariants.
			grafted := false
			c.ForDynamic(n, func(ri int) {
				r := graph.VID(ri)
				probe.NonContig(1)
				if atomic.LoadInt64(&keys[r]) == none {
					return
				}
				v, w := unpackArc(atomic.LoadInt64(&arcs[r]))
				probe.NonContig(2)
				target := atomic.LoadInt32(&d[w])
				if d[v] == int32(r) && target < int32(r) {
					atomic.StoreInt32(&d[r], target)
					myEdges = append(myEdges, graph.Edge{U: v, V: w})
					grafted = true
				}
				keys[r] = none
			})
			anyGraft := c.ReduceOr(grafted)
			if c.TID() == 0 {
				iterations = iter + 1
			}
			if !anyGraft {
				break
			}

			// Phase C: full shortcut to stars by pointer jumping.
			for {
				changed := false
				c.ForDynamic(n, func(vi int) {
					v := graph.VID(vi)
					probe.NonContig(2)
					dv := atomic.LoadInt32(&d[v])
					ddv := atomic.LoadInt32(&d[dv])
					if dv != ddv {
						atomic.StoreInt32(&d[v], ddv)
						changed = true
					}
				})
				if c.TID() == 0 {
					rounds++
				}
				if !c.ReduceOr(changed) {
					break
				}
			}
		}
		edgeBufs[c.TID()] = myEdges
	})
	if err != nil {
		return nil, Stats{}, err
	}

	var stats Stats
	stats.Iterations = iterations
	stats.ShortcutRounds = rounds
	for _, eb := range edgeBufs {
		stats.Grafts += len(eb)
	}
	treeAdj := make([][]graph.VID, n)
	for _, eb := range edgeBufs {
		for _, e := range eb {
			treeAdj[e.U] = append(treeAdj[e.U], e.V)
			treeAdj[e.V] = append(treeAdj[e.V], e.U)
		}
	}
	opt.Model.Probe(0).NonContig(int64(2 * stats.Grafts))
	parent := spanseq.RootForest(n, treeAdj)
	return parent, stats, nil
}
