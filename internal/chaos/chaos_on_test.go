//go:build chaos

package chaos

import (
	"testing"
	"time"

	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// vetoTrace records the first n VetoSteal outcomes of one worker — a
// pure function of the config, independent of scheduling.
func vetoTrace(cfg Config, tid, n int) []bool {
	j := New(cfg, nil)
	out := make([]bool, n)
	for i := range out {
		out[i] = j.VetoSteal(tid)
	}
	return out
}

func TestEnabledBuild(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the chaos build tag")
	}
	if New(DefaultConfig(1, 2), nil) == nil {
		t.Fatal("New returned nil under the chaos build tag")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig(7, 3)
	for tid := 0; tid < 3; tid++ {
		a := vetoTrace(cfg, tid, 200)
		b := vetoTrace(cfg, tid, 200)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("worker %d: veto schedule diverged at step %d for the same seed", tid, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := vetoTrace(DefaultConfig(1, 1), 0, 300)
	b := vetoTrace(DefaultConfig(2, 1), 0, 300)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical veto schedules")
	}
}

func TestWorkersHaveIndependentStreams(t *testing.T) {
	cfg := DefaultConfig(9, 2)
	a := vetoTrace(cfg, 0, 300)
	b := vetoTrace(cfg, 1, 300)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two workers drew identical streams from one seed")
	}
}

func TestAimedPanicFiresExactlyOnce(t *testing.T) {
	cfg := Config{Seed: 3, Workers: 2, PanicPoint: PointClaim, PanicWorker: 1, PanicAfter: 4}
	j := New(cfg, nil)
	fired := 0
	visit := func(tid int, p Point) {
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(InjectedPanic)
				if !ok {
					t.Fatalf("panic value %v is not an InjectedPanic", r)
				}
				if ip.Worker != 1 || ip.Point != PointClaim {
					t.Fatalf("panic aimed wrong: %+v", ip)
				}
				fired++
			}
		}()
		j.Visit(tid, p)
	}
	for i := 0; i < 20; i++ {
		visit(0, PointClaim) // wrong worker: never fires
		visit(1, PointDrain) // wrong point: never fires
		visit(1, PointClaim) // the aimed site
	}
	if fired != 1 {
		t.Fatalf("aimed panic fired %d times, want exactly 1", fired)
	}
}

func TestInjectionsAreCounted(t *testing.T) {
	cfg := Config{Seed: 5, Workers: 1, StealVetoProb: 1}
	rec := obs.New(1)
	j := New(cfg, rec)
	for i := 0; i < 10; i++ {
		if !j.VetoSteal(0) {
			t.Fatal("probability-1 veto did not fire")
		}
	}
	if j.Injections() != 10 {
		t.Fatalf("Injections() = %d, want 10", j.Injections())
	}
}

func TestOutOfRangeWorkerIsIgnored(t *testing.T) {
	j := New(Config{Seed: 1, Workers: 1, StealVetoProb: 1}, nil)
	j.Visit(5, PointDrain)
	j.Visit(-1, PointDrain)
	if j.VetoSteal(5) || j.VetoSteal(-1) {
		t.Fatal("out-of-range worker got an injection")
	}
}

// TestModelChargesVetoes: with a model attached, every vetoed steal is
// charged as the failed steal's fruitless poll — one non-contiguous
// access on the vetoing thief's processor.
func TestModelChargesVetoes(t *testing.T) {
	j := New(Config{Seed: 5, Workers: 2, StealVetoProb: 1}, nil)
	m := smpmodel.New(2)
	j.AttachModel(m)
	for i := 0; i < 7; i++ {
		if !j.VetoSteal(1) {
			t.Fatal("probability-1 veto did not fire")
		}
	}
	if got := m.Proc(1).NonContig; got != 7 {
		t.Fatalf("vetoing worker's NonContig = %d, want 7", got)
	}
	if got := m.Proc(0).NonContig; got != 0 {
		t.Fatalf("idle worker's NonContig = %d, want 0", got)
	}
}

// TestModelChargesStalls: an injected stall burst lands as idle time on
// the stalled processor's local computation — Ops equal to the yields
// of the burst, so at least one per injected stall.
func TestModelChargesStalls(t *testing.T) {
	j := New(Config{Seed: 5, Workers: 1, StallProb: 1, StallYields: 4}, nil)
	m := smpmodel.New(1)
	j.AttachModel(m)
	const visits = 10
	for i := 0; i < visits; i++ {
		j.Visit(0, PointDrain)
	}
	ops := m.Proc(0).Ops
	if ops < visits || ops > visits*4 {
		t.Fatalf("stalled worker's Ops = %d, want in [%d, %d]", ops, visits, visits*4)
	}
}

// TestModelDetachedAndOutOfRange: charging is inert without a model and
// safe when the injector has more workers than the model has slots.
func TestModelDetachedAndOutOfRange(t *testing.T) {
	j := New(Config{Seed: 5, Workers: 2, StealVetoProb: 1}, nil)
	j.VetoSteal(0) // no model attached: must not panic
	m := smpmodel.New(1)
	j.AttachModel(m)
	j.VetoSteal(1) // tid 1 has no model slot: must not panic
	if got := m.Proc(0).NonContig; got != 0 {
		t.Fatalf("out-of-range veto leaked a charge: NonContig = %d", got)
	}
}

// serveTrace records the faults of the first n request ids — a pure
// function of (config, id), independent of call order.
func serveTrace(cfg ServeConfig, n int) []ServeFault {
	j := NewServe(cfg)
	out := make([]ServeFault, n)
	for i := range out {
		out[i] = j.Request(uint64(i))
	}
	return out
}

func TestServeDeterministicPerSeed(t *testing.T) {
	cfg := DefaultServeConfig(11)
	a := serveTrace(cfg, 500)
	b := serveTrace(cfg, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fault diverged for the same seed (%v vs %v)", i, a[i], b[i])
		}
	}
	c := serveTrace(DefaultServeConfig(12), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical request fault schedules")
	}
}

func TestServeFaultMix(t *testing.T) {
	var hits [4]int
	for _, f := range serveTrace(DefaultServeConfig(3), 4000) {
		hits[f]++
	}
	for f := FaultSlow; f <= FaultPanic; f++ {
		if hits[f] == 0 {
			t.Errorf("fault %v never drawn over 4000 requests of the default profile", f)
		}
	}
	if hits[FaultNone] < 2000 {
		t.Errorf("FaultNone drawn %d/4000 times; default profile should leave most requests clean", hits[FaultNone])
	}
}

func TestServeZeroConfigAndDefaults(t *testing.T) {
	if NewServe(ServeConfig{}) != nil {
		t.Fatal("NewServe of the zero config must return nil")
	}
	j := NewServe(ServeConfig{Seed: 1, SlowProb: 1})
	if j.SlowDelay() != 5*time.Millisecond {
		t.Fatalf("default SlowDelay = %v, want 5ms", j.SlowDelay())
	}
	for id := uint64(0); id < 50; id++ {
		if f := j.Request(id); f != FaultSlow {
			t.Fatalf("probability-1 slow: request %d drew %v", id, f)
		}
	}
	if j.Injections() != 50 {
		t.Fatalf("Injections() = %d, want 50", j.Injections())
	}
}

func TestServeJournalFaultDeterministic(t *testing.T) {
	cfg := ServeConfig{Seed: 9, JournalProb: 0.3}
	a, b := NewServe(cfg), NewServe(cfg)
	hits := 0
	for seq := uint64(0); seq < 400; seq++ {
		fa, fb := a.JournalFault(seq), b.JournalFault(seq)
		if fa != fb {
			t.Fatalf("append %d: journal fault diverged for the same seed", seq)
		}
		if fa {
			hits++
		}
	}
	if hits == 0 || hits == 400 {
		t.Fatalf("journal faults hit %d/400 appends at p=0.3", hits)
	}
}
