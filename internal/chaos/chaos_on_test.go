//go:build chaos

package chaos

import (
	"testing"

	"spantree/internal/obs"
)

// vetoTrace records the first n VetoSteal outcomes of one worker — a
// pure function of the config, independent of scheduling.
func vetoTrace(cfg Config, tid, n int) []bool {
	j := New(cfg, nil)
	out := make([]bool, n)
	for i := range out {
		out[i] = j.VetoSteal(tid)
	}
	return out
}

func TestEnabledBuild(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the chaos build tag")
	}
	if New(DefaultConfig(1, 2), nil) == nil {
		t.Fatal("New returned nil under the chaos build tag")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig(7, 3)
	for tid := 0; tid < 3; tid++ {
		a := vetoTrace(cfg, tid, 200)
		b := vetoTrace(cfg, tid, 200)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("worker %d: veto schedule diverged at step %d for the same seed", tid, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := vetoTrace(DefaultConfig(1, 1), 0, 300)
	b := vetoTrace(DefaultConfig(2, 1), 0, 300)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical veto schedules")
	}
}

func TestWorkersHaveIndependentStreams(t *testing.T) {
	cfg := DefaultConfig(9, 2)
	a := vetoTrace(cfg, 0, 300)
	b := vetoTrace(cfg, 1, 300)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two workers drew identical streams from one seed")
	}
}

func TestAimedPanicFiresExactlyOnce(t *testing.T) {
	cfg := Config{Seed: 3, Workers: 2, PanicPoint: PointClaim, PanicWorker: 1, PanicAfter: 4}
	j := New(cfg, nil)
	fired := 0
	visit := func(tid int, p Point) {
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(InjectedPanic)
				if !ok {
					t.Fatalf("panic value %v is not an InjectedPanic", r)
				}
				if ip.Worker != 1 || ip.Point != PointClaim {
					t.Fatalf("panic aimed wrong: %+v", ip)
				}
				fired++
			}
		}()
		j.Visit(tid, p)
	}
	for i := 0; i < 20; i++ {
		visit(0, PointClaim) // wrong worker: never fires
		visit(1, PointDrain) // wrong point: never fires
		visit(1, PointClaim) // the aimed site
	}
	if fired != 1 {
		t.Fatalf("aimed panic fired %d times, want exactly 1", fired)
	}
}

func TestInjectionsAreCounted(t *testing.T) {
	cfg := Config{Seed: 5, Workers: 1, StealVetoProb: 1}
	rec := obs.New(1)
	j := New(cfg, rec)
	for i := 0; i < 10; i++ {
		if !j.VetoSteal(0) {
			t.Fatal("probability-1 veto did not fire")
		}
	}
	if j.Injections() != 10 {
		t.Fatalf("Injections() = %d, want 10", j.Injections())
	}
}

func TestOutOfRangeWorkerIsIgnored(t *testing.T) {
	j := New(Config{Seed: 1, Workers: 1, StealVetoProb: 1}, nil)
	j.Visit(5, PointDrain)
	j.Visit(-1, PointDrain)
	if j.VetoSteal(5) || j.VetoSteal(-1) {
		t.Fatal("out-of-range worker got an injection")
	}
}
