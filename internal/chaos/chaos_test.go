package chaos

import "testing"

// Tests that hold in both build variants.

func TestPointString(t *testing.T) {
	want := map[Point]string{
		PointNone: "none", PointDrain: "drain", PointSteal: "steal",
		PointClaim: "claim", PointIdle: "idle", PointBarrier: "barrier",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("Point(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestInjectedPanicString(t *testing.T) {
	ip := InjectedPanic{Worker: 2, Point: PointClaim}
	if got := ip.String(); got == "" {
		t.Fatal("empty InjectedPanic string")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(42, 4)
	if cfg.Seed != 42 || cfg.Workers != 4 {
		t.Fatalf("DefaultConfig mangled seed/workers: %+v", cfg)
	}
	if cfg.StallProb <= 0 || cfg.StealVetoProb <= 0 || cfg.StallYields <= 0 {
		t.Fatalf("DefaultConfig must enable perturbations: %+v", cfg)
	}
	if cfg.PanicPoint != PointNone {
		t.Fatalf("DefaultConfig must not aim a panic: %+v", cfg)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var j *Injector
	j.Visit(0, PointDrain)
	if j.VetoSteal(0) {
		t.Fatal("nil injector vetoed a steal")
	}
	if j.Injections() != 0 {
		t.Fatal("nil injector reported injections")
	}
}
