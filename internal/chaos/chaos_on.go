//go:build chaos

package chaos

import (
	"runtime"
	"sync/atomic"
	"time"

	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/xrand"
)

// Enabled reports whether this binary was built with the chaos layer
// compiled in (`go build -tags chaos`).
const Enabled = true

// Injector perturbs worker schedules from seeded per-worker random
// streams. Each worker consumes only its own stream, so the injection
// schedule each worker sees is a pure function of Config — independent
// of the Go scheduler's interleaving.
type Injector struct {
	cfg   Config
	rec   *obs.Recorder
	slots []chaosSlot
	total atomic.Int64
	// model, when attached, receives the cost of every injected
	// perturbation, so modeled chaos runs predict degraded schedules
	// instead of silently diverging from their charges (the ROADMAP
	// "modeled chaos" gap): a stall burst is idle time on the stalled
	// processor's T_C, a steal veto is a failed steal's fruitless poll.
	model *smpmodel.Model
}

// chaosSlot is one worker's injection state, padded so neighboring
// workers' streams don't false-share.
type chaosSlot struct {
	rng       *xrand.Rand
	panicHits int64
	_         [6]int64
}

// New returns an injector for cfg, reporting each injected fault into
// rec's ChaosInjections counter (rec may be nil).
func New(cfg Config, rec *obs.Recorder) *Injector {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.StallYields <= 0 {
		cfg.StallYields = 8
	}
	if cfg.PanicWorker < 0 || cfg.PanicWorker >= cfg.Workers {
		cfg.PanicWorker = 0
	}
	j := &Injector{cfg: cfg, rec: rec, slots: make([]chaosSlot, cfg.Workers)}
	for tid := range j.slots {
		j.slots[tid].rng = xrand.New(cfg.Seed).Split(uint64(tid) + 0x9e37)
	}
	return j
}

// Visit marks one pass through injection point p by worker tid: it may
// stall the worker for a seeded burst of scheduler yields, and it fires
// the aimed panic when this visit is the configured one. Nil-safe.
func (j *Injector) Visit(tid int, p Point) {
	if j == nil || tid < 0 || tid >= len(j.slots) {
		return
	}
	s := &j.slots[tid]
	if pp := j.cfg.PanicPoint; pp == p && tid == j.cfg.PanicWorker {
		hit := s.panicHits
		s.panicHits++
		if hit == int64(j.cfg.PanicAfter) {
			j.inject(tid)
			panic(InjectedPanic{Worker: tid, Point: p})
		}
	}
	if j.cfg.StallProb > 0 && s.rng.Prob(j.cfg.StallProb) {
		j.inject(tid)
		n := 1 + s.rng.Intn(j.cfg.StallYields)
		// Charge the stall to the stalled processor's local computation:
		// each yield is one unit of injected idle time on its T_C.
		j.probeFor(tid).Ops(int64(n))
		for ; n > 0; n-- {
			runtime.Gosched()
		}
	}
}

// AttachModel routes the cost of injected perturbations into m (nil
// detaches). Call before the run, on the same model the run charges.
func (j *Injector) AttachModel(m *smpmodel.Model) {
	if j == nil {
		return
	}
	j.model = m
}

// probeFor resolves the attached model's probe for tid (nil, hence a
// no-op probe, when no model is attached or tid has no slot there).
func (j *Injector) probeFor(tid int) *smpmodel.Probe {
	if j.model == nil || tid >= j.model.NumProcs() {
		return nil
	}
	return j.model.Probe(tid)
}

// VetoSteal reports whether this steal attempt is forced to fail before
// scanning any victim — the delayed/failed-steal fault. Nil-safe.
func (j *Injector) VetoSteal(tid int) bool {
	if j == nil || tid < 0 || tid >= len(j.slots) || j.cfg.StealVetoProb <= 0 {
		return false
	}
	if j.slots[tid].rng.Prob(j.cfg.StealVetoProb) {
		j.inject(tid)
		// A vetoed steal is a failed steal the thief still pays for: the
		// fruitless poll before it gives up, same as a real empty scan.
		j.probeFor(tid).NonContig(1)
		return true
	}
	return false
}

// Injections returns the total number of injected faults so far.
func (j *Injector) Injections() int64 {
	if j == nil {
		return 0
	}
	return j.total.Load()
}

func (j *Injector) inject(tid int) {
	j.total.Add(1)
	j.rec.Worker(tid).Incr(obs.ChaosInjections)
}

// ServeInjector perturbs the serving layer: each request draws its
// fault (if any) from a stream seeded by (Seed, request id), and each
// registry journal append draws its write fault from (Seed, append
// sequence). Both are pure functions of their identifiers, so a failing
// request or a corrupting append replays from the seed alone — there is
// no shared mutable stream to race on.
type ServeInjector struct {
	cfg   ServeConfig
	total atomic.Int64
}

// NewServe returns a serving-layer injector for cfg, or nil when cfg is
// the zero value (nothing to inject). All methods are nil-safe.
func NewServe(cfg ServeConfig) *ServeInjector {
	if cfg == (ServeConfig{}) {
		return nil
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 5 * time.Millisecond
	}
	return &ServeInjector{cfg: cfg}
}

// Request returns the fault injected into request id. At most one fault
// fires per request; the draw order (panic, stall, slow) is fixed so a
// given (seed, id) pair always maps to the same fault.
func (j *ServeInjector) Request(id uint64) ServeFault {
	if j == nil {
		return FaultNone
	}
	r := xrand.New(j.cfg.Seed).Split(id + 0x51f0b2e1)
	switch {
	case j.cfg.PanicProb > 0 && r.Prob(j.cfg.PanicProb):
		j.total.Add(1)
		return FaultPanic
	case j.cfg.StallProb > 0 && r.Prob(j.cfg.StallProb):
		j.total.Add(1)
		return FaultStall
	case j.cfg.SlowProb > 0 && r.Prob(j.cfg.SlowProb):
		j.total.Add(1)
		return FaultSlow
	}
	return FaultNone
}

// SlowDelay returns the delay a FaultSlow request sleeps before running.
func (j *ServeInjector) SlowDelay() time.Duration {
	if j == nil {
		return 0
	}
	return j.cfg.SlowDelay
}

// JournalFault reports whether journal append seq is forced to fail —
// the injected disk fault. The registry must abort the mutation with a
// typed error and stay consistent.
func (j *ServeInjector) JournalFault(seq uint64) bool {
	if j == nil || j.cfg.JournalProb <= 0 {
		return false
	}
	r := xrand.New(j.cfg.Seed).Split(seq + 0x77aa1833)
	if r.Prob(j.cfg.JournalProb) {
		j.total.Add(1)
		return true
	}
	return false
}

// Injections returns the total number of injected serving faults so far.
func (j *ServeInjector) Injections() int64 {
	if j == nil {
		return 0
	}
	return j.total.Load()
}
