//go:build chaos

package chaos

import (
	"runtime"
	"sync/atomic"

	"spantree/internal/obs"
	"spantree/internal/xrand"
)

// Enabled reports whether this binary was built with the chaos layer
// compiled in (`go build -tags chaos`).
const Enabled = true

// Injector perturbs worker schedules from seeded per-worker random
// streams. Each worker consumes only its own stream, so the injection
// schedule each worker sees is a pure function of Config — independent
// of the Go scheduler's interleaving.
type Injector struct {
	cfg   Config
	rec   *obs.Recorder
	slots []chaosSlot
	total atomic.Int64
}

// chaosSlot is one worker's injection state, padded so neighboring
// workers' streams don't false-share.
type chaosSlot struct {
	rng       *xrand.Rand
	panicHits int64
	_         [6]int64
}

// New returns an injector for cfg, reporting each injected fault into
// rec's ChaosInjections counter (rec may be nil).
func New(cfg Config, rec *obs.Recorder) *Injector {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.StallYields <= 0 {
		cfg.StallYields = 8
	}
	if cfg.PanicWorker < 0 || cfg.PanicWorker >= cfg.Workers {
		cfg.PanicWorker = 0
	}
	j := &Injector{cfg: cfg, rec: rec, slots: make([]chaosSlot, cfg.Workers)}
	for tid := range j.slots {
		j.slots[tid].rng = xrand.New(cfg.Seed).Split(uint64(tid) + 0x9e37)
	}
	return j
}

// Visit marks one pass through injection point p by worker tid: it may
// stall the worker for a seeded burst of scheduler yields, and it fires
// the aimed panic when this visit is the configured one. Nil-safe.
func (j *Injector) Visit(tid int, p Point) {
	if j == nil || tid < 0 || tid >= len(j.slots) {
		return
	}
	s := &j.slots[tid]
	if pp := j.cfg.PanicPoint; pp == p && tid == j.cfg.PanicWorker {
		hit := s.panicHits
		s.panicHits++
		if hit == int64(j.cfg.PanicAfter) {
			j.inject(tid)
			panic(InjectedPanic{Worker: tid, Point: p})
		}
	}
	if j.cfg.StallProb > 0 && s.rng.Prob(j.cfg.StallProb) {
		j.inject(tid)
		for n := 1 + s.rng.Intn(j.cfg.StallYields); n > 0; n-- {
			runtime.Gosched()
		}
	}
}

// VetoSteal reports whether this steal attempt is forced to fail before
// scanning any victim — the delayed/failed-steal fault. Nil-safe.
func (j *Injector) VetoSteal(tid int) bool {
	if j == nil || tid < 0 || tid >= len(j.slots) || j.cfg.StealVetoProb <= 0 {
		return false
	}
	if j.slots[tid].rng.Prob(j.cfg.StealVetoProb) {
		j.inject(tid)
		return true
	}
	return false
}

// Injections returns the total number of injected faults so far.
func (j *Injector) Injections() int64 {
	if j == nil {
		return 0
	}
	return j.total.Load()
}

func (j *Injector) inject(tid int) {
	j.total.Add(1)
	j.rec.Worker(tid).Incr(obs.ChaosInjections)
}
