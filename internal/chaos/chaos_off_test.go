//go:build !chaos

package chaos

import "testing"

// Without the chaos tag the layer must compile down to nothing: New
// returns nil and every method on the nil injector is a no-op, so the
// production hot paths pay only a nil check.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the chaos build tag")
	}
	j := New(DefaultConfig(1, 4), nil)
	if j != nil {
		t.Fatal("New must return nil without the chaos build tag")
	}
	j.Visit(0, PointDrain)
	if j.VetoSteal(0) || j.Injections() != 0 {
		t.Fatal("disabled injector must inject nothing")
	}
	j.AttachModel(nil)

	s := NewServe(DefaultServeConfig(1))
	if s != nil {
		t.Fatal("NewServe must return nil without the chaos build tag")
	}
	if s.Request(1) != FaultNone || s.JournalFault(1) || s.SlowDelay() != 0 || s.Injections() != 0 {
		t.Fatal("disabled serve injector must inject nothing")
	}
}
