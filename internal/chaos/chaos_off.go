//go:build !chaos

package chaos

import (
	"time"

	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// Enabled reports whether this binary was built with the chaos layer
// compiled in (`go build -tags chaos`).
const Enabled = false

// Injector is the no-op shape of the fault injector: an empty struct
// whose methods have empty bodies on a possibly-nil receiver, so call
// sites inline to nothing in default builds.
type Injector struct{}

// New returns nil in default builds: the chaos layer is compiled out.
// Callers that require injection (the stress suites, -chaos-seed) must
// check Enabled first.
func New(cfg Config, rec *obs.Recorder) *Injector { return nil }

// Visit marks one pass through injection point p by worker tid:
// possibly a stall burst, possibly the aimed panic. No-op here.
func (j *Injector) Visit(tid int, p Point) {}

// VetoSteal reports whether this steal attempt is forced to fail.
// Always false here.
func (j *Injector) VetoSteal(tid int) bool { return false }

// Injections returns the total number of injected faults (stalls,
// vetoes, panics). Always 0 here.
func (j *Injector) Injections() int64 { return 0 }

// AttachModel routes the cost of injected perturbations into m. No-op
// here: nothing is injected, so nothing is charged.
func (j *Injector) AttachModel(m *smpmodel.Model) {}

// ServeInjector is the no-op shape of the serving-layer fault injector.
type ServeInjector struct{}

// NewServe returns nil in default builds: the chaos layer is compiled
// out.
func NewServe(cfg ServeConfig) *ServeInjector { return nil }

// Request returns the fault injected into request id. Always FaultNone
// here.
func (j *ServeInjector) Request(id uint64) ServeFault { return FaultNone }

// SlowDelay returns the delay a FaultSlow request sleeps. Always 0 here.
func (j *ServeInjector) SlowDelay() time.Duration { return 0 }

// JournalFault reports whether journal append seq is forced to fail.
// Always false here.
func (j *ServeInjector) JournalFault(seq uint64) bool { return false }

// Injections returns the total number of injected serving faults.
// Always 0 here.
func (j *ServeInjector) Injections() int64 { return 0 }
