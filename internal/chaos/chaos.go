// Package chaos is the deterministic fault-injection layer of the
// parallel runtime. It perturbs the schedules of the work-stealing
// drivers — worker stalls, delayed and vetoed steals, widened claim-race
// windows, and panics at chosen trace points — from a seeded per-worker
// random stream, so a failing schedule is replayable from its seed
// alone.
//
// The layer is compiled in two shapes, selected by the `chaos` build
// tag:
//
//   - Default build (no tag): Injector is an empty struct, New returns
//     nil, and every method is an empty body on a possibly-nil receiver.
//     The compiler inlines the calls away, so the hardened hot paths
//     carry no chaos cost in production binaries — the bench-smoke
//     overhead gate in CI holds the proof.
//
//   - `-tags chaos`: the methods draw from per-worker xrand streams
//     (seeded Seed ^ tid, so schedules are independent across workers
//     but fully determined by Config). The stress suites build this
//     shape and drive the drivers through hundreds of seeded schedules
//     under -race.
//
// Injection sites are identified by Point values so a panic can be
// aimed at a specific place in a specific worker ("worker 2, third
// steal"), which is how the graceful-degradation path is tested.
package chaos

import (
	"fmt"
	"time"
)

// Point identifies one injection site in the runtime.
type Point int

const (
	// PointNone matches no site (the zero Config injects no panic).
	PointNone Point = iota
	// PointDrain: a worker finished one chunked queue/range drain.
	PointDrain
	// PointSteal: a worker entered the steal protocol.
	PointSteal
	// PointClaim: a worker is about to scan and claim a vertex's
	// neighbors (stalling here widens the claim-CAS race window, the
	// deterministic stand-in for a CAS retry storm).
	PointClaim
	// PointIdle: a worker went idle (quiescence/sleep protocol).
	PointIdle
	// PointBarrier: a worker is about to enter a barrier wait.
	PointBarrier
)

// String returns the schema name of the injection point.
func (p Point) String() string {
	switch p {
	case PointNone:
		return "none"
	case PointDrain:
		return "drain"
	case PointSteal:
		return "steal"
	case PointClaim:
		return "claim"
	case PointIdle:
		return "idle"
	case PointBarrier:
		return "barrier"
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// Config parameterizes one injector. The zero value injects nothing
// even in a chaos build; DefaultConfig is the CLI's -chaos-seed
// profile.
type Config struct {
	// Seed drives every injection decision; with equal Config the
	// injection schedule is identical run to run.
	Seed uint64
	// Workers is the number of per-worker random streams (>= 1).
	Workers int

	// StallProb is the per-visit probability that an injection point
	// stalls its worker for a seeded burst of scheduler yields.
	StallProb float64
	// StallYields caps the yields of one stall burst (default 8).
	StallYields int
	// StealVetoProb is the probability that a steal attempt is vetoed
	// (forced to fail before scanning victims) — the delayed/failed
	// steal fault.
	StealVetoProb float64

	// PanicPoint aims an injected panic: the PanicAfter'th visit of
	// PanicPoint by worker PanicWorker panics with an InjectedPanic.
	// PointNone (the zero value) disables panic injection.
	PanicPoint Point
	// PanicWorker is the worker that panics (clamped into range).
	PanicWorker int
	// PanicAfter is how many visits of PanicPoint the worker survives
	// before panicking (0 means the first visit).
	PanicAfter int
}

// DefaultConfig is the stock chaos profile used by the CLIs' -chaos-seed
// flag and the bulk of the stress suites: frequent stalls and steal
// vetoes, no injected panic.
func DefaultConfig(seed uint64, workers int) Config {
	return Config{
		Seed:          seed,
		Workers:       workers,
		StallProb:     0.05,
		StallYields:   8,
		StealVetoProb: 0.25,
	}
}

// ServeFault identifies the fault (if any) injected into one HTTP
// request of the serving layer. At most one fault fires per request,
// drawn deterministically from the request's own seeded stream, so a
// failing request schedule is replayable from (seed, request id).
type ServeFault int

const (
	// FaultNone: the request proceeds unperturbed.
	FaultNone ServeFault = iota
	// FaultSlow: the session runs after an injected delay — the slow
	// straggler backend. The request may still succeed or blow its
	// deadline; either way the outcome must be a 200 or a typed error.
	FaultSlow
	// FaultStall: the request wedges until its context expires — the
	// stuck backend. Must surface as the typed deadline/cancel error.
	FaultStall
	// FaultPanic: the handler panics mid-request with an InjectedPanic.
	// Must surface as a typed 500 body, never a transport-level drop.
	FaultPanic
)

// String returns the schema name of the serve fault.
func (f ServeFault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSlow:
		return "slow"
	case FaultStall:
		return "stall"
	case FaultPanic:
		return "panic"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ServeConfig parameterizes the serving-layer injector. The zero value
// injects nothing even in a chaos build.
type ServeConfig struct {
	// Seed drives every per-request and per-journal-append decision.
	Seed uint64
	// SlowProb is the per-request probability of FaultSlow; SlowDelay
	// the injected delay (default 5ms).
	SlowProb  float64
	SlowDelay time.Duration
	// StallProb is the per-request probability of FaultStall.
	StallProb float64
	// PanicProb is the per-request probability of FaultPanic.
	PanicProb float64
	// JournalProb is the per-append probability that a registry journal
	// write fails — the disk-fault injection. The mutation must abort
	// with a typed error and the registry stay consistent.
	JournalProb float64
}

// DefaultServeConfig is the stock serving chaos profile driven by
// spantreed's -chaos-seed flag and the serving stress suites.
func DefaultServeConfig(seed uint64) ServeConfig {
	return ServeConfig{
		Seed:        seed,
		SlowProb:    0.10,
		SlowDelay:   5 * time.Millisecond,
		StallProb:   0.05,
		PanicProb:   0.03,
		JournalProb: 0.10,
	}
}

// InjectedPanic is the value an injected panic carries; tests assert on
// it to distinguish injected faults from real bugs.
type InjectedPanic struct {
	Worker int
	Point  Point
}

// String implements fmt.Stringer (the value shows up in PanicError).
func (ip InjectedPanic) String() string {
	return fmt.Sprintf("chaos: injected panic at %v on worker %d", ip.Point, ip.Worker)
}
