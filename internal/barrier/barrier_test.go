package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// exercise checks the fundamental barrier property: no participant may
// enter episode k+1 before every participant has finished episode k.
func exercise(t *testing.T, name string, mk func(p int) Barrier, p, episodes int) {
	t.Helper()
	b := mk(p)
	if b.NumProcs() != p {
		t.Fatalf("%s: NumProcs = %d, want %d", name, b.NumProcs(), p)
	}
	var phase atomic.Int64 // sum of per-participant episode counters
	counts := make([]int64, p)
	var wg sync.WaitGroup
	wg.Add(p)
	errs := make(chan string, p*episodes)
	for tid := 0; tid < p; tid++ {
		go func(tid int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				counts[tid]++
				phase.Add(1)
				b.Wait(tid)
				// After the barrier, every participant must have bumped
				// its counter for this episode: total >= (e+1)*p.
				if got := phase.Load(); got < int64((e+1)*p) {
					errs <- name + ": barrier released early"
					return
				}
				b.Wait(tid) // second barrier so the check itself is safe
			}
		}(tid)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	for tid, c := range counts {
		if c != int64(episodes) {
			t.Fatalf("%s: participant %d completed %d episodes, want %d", name, tid, c, episodes)
		}
	}
}

func TestSenseBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13} {
		exercise(t, "sense", func(p int) Barrier { return NewSense(p) }, p, 50)
	}
}

func TestDisseminationBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13} {
		exercise(t, "dissemination", func(p int) Barrier { return NewDissemination(p) }, p, 50)
	}
}

func TestEpisodeCounters(t *testing.T) {
	s := NewSense(2)
	var wg sync.WaitGroup
	for tid := 0; tid < 2; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s.Wait(tid)
			}
		}(tid)
	}
	wg.Wait()
	if s.Episodes() != 10 {
		t.Fatalf("sense episodes = %d, want 10", s.Episodes())
	}

	d := NewDissemination(3)
	for tid := 0; tid < 3; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 7; i++ {
				d.Wait(tid)
			}
		}(tid)
	}
	wg.Wait()
	if d.Episodes() != 7 {
		t.Fatalf("dissemination episodes = %d, want 7", d.Episodes())
	}
}

func TestConstructorsPanicOnBadP(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSense(0) },
		func() { NewDissemination(0) },
		func() { NewSense(-3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad p accepted")
				}
			}()
			fn()
		}()
	}
}

func TestDisseminationWaitRangeCheck(t *testing.T) {
	b := NewDissemination(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range tid accepted")
		}
	}()
	b.Wait(5)
}

func TestSingleParticipantNeverBlocks(t *testing.T) {
	s := NewSense(1)
	d := NewDissemination(1)
	for i := 0; i < 1000; i++ {
		s.Wait(0)
		d.Wait(0)
	}
	if s.Episodes() != 1000 || d.Episodes() != 1000 {
		t.Fatal("single-participant episode counting wrong")
	}
}

// abortable builds each implementation at participant count p.
func abortable(p int) map[string]Barrier {
	return map[string]Barrier{
		"sense":         NewSense(p),
		"dissemination": NewDissemination(p),
	}
}

func TestAbortReleasesParkedWaiters(t *testing.T) {
	const p = 4
	for name, b := range abortable(p) {
		t.Run(name, func(t *testing.T) {
			// p-1 waiters park; the last participant aborts instead of
			// arriving. Every parked waiter must return false promptly.
			results := make(chan bool, p-1)
			for tid := 0; tid < p-1; tid++ {
				go func(tid int) { results <- b.WaitAbortable(tid) }(tid)
			}
			time.Sleep(10 * time.Millisecond) // let the waiters park
			b.Abort()
			for i := 0; i < p-1; i++ {
				select {
				case ok := <-results:
					if ok {
						t.Fatal("aborted barrier reported a completed episode")
					}
				case <-time.After(5 * time.Second):
					t.Fatal("waiter still parked after Abort")
				}
			}
		})
	}
}

func TestAbortedBarrierIsSpent(t *testing.T) {
	for name, b := range abortable(3) {
		t.Run(name, func(t *testing.T) {
			b.Abort()
			// Late arrivals to a spent barrier must not park.
			done := make(chan bool, 3)
			for tid := 0; tid < 3; tid++ {
				go func(tid int) { done <- b.WaitAbortable(tid) }(tid)
			}
			for i := 0; i < 3; i++ {
				select {
				case ok := <-done:
					if ok {
						t.Fatal("spent barrier completed an episode")
					}
				case <-time.After(5 * time.Second):
					t.Fatal("waiter parked on a spent barrier")
				}
			}
		})
	}
}

func TestAbortIsIdempotent(t *testing.T) {
	for name, b := range abortable(2) {
		t.Run(name, func(t *testing.T) {
			b.Abort()
			b.Abort()
			if b.WaitAbortable(0) {
				t.Fatal("spent barrier completed an episode")
			}
		})
	}
}

func TestWaitAbortableCompletesNormally(t *testing.T) {
	const p = 5
	for name, b := range abortable(p) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for tid := 0; tid < p; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for round := 0; round < 50; round++ {
						if !b.WaitAbortable(tid) {
							t.Errorf("un-aborted barrier returned false")
							return
						}
					}
				}(tid)
			}
			wg.Wait()
		})
	}
}
