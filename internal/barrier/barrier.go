// Package barrier provides software barriers for teams of goroutines,
// the synchronization substrate of the SMP algorithms. The paper's
// implementation used the software barriers of the SIMPLE methodology
// (Bader & JáJá); this package provides the two classic designs from
// that line of work: a centralized sense-reversing barrier and a
// dissemination barrier.
package barrier

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spantree/internal/obs"
)

// Barrier is the interface both implementations satisfy: Wait blocks the
// calling participant until all p participants of the current episode
// have arrived.
type Barrier interface {
	// Wait synchronizes participant tid with the other p-1 participants.
	Wait(tid int)
	// WaitAbortable is Wait with a cooperative escape hatch: it returns
	// true when the episode completed normally and false when Abort
	// released it (or had already been called). After a false return the
	// barrier is spent — the team must drain, not synchronize again.
	WaitAbortable(tid int) bool
	// Abort permanently releases every current and future waiter, so a
	// run that stops early (cancellation, an isolated worker panic)
	// leaves no goroutine parked in a half-filled episode. Idempotent
	// and safe to call concurrently with Wait.
	Abort()
	// NumProcs returns the number of participants.
	NumProcs() int
	// Observe attaches an observability recorder: each Wait counts one
	// BarrierWaits for its participant, and each completed episode adds
	// one run-global barrier episode (plus an EvBarrier trace event).
	// Must be called before the barrier is in concurrent use.
	Observe(rec *obs.Recorder)
}

// Sense is a centralized sense-reversing barrier. Arrivals decrement a
// shared counter; the last arriver resets the counter and flips the
// global sense, releasing the waiters. Waiters block on a condition
// variable rather than spinning, which keeps the barrier correct and
// fair when the host has fewer cores than participants.
type Sense struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	waiting int
	sense   bool
	aborted bool
	// Episodes counts completed barrier episodes, for instrumentation.
	episodes atomic.Int64
	obs      *obs.Recorder
}

// NewSense returns a sense-reversing barrier for p participants.
func NewSense(p int) *Sense {
	if p < 1 {
		panic(fmt.Sprintf("barrier: NewSense(%d) needs p >= 1", p))
	}
	b := &Sense{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// NumProcs returns the participant count.
func (b *Sense) NumProcs() int { return b.p }

// Episodes returns how many barrier episodes have completed.
func (b *Sense) Episodes() int64 { return b.episodes.Load() }

// Observe attaches an observability recorder (see Barrier.Observe).
func (b *Sense) Observe(rec *obs.Recorder) { b.obs = rec }

// Wait blocks until all participants arrive. The tid argument only
// attributes the wait to a worker in the observability layer; the
// synchronization itself is tid-independent.
func (b *Sense) Wait(tid int) { b.WaitAbortable(tid) }

// WaitAbortable blocks until all participants arrive (true) or Abort
// releases the episode (false).
func (b *Sense) WaitAbortable(tid int) bool {
	b.obs.Worker(tid).Incr(obs.BarrierWaits)
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		return false
	}
	mySense := b.sense
	b.waiting++
	if b.waiting == b.p {
		b.waiting = 0
		b.sense = !b.sense
		ep := b.episodes.Add(1)
		b.mu.Unlock()
		b.obs.AddBarrierEpisodes(1)
		b.obs.Trace(tid, obs.EvBarrier, ep, 0)
		b.cond.Broadcast()
		return true
	}
	for b.sense == mySense && !b.aborted {
		b.cond.Wait()
	}
	aborted := b.aborted
	b.mu.Unlock()
	return !aborted
}

// Abort permanently releases every current and future waiter (see
// Barrier.Abort).
func (b *Sense) Abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Dissemination is a dissemination barrier: ceil(log2 p) rounds in which
// participant i signals participant (i + 2^k) mod p and waits for a
// signal from (i - 2^k) mod p. Signals travel over single-slot channels,
// whose FIFO ordering makes consecutive episodes safe without explicit
// sense reversal.
type Dissemination struct {
	p      int
	rounds int
	// slots[k][i] carries round-k signals addressed to participant i.
	slots    [][]chan struct{}
	episodes atomic.Int64
	obs      *obs.Recorder
	// abort, once closed, releases every current and future waiter.
	abort     chan struct{}
	abortOnce sync.Once
}

// NewDissemination returns a dissemination barrier for p participants.
func NewDissemination(p int) *Dissemination {
	if p < 1 {
		panic(fmt.Sprintf("barrier: NewDissemination(%d) needs p >= 1", p))
	}
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	b := &Dissemination{p: p, rounds: rounds, abort: make(chan struct{})}
	b.slots = make([][]chan struct{}, rounds)
	for k := range b.slots {
		b.slots[k] = make([]chan struct{}, p)
		for i := range b.slots[k] {
			b.slots[k][i] = make(chan struct{}, 1)
		}
	}
	return b
}

// NumProcs returns the participant count.
func (b *Dissemination) NumProcs() int { return b.p }

// Episodes returns how many barrier episodes participant 0 has
// completed; with correct usage all participants agree.
func (b *Dissemination) Episodes() int64 { return b.episodes.Load() }

// Observe attaches an observability recorder (see Barrier.Observe).
func (b *Dissemination) Observe(rec *obs.Recorder) { b.obs = rec }

// Wait blocks participant tid until all p participants arrive.
func (b *Dissemination) Wait(tid int) { b.WaitAbortable(tid) }

// WaitAbortable blocks participant tid until all p participants arrive
// (true) or Abort releases the episode (false). After a false return
// the signal slots are mid-episode and the barrier must not be reused.
func (b *Dissemination) WaitAbortable(tid int) bool {
	if tid < 0 || tid >= b.p {
		panic(fmt.Sprintf("barrier: Wait(%d) out of range [0,%d)", tid, b.p))
	}
	b.obs.Worker(tid).Incr(obs.BarrierWaits)
	for k := 0; k < b.rounds; k++ {
		to := (tid + 1<<k) % b.p
		select {
		case b.slots[k][to] <- struct{}{}:
		case <-b.abort:
			return false
		}
		select {
		case <-b.slots[k][tid]:
		case <-b.abort:
			return false
		}
	}
	if tid == 0 {
		ep := b.episodes.Add(1)
		b.obs.AddBarrierEpisodes(1)
		b.obs.Trace(tid, obs.EvBarrier, ep, 0)
	}
	return true
}

// Abort permanently releases every current and future waiter (see
// Barrier.Abort).
func (b *Dissemination) Abort() {
	b.abortOnce.Do(func() { close(b.abort) })
}
