// Package treeops provides the operations downstream algorithms perform
// on spanning forests represented as parent arrays — depths, children
// lists, subtree sizes, Euler tours, lowest common ancestors, paths and
// re-rooting. The paper positions spanning trees as "an important
// building block for many other parallel graph algorithms"; this package
// is the toolkit that makes the library's parent arrays directly usable
// as that building block.
//
// All functions accept forests (multiple roots) and are iterative, so
// the library's degenerate chain inputs cannot overflow the stack.
package treeops

import (
	"fmt"

	"spantree/internal/graph"
)

// Forest is an analyzed parent-array forest with precomputed structure.
type Forest struct {
	Parent []graph.VID
	// Depth[v] is v's distance from its root.
	Depth []int32
	// Order lists the vertices in topological (root-first) order.
	Order []graph.VID
	// Roots lists the forest's roots in vertex order.
	Roots []graph.VID
	// childHead/childNext encode each vertex's children as an intrusive
	// linked list, avoiding per-vertex slice allocations.
	childHead []graph.VID
	childNext []graph.VID
	// up[k][v] is v's 2^k-th ancestor (graph.None above the root),
	// built lazily by EnableLCA.
	up [][]graph.VID
}

// New validates parent as a forest and precomputes its structure. It
// returns an error if parent contains cycles or out-of-range entries.
func New(parent []graph.VID) (*Forest, error) {
	n := len(parent)
	f := &Forest{
		Parent:    parent,
		Depth:     make([]int32, n),
		childHead: make([]graph.VID, n),
		childNext: make([]graph.VID, n),
	}
	for i := range f.childHead {
		f.childHead[i] = graph.None
		f.childNext[i] = graph.None
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		if p == graph.None {
			f.Roots = append(f.Roots, graph.VID(v))
			continue
		}
		if p < 0 || int(p) >= n || p == graph.VID(v) {
			return nil, fmt.Errorf("treeops: parent[%d] = %d invalid", v, p)
		}
		f.childNext[v] = f.childHead[p]
		f.childHead[p] = graph.VID(v)
	}
	// Root-first order by BFS over children lists.
	f.Order = make([]graph.VID, 0, n)
	queue := append([]graph.VID(nil), f.Roots...)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		f.Order = append(f.Order, v)
		for c := f.childHead[v]; c != graph.None; c = f.childNext[c] {
			f.Depth[c] = f.Depth[v] + 1
			queue = append(queue, c)
		}
	}
	if len(f.Order) != n {
		return nil, fmt.Errorf("treeops: parent array contains a cycle (%d of %d vertices reachable from roots)", len(f.Order), n)
	}
	return f, nil
}

// NumVertices returns the forest size.
func (f *Forest) NumVertices() int { return len(f.Parent) }

// Children returns v's children (in no particular order).
func (f *Forest) Children(v graph.VID) []graph.VID {
	var out []graph.VID
	for c := f.childHead[v]; c != graph.None; c = f.childNext[c] {
		out = append(out, c)
	}
	return out
}

// Root returns the root of v's tree.
func (f *Forest) Root(v graph.VID) graph.VID {
	for f.Parent[v] != graph.None {
		v = f.Parent[v]
	}
	return v
}

// SubtreeSizes returns size[v] = number of vertices in v's subtree
// (including v), computed in one reverse topological sweep.
func (f *Forest) SubtreeSizes() []int32 {
	size := make([]int32, len(f.Parent))
	for i := len(f.Order) - 1; i >= 0; i-- {
		v := f.Order[i]
		size[v]++
		if p := f.Parent[v]; p != graph.None {
			size[p] += size[v]
		}
	}
	return size
}

// Height returns the maximum depth in the forest (0 for empty forests).
func (f *Forest) Height() int32 {
	var h int32
	for _, d := range f.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// EulerTour returns the order vertices are first visited in a DFS of the
// forest (roots in vertex order, children in child-list order), plus
// entry/exit indices usable for subtree tests: u is an ancestor of v iff
// enter[u] <= enter[v] && exit[v] <= exit[u].
func (f *Forest) EulerTour() (tour []graph.VID, enter, exit []int32) {
	n := len(f.Parent)
	tour = make([]graph.VID, 0, n)
	enter = make([]int32, n)
	exit = make([]int32, n)
	type frame struct {
		v     graph.VID
		child graph.VID
	}
	var stack []frame
	clock := int32(0)
	for _, r := range f.Roots {
		stack = append(stack[:0], frame{r, f.childHead[r]})
		enter[r] = clock
		clock++
		tour = append(tour, r)
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.child == graph.None {
				exit[fr.v] = clock
				clock++
				stack = stack[:len(stack)-1]
				continue
			}
			c := fr.child
			fr.child = f.childNext[c]
			enter[c] = clock
			clock++
			tour = append(tour, c)
			stack = append(stack, frame{c, f.childHead[c]})
		}
	}
	return tour, enter, exit
}

// EnableLCA builds the binary-lifting tables; it must be called once
// before LCA.
func (f *Forest) EnableLCA() {
	n := len(f.Parent)
	levels := 1
	for 1<<levels < n {
		levels++
	}
	if levels == 0 {
		levels = 1
	}
	f.up = make([][]graph.VID, levels)
	f.up[0] = make([]graph.VID, n)
	copy(f.up[0], f.Parent)
	for k := 1; k < levels; k++ {
		f.up[k] = make([]graph.VID, n)
		for v := 0; v < n; v++ {
			mid := f.up[k-1][v]
			if mid == graph.None {
				f.up[k][v] = graph.None
			} else {
				f.up[k][v] = f.up[k-1][mid]
			}
		}
	}
}

// Ancestor returns v's k-th ancestor, or graph.None when the walk leaves
// the tree. EnableLCA must have been called.
func (f *Forest) Ancestor(v graph.VID, k int32) graph.VID {
	for i := 0; k != 0 && v != graph.None; i++ {
		if k&1 != 0 {
			if i >= len(f.up) {
				return graph.None
			}
			v = f.up[i][v]
		}
		k >>= 1
	}
	return v
}

// LCA returns the lowest common ancestor of u and v, or graph.None when
// they are in different trees. EnableLCA must have been called; it
// panics otherwise, since that is a programming error.
func (f *Forest) LCA(u, v graph.VID) graph.VID {
	if f.up == nil {
		panic("treeops: LCA called before EnableLCA")
	}
	if f.Depth[u] < f.Depth[v] {
		u, v = v, u
	}
	u = f.Ancestor(u, f.Depth[u]-f.Depth[v])
	if u == v {
		return u
	}
	for k := len(f.up) - 1; k >= 0; k-- {
		if f.up[k][u] != f.up[k][v] {
			u = f.up[k][u]
			v = f.up[k][v]
		}
	}
	if f.Parent[u] != f.Parent[v] {
		return graph.None // different trees
	}
	return f.Parent[u]
}

// PathToRoot returns the vertices from v to its root, inclusive.
func (f *Forest) PathToRoot(v graph.VID) []graph.VID {
	var out []graph.VID
	for v != graph.None {
		out = append(out, v)
		v = f.Parent[v]
	}
	return out
}

// TreePath returns the unique tree path from u to v, or nil when they
// are in different trees. EnableLCA must have been called.
func (f *Forest) TreePath(u, v graph.VID) []graph.VID {
	l := f.LCA(u, v)
	if l == graph.None {
		return nil
	}
	var up []graph.VID
	for cur := u; cur != l; cur = f.Parent[cur] {
		up = append(up, cur)
	}
	up = append(up, l)
	var down []graph.VID
	for cur := v; cur != l; cur = f.Parent[cur] {
		down = append(down, cur)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// Reroot returns a new parent array for the same forest with newRoot as
// the root of its tree (other trees unchanged).
func Reroot(parent []graph.VID, newRoot graph.VID) []graph.VID {
	out := make([]graph.VID, len(parent))
	copy(out, parent)
	prev := graph.None
	cur := newRoot
	for cur != graph.None {
		next := out[cur]
		out[cur] = prev
		prev = cur
		cur = next
	}
	return out
}
