package treeops

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/spanseq"
	"spantree/internal/verify"
	"spantree/internal/xrand"
)

// forestOf builds a BFS spanning forest of a random graph.
func forestOf(t testing.TB, seed uint64, n, m int) (*graph.Graph, *Forest) {
	t.Helper()
	g := gen.Random(n, m, seed)
	parent := spanseq.BFS(g, nil)
	f, err := New(parent)
	if err != nil {
		t.Fatal(err)
	}
	return g, f
}

func TestNewRejectsBadParents(t *testing.T) {
	if _, err := New([]graph.VID{1, 2, 0}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := New([]graph.VID{5}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := New([]graph.VID{0}); err == nil {
		t.Fatal("self-parent accepted")
	}
	f, err := New(nil)
	if err != nil || f.NumVertices() != 0 {
		t.Fatal("empty forest rejected")
	}
}

func TestDepthAndRootsAndOrder(t *testing.T) {
	// Chain forest: 0 <- 1 <- 2 <- 3, plus isolated 4.
	parent := []graph.VID{graph.None, 0, 1, 2, graph.None}
	f, err := New(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) != 2 || f.Roots[0] != 0 || f.Roots[1] != 4 {
		t.Fatalf("roots %v", f.Roots)
	}
	for v, want := range []int32{0, 1, 2, 3, 0} {
		if f.Depth[v] != want {
			t.Fatalf("depth[%d] = %d, want %d", v, f.Depth[v], want)
		}
	}
	if f.Height() != 3 {
		t.Fatalf("height %d", f.Height())
	}
	// Order is root-first: each vertex appears after its parent.
	pos := make([]int, 5)
	for i, v := range f.Order {
		pos[v] = i
	}
	for v, p := range parent {
		if p != graph.None && pos[v] < pos[p] {
			t.Fatalf("order violates parent-first: %v", f.Order)
		}
	}
}

func TestChildrenAndSubtreeSizes(t *testing.T) {
	// Star rooted at 0.
	parent := []graph.VID{graph.None, 0, 0, 0}
	f, err := New(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Children(0)) != 3 || len(f.Children(1)) != 0 {
		t.Fatal("children lists wrong")
	}
	sizes := f.SubtreeSizes()
	if sizes[0] != 4 || sizes[1] != 1 {
		t.Fatalf("sizes %v", sizes)
	}
}

func TestSubtreeSizesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		_, fo := forestOf(t, seed, n, 2*n)
		sizes := fo.SubtreeSizes()
		// Sum of root subtree sizes equals n; every size is >= 1 and
		// equals 1 + sum of children's sizes.
		var rootSum int32
		for _, r := range fo.Roots {
			rootSum += sizes[r]
		}
		if int(rootSum) != n {
			return false
		}
		for v := 0; v < n; v++ {
			var kids int32
			for _, c := range fo.Children(graph.VID(v)) {
				kids += sizes[c]
			}
			if sizes[v] != kids+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEulerTourAncestry(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%150) + 1
		_, fo := forestOf(t, seed, n, 2*n)
		tour, enter, exit := fo.EulerTour()
		if len(tour) != n {
			return false
		}
		// The Euler intervals agree with explicit ancestor walks.
		r := xrand.New(seed)
		for trial := 0; trial < 30; trial++ {
			u := graph.VID(r.Intn(n))
			v := graph.VID(r.Intn(n))
			isAncestor := false
			for cur := v; cur != graph.None; cur = fo.Parent[cur] {
				if cur == u {
					isAncestor = true
					break
				}
			}
			intervalSays := enter[u] <= enter[v] && exit[v] <= exit[u]
			if isAncestor != intervalSays {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLCAAgainstNaive(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		_, fo := forestOf(t, seed, n, 3*n/2)
		fo.EnableLCA()
		r := xrand.New(seed ^ 1)
		naiveLCA := func(u, v graph.VID) graph.VID {
			seen := map[graph.VID]bool{}
			for cur := u; cur != graph.None; cur = fo.Parent[cur] {
				seen[cur] = true
			}
			for cur := v; cur != graph.None; cur = fo.Parent[cur] {
				if seen[cur] {
					return cur
				}
			}
			return graph.None
		}
		for trial := 0; trial < 40; trial++ {
			u := graph.VID(r.Intn(n))
			v := graph.VID(r.Intn(n))
			if fo.LCA(u, v) != naiveLCA(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestor(t *testing.T) {
	parent := []graph.VID{graph.None, 0, 1, 2, 3}
	f, _ := New(parent)
	f.EnableLCA()
	if f.Ancestor(4, 2) != 2 || f.Ancestor(4, 4) != 0 {
		t.Fatal("ancestor walks wrong")
	}
	if f.Ancestor(4, 5) != graph.None {
		t.Fatal("overshoot should leave the tree")
	}
	if f.Ancestor(4, 0) != 4 {
		t.Fatal("0th ancestor should be self")
	}
}

func TestLCAPanicsWithoutEnable(t *testing.T) {
	f, _ := New([]graph.VID{graph.None, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("LCA before EnableLCA did not panic")
		}
	}()
	f.LCA(0, 1)
}

func TestTreePath(t *testing.T) {
	// Balanced binary tree on 7 vertices in heap order.
	parent := []graph.VID{graph.None, 0, 0, 1, 1, 2, 2}
	f, _ := New(parent)
	f.EnableLCA()
	path := f.TreePath(3, 5)
	want := []graph.VID{3, 1, 0, 2, 5}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	// Same vertex.
	if p := f.TreePath(4, 4); len(p) != 1 || p[0] != 4 {
		t.Fatalf("self path %v", p)
	}
	// Different trees.
	f2, _ := New([]graph.VID{graph.None, graph.None})
	f2.EnableLCA()
	if f2.TreePath(0, 1) != nil {
		t.Fatal("cross-tree path should be nil")
	}
}

func TestRerootPreservesForest(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		g := gen.RandomConnected(n, 2*n, seed)
		parent := spanseq.BFS(g, nil)
		r := xrand.New(seed)
		newRoot := graph.VID(r.Intn(n))
		rerooted := Reroot(parent, newRoot)
		if rerooted[newRoot] != graph.None {
			return false
		}
		return verify.Forest(g, rerooted) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRootResolution(t *testing.T) {
	g, fo := forestOf(t, 9, 100, 160)
	comp, _ := graph.Components(g)
	for v := 0; v < g.NumVertices(); v++ {
		r := fo.Root(graph.VID(v))
		if comp[v] != comp[r] {
			t.Fatalf("root of %d in a different component", v)
		}
		if fo.Parent[r] != graph.None {
			t.Fatalf("Root returned a non-root")
		}
	}
}

func TestDeepChainOperations(t *testing.T) {
	// LCA and tours on a 2^17 chain must not recurse or overflow.
	n := 1 << 17
	g := gen.Chain(n)
	parent := spanseq.BFS(g, nil)
	f, err := New(parent)
	if err != nil {
		t.Fatal(err)
	}
	f.EnableLCA()
	if f.LCA(graph.VID(n-1), 1) != 1 {
		t.Fatal("deep LCA wrong")
	}
	if f.Height() != int32(n-1) {
		t.Fatal("deep height wrong")
	}
	_, enter, exit := f.EulerTour()
	if !(enter[0] == 0 && exit[0] == int32(2*n-1)) {
		t.Fatal("deep Euler tour wrong")
	}
}
