package conncomp

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

func TestLabelsMatchReference(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%250) + 1
		m := int(mRaw % 400)
		p := int(pRaw%5) + 1
		g := gen.Random(n, m, seed)
		labels, count, err := Labels(g, p, seed)
		if err != nil {
			return false
		}
		ref, refCount := graph.Components(g)
		if count != refCount {
			return false
		}
		// Same partition under a possibly different label numbering.
		seen := map[graph.VID]graph.VID{}
		for v := range labels {
			if prev, ok := seen[labels[v]]; ok {
				if prev != ref[v] {
					return false
				}
			} else {
				seen[labels[v]] = ref[v]
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelsAreDense(t *testing.T) {
	g := graph.Union(gen.Star(5), gen.Chain(4), gen.Cycle(6))
	labels, count, err := Labels(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	seen := make([]bool, count)
	for _, l := range labels {
		if l < 0 || int(l) >= count {
			t.Fatalf("label %d out of [0,%d)", l, count)
		}
		seen[l] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("label %d unused", i)
		}
	}
}

func TestFromForestRejectsCycles(t *testing.T) {
	parent := []graph.VID{1, 2, 0} // 3-cycle
	if _, _, err := FromForest(parent); err == nil {
		t.Fatal("cyclic parent array accepted")
	}
}

func TestFromForestEmpty(t *testing.T) {
	labels, count, err := FromForest(nil)
	if err != nil || count != 0 || len(labels) != 0 {
		t.Fatalf("empty forest: %v %d %v", labels, count, err)
	}
}

func TestFromForestSingletons(t *testing.T) {
	parent := []graph.VID{graph.None, graph.None, graph.None}
	labels, count, err := FromForest(parent)
	if err != nil || count != 3 {
		t.Fatalf("count %d err %v", count, err)
	}
	for i, l := range labels {
		if int(l) != i {
			t.Fatalf("labels %v", labels)
		}
	}
}
