package conncomp

import (
	"reflect"
	"testing"
	"testing/quick"

	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/xrand"
)

// These tests are the data-race certificate for the pointer-jumping
// labeler on the shared dynamic scheduler, in the style of the wsq batch
// stress tests: model-check FromForestP against the sequential walk over
// random forests and random scheduler configurations, with the real
// concurrent scheduler underneath (run them under -race).

// randomForest builds a random parent array with the given number of
// vertices: each vertex either becomes a root or attaches to a random
// earlier vertex under a random relabeling, so arbitrary shapes (deep
// paths, wide stars, mixes) appear without ever creating a cycle.
func randomForest(n int, seed uint64) []graph.VID {
	r := xrand.New(seed)
	perm := make([]graph.VID, n)
	for i := range perm {
		perm[i] = graph.VID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Intn(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	parent := make([]graph.VID, n)
	for i := 0; i < n; i++ {
		v := perm[i]
		if i == 0 || r.Intn(8) == 0 {
			parent[v] = graph.None
		} else {
			parent[v] = perm[int(r.Intn(i))]
		}
	}
	return parent
}

// TestFromForestPModelCheck: the parallel labeling must be identical —
// labels, not just the partition — to the sequential reference on any
// forest, any processor count, any chunk configuration.
func TestFromForestPModelCheck(t *testing.T) {
	f := func(seed uint64, nRaw uint16, pRaw, sizeRaw uint8) bool {
		n := int(nRaw % 2000)
		p := int(pRaw%8) + 1
		parent := randomForest(n, seed)
		want, wantCount, err := FromForest(parent)
		if err != nil {
			return false
		}
		opt := Options{NumProcs: p, ChunkSize: int(sizeRaw % 9)}
		if sizeRaw%2 == 0 {
			opt.ChunkPolicy = par.ChunkFixed
			if opt.ChunkSize == 0 {
				opt.ChunkSize = 1
			}
		}
		got, gotCount, err := FromForestP(parent, opt)
		if err != nil {
			return false
		}
		return gotCount == wantCount && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFromForestPRejectsCycles: the pointer-jumping driver must reject
// every non-forest the sequential walk rejects, including the shapes
// that converge in place (self-loops, power-of-two cycles) and the ones
// that never converge (odd cycles).
func TestFromForestPRejectsCycles(t *testing.T) {
	cases := map[string][]graph.VID{
		"3-cycle":     {1, 2, 0},
		"self-loop":   {graph.None, 1, graph.None},
		"2-cycle":     {1, 0, graph.None},
		"4-cycle":     {1, 2, 3, 0},
		"cycle+trees": {graph.None, 0, 3, 2, 2, 1},
	}
	for name, parent := range cases {
		if _, _, err := FromForest(parent); err == nil {
			t.Fatalf("%s: sequential walk accepted a non-forest", name)
		}
		for _, p := range []int{2, 4, 8} {
			if _, _, err := FromForestP(parent, Options{NumProcs: p}); err == nil {
				t.Fatalf("%s: FromForestP(p=%d) accepted a non-forest", name, p)
			}
		}
	}
}

// TestFromForestPStress hammers one big mixed forest concurrently under
// every policy: a deep path (worst case for jumping rounds) unioned with
// wide stars (worst case for write contention on one round).
func TestFromForestPStress(t *testing.T) {
	const n = 1 << 15
	parent := make([]graph.VID, n)
	// Vertices [0, n/2): one deep path. [n/2, n): stars of 256 leaves.
	parent[0] = graph.None
	for v := 1; v < n/2; v++ {
		parent[v] = graph.VID(v - 1)
	}
	for v := n / 2; v < n; v++ {
		if (v-n/2)%256 == 0 {
			parent[v] = graph.None
		} else {
			parent[v] = graph.VID(v - (v-n/2)%256)
		}
	}
	want, wantCount, err := FromForest(parent)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Options{
		{NumProcs: 4},
		{NumProcs: 8, ChunkSize: 4},
		{NumProcs: 8, ChunkPolicy: par.ChunkFixed, ChunkSize: 1},
		{NumProcs: 3, ChunkPolicy: par.ChunkFixed, ChunkSize: 64},
	} {
		got, gotCount, err := FromForestP(parent, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if gotCount != wantCount || !reflect.DeepEqual(got, want) {
			t.Fatalf("%+v: labeling differs from sequential reference", cfg)
		}
	}
}
