// Package conncomp derives connected-components labelings from spanning
// forests, one of the applications the paper names as future work
// ("we plan to apply the techniques discussed in this paper to ...
// connected components"). A spanning forest computed by the
// work-stealing algorithm has exactly one root per component, so
// resolving every vertex to its tree root labels the components in
// O(n) additional work — sequentially by a path-compressing walk, or in
// parallel by pointer jumping on the shared dynamic scheduler.
package conncomp

import (
	"fmt"

	"spantree/internal/chaos"
	"spantree/internal/core"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
)

// Options configures a parallel labeling run.
type Options struct {
	// NumProcs is the number of virtual processors p (>= 1).
	NumProcs int
	// Seed drives the spanning-forest traversal's randomness.
	Seed uint64
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// for both the forest traversal and the pointer-jumping sweeps —
	// the same -chunk knobs as every other parallel algorithm here.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips),
	// shared between the forest traversal and the labeling sweeps;
	// Chaos the fault injector (nil injects nothing).
	Cancel *fault.Flag
	Chaos  *chaos.Injector
}

// Labels computes component labels for g using the work-stealing
// spanning-forest algorithm with p virtual processors. Labels are dense
// ids in [0, count) assigned in order of each component's root vertex.
func Labels(g *graph.Graph, p int, seed uint64) ([]graph.VID, int, error) {
	return LabelsOpt(g, Options{NumProcs: p, Seed: seed})
}

// LabelsOpt is Labels with full scheduler configuration.
func LabelsOpt(g *graph.Graph, opt Options) ([]graph.VID, int, error) {
	parent, _, err := core.SpanningForest(g, core.Options{
		NumProcs:    opt.NumProcs,
		Seed:        opt.Seed,
		ChunkPolicy: opt.ChunkPolicy,
		ChunkSize:   opt.ChunkSize,
		Cancel:      opt.Cancel,
		Chaos:       opt.Chaos,
	})
	if err != nil {
		return nil, 0, err
	}
	return FromForestP(parent, opt)
}

// FromForest converts a parent-array spanning forest into dense
// component labels. It returns an error if the parent array contains a
// cycle (i.e. is not a forest). This is the sequential reference; see
// FromForestP for the parallel pointer-jumping version.
func FromForest(parent []graph.VID) ([]graph.VID, int, error) {
	n := len(parent)
	rootID := make([]graph.VID, n)
	for i := range rootID {
		rootID[i] = graph.None
	}
	count := 0
	// First pass: number the roots in vertex order.
	for v := 0; v < n; v++ {
		if parent[v] == graph.None {
			rootID[v] = graph.VID(count)
			count++
		}
	}
	// Second pass: resolve every vertex by walking up, path-compressing
	// the labels. The walk length is bounded by n; exceeding it means a
	// cycle.
	var path []graph.VID
	for v := 0; v < n; v++ {
		if rootID[v] != graph.None {
			continue
		}
		path = path[:0]
		cur := graph.VID(v)
		for rootID[cur] == graph.None {
			if len(path) > n {
				return nil, 0, fmt.Errorf("conncomp: parent array contains a cycle near vertex %d", v)
			}
			path = append(path, cur)
			cur = parent[cur]
			if cur == graph.None {
				return nil, 0, fmt.Errorf("conncomp: inconsistent parent array at vertex %d", v)
			}
		}
		label := rootID[cur]
		for _, u := range path {
			rootID[u] = label
		}
	}
	return rootID, count, nil
}

// FromForestP is the parallel FromForest: pointer jumping over a scratch
// copy of the forest, run on the shared dynamic scheduler. Each round
// doubles the distance every vertex has climbed, so ceil(log2 n) rounds
// resolve any forest; a parent array that is still moving after that
// many rounds, or that converges onto a non-root (a self-loop or a
// power-of-two cycle collapses in place), is rejected as cyclic. The
// rounds double-buffer, so workers only ever read the previous round's
// array — no per-element synchronization is needed.
func FromForestP(parent []graph.VID, opt Options) ([]graph.VID, int, error) {
	if opt.NumProcs <= 1 {
		return FromForest(parent)
	}
	n := len(parent)
	// Number the roots in vertex order, as in the sequential first pass.
	rootNum := make([]graph.VID, n)
	count := 0
	for v := 0; v < n; v++ {
		if parent[v] == graph.None {
			rootNum[v] = graph.VID(count)
			count++
		}
	}
	maxRounds := 2
	for m := 1; m < n; m *= 2 {
		maxRounds++
	}
	bufs := [2][]graph.VID{make([]graph.VID, n), make([]graph.VID, n)}
	labels := make([]graph.VID, n)
	cyclic := false

	team := par.NewTeam(opt.NumProcs, nil).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	err := team.RunErr(func(c *par.Ctx) {
		// Roots point at themselves so jumping is a no-op on them.
		c.ForDynamic(n, func(v int) {
			p := parent[v]
			if p == graph.None {
				p = graph.VID(v)
			}
			bufs[0][v] = p
		})
		c.Barrier()
		r := 0
		converged := false
		for r < maxRounds {
			src, dst := bufs[r&1], bufs[(r+1)&1]
			changed := false
			c.ForDynamic(n, func(v int) {
				u := src[v]
				uu := src[u]
				dst[v] = uu
				if uu != u {
					changed = true
				}
			})
			r++
			// ReduceOr barriers the round: every worker sees the same
			// verdict, so they all leave (or stay in) the loop together.
			if !c.ReduceOr(changed) {
				converged = true
				break
			}
		}
		final := bufs[r&1]
		bad := !converged
		if converged {
			mine := false
			c.ForDynamic(n, func(v int) {
				if parent[final[v]] != graph.None {
					mine = true
				}
			})
			bad = c.ReduceOr(mine)
		}
		if bad {
			if c.TID() == 0 {
				cyclic = true
			}
			return
		}
		c.ForDynamic(n, func(v int) {
			labels[v] = rootNum[final[v]]
		})
	})
	if err != nil {
		return nil, 0, err
	}
	if cyclic {
		return nil, 0, fmt.Errorf("conncomp: parent array is not a forest (cycle detected by pointer jumping)")
	}
	return labels, count, nil
}
