// Package conncomp derives connected-components labelings from spanning
// forests, one of the applications the paper names as future work
// ("we plan to apply the techniques discussed in this paper to ...
// connected components"). A spanning forest computed by the
// work-stealing algorithm has exactly one root per component, so
// resolving every vertex to its tree root labels the components in
// O(n) additional work.
package conncomp

import (
	"fmt"

	"spantree/internal/core"
	"spantree/internal/graph"
)

// Labels computes component labels for g using the work-stealing
// spanning-forest algorithm with p virtual processors. Labels are dense
// ids in [0, count) assigned in order of each component's root vertex.
func Labels(g *graph.Graph, p int, seed uint64) ([]graph.VID, int, error) {
	parent, _, err := core.SpanningForest(g, core.Options{NumProcs: p, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	return FromForest(parent)
}

// FromForest converts a parent-array spanning forest into dense
// component labels. It returns an error if the parent array contains a
// cycle (i.e. is not a forest).
func FromForest(parent []graph.VID) ([]graph.VID, int, error) {
	n := len(parent)
	rootID := make([]graph.VID, n)
	for i := range rootID {
		rootID[i] = graph.None
	}
	count := 0
	// First pass: number the roots in vertex order.
	for v := 0; v < n; v++ {
		if parent[v] == graph.None {
			rootID[v] = graph.VID(count)
			count++
		}
	}
	// Second pass: resolve every vertex by walking up, path-compressing
	// the labels. The walk length is bounded by n; exceeding it means a
	// cycle.
	var path []graph.VID
	for v := 0; v < n; v++ {
		if rootID[v] != graph.None {
			continue
		}
		path = path[:0]
		cur := graph.VID(v)
		for rootID[cur] == graph.None {
			if len(path) > n {
				return nil, 0, fmt.Errorf("conncomp: parent array contains a cycle near vertex %d", v)
			}
			path = append(path, cur)
			cur = parent[cur]
			if cur == graph.None {
				return nil, 0, fmt.Errorf("conncomp: inconsistent parent array at vertex %d", v)
			}
		}
		label := rootID[cur]
		for _, u := range path {
			rootID[u] = label
		}
	}
	return rootID, count, nil
}
