// Package spanrm implements a random-mating connectivity algorithm
// adapted to spanning trees, the Reif/Phillips-style baseline family
// from Greiner's experimental study that the paper surveys ("Greiner
// implemented several connected components algorithms (Shiloach-Vishkin,
// Awerbuch-Shiloach, 'random-mating' based on the work of Reif and
// Phillips, and a hybrid of the previous three)").
//
// Each round every star root flips a coin. Tails-roots hook onto an
// adjacent heads-root (election by CAS, recording the graph edge used,
// like the SV adaptation), then all trees are flattened back to stars.
// Expected O(log n) rounds independent of the labeling — random mating
// trades SV's labeling sensitivity for coin flips, which the comparison
// benchmark demonstrates.
package spanrm

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
)

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors (>= 1).
	NumProcs int
	// Seed drives the coin flips.
	Seed uint64
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// MaxRounds caps mating rounds; 0 means 4*ceil(log2 n)+32, far above
	// the expected need (the cap exists to bound pathological seeds).
	MaxRounds int
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) running the coin/election/hook/flatten sweeps.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips);
	// Chaos the fault injector (nil injects nothing).
	Cancel *fault.Flag
	Chaos  *chaos.Injector
}

// Stats reports what a run did.
type Stats struct {
	// Rounds is the number of mating rounds executed.
	Rounds int
	// Hooks is the number of hook operations == emitted tree edges.
	Hooks int
}

const nobody = int64(-1)

func packArc(v, w graph.VID) int64 {
	return int64(uint64(uint32(v))<<32 | uint64(uint32(w)))
}

func unpackArc(x int64) (v, w graph.VID) {
	return graph.VID(uint32(uint64(x) >> 32)), graph.VID(uint32(uint64(x)))
}

// SpanningForest runs random mating and returns the forest as a parent
// array plus statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("spanrm: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	n := g.NumVertices()
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 32
		for 1<<((maxRounds-32)/4) < n+1 {
			maxRounds += 4
		}
	}

	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	coin := make([]bool, n) // true = heads: this root accepts hooks
	winner := make([]int64, n)

	team := par.NewTeam(opt.NumProcs, opt.Model).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	edgeBufs := make([][]graph.Edge, opt.NumProcs)
	rounds := 0
	stalled := false

	err := team.RunErr(func(c *par.Ctx) {
		probe := c.Probe()
		var myEdges []graph.Edge
		defer func() { edgeBufs[c.TID()] = myEdges }()
		c.ForDynamic(n, func(i int) { winner[i] = nobody })
		c.Barrier()

		for round := 0; round < maxRounds; round++ {
			// Phase 0: every root flips a coin. Flips are a deterministic
			// function of (seed, round, vertex) so the result does not
			// depend on which processor owns the vertex.
			c.ForDynamic(n, func(vi int) {
				probe.NonContig(1)
				coin[vi] = flip(opt.Seed, uint64(round), uint64(vi))
			})
			c.Barrier()

			// Phase 1: election. Arcs from tails-components to
			// heads-components propose; first CAS per tails-root wins.
			c.ForDynamic(n, func(vi int) {
				v := graph.VID(vi)
				probe.NonContig(1)
				rv := d[v]
				if d[rv] != rv || coin[rv] {
					return // not a root's vertex, or root is heads
				}
				nb := g.Neighbors(v)
				probe.Contig(int64(len(nb)))
				for _, w := range nb {
					probe.NonContig(2)
					rw := d[w]
					if rw == rv || !coin[rw] {
						continue
					}
					probe.NonContig(1)
					if atomic.CompareAndSwapInt64(&winner[rv], nobody, packArc(v, w)) {
						break
					}
				}
			})
			c.Barrier()

			// Phase 2: apply hooks (tails root -> heads root).
			hooked := false
			c.ForDynamic(n, func(ri int) {
				r := graph.VID(ri)
				probe.NonContig(1)
				arc := winner[r]
				if arc == nobody {
					return
				}
				v, w := unpackArc(arc)
				probe.NonContig(2)
				atomic.StoreInt32(&d[r], atomic.LoadInt32(&d[w]))
				myEdges = append(myEdges, graph.Edge{U: v, V: w})
				hooked = true
				winner[r] = nobody
			})
			anyHook := c.ReduceOr(hooked)
			if c.TID() == 0 {
				rounds = round + 1
			}

			// Phase 3: flatten to stars.
			for {
				changed := false
				c.ForDynamic(n, func(vi int) {
					v := graph.VID(vi)
					probe.NonContig(2)
					dv := atomic.LoadInt32(&d[v])
					ddv := atomic.LoadInt32(&d[dv])
					if dv != ddv {
						atomic.StoreInt32(&d[v], ddv)
						changed = true
					}
				})
				if !c.ReduceOr(changed) {
					break
				}
			}

			// Termination: no hooks this round AND no cross-component arcs
			// remain. A hookless round can be a coin-flip accident, so
			// explicitly test for remaining cross arcs.
			if !anyHook {
				remaining := false
				c.ForDynamic(n, func(vi int) {
					v := graph.VID(vi)
					probe.NonContig(1)
					for _, w := range g.Neighbors(v) {
						if d[v] != d[w] {
							remaining = true
							return
						}
					}
				})
				if !c.ReduceOr(remaining) {
					return
				}
			}
		}
		if c.TID() == 0 {
			stalled = true
		}
	})
	if err != nil {
		return nil, Stats{}, err
	}

	var stats Stats
	stats.Rounds = rounds
	var edges []graph.Edge
	for _, eb := range edgeBufs {
		edges = append(edges, eb...)
	}
	stats.Hooks = len(edges)
	treeAdj := make([][]graph.VID, n)
	for _, e := range edges {
		treeAdj[e.U] = append(treeAdj[e.U], e.V)
		treeAdj[e.V] = append(treeAdj[e.V], e.U)
	}
	opt.Model.Probe(0).NonContig(int64(2 * len(edges)))
	parent := spanseq.RootForest(n, treeAdj)
	if stalled {
		return parent, stats, fmt.Errorf("spanrm: did not converge in %d rounds", maxRounds)
	}
	return parent, stats, nil
}

// flip returns a deterministic pseudo-random coin for (seed, round, v).
func flip(seed, round, v uint64) bool {
	x := seed ^ (round+1)*0x9E3779B97F4A7C15 ^ (v+1)*0xBF58476D1CE4E5B9
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 29
	return x&1 == 1
}
