package spanrm

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/spanseq"
	"spantree/internal/spansv"
)

// HybridOptions configures HybridSpanningForest.
type HybridOptions struct {
	// NumProcs is the number of virtual processors (>= 1).
	NumProcs int
	// Seed drives the mating coin flips.
	Seed uint64
	// MatingRounds is the number of random-mating rounds to run before
	// handing the contracted graph to Shiloach-Vishkin; 0 means 3.
	MatingRounds int
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// for both the mating sweeps and the SV completion.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips);
	// Chaos the fault injector (nil injects nothing). Both are shared
	// with the SV completion phase.
	Cancel *fault.Flag
	Chaos  *chaos.Injector
}

// HybridStats reports what a hybrid run did.
type HybridStats struct {
	// MatingRounds and MatingHooks describe the first phase.
	MatingRounds int
	MatingHooks  int
	// SV describes the completion phase.
	SV spansv.Stats
}

// HybridSpanningForest implements the fourth algorithm of Greiner's
// study ("random-mating ... and a hybrid of the previous three"): a few
// rounds of random mating shrink the component count by a constant
// factor per round — cheap, labeling-insensitive contraction — and
// Shiloach-Vishkin finishes the residue, whose star invariants the
// mating rounds already established.
func HybridSpanningForest(g *graph.Graph, opt HybridOptions) ([]graph.VID, HybridStats, error) {
	if opt.NumProcs < 1 {
		return nil, HybridStats{}, fmt.Errorf("spanrm: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	rounds := opt.MatingRounds
	if rounds == 0 {
		rounds = 3
	}
	n := g.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	winner := make([]int64, n)
	coin := make([]bool, n)

	team := par.NewTeam(opt.NumProcs, nil).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	edgeBufs := make([][]graph.Edge, opt.NumProcs)
	var stats HybridStats
	stats.MatingRounds = rounds

	err := team.RunErr(func(c *par.Ctx) {
		var myEdges []graph.Edge
		defer func() { edgeBufs[c.TID()] = myEdges }()
		c.ForDynamic(n, func(i int) { winner[i] = nobody })
		c.Barrier()

		for round := 0; round < rounds; round++ {
			c.ForDynamic(n, func(vi int) {
				coin[vi] = flip(opt.Seed, uint64(round), uint64(vi))
			})
			c.Barrier()
			c.ForDynamic(n, func(vi int) {
				v := graph.VID(vi)
				rv := d[v]
				if d[rv] != rv || coin[rv] {
					return
				}
				for _, w := range g.Neighbors(v) {
					rw := d[w]
					if rw == rv || !coin[rw] {
						continue
					}
					if atomic.CompareAndSwapInt64(&winner[rv], nobody, packArc(v, w)) {
						break
					}
				}
			})
			c.Barrier()
			c.ForDynamic(n, func(ri int) {
				r := graph.VID(ri)
				arc := winner[r]
				if arc == nobody {
					return
				}
				v, w := unpackArc(arc)
				atomic.StoreInt32(&d[r], atomic.LoadInt32(&d[w]))
				myEdges = append(myEdges, graph.Edge{U: v, V: w})
				winner[r] = nobody
			})
			c.Barrier()
			for {
				changed := false
				c.ForDynamic(n, func(vi int) {
					v := graph.VID(vi)
					dv := atomic.LoadInt32(&d[v])
					ddv := atomic.LoadInt32(&d[dv])
					if dv != ddv {
						atomic.StoreInt32(&d[v], ddv)
						changed = true
					}
				})
				if !c.ReduceOr(changed) {
					break
				}
			}
		}
	})
	if err != nil {
		return nil, stats, err
	}

	var edges []graph.Edge
	for _, eb := range edgeBufs {
		edges = append(edges, eb...)
	}
	stats.MatingHooks = len(edges)

	// Completion: SV grafts the remaining components. The mating phase
	// left d as rooted stars, which is exactly GraftFrom's precondition.
	svEdges, svStats, err := spansv.GraftFrom(g, d, spansv.Options{
		NumProcs: opt.NumProcs, ChunkPolicy: opt.ChunkPolicy, ChunkSize: opt.ChunkSize,
		Cancel: opt.Cancel, Chaos: opt.Chaos})
	if err != nil {
		return nil, stats, fmt.Errorf("spanrm: hybrid SV completion: %w", err)
	}
	stats.SV = svStats
	edges = append(edges, svEdges...)

	treeAdj := make([][]graph.VID, n)
	for _, e := range edges {
		treeAdj[e.U] = append(treeAdj[e.U], e.V)
		treeAdj[e.V] = append(treeAdj[e.V], e.U)
	}
	return spanseq.RootForest(n, treeAdj), stats, nil
}
