package spanrm

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

func TestSpanningForestShapes(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2), gen.Chain(64),
		gen.Star(40), gen.Cycle(33), gen.Complete(15),
		gen.Torus2D(7, 7), gen.Random(150, 220, 1),
		graph.Union(gen.Chain(8), gen.Star(6), gen.Cycle(5)),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 5} {
			parent, st, err := SpanningForest(g, Options{NumProcs: p, Seed: 7})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			wantEdges := g.NumVertices() - graph.NumComponents(g)
			if st.Hooks != wantEdges {
				t.Fatalf("%v p=%d: %d hooks, want %d", g, p, st.Hooks, wantEdges)
			}
		}
	}
}

func TestSpanningForestProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 300)
		p := int(pRaw%4) + 1
		g := gen.Random(n, m, seed)
		parent, _, err := SpanningForest(g, Options{NumProcs: p, Seed: seed ^ 0xF00})
		return err == nil && verify.Forest(g, parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelingInsensitivity(t *testing.T) {
	// Random mating's round count is driven by coin flips, not labels:
	// both labelings of the same chain should take a similar number of
	// rounds (within a factor ~2), unlike SV's 2 vs ~log n contrast.
	n := 1 << 11
	seqChain := gen.Chain(n)
	randChain := graph.RandomRelabel(seqChain, 55)
	_, stSeq, err := SpanningForest(seqChain, Options{NumProcs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, stRand, err := SpanningForest(randChain, Options{NumProcs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := stSeq.Rounds, stRand.Rounds
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 2*lo+4 {
		t.Fatalf("round counts %d vs %d differ too much for a labeling-insensitive algorithm",
			stSeq.Rounds, stRand.Rounds)
	}
}

func TestSeedsChangeShapeNotValidity(t *testing.T) {
	g := gen.Random(200, 300, 9)
	a, _, err := SpanningForest(g, Options{NumProcs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SpanningForest(g, Options{NumProcs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if verify.Forest(g, a) != nil || verify.Forest(g, b) != nil {
		t.Fatal("invalid forest")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("note: two seeds produced identical trees (possible but unlikely)")
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, _, err := SpanningForest(gen.Chain(4), Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestMaxRoundsCap(t *testing.T) {
	// An absurdly small cap must surface as an error, not a bad tree.
	g := gen.Random(300, 450, 3)
	_, _, err := SpanningForest(g, Options{NumProcs: 2, Seed: 3, MaxRounds: 1})
	if err == nil {
		t.Skip("converged in one round (possible on this seed)")
	}
}

func TestHybridSpanningForest(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(64), gen.Star(40), gen.Cycle(33),
		gen.Torus2D(7, 7), gen.Random(200, 300, 1),
		graph.Union(gen.Chain(8), gen.Star(6), gen.Cycle(5)),
		graph.RandomRelabel(gen.Chain(128), 3),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 5} {
			parent, st, err := HybridSpanningForest(g, HybridOptions{NumProcs: p, Seed: 7})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			wantEdges := g.NumVertices() - graph.NumComponents(g)
			if st.MatingHooks+st.SV.Grafts != wantEdges {
				t.Fatalf("%v p=%d: %d+%d tree edges, want %d", g, p,
					st.MatingHooks, st.SV.Grafts, wantEdges)
			}
		}
	}
}

func TestHybridMatingActuallyContracts(t *testing.T) {
	g := gen.RandomConnected(2000, 3000, 4)
	_, st, err := HybridSpanningForest(g, HybridOptions{NumProcs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Three mating rounds should resolve a large majority of the merges,
	// leaving SV a much smaller residue.
	if st.MatingHooks < st.SV.Grafts {
		t.Fatalf("mating hooked %d, SV grafted %d: mating phase ineffective",
			st.MatingHooks, st.SV.Grafts)
	}
}

func TestHybridProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 300)
		p := int(pRaw%4) + 1
		g := gen.Random(n, m, seed)
		parent, _, err := HybridSpanningForest(g, HybridOptions{NumProcs: p, Seed: seed})
		return err == nil && verify.Forest(g, parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridRejectsBadOptions(t *testing.T) {
	if _, _, err := HybridSpanningForest(gen.Chain(4), HybridOptions{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}
