package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spantree/internal/serve"
	"spantree/internal/stats"
	"spantree/internal/xrand"
)

// RunLoadGen is the entry point of cmd/loadgen: drive a running
// spantreed instance with closed-loop (fixed concurrency) or open-loop
// (fixed arrival rate) load, summarize per-request latency as
// p50/p99/p999 percentiles, and optionally write a versioned serving
// benchmark artifact (spantree/serving/v1) for cmd/benchcmp to gate.
//
// -probes additionally exercises the server's typed rejection paths —
// one cancellation (a request whose deadline expires mid-run, expecting
// the typed 504), one oversized registration (expecting the typed 413),
// a readiness check (GET /v1/readyz must be 200), and a drain cycle
// (POST /v1/drain flips readiness to the typed 503, DELETE restores
// it) — and fails if any returns anything else.
//
// -retry enables client-side resilience: requests answered 429 or 503
// (or lost to transport errors) are retried up to that many times with
// jittered exponential backoff, cooperating with the server's adaptive
// admission control instead of hammering it. -hedge optionally sends a
// second copy of a request whose first attempt is still unanswered
// after the given delay, taking whichever response lands first —
// tail-latency insurance against a single slow session.
func RunLoadGen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseURL   = fs.String("url", "", "base URL of the spantreed instance (e.g. http://127.0.0.1:8080)")
		graphName = fs.String("graph", "bench", "name of the graph to run against")
		register  = fs.String("register", "", "register the graph first: kind:n[:m[:k[:seed]]] (skipped when already registered)")
		mode      = fs.String("mode", "closed", "load shape: closed (fixed concurrency) or open (fixed arrival rate)")
		concStr   = fs.String("c", "1", "closed loop: comma-separated concurrency levels, one scenario each (e.g. 1,4,8)")
		requests  = fs.Int("n", 100, "closed loop: requests per scenario")
		rate      = fs.Float64("rate", 50, "open loop: arrival rate in requests/second")
		duration  = fs.Duration("duration", 3*time.Second, "open loop: scenario length")
		warmup    = fs.Int("warmup", 10, "untimed warmup requests before the first scenario")
		timeoutMS = fs.Int("timeout-ms", 5000, "per-request deadline sent to the server")
		seed      = fs.Uint64("seed", 1, "base seed; each request perturbs it")
		outPath   = fs.String("out", "", "write the serving benchmark artifact to this path (e.g. results/BENCH_serving.json)")
		strict    = fs.Bool("strict", false, "fail on any non-200 response in the load scenarios (CI smoke mode)")
		probes    = fs.Bool("probes", false, "run the typed-rejection probes (cancellation 504, oversized 413)")
		slowN     = fs.Int("probe-slow-n", 1<<20, "vertex count of the chain graph the cancellation probe registers")
		overN     = fs.Int("probe-oversize-n", 1<<23, "vertex count of the oversized registration (must exceed the server's cap)")
		retries   = fs.Int("retry", 0, "retry a 429/503/transport-failed request up to this many times with jittered exponential backoff (0 disables)")
		hedge     = fs.Duration("hedge", 0, "send a hedged duplicate of a request still unanswered after this delay, first response wins (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseURL == "" {
		return fmt.Errorf("loadgen: -url is required")
	}
	base := strings.TrimRight(*baseURL, "/")
	client := &http.Client{Timeout: time.Duration(*timeoutMS)*time.Millisecond + 10*time.Second}
	// Registration builds the graph and warms a session pool server-side
	// before responding — minutes of work for big graphs on a loaded
	// host, so it gets its own generous budget.
	regClient := &http.Client{Timeout: 5 * time.Minute}

	if *register != "" {
		if err := registerGraph(regClient, base, *graphName, *register); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "registered %s (%s)\n", *graphName, *register)
	}
	rq := &requester{
		client: client, base: base, graph: *graphName,
		timeoutMS: *timeoutMS, retries: *retries, hedge: *hedge,
	}
	for i := 0; i < *warmup; i++ {
		if _, _, err := rq.do(*seed + uint64(i)); err != nil {
			return fmt.Errorf("loadgen: warmup request %d: %w", i, err)
		}
	}

	art := &stats.ServingArtifact{Meta: map[string]string{
		"url":        base,
		"graph":      *graphName,
		"timeout_ms": strconv.Itoa(*timeoutMS),
	}}
	switch *mode {
	case "closed":
		for _, cs := range strings.Split(*concStr, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(cs))
			if err != nil || c < 1 {
				return fmt.Errorf("loadgen: bad concurrency %q", cs)
			}
			sc, err := closedLoop(rq, c, *requests, *seed)
			if err != nil {
				return err
			}
			reportScenario(stdout, sc)
			if *strict && sc.OK != sc.Requests {
				return fmt.Errorf("loadgen: strict mode: %s had %d/%d non-200 responses (rejected=%d deadlines=%d errors=%d)",
					sc.Name, sc.Requests-sc.OK, sc.Requests, sc.Rejected, sc.Deadlines, sc.Errors)
			}
			art.Scenarios = append(art.Scenarios, sc)
		}
	case "open":
		sc, err := openLoop(rq, *rate, *duration, *seed)
		if err != nil {
			return err
		}
		reportScenario(stdout, sc)
		if *strict && sc.OK != sc.Requests {
			return fmt.Errorf("loadgen: strict mode: %s had %d/%d non-200 responses",
				sc.Name, sc.Requests-sc.OK, sc.Requests)
		}
		art.Scenarios = append(art.Scenarios, sc)
	default:
		return fmt.Errorf("loadgen: unknown -mode %q (want closed or open)", *mode)
	}
	stampServerState(client, base, art)

	if *probes {
		if err := runProbes(client, regClient, base, *slowN, *overN, stdout); err != nil {
			return err
		}
	}
	if *outPath != "" {
		if err := art.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d scenarios)\n", *outPath, len(art.Scenarios))
	}
	return nil
}

// registerGraph posts the graph spec, treating "already registered" as
// success so reruns against a long-lived server work.
func registerGraph(client *http.Client, base, name, spec string) error {
	full, parsed, err := parseGraphSpec(name + "=" + spec)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(serve.RegisterRequest{
		Name: full, Kind: parsed.Kind, N: parsed.N, M: parsed.M, K: parsed.K, Seed: parsed.Seed,
	})
	resp, err := client.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: registering %s: %w", name, err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
		return nil
	}
	return fmt.Errorf("loadgen: registering %s: status %d", name, resp.StatusCode)
}

// issueSpanTree sends one run request and classifies the outcome by
// status code. The error return is transport-level only.
func issueSpanTree(client *http.Client, base, graph string, seed uint64, timeoutMS int) (status int, elapsed time.Duration, err error) {
	body, _ := json.Marshal(serve.SpanTreeRequest{Graph: graph, Seed: seed, TimeoutMS: timeoutMS})
	start := time.Now()
	resp, err := client.Post(base+"/v1/spantree", "application/json", bytes.NewReader(body))
	elapsed = time.Since(start)
	if err != nil {
		return 0, elapsed, err
	}
	drain(resp)
	return resp.StatusCode, elapsed, nil
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// requester issues span-tree requests with optional client-side
// resilience: bounded retries with jittered exponential backoff on
// overload answers (429/503) and transport failures, and optional
// hedging of slow requests. It is safe for concurrent use.
type requester struct {
	client    *http.Client
	base      string
	graph     string
	timeoutMS int
	retries   int           // extra attempts per request (0 = none)
	hedge     time.Duration // hedged-duplicate delay (0 = off)
	retried   atomic.Int64  // retries + hedges issued
}

// backoff bounds: full jitter in [0, cur), doubling 5ms → 250ms. The
// cap keeps a retried request inside a human-scale deadline; the jitter
// decorrelates clients that were rejected by the same overload spike.
const (
	retryBackoffBase = 5 * time.Millisecond
	retryBackoffCap  = 250 * time.Millisecond
)

// do issues one logical request, retrying per the requester's policy.
// The returned latency spans all attempts and backoff sleeps — the
// client-observed time-to-answer, which is what the percentiles should
// price when retries are on.
func (rq *requester) do(seed uint64) (status int, elapsed time.Duration, err error) {
	start := time.Now()
	var rng *xrand.Rand // lazily seeded: the no-retry path never draws
	backoff := retryBackoffBase
	for attempt := 0; ; attempt++ {
		status, _, err = rq.attempt(seed)
		retryable := err != nil ||
			status == http.StatusTooManyRequests ||
			status == http.StatusServiceUnavailable
		if !retryable || attempt >= rq.retries {
			return status, time.Since(start), err
		}
		rq.retried.Add(1)
		if rng == nil {
			rng = xrand.New(seed).Split(0xb0ff0e11)
		}
		time.Sleep(time.Duration(rng.Float64() * float64(backoff)))
		if backoff < retryBackoffCap {
			backoff *= 2
		}
	}
}

// attempt is one wire attempt, hedged when configured: if the first
// copy has not answered within the hedge delay, a duplicate is sent and
// the first response to land wins. Runs are idempotent (same graph,
// same seed), so the losing copy is harmless; its response is drained
// by issueSpanTree as usual.
func (rq *requester) attempt(seed uint64) (int, time.Duration, error) {
	if rq.hedge <= 0 {
		return issueSpanTree(rq.client, rq.base, rq.graph, seed, rq.timeoutMS)
	}
	type result struct {
		status  int
		elapsed time.Duration
		err     error
	}
	ch := make(chan result, 2)
	issue := func() {
		s, e, err := issueSpanTree(rq.client, rq.base, rq.graph, seed, rq.timeoutMS)
		ch <- result{s, e, err}
	}
	go issue()
	timer := time.NewTimer(rq.hedge)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.status, r.elapsed, r.err
	case <-timer.C:
		rq.retried.Add(1)
		go issue()
		r := <-ch
		return r.status, r.elapsed, r.err
	}
}

// takeRetries returns the retry/hedge count issued since the last call.
func (rq *requester) takeRetries() int {
	return int(rq.retried.Swap(0))
}

// scenarioRecorder accumulates classified outcomes from concurrent
// request goroutines.
type scenarioRecorder struct {
	mu        sync.Mutex
	latencies []int64
	sc        stats.ServingScenario
}

func (r *scenarioRecorder) record(status int, elapsed time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sc.Requests++
	switch {
	case err != nil:
		r.sc.Errors++
	case status == http.StatusOK:
		r.sc.OK++
		r.latencies = append(r.latencies, elapsed.Nanoseconds())
	case status == http.StatusTooManyRequests:
		r.sc.Rejected++
	case status == http.StatusServiceUnavailable:
		// The watchdog's typed stall answer (and its drain/degrade
		// cousins): the server shed the run, the client's retries (if
		// any) did not recover it.
		r.sc.Stalled++
	case status == http.StatusGatewayTimeout:
		r.sc.Deadlines++
	default:
		r.sc.Errors++
	}
}

func (r *scenarioRecorder) finish(total time.Duration) stats.ServingScenario {
	r.sc.DurationNS = total.Nanoseconds()
	if total > 0 {
		r.sc.ThroughputRPS = float64(r.sc.OK) / total.Seconds()
	}
	r.sc.LatencySummary(r.latencies)
	return r.sc
}

// closedLoop runs total requests at a fixed concurrency: each of c
// workers issues the next request as soon as its previous one finishes.
func closedLoop(rq *requester, c, total int, seed uint64) (stats.ServingScenario, error) {
	rec := &scenarioRecorder{sc: stats.ServingScenario{
		Name: fmt.Sprintf("closed-c%d", c), Mode: "closed", Concurrency: c, Graph: rq.graph,
	}}
	rq.takeRetries() // scenario-scoped count
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				rec.record(rq.do(seed + uint64(i)*2654435761))
			}
		}()
	}
	wg.Wait()
	rec.sc.Retries = rq.takeRetries()
	return rec.finish(time.Since(start)), nil
}

// openLoop fires requests on a fixed arrival schedule for the given
// duration, regardless of completions (the latency-under-load shape).
func openLoop(rq *requester, rate float64, d time.Duration, seed uint64) (stats.ServingScenario, error) {
	if rate <= 0 {
		return stats.ServingScenario{}, fmt.Errorf("loadgen: -rate must be positive")
	}
	rec := &scenarioRecorder{sc: stats.ServingScenario{
		Name: fmt.Sprintf("open-r%g", rate), Mode: "open", RateRPS: rate, Graph: rq.graph,
	}}
	rq.takeRetries() // scenario-scoped count
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	start := time.Now()
	for i := uint64(0); time.Since(start) < d; i++ {
		<-ticker.C
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			rec.record(rq.do(seed + i*2654435761))
		}(i)
	}
	wg.Wait()
	rec.sc.Retries = rq.takeRetries()
	return rec.finish(time.Since(start)), nil
}

func reportScenario(w io.Writer, sc stats.ServingScenario) {
	fmt.Fprintf(w, "%s: %d requests, %d ok, %d rejected, %d deadline, %d error  %.1f req/s  p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms",
		sc.Name, sc.Requests, sc.OK, sc.Rejected, sc.Deadlines, sc.Errors, sc.ThroughputRPS,
		float64(sc.P50NS)/1e6, float64(sc.P99NS)/1e6, float64(sc.P999NS)/1e6, float64(sc.MaxNS)/1e6)
	if sc.Stalled > 0 {
		fmt.Fprintf(w, "  stalled=%d", sc.Stalled)
	}
	if sc.Retries > 0 {
		fmt.Fprintf(w, "  retries=%d", sc.Retries)
	}
	fmt.Fprintln(w)
}

// stampServerState records the server's post-run degradation state into
// the artifact meta, so benchcmp can warn when a baseline taken at full
// configuration is compared against a run the server finished degraded.
// Best-effort: a server that vanished mid-teardown just leaves the meta
// unstamped.
func stampServerState(client *http.Client, base string, art *stats.ServingArtifact) {
	resp, err := client.Get(base + "/v1/graphs")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var list serve.GraphListResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&list) != nil {
		return
	}
	rung := 0
	for _, g := range list.Graphs {
		if g.Rung > rung {
			rung = g.Rung
		}
	}
	art.Meta["degrade_rung"] = strconv.Itoa(rung)
}

// runProbes exercises the typed rejection paths end to end.
func runProbes(client, regClient *http.Client, base string, slowN, overN int, stdout io.Writer) error {
	// Oversized registration: the server must turn it away with the
	// typed 413 before committing any memory.
	body, _ := json.Marshal(serve.RegisterRequest{Name: "probe-oversize", Kind: "chain", N: overN})
	resp, err := client.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: oversize probe: %w", err)
	}
	code, err := decodeErrorCode(resp)
	if err != nil {
		return fmt.Errorf("loadgen: oversize probe: %w", err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge || code != serve.CodeGraphTooLarge {
		return fmt.Errorf("loadgen: oversize probe: status %d code %q, want 413 %q",
			resp.StatusCode, code, serve.CodeGraphTooLarge)
	}
	fmt.Fprintf(stdout, "probe oversize: 413 %s (n=%d rejected)\n", code, overN)

	// Cancellation: a run on a long chain with a 1ms deadline cannot
	// finish — the fault plumbing must cancel it mid-traversal and the
	// server must answer with the typed 504.
	if err := registerGraph(regClient, base, "probe-slow", fmt.Sprintf("chain:%d", slowN)); err != nil {
		return err
	}
	st, _, err := issueSpanTree(client, base, "probe-slow", 1, 1)
	if err != nil {
		return fmt.Errorf("loadgen: cancellation probe: %w", err)
	}
	if st != http.StatusGatewayTimeout {
		return fmt.Errorf("loadgen: cancellation probe: status %d, want 504", st)
	}
	fmt.Fprintf(stdout, "probe cancellation: 504 deadline (chain n=%d, 1ms budget)\n", slowN)

	// Leave the server as found.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/graphs/probe-slow", nil)
	if resp, err := client.Do(req); err == nil {
		drain(resp)
	}

	// Readiness: a healthy, undegraded server must answer ready.
	if err := expectReady(client, base, true, ""); err != nil {
		return fmt.Errorf("loadgen: readiness probe: %w", err)
	}
	fmt.Fprintln(stdout, "probe readiness: 200 ready")

	// Drain cycle: POST /v1/drain must flip readiness to the typed 503
	// (liveness stays 200 — the process is healthy, just not taking new
	// work), and DELETE must restore it. This is the preStop contract a
	// load balancer relies on.
	if err := drainCycle(client, base); err != nil {
		return fmt.Errorf("loadgen: drain probe: %w", err)
	}
	fmt.Fprintf(stdout, "probe drain: 503 %s then restored\n", serve.CodeDraining)
	return nil
}

// expectReady asserts the state of GET /v1/readyz: ready (200) or not
// ready with the given typed code (503).
func expectReady(client *http.Client, base string, ready bool, code string) error {
	resp, err := client.Get(base + "/v1/readyz")
	if err != nil {
		return err
	}
	if ready {
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("readyz status %d, want 200", resp.StatusCode)
		}
		return nil
	}
	got, err := decodeErrorCode(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusServiceUnavailable || got != code {
		return fmt.Errorf("readyz status %d code %q, want 503 %q", resp.StatusCode, got, code)
	}
	return nil
}

// drainCycle drains the server, verifies readiness flips, and restores
// it, re-checking readiness so the probe leaves the server routable.
func drainCycle(client *http.Client, base string) error {
	resp, err := client.Post(base+"/v1/drain", "application/json", nil)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/drain status %d, want 200", resp.StatusCode)
	}
	// Liveness must be unaffected: a draining instance is healthy.
	hz, err := client.Get(base + "/v1/healthz")
	if err != nil {
		return err
	}
	drain(hz)
	if hz.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d while draining, want 200", hz.StatusCode)
	}
	if err := expectReady(client, base, false, serve.CodeDraining); err != nil {
		return err
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/drain", nil)
	resp, err = client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE /v1/drain status %d, want 200", resp.StatusCode)
	}
	return expectReady(client, base, true, "")
}

func decodeErrorCode(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var e serve.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		return "", err
	}
	return e.Error, nil
}
