package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spantree"
	"spantree/internal/gen"
	"spantree/internal/graph"
)

// RunGraphGen is the entry point of cmd/graphgen: generate a workload
// graph, optionally print statistics, and write it to disk.
func RunGraphGen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind      = fs.String("kind", "random", "generator kind (-list to enumerate)")
		list      = fs.Bool("list", false, "list generator kinds and exit")
		n         = fs.Int("n", 1<<16, "vertex budget")
		m         = fs.Int("m", 0, "edge count (random graphs; 0 = 1.5n)")
		k         = fs.Int("k", 0, "neighbor count (geometric graphs; 0 = 3)")
		seed      = fs.Uint64("seed", 1, "random seed")
		randlabel = fs.Bool("randlabel", false, "randomly relabel after generation")
		format    = fs.String("format", "binary", "output format: binary or text")
		out       = fs.String("out", "", "output path (required unless -stats only)")
		showStats = fs.Bool("stats", false, "print graph statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, kd := range gen.Kinds() {
			fmt.Fprintln(stdout, kd)
		}
		return nil
	}

	g, err := gen.Generate(gen.Spec{Kind: *kind, N: *n, M: *m, K: *k, Seed: *seed, RandomLabel: *randlabel})
	if err != nil {
		return err
	}
	if *showStats {
		printStats(stdout, g)
	}
	if *out == "" {
		if !*showStats {
			return fmt.Errorf("graphgen: -out is required (or pass -stats to only inspect)")
		}
		return nil
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	switch *format {
	case "binary":
		err = spantree.WriteGraph(f, g)
	case "text":
		err = spantree.WriteGraphText(f, g)
	default:
		f.Close()
		return fmt.Errorf("graphgen: unknown -format %q (want binary or text)", *format)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %v to %s (%s)\n", g, *out, *format)
	return nil
}

func printStats(w io.Writer, g *spantree.Graph) {
	fmt.Fprintf(w, "name: %s\n", g.Name)
	fmt.Fprintf(w, "vertices: %d\n", g.NumVertices())
	fmt.Fprintf(w, "edges: %d\n", g.NumEdges())
	fmt.Fprintf(w, "avg degree: %.3f\n", g.AvgDegree())
	fmt.Fprintf(w, "max degree: %d\n", g.MaxDegree())
	_, ncomp := graph.Components(g)
	fmt.Fprintf(w, "components: %d\n", ncomp)
	if g.NumVertices() > 0 {
		fmt.Fprintf(w, "pseudo-diameter (from 0): %d\n", graph.PseudoDiameter(g, 0))
	}
	hist := g.DegreeHistogram()
	for d, c := range hist {
		if c > 0 && d <= 10 {
			fmt.Fprintf(w, "  degree %2d: %d vertices\n", d, c)
		}
	}
}
