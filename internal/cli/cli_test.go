package cli

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spantree"
)

// run executes one of the tools and returns stdout, for the common case
// where the invocation must succeed.
func run(t *testing.T, fn func([]string, *bytes.Buffer) error, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := fn(args, &out); err != nil {
		t.Fatalf("%v: %v\noutput:\n%s", args, err, out.String())
	}
	return out.String()
}

func spanTree(args []string, out *bytes.Buffer) error {
	return RunSpanTree(args, out, out)
}
func graphGen(args []string, out *bytes.Buffer) error {
	return RunGraphGen(args, out, out)
}
func benchFig(args []string, out *bytes.Buffer) error {
	return RunBenchFig(args, out, out)
}

func TestSpanTreeBasicRun(t *testing.T) {
	out := run(t, spanTree, "-gen", "torus2d", "-n", "1024", "-algo", "workstealing", "-p", "4", "-model")
	for _, want := range []string{"graph:", "tree: 1023 edges, 1 roots", "verified", "workstealing:", "modeled"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestSpanTreeEveryAlgorithm(t *testing.T) {
	for _, algo := range []string{"workstealing", "seqbfs", "seqdfs", "sequf", "sv", "svlocks", "hcs", "as", "levelbfs"} {
		out := run(t, spanTree, "-gen", "random", "-n", "500", "-algo", algo, "-p", "3")
		if !strings.Contains(out, "verified") {
			t.Fatalf("%s: output lacks verification:\n%s", algo, out)
		}
	}
}

func TestSpanTreeGenList(t *testing.T) {
	out := run(t, spanTree, "-genlist")
	for _, want := range []string{"torus2d", "chain", "geohier", "ad3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("genlist lacks %q:\n%s", want, out)
		}
	}
}

func TestSpanTreeRoundTripThroughFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	out := run(t, spanTree, "-gen", "ad3", "-n", "800", "-out", path)
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("write not reported:\n%s", out)
	}
	out = run(t, spanTree, "-in", path, "-algo", "seqbfs")
	if !strings.Contains(out, "verified") {
		t.Fatalf("round trip failed:\n%s", out)
	}
}

func TestSpanTreeFallbackFlag(t *testing.T) {
	out := run(t, spanTree, "-gen", "chain", "-n", "20000", "-algo", "workstealing", "-p", "6", "-fallback", "3", "-seed", "3")
	if !strings.Contains(out, "fallback: SV completion ran") {
		t.Fatalf("fallback not reported:\n%s", out)
	}
}

func TestSpanTreeErrors(t *testing.T) {
	cases := [][]string{
		{"-algo", "nope"},
		{"-in", "/nonexistent/file.bin"},
		{"-gen", "unknowngen"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := RunSpanTree(args, &out, &out); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

func TestGraphGenStatsAndFormats(t *testing.T) {
	out := run(t, graphGen, "-kind", "geohier", "-n", "600", "-stats")
	for _, want := range []string{"vertices: 600", "components: 1", "pseudo-diameter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats lack %q:\n%s", want, out)
		}
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	txt := filepath.Join(dir, "g.txt")
	run(t, graphGen, "-kind", "torus2d", "-n", "100", "-out", bin)
	run(t, graphGen, "-kind", "torus2d", "-n", "100", "-format", "text", "-out", txt)
	data, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# 100 ") {
		t.Fatalf("text output header wrong: %q", string(data[:20]))
	}
	if fi, err := os.Stat(bin); err != nil || fi.Size() == 0 {
		t.Fatalf("binary output missing: %v", err)
	}
}

func TestGraphGenList(t *testing.T) {
	out := run(t, graphGen, "-list")
	if !strings.Contains(out, "mesh2d60") || !strings.Contains(out, "caterpillar") {
		t.Fatalf("list incomplete:\n%s", out)
	}
}

func TestGraphGenErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope", "-out", "x.bin"},
		{"-kind", "random"}, // no -out, no -stats
		{"-kind", "random", "-format", "xml", "-out", "x.bin"},
		{"-kind", "random", "-out", "/nonexistent/dir/x.bin"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := RunGraphGen(args, &out, &out); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

func TestBenchFigList(t *testing.T) {
	out := run(t, benchFig, "-list")
	for _, want := range []string{"fig3", "fig4-torus-random", "abl-fallback", "abl-barriers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list lacks %q:\n%s", want, out)
		}
	}
}

func TestBenchFigSingleExperiment(t *testing.T) {
	out := run(t, benchFig, "-fig", "fig3", "-scale", "2048", "-procs", "1,2,4")
	if !strings.Contains(out, "== fig3") || !strings.Contains(out, "speedup") {
		t.Fatalf("fig3 output wrong:\n%s", out)
	}
	if !strings.Contains(out, "check [") {
		t.Fatalf("no checks emitted:\n%s", out)
	}
}

func TestBenchFigCSV(t *testing.T) {
	out := run(t, benchFig, "-fig", "abl-deg2", "-scale", "2048", "-csv")
	if !strings.Contains(out, "# abl-deg2") || !strings.Contains(out, "graph,variant,time") {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestBenchFigWallClockMode(t *testing.T) {
	out := run(t, benchFig, "-fig", "fig3", "-scale", "2048", "-mode", "wallclock", "-repeats", "1")
	if !strings.Contains(out, "== fig3") {
		t.Fatalf("wallclock run wrong:\n%s", out)
	}
	if strings.Contains(out, "check [") {
		t.Fatalf("wallclock mode must not emit modeled checks:\n%s", out)
	}
}

func TestBenchFigErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "nope"},
		{"-mode", "psychic"},
		{"-machine", "pdp11"},
		{"-procs", "0"},
		{"-procs", "a,b"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := RunBenchFig(args, &out, &out); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

func TestBenchFigStrict(t *testing.T) {
	// All checks pass at this scale, so -strict must succeed.
	run(t, benchFig, "-fig", "abl-deg2", "-scale", "4096", "-strict")
}

func TestSpanTreeTimeoutFlag(t *testing.T) {
	// A generous deadline must not disturb a normal run.
	out := run(t, spanTree, "-gen", "torus2d", "-n", "1024", "-p", "2", "-timeout", "5m")
	if !strings.Contains(out, "verified") {
		t.Fatalf("timed run did not verify:\n%s", out)
	}
	// A microscopic deadline must surface the typed deadline error.
	var buf bytes.Buffer
	err := RunSpanTree([]string{"-gen", "random", "-n", "500000", "-p", "4", "-timeout", "1ns"}, &buf, &buf)
	if err == nil {
		t.Fatal("1ns deadline did not abort the run")
	}
	if !errors.Is(err, spantree.ErrDeadline) && !errors.Is(err, spantree.ErrCanceled) {
		t.Fatalf("err = %v, want the typed deadline error", err)
	}
}

func TestSpanTreeValidateFlag(t *testing.T) {
	out := run(t, spanTree, "-gen", "random", "-n", "512", "-validate")
	if !strings.Contains(out, "verified") {
		t.Fatalf("validated run did not verify:\n%s", out)
	}
}

func TestSpanTreeChaosSeedFlag(t *testing.T) {
	var buf bytes.Buffer
	err := RunSpanTree([]string{"-gen", "torus2d", "-n", "256", "-chaos-seed", "7"}, &buf, &buf)
	if spantree.ChaosEnabled {
		if err != nil {
			t.Fatalf("chaos build rejected -chaos-seed: %v", err)
		}
		return
	}
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("err = %v, want the -tags chaos guidance", err)
	}
}
