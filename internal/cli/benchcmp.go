package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"spantree/internal/obs"
	"spantree/internal/stats"
)

// RunBenchCmp is the entry point of cmd/benchcmp: gate a freshly
// measured artifact against a checked-in baseline, failing on
// regressions beyond the tolerances. Two artifact families are
// supported, dispatched on the current file's schema: obs metrics
// artifacts (wall-clock + steal-hit-rate gates) and serving benchmarks
// (p99 latency gate). When both files carry a host shape and the
// shapes differ, a warning is printed — timings across host shapes are
// not comparable, but that is not a code regression, so the gate does
// not fail on it.
func RunBenchCmp(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "", "baseline JSON: an obs metrics artifact, results/BENCH_hotpath.json, or a serving artifact")
		current   = fs.String("current", "", "current JSON: obs metrics (spantree/obs/v1) or serving benchmark (spantree/serving/v1)")
		wallTol   = fs.Float64("wall-tol", 0.15, "allowed relative slowdown of the wall metric (wall-clock, or p99 for serving; 0.15 = +15%)")
		stealTol  = fs.Float64("steal-tol", 0.15, "allowed relative steal-hit-rate drop (obs artifacts only)")
		minWallNS = fs.Int64("min-wall-ns", 1_000_000, "skip the wall gate for baseline timings under this (noise floor)")
		wallNoise = fs.Int("wall-noise", 0, "tolerate this many entries over -wall-tol (scheduler-noise allowance; steal-rate breaches are never excused)")
		wallHard  = fs.Float64("wall-hard", 0, "per-entry wall bound the noise budget never excuses (0 disables)")
		minSteal  = fs.Int64("min-steal-attempts", 0, "skip the steal-rate gate for baseline entries with fewer pooled attempts (small-sample noise floor)")
		require   = fs.String("require", "", "comma-separated substrings that must each match a compared entry (guards against comparing nothing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("benchcmp: -baseline and -current are both required")
	}
	opt := stats.BenchCompareOptions{
		WallTol:          *wallTol,
		StealTol:         *stealTol,
		MinWallNS:        *minWallNS,
		WallNoiseBudget:  *wallNoise,
		WallHardTol:      *wallHard,
		MinStealAttempts: *minSteal,
	}

	curSchema, err := probeSchema(*current)
	if err != nil {
		return err
	}
	var res *stats.BenchCompareResult
	var hostWarn, variantWarn string
	if curSchema == stats.ServingSchema {
		base, err := stats.ReadServingArtifact(*baseline)
		if err != nil {
			return err
		}
		cur, err := stats.ReadServingArtifact(*current)
		if err != nil {
			return err
		}
		res = stats.CompareServing(base, cur, opt)
		hostWarn = stats.HostShapeWarning(base.Host, cur.Host)
		variantWarn = stats.DegradeRungWarning(base.Meta, cur.Meta)
	} else {
		compare, baseHost, baseVariants, err := stats.LoadBenchBaseline(*baseline)
		if err != nil {
			return err
		}
		cur, err := obs.ReadArtifact(*current)
		if err != nil {
			return err
		}
		res, err = compare(cur, opt)
		if err != nil {
			return err
		}
		hostWarn = stats.HostShapeWarning(baseHost, cur.Host)
		variantWarn = stats.VariantWarning(baseVariants, stats.Variants(cur))
	}

	fmt.Fprint(stdout, res.String())
	if hostWarn != "" {
		fmt.Fprintln(stdout, hostWarn)
	}
	if variantWarn != "" {
		fmt.Fprintln(stdout, variantWarn)
	}
	if len(res.Comparisons) == 0 {
		return fmt.Errorf("benchcmp: no baseline entry matched the current metrics — wrong files?")
	}
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, c := range res.Comparisons {
			if strings.Contains(c.Name, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("benchcmp: required entry %q was not compared", want)
		}
	}
	if res.Failed() {
		return fmt.Errorf("benchcmp: regression gate failed (wall tolerance %.0f%%, steal tolerance %.0f%%)",
			100**wallTol, 100**stealTol)
	}
	fmt.Fprintf(stdout, "benchcmp: %d entries within tolerance\n", len(res.Comparisons))
	return nil
}

// probeSchema reads just the schema field of an artifact file.
func probeSchema(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("benchcmp: decoding %s: %w", path, err)
	}
	return probe.Schema, nil
}
