package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"spantree/internal/obs"
	"spantree/internal/stats"
)

// RunBenchCmp is the entry point of cmd/benchcmp: gate a freshly
// measured metrics artifact against a checked-in baseline, failing on
// wall-clock or steal-hit-rate regressions beyond the tolerances.
func RunBenchCmp(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "", "baseline JSON: an obs metrics artifact or results/BENCH_hotpath.json")
		current   = fs.String("current", "", "current metrics JSON (spantree/obs/v1, from benchfig -metrics)")
		wallTol   = fs.Float64("wall-tol", 0.15, "allowed relative wall-clock slowdown (0.15 = +15%)")
		stealTol  = fs.Float64("steal-tol", 0.15, "allowed relative steal-hit-rate drop")
		minWallNS = fs.Int64("min-wall-ns", 1_000_000, "skip the wall gate for baseline timings under this (noise floor)")
		wallNoise = fs.Int("wall-noise", 0, "tolerate this many entries over -wall-tol (scheduler-noise allowance; steal-rate breaches are never excused)")
		wallHard  = fs.Float64("wall-hard", 0, "per-entry wall-clock bound the noise budget never excuses (0 disables)")
		minSteal  = fs.Int64("min-steal-attempts", 0, "skip the steal-rate gate for baseline entries with fewer pooled attempts (small-sample noise floor)")
		require   = fs.String("require", "", "comma-separated substrings that must each match a compared entry (guards against comparing nothing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("benchcmp: -baseline and -current are both required")
	}

	compare, err := stats.LoadBenchBaseline(*baseline)
	if err != nil {
		return err
	}
	cur, err := obs.ReadArtifact(*current)
	if err != nil {
		return err
	}
	res, err := compare(cur, stats.BenchCompareOptions{
		WallTol:          *wallTol,
		StealTol:         *stealTol,
		MinWallNS:        *minWallNS,
		WallNoiseBudget:  *wallNoise,
		WallHardTol:      *wallHard,
		MinStealAttempts: *minSteal,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.String())
	if len(res.Comparisons) == 0 {
		return fmt.Errorf("benchcmp: no baseline entry matched the current metrics — wrong files?")
	}
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, c := range res.Comparisons {
			if strings.Contains(c.Name, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("benchcmp: required entry %q was not compared", want)
		}
	}
	if res.Failed() {
		return fmt.Errorf("benchcmp: regression gate failed (wall tolerance %.0f%%, steal tolerance %.0f%%)",
			100**wallTol, 100**stealTol)
	}
	fmt.Fprintf(stdout, "benchcmp: %d entries within tolerance\n", len(res.Comparisons))
	return nil
}
