package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"spantree/internal/serve"
)

// bootDaemon starts runSpanTreeD on an ephemeral port and returns its
// base URL plus the exit channel.
func bootDaemon(t *testing.T, ctx context.Context, args []string, out *syncBuffer) (string, chan error) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		done <- runSpanTreeD(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "spantreed listening on "); ok {
				return strings.TrimSpace(rest), done
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpanTreeDShutdownUnderLoadGoroutineFlat: SIGTERM (context cancel)
// while concurrent clients are mid-request must drain cleanly — the
// daemon exits nil within its shutdown budget and the process comes
// back goroutine-flat, with no worker team, watchdog, or handler
// goroutine left behind.
func TestSpanTreeDShutdownUnderLoadGoroutineFlat(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var daemonOut syncBuffer
	url, done := bootDaemon(t, ctx,
		[]string{"-p", "2", "-pool", "2", "-stall-budget", "1s", "-graph", "g=chain:4096"},
		&daemonOut)

	client := &http.Client{Timeout: 5 * time.Second}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(serve.SpanTreeRequest{Graph: "g", Seed: uint64(w*1000 + i)})
				resp, err := client.Post(url+"/v1/spantree", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server is gone; that's the point
				}
				resp.Body.Close()
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond) // let load reach steady state
	cancel()                           // the SIGTERM path: BeginDrain, then Shutdown
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit under load: %v\noutput:\n%s", err, daemonOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop under load")
	}
	close(stop)
	wg.Wait()
	client.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > base+2 {
		t.Fatalf("goroutines leaked across shutdown under load: %d -> %d", base, after)
	}
}

// TestSpanTreeDJournalRestart: a daemon booted with -journal restores
// its registry on restart — the preloads come back from the file (the
// conflict is tolerated and reported), graphs registered over HTTP
// survive, and GET /v1/graphs serves byte-for-byte the same list.
func TestSpanTreeDJournalRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "registry.journal")
	args := []string{"-p", "1", "-pool", "1", "-journal", journal, "-graph", "pre=chain:64"}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var out1 syncBuffer
	url1, done1 := bootDaemon(t, ctx1, args, &out1)
	body, _ := json.Marshal(serve.RegisterRequest{Name: "extra", Kind: "torus2d", N: 256, Seed: 5})
	resp, err := http.Post(url1+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("register extra: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	want := getBody(t, url1+"/v1/graphs")
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("first daemon exit: %v", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var out2 syncBuffer
	url2, done2 := bootDaemon(t, ctx2, args, &out2)
	got := getBody(t, url2+"/v1/graphs")
	if string(got) != string(want) {
		t.Fatalf("graph list after restart:\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(out2.String(), "preload pre restored from journal") {
		t.Errorf("restart did not report the journal-restored preload:\n%s", out2.String())
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second daemon exit: %v", err)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
