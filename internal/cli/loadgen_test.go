package cli

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spantree/internal/stats"
)

// TestRunLoadGen drives a real daemon end to end: boot spantreed on an
// ephemeral port, register a graph through loadgen, run two closed-loop
// scenarios plus both typed-rejection probes, and check the written
// serving artifact.
func TestRunLoadGen(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var daemonOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runSpanTreeD(ctx, []string{"-addr", "127.0.0.1:0", "-p", "1", "-pool", "2"},
			&daemonOut, &daemonOut)
	}()
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", daemonOut.String())
		}
		for _, line := range strings.Split(daemonOut.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "spantreed listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	out := filepath.Join(t.TempDir(), "BENCH_serving.json")
	var stdout strings.Builder
	err := RunLoadGen([]string{
		"-url", base,
		"-graph", "bench", "-register", "torus2d:256",
		"-mode", "closed", "-c", "1,2", "-n", "24", "-warmup", "4",
		"-retry", "2", "-hedge", "250ms",
		"-strict", "-probes", "-probe-slow-n", "1048576",
		"-out", out,
	}, &stdout, &stdout)
	if err != nil {
		t.Fatalf("loadgen: %v\noutput:\n%s", err, stdout.String())
	}
	for _, want := range []string{"closed-c1", "closed-c2",
		"probe oversize: 413", "probe cancellation: 504",
		"probe readiness: 200 ready", "probe drain: 503 draining then restored"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}

	art, err := stats.ReadServingArtifact(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Scenarios) != 2 || art.Host.NumCPU < 1 {
		t.Fatalf("artifact: %+v", art)
	}
	// A healthy run against an undegraded server stamps rung 0.
	if art.Meta["degrade_rung"] != "0" {
		t.Errorf("meta degrade_rung = %q, want \"0\"", art.Meta["degrade_rung"])
	}
	for _, sc := range art.Scenarios {
		if sc.OK != 24 || sc.P99NS < sc.P50NS || sc.P50NS <= 0 || sc.MaxNS < sc.P999NS {
			t.Fatalf("scenario %s: %+v", sc.Name, sc)
		}
	}

	// The artifact gates cleanly against itself, and a doctored slower
	// baseline trips the p99 gate through the benchcmp CLI.
	var cmpOut strings.Builder
	if err := RunBenchCmp([]string{"-baseline", out, "-current", out,
		"-require", "closed-c1,closed-c2"}, &cmpOut, &cmpOut); err != nil {
		t.Fatalf("self-compare: %v\n%s", err, cmpOut.String())
	}
	fast := *art
	fast.Scenarios = append([]stats.ServingScenario(nil), art.Scenarios...)
	for i := range fast.Scenarios {
		fast.Scenarios[i].P99NS /= 10
	}
	fastPath := filepath.Join(t.TempDir(), "fast.json")
	if err := fast.WriteFile(fastPath); err != nil {
		t.Fatal(err)
	}
	cmpOut.Reset()
	if err := RunBenchCmp([]string{"-baseline", fastPath, "-current", out, "-min-wall-ns", "1"},
		&cmpOut, &cmpOut); err == nil {
		t.Fatalf("10x p99 regression passed the gate:\n%s", cmpOut.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop")
	}
}
