package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"spantree/internal/core"
	"spantree/internal/harness"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// RunBenchFig is the entry point of cmd/benchfig: regenerate the
// paper's figures and ablations.
func RunBenchFig(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "experiments to run: all, 3, 4, ablations, an exact id, or a comma-separated list of those")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		scale    = fs.Int("scale", 1<<16, "vertex budget per input graph (paper: 1048576)")
		procs    = fs.String("procs", "1,2,4,8", "comma-separated processor counts for the Fig. 4 sweeps")
		seed     = fs.Uint64("seed", 20040426, "random seed")
		mode     = fs.String("mode", "modeled", "measurement mode: modeled or wallclock")
		machine  = fs.String("machine", "e4500", "cost-model machine profile: e4500 or modern")
		repeats  = fs.Int("repeats", 3, "wall-clock repetitions (min reported)")
		csv      = fs.Bool("csv", false, "emit tables as CSV")
		strict   = fs.Bool("strict", false, "return an error if any shape check fails")
		chunk    = fs.Int("chunk", 0, "drain chunk size for every parallel algorithm: > 0 forces a fixed chunk; 0 keeps the adaptive controller")
		chunkPol = fs.String("chunkpolicy", "", "drain chunk policy for every parallel algorithm: adaptive or fixed (default adaptive, or fixed when -chunk > 0)")
		algName  = fs.String("alg", "workstealing", "parallel algorithm for the Fig. 3/4 experiments: workstealing or spanuf (spanuf substitutes the CAS-hook sweep and skips the traversal's shape checks — used to pin the spanuf wall-clock baseline)")
		dirName  = fs.String("direction", "auto", "traversal direction policy for the work-stealing runs: auto or topdown (the direction/layout ablation pins its own)")
		layName  = fs.String("layout", "wide", "CSR layout for the work-stealing runs: wide or compact (the direction/layout ablation pins its own)")
		shards   = fs.Int("shards", 0, "shard count for the work-stealing runs: 0 or 1 = single team (the shard ablation pins its own)")
		metrics  = fs.String("metrics", "", "write per-worker metrics JSON (one report per instrumented measurement and repetition) to this path")
		trace    = fs.String("trace", "", "write event-trace JSON for the instrumented measurements to this path")
		traceCap = fs.Int("tracecap", 1<<14, "per-run event ring-buffer capacity for -trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range harness.IDs() {
			e, _ := harness.ByID(id)
			fmt.Fprintf(stdout, "%-22s %s\n", id, e.Title)
		}
		return nil
	}

	policy, err := resolveChunkPolicy(*chunkPol, *chunk)
	if err != nil {
		return err
	}
	dir, err := core.ParseDirection(*dirName)
	if err != nil {
		return err
	}
	lay, err := core.ParseLayout(*layName)
	if err != nil {
		return err
	}
	cfg := harness.Config{
		Scale:       *scale,
		Seed:        *seed,
		Repeats:     *repeats,
		Verify:      true,
		ChunkPolicy: policy,
		ChunkSize:   *chunk,
		Direction:   dir,
		Layout:      lay,
		Shards:      *shards,
	}
	switch *algName {
	case "workstealing":
	case "spanuf":
		cfg.SpanUF = true
	default:
		return fmt.Errorf("benchfig: bad -alg %q (want workstealing or spanuf)", *algName)
	}
	if *metrics != "" || *trace != "" {
		cfg.Collector = &obs.Collector{}
		if *trace != "" {
			cfg.Collector.TraceCap = *traceCap
		}
	}
	for _, s := range strings.Split(*procs, ",") {
		var p int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
			return fmt.Errorf("benchfig: bad -procs entry %q", s)
		}
		cfg.Procs = append(cfg.Procs, p)
	}
	switch *mode {
	case "modeled":
		cfg.Mode = harness.Modeled
	case "wallclock":
		cfg.Mode = harness.WallClock
	default:
		return fmt.Errorf("benchfig: bad -mode %q (want modeled or wallclock)", *mode)
	}
	switch *machine {
	case "e4500":
		cfg.Machine = smpmodel.E4500()
	case "modern":
		cfg.Machine = smpmodel.Modern()
	default:
		return fmt.Errorf("benchfig: bad -machine %q (want e4500 or modern)", *machine)
	}

	ids, err := selectExperiments(*fig)
	if err != nil {
		return err
	}

	allPassed := true
	for _, id := range ids {
		e, _ := harness.ByID(id)
		rep, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("benchfig: %s: %w", id, err)
		}
		if *csv {
			fmt.Fprintf(stdout, "# %s\n%s\n", rep.ID, rep.Table.CSV())
		} else {
			if _, err := rep.WriteTo(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
		if !rep.Passed() {
			allPassed = false
		}
	}
	if *metrics != "" {
		if err := cfg.Collector.WriteMetrics(*metrics); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "metrics: wrote %s (%d runs)\n", *metrics, cfg.Collector.Len())
	}
	if *trace != "" {
		if err := cfg.Collector.WriteTrace(*trace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: wrote %s\n", *trace)
	}
	if *strict && !allPassed {
		return fmt.Errorf("benchfig: one or more shape checks failed")
	}
	return nil
}

// selectExperiments resolves the -fig argument: a single selector or a
// comma-separated list of selectors, deduplicated in first-seen order
// (so the CI pipelines can ask for e.g. "fig3,fig4-torus,abl-chunk" in
// one process).
func selectExperiments(fig string) ([]string, error) {
	parts := strings.Split(fig, ",")
	if len(parts) > 1 {
		seen := make(map[string]bool)
		var ids []string
		for _, part := range parts {
			sub, err := selectExperiments(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			for _, id := range sub {
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
		}
		return ids, nil
	}
	switch fig {
	case "all":
		return harness.IDs(), nil
	case "3", "fig3":
		return []string{"fig3"}, nil
	case "4", "fig4":
		var ids []string
		for _, id := range harness.IDs() {
			if strings.HasPrefix(id, "fig4") {
				ids = append(ids, id)
			}
		}
		return ids, nil
	case "ablations", "abl":
		var ids []string
		for _, id := range harness.IDs() {
			if strings.HasPrefix(id, "abl") {
				ids = append(ids, id)
			}
		}
		return ids, nil
	default:
		if _, ok := harness.ByID(fig); !ok {
			return nil, fmt.Errorf("benchfig: unknown experiment %q; use -list", fig)
		}
		return []string{fig}, nil
	}
}
