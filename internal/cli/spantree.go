// Package cli implements the logic of the repository's command-line
// tools (cmd/spantree, cmd/graphgen, cmd/benchfig) as testable Run
// functions: each parses its own flags, writes to the provided streams,
// and returns an error instead of exiting, so the integration tests can
// drive the complete tool surface in-process.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"spantree"
	"spantree/internal/gen"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// RunSpanTree is the entry point of cmd/spantree: generate or load a
// graph, run an algorithm, verify, and report.
func RunSpanTree(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spantree", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		genKind   = fs.String("gen", "random", "generator kind (see -genlist) when -in is not given")
		genList   = fs.Bool("genlist", false, "list generator kinds and exit")
		n         = fs.Int("n", 1<<16, "vertex budget for the generator")
		m         = fs.Int("m", 0, "edge count (random graphs; 0 = 1.5n)")
		k         = fs.Int("k", 0, "neighbor count (geometric graphs; 0 = 3)")
		seed      = fs.Uint64("seed", 1, "random seed for generation and the algorithm")
		randlabel = fs.Bool("randlabel", false, "randomly relabel vertices after generation")
		inPath    = fs.String("in", "", "read a binary graph instead of generating")
		outPath   = fs.String("out", "", "write the graph (binary) and exit without running")
		algoName  = fs.String("algo", "workstealing", "algorithm: workstealing, seqbfs, seqdfs, sequf, sv, svlocks, hcs, as, levelbfs, spanuf")
		procs     = fs.Int("p", runtime.GOMAXPROCS(0), "virtual processors for parallel algorithms")
		deg2      = fs.Bool("deg2", false, "enable degree-2 elimination preprocessing")
		chunk     = fs.Int("chunk", 0, "drain chunk size for every parallel algorithm: > 0 forces a fixed chunk (1 = unbatched); 0 keeps the adaptive controller (where it caps growth)")
		chunkPol  = fs.String("chunkpolicy", "", "drain chunk policy for every parallel algorithm: adaptive or fixed (default adaptive, or fixed when -chunk > 0)")
		direction = fs.String("direction", "auto", "traversal direction policy for the work-stealing algorithm: auto (top-down/bottom-up switching) or topdown (pure push)")
		layout    = fs.String("layout", "wide", "CSR layout for the work-stealing hot path: wide (int64 offsets) or compact (uint32 arena)")
		shards    = fs.Int("shards", 0, "shard count for the work-stealing algorithm: partition the CSR into contiguous vertex ranges, run one team per shard, stitch the forests (0 or 1 = single team; requires -fallback 0 when > 1)")
		fallback  = fs.Int("fallback", 0, "idle-detection threshold (0 disables the SV fallback)")
		model     = fs.Bool("model", false, "report Helman-JáJá modeled cost (E4500 profile)")
		noverify  = fs.Bool("noverify", false, "skip result verification")
		repeats   = fs.Int("repeats", 1, "timed repetitions (min reported)")
		metrics   = fs.String("metrics", "", "write a per-worker metrics JSON report to this path (e.g. results/metrics.json)")
		trace     = fs.String("trace", "", "write a timestamped event-trace JSON report to this path")
		traceCap  = fs.Int("tracecap", 1<<16, "event ring-buffer capacity for -trace")
		timeout   = fs.Duration("timeout", 0, "abort the run after this long (0 = no deadline); an aborted run exits with a deadline error")
		chaosSeed = fs.Uint64("chaos-seed", 0, "arm the deterministic fault-injection layer with this seed (requires a binary built with -tags chaos; 0 = off)")
		validate  = fs.Bool("validate", false, "validate the input graph's CSR invariants before running (typed error on malformed input)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *genList {
		for _, kind := range gen.Kinds() {
			fmt.Fprintln(stdout, kind)
		}
		return nil
	}

	g, err := loadOrGenerate(*inPath, *genKind, *n, *m, *k, *seed, *randlabel)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %v (avg degree %.2f, max degree %d)\n", g, g.AvgDegree(), g.MaxDegree())

	if *outPath != "" {
		return writeBinaryGraph(*outPath, g, stdout)
	}

	algo, err := spantree.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	policy, err := resolveChunkPolicy(*chunkPol, *chunk)
	if err != nil {
		return err
	}
	dir, err := spantree.ParseDirection(*direction)
	if err != nil {
		return err
	}
	lay, err := spantree.ParseLayout(*layout)
	if err != nil {
		return err
	}
	if *chaosSeed != 0 && !spantree.ChaosEnabled {
		return fmt.Errorf("spantree: -chaos-seed requires a binary built with -tags chaos")
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var best *spantree.Result
	var costModel *smpmodel.Model
	var rec *obs.Recorder
	var recElapsed time.Duration
	for rep := 0; rep < max(1, *repeats); rep++ {
		opt := spantree.Options{
			Algorithm:         algo,
			NumProcs:          *procs,
			Seed:              *seed,
			Deg2Eliminate:     *deg2,
			FallbackThreshold: *fallback,
			ChunkPolicy:       policy,
			ChunkSize:         *chunk,
			Direction:         dir,
			Layout:            lay,
			Shards:            *shards,
			Verify:            !*noverify,
			ValidateInput:     *validate,
			ChaosSeed:         *chaosSeed,
		}
		if *model && rep == 0 {
			costModel = smpmodel.New(max(1, *procs))
			opt.Model = costModel
		}
		if (*metrics != "" || *trace != "") && rep == 0 {
			// Observe only the first repetition: a Recorder accumulates
			// for its lifetime, so one recorder across repeats would
			// conflate the runs in the report.
			if *trace != "" {
				rec = obs.New(max(1, *procs), obs.WithTrace(*traceCap))
			} else {
				rec = obs.New(max(1, *procs))
			}
			opt.Obs = rec
		}
		res, err := spantree.FindContext(ctx, g, opt)
		if err != nil {
			return err
		}
		if rep == 0 {
			recElapsed = res.Elapsed
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}

	fmt.Fprintf(stdout, "algorithm: %v  p=%d\n", best.Algorithm, *procs)
	fmt.Fprintf(stdout, "wall time: %v (min of %d)\n", best.Elapsed.Round(time.Microsecond), max(1, *repeats))
	fmt.Fprintf(stdout, "tree: %d edges, %d roots (components)\n", best.TreeEdges, best.Roots)
	if !*noverify {
		fmt.Fprintln(stdout, "verified: spanning forest is valid")
	}
	if ws := best.WorkStealing; ws != nil {
		fmt.Fprintf(stdout, "workstealing: stub=%d steals=%d stolen=%d failedClaims=%d cursorRoots=%d imbalance=%.2f\n",
			ws.StubSize, ws.Steals, ws.StolenVertices, ws.FailedClaims, ws.CursorRoots, ws.MaxLoadImbalance())
		fmt.Fprintf(stdout, "chunk: policy=%v stealHitRate=%.3f grow=%d shrink=%d\n",
			policy, ws.StealHitRate(), ws.ChunkGrow, ws.ChunkShrink)
		if ws.FallbackTriggered {
			fmt.Fprintf(stdout, "fallback: SV completion ran (%d grafts in %d iterations)\n",
				ws.SVStats.Grafts, ws.SVStats.Iterations)
		}
		if ws.DegradedToSeq {
			fmt.Fprintf(stdout, "degraded: worker panic recovered (%v); forest recomputed sequentially\n", ws.Panic)
		}
	}
	if sv := best.SV; sv != nil {
		fmt.Fprintf(stdout, "sv: iterations=%d shortcutRounds=%d grafts=%d\n", sv.Iterations, sv.ShortcutRounds, sv.Grafts)
	}
	if hcs := best.HCS; hcs != nil {
		fmt.Fprintf(stdout, "hcs: iterations=%d shortcutRounds=%d grafts=%d\n", hcs.Iterations, hcs.ShortcutRounds, hcs.Grafts)
	}
	if as := best.AS; as != nil {
		fmt.Fprintf(stdout, "as: iterations=%d hooks=%d+%d\n", as.Iterations, as.ConditionalHooks, as.UnconditionalHooks)
	}
	if lv := best.LevelBFS; lv != nil {
		fmt.Fprintf(stdout, "levelbfs: levels=%d maxFrontier=%d\n", lv.Levels, lv.MaxFrontier)
	}
	if uf := best.SpanUF; uf != nil {
		fmt.Fprintf(stdout, "spanuf: hooksWon=%d hooksLost=%d finds=%d compress=%d\n",
			uf.TreeEdges, uf.HooksLost, uf.Finds, uf.CompressionWrites)
		if uf.DegradedToSeq {
			fmt.Fprintf(stdout, "degraded: worker panic recovered (%v); forest recomputed sequentially\n", uf.Panic)
		}
	}
	if costModel != nil {
		mach := smpmodel.E4500()
		fmt.Fprintf(stdout, "modeled (%s): %v, triplet %s\n", mach.Name, costModel.Time(mach), costModel.Triplet())
	}
	if rec != nil {
		label := fmt.Sprintf("%s/%v/p=%d", best.Algorithm, g, *procs)
		meta := map[string]string{
			"algo":        best.Algorithm.String(),
			"graph":       g.String(),
			"p":           fmt.Sprint(*procs),
			"seed":        fmt.Sprint(*seed),
			"chunkpolicy": policy.String(),
			"direction":   dir.String(),
			"layout":      lay.String(),
			"shards":      fmt.Sprint(max(1, *shards)),
		}
		rep := rec.NewReport(label, meta)
		rep.ElapsedNS = recElapsed.Nanoseconds()
		if *metrics != "" {
			a := &obs.Artifact{Runs: []obs.Report{rep}}
			if err := a.WriteFile(*metrics); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "metrics: wrote %s\n", *metrics)
		}
		if *trace != "" {
			a := &obs.Artifact{Runs: []obs.Report{rep.WithEvents(rec)}}
			if err := a.WriteFile(*trace); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "trace: wrote %s (%d events)\n", *trace, len(rec.Events()))
		}
	}
	return nil
}

// resolveChunkPolicy maps the -chunkpolicy/-chunk flag pair onto a
// ChunkPolicy: an explicit name wins, otherwise -chunk > 0 forces the
// fixed policy (so existing `-chunk 64` invocations keep their exact
// pre-adaptive behavior) and the default is adaptive.
func resolveChunkPolicy(name string, chunk int) (spantree.ChunkPolicy, error) {
	if name == "" {
		if chunk > 0 {
			return spantree.ChunkFixed, nil
		}
		return spantree.ChunkAdaptive, nil
	}
	return spantree.ParseChunkPolicy(name)
}

func loadOrGenerate(inPath, kind string, n, m, k int, seed uint64, randlabel bool) (*spantree.Graph, error) {
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spantree.ReadGraph(f)
	}
	return gen.Generate(gen.Spec{Kind: kind, N: n, M: m, K: k, Seed: seed, RandomLabel: randlabel})
}

func writeBinaryGraph(path string, g *spantree.Graph, stdout io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spantree.WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
