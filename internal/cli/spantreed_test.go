package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseGraphSpec(t *testing.T) {
	name, spec, err := parseGraphSpec("web=random:1000:2500:0:7")
	if err != nil {
		t.Fatal(err)
	}
	if name != "web" || spec.Kind != "random" || spec.N != 1000 || spec.M != 2500 || spec.Seed != 7 {
		t.Fatalf("parsed %q %+v", name, spec)
	}
	for _, bad := range []string{"", "noeq", "x=", "x=kind", "x=kind:abc", "x=kind:1:2:3:4:5"} {
		if _, _, err := parseGraphSpec(bad); err == nil {
			t.Errorf("parseGraphSpec(%q) accepted", bad)
		}
	}
}

// TestRunSpanTreeD boots the real daemon on an ephemeral port with a
// preloaded graph, serves one request end to end, and shuts down on
// context cancel.
func TestRunSpanTreeD(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runSpanTreeD(ctx, []string{
			"-addr", "127.0.0.1:0", "-p", "1", "-pool", "1",
			"-graph", "small=torus2d:64",
		}, &stdout, &stdout)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", stdout.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "spantreed listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/spantree", "application/json",
		strings.NewReader(`{"graph":"small","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var run struct {
		Roots int `json:"roots"`
		N     int `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || run.N != 64 || run.Roots != 1 {
		t.Fatalf("status %d, run %+v", resp.StatusCode, run)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop on cancel")
	}
	if !strings.Contains(stdout.String(), "spantreed stopped") {
		t.Fatalf("missing stop line:\n%s", stdout.String())
	}
}

// syncBuffer is a bytes.Buffer safe for the daemon goroutine to write
// while the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
