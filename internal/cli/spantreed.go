package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spantree"
	"spantree/internal/gen"
	"spantree/internal/serve"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseGraphSpec parses a -graph preload value of the form
// name=kind:n[:m[:k[:seed]]], e.g. small=torus2d:4096 or
// web=random:100000:250000:0:7.
func parseGraphSpec(v string) (string, gen.Spec, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return "", gen.Spec{}, fmt.Errorf("spantreed: -graph %q: want name=kind:n[:m[:k[:seed]]]", v)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 || len(parts) > 5 {
		return "", gen.Spec{}, fmt.Errorf("spantreed: -graph %q: want name=kind:n[:m[:k[:seed]]]", v)
	}
	spec := gen.Spec{Kind: parts[0]}
	nums := make([]uint64, 0, 4)
	for _, p := range parts[1:] {
		u, err := strconv.ParseUint(p, 10, 63)
		if err != nil {
			return "", gen.Spec{}, fmt.Errorf("spantreed: -graph %q: %v", v, err)
		}
		nums = append(nums, u)
	}
	spec.N = int(nums[0])
	if len(nums) > 1 {
		spec.M = int(nums[1])
	}
	if len(nums) > 2 {
		spec.K = int(nums[2])
	}
	if len(nums) > 3 {
		spec.Seed = nums[3]
	}
	return name, spec, nil
}

// RunSpanTreeD is the entry point of cmd/spantreed: boot the serving
// front end, preload any -graph specs, and serve until SIGINT/SIGTERM.
func RunSpanTreeD(args []string, stdout, stderr io.Writer) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	return runSpanTreeD(ctx, args, stdout, stderr)
}

// runSpanTreeD is RunSpanTreeD with caller-owned lifetime, so tests can
// boot a real server on :0 and stop it by canceling the context.
func runSpanTreeD(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spantreed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var graphs multiFlag
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		procs    = fs.Int("p", 0, "virtual processors per session (0 = min(NumCPU, 4))")
		pool     = fs.Int("pool", 2, "warmed sessions per registered graph")
		inflight = fs.Int("inflight", 0, "max concurrent /v1/spantree requests (0 = 2*pool)")
		maxVerts = fs.Int("max-vertices", 0, "reject graph registrations larger than this (0 = 1<<22)")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request deadline cap (also the default deadline)")
		warmups  = fs.Int("warmups", 0, "warmup runs per session at registration (0 = default)")
		dirName  = fs.String("direction", "auto", "traversal direction policy for pooled sessions: auto or topdown")
		layName  = fs.String("layout", "auto", "CSR layout policy for pooled sessions: auto (compact when the graph fits uint32), wide, or compact")
		shards   = fs.Int("shards", 0, "shard policy for pooled work-stealing sessions: 0 picks per graph (one shard per 256Ki vertices, capped at 8), a positive count forces it (1 = single team)")
		algName  = fs.String("alg", "workstealing", "pooled algorithm: workstealing or spanuf")
		stall    = fs.Duration("stall-budget", 0, "stuck-run watchdog: abort a run in which no worker advances for this long with a typed 503 (0 disables)")
		journal  = fs.String("journal", "", "crash-safe registry journal file: replayed on boot, fsynced on every graph mutation (empty disables)")
		coolDown = fs.Duration("cool-down", 0, "degradation ladder cool-down before a degraded graph climbs back a rung (0 = 30s)")
		chaosS   = fs.Uint64("chaos-seed", 0, "serving-layer fault injection seed (chaos builds only; 0 disables)")
	)
	fs.Var(&graphs, "graph", "preload a graph: name=kind:n[:m[:k[:seed]]] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dir, err := spantree.ParseDirection(*dirName)
	if err != nil {
		return fmt.Errorf("spantreed: %w", err)
	}
	switch *layName {
	case serve.LayoutAuto, serve.LayoutWide, serve.LayoutCompact:
	default:
		return fmt.Errorf("spantreed: bad -layout %q (want auto, wide or compact)", *layName)
	}
	alg, err := spantree.ParseAlgorithm(*algName)
	if err != nil {
		return fmt.Errorf("spantreed: %w", err)
	}
	if alg != spantree.AlgWorkStealing && alg != spantree.AlgSpanUF {
		return fmt.Errorf("spantreed: -alg %q has no pooled session support (want workstealing or spanuf)", *algName)
	}
	if *chaosS != 0 && !spantree.ChaosEnabled {
		return fmt.Errorf("spantreed: -chaos-seed requires a binary built with -tags chaos")
	}
	srv := serve.New(serve.Config{
		NumProcs:    *procs,
		PoolSize:    *pool,
		MaxInFlight: *inflight,
		MaxVertices: *maxVerts,
		MaxTimeout:  *timeout,
		Warmups:     *warmups,
		Direction:   dir,
		Layout:      *layName,
		Shards:      *shards,
		Algorithm:   alg,
		StallBudget: *stall,
		CoolDown:    *coolDown,
		ChaosSeed:   *chaosS,
	})
	defer srv.Close()
	if *journal != "" {
		// Replay before preloads: preloaded names already in the journal
		// come back from the replay, and the preload loop's conflict error
		// below is suppressed for exact duplicates.
		if err := srv.OpenJournal(*journal); err != nil {
			return fmt.Errorf("spantreed: journal: %w", err)
		}
	}
	for _, v := range graphs {
		name, spec, err := parseGraphSpec(v)
		if err != nil {
			return err
		}
		if err := srv.Register(name, spec); err != nil {
			if *journal != "" && serve.IsConflict(err) {
				fmt.Fprintf(stdout, "preload %s restored from journal\n", name)
				continue
			}
			return fmt.Errorf("spantreed: preload %q: %w", name, err)
		}
		fmt.Fprintf(stdout, "preloaded %s (%s, n=%d)\n", name, spec.Kind, spec.N)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	// The smoke scripts wait for this exact line before sending load.
	fmt.Fprintf(stdout, "spantreed listening on http://%s\n", ln.Addr())

	select {
	case <-ctx.Done():
		// Flip readiness first so load balancers stop routing here while
		// in-flight requests drain through Shutdown.
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		<-errCh
		fmt.Fprintln(stdout, "spantreed stopped")
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
