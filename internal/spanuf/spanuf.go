// Package spanuf implements the edge-centric CAS-hook spanning forest
// (gbbs-style parallel union-find), the complementary algorithm family
// to the paper's vertex-centric work-stealing traversal.
//
// Where the traversal grows trees outward from a stub — frontier queues,
// claim CASes, steals — this family runs one flat parallel loop over the
// edges: each arc path-compress-finds the roots of its endpoints, and if
// they differ, tries to CAS a hook into the smaller root's slot. The CAS
// is the tree-edge election: the winner links the smaller root under the
// larger and the arc becomes a tree edge; the loser re-finds and
// retries. There are no frontier queues and no barriers beyond init, so
// the sweep is embarrassingly parallel over m and indifferent to graph
// diameter — the traversal's pathological case.
//
// # The smaller-to-larger hooking rule and lock-free safety
//
// Roots are ordered by vertex index and a root may only be hooked under
// a LARGER root (link-by-index). Together with the compression guard
// (parent[i] is only overwritten by a strictly larger value), this keeps
// one invariant: every value ever stored into parent[i] of a non-root is
// strictly greater than i. Any walk up parent pointers therefore strictly
// increases the vertex index and must terminate within n steps — no
// cycles can form and no find can livelock, whatever the interleaving.
// Concurrent compression stores may race each other (a slot can briefly
// regress from one ancestor to a smaller one), but every stored value is
// a proper ancestor of the slot, so correctness and termination survive
// the benign race. Hooking larger-under-smaller instead would let two
// concurrent hooks form a parent cycle; the rule is what makes the sweep
// lock-free, not a heuristic.
//
// # Memory traffic
//
// The model contrast with the traversal: the traversal pays independent
// non-contiguous accesses (queue pushes, claim CASes) that the memory
// system can overlap; the union-find sweep pays pointer CHASES — each
// parent load's address depends on the previous load — plus one CAS per
// hook election. See the smpmodel CASOps/PointerChases classes and the
// abl-alg harness experiment for where the crossover falls.
package spanuf

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
)

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors p (>= 1).
	NumProcs int
	// Compact mirrors the graph into the uint32 CSR32 layout for the
	// sweep's adjacency scans (built per run here; once per Workspace on
	// the pooled path). The union-find arrays are separate from the CSR,
	// so the layout only changes the scan traffic.
	Compact bool
	// Model, when non-nil, accumulates Helman-JáJá cost counters. The
	// sweep charges the CAS and pointer-chase classes; see the package
	// comment.
	Model *smpmodel.Model
	// Obs, when non-nil, receives per-worker counters (EdgesScanned,
	// HooksWon/HooksLost, UFFinds, CompressionWrites, the chunk-drain
	// set) and barrier waits from the team.
	Obs *obs.Recorder
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) that runs the edge sweep — the same -chunk knobs
	// as every other parallel algorithm in the tree.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips). The
	// sweep polls it at every ForDynamic chunk boundary, so cancellation
	// latency is bounded by one chunk per worker (see par.ForDynamic).
	Cancel *fault.Flag
	// Chaos is the fault injector (nil, and compiled to no-ops in
	// default builds, injects nothing).
	Chaos *chaos.Injector
}

// Stats reports what a run did.
type Stats struct {
	// TreeEdges is the number of hook elections won == tree edges
	// selected (n minus the number of components).
	TreeEdges int
	// HooksLost counts CAS elections lost to another worker (each one
	// re-found its endpoints and retried).
	HooksLost int64
	// Finds is the number of union-find root lookups.
	Finds int64
	// CompressionWrites is the number of parent rewrites performed by
	// path compression during those finds.
	CompressionWrites int64
	// Panic is the isolated worker panic a pooled run recovered from,
	// nil for clean runs (one-shot runs return the error instead).
	Panic *fault.PanicError
	// DegradedToSeq reports that a pooled run finished on the sequential
	// repair path after an isolated panic.
	DegradedToSeq bool
}

const nobody = int64(-1)

// packArc packs an arc (v,w) into an int64 for the hook slots.
func packArc(v, w graph.VID) int64 {
	return int64(uint64(uint32(v))<<32 | uint64(uint32(w)))
}

func unpackArc(x int64) (v, w graph.VID) {
	return graph.VID(uint32(uint64(x) >> 32)), graph.VID(uint32(uint64(x)))
}

// counts is one worker's private tally, padded so neighboring workers'
// cells never share a cache line. Stats are derived from these instead
// of the obs recorder so un-instrumented runs still report.
type counts struct {
	won, lost, finds, compress int64
	_                          [4]int64
}

// hooker is one worker's handle on the shared union-find state: the
// parent array, the hook slots, and the worker's probe and tally.
type hooker struct {
	uf    []int32
	hooks []int64
	probe *smpmodel.Probe
	ct    *counts
}

// find returns the root of i, compressing the path behind it. The walk
// terminates under any interleaving because parent values of non-roots
// are always strictly greater than their vertex (see the package
// comment); the compression guard (only overwrite with a larger value)
// preserves that invariant.
func (h *hooker) find(i int32) int32 {
	h.ct.finds++
	j := i
	var chases int64
	for {
		p := atomic.LoadInt32(&h.uf[j])
		if p == j {
			break
		}
		j = p
		chases++
	}
	// Compress the walked path onto the root. A concurrent find may have
	// compressed i past j already (tmp >= j) — stop rather than regress.
	var writes int64
	for {
		tmp := atomic.LoadInt32(&h.uf[i])
		if tmp >= j {
			break
		}
		atomic.StoreInt32(&h.uf[i], j)
		writes++
		i = tmp
	}
	h.probe.Chase(chases + 2*writes)
	h.ct.compress += writes
	return j
}

// hook processes one arc (v, w): find both roots, and while they
// differ, run the CAS election on the smaller root's hook slot. Returns
// true when this arc won a hook and became a tree edge.
func (h *hooker) hook(v, w graph.VID) bool {
	ru := h.find(int32(v))
	rw := h.find(int32(w))
	for ru != rw {
		if ru > rw {
			ru, rw = rw, ru
		}
		h.probe.CAS(1)
		if atomic.CompareAndSwapInt64(&h.hooks[ru], nobody, packArc(v, w)) {
			// The election is the linearization point; the link itself is
			// a plain store (only the CAS winner writes a root's parent,
			// and compression never touches roots).
			atomic.StoreInt32(&h.uf[ru], rw)
			h.ct.won++
			return true
		}
		h.ct.lost++
		// Lost the election: another arc hooked ru first. Its winner's
		// link store may still be in flight — wait for it, so the re-find
		// below makes progress instead of spinning on the same root.
		for atomic.LoadInt32(&h.uf[ru]) == ru {
			runtime.Gosched()
		}
		ru = h.find(int32(v))
		rw = h.find(int32(w))
	}
	return false
}

// SpanningForest runs the edge-centric CAS-hook sweep and returns the
// forest as a parent array plus run statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("spanuf: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	n := g.NumVertices()
	var cg *graph.CSR32
	if opt.Compact {
		var err error
		cg, err = graph.CompactOf(g)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("spanuf: %w", err)
		}
	}
	uf := make([]int32, n)
	hooks := make([]int64, n)
	cells := make([]counts, opt.NumProcs)

	if opt.Model != nil {
		// The lockstep-driver rule, applied to the sweep: modeled figures
		// must be a pure function of input and p, but the shared union-find
		// evolves under whatever interleaving the scheduler produces, so a
		// concurrent modeled run would report schedule-dependent chase and
		// compression counts. Serialize instead.
		if err := lockstepSweep(g, cg, uf, hooks, cells, opt); err != nil {
			return nil, Stats{}, err
		}
	} else {
		team := par.NewTeam(opt.NumProcs, nil).Observe(opt.Obs).
			Chunk(opt.ChunkPolicy, opt.ChunkSize).
			Cancel(opt.Cancel).Chaos(opt.Chaos)
		if err := team.RunErr(func(c *par.Ctx) {
			hookSweep(c, g, cg, uf, hooks, cells)
		}); err != nil {
			return nil, Stats{}, err
		}
	}

	// Rooting epilogue: rewrite the hook slots into a rooted parent
	// array. O(n + treeEdges) work on top of the sweep, charged to
	// processor 0 like the SV family's rooting pass.
	parent := make([]graph.VID, n)
	te := rootForest(hooks, parent, newRootScratch(n), opt.Model.Probe(0))
	stats := statsFromCells(cells)
	stats.TreeEdges = te
	return parent, stats, nil
}

// hookSweep is the team body: initialize the union-find in parallel,
// barrier once, then sweep every vertex's arcs through the hook
// election on the dynamic scheduler. The arc scan is degree-weighted
// work, so ForDynamic's stealing rebalances skewed inputs, and its
// per-chunk flag poll bounds cancellation latency to one chunk per
// worker.
func hookSweep(c *par.Ctx, g *graph.Graph, cg *graph.CSR32, uf []int32, hooks []int64, cells []counts) {
	n := g.NumVertices()
	probe := c.Probe()
	ow := c.Obs()

	c.ForDynamic(n, func(i int) {
		uf[i] = int32(i)
		hooks[i] = nobody
	})
	c.Barrier()

	h := hooker{uf: uf, hooks: hooks, probe: probe, ct: &cells[c.TID()]}
	var lc obs.Local
	c.ForDynamic(n, func(vi int) {
		v := graph.VID(vi)
		// Each undirected edge is processed once, by its smaller endpoint
		// (w <= v skips the mirror arc and self loops).
		if cg != nil {
			probe.NonContigC(1) // load the compact offset pair
			nb := cg.Neighbors32(v)
			probe.ContigC(int64(len(nb)))
			lc.Add(obs.EdgesScanned, int64(len(nb)))
			for _, w32 := range nb {
				w := graph.VID(w32)
				if w <= v {
					continue
				}
				h.hook(v, w)
			}
		} else {
			probe.NonContig(1) // load the offset pair
			nb := g.Neighbors(v)
			probe.Contig(int64(len(nb)))
			lc.Add(obs.EdgesScanned, int64(len(nb)))
			for _, w := range nb {
				if w <= v {
					continue
				}
				h.hook(v, w)
			}
		}
	})
	lc.Add(obs.HooksWon, h.ct.won)
	lc.Add(obs.HooksLost, h.ct.lost)
	lc.Add(obs.UFFinds, h.ct.finds)
	lc.Add(obs.CompressionWrites, h.ct.compress)
	lc.FlushTo(ow)
}

// lockstepSweep is the modeled path: the p workers' static blocks
// advance through a fixed round-robin of chunk-sized turns on one
// goroutine, so the shared union-find passes through one reproducible
// interleaving and the modeled counters — including the CAS and
// pointer-chase classes — are deterministic run to run. Costs are
// charged per virtual processor exactly as the concurrent sweep would
// charge them (the drain cadence of 2 noncontiguous accesses per chunk,
// the per-vertex scan traffic, the find chases and hook CASes), and the
// init/sweep barrier is counted. Two things differ by construction:
// hook elections never race on a serial schedule, so modeled runs
// report HooksLost = 0 (wall-clock runs measure real contention), and
// chaos injection is ignored, as on every modeled path. The cancel flag
// is still polled per chunk turn.
func lockstepSweep(g *graph.Graph, cg *graph.CSR32, uf []int32, hooks []int64, cells []counts, opt Options) error {
	n := g.NumVertices()
	p := opt.NumProcs
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = par.DefaultChunkSize
	}

	probes := make([]*smpmodel.Probe, p)
	hookers := make([]hooker, p)
	locals := make([]obs.Local, p)
	pos := make([]int, p)
	hi := make([]int, p)
	for tid := 0; tid < p; tid++ {
		probes[tid] = opt.Model.Probe(tid)
		hookers[tid] = hooker{uf: uf, hooks: hooks, probe: probes[tid], ct: &cells[tid]}
		pos[tid] = tid * n / p
		hi[tid] = (tid + 1) * n / p
	}

	// Init phase: the same static blocks, the same drain cadence.
	initPos := make([]int, p)
	copy(initPos, pos)
	for live := true; live; {
		live = false
		for tid := 0; tid < p; tid++ {
			if initPos[tid] >= hi[tid] {
				continue
			}
			live = true
			k := min(chunk, hi[tid]-initPos[tid])
			probes[tid].NonContig(2)
			for i := initPos[tid]; i < initPos[tid]+k; i++ {
				uf[i] = int32(i)
				hooks[i] = nobody
			}
			initPos[tid] += k
		}
	}
	opt.Model.AddBarriers(1)

	for live := true; live; {
		live = false
		for tid := 0; tid < p; tid++ {
			if pos[tid] >= hi[tid] {
				continue
			}
			live = true
			if opt.Cancel.Tripped() {
				flushLockstep(locals, opt.Obs)
				return opt.Cancel.Err()
			}
			k := min(chunk, hi[tid]-pos[tid])
			probes[tid].NonContig(2)
			lc := &locals[tid]
			lc.Incr(obs.ChunkDrains)
			lc.Add(obs.DrainedVertices, int64(k))
			lc.Incr(obs.DrainHistBucket(k))
			h := &hookers[tid]
			for vi := pos[tid]; vi < pos[tid]+k; vi++ {
				v := graph.VID(vi)
				if cg != nil {
					probes[tid].NonContigC(1)
					nb := cg.Neighbors32(v)
					probes[tid].ContigC(int64(len(nb)))
					lc.Add(obs.EdgesScanned, int64(len(nb)))
					for _, w32 := range nb {
						w := graph.VID(w32)
						if w <= v {
							continue
						}
						h.hook(v, w)
					}
				} else {
					probes[tid].NonContig(1)
					nb := g.Neighbors(v)
					probes[tid].Contig(int64(len(nb)))
					lc.Add(obs.EdgesScanned, int64(len(nb)))
					for _, w := range nb {
						if w <= v {
							continue
						}
						h.hook(v, w)
					}
				}
			}
			pos[tid] += k
		}
	}
	for tid := 0; tid < p; tid++ {
		lc := &locals[tid]
		ct := &cells[tid]
		lc.Add(obs.HooksWon, ct.won)
		lc.Add(obs.HooksLost, ct.lost)
		lc.Add(obs.UFFinds, ct.finds)
		lc.Add(obs.CompressionWrites, ct.compress)
	}
	flushLockstep(locals, opt.Obs)
	return nil
}

func flushLockstep(locals []obs.Local, rec *obs.Recorder) {
	for tid := range locals {
		locals[tid].FlushTo(rec.Worker(tid))
	}
}

func statsFromCells(cells []counts) Stats {
	var s Stats
	for i := range cells {
		s.HooksLost += cells[i].lost
		s.Finds += cells[i].finds
		s.CompressionWrites += cells[i].compress
	}
	return s
}

// rootScratch holds the rooting pass's buffers, so pooled runs reuse
// them instead of allocating per request.
type rootScratch struct {
	offs  []int32 // n+1 prefix offsets into adj
	cur   []int32 // per-vertex fill cursor
	adj   []int32 // tree-edge adjacency, 2*(n-1) slots worst case
	queue []int32 // BFS queue, at most n entries
}

func newRootScratch(n int) *rootScratch {
	adjCap := 0
	if n > 1 {
		adjCap = 2 * (n - 1)
	}
	return &rootScratch{
		offs:  make([]int32, n+1),
		cur:   make([]int32, n),
		adj:   make([]int32, adjCap),
		queue: make([]int32, n),
	}
}

// rootForest rewrites the hook slots into a rooted parent array:
// counting-sort the hooked arcs into a CSR over tree edges, then BFS
// from every union-find root. A vertex stops being a root only by
// winning exactly one hook, so hooks[r] == nobody marks exactly the
// final roots — one per component — and the hooked arcs form a spanning
// tree of each component (every hook merged two disjoint sets along a
// graph edge). Returns the tree-edge count. Deterministic given hooks.
func rootForest(hooks []int64, parent []graph.VID, s *rootScratch, probe *smpmodel.Probe) int {
	n := len(hooks)
	offs := s.offs[:n+1]
	clear(offs)
	treeEdges := 0
	for _, hk := range hooks {
		if hk == nobody {
			continue
		}
		v, w := unpackArc(hk)
		offs[v+1]++
		offs[w+1]++
		treeEdges++
	}
	for i := 0; i < n; i++ {
		offs[i+1] += offs[i]
	}
	cur := s.cur[:n]
	clear(cur)
	adj := s.adj[:2*treeEdges]
	for _, hk := range hooks {
		if hk == nobody {
			continue
		}
		v, w := unpackArc(hk)
		adj[offs[v]+cur[v]] = int32(w)
		cur[v]++
		adj[offs[w]+cur[w]] = int32(v)
		cur[w]++
	}
	// Two streaming passes over the hook slots plus the scattered
	// adjacency writes.
	probe.Contig(int64(2 * n))
	probe.NonContig(int64(4 * treeEdges))

	for i := range parent {
		parent[i] = graph.None
	}
	q := s.queue[:n]
	head, tail := 0, 0
	for r := 0; r < n; r++ {
		if hooks[r] != nobody {
			continue // not a final union-find root
		}
		parent[r] = graph.VID(r) // self-parent sentinel; normalized below
		q[tail] = int32(r)
		tail++
		for head < tail {
			v := graph.VID(q[head])
			head++
			probe.NonContig(1)
			for _, w32 := range adj[offs[v]:offs[v+1]] {
				w := graph.VID(w32)
				probe.NonContig(1)
				if parent[w] == graph.None {
					parent[w] = v
					q[tail] = int32(w)
					tail++
				}
			}
		}
	}
	for i := range parent {
		if parent[i] == graph.VID(i) {
			parent[i] = graph.None
		}
	}
	probe.Contig(int64(2 * len(parent)))
	return treeEdges
}
