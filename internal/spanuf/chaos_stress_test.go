//go:build chaos

package spanuf

import (
	"errors"
	"testing"
	"time"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/verify"
)

// The spanuf chaos stress suite: >= 50 seeded schedules against the
// CAS-hook sweep. Stalls and vetoed steals reorder the hook elections
// arbitrarily; the forest must stay valid with the right component
// count whatever the interleaving — the lock-free safety claim of the
// package comment, tested instead of argued.

func TestChaosStressSpanningForest(t *testing.T) {
	// Sized like the par suite's stress sweep: enough drain chunks that
	// every seed's probabilistic injector fires at least once.
	g := gen.RandomConnected(20000, 60000, 9)
	n := g.NumVertices()
	for seed := uint64(1); seed <= 50; seed++ {
		p := 2 + int(seed%7)
		inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
		type out struct {
			parent []graph.VID
			st     Stats
			err    error
		}
		done := make(chan out, 1)
		go func() {
			parent, st, err := SpanningForest(g, Options{NumProcs: p, Chaos: inj})
			done <- out{parent, st, err}
		}()
		var o out
		select {
		case o = <-done:
		case <-time.After(2 * time.Minute):
			t.Fatalf("seed=%d p=%d: sweep did not terminate under chaos", seed, p)
		}
		if o.err != nil {
			t.Fatalf("seed=%d p=%d: %v", seed, p, o.err)
		}
		if err := verify.Forest(g, o.parent); err != nil {
			t.Fatalf("seed=%d p=%d: %v", seed, p, err)
		}
		if got := countRoots(o.parent); got != 1 {
			t.Fatalf("seed=%d p=%d: %d roots on a connected graph", seed, p, got)
		}
		if o.st.TreeEdges != n-1 {
			t.Fatalf("seed=%d p=%d: TreeEdges = %d, want %d", seed, p, o.st.TreeEdges, n-1)
		}
		if inj.Injections() == 0 {
			t.Fatalf("seed=%d p=%d: chaos injected nothing", seed, p)
		}
	}
}

// TestChaosInjectedPanicSurfaces aims an InjectedPanic at the drain
// point of the one-shot sweep: the team must drain and the structured
// PanicError must come back as the error (one-shot runs surface panics
// instead of repairing, unlike the pooled workspace).
func TestChaosInjectedPanicSurfaces(t *testing.T) {
	g := gen.RandomConnected(4000, 8000, 9)
	const p = 4
	inj := chaos.New(chaos.Config{
		Seed: 7, Workers: p,
		PanicPoint: chaos.PointDrain, PanicWorker: 1, PanicAfter: 1,
	}, nil)
	_, _, err := SpanningForest(g, Options{NumProcs: p, Chaos: inj})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *fault.PanicError", err)
	}
	ip, ok := pe.Value.(chaos.InjectedPanic)
	if !ok || ip.Worker != 1 {
		t.Fatalf("panic value %v, want aimed InjectedPanic on worker 1", pe.Value)
	}
}

// TestChaosCancellationUnderPerturbation races an external trip against
// the perturbed sweep: every outcome must be one of the two legal ones —
// a clean, valid forest, or the typed ErrCanceled — never a torn result
// or a hang. The chaos stalls make mid-sweep trips the common case.
func TestChaosCancellationUnderPerturbation(t *testing.T) {
	g := gen.Chain(50000)
	canceled := 0
	for seed := uint64(1); seed <= 10; seed++ {
		p := 2 + int(seed%4)
		inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
		flag := &fault.Flag{}
		stop := make(chan struct{})
		go func() {
			defer close(stop)
			time.Sleep(time.Duration(seed) * 200 * time.Microsecond)
			flag.Trip(fault.CauseCanceled)
		}()
		parent, _, err := SpanningForest(g, Options{NumProcs: p, Cancel: flag, Chaos: inj})
		<-stop
		switch {
		case err == nil:
			if verr := verify.Forest(g, parent); verr != nil {
				t.Fatalf("seed=%d p=%d: completed run invalid: %v", seed, p, verr)
			}
		case errors.Is(err, fault.ErrCanceled):
			canceled++
		default:
			t.Fatalf("seed=%d p=%d: err = %v, want nil or ErrCanceled", seed, p, err)
		}
	}
	if canceled == 0 {
		t.Log("no seed canceled mid-sweep; trips all landed after completion")
	}
}
