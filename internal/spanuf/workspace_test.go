package spanuf

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

func TestWorkspaceAllFamilies(t *testing.T) {
	for name, g := range fig4Families() {
		wantComps := graph.NumComponents(g)
		for _, p := range []int{1, 4} {
			w, err := NewWorkspace(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%s p=%d: NewWorkspace: %v", name, p, err)
			}
			// Several runs per workspace: reuse must not corrupt state.
			for run := 0; run < 3; run++ {
				parent, st, err := w.Run(uint64(run))
				if err != nil {
					t.Fatalf("%s p=%d run %d: %v", name, p, run, err)
				}
				if err := verify.Forest(g, parent); err != nil {
					t.Fatalf("%s p=%d run %d: %v", name, p, run, err)
				}
				if got := countRoots(parent); got != wantComps {
					t.Fatalf("%s p=%d run %d: %d roots, want %d", name, p, run, got, wantComps)
				}
				if st.TreeEdges != g.NumVertices()-wantComps {
					t.Fatalf("%s p=%d run %d: TreeEdges = %d, want %d",
						name, p, run, st.TreeEdges, g.NumVertices()-wantComps)
				}
			}
			w.Close()
		}
	}
}

// TestWorkspaceMatchesOneShot pins the pooled path to the one-shot
// path: at p=1 both process arcs in vertex order and root the forest
// with the same deterministic epilogue, so the parent arrays must be
// byte-identical — on both layouts.
func TestWorkspaceMatchesOneShot(t *testing.T) {
	g := gen.GeoHier(700, gen.DefaultGeoHierParams(), 61)
	for _, compact := range []bool{false, true} {
		fresh, _, err := SpanningForest(g, Options{NumProcs: 1, Compact: compact})
		if err != nil {
			t.Fatalf("compact=%v: one-shot: %v", compact, err)
		}
		w, err := NewWorkspace(g, Options{NumProcs: 1, Compact: compact})
		if err != nil {
			t.Fatalf("compact=%v: NewWorkspace: %v", compact, err)
		}
		for run := 0; run < 3; run++ {
			pooled, _, err := w.Run(uint64(run))
			if err != nil {
				t.Fatalf("compact=%v run %d: %v", compact, run, err)
			}
			for v := range fresh {
				if pooled[v] != fresh[v] {
					t.Fatalf("compact=%v run %d: parent[%d] = %d, one-shot %d",
						compact, run, v, pooled[v], fresh[v])
				}
			}
		}
		w.Close()
	}
}

// TestWorkspaceZeroAlloc is the provisioning guarantee: a warmed
// workspace runs the sweep and the rooting epilogue without a single
// steady-state heap allocation, wide or compact.
func TestWorkspaceZeroAlloc(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, compact := range []bool{false, true} {
			g := gen.Torus2D(32, 32)
			w, err := NewWorkspace(g, Options{NumProcs: p, Compact: compact})
			if err != nil {
				t.Fatal(err)
			}
			// Warm: first runs pay one-time costs (per-goroutine sleep timers).
			for i := 0; i < 3; i++ {
				if _, _, err := w.Run(uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, _, err := w.Run(42); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("p=%d compact=%v: AllocsPerRun = %v, want 0", p, compact, avg)
			}
			w.Close()
		}
	}
}

// TestWorkspaceReusableAfterCancel: a run stopped by its flag leaves
// the workspace fully functional, and the flag-reset contract (caller
// resets before re-arming) restores normal completion.
func TestWorkspaceReusableAfterCancel(t *testing.T) {
	g := gen.RandomConnected(300, 600, 3)
	w, err := NewWorkspace(g, Options{NumProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Flag().Trip(fault.CauseCanceled)
	if _, _, err := w.Run(1); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("tripped run: err = %v, want ErrCanceled", err)
	}
	// Without a reset the flag stays tripped.
	if _, _, err := w.Run(2); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("still-tripped run: err = %v, want ErrCanceled", err)
	}
	w.Flag().Reset()
	parent, _, err := w.Run(3)
	if err != nil {
		t.Fatalf("after reset: %v", err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// TestWorkspaceMidRunCancel trips the flag from inside the sweep (via
// the chunk-boundary test hook) and checks both the typed error and the
// documented cancellation-latency bound: after the trip each worker
// finishes at most the chunk in hand, so the cursor never advances past
// the chunks already claimed when the trip landed plus one per worker.
func TestWorkspaceMidRunCancel(t *testing.T) {
	g := gen.Chain(100_000)
	const chunk = 64
	p := 4
	w, err := NewWorkspace(g, Options{NumProcs: p, ChunkSize: chunk})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.testHook = func(tid int) {
		w.cancel.Trip(fault.CauseCanceled)
	}
	if _, _, err := w.Run(1); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("mid-run cancel: err = %v, want ErrCanceled", err)
	}
	// The first claim trips the flag; every other worker can have at most
	// one claim in flight that raced the trip, and nobody claims again
	// after polling a tripped flag.
	if claimed := w.cursor.Load(); claimed > int64(p*chunk) {
		t.Fatalf("cursor advanced to %d after trip, bound is p*chunk = %d", claimed, p*chunk)
	}
	w.testHook = nil
	w.Flag().Reset()
	parent, _, err := w.Run(2)
	if err != nil {
		t.Fatalf("after cancel: %v", err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
}

// TestWorkspaceReusableAfterPanic: an isolated worker panic degrades
// the run to the sequential repair — still a valid forest — and the
// parked team survives for the next request.
func TestWorkspaceReusableAfterPanic(t *testing.T) {
	g := gen.RandomConnected(400, 800, 5)
	w, err := NewWorkspace(g, Options{NumProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var fired atomic.Bool
	w.testHook = func(tid int) {
		if fired.CompareAndSwap(false, true) {
			panic("injected")
		}
	}
	parent, st, err := w.Run(1)
	if err != nil {
		t.Fatalf("panic run: err = %v", err)
	}
	if !st.DegradedToSeq || st.Panic == nil {
		t.Fatalf("panic run: DegradedToSeq=%v Panic=%v", st.DegradedToSeq, st.Panic)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("degraded forest: %v", err)
	}
	if got := countRoots(parent); got != 1 {
		t.Fatalf("degraded forest: %d roots, want 1", got)
	}
	w.testHook = nil
	w.Flag().Reset()
	parent, st, err = w.Run(2)
	if err != nil || st.DegradedToSeq {
		t.Fatalf("after panic: err=%v degraded=%v", err, st.DegradedToSeq)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("after panic: %v", err)
	}
}

// TestWorkspaceTeamDoesNotGrow: the parked team is created once — the
// goroutine count is flat across requests, and Close releases it.
func TestWorkspaceTeamDoesNotGrow(t *testing.T) {
	g := gen.Torus2D(16, 16)
	before := runtime.NumGoroutine()
	w, err := NewWorkspace(g, Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Run(1); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, _, err := w.Run(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Fatalf("goroutines grew with requests: %d -> %d", base, after)
	}
	w.Close()
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after Close: %d -> %d", before, after)
	}
	if _, _, err := w.Run(1); !errors.Is(err, ErrWorkspaceClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrWorkspaceClosed", err)
	}
}

func TestWorkspaceRejectsUnsupportedOptions(t *testing.T) {
	g := gen.Chain(10)
	bad := []Options{
		{NumProcs: 0},
		{NumProcs: 1, Model: smpmodel.New(1)},
		{NumProcs: 1, Obs: obs.New(1)},
		{NumProcs: 1, Cancel: &fault.Flag{}},
	}
	for i, o := range bad {
		if _, err := NewWorkspace(g, o); err == nil {
			t.Errorf("case %d: NewWorkspace accepted unsupported options", i)
		}
	}
}
