package spanuf

import (
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

// stitchAttach is the engine's splice idiom: reroot u's tree, then
// point u at v.
func stitchAttach(parent []graph.VID) func(u, v graph.VID) {
	return func(u, v graph.VID) {
		rerootAt(parent, u)
		parent[u] = v
	}
}

// rerootAt re-hangs a tree so that r becomes its root, reversing the
// parent pointers along the r-to-root path (the test-local copy of the
// core engine's helper).
func rerootAt(parent []graph.VID, r graph.VID) {
	prev := graph.None
	cur := r
	for cur != graph.None && parent[cur] != cur {
		next := parent[cur]
		parent[cur] = prev
		prev = cur
		cur = next
	}
	if cur != graph.None {
		parent[cur] = prev
	}
}

func TestStitchJoinsTwoTrees(t *testing.T) {
	// Two chains, one boundary edge: 0->1->2 (root 2) and 3->4 (root 4).
	parent := []graph.VID{1, 2, graph.None, 4, graph.None}
	boundary := []graph.Edge{{U: 0, V: 3}}
	s := NewStitchScratch(len(parent))
	hooks := s.Stitch(parent, boundary, nil, stitchAttach(parent))
	if hooks != 1 {
		t.Fatalf("hooks = %d, want 1", hooks)
	}
	g, err := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, pv := range parent {
		if pv == graph.None {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots after stitch, want 1", roots)
	}
}

func TestStitchSkipsSameComponent(t *testing.T) {
	// One tree, a boundary edge inside it: no hook, no mutation.
	parent := []graph.VID{1, 2, graph.None}
	want := append([]graph.VID(nil), parent...)
	s := NewStitchScratch(len(parent))
	if hooks := s.Stitch(parent, []graph.Edge{{U: 0, V: 2}}, nil, stitchAttach(parent)); hooks != 0 {
		t.Fatalf("hooks = %d, want 0", hooks)
	}
	for v := range parent {
		if parent[v] != want[v] {
			t.Fatalf("parent[%d] mutated: %d -> %d", v, want[v], parent[v])
		}
	}
}

// TestStitchLabelWalkAfterReroot is the regression test for the
// unlabeled-sentinel bug: with "unlabeled" encoded as uf[v] == v, a
// label walk that runs after an attach has rerooted a tree can pass
// straight through a live union-find representative (its uf entry still
// satisfies the identity test) and memoize it onto the other
// component's label — closing a uf cycle that find() then chases
// forever. The shape below triggers exactly that: the first edge's
// endpoints are the two roots (so no interior vertex is memoized), the
// attach points the star's hub into the second tree, and the second
// edge's label walk crosses the hub into memoized territory. Before the
// ufUnlabeled sentinel this test hung; now it must terminate with the
// second edge recognized as intra-component.
func TestStitchLabelWalkAfterReroot(t *testing.T) {
	// Shard [0,4): star 0,1,3 -> 2 (root 2). Shard [4,6): 4 -> 5 (root 5).
	parent := []graph.VID{2, 2, graph.None, 2, 5, graph.None}
	boundary := []graph.Edge{{U: 2, V: 4}, {U: 3, V: 5}}
	s := NewStitchScratch(len(parent))
	hooks := s.Stitch(parent, boundary, nil, stitchAttach(parent))
	if hooks != 1 {
		t.Fatalf("hooks = %d, want 1", hooks)
	}
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 2}, {U: 1, V: 2}, {U: 3, V: 2}, {U: 4, V: 5},
		{U: 2, V: 4}, {U: 3, V: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatal(err)
	}
}

// TestStitchRootedMatchesGeneral pins the fast path to the general one:
// when every shard forest is a single tree, StitchRooted must elect the
// same boundary edges and produce the same stitched forest as Stitch.
func TestStitchRootedMatchesGeneral(t *testing.T) {
	g := gen.Torus2D(16, 16)
	for _, shards := range []int{2, 3, 4, 7} {
		part, err := graph.PartitionCSR(g, shards, graph.CutVertexBalanced)
		if err != nil {
			t.Fatal(err)
		}
		// Grow one BFS tree per shard over its compact view.
		build := func() []graph.VID {
			parent := make([]graph.VID, g.NumVertices())
			for i := range parent {
				parent[i] = graph.None
			}
			for _, sh := range part.Shards {
				var queue []graph.VID
				root := sh.Lo
				parent[root] = root // the traversal's self-parent claim sentinel
				queue = append(queue, root)
				for len(queue) > 0 {
					v := queue[0]
					queue = queue[1:]
					for _, w := range sh.CSR.Neighbors32(v - sh.Lo) {
						if parent[w] == graph.None {
							parent[w] = v
							queue = append(queue, graph.VID(w))
						}
					}
				}
				parent[root] = graph.None
				for v := sh.Lo; v < sh.Hi; v++ {
					if parent[v] == graph.None && v != root {
						t.Fatalf("shards=%d: shard [%d,%d) not a single tree", shards, sh.Lo, sh.Hi)
					}
				}
			}
			return parent
		}

		general := build()
		sg := NewStitchScratch(g.NumVertices())
		hooksG := sg.Stitch(general, part.Boundary, nil, stitchAttach(general))

		rooted := build()
		sr := NewStitchScratch(g.NumVertices())
		shardOf := func(v graph.VID) int32 {
			for i := range part.Shards {
				if v < part.Shards[i].Hi {
					return int32(i)
				}
			}
			panic("vertex out of range")
		}
		hooksR := sr.StitchRooted(len(part.Shards), shardOf, part.Boundary, nil, stitchAttach(rooted))

		if hooksG != hooksR {
			t.Fatalf("shards=%d: general %d hooks, rooted %d", shards, hooksG, hooksR)
		}
		if hooksR != len(part.Shards)-1 {
			t.Fatalf("shards=%d: %d hooks, want %d", shards, hooksR, len(part.Shards)-1)
		}
		for v := range general {
			if rooted[v] != general[v] {
				t.Fatalf("shards=%d: parent[%d] = %d rooted, %d general", shards, v, rooted[v], general[v])
			}
		}
		if err := verify.Forest(g, rooted); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

// TestStitchChargesModel checks the stitch's cost accounting shape: the
// general path pays the O(n) label rearm plus pointer chases for the
// walks, while the rooted fast path pays neither — its footprint is the
// boundary stream at contiguous rates plus one CAS per hook.
func TestStitchChargesModel(t *testing.T) {
	g := gen.Torus2D(16, 16)
	part, err := graph.PartitionCSR(g, 2, graph.CutVertexBalanced)
	if err != nil {
		t.Fatal(err)
	}
	parent := make([]graph.VID, g.NumVertices())
	mkForest := func() {
		for i := range parent {
			parent[i] = graph.None
		}
		for _, sh := range part.Shards {
			for v := sh.Lo + 1; v < sh.Hi; v++ {
				parent[v] = v - 1 // a chain per shard, root at sh.Lo
			}
		}
	}
	shardOf := func(v graph.VID) int32 {
		if v < part.Shards[1].Lo {
			return 0
		}
		return 1
	}

	mkForest()
	mg := smpmodel.New(1)
	s := NewStitchScratch(g.NumVertices())
	s.Stitch(parent, part.Boundary, mg.Probe(0), stitchAttach(parent))
	general := mg.MaxPerProc()

	mkForest()
	mr := smpmodel.New(1)
	s2 := NewStitchScratch(g.NumVertices())
	s2.StitchRooted(2, shardOf, part.Boundary, mr.Probe(0), stitchAttach(parent))
	rooted := mr.MaxPerProc()

	if general.PointerChases == 0 {
		t.Fatal("general path charged no pointer chases for its label walks")
	}
	if general.Contig < int64(g.NumVertices()) {
		t.Fatalf("general path charged Contig %d, want >= n = %d for the rearm",
			general.Contig, g.NumVertices())
	}
	if rooted.PointerChases != 0 {
		t.Fatalf("rooted path charged %d pointer chases, want 0", rooted.PointerChases)
	}
	if rooted.Contig >= int64(g.NumVertices()) {
		t.Fatalf("rooted path charged Contig %d, want < n (no O(n) rearm)", rooted.Contig)
	}
	if general.CASOps != 1 || rooted.CASOps != 1 {
		t.Fatalf("hook CAS charges: general %d, rooted %d, want 1 each", general.CASOps, rooted.CASOps)
	}
}
