package spanuf

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"spantree/internal/barrier"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/obs"
)

// ErrWorkspaceClosed is returned by Run after Close.
var ErrWorkspaceClosed = errors.New("spanuf: Run on a closed Workspace")

// defaultClaimChunk is the fixed vertex-range chunk a pooled worker
// claims per shared-cursor fetch when Options.ChunkSize is 0.
const defaultClaimChunk = 256

// Workspace is a reusable runtime for the CAS-hook sweep on one fixed
// graph, the spanuf counterpart of core.Workspace: the union-find
// arrays, the rooting scratch, the recorder, and a parked team of p
// worker goroutines are all allocated once at construction, so a warmed
// workspace executes Run with zero steady-state heap allocations.
//
// The sweep has no queues to steal from, so instead of par.ForDynamic
// (whose per-run goroutine spawn would allocate) the parked workers
// claim fixed vertex-range chunks off one shared atomic cursor. The
// cancel-flag poll rides each chunk claim, preserving the
// one-chunk-per-worker cancellation-latency bound of the one-shot path.
//
// A Workspace is NOT safe for concurrent use: one Run at a time. Close
// releases the parked team.
type Workspace struct {
	g      *graph.Graph
	cg     *graph.CSR32
	n, p   int
	chunk  int
	uf     []int32
	hooks  []int64
	parent []graph.VID
	root   *rootScratch
	cells  []counts
	ow     []*obs.Worker
	rec    *obs.Recorder
	cancel *fault.Flag

	cursor atomic.Int64
	bar    *barrier.Sense
	wake   []chan struct{}
	wg     sync.WaitGroup
	stats  Stats
	closed bool

	// testHook, when non-nil, runs after every chunk claim in sweep —
	// tests use it to inject panics and trip the flag at deterministic
	// points, like core's workspace hook. Nil in production.
	testHook func(tid int)
}

// NewWorkspace builds a workspace for g. Options that allocate per run
// or inject faults (Model, Obs, Chaos, Cancel) are rejected — a
// workspace is the serving fast path, not the experiment harness; it
// owns its cancel flag (see Flag) and its recorder. ChunkPolicy is
// ignored: the parked sweep always claims fixed chunks of ChunkSize
// (0 means 256) off a shared cursor.
func NewWorkspace(g *graph.Graph, opt Options) (*Workspace, error) {
	if opt.NumProcs < 1 {
		return nil, fmt.Errorf("spanuf: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	switch {
	case opt.Model != nil:
		return nil, errors.New("spanuf: Workspace does not support a cost Model")
	case opt.Obs != nil:
		return nil, errors.New("spanuf: Workspace does not support an external Obs recorder")
	case opt.Chaos != nil:
		return nil, errors.New("spanuf: Workspace does not support chaos injection")
	case opt.Cancel != nil:
		return nil, errors.New("spanuf: Workspace owns its cancel flag; use Flag instead of Options.Cancel")
	}
	n := g.NumVertices()
	p := opt.NumProcs
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = defaultClaimChunk
	}
	w := &Workspace{
		g:      g,
		n:      n,
		p:      p,
		chunk:  chunk,
		uf:     make([]int32, n),
		hooks:  make([]int64, n),
		parent: make([]graph.VID, n),
		root:   newRootScratch(n),
		cells:  make([]counts, p),
		ow:     make([]*obs.Worker, p),
		rec:    obs.New(p),
		cancel: &fault.Flag{},
	}
	if opt.Compact {
		// Built once here, so pooled runs stay allocation-free on the
		// compact layout too.
		cg, err := graph.CompactOf(g)
		if err != nil {
			return nil, fmt.Errorf("spanuf: %w", err)
		}
		w.cg = cg
	}
	for tid := 0; tid < p; tid++ {
		w.ow[tid] = w.rec.Worker(tid)
	}

	// The parked team: p goroutines created once, woken per run, joined
	// per run through the reused sense-reversing barrier (the coordinator
	// is the extra participant).
	w.bar = barrier.NewSense(p + 1)
	w.bar.Observe(w.rec)
	w.wake = make([]chan struct{}, p)
	for tid := range w.wake {
		w.wake[tid] = make(chan struct{})
		w.wg.Add(1)
		go func(tid int) {
			defer w.wg.Done()
			for range w.wake[tid] {
				w.runOne(tid)
			}
		}(tid)
	}
	return w, nil
}

// Flag returns the workspace's cancel flag, with the same reuse
// contract as core.Workspace.Flag: callers that arm it must Reset it
// before the next Run — Run itself never resets the flag.
func (w *Workspace) Flag() *fault.Flag { return w.cancel }

// NumProcs returns the workspace's worker count.
func (w *Workspace) NumProcs() int { return w.p }

// Graph returns the graph the workspace was built for.
func (w *Workspace) Graph() *graph.Graph { return w.g }

// Run executes one sweep on the pooled buffers. The seed is accepted
// for Session API parity and ignored — the sweep is seed-free (its only
// nondeterminism at p > 1 is the schedule). The returned parent slice
// and Stats are owned by the workspace and valid only until the next
// Run.
//
// Cancellation follows the one-shot contract: a tripped flag drains the
// team within one chunk per worker and Run returns the flag's typed
// error with partial stats. An isolated worker panic degrades to a
// sequential repair — a panic can land between a won hook CAS and its
// link store, leaving the union-find inconsistent, so the repair resets
// the pooled arrays and re-runs the whole sweep sequentially; the
// caller still receives a valid forest with the PanicError in
// Stats.Panic. The workspace remains reusable after any outcome.
func (w *Workspace) Run(seed uint64) ([]graph.VID, *Stats, error) {
	if w.closed {
		return nil, nil, ErrWorkspaceClosed
	}
	_ = seed

	// Rearm the shared state. Everything below is written by this
	// goroutine before the wake sends, which happen-before the workers'
	// reads.
	for i := range w.uf {
		w.uf[i] = int32(i)
	}
	for i := range w.hooks {
		w.hooks[i] = nobody
	}
	clear(w.cells)
	w.rec.Reset()
	w.cursor.Store(0)
	w.stats = Stats{}

	if w.cancel.Tripped() {
		// Canceled before the sweep started (e.g. an already-expired
		// deadline): don't wake the team.
		return w.stop()
	}
	for _, c := range w.wake {
		c <- struct{}{}
	}
	w.bar.Wait(w.p) // the coordinator is the extra participant
	if w.cancel.Tripped() {
		return w.stop()
	}
	w.finish()
	return w.parent, &w.stats, nil
}

// finish runs the rooting epilogue on the coordinator and folds the
// per-worker tallies into the run stats.
func (w *Workspace) finish() {
	w.stats = statsFromCells(w.cells)
	w.stats.TreeEdges = rootForest(w.hooks, w.parent, w.root, nil)
}

// stop resolves a run whose flag tripped: context stops return the
// typed error with partial stats; a worker panic triggers the
// sequential repair described on Run.
func (w *Workspace) stop() ([]graph.VID, *Stats, error) {
	w.stats = statsFromCells(w.cells)
	if w.cancel.Cause() == fault.CausePanicked {
		w.stats.Panic = w.cancel.Panic()
		w.stats.DegradedToSeq = true
		w.runSeq()
		w.stats.TreeEdges = rootForest(w.hooks, w.parent, w.root, nil)
		return w.parent, &w.stats, nil
	}
	return nil, &w.stats, w.cancel.Err()
}

// runSeq rebuilds the forest sequentially on the pooled buffers after a
// panic: the interrupted sweep's union-find may hold a won hook without
// its link store, so repair starts from scratch rather than resuming.
func (w *Workspace) runSeq() {
	for i := range w.uf {
		w.uf[i] = int32(i)
	}
	for i := range w.hooks {
		w.hooks[i] = nobody
	}
	var ct counts
	h := hooker{uf: w.uf, hooks: w.hooks, ct: &ct}
	for vi := 0; vi < w.n; vi++ {
		v := graph.VID(vi)
		for _, u := range w.g.Neighbors(v) {
			if u <= v {
				continue
			}
			h.hook(v, u)
		}
	}
}

// runOne executes one parked worker's share of one run, with the same
// isolation contract as the one-shot team: the worker reaches the join
// barrier whatever happens in its body, and a panic trips the run flag
// so the teammates drain at their next chunk claim.
func (w *Workspace) runOne(tid int) {
	defer w.bar.Wait(tid)
	defer func() {
		if r := recover(); r != nil {
			w.recoverWorker(tid, r)
		}
	}()
	w.sweep(tid)
}

func (w *Workspace) recoverWorker(tid int, r any) {
	w.ow[tid].Incr(obs.PanicsRecovered)
	w.cancel.TripPanic(&fault.PanicError{
		Worker: tid, Value: r, Stack: debug.Stack(),
	})
}

// sweep is the parked worker body: claim fixed vertex-range chunks off
// the shared cursor and run every in-range arc through the hook
// election. The flag poll rides the chunk claim the loop already pays
// for, so after a trip each worker finishes at most the chunk in hand —
// the same cancellation-latency bound par.ForDynamic documents.
func (w *Workspace) sweep(tid int) {
	h := hooker{uf: w.uf, hooks: w.hooks, ct: &w.cells[tid]}
	ow := w.ow[tid]
	var lc obs.Local
	for {
		if w.cancel.Tripped() {
			lc.Incr(obs.Cancels)
			break
		}
		start := int(w.cursor.Add(int64(w.chunk))) - w.chunk
		if start >= w.n {
			break
		}
		if h := w.testHook; h != nil {
			h(tid)
		}
		end := start + w.chunk
		if end > w.n {
			end = w.n
		}
		lc.Incr(obs.ChunkDrains)
		lc.Add(obs.DrainedVertices, int64(end-start))
		lc.Incr(obs.DrainHistBucket(end - start))
		if w.cg != nil {
			for vi := start; vi < end; vi++ {
				v := graph.VID(vi)
				nb := w.cg.Neighbors32(v)
				lc.Add(obs.EdgesScanned, int64(len(nb)))
				for _, u32 := range nb {
					u := graph.VID(u32)
					if u <= v {
						continue
					}
					h.hook(v, u)
				}
			}
		} else {
			for vi := start; vi < end; vi++ {
				v := graph.VID(vi)
				nb := w.g.Neighbors(v)
				lc.Add(obs.EdgesScanned, int64(len(nb)))
				for _, u := range nb {
					if u <= v {
						continue
					}
					h.hook(v, u)
				}
			}
		}
	}
	lc.Add(obs.HooksWon, h.ct.won)
	lc.Add(obs.HooksLost, h.ct.lost)
	lc.Add(obs.UFFinds, h.ct.finds)
	lc.Add(obs.CompressionWrites, h.ct.compress)
	lc.FlushTo(ow)
}

// Close retires the parked team and marks the workspace unusable. It
// must not race a Run. Idempotent.
func (w *Workspace) Close() {
	if w.closed {
		return
	}
	w.closed = true
	for _, c := range w.wake {
		close(c)
	}
	w.wg.Wait()
}
