package spanuf

// Cross-shard stitch: the CAS-hook sweep of this package, specialized to
// the contracted shard-component graph a sharded traversal leaves
// behind. After per-shard teams have grown their forests, every shard
// component is a tree and the only edges that can still join components
// are the partition's boundary edges. Contracting each component to its
// tree root turns the boundary list into a (multi)graph over component
// roots; one hook sweep over it elects, per pair of components, exactly
// one boundary edge to attach through — the same smaller-root election
// the parallel sweep performs, run by the coordinator between the team
// join and the final normalize.
//
// The coordinator runs the sweep sequentially (it is O(boundary) with
// near-constant-time finds, a vanishing fraction of the traversal), but
// it is charged to the model as the hook sweep it is: a pointer chase
// per union-find step, one CAS per hook election, a contiguous stream
// over the boundary list, plus the O(n) label rearm.

import (
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
)

// StitchScratch is the pooled state of the cross-shard stitch pass: a
// union-find array over vertex ids that doubles as the lazy
// component-label cache. It is sized once for a graph and reused across
// runs without allocating (Stitch rearms it on entry).
type StitchScratch struct {
	uf []int32
}

// ufUnlabeled marks a vertex whose component label has not been walked
// yet. It must be distinct from every vertex id: a union-find
// representative legitimately satisfies uf[r] == r, and attach()
// mutates parent[], so a later label walk can pass straight through a
// live representative — an identity-encoded "unlabeled" state would
// let that walk re-memoize the representative onto a label whose chain
// leads back to it, closing a cycle that find() then chases forever.
const ufUnlabeled = int32(-1)

// NewStitchScratch returns stitch scratch for an n-vertex graph.
func NewStitchScratch(n int) *StitchScratch {
	return &StitchScratch{uf: make([]int32, n)}
}

// Stitch joins the per-shard forests recorded in parent through the
// boundary edges. parent must hold completed shard forests with roots
// already normalized to graph.None (the self-parent claim sentinel is
// also tolerated, mirroring rerootAt). For every boundary edge whose
// endpoints lie in different components, Stitch elects the edge via a
// union-find hook and immediately invokes attach(u, v), which must
// splice u's tree under v (the fallback's reroot-and-point idiom);
// same-component edges are skipped. Returns the number of hooks won,
// i.e. attachments made. Stitch never allocates, and probe may be nil
// for unmodeled runs.
func (s *StitchScratch) Stitch(parent []graph.VID, boundary []graph.Edge, probe *smpmodel.Probe, attach func(u, v graph.VID)) int {
	// Rearm the label cache: every vertex starts unlabeled. Labels are
	// materialized on first walk (uf[root] = root), so representatives
	// are always distinguishable from unwalked vertices.
	for i := range s.uf {
		s.uf[i] = ufUnlabeled
	}
	probe.Contig(int64(len(s.uf)))

	hooks := 0
	for _, e := range boundary {
		// Stream the boundary list itself.
		probe.Contig(1)
		ru := s.find(s.label(parent, e.U, probe), probe)
		rv := s.find(s.label(parent, e.V, probe), probe)
		if ru == rv {
			continue
		}
		// Hook election between two live component roots: the parallel
		// sweep pays a CAS here; the winner links the larger root under
		// the smaller, and the edge is applied on the spot. Applying
		// immediately keeps parent[] and the union-find merging in
		// lockstep, so later label walks that cross an attachment still
		// resolve to the merged component.
		probe.CAS(1)
		if ru > rv {
			ru, rv = rv, ru
		}
		s.uf[rv] = ru
		attach(e.U, e.V)
		hooks++
	}
	return hooks
}

// StitchRooted is the stitch fast path for the case the shard teams
// report directly: no team ever reseeded a component, so every shard
// forest is a single tree and a vertex's component label is simply its
// shard index. No parent walks, no O(n) label rearm — the union-find
// runs over the S shard slots (reusing the scratch array's prefix), and
// the modeled charges shrink to the boundary stream plus one CAS per
// hook. The slot lookups and find steps are charged at the contiguous
// rate, not the pointer-chase rate: the cut table and the S-entry
// union-find both fit in a cache line or two and stay resident for the
// whole sweep, whereas Chase prices the DRAM-latency dependent loads of
// a walk through parent[]. Election order, and therefore the output
// forest, is identical to Stitch: both pick the first boundary edge
// joining two live components, in boundary order.
func (s *StitchScratch) StitchRooted(shards int, shardOf func(graph.VID) int32, boundary []graph.Edge, probe *smpmodel.Probe, attach func(u, v graph.VID)) int {
	uf := s.uf[:shards]
	for i := range uf {
		uf[i] = int32(i)
	}
	probe.Contig(int64(shards))
	find := func(x int32) int32 {
		r := x
		steps := int64(0)
		for uf[r] != r {
			r = uf[r]
			steps++
		}
		for uf[x] != r {
			uf[x], x = r, uf[x]
			steps += 2
		}
		probe.Contig(steps)
		return r
	}

	hooks := 0
	for _, e := range boundary {
		// Stream the boundary list, resolve both endpoints' shard slots.
		probe.Contig(3)
		ru := find(shardOf(e.U))
		rv := find(shardOf(e.V))
		if ru == rv {
			continue
		}
		probe.CAS(1)
		if ru > rv {
			ru, rv = rv, ru
		}
		uf[rv] = ru
		attach(e.U, e.V)
		hooks++
	}
	return hooks
}

// label resolves vertex v to its component label: the root of v's tree
// at the time the path from v was first walked. Labels are memoized
// along the walked path, so the total labeling cost is amortized linear
// in the vertices touched; a memoized label may be stale after later
// unions, which find() resolves.
func (s *StitchScratch) label(parent []graph.VID, v graph.VID, probe *smpmodel.Probe) int32 {
	r := v
	chases := int64(0)
	for s.uf[r] == ufUnlabeled {
		p := parent[r]
		if p == graph.None || p == r {
			break
		}
		r = p
		chases++
	}
	lab := s.uf[r]
	if lab == ufUnlabeled {
		// First walk to reach this tree root: materialize it as its own
		// union-find representative, which becomes the component label.
		lab = int32(r)
		s.uf[r] = lab
	}
	writes := int64(0)
	for cur := v; cur != r; cur = parent[cur] {
		if s.uf[cur] == ufUnlabeled {
			s.uf[cur] = lab
			writes++
		}
	}
	probe.Chase(chases + writes)
	return lab
}

// find chases a label to its current union-find representative with full
// path compression, charged like the sweep's find: one pointer chase per
// step and two per compression write.
func (s *StitchScratch) find(x int32, probe *smpmodel.Probe) int32 {
	r := x
	chases := int64(0)
	for s.uf[r] != r {
		r = s.uf[r]
		chases++
	}
	writes := int64(0)
	for s.uf[x] != r {
		s.uf[x], x = r, s.uf[x]
		writes++
	}
	probe.Chase(chases + 2*writes)
	return r
}
