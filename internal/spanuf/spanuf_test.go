package spanuf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spantree/internal/fault"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
	"spantree/internal/verify"
)

// fig4Families returns scaled-down instances of all ten Fig. 4 graph
// families — the same constructors the harness uses at paper scale.
func fig4Families() map[string]*graph.Graph {
	const n, s = 1024, 32
	return map[string]*graph.Graph{
		"torus-rowmajor": gen.Torus2D(s, s),
		"torus-random":   graph.RandomRelabel(gen.Torus2D(s, s), 0xA5A5),
		"random-nlogn":   gen.Random(n, n*10, 11),
		"2d60":           gen.Mesh2D(s, s, 0.60, 12),
		"3d40":           gen.Mesh3D(10, 10, 10, 0.40, 13),
		"ad3":            gen.AD3(n, 14),
		"geo-flat":       gen.GeoFlat(n, gen.DefaultGeoFlatParams(), 15),
		"geo-hier":       gen.GeoHier(n, gen.DefaultGeoHierParams(), 16),
		"chain-seq":      gen.Chain(n),
		"chain-random":   graph.RandomRelabel(gen.Chain(n), 0x5A5A),
	}
}

func countRoots(parent []graph.VID) int {
	roots := 0
	for _, p := range parent {
		if p == graph.None {
			roots++
		}
	}
	return roots
}

// TestMatchesSequentialUnionFind is the main property test: on every
// Fig. 4 family and p ∈ {1, 4, 8}, the sweep's output is a valid
// spanning forest with exactly the component count the sequential
// union-find reference finds.
func TestMatchesSequentialUnionFind(t *testing.T) {
	for name, g := range fig4Families() {
		seq := spanseq.UnionFind(g, nil)
		wantRoots := countRoots(seq)
		if wantRoots != graph.NumComponents(g) {
			t.Fatalf("%s: sequential reference disagrees with NumComponents", name)
		}
		for _, p := range []int{1, 4, 8} {
			parent, st, err := SpanningForest(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if got := countRoots(parent); got != wantRoots {
				t.Fatalf("%s p=%d: %d roots, sequential union-find %d", name, p, got, wantRoots)
			}
			if st.TreeEdges != g.NumVertices()-wantRoots {
				t.Fatalf("%s p=%d: TreeEdges = %d, want n-comps = %d",
					name, p, st.TreeEdges, g.NumVertices()-wantRoots)
			}
			if g.NumEdges() > 0 && st.Finds == 0 {
				t.Fatalf("%s p=%d: no finds recorded", name, p)
			}
		}
	}
}

// TestDegenerateShapes covers the edges the family constructors skip.
func TestDegenerateShapes(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2),
		gen.Star(64), gen.Complete(16),
		graph.Union(gen.Chain(10), gen.Star(8), gen.Cycle(7), gen.Random(30, 45, 5)),
	} {
		for _, p := range []int{1, 3} {
			parent, st, err := SpanningForest(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if want := g.NumVertices() - graph.NumComponents(g); st.TreeEdges != want {
				t.Fatalf("%v p=%d: TreeEdges = %d, want %d", g, p, st.TreeEdges, want)
			}
		}
	}
}

// TestP1Deterministic: with one processor the sweep visits arcs in
// vertex order with no races, so repeated runs are byte-identical.
func TestP1Deterministic(t *testing.T) {
	g := gen.GeoHier(800, gen.DefaultGeoHierParams(), 21)
	first, firstStats, err := SpanningForest(g, Options{NumProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		parent, st, err := SpanningForest(g, Options{NumProcs: 1})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for v := range first {
			if parent[v] != first[v] {
				t.Fatalf("run %d: parent[%d] = %d, first run %d", run, v, parent[v], first[v])
			}
		}
		if st != firstStats {
			t.Fatalf("run %d: stats %+v, first run %+v", run, st, firstStats)
		}
	}
	if firstStats.HooksLost != 0 {
		t.Fatalf("p=1 lost %d hook elections with no competitors", firstStats.HooksLost)
	}
}

// TestWideCompactAgree: the CSR32 mirror only changes scan traffic, not
// the visit order, so at p=1 the two layouts produce identical forests;
// at p>1 the compact sweep must still be a valid forest.
func TestWideCompactAgree(t *testing.T) {
	g := gen.Random(600, 2400, 31)
	wide, _, err := SpanningForest(g, Options{NumProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	compact, _, err := SpanningForest(g, Options{NumProcs: 1, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range wide {
		if compact[v] != wide[v] {
			t.Fatalf("parent[%d]: compact %d, wide %d", v, compact[v], wide[v])
		}
	}
	parent, _, err := SpanningForest(g, Options{NumProcs: 4, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatalf("compact p=4: %v", err)
	}
}

// TestHookingRuleModel is a quick.Check model of the smaller-to-larger
// hooking rule: drive the hooker over a random arc schedule and check
// the lock-free safety invariant directly — every non-root's parent is
// strictly larger than the vertex (so parent walks terminate), hook
// wins equal tree edges, and the final partition matches a trivial
// reference union-find.
func TestHookingRuleModel(t *testing.T) {
	model := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(63)
		m := rng.Intn(4 * n)
		g := gen.Random(n, m, uint64(seed)+1)

		// The arc schedule: every (v,w) with w > v, shuffled, some twice
		// (re-processing an arc must be harmless: its roots are equal).
		type arc struct{ v, w graph.VID }
		var arcs []arc
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(graph.VID(v)) {
				if w > graph.VID(v) {
					arcs = append(arcs, arc{graph.VID(v), w})
				}
			}
		}
		arcs = append(arcs, arcs[:len(arcs)/3]...)
		rng.Shuffle(len(arcs), func(i, j int) { arcs[i], arcs[j] = arcs[j], arcs[i] })

		uf := make([]int32, n)
		hooks := make([]int64, n)
		for i := range uf {
			uf[i] = int32(i)
			hooks[i] = nobody
		}
		var ct counts
		h := hooker{uf: uf, hooks: hooks, ct: &ct}
		won := 0
		for _, a := range arcs {
			if h.hook(a.v, a.w) {
				won++
			}
		}

		// The safety invariant: non-roots point strictly upward (so parent
		// walks terminate), and a vertex is a union-find root exactly when
		// its hook slot was never won — a root's parent is only ever
		// written by the hook that claims it.
		for i := 0; i < n; i++ {
			if uf[i] != int32(i) && uf[i] <= int32(i) {
				t.Logf("seed %d: uf[%d] = %d violates the strictly-larger rule", seed, i, uf[i])
				return false
			}
			if (uf[i] == int32(i)) != (hooks[i] == nobody) {
				t.Logf("seed %d: uf[%d] = %d but hooks[%d] = %d", seed, i, uf[i], i, hooks[i])
				return false
			}
		}
		comps := graph.NumComponents(g)
		if won != n-comps {
			t.Logf("seed %d: %d hook wins, want n-comps = %d", seed, won, n-comps)
			return false
		}
		// Hook wins and roots partition the vertices.
		roots := 0
		for i := range hooks {
			if hooks[i] == nobody {
				roots++
			}
		}
		if roots != comps {
			t.Logf("seed %d: %d unhooked slots, want %d components", seed, roots, comps)
			return false
		}
		return true
	}
	if err := quick.Check(model, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestObsCounters: the per-worker tallies flushed into the recorder
// must reconcile with the run's Stats, and hook wins with tree edges.
func TestObsCounters(t *testing.T) {
	g := gen.RandomConnected(500, 2000, 41)
	rec := obs.New(4)
	parent, st, err := SpanningForest(g, Options{NumProcs: 4, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Forest(g, parent); err != nil {
		t.Fatal(err)
	}
	if got := rec.Total(obs.HooksWon); got != int64(st.TreeEdges) {
		t.Errorf("HooksWon total = %d, TreeEdges = %d", got, st.TreeEdges)
	}
	if got := rec.Total(obs.HooksLost); got != st.HooksLost {
		t.Errorf("HooksLost total = %d, stats %d", got, st.HooksLost)
	}
	if got := rec.Total(obs.UFFinds); got != st.Finds {
		t.Errorf("UFFinds total = %d, stats %d", got, st.Finds)
	}
	if got := rec.Total(obs.CompressionWrites); got != st.CompressionWrites {
		t.Errorf("CompressionWrites total = %d, stats %d", got, st.CompressionWrites)
	}
	if rec.Total(obs.EdgesScanned) != 2*int64(g.NumEdges()) {
		t.Errorf("EdgesScanned = %d, want 2m = %d", rec.Total(obs.EdgesScanned), 2*g.NumEdges())
	}
}

// TestModeledDeterministic: with a cost model attached ForDynamic runs
// static blocks, so modeled counter totals — including the new CAS and
// pointer-chase classes — are reproducible run to run.
func TestModeledDeterministic(t *testing.T) {
	g := gen.GeoFlat(900, gen.DefaultGeoFlatParams(), 51)
	run := func() smpmodel.Counters {
		m := smpmodel.New(4)
		if _, _, err := SpanningForest(g, Options{NumProcs: 4, Model: m}); err != nil {
			t.Fatal(err)
		}
		return m.Total()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("modeled totals differ across runs:\n%+v\n%+v", a, b)
	}
	if a.CASOps == 0 {
		t.Error("no CAS operations charged")
	}
	if a.PointerChases == 0 {
		t.Error("no pointer chases charged")
	}
}

// TestCancelPreTripped: a flag tripped before the run starts yields the
// typed error without output.
func TestCancelPreTripped(t *testing.T) {
	g := gen.Torus2D(16, 16)
	flag := &fault.Flag{}
	flag.Trip(fault.CauseCanceled)
	_, _, err := SpanningForest(g, Options{NumProcs: 2, Cancel: flag})
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRejectsBadProcs(t *testing.T) {
	if _, _, err := SpanningForest(gen.Chain(4), Options{}); err == nil {
		t.Fatal("NumProcs = 0 accepted")
	}
}

func TestPackArcRoundTrip(t *testing.T) {
	for _, c := range [][2]graph.VID{{0, 1}, {5, 99999}, {1<<31 - 2, 1<<31 - 1}} {
		v, w := unpackArc(packArc(c[0], c[1]))
		if v != c[0] || w != c[1] {
			t.Fatalf("packArc(%d,%d) round-trips to (%d,%d)", c[0], c[1], v, w)
		}
	}
}
