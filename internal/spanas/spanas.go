// Package spanas implements the textbook Awerbuch-Shiloach connectivity
// algorithm adapted to spanning trees — the second member of the
// graft-and-shortcut family the paper surveys ("Shiloach and Vishkin and
// Awerbuch and Shiloach developed algorithms that run in O(log n) time
// with O((m+n) log n) work").
//
// Where the paper's SV adaptation (package spansv) shortcuts every tree
// to a rooted star after each graft round, Awerbuch-Shiloach performs
// exactly one pointer-jump per iteration and instead maintains explicit
// star flags, with two hook sub-steps per iteration:
//
//  1. conditional star hook: a star root hooks onto a smaller-labeled
//     neighboring component;
//  2. unconditional star hook: a star that is *still* a star after
//     sub-step 1 (i.e. was stagnant and received no hooks) hooks onto
//     any neighboring component.
//
// Recomputing the star flags between the sub-steps is what makes the
// unconditional hook acyclic: a component that was hooked into during
// sub-step 1 has depth two and is no longer a star, so two components
// can never unconditionally hook onto each other in the same iteration.
//
// The priority-CRCW writes of the PRAM original become CAS elections per
// root, the same SMP adaptation the paper applies to SV.
package spanas

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
	"spantree/internal/spanseq"
)

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors (>= 1).
	NumProcs int
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// MaxIterations caps iterations; 0 means 2n+4 (always sufficient:
	// every iteration either hooks or halves some tree height).
	MaxIterations int
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) running the detect/hook/jump sweeps.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips);
	// Chaos the fault injector (nil injects nothing).
	Cancel *fault.Flag
	Chaos  *chaos.Injector
}

// Stats reports what a run did.
type Stats struct {
	// Iterations counts hook-and-jump iterations.
	Iterations int
	// ConditionalHooks and UnconditionalHooks split the grafts by the
	// sub-step that performed them.
	ConditionalHooks   int
	UnconditionalHooks int
}

const nobody = int64(-1)

func packArc(v, w graph.VID) int64 {
	return int64(uint64(uint32(v))<<32 | uint64(uint32(w)))
}

func unpackArc(x int64) (v, w graph.VID) {
	return graph.VID(uint32(uint64(x) >> 32)), graph.VID(uint32(uint64(x)))
}

// SpanningForest runs Awerbuch-Shiloach and returns the forest as a
// parent array plus statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("spanas: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	n := g.NumVertices()
	maxIter := opt.MaxIterations
	if maxIter == 0 {
		maxIter = 2*n + 4
	}

	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	star := make([]int32, n) // 1 = vertex is in a star
	// changed[r] marks roots whose component hooked or was hooked into
	// during sub-step 1 of the current iteration. The unconditional
	// sub-step may only move *unchanged* stars: a singleton hooking onto
	// a star keeps the target depth-1 (still a star!), and without this
	// flag two such stars could unconditionally hook onto each other,
	// forming a 2-cycle. Adjacent unchanged stars cannot both exist —
	// the larger-rooted one would have hooked conditionally — so the
	// unconditional hooks of unchanged stars always land in components
	// that do not hook this sub-step, keeping the hook digraph acyclic.
	changed := make([]int32, n)
	winner := make([]int64, n)

	team := par.NewTeam(opt.NumProcs, opt.Model).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	edgeBufs := make([][]graph.Edge, opt.NumProcs)
	condBufs := make([]int, opt.NumProcs)
	uncondBufs := make([]int, opt.NumProcs)
	iterations := 0

	// detectStars recomputes star[v] for all v: v is in a star iff its
	// root's whole tree has depth <= 1. Classic three-pass detection.
	detectStars := func(c *par.Ctx, probe *smpmodel.Probe) {
		c.ForDynamic(n, func(i int) {
			star[i] = 1
			probe.NonContig(1)
		})
		c.Barrier()
		c.ForDynamic(n, func(vi int) {
			v := graph.VID(vi)
			probe.NonContig(2)
			dv := d[v]
			ddv := d[dv]
			if dv != ddv {
				// v is at depth >= 2: neither v's root-chain nor the
				// grandparent's component is a star.
				atomic.StoreInt32(&star[v], 0)
				atomic.StoreInt32(&star[ddv], 0)
				probe.NonContig(2)
			}
		})
		c.Barrier()
		c.ForDynamic(n, func(vi int) {
			v := graph.VID(vi)
			probe.NonContig(1)
			if atomic.LoadInt32(&star[d[v]]) == 0 {
				atomic.StoreInt32(&star[v], 0)
			}
		})
		c.Barrier()
	}

	// hookStep runs one election + apply pass. unconditional selects the
	// sub-step rule.
	hookStep := func(c *par.Ctx, probe *smpmodel.Probe, unconditional bool,
		myEdges *[]graph.Edge, hooks *int) bool {
		c.ForDynamic(n, func(vi int) {
			v := graph.VID(vi)
			probe.NonContig(2)
			if atomic.LoadInt32(&star[v]) == 0 {
				return
			}
			rv := d[v]
			if unconditional && atomic.LoadInt32(&changed[rv]) != 0 {
				return // only unchanged stars may hook unconditionally
			}
			nb := g.Neighbors(v)
			probe.Contig(int64(len(nb)))
			for _, w := range nb {
				probe.NonContig(2)
				rw := d[w]
				if unconditional {
					if rw == rv {
						continue
					}
				} else if rw >= rv {
					continue
				}
				probe.NonContig(1)
				if atomic.CompareAndSwapInt64(&winner[rv], nobody, packArc(v, w)) {
					break
				}
			}
		})
		c.Barrier()
		hooked := false
		c.ForDynamic(n, func(ri int) {
			r := graph.VID(ri)
			probe.NonContig(1)
			arc := winner[r]
			if arc == nobody {
				return
			}
			v, w := unpackArc(arc)
			probe.NonContig(2)
			target := atomic.LoadInt32(&d[w])
			atomic.StoreInt32(&d[r], target)
			// Mark both sides: the hooked root and the (depth-1) target
			// root it now hangs under. Deeper stale targets are excluded
			// by the star recomputation instead.
			atomic.StoreInt32(&changed[r], 1)
			atomic.StoreInt32(&changed[target], 1)
			*myEdges = append(*myEdges, graph.Edge{U: v, V: w})
			*hooks++
			hooked = true
			winner[r] = nobody
		})
		return c.ReduceOr(hooked)
	}

	err := team.RunErr(func(c *par.Ctx) {
		probe := c.Probe()
		var myEdges []graph.Edge
		cond, uncond := 0, 0
		defer func() {
			edgeBufs[c.TID()] = myEdges
			condBufs[c.TID()] = cond
			uncondBufs[c.TID()] = uncond
		}()
		c.ForDynamic(n, func(i int) { winner[i] = nobody })
		c.Barrier()

		for iter := 0; iter < maxIter; iter++ {
			c.ForDynamic(n, func(i int) {
				changed[i] = 0
				probe.NonContig(1)
			})
			detectStars(c, probe)
			hooked1 := hookStep(c, probe, false, &myEdges, &cond)

			// Stars must be recomputed before the unconditional sub-step:
			// a star that received hooks in sub-step 1 is no longer a
			// star, which is exactly what prevents mutual hooks.
			detectStars(c, probe)
			hooked2 := hookStep(c, probe, true, &myEdges, &uncond)

			// One pointer-jump per iteration.
			changed := false
			c.ForDynamic(n, func(vi int) {
				v := graph.VID(vi)
				probe.NonContig(2)
				dv := atomic.LoadInt32(&d[v])
				ddv := atomic.LoadInt32(&d[dv])
				if dv != ddv {
					atomic.StoreInt32(&d[v], ddv)
					changed = true
				}
			})
			anyChange := c.ReduceOr(changed)
			if c.TID() == 0 {
				iterations = iter + 1
			}
			if !hooked1 && !hooked2 && !anyChange {
				// All trees are stars and no star has a cross edge (the
				// unconditional hook would have taken it): converged.
				return
			}
		}
	})
	if err != nil {
		return nil, Stats{}, err
	}

	var stats Stats
	stats.Iterations = iterations
	var edges []graph.Edge
	for i := range edgeBufs {
		edges = append(edges, edgeBufs[i]...)
		stats.ConditionalHooks += condBufs[i]
		stats.UnconditionalHooks += uncondBufs[i]
	}
	treeAdj := make([][]graph.VID, n)
	for _, e := range edges {
		treeAdj[e.U] = append(treeAdj[e.U], e.V)
		treeAdj[e.V] = append(treeAdj[e.V], e.U)
	}
	opt.Model.Probe(0).NonContig(int64(2 * len(edges)))
	parent := spanseq.RootForest(n, treeAdj)
	return parent, stats, nil
}
