package spanas

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

func TestSpanningForestShapes(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2), gen.Chain(64),
		gen.Star(40), gen.Cycle(33), gen.Complete(15),
		gen.Torus2D(7, 7), gen.Random(150, 220, 1),
		graph.Union(gen.Chain(8), gen.Star(6), gen.Cycle(5)),
		graph.RandomRelabel(gen.Chain(64), 9),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 4, 7} {
			parent, st, err := SpanningForest(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			wantEdges := g.NumVertices() - graph.NumComponents(g)
			if st.ConditionalHooks+st.UnconditionalHooks != wantEdges {
				t.Fatalf("%v p=%d: %d+%d hooks, want %d", g, p,
					st.ConditionalHooks, st.UnconditionalHooks, wantEdges)
			}
		}
	}
}

func TestSpanningForestProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 400)
		p := int(pRaw%6) + 1
		g := gen.Random(n, m, seed)
		parent, _, err := SpanningForest(g, Options{NumProcs: p})
		return err == nil && verify.Forest(g, parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsLogarithmic(t *testing.T) {
	// Awerbuch-Shiloach's unconditional hooks guarantee O(log n)
	// iterations even on adversarial labelings — the feature that
	// distinguishes it from hook-to-smaller-only schemes.
	g := graph.RandomRelabel(gen.Chain(1<<12), 31)
	_, st, err := SpanningForest(g, Options{NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2 * log2(4096) = 24; allow generous slack for the jump-only tail.
	if st.Iterations > 40 {
		t.Fatalf("%d iterations on n=4096; AS should need O(log n)", st.Iterations)
	}
	if st.UnconditionalHooks == 0 {
		t.Fatal("adversarial chain should exercise unconditional hooks")
	}
}

func TestModelCharges(t *testing.T) {
	g := gen.Random(400, 700, 3)
	model := smpmodel.New(3)
	if _, _, err := SpanningForest(g, Options{NumProcs: 3, Model: model}); err != nil {
		t.Fatal(err)
	}
	if model.Total().NonContig == 0 || model.Barriers() == 0 {
		t.Fatal("no cost charged")
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, _, err := SpanningForest(gen.Chain(4), Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestMaxIterationsCap(t *testing.T) {
	g := graph.RandomRelabel(gen.Chain(512), 7)
	parent, st, err := SpanningForest(g, Options{NumProcs: 2, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 1 {
		t.Fatalf("ran %d iterations under a cap of 1", st.Iterations)
	}
	// One iteration cannot finish this input.
	if verify.Forest(g, parent) == nil {
		t.Fatal("capped run unexpectedly produced a full spanning tree")
	}
}
