package obs

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestCounterAggregationAcrossWorkers(t *testing.T) {
	const p = 8
	rec := New(p)
	var wg sync.WaitGroup
	for tid := 0; tid < p; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := rec.Worker(tid)
			for i := 0; i < 100; i++ {
				w.Incr(VerticesClaimed)
				w.Add(EdgesScanned, 3)
			}
			w.Add(StolenVertices, int64(tid))
			w.Max(QueueHighWater, int64(10*(tid+1)))
			w.Max(QueueHighWater, 5) // lower value must not regress the max
		}(tid)
	}
	wg.Wait()
	rec.AddBarrierEpisodes(2)

	s := rec.Snapshot()
	if s.NumWorkers != p {
		t.Fatalf("NumWorkers = %d, want %d", s.NumWorkers, p)
	}
	if got := s.Totals.VerticesClaimed; got != 100*p {
		t.Errorf("total vertices_claimed = %d, want %d", got, 100*p)
	}
	if got := s.Totals.EdgesScanned; got != 300*p {
		t.Errorf("total edges_scanned = %d, want %d", got, 300*p)
	}
	if got := s.Totals.StolenVertices; got != p*(p-1)/2 {
		t.Errorf("total stolen_vertices = %d, want %d", got, p*(p-1)/2)
	}
	// QueueHighWater aggregates by max, not sum.
	if got := s.Totals.QueueHighWater; got != 10*p {
		t.Errorf("total queue_high_water = %d, want %d (max, not sum)", got, 10*p)
	}
	if s.BarrierEpisodes != 2 {
		t.Errorf("barrier_episodes = %d, want 2", s.BarrierEpisodes)
	}
	for tid := 0; tid < p; tid++ {
		w := s.Workers[tid]
		if w.Worker != tid {
			t.Errorf("workers[%d].Worker = %d", tid, w.Worker)
		}
		if w.VerticesClaimed != 100 || w.QueueHighWater != int64(10*(tid+1)) {
			t.Errorf("workers[%d] = %+v", tid, w.Counters)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	if rec.NumWorkers() != 0 {
		t.Error("nil recorder has workers")
	}
	w := rec.Worker(0)
	w.Incr(VerticesClaimed) // must not panic
	w.Add(EdgesScanned, 5)
	w.Max(QueueHighWater, 7)
	w.Trace(EvSteal, 1, 2)
	if w.Get(EdgesScanned) != 0 {
		t.Error("nil worker returned a value")
	}
	rec.AddBarrierEpisodes(1)
	rec.Trace(-1, EvBarrier, 0, 0)
	if ev := rec.Events(); ev != nil {
		t.Errorf("nil recorder has events: %v", ev)
	}
	s := rec.Snapshot()
	if s.NumWorkers != 0 || len(s.Workers) != 0 {
		t.Errorf("nil snapshot: %+v", s)
	}
	// Out-of-range worker ids are no-op sinks, not panics.
	rec2 := New(2)
	rec2.Worker(-1).Incr(VerticesClaimed)
	rec2.Worker(99).Incr(VerticesClaimed)
	if got := rec2.Snapshot().Totals.VerticesClaimed; got != 0 {
		t.Errorf("out-of-range writes landed: %d", got)
	}
}

func TestTraceRingBufferWraparound(t *testing.T) {
	rec := New(1, WithTrace(64)) // 64 is the minimum capacity
	if !rec.TraceEnabled() {
		t.Fatal("trace not enabled")
	}
	const total = 150
	for i := 0; i < total; i++ {
		rec.Trace(0, EvSteal, int64(i), 0)
	}
	ev := rec.Events()
	if len(ev) != 64 {
		t.Fatalf("got %d events, want 64 (ring capacity)", len(ev))
	}
	// The surviving events are the newest 64, in chronological order.
	for i, e := range ev {
		if want := int64(total - 64 + i); e.A != want {
			t.Fatalf("event %d has A=%d, want %d", i, e.A, want)
		}
	}
	s := rec.Snapshot()
	if s.TraceTotal != total {
		t.Errorf("trace_total = %d, want %d", s.TraceTotal, total)
	}
	if s.TraceDropped != total-64 {
		t.Errorf("trace_dropped = %d, want %d", s.TraceDropped, total-64)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	rec := New(4)
	rec.Trace(0, EvSteal, 1, 2)
	rec.Worker(0).Trace(EvSeed, 1, 2)
	if rec.TraceEnabled() || rec.Events() != nil {
		t.Error("default recorder buffered events")
	}
}

func TestEventKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvSeed: "seed", EvSteal: "steal", EvBarrier: "barrier",
		EvFallback: "fallback", EvComponentSeed: "component-seed", EvIdle: "idle",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

func TestArtifactJSONRoundTrip(t *testing.T) {
	rec := New(2, WithTrace(128))
	rec.Worker(0).Add(VerticesClaimed, 10)
	rec.Worker(0).Max(QueueHighWater, 4)
	rec.Worker(1).Add(EdgesScanned, 20)
	rec.Worker(1).Incr(StealSuccesses)
	rec.AddBarrierEpisodes(3)
	rec.Trace(0, EvSteal, 1, 5)
	rec.Trace(-1, EvBarrier, 1, 0)

	rep := rec.NewReport("test/run/p=2", map[string]string{"graph": "torus", "p": "2"})
	rep.ElapsedNS = 12345
	rep = rep.WithEvents(rec)

	path := filepath.Join(t.TempDir(), "sub", "metrics.json")
	a := &Artifact{Runs: []Report{rep}}
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.SchemaVersion != SchemaVersion {
		t.Errorf("schema = %q v%d", got.Schema, got.SchemaVersion)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("got %d runs", len(got.Runs))
	}
	if !reflect.DeepEqual(got.Runs[0], rep) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Runs[0], rep)
	}
}

// TestSchemaFieldNames pins the JSON field names: the artifacts are CI
// build outputs consumed across commits, so renaming a field is a
// breaking change that must be caught here.
func TestSchemaFieldNames(t *testing.T) {
	rec := New(1)
	rec.Worker(0).Incr(VerticesClaimed)
	data, err := json.Marshal(rec.NewReport("l", nil))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "schema_version", "snapshot"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report is missing %q: %s", key, data)
		}
	}
	snap := m["snapshot"].(map[string]any)
	for _, key := range []string{"num_workers", "barrier_episodes", "totals", "workers"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot is missing %q", key)
		}
	}
	totals := snap["totals"].(map[string]any)
	for _, key := range []string{
		"vertices_claimed", "edges_scanned", "steal_attempts",
		"steal_successes", "steal_failures", "stolen_vertices",
		"failed_claims", "queue_high_water", "barrier_waits",
		"idle_transitions", "fallback_triggers", "seeded_components",
	} {
		if _, ok := totals[key]; !ok {
			t.Errorf("totals is missing %q", key)
		}
	}
}

func TestCollector(t *testing.T) {
	c := &Collector{TraceCap: 64}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := c.NewRecorder(2)
			rec.Worker(0).Incr(VerticesClaimed)
			rec.Trace(0, EvSteal, int64(i), 0)
			c.Collect(fmt.Sprintf("run-%d", i), nil, 100, rec)
		}(i)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Fatalf("collected %d reports, want 4", c.Len())
	}

	dir := t.TempDir()
	mPath := filepath.Join(dir, "metrics.json")
	tPath := filepath.Join(dir, "trace.json")
	if err := c.WriteMetrics(mPath); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteTrace(tPath); err != nil {
		t.Fatal(err)
	}
	ma, err := ReadArtifact(mPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ma.Runs {
		if len(r.Events) != 0 {
			t.Error("metrics artifact carries events")
		}
	}
	ta, err := ReadArtifact(tPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Runs) != 4 {
		t.Fatalf("trace artifact has %d runs, want 4", len(ta.Runs))
	}
	for _, r := range ta.Runs {
		if len(r.Events) != 1 {
			t.Errorf("trace run %q has %d events, want 1", r.Label, len(r.Events))
		}
	}

	// A nil collector is a no-op sink end to end.
	var nc *Collector
	if rec := nc.NewRecorder(2); rec != nil {
		t.Error("nil collector produced a recorder")
	}
	nc.Collect("x", nil, 0, nil)
	if nc.Len() != 0 {
		t.Error("nil collector collected")
	}
}

func TestConcurrentSnapshotDuringWrites(t *testing.T) {
	// Snapshot may race with single-writer counter updates; under -race
	// this test proves the load/store discipline is clean.
	rec := New(4, WithTrace(256))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := rec.Worker(tid)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w.Incr(VerticesClaimed)
				w.Max(QueueHighWater, int64(i%100))
				if i%50 == 0 {
					w.Trace(EvSteal, int64(i), 0)
				}
			}
		}(tid)
	}
	for i := 0; i < 100; i++ {
		s := rec.Snapshot()
		if s.Totals.VerticesClaimed < 0 {
			t.Fatal("negative counter")
		}
		rec.Events()
	}
	close(stop)
	wg.Wait()
}
