// Package obs is the unified observability layer of the repository: one
// low-overhead recorder that every parallel component (the work-stealing
// traversal in internal/core, the queues in internal/wsq, the barriers
// in internal/barrier, the SV family via internal/par) reports into, and
// one stable JSON schema (Report) that every tool emits, so each
// benchmark run produces a comparable per-worker metrics artifact.
//
// The design follows the paper's evaluation needs: the argument for the
// work-stealing algorithm is made in per-processor terms (load balance,
// steal traffic, barrier episodes, the Helman-JáJá (T_M, T_C, B)
// triplet), so the recorder keeps one cache-line padded slot of counters
// per worker and aggregates them only at snapshot time — there is no
// shared hot counter and therefore no coherence traffic between workers.
//
// # Concurrency contract
//
// Counter slots are single-writer: worker tid is the only goroutine that
// may update Worker(tid)'s counters while the run is in flight (the
// owner updates them with atomic load/store pairs, which is exactly as
// cheap as a plain add on amd64/arm64 but keeps concurrent Snapshot
// calls race-free). Snapshot may be called from any goroutine at any
// time and sees a consistent-enough view for monitoring; the final
// snapshot taken after the worker goroutines join is exact.
//
// All methods are nil-safe on both *Recorder and *Worker: a nil receiver
// is a no-op sink, so instrumented code needs no "is observability on?"
// branches beyond the receiver nil-check the calls themselves perform.
package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one per-worker counter.
type Counter int

// The per-worker counter set. VerticesClaimed/EdgesScanned measure
// useful work (and therefore load balance), the three steal counters
// measure the work-stealing protocol, QueueHighWater bounds queue memory
// and reveals frontier shape, BarrierWaits and IdleTransitions count
// synchronization episodes, and FallbackTriggers/SeededComponents count
// the two quiescence-protocol outcomes.
const (
	// VerticesClaimed is the number of vertices this worker claimed
	// (colored); for SV-family algorithms it counts grafts won.
	VerticesClaimed Counter = iota
	// EdgesScanned is the number of arcs this worker inspected.
	EdgesScanned
	// StealAttempts counts entries into the steal protocol (one full
	// victim scan per attempt).
	StealAttempts
	// StealSuccesses counts attempts that obtained at least one vertex.
	StealSuccesses
	// StealFailures counts attempts that found nothing stealable.
	StealFailures
	// StolenVertices is the total number of vertices obtained by steals.
	StolenVertices
	// FailedClaims counts claim CASes lost to another worker — the
	// paper's multiply-colored-vertex race events.
	FailedClaims
	// QueueHighWater is the maximum length this worker's queue reached.
	QueueHighWater
	// BarrierWaits counts barrier episodes this worker participated in.
	BarrierWaits
	// IdleTransitions counts busy-to-idle transitions (the worker ran
	// out of local work and entered the steal/sleep protocol).
	IdleTransitions
	// FallbackTriggers counts times this worker tripped the idle
	// detection threshold and aborted the traversal into the SV fallback.
	FallbackTriggers
	// SeededComponents counts components this worker seeded through the
	// quiescence protocol.
	SeededComponents
	// ChunkDrains counts owner-side chunked queue drains that obtained at
	// least one vertex (one locked PopBatch each).
	ChunkDrains
	// DrainedVertices is the total vertices those drains obtained;
	// DrainedVertices/ChunkDrains is the mean effective drain chunk.
	DrainedVertices
	// ChunkGrow and ChunkShrink count the adaptive chunk controller's
	// growth and shrink steps (0 under ChunkPolicy fixed).
	ChunkGrow
	ChunkShrink
	// ChunkHighWater is the largest drain chunk this worker's controller
	// reached (the configured chunk itself under ChunkPolicy fixed).
	ChunkHighWater
	// DrainHist0..DrainHist7 are the log2 histogram of effective drain
	// sizes: bucket i counts drains that obtained [2^i, 2^(i+1)) vertices,
	// with the last bucket open-ended (>= 128). Use DrainHistBucket to map
	// a drain size to its bucket.
	DrainHist0
	DrainHist1
	DrainHist2
	DrainHist3
	DrainHist4
	DrainHist5
	DrainHist6
	DrainHist7

	// Cancels counts cooperative-abort observations: this worker saw the
	// run's cancel flag tripped at a chunk boundary and drained.
	Cancels
	// PanicsRecovered counts panics this worker's isolation wrapper
	// recovered (the run then degrades or returns a PanicError).
	PanicsRecovered
	// ChaosInjections counts faults the chaos layer injected into this
	// worker (stalls, steal vetoes, panics); always 0 in default builds.
	ChaosInjections

	// DirectionSwitches counts traversal phase changes this worker
	// initiated (top-down -> bottom-up and back); 0 under -direction
	// topdown.
	DirectionSwitches
	// BottomUpScanned is the number of vertices this worker inspected
	// during bottom-up sweeps (visited or not).
	BottomUpScanned
	// BottomUpClaims counts vertices this worker claimed bottom-up (an
	// unvisited vertex that found a claimed neighbor to adopt as parent).
	BottomUpClaims

	// HooksWon counts CAS-hook elections this worker won in the
	// edge-centric union-find sweep — each win selects one tree edge.
	HooksWon
	// HooksLost counts hook CASes lost to another worker (the edge
	// retried against the re-found roots).
	HooksLost
	// UFFinds counts union-find root lookups (two per inspected arc with
	// distinct endpoints, plus retries).
	UFFinds
	// CompressionWrites counts parent rewrites performed by path
	// compression during those finds.
	CompressionWrites

	// The sharded-execution counters were added with the engine layer.
	// All three are recorded by the coordinator slot after the teams
	// join, and stay 0 for unsharded runs (which never stitch).
	//
	// ShardRuns counts shard-team traversals this run executed (one per
	// shard of the partition).
	ShardRuns
	// BoundaryEdges is the number of cross-shard edges the partitioner
	// handed the stitch pass.
	BoundaryEdges
	// StitchHooks counts boundary edges the stitch elected as tree edges
	// (one per pair of shard components joined).
	StitchHooks

	// The resilience counters were added with the serving-grade
	// hardening. All three stay 0 for runs that never stall, degrade, or
	// pass through adaptive admission.
	//
	// StallTrips counts runs the stuck-run watchdog aborted (recorded by
	// the coordinator slot when a run ends with fault.CauseStalled).
	StallTrips
	// DegradeSteps counts downward transitions of the serving layer's
	// degradation ladder.
	DegradeSteps
	// AdmitLimit is the high-water mark of the AIMD admission limit
	// (a gauge recorded with Max, not a sum).
	AdmitLimit

	numCounters
)

// DrainHistBuckets is the number of effective-drain-size histogram
// buckets (log2, last bucket open-ended).
const DrainHistBuckets = int(DrainHist7-DrainHist0) + 1

// DrainHistBucket returns the histogram counter for a drain that
// obtained n vertices (n >= 1).
func DrainHistBucket(n int) Counter {
	b := Counter(0)
	for n > 1 && b < DrainHist7-DrainHist0 {
		n >>= 1
		b++
	}
	return DrainHist0 + b
}

// EventKind identifies one trace event type.
type EventKind uint8

const (
	// EvSeed: a stub-tree vertex was distributed to a worker queue
	// (A = vertex, B = destination worker).
	EvSeed EventKind = iota
	// EvSteal: a successful steal (A = victim worker, B = vertices moved).
	EvSteal
	// EvBarrier: a barrier episode completed (A = episode number).
	EvBarrier
	// EvFallback: the idle-detection threshold tripped (A = sleepers).
	EvFallback
	// EvComponentSeed: the quiescence protocol seeded a new component
	// root (A = vertex).
	EvComponentSeed
	// EvIdle: a worker transitioned from busy to idle.
	EvIdle
	// EvCancel: a worker observed the cancel flag and drained
	// (A = fault cause code).
	EvCancel
	// EvPanic: a worker's panic was recovered by the isolation wrapper.
	EvPanic
	// EvChaos: the chaos layer injected a fault (A = injection point).
	EvChaos
	// EvDirection: the traversal switched direction (A = new phase,
	// 0 = top-down, 1 = bottom-up; B = frontier size at the switch).
	EvDirection
	// EvStitch: the stitch pass joined the shard forests (A = boundary
	// edges inspected, B = hooks won).
	EvStitch
)

// String returns the schema name of the event kind.
func (k EventKind) String() string {
	switch k {
	case EvSeed:
		return "seed"
	case EvSteal:
		return "steal"
	case EvBarrier:
		return "barrier"
	case EvFallback:
		return "fallback"
	case EvComponentSeed:
		return "component-seed"
	case EvIdle:
		return "idle"
	case EvCancel:
		return "cancel"
	case EvPanic:
		return "panic"
	case EvChaos:
		return "chaos"
	case EvDirection:
		return "direction"
	case EvStitch:
		return "stitch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timestamped trace event.
//
// The v2 schema encodes the two kind-specific arguments under per-kind
// field names (a seed event carries "vertex" and "dest", a steal event
// "victim" and "stolen", ...) instead of the v1 schema's anonymous "a"
// and "b"; decoding accepts both spellings, so v1 artifacts still load.
type Event struct {
	// TNS is nanoseconds since the recorder was created.
	TNS int64 `json:"t_ns"`
	// Worker is the reporting worker id, or -1 for run-global events.
	Worker int `json:"worker"`
	// Kind is the event type (see EventKind.String for the names).
	Kind string `json:"kind"`
	// A and B are kind-specific arguments (documented per EventKind; see
	// eventPayloadNames for their JSON spellings).
	A int64 `json:"-"`
	B int64 `json:"-"`
}

// eventPayloadNames returns the v2 JSON field names of an event kind's
// A and B payloads. Unknown kinds (and future ones decoded from newer
// artifacts) fall back to the v1 anonymous spellings.
func eventPayloadNames(kind string) (a, b string) {
	switch kind {
	case "seed":
		return "vertex", "dest"
	case "steal":
		return "victim", "stolen"
	case "barrier":
		return "episode", "b"
	case "fallback":
		return "sleepers", "b"
	case "component-seed":
		return "vertex", "b"
	case "cancel":
		return "cause", "b"
	case "chaos":
		return "point", "b"
	case "direction":
		return "phase", "frontier"
	case "stitch":
		return "boundary", "hooks"
	}
	return "a", "b"
}

// MarshalJSON encodes the event with its kind's payload field names.
// Hand-built (strconv, fixed key order) so artifacts are byte-stable
// across encoders; zero payloads are omitted, matching v1's omitempty.
func (e Event) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, `{"t_ns":`...)
	buf = strconv.AppendInt(buf, e.TNS, 10)
	buf = append(buf, `,"worker":`...)
	buf = strconv.AppendInt(buf, int64(e.Worker), 10)
	buf = append(buf, `,"kind":`...)
	buf = strconv.AppendQuote(buf, e.Kind)
	an, bn := eventPayloadNames(e.Kind)
	if e.A != 0 {
		buf = append(buf, ',', '"')
		buf = append(buf, an...)
		buf = append(buf, '"', ':')
		buf = strconv.AppendInt(buf, e.A, 10)
	}
	if e.B != 0 {
		buf = append(buf, ',', '"')
		buf = append(buf, bn...)
		buf = append(buf, '"', ':')
		buf = strconv.AppendInt(buf, e.B, 10)
	}
	buf = append(buf, '}')
	return buf, nil
}

// UnmarshalJSON decodes an event, accepting both the v2 per-kind
// payload names and the v1 anonymous "a"/"b" spellings.
func (e *Event) UnmarshalJSON(data []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	getInt := func(key string) (int64, bool) {
		raw, ok := m[key]
		if !ok {
			return 0, false
		}
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			return 0, false
		}
		return v, true
	}
	*e = Event{}
	e.TNS, _ = getInt("t_ns")
	if w, ok := getInt("worker"); ok {
		e.Worker = int(w)
	}
	if raw, ok := m["kind"]; ok {
		if err := json.Unmarshal(raw, &e.Kind); err != nil {
			return err
		}
	}
	an, bn := eventPayloadNames(e.Kind)
	if v, ok := getInt(an); ok {
		e.A = v
	} else if v, ok := getInt("a"); ok {
		e.A = v
	}
	if v, ok := getInt(bn); ok {
		e.B = v
	} else if v, ok := getInt("b"); ok {
		e.B = v
	}
	return nil
}

// slotPad rounds the counter array up to a multiple of two cache lines
// so neighboring workers' slots never share a line.
const slotPad = (128 - (numCounters*8)%128) % 128

type workerSlot struct {
	c [numCounters]atomic.Int64
	_ [slotPad]byte
}

// trace is the bounded ring buffer of events. A mutex keeps it simple
// and race-free; tracing is opt-in and event rates (steals, barriers,
// seeds) are orders of magnitude below the vertex-processing rate, so
// the lock is uncontended in practice.
type trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // next slot to write (wraps)
	total   int64 // events ever recorded
	dropped int64 // events overwritten by wraparound
}

func (t *trace) add(e Event) {
	t.mu.Lock()
	if t.total >= int64(len(t.buf)) {
		t.dropped++
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	t.total++
	t.mu.Unlock()
}

// events returns the buffered events in chronological order.
func (t *trace) events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(t.total)
	if n > len(t.buf) {
		n = len(t.buf)
	}
	out := make([]Event, 0, n)
	start := 0
	if t.total > int64(len(t.buf)) {
		start = t.next // oldest surviving event
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Recorder collects per-worker counters, run-global counters, and an
// optional bounded event trace for one algorithm run. Create one fresh
// Recorder per run; totals are cumulative for the Recorder's lifetime.
type Recorder struct {
	workers []workerSlot
	tr      *trace
	start   time.Time
	// barrierEpisodes counts completed team-wide barrier episodes
	// (run-global, distinct from per-worker BarrierWaits).
	barrierEpisodes atomic.Int64
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithTrace enables the event trace with a ring buffer of the given
// capacity (minimum 64 when enabled; cap <= 0 leaves tracing off).
func WithTrace(capacity int) Option {
	return func(r *Recorder) {
		if capacity <= 0 {
			return
		}
		if capacity < 64 {
			capacity = 64
		}
		r.tr = &trace{buf: make([]Event, capacity)}
	}
}

// New returns a Recorder for p workers (p >= 1).
func New(p int, opts ...Option) *Recorder {
	if p < 1 {
		p = 1
	}
	r := &Recorder{workers: make([]workerSlot, p), start: time.Now()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Reset zeroes every per-worker counter, the run-global barrier-episode
// count, and the trace buffer, and restarts the trace clock — turning a
// used Recorder back into a fresh one without allocating. It is the
// reuse hook for pooled sessions, which keep one Recorder per workspace
// for the life of the session. The caller must guarantee no worker of a
// previous run still writes into the recorder (the previous run has
// fully drained); Reset is not synchronized against in-flight writers.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.workers {
		for c := Counter(0); c < numCounters; c++ {
			r.workers[i].c[c].Store(0)
		}
	}
	r.barrierEpisodes.Store(0)
	if r.tr != nil {
		r.tr.mu.Lock()
		r.tr.next, r.tr.total, r.tr.dropped = 0, 0, 0
		r.tr.mu.Unlock()
	}
	r.start = time.Now()
}

// Total aggregates counter c across all workers without allocating: a
// sum for flow counters, a maximum for the high-water marks
// (QueueHighWater, ChunkHighWater), matching Snapshot's totals rule.
// Pooled sessions derive their per-run statistics through Total instead
// of Snapshot, whose slice-of-workers view allocates.
func (r *Recorder) Total(c Counter) int64 {
	if r == nil {
		return 0
	}
	var tot int64
	for i := range r.workers {
		v := r.workers[i].c[c].Load()
		if c == QueueHighWater || c == ChunkHighWater || c == AdmitLimit {
			if v > tot {
				tot = v
			}
		} else {
			tot += v
		}
	}
	return tot
}

// NumWorkers returns the number of per-worker slots (0 on nil).
func (r *Recorder) NumWorkers() int {
	if r == nil {
		return 0
	}
	return len(r.workers)
}

// TraceEnabled reports whether the recorder buffers trace events.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.tr != nil }

// Worker returns the counter handle for worker tid, or nil (a no-op
// sink) when r is nil or tid is out of range.
func (r *Recorder) Worker(tid int) *Worker {
	if r == nil || tid < 0 || tid >= len(r.workers) {
		return nil
	}
	return &Worker{rec: r, slot: &r.workers[tid], tid: tid}
}

// AddBarrierEpisodes adds n completed team-wide barrier episodes.
func (r *Recorder) AddBarrierEpisodes(n int64) {
	if r == nil {
		return
	}
	r.barrierEpisodes.Add(n)
}

// Trace records one event attributed to worker tid (-1 for run-global
// events). No-op unless tracing is enabled.
func (r *Recorder) Trace(tid int, kind EventKind, a, b int64) {
	if r == nil || r.tr == nil {
		return
	}
	r.tr.add(Event{
		TNS:    time.Since(r.start).Nanoseconds(),
		Worker: tid,
		Kind:   kind.String(),
		A:      a,
		B:      b,
	})
}

// Events returns the buffered trace events in chronological order
// (nil when tracing is disabled).
func (r *Recorder) Events() []Event {
	if r == nil || r.tr == nil {
		return nil
	}
	return r.tr.events()
}

// Worker is one worker's handle into its padded counter slot. The
// zero-value-nil Worker is a no-op sink.
type Worker struct {
	rec  *Recorder
	slot *workerSlot
	tid  int
}

// Add adds delta to counter c. Single-writer: only the owning worker may
// call Add/Incr/Max while the run is in flight.
func (w *Worker) Add(c Counter, delta int64) {
	if w == nil {
		return
	}
	// Load+store instead of Add: the slot is single-writer, so this is
	// race-free, and it avoids a LOCK-prefixed RMW on the hot path.
	v := &w.slot.c[c]
	v.Store(v.Load() + delta)
}

// Incr adds one to counter c.
func (w *Worker) Incr(c Counter) { w.Add(c, 1) }

// Max raises counter c to v if v is larger (for high-water marks).
func (w *Worker) Max(c Counter, v int64) {
	if w == nil {
		return
	}
	p := &w.slot.c[c]
	if v > p.Load() {
		p.Store(v)
	}
}

// Trace records one event attributed to this worker.
func (w *Worker) Trace(kind EventKind, a, b int64) {
	if w == nil {
		return
	}
	w.rec.Trace(w.tid, kind, a, b)
}

// Get returns the current value of counter c (0 on nil).
func (w *Worker) Get(c Counter) int64 {
	if w == nil {
		return 0
	}
	return w.slot.c[c].Load()
}

// Local is an unsynchronized counter batch for a worker's hot loop.
// Even a single-writer atomic store is a full fence on amd64 (XCHG), so
// per-vertex updates through Worker cost real time; a Local accumulates
// in plain memory and FlushTo moves the batch into the worker's slots
// at a coarser cadence. Concurrent Snapshot calls then see counters
// that lag by at most one unflushed batch.
type Local struct {
	c [numCounters]int64
}

// Add adds delta to counter c in the local batch.
func (l *Local) Add(c Counter, delta int64) { l.c[c] += delta }

// Incr adds one to counter c in the local batch.
func (l *Local) Incr(c Counter) { l.c[c]++ }

// FlushTo moves the accumulated batch into w and resets the batch. A
// nil w discards the batch.
func (l *Local) FlushTo(w *Worker) {
	for i, v := range l.c {
		if v != 0 {
			w.Add(Counter(i), v)
			l.c[i] = 0
		}
	}
}
