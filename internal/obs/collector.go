package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Artifact is a file of Reports: what the CLI tools write for -metrics
// and -trace, and what CI uploads as a build artifact. A single run
// (cmd/spantree) produces one report; a benchmark sweep (cmd/benchfig)
// produces one per (experiment, algorithm, p) measurement.
type Artifact struct {
	Schema        string   `json:"schema"`
	SchemaVersion int      `json:"schema_version"`
	Runs          []Report `json:"runs"`
}

// WriteFile writes the artifact as indented JSON, creating parent
// directories (so "results/metrics.json" works from a fresh checkout).
func (a *Artifact) WriteFile(path string) error {
	a.Schema = Schema
	a.SchemaVersion = SchemaVersion
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding artifact: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obs: creating %s: %w", dir, err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing artifact: %w", err)
	}
	return nil
}

// ReadArtifact reads an artifact written by WriteFile (schema checked).
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("obs: decoding %s: %w", path, err)
	}
	if a.Schema != Schema {
		return nil, fmt.Errorf("obs: %s has schema %q, want %q", path, a.Schema, Schema)
	}
	return &a, nil
}

// Collector accumulates Reports from a sweep of runs (the experiment
// harness adds one per measurement) and writes them as artifacts.
// Safe for concurrent Add.
type Collector struct {
	// TraceCap, when > 0, makes NewRecorder enable tracing with this
	// ring-buffer capacity.
	TraceCap int

	mu   sync.Mutex
	runs []Report
}

// NewRecorder returns a fresh Recorder for one run of p workers,
// tracing-enabled when the collector wants traces.
func (c *Collector) NewRecorder(p int) *Recorder {
	if c == nil {
		return nil
	}
	if c.TraceCap > 0 {
		return New(p, WithTrace(c.TraceCap))
	}
	return New(p)
}

// Collect snapshots rec into a report (with events when tracing was on)
// and appends it to the collector. No-op when c or rec is nil.
func (c *Collector) Collect(label string, meta map[string]string, elapsedNS int64, rec *Recorder) {
	if c == nil || rec == nil {
		return
	}
	rep := rec.NewReport(label, meta)
	rep.ElapsedNS = elapsedNS
	rep.Events = rec.Events()
	c.mu.Lock()
	c.runs = append(c.runs, rep)
	c.mu.Unlock()
}

// Runs returns a copy of the collected reports, in collection order.
func (c *Collector) Runs() []Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Report(nil), c.runs...)
}

// Len returns the number of collected reports.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// WriteMetrics writes all collected reports, stripped of their event
// timelines, as one artifact.
func (c *Collector) WriteMetrics(path string) error {
	c.mu.Lock()
	runs := make([]Report, len(c.runs))
	copy(runs, c.runs)
	c.mu.Unlock()
	for i := range runs {
		runs[i].Events = nil
	}
	a := &Artifact{Runs: runs}
	return a.WriteFile(path)
}

// WriteTrace writes only the reports that carry events, with their
// timelines, as one artifact.
func (c *Collector) WriteTrace(path string) error {
	c.mu.Lock()
	var runs []Report
	for _, r := range c.runs {
		if len(r.Events) > 0 {
			runs = append(runs, r)
		}
	}
	c.mu.Unlock()
	a := &Artifact{Runs: runs}
	return a.WriteFile(path)
}
