package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
)

// HostShape records the hardware/runtime shape a measurement was taken
// on. Timings from different shapes are not comparable — a regression
// gate should warn (not fail) when baseline and candidate differ.
type HostShape struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// CurrentHost returns the shape of the running process.
func CurrentHost() HostShape {
	return HostShape{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// Differs reports whether two known shapes disagree on the fields that
// change timings (CPU count and scheduler width; toolchain and platform
// are informational). An unknown shape (zero NumCPU — artifacts written
// before host stamping) never differs: there is nothing to compare.
func (h HostShape) Differs(other HostShape) bool {
	if h.NumCPU == 0 || other.NumCPU == 0 {
		return false
	}
	return h.NumCPU != other.NumCPU || h.GOMAXPROCS != other.GOMAXPROCS
}

func (h HostShape) String() string {
	return fmt.Sprintf("%d CPUs, GOMAXPROCS=%d, %s %s/%s", h.NumCPU, h.GOMAXPROCS, h.GoVersion, h.OS, h.Arch)
}

// Artifact is a file of Reports: what the CLI tools write for -metrics
// and -trace, and what CI uploads as a build artifact. A single run
// (cmd/spantree) produces one report; a benchmark sweep (cmd/benchfig)
// produces one per (experiment, algorithm, p) measurement.
type Artifact struct {
	Schema        string    `json:"schema"`
	SchemaVersion int       `json:"schema_version"`
	Host          HostShape `json:"host"`
	Runs          []Report  `json:"runs"`
}

// WriteFile writes the artifact as indented JSON, creating parent
// directories (so "results/metrics.json" works from a fresh checkout).
// The host shape is stamped automatically unless the caller set one.
func (a *Artifact) WriteFile(path string) error {
	a.Schema = Schema
	a.SchemaVersion = SchemaVersion
	if a.Host.NumCPU == 0 {
		a.Host = CurrentHost()
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding artifact: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obs: creating %s: %w", dir, err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing artifact: %w", err)
	}
	return nil
}

// ReadArtifact reads an artifact written by WriteFile (schema checked).
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("obs: decoding %s: %w", path, err)
	}
	if a.Schema != Schema && a.Schema != SchemaV1 {
		return nil, fmt.Errorf("obs: %s has schema %q, want %q (or the legacy %q)",
			path, a.Schema, Schema, SchemaV1)
	}
	return &a, nil
}

// Collector accumulates Reports from a sweep of runs (the experiment
// harness adds one per measurement) and writes them as artifacts.
// Safe for concurrent Add.
type Collector struct {
	// TraceCap, when > 0, makes NewRecorder enable tracing with this
	// ring-buffer capacity.
	TraceCap int

	mu   sync.Mutex
	runs []Report
}

// NewRecorder returns a fresh Recorder for one run of p workers,
// tracing-enabled when the collector wants traces.
func (c *Collector) NewRecorder(p int) *Recorder {
	if c == nil {
		return nil
	}
	if c.TraceCap > 0 {
		return New(p, WithTrace(c.TraceCap))
	}
	return New(p)
}

// Collect snapshots rec into a report (with events when tracing was on)
// and appends it to the collector. No-op when c or rec is nil.
func (c *Collector) Collect(label string, meta map[string]string, elapsedNS int64, rec *Recorder) {
	if c == nil || rec == nil {
		return
	}
	rep := rec.NewReport(label, meta)
	rep.ElapsedNS = elapsedNS
	rep.Events = rec.Events()
	c.mu.Lock()
	c.runs = append(c.runs, rep)
	c.mu.Unlock()
}

// Runs returns a copy of the collected reports, in collection order.
func (c *Collector) Runs() []Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Report(nil), c.runs...)
}

// Len returns the number of collected reports.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// WriteMetrics writes all collected reports, stripped of their event
// timelines, as one artifact.
func (c *Collector) WriteMetrics(path string) error {
	c.mu.Lock()
	runs := make([]Report, len(c.runs))
	copy(runs, c.runs)
	c.mu.Unlock()
	for i := range runs {
		runs[i].Events = nil
	}
	a := &Artifact{Runs: runs}
	return a.WriteFile(path)
}

// WriteTrace writes only the reports that carry events, with their
// timelines, as one artifact.
func (c *Collector) WriteTrace(path string) error {
	c.mu.Lock()
	var runs []Report
	for _, r := range c.runs {
		if len(r.Events) > 0 {
			runs = append(runs, r)
		}
	}
	c.mu.Unlock()
	a := &Artifact{Runs: runs}
	return a.WriteFile(path)
}
