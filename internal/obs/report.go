package obs

// Snapshot, Report and Artifact: the stable JSON schema every tool
// emits. Schema stability is load-bearing — CI uploads these files as
// build artifacts on every push (BENCH_*.json), so the perf trajectory
// of the repository is a time series of this exact shape. Grow the
// schema by adding fields; never rename or repurpose existing ones, and
// bump SchemaVersion on any incompatible change.

// Schema is the identifier embedded in every Report. v2 names each
// trace event's payload fields per kind (see Event) where v1 used
// anonymous "a"/"b"; counters are a superset of v1's, so v1 artifacts
// decode losslessly (see SchemaV1 readers in internal/stats).
const Schema = "spantree/obs/v2"

// SchemaV1 is the previous schema identifier, still accepted by
// readers so existing baselines keep comparing.
const SchemaV1 = "spantree/obs/v1"

// SchemaVersion is the current version of the JSON schema.
const SchemaVersion = 2

// Counters is the JSON form of one counter set (per-worker, or the
// run-wide aggregate).
type Counters struct {
	VerticesClaimed  int64 `json:"vertices_claimed"`
	EdgesScanned     int64 `json:"edges_scanned"`
	StealAttempts    int64 `json:"steal_attempts"`
	StealSuccesses   int64 `json:"steal_successes"`
	StealFailures    int64 `json:"steal_failures"`
	StolenVertices   int64 `json:"stolen_vertices"`
	FailedClaims     int64 `json:"failed_claims"`
	QueueHighWater   int64 `json:"queue_high_water"`
	BarrierWaits     int64 `json:"barrier_waits"`
	IdleTransitions  int64 `json:"idle_transitions"`
	FallbackTriggers int64 `json:"fallback_triggers"`
	SeededComponents int64 `json:"seeded_components"`
	// The chunked-drain counters were added with the adaptive runtime
	// (schema grows additively); omitempty keeps reports from algorithms
	// without a drain loop (the SV family) unchanged.
	ChunkDrains     int64 `json:"chunk_drains,omitempty"`
	DrainedVertices int64 `json:"drained_vertices,omitempty"`
	ChunkGrow       int64 `json:"chunk_grow,omitempty"`
	ChunkShrink     int64 `json:"chunk_shrink,omitempty"`
	ChunkHighWater  int64 `json:"chunk_high_water,omitempty"`
	// DrainHist is the log2 histogram of effective drain sizes (bucket i
	// counts drains of [2^i, 2^(i+1)) vertices, last bucket open-ended);
	// nil when no drain ran.
	DrainHist []int64 `json:"drain_hist,omitempty"`
	// The robustness counters were added with the hardened runtime
	// (schema grows additively); all three stay omitted for runs that
	// complete without cancellation, recovered panics, or injected
	// faults, so pre-hardening artifacts compare unchanged.
	Cancels         int64 `json:"cancels,omitempty"`
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
	ChaosInjections int64 `json:"chaos_injections,omitempty"`
	// The direction-optimization counters were added with the bottom-up
	// traversal phase (schema grows additively); all three stay omitted
	// for push-only runs, so earlier artifacts compare unchanged.
	DirectionSwitches int64 `json:"direction_switches,omitempty"`
	BottomUpScanned   int64 `json:"bottomup_scanned,omitempty"`
	BottomUpClaims    int64 `json:"bottomup_claims,omitempty"`
	// The union-find counters were added with the edge-centric CAS-hook
	// family (schema grows additively); all four stay omitted for
	// traversal runs, so earlier artifacts compare unchanged.
	HooksWon          int64 `json:"hooks_won,omitempty"`
	HooksLost         int64 `json:"hooks_lost,omitempty"`
	UFFinds           int64 `json:"uf_finds,omitempty"`
	CompressionWrites int64 `json:"compression_writes,omitempty"`
	// The sharded-execution counters were added with the engine layer
	// (schema grows additively); all three stay omitted for unsharded
	// runs, so earlier artifacts compare unchanged.
	ShardRuns     int64 `json:"shard_runs,omitempty"`
	BoundaryEdges int64 `json:"boundary_edges,omitempty"`
	StitchHooks   int64 `json:"stitch_hooks,omitempty"`
	// The resilience counters were added with the serving-grade
	// hardening (schema grows additively); all three stay omitted for
	// runs that never stall, degrade, or pass through adaptive
	// admission, so earlier artifacts compare unchanged.
	StallTrips   int64 `json:"stall_trips,omitempty"`
	DegradeSteps int64 `json:"degrade_steps,omitempty"`
	AdmitLimit   int64 `json:"admit_limit,omitempty"`
}

// countersFrom maps the counter array into the named JSON fields.
func countersFrom(c *[numCounters]int64) Counters {
	out := Counters{
		VerticesClaimed:   c[VerticesClaimed],
		EdgesScanned:      c[EdgesScanned],
		StealAttempts:     c[StealAttempts],
		StealSuccesses:    c[StealSuccesses],
		StealFailures:     c[StealFailures],
		StolenVertices:    c[StolenVertices],
		FailedClaims:      c[FailedClaims],
		QueueHighWater:    c[QueueHighWater],
		BarrierWaits:      c[BarrierWaits],
		IdleTransitions:   c[IdleTransitions],
		FallbackTriggers:  c[FallbackTriggers],
		SeededComponents:  c[SeededComponents],
		ChunkDrains:       c[ChunkDrains],
		DrainedVertices:   c[DrainedVertices],
		ChunkGrow:         c[ChunkGrow],
		ChunkShrink:       c[ChunkShrink],
		ChunkHighWater:    c[ChunkHighWater],
		Cancels:           c[Cancels],
		PanicsRecovered:   c[PanicsRecovered],
		ChaosInjections:   c[ChaosInjections],
		DirectionSwitches: c[DirectionSwitches],
		BottomUpScanned:   c[BottomUpScanned],
		BottomUpClaims:    c[BottomUpClaims],
		HooksWon:          c[HooksWon],
		HooksLost:         c[HooksLost],
		UFFinds:           c[UFFinds],
		CompressionWrites: c[CompressionWrites],
		ShardRuns:         c[ShardRuns],
		BoundaryEdges:     c[BoundaryEdges],
		StitchHooks:       c[StitchHooks],
		StallTrips:        c[StallTrips],
		DegradeSteps:      c[DegradeSteps],
		AdmitLimit:        c[AdmitLimit],
	}
	for b := 0; b < DrainHistBuckets; b++ {
		if c[DrainHist0+Counter(b)] != 0 {
			out.DrainHist = make([]int64, DrainHistBuckets)
			for i := 0; i < DrainHistBuckets; i++ {
				out.DrainHist[i] = c[DrainHist0+Counter(i)]
			}
			break
		}
	}
	return out
}

// WorkerCounters is one worker's counter set plus its id.
type WorkerCounters struct {
	Worker int `json:"worker"`
	Counters
}

// Snapshot is a point-in-time aggregation of a Recorder. Totals sums
// every counter across workers except the high-water marks
// (QueueHighWater, ChunkHighWater), which take the maximum (a sum of
// high-water marks has no meaning).
type Snapshot struct {
	NumWorkers      int              `json:"num_workers"`
	BarrierEpisodes int64            `json:"barrier_episodes"`
	TraceTotal      int64            `json:"trace_total,omitempty"`
	TraceDropped    int64            `json:"trace_dropped,omitempty"`
	Totals          Counters         `json:"totals"`
	Workers         []WorkerCounters `json:"workers"`
}

// Snapshot aggregates the per-worker slots. Safe to call at any time;
// the snapshot taken after the worker goroutines join is exact.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		NumWorkers:      len(r.workers),
		BarrierEpisodes: r.barrierEpisodes.Load(),
		Workers:         make([]WorkerCounters, len(r.workers)),
	}
	var totals [numCounters]int64
	for tid := range r.workers {
		var vals [numCounters]int64
		for c := Counter(0); c < numCounters; c++ {
			vals[c] = r.workers[tid].c[c].Load()
			if c == QueueHighWater || c == ChunkHighWater || c == AdmitLimit {
				// A sum of high-water marks has no meaning; aggregate by max.
				if vals[c] > totals[c] {
					totals[c] = vals[c]
				}
			} else {
				totals[c] += vals[c]
			}
		}
		s.Workers[tid] = WorkerCounters{Worker: tid, Counters: countersFrom(&vals)}
	}
	s.Totals = countersFrom(&totals)
	if r.tr != nil {
		r.tr.mu.Lock()
		s.TraceTotal = r.tr.total
		s.TraceDropped = r.tr.dropped
		r.tr.mu.Unlock()
	}
	return s
}

// Report is the metrics artifact for one algorithm run: identifying
// metadata plus the counter snapshot and (when tracing was enabled and
// the caller asked for them) the event timeline.
type Report struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`
	// Label identifies the run, e.g. "workstealing/torus2d-65536/p=8".
	Label string `json:"label,omitempty"`
	// Meta carries free-form run parameters (graph, seed, flags...).
	Meta map[string]string `json:"meta,omitempty"`
	// ElapsedNS is the run's wall-clock time in nanoseconds (0 if the
	// caller did not measure it).
	ElapsedNS int64    `json:"elapsed_ns,omitempty"`
	Snapshot  Snapshot `json:"snapshot"`
	// Events is the trace timeline; omitted from metrics-only artifacts.
	Events []Event `json:"events,omitempty"`
}

// NewReport assembles a Report from the recorder's current state,
// without the event timeline (see WithEvents).
func (r *Recorder) NewReport(label string, meta map[string]string) Report {
	return Report{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Label:         label,
		Meta:          meta,
		Snapshot:      r.Snapshot(),
	}
}

// WithEvents returns a copy of the report carrying the recorder's
// buffered trace events.
func (rep Report) WithEvents(r *Recorder) Report {
	rep.Events = r.Events()
	return rep
}
