// Package spanlevel implements a level-synchronous parallel BFS
// spanning-tree algorithm: all p processors expand the current frontier
// in parallel, claim vertices with CAS exactly like the work-stealing
// traversal, and meet at a barrier after every level.
//
// It is the natural foil for the paper's design: both algorithms do
// O((n+m)/p) work, but level-synchronous BFS performs one barrier per
// BFS level — Θ(diameter) barriers — where the paper's asynchronous
// work-stealing traversal needs O(1). On small-diameter graphs the two
// are close; on meshes and geometric graphs (diameter ~sqrt(n)) the
// barrier term dominates, which is precisely the argument of the
// paper's Section 3 complexity comparison. The spanlevel-vs-core
// benchmark makes that argument measurable.
package spanlevel

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/graph"
	"spantree/internal/par"
	"spantree/internal/smpmodel"
)

// Options configures a run.
type Options struct {
	// NumProcs is the number of virtual processors (>= 1).
	NumProcs int
	// Model, when non-nil, accumulates Helman-JáJá cost counters.
	Model *smpmodel.Model
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) used for the per-level frontier expansion.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
	// Cancel is the run's cooperative stop flag (nil never trips);
	// Chaos the fault injector (nil injects nothing).
	Cancel *fault.Flag
	Chaos  *chaos.Injector
}

// Stats reports what a run did.
type Stats struct {
	// Levels is the total number of BFS levels across all components —
	// the barrier count driver.
	Levels int
	// Components is the number of connected components found.
	Components int
	// MaxFrontier is the largest frontier encountered.
	MaxFrontier int
}

// SpanningForest runs level-synchronous BFS from vertex 0 onward,
// restarting at the next unvisited vertex per component, and returns the
// forest as a parent array plus statistics.
func SpanningForest(g *graph.Graph, opt Options) ([]graph.VID, Stats, error) {
	if opt.NumProcs < 1 {
		return nil, Stats{}, fmt.Errorf("spanlevel: NumProcs = %d, need >= 1", opt.NumProcs)
	}
	n := g.NumVertices()
	parent := make([]graph.VID, n)
	color := make([]int32, n)
	for i := range parent {
		parent[i] = graph.None
	}
	var stats Stats
	if n == 0 {
		return parent, stats, nil
	}

	p := opt.NumProcs
	team := par.NewTeam(p, opt.Model).Chunk(opt.ChunkPolicy, opt.ChunkSize).
		Cancel(opt.Cancel).Chaos(opt.Chaos)
	frontier := make([]graph.VID, 0, 1024)
	// next collects each processor's discoveries; they are concatenated
	// after the level barrier.
	nextBufs := make([][]graph.VID, p)
	for i := range nextBufs {
		nextBufs[i] = make([]graph.VID, 0, 1024)
	}

	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		stats.Components++
		frontier = append(frontier[:0], graph.VID(start))
		for len(frontier) > 0 {
			stats.Levels++
			if len(frontier) > stats.MaxFrontier {
				stats.MaxFrontier = len(frontier)
			}
			err := team.RunErr(func(c *par.Ctx) {
				probe := c.Probe()
				mine := nextBufs[c.TID()][:0]
				c.ForDynamic(len(frontier), func(i int) {
					v := frontier[i]
					probe.NonContig(1)
					nb := g.Neighbors(v)
					probe.Contig(int64(len(nb)))
					for _, w := range nb {
						probe.NonContig(2)
						if atomic.LoadInt32(&color[w]) != 0 {
							continue
						}
						if atomic.CompareAndSwapInt32(&color[w], 0, 1) {
							probe.NonContig(2)
							parent[w] = v
							mine = append(mine, w)
						}
					}
				})
				nextBufs[c.TID()] = mine
			})
			if err != nil {
				return nil, stats, err
			}
			// Level barrier: the team join is the synchronization point;
			// charge one barrier per level (the defining cost of this
			// algorithm).
			opt.Model.AddBarriers(1)
			frontier = frontier[:0]
			for i := range nextBufs {
				frontier = append(frontier, nextBufs[i]...)
				opt.Model.Probe(0).Contig(int64(len(nextBufs[i])))
			}
		}
	}
	return parent, stats, nil
}
