package spanlevel

import (
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
	"spantree/internal/verify"
)

func TestSpanningForestShapes(t *testing.T) {
	shapes := []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(2), gen.Chain(64),
		gen.Star(40), gen.Cycle(33), gen.Complete(15),
		gen.Torus2D(7, 7), gen.Random(150, 220, 1),
		graph.Union(gen.Chain(8), gen.Star(6), gen.Cycle(5)),
	}
	for _, g := range shapes {
		for _, p := range []int{1, 2, 4, 7} {
			parent, st, err := SpanningForest(g, Options{NumProcs: p})
			if err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if err := verify.Forest(g, parent); err != nil {
				t.Fatalf("%v p=%d: %v", g, p, err)
			}
			if st.Components != graph.NumComponents(g) {
				t.Fatalf("%v: components = %d, want %d", g, st.Components, graph.NumComponents(g))
			}
		}
	}
}

func TestSpanningForestProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 400)
		p := int(pRaw%5) + 1
		g := gen.Random(n, m, seed)
		parent, _, err := SpanningForest(g, Options{NumProcs: p})
		return err == nil && verify.Forest(g, parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelCountMatchesEccentricity(t *testing.T) {
	// Chain rooted at vertex 0: n levels (each level one vertex).
	n := 200
	_, st, err := SpanningForest(gen.Chain(n), Options{NumProcs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels != n {
		t.Fatalf("chain levels = %d, want %d", st.Levels, n)
	}
	// Star rooted at the hub: 2 levels.
	_, st, err = SpanningForest(gen.Star(50), Options{NumProcs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels != 2 {
		t.Fatalf("star levels = %d, want 2", st.Levels)
	}
	if st.MaxFrontier != 49 {
		t.Fatalf("star max frontier = %d, want 49", st.MaxFrontier)
	}
}

func TestBarrierCountIsLevels(t *testing.T) {
	// The defining cost contrast with the paper's algorithm: one barrier
	// per level, Θ(diameter) in total.
	g := gen.Torus2D(16, 16)
	model := smpmodel.New(4)
	_, st, err := SpanningForest(g, Options{NumProcs: 4, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if model.Barriers() != int64(st.Levels) {
		t.Fatalf("barriers %d != levels %d", model.Barriers(), st.Levels)
	}
	if st.Levels < 16 {
		t.Fatalf("torus 16x16 should need >= 16 levels, got %d", st.Levels)
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, _, err := SpanningForest(gen.Chain(4), Options{NumProcs: 0}); err == nil {
		t.Fatal("p=0 accepted")
	}
}
