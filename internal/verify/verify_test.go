package verify

import (
	"strings"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/spanseq"
)

func validForest(t *testing.T, g *graph.Graph) []graph.VID {
	t.Helper()
	parent := spanseq.BFS(g, nil)
	if err := Forest(g, parent); err != nil {
		t.Fatalf("reference forest invalid: %v", err)
	}
	return parent
}

func TestForestAcceptsValid(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Chain(0), gen.Chain(1), gen.Chain(20), gen.Star(10),
		gen.Cycle(9), gen.Torus2D(5, 5), gen.Random(80, 120, 1),
		graph.Union(gen.Chain(4), gen.Cycle(5)),
	} {
		validForest(t, g)
	}
}

func TestForestRejections(t *testing.T) {
	g := gen.Torus2D(4, 4) // 16 vertices, connected

	cases := []struct {
		name    string
		mutate  func(parent []graph.VID)
		wantSub string
	}{
		{"wrong length", func(p []graph.VID) {}, "length"},
		{"out of range", func(p []graph.VID) { p[3] = 99 }, "out of range"},
		{"self parent", func(p []graph.VID) { p[3] = 3 }, "self-parent"},
		{"non-edge", func(p []graph.VID) { p[1] = 11 }, "not an edge"},
		{"extra root", func(p []graph.VID) { p[5] = graph.None }, "roots"},
	}
	for _, tc := range cases {
		parent := validForest(t, g)
		if tc.name == "wrong length" {
			parent = parent[:10]
		} else {
			tc.mutate(parent)
		}
		err := Forest(g, parent)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q lacks %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestForestRejectsCycle(t *testing.T) {
	g := gen.Cycle(6)
	parent := make([]graph.VID, 6)
	for v := 0; v < 6; v++ {
		parent[v] = graph.VID((v + 1) % 6) // 0->1->...->5->0: a cycle
	}
	err := Forest(g, parent)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestForestRejectsCrossComponentEdgeCount(t *testing.T) {
	// Two components, but the forest claims one root: invalid because a
	// tree edge would have to cross components (no such graph edge) or
	// roots mismatch.
	g := graph.Union(gen.Chain(3), gen.Chain(3))
	parent := validForest(t, g)
	// Merge the second tree under the first via a fake edge.
	parent[3] = 2
	if err := Forest(g, parent); err == nil {
		t.Fatal("cross-component parent accepted")
	}
}

func TestForestRejectsSplitComponent(t *testing.T) {
	// One connected component presented as two trees: root count differs
	// from component count.
	g := gen.Chain(6)
	parent := validForest(t, g)
	parent[3] = graph.None // split the chain into two trees
	err := Forest(g, parent)
	if err == nil {
		t.Fatal("split component accepted")
	}
}

func TestTree(t *testing.T) {
	g := gen.Torus2D(4, 4)
	parent := validForest(t, g)
	if err := Tree(g, parent); err != nil {
		t.Fatal(err)
	}
	dis := graph.Union(gen.Chain(3), gen.Chain(3))
	disParent := validForest(t, dis)
	if err := Tree(dis, disParent); err == nil {
		t.Fatal("Tree accepted a 2-component forest")
	}
	// Empty graph: zero roots is fine.
	empty := gen.Chain(0)
	if err := Tree(empty, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountTreeEdges(t *testing.T) {
	g := graph.Union(gen.Chain(4), gen.Star(5))
	parent := validForest(t, g)
	if got := CountTreeEdges(parent); got != 9-2 {
		t.Fatalf("CountTreeEdges = %d, want 7", got)
	}
}
