// Package verify checks that a computed parent array is a valid spanning
// forest of a graph. It is the independent oracle every test and every
// cmd tool runs after every algorithm: validity of the output under
// arbitrary race outcomes is the paper's central correctness claim
// ("it is legal to set w's parent to either of them; this will not
// change the validity of the spanning tree, only its shape").
package verify

import (
	"fmt"

	"spantree/internal/graph"
)

// Forest checks that parent is a spanning forest of g:
//
//  1. parent has length n, entries are graph.None or in-range;
//  2. every non-root tree edge {v, parent[v]} is an edge of g;
//  3. the tree edges are acyclic (following parents from any vertex
//     terminates at a root);
//  4. the forest spans exactly the connected components of g: two
//     vertices share a tree root iff they are connected in g, and there
//     is exactly one root per component.
//
// It returns nil if all hold, or a descriptive error for the first
// violation found.
func Forest(g *graph.Graph, parent []graph.VID) error {
	n := g.NumVertices()
	if len(parent) != n {
		return fmt.Errorf("verify: parent length %d, want n = %d", len(parent), n)
	}
	roots := 0
	for v := 0; v < n; v++ {
		p := parent[v]
		if p == graph.None {
			roots++
			continue
		}
		if p < 0 || int(p) >= n {
			return fmt.Errorf("verify: parent[%d] = %d out of range [0,%d)", v, p, n)
		}
		if p == graph.VID(v) {
			return fmt.Errorf("verify: parent[%d] = %d is a self-parent (only None marks roots)", v, p)
		}
		if !g.HasEdge(graph.VID(v), p) {
			return fmt.Errorf("verify: tree edge {%d,%d} is not an edge of the graph", v, p)
		}
	}

	// Acyclicity + root lookup in O(n) total: walk up from each vertex,
	// path-marking resolved chains with their root.
	rootOf := make([]graph.VID, n)
	for i := range rootOf {
		rootOf[i] = graph.None
	}
	state := make([]int8, n) // 0 = unvisited, 1 = on current path, 2 = done
	path := make([]graph.VID, 0, 64)
	for v := 0; v < n; v++ {
		if state[v] == 2 {
			continue
		}
		path = path[:0]
		cur := graph.VID(v)
		for {
			if state[cur] == 1 {
				return fmt.Errorf("verify: parent pointers contain a cycle through vertex %d", cur)
			}
			if state[cur] == 2 {
				break // joins an already-resolved chain
			}
			state[cur] = 1
			path = append(path, cur)
			if parent[cur] == graph.None {
				rootOf[cur] = cur
				state[cur] = 2
				break
			}
			cur = parent[cur]
		}
		// cur is resolved; propagate its root down the path.
		root := rootOf[cur]
		for _, u := range path {
			if state[u] != 2 {
				rootOf[u] = root
				state[u] = 2
			}
		}
	}

	// Spanning: tree roots must coincide with graph components.
	comp, ncomp := graph.Components(g)
	if roots != ncomp {
		return fmt.Errorf("verify: %d roots, but graph has %d components", roots, ncomp)
	}
	// Within a component all vertices must share one tree root, and
	// distinct components must have distinct roots. Since the number of
	// roots equals the number of components, checking the former implies
	// the latter.
	compRoot := make([]graph.VID, ncomp)
	for i := range compRoot {
		compRoot[i] = graph.None
	}
	for v := 0; v < n; v++ {
		c := comp[v]
		if compRoot[c] == graph.None {
			compRoot[c] = rootOf[v]
		} else if compRoot[c] != rootOf[v] {
			return fmt.Errorf("verify: component %d has vertices under roots %d and %d", c, compRoot[c], rootOf[v])
		}
	}
	return nil
}

// Tree checks that parent is a spanning tree of a connected graph: a
// spanning forest with exactly one root. Returns an error if g is
// disconnected.
func Tree(g *graph.Graph, parent []graph.VID) error {
	if err := Forest(g, parent); err != nil {
		return err
	}
	roots := 0
	for _, p := range parent {
		if p == graph.None {
			roots++
		}
	}
	if g.NumVertices() > 0 && roots != 1 {
		return fmt.Errorf("verify: %d roots; a spanning tree of a connected graph has exactly 1", roots)
	}
	return nil
}

// CountTreeEdges returns the number of non-root entries, which for a
// valid forest equals n minus the number of components.
func CountTreeEdges(parent []graph.VID) int {
	edges := 0
	for _, p := range parent {
		if p != graph.None {
			edges++
		}
	}
	return edges
}
