// Package par is the SMP execution substrate: it runs a fixed team of p
// virtual processors (goroutines), gives each a processor id, and
// provides barriers, block partitioning, parallel-for loops and
// reductions — the programming model of the paper's POSIX-threads
// implementation, transplanted onto goroutines.
package par

import (
	"fmt"
	"sync"

	"spantree/internal/barrier"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// Team is a reusable group of p virtual processors sharing a barrier,
// reduction scratch space, and the dynamic-scheduling state of
// ForDynamic. Create one per algorithm invocation.
type Team struct {
	p       int
	bar     barrier.Barrier
	model   *smpmodel.Model
	obs     *obs.Recorder
	scratch []pad64 // per-processor reduction slots
	dyn     dynState
}

type pad64 struct {
	v int64
	_ [7]int64
}

// NewTeam returns a team of p virtual processors using a dissemination
// barrier. model may be nil for un-instrumented runs.
func NewTeam(p int, model *smpmodel.Model) *Team {
	if p < 1 {
		panic(fmt.Sprintf("par: NewTeam(%d) needs p >= 1", p))
	}
	t := &Team{
		p:       p,
		bar:     barrier.NewDissemination(p),
		model:   model,
		scratch: make([]pad64, p),
	}
	t.dyn.init(p)
	return t
}

// NumProcs returns the team size.
func (t *Team) NumProcs() int { return t.p }

// Model returns the team's cost model (possibly nil).
func (t *Team) Model() *smpmodel.Model { return t.model }

// Observe attaches an observability recorder to the team and its
// barrier: barrier waits/episodes are recorded by the barrier, and each
// Ctx exposes a per-processor counter handle via Ctx.Obs. Call before
// Run. A nil recorder is a no-op sink.
func (t *Team) Observe(rec *obs.Recorder) *Team {
	t.obs = rec
	t.bar.Observe(rec)
	return t
}

// Run executes fn on all p virtual processors concurrently and waits for
// all of them. Each invocation receives a Ctx bound to its processor id.
// A panic on any processor is re-raised on the caller after all
// processors finish or panic.
func (t *Team) Run(fn func(c *Ctx)) {
	var wg sync.WaitGroup
	wg.Add(t.p)
	panics := make([]any, t.p)
	for tid := 0; tid < t.p; tid++ {
		go func(tid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[tid] = r
				}
			}()
			fn(&Ctx{team: t, tid: tid, probe: t.model.Probe(tid), obs: t.obs.Worker(tid)})
		}(tid)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Ctx is one virtual processor's view of the team.
type Ctx struct {
	team  *Team
	tid   int
	probe *smpmodel.Probe
	obs   *obs.Worker
}

// TID returns the processor id in [0, NumProcs).
func (c *Ctx) TID() int { return c.tid }

// NumProcs returns the team size.
func (c *Ctx) NumProcs() int { return c.team.p }

// Probe returns this processor's cost-model probe (nil-safe to use).
func (c *Ctx) Probe() *smpmodel.Probe { return c.probe }

// Obs returns this processor's observability counter handle (nil-safe
// to use; a no-op sink when the team has no recorder attached).
func (c *Ctx) Obs() *obs.Worker { return c.obs }

// Barrier synchronizes all processors of the team and charges one
// barrier to the cost model (recorded once, by processor 0).
func (c *Ctx) Barrier() {
	if c.tid == 0 {
		c.team.model.AddBarriers(1)
	}
	c.team.bar.Wait(c.tid)
}

// Block returns this processor's contiguous share [lo, hi) of n items
// under the standard balanced block partition.
func (c *Ctx) Block(n int) (lo, hi int) {
	return BlockRange(n, c.team.p, c.tid)
}

// BlockRange splits n items into p nearly equal contiguous blocks and
// returns block tid as [lo, hi). Blocks differ in size by at most one.
func BlockRange(n, p, tid int) (lo, hi int) {
	q, r := n/p, n%p
	lo = tid*q + min(tid, r)
	hi = lo + q
	if tid < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ForStatic runs body(i) for i in this processor's block of [0, n).
// Purely local — no synchronization; pair with Barrier as needed.
func (c *Ctx) ForStatic(n int, body func(i int)) {
	lo, hi := c.Block(n)
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// ReduceSum writes x into this processor's slot, synchronizes, and
// returns the team-wide sum. Involves two barriers so the scratch space
// can be reused immediately after return.
func (c *Ctx) ReduceSum(x int64) int64 {
	c.team.scratch[c.tid].v = x
	c.Barrier()
	var sum int64
	for i := 0; i < c.team.p; i++ {
		sum += c.team.scratch[i].v
	}
	c.Barrier()
	return sum
}

// ReduceMax behaves like ReduceSum with the max operator.
func (c *Ctx) ReduceMax(x int64) int64 {
	c.team.scratch[c.tid].v = x
	c.Barrier()
	best := c.team.scratch[0].v
	for i := 1; i < c.team.p; i++ {
		if c.team.scratch[i].v > best {
			best = c.team.scratch[i].v
		}
	}
	c.Barrier()
	return best
}

// ReduceOr behaves like ReduceSum with boolean OR.
func (c *Ctx) ReduceOr(x bool) bool {
	var v int64
	if x {
		v = 1
	}
	return c.ReduceMax(v) != 0
}
