// Package par is the SMP execution substrate: it runs a fixed team of p
// virtual processors (goroutines), gives each a processor id, and
// provides barriers, block partitioning, parallel-for loops and
// reductions — the programming model of the paper's POSIX-threads
// implementation, transplanted onto goroutines.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"

	"spantree/internal/barrier"
	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

// Team is a reusable group of p virtual processors sharing a barrier,
// reduction scratch space, and the dynamic-scheduling state of
// ForDynamic. Create one per algorithm invocation.
type Team struct {
	p       int
	bar     barrier.Barrier
	model   *smpmodel.Model
	obs     *obs.Recorder
	scratch []pad64 // per-processor reduction slots
	dyn     dynState
	// flag is the run's cooperative stop flag: tripped by the caller's
	// context (via Cancel) or by the panic-isolation wrapper. Every
	// barrier entry and every ForDynamic chunk boundary polls it.
	flag *fault.Flag
	// inj is the chaos fault injector (nil, and compiled to no-ops, in
	// default builds).
	inj *chaos.Injector
}

// teamAbort is the sentinel panic that unwinds a worker out of
// arbitrarily nested algorithm loops once the run's flag has tripped.
// RunErr's recover wrapper swallows it; the flag already records why.
type teamAbort struct{}

type pad64 struct {
	v int64
	_ [7]int64
}

// NewTeam returns a team of p virtual processors using a dissemination
// barrier. model may be nil for un-instrumented runs.
func NewTeam(p int, model *smpmodel.Model) *Team {
	if p < 1 {
		panic(fmt.Sprintf("par: NewTeam(%d) needs p >= 1", p))
	}
	t := &Team{
		p:       p,
		bar:     barrier.NewDissemination(p),
		model:   model,
		scratch: make([]pad64, p),
		flag:    &fault.Flag{},
	}
	t.dyn.init(p)
	return t
}

// Cancel attaches the run's cooperative stop flag (shared with the
// caller's context watcher); nil keeps the team's private flag, which
// only panic isolation can trip. Call before Run, like Observe.
func (t *Team) Cancel(f *fault.Flag) *Team {
	if f != nil {
		t.flag = f
	}
	return t
}

// Chaos attaches a fault injector to the team's barriers and dynamic
// loops. Call before Run. Nil (and every call in a default, non-chaos
// build) is a no-op.
func (t *Team) Chaos(inj *chaos.Injector) *Team {
	t.inj = inj
	return t
}

// NumProcs returns the team size.
func (t *Team) NumProcs() int { return t.p }

// Model returns the team's cost model (possibly nil).
func (t *Team) Model() *smpmodel.Model { return t.model }

// Observe attaches an observability recorder to the team and its
// barrier: barrier waits/episodes are recorded by the barrier, and each
// Ctx exposes a per-processor counter handle via Ctx.Obs. Call before
// Run. A nil recorder is a no-op sink.
func (t *Team) Observe(rec *obs.Recorder) *Team {
	t.obs = rec
	t.bar.Observe(rec)
	return t
}

// Run executes fn on all p virtual processors concurrently and waits for
// all of them. Each invocation receives a Ctx bound to its processor id.
// A panic on any processor is re-raised on the caller after all
// processors finish or panic (the other processors are released from
// any barrier they were parked in, so no goroutine leaks).
func (t *Team) Run(fn func(c *Ctx)) {
	if err := t.RunErr(fn); err != nil {
		if pe, ok := fault.AsPanicError(err); ok {
			panic(pe.Value)
		}
		panic(err)
	}
}

// RunErr is Run with the hardened contract: a worker panic is isolated
// (recovered, recorded per-worker in obs, the team's flag tripped, the
// barrier aborted so the remaining workers drain) and returned as a
// typed *fault.PanicError; a run stopped by the attached cancel flag
// returns fault.ErrCanceled / fault.ErrDeadline. All p workers have
// exited when RunErr returns, whatever the outcome.
func (t *Team) RunErr(fn func(c *Ctx)) error {
	var wg sync.WaitGroup
	wg.Add(t.p)
	for tid := 0; tid < t.p; tid++ {
		go func(tid int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, ok := r.(teamAbort); ok {
					return // cooperative unwind; the flag holds the cause
				}
				ow := t.obs.Worker(tid)
				ow.Incr(obs.PanicsRecovered)
				ow.Trace(obs.EvPanic, 0, 0)
				t.flag.TripPanic(&fault.PanicError{
					Worker: tid, Value: r, Stack: debug.Stack(),
				})
				t.bar.Abort()
			}()
			fn(&Ctx{team: t, tid: tid, probe: t.model.Probe(tid), obs: t.obs.Worker(tid)})
		}(tid)
	}
	wg.Wait()
	return t.flag.Err()
}

// Ctx is one virtual processor's view of the team.
type Ctx struct {
	team  *Team
	tid   int
	probe *smpmodel.Probe
	obs   *obs.Worker
}

// TID returns the processor id in [0, NumProcs).
func (c *Ctx) TID() int { return c.tid }

// NumProcs returns the team size.
func (c *Ctx) NumProcs() int { return c.team.p }

// Probe returns this processor's cost-model probe (nil-safe to use).
func (c *Ctx) Probe() *smpmodel.Probe { return c.probe }

// Obs returns this processor's observability counter handle (nil-safe
// to use; a no-op sink when the team has no recorder attached).
func (c *Ctx) Obs() *obs.Worker { return c.obs }

// Canceled reports whether the run's stop flag has tripped (one atomic
// load; false when no flag was attached and no panic occurred).
func (c *Ctx) Canceled() bool { return c.team.flag.Tripped() }

// abort unwinds this worker cooperatively: the barrier is aborted so no
// teammate stays parked, and the teamAbort sentinel carries the unwind
// to RunErr's recover wrapper. The flag must already be tripped.
func (c *Ctx) abort() {
	c.obs.Incr(obs.Cancels)
	c.obs.Trace(obs.EvCancel, int64(c.team.flag.Cause()), 0)
	c.team.bar.Abort()
	panic(teamAbort{})
}

// Barrier synchronizes all processors of the team and charges one
// barrier to the cost model (recorded once, by processor 0). When the
// run's stop flag trips, Barrier never parks a worker for good: the
// episode is aborted and every participant unwinds to RunErr instead of
// synchronizing.
func (c *Ctx) Barrier() {
	c.team.inj.Visit(c.tid, chaos.PointBarrier)
	if c.team.flag.Tripped() {
		c.abort()
	}
	if c.tid == 0 {
		c.team.model.AddBarriers(1)
	}
	if !c.team.bar.WaitAbortable(c.tid) {
		c.obs.Incr(obs.Cancels)
		c.obs.Trace(obs.EvCancel, int64(c.team.flag.Cause()), 0)
		panic(teamAbort{})
	}
}

// Block returns this processor's contiguous share [lo, hi) of n items
// under the standard balanced block partition.
func (c *Ctx) Block(n int) (lo, hi int) {
	return BlockRange(n, c.team.p, c.tid)
}

// BlockRange splits n items into p nearly equal contiguous blocks and
// returns block tid as [lo, hi). Blocks differ in size by at most one.
func BlockRange(n, p, tid int) (lo, hi int) {
	q, r := n/p, n%p
	lo = tid*q + min(tid, r)
	hi = lo + q
	if tid < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ForStatic runs body(i) for i in this processor's block of [0, n).
// Purely local — no synchronization; pair with Barrier as needed.
func (c *Ctx) ForStatic(n int, body func(i int)) {
	lo, hi := c.Block(n)
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// ReduceSum writes x into this processor's slot, synchronizes, and
// returns the team-wide sum. Involves two barriers so the scratch space
// can be reused immediately after return.
func (c *Ctx) ReduceSum(x int64) int64 {
	c.team.scratch[c.tid].v = x
	c.Barrier()
	var sum int64
	for i := 0; i < c.team.p; i++ {
		sum += c.team.scratch[i].v
	}
	c.Barrier()
	return sum
}

// ReduceMax behaves like ReduceSum with the max operator.
func (c *Ctx) ReduceMax(x int64) int64 {
	c.team.scratch[c.tid].v = x
	c.Barrier()
	best := c.team.scratch[0].v
	for i := 1; i < c.team.p; i++ {
		if c.team.scratch[i].v > best {
			best = c.team.scratch[i].v
		}
	}
	c.Barrier()
	return best
}

// ReduceOr behaves like ReduceSum with boolean OR.
func (c *Ctx) ReduceOr(x bool) bool {
	var v int64
	if x {
		v = 1
	}
	return c.ReduceMax(v) != 0
}
