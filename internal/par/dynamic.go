package par

// This file is the shared dynamic execution layer: a work-stealing
// parallel-for over index ranges with the adaptive chunking, p-scaled
// steal threshold, and per-victim starvation signal of internal/sched —
// the same runtime discipline as the work-stealing traversal in
// internal/core, exposed to every algorithm in the tree. Porting a hot
// loop from ForStatic to ForDynamic is a one-line change; the chunk
// policy of the -chunk flag then governs it like everything else.
//
// Scheduling works on contiguous index ranges, not queued items: each
// worker starts from its static block of [0, n) held in a per-worker
// range slot, drains the front of its own slot in controller-sized
// chunks, and when empty raids the other slots, moving the upper half
// of a victim's remaining range into its own slot (steal-half, as in
// wsq, but O(1) on ranges). A slot is a mutex-guarded [lo, hi) plus an
// atomic size mirror so thieves can scan victims without touching their
// locks — the same two-step probe the traversal queues use.
//
// Like ForStatic, ForDynamic has no entry or exit barrier: a worker
// returns when its slot is empty and no victim has a stealable surplus,
// so callers pair it with Barrier exactly as before and the modeled
// barrier count B is unchanged by a port. Ranges still in shallow slots
// at that point are finished by their owners (a worker never abandons a
// non-empty slot), which keeps the exactly-once guarantee without a
// termination protocol. Because there is no barrier, a slot is tagged
// with its owner's call number and thieves validate the tag under the
// victim's lock: a worker that has already raced ahead into the next
// ForDynamic call publishes a new tag, and stragglers of the previous
// call simply stop stealing from it.
//
// Determinism contract: with a cost model attached, ForDynamic runs
// each worker's static block in controller-sized chunks with no
// stealing, charging the same per-drain costs the real path would pay
// (T_M += 2 noncontiguous accesses per drain boundary, as in the
// traversal's batched hot path) plus each worker's terminal steal scan
// (p-1 victim probes and one fruitless poll — the coordination floor
// every schedule pays). Modeled figures therefore stay reproducible
// run-to-run — the lockstep-driver rule, applied to the substrate —
// while wall-clock runs (nil model) get the full work-stealing path.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"spantree/internal/chaos"
	"spantree/internal/obs"
	"spantree/internal/sched"
)

// Re-exports: algorithm packages configure chunking through par without
// importing the scheduling layer directly.
type ChunkPolicy = sched.ChunkPolicy

const (
	ChunkAdaptive = sched.ChunkAdaptive
	ChunkFixed    = sched.ChunkFixed
	// DefaultChunkSize is the fixed-policy default drain chunk.
	DefaultChunkSize = sched.DefaultChunkSize
)

// ParseChunkPolicy converts a CLI name ("adaptive", "fixed") into a
// ChunkPolicy.
func ParseChunkPolicy(s string) (ChunkPolicy, error) { return sched.ParseChunkPolicy(s) }

// dynSlot is one worker's shareable range of the iteration space.
// lo/hi/tag are guarded by mu; size mirrors hi-lo for lock-free victim
// scans and tag is additionally readable without mu for the thief-side
// starvation charge. Padded out so neighboring workers' slots don't
// false-share.
type dynSlot struct {
	mu     sync.Mutex
	lo, hi int
	tag    atomic.Int64
	size   atomic.Int64
	_      [4]int64
}

type dynCtrl struct {
	c     sched.Controller
	calls int64 // this worker's ForDynamic invocation count (the slot tag)
	init  bool
	_     [4]int64
}

// dynState is the per-team half of the dynamic layer.
type dynState struct {
	slots  []dynSlot
	ctrls  []dynCtrl
	fail   *sched.FailSignal
	policy sched.ChunkPolicy
	size   int
}

func (d *dynState) init(p int) {
	d.slots = make([]dynSlot, p)
	d.ctrls = make([]dynCtrl, p)
	d.fail = sched.NewFailSignal(p)
}

// Chunk selects the team's chunk policy and size (the -chunk knobs) for
// ForDynamic loops. Call before Run, like Observe; the zero
// configuration is the adaptive policy with the default growth cap.
func (t *Team) Chunk(policy ChunkPolicy, size int) *Team {
	t.dyn.policy = policy
	t.dyn.size = size
	return t
}

// ctrl returns this worker's persistent chunk controller, creating it
// on first use so a controller's learned chunk size carries across the
// ForDynamic calls of one team (phases of one algorithm run).
func (c *Ctx) ctrl() *dynCtrl {
	dc := &c.team.dyn.ctrls[c.tid]
	if !dc.init {
		dc.c = sched.NewController(c.team.dyn.policy, c.team.dyn.size)
		dc.init = true
	}
	return dc
}

// ForDynamic runs body(i) for every i in [0, n) across the team with
// work-stealing and adaptive chunking. All processors must call it
// collectively with the same n and an equivalent body; each i is
// executed exactly once, by whichever worker claims it. Like ForStatic
// there is no implied barrier — pair with Barrier as needed.
//
// Cancellation cadence: the team's fault flag is polled once per drain
// chunk (and per steal scan), never per item — the poll piggybacks on
// the chunk boundary the loop already pays for, so hardening adds one
// atomic load per chunk. The latency bound that buys: after a trip,
// each worker finishes at most the chunk it already claimed before
// unwinding, so at most p chunks of body calls run after the flag is
// visible — one chunk per worker, sized by the chunk controller (the
// adaptive policy caps growth; the fixed policy makes the bound exact).
// Algorithms whose per-item work is unbounded (edge sweeps over skewed
// degree distributions) inherit the bound in items, not edges: a
// pathological vertex extends the window by its own degree only.
func (c *Ctx) ForDynamic(n int, body func(i int)) {
	dc := c.ctrl()
	dc.calls++
	if n <= 0 {
		return
	}
	var lc obs.Local
	if c.team.model != nil {
		c.forDynamicModeled(n, body, dc, &lc)
	} else {
		c.forDynamicSteal(n, body, dc, &lc)
	}
	c.obs.Max(obs.ChunkHighWater, int64(dc.c.HighWater()))
	lc.FlushTo(c.obs)
}

// forDynamicModeled is the deterministic path used whenever a cost
// model is attached: the worker keeps its static block (so T_M is a
// pure function of input and p, never of steal timing) but pays the
// dynamic layer's drain cadence — 2 noncontiguous accesses per chunk
// boundary — and runs the real controller against its own remaining
// range, so modeled runs exercise and report the same chunk dynamics.
//
// Steal traffic is charged at its deterministic floor: the wall-clock
// path's workers each run one terminal steal scan before returning —
// p-1 lock-free size probes that find every slot empty or too shallow,
// then one fruitless poll before giving up. That coordination traffic
// exists on every schedule, so the model charges it per worker; what
// stays out is the timing-dependent part (successful steals and
// retries), which would make T_M a function of the schedule.
func (c *Ctx) forDynamicModeled(n int, body func(i int), dc *dynCtrl, lc *obs.Local) {
	lo, hi := c.Block(n)
	for lo < hi {
		if c.team.flag.Tripped() {
			lc.FlushTo(c.obs)
			c.abort()
		}
		k := dc.c.Chunk()
		if k > hi-lo {
			k = hi - lo
		}
		c.probe.NonContig(2)
		lc.Incr(obs.ChunkDrains)
		lc.Add(obs.DrainedVertices, int64(k))
		lc.Incr(obs.DrainHistBucket(k))
		for i := lo; i < lo+k; i++ {
			body(i)
		}
		lo += k
		dc.c.Adapt(hi-lo, 0, lc)
	}
	if p := c.team.p; p > 1 {
		c.probe.NonContig(int64(p-1) + 1) // terminal victim scan + fruitless poll
		lc.Incr(obs.StealAttempts)
		lc.Incr(obs.StealFailures)
	}
}

// forDynamicSteal is the wall-clock path: drain the front of the own
// slot in controller-sized chunks; when empty, raid the other slots for
// the upper half of a victim's range.
func (c *Ctx) forDynamicSteal(n int, body func(i int), dc *dynCtrl, lc *obs.Local) {
	d := &c.team.dyn
	p := c.team.p
	minSteal := sched.MinStealLen(p)
	my := &d.slots[c.tid]

	lo, hi := c.Block(n)
	my.mu.Lock()
	my.lo, my.hi = lo, hi
	my.tag.Store(dc.calls)
	my.size.Store(int64(hi - lo))
	my.mu.Unlock()

	for {
		// Drain the own slot to empty. The cancel poll and the chaos visit
		// piggyback on the chunk boundary the drain already pays for, so
		// the hardened loop adds one atomic load per locked drain, not per
		// item.
		for {
			if c.team.flag.Tripped() {
				lc.FlushTo(c.obs)
				c.abort()
			}
			c.team.inj.Visit(c.tid, chaos.PointDrain)
			my.mu.Lock()
			k := dc.c.Chunk()
			if rem := my.hi - my.lo; k > rem {
				k = rem
			}
			lo = my.lo
			my.lo += k
			rem := my.hi - my.lo
			my.size.Store(int64(rem))
			my.mu.Unlock()
			if k == 0 {
				break
			}
			lc.Incr(obs.ChunkDrains)
			lc.Add(obs.DrainedVertices, int64(k))
			lc.Incr(obs.DrainHistBucket(k))
			for i := lo; i < lo+k; i++ {
				body(i)
			}
			dc.c.Adapt(rem, d.fail.Load(c.tid), lc)
		}
		if p == 1 || !c.dynSteal(dc, minSteal, lc) {
			return
		}
	}
}

// dynSteal scans the other workers' slots for a range worth taking and
// moves the upper half of the first such range into this worker's slot.
// It retries while some victim shows a stealable surplus (a lost lock
// race is not starvation) and returns false once every victim is empty
// or too shallow to raid — charging, per the per-victim discipline, one
// failed steal against exactly the workers still holding sub-threshold
// work, since only their drain chunks hide frontier from thieves.
func (c *Ctx) dynSteal(dc *dynCtrl, minSteal int, lc *obs.Local) bool {
	d := &c.team.dyn
	p := c.team.p
	for {
		if c.team.flag.Tripped() {
			lc.FlushTo(c.obs)
			c.abort()
		}
		c.team.inj.Visit(c.tid, chaos.PointSteal)
		anyDeep := false
		for off := 1; off < p; off++ {
			v := (c.tid + off) % p
			vs := &d.slots[v]
			// Lock-free probe; the tag filter keeps a straggler from
			// spinning on workers already gone ahead into a later call.
			if int(vs.size.Load()) < minSteal || vs.tag.Load() != dc.calls {
				continue
			}
			anyDeep = true
			lc.Incr(obs.StealAttempts)
			// A vetoed steal counts as a lost lock race: the range stays
			// with its owner and the thief retries after a yield, which is
			// exactly the delayed-steal schedule the chaos layer wants.
			if c.team.inj.VetoSteal(c.tid) {
				continue
			}
			vs.mu.Lock()
			rem := vs.hi - vs.lo
			if vs.tag.Load() != dc.calls || rem < minSteal {
				vs.mu.Unlock()
				continue
			}
			mid := vs.lo + rem/2
			stolenLo, stolenHi := mid, vs.hi
			vs.hi = mid
			vs.size.Store(int64(mid - vs.lo))
			vs.mu.Unlock()

			my := &d.slots[c.tid]
			my.mu.Lock()
			my.lo, my.hi = stolenLo, stolenHi
			my.size.Store(int64(stolenHi - stolenLo))
			my.mu.Unlock()
			lc.Incr(obs.StealSuccesses)
			return true
		}
		if !anyDeep {
			// Fully fruitless pass: every matching slot is below the
			// steal threshold. Whoever still holds items is hiding them
			// in a too-large chunk — tell their controllers.
			starving := false
			for off := 1; off < p; off++ {
				v := (c.tid + off) % p
				vs := &d.slots[v]
				if vs.size.Load() > 0 && vs.tag.Load() == dc.calls {
					d.fail.Record(v)
					starving = true
				}
			}
			if starving {
				lc.Incr(obs.StealFailures)
			}
			return false
		}
		runtime.Gosched()
	}
}
