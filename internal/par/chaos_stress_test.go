//go:build chaos

package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spantree/internal/chaos"
	"spantree/internal/fault"
	"spantree/internal/smpmodel"
)

// The ForDynamic chaos stress suite: >= 50 seeded schedules against the
// work-stealing sweep, proving termination and exactly-once delivery of
// every index under stalls and vetoed steals.

func TestChaosStressForDynamic(t *testing.T) {
	const n = 20000
	for seed := uint64(1); seed <= 50; seed++ {
		p := 2 + int(seed%7)
		inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
		team := NewTeam(p, nil).Chaos(inj)
		hits := make([]atomic.Int32, n)
		done := make(chan error, 1)
		go func() {
			done <- team.RunErr(func(c *Ctx) {
				c.ForDynamic(n, func(i int) { hits[i].Add(1) })
			})
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("seed=%d p=%d: %v", seed, p, err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("seed=%d p=%d: ForDynamic did not terminate under chaos", seed, p)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("seed=%d p=%d: index %d delivered %d times, want exactly once", seed, p, i, got)
			}
		}
		if inj.Injections() == 0 {
			t.Fatalf("seed=%d p=%d: chaos injected nothing", seed, p)
		}
	}
}

// TestChaosForDynamicModeled drives the deterministic modeled path (the
// one the cost-model runs use) under the same seeds: chunk claiming off
// the shared cursor must stay exactly-once under stalls too.
func TestChaosForDynamicModeled(t *testing.T) {
	const n = 8000
	for seed := uint64(1); seed <= 50; seed++ {
		p := 2 + int(seed%5)
		inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
		team := NewTeam(p, smpmodel.New(p)).Chaos(inj)
		hits := make([]atomic.Int32, n)
		if err := team.RunErr(func(c *Ctx) {
			c.ForDynamic(n, func(i int) { hits[i].Add(1) })
		}); err != nil {
			t.Fatalf("seed=%d p=%d: %v", seed, p, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("seed=%d p=%d: index %d delivered %d times, want exactly once", seed, p, i, got)
			}
		}
	}
}

// TestChaosInjectedPanicSurfacesAsPanicError aims an InjectedPanic into
// a ForDynamic sweep and checks RunErr's isolation contract: the team
// drains (no goroutine leaked, no deadlock at the barrier) and the
// structured PanicError comes back as the error.
func TestChaosInjectedPanicSurfacesAsPanicError(t *testing.T) {
	const n = 10000
	for _, pt := range []chaos.Point{chaos.PointDrain, chaos.PointSteal} {
		const p = 4
		inj := chaos.New(chaos.Config{
			Seed: 7, Workers: p,
			PanicPoint: pt, PanicWorker: 1, PanicAfter: 1,
		}, nil)
		team := NewTeam(p, nil).Chaos(inj)
		before := runtime.NumGoroutine()
		err := team.RunErr(func(c *Ctx) {
			for round := 0; round < 50; round++ {
				c.ForDynamic(n, func(i int) {})
				c.Barrier()
			}
		})
		var pe *fault.PanicError
		if !errors.As(err, &pe) {
			// The steal point requires a worker to actually run dry; with
			// this much work every worker steals, but stay honest if not.
			if pt == chaos.PointSteal && err == nil {
				continue
			}
			t.Fatalf("point=%v: err = %v, want *fault.PanicError", pt, err)
		}
		ip, ok := pe.Value.(chaos.InjectedPanic)
		if !ok || ip.Worker != 1 || ip.Point != pt {
			t.Fatalf("point=%v: panic value %v, want aimed InjectedPanic", pt, pe.Value)
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("point=%v: team goroutines leaked after isolated panic", pt)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestChaosCancellationUnderPerturbation trips the team flag from one
// worker mid-sweep under seeded chaos: RunErr must return ErrCanceled
// with every teammate drained.
func TestChaosCancellationUnderPerturbation(t *testing.T) {
	const n = 50000
	for seed := uint64(1); seed <= 10; seed++ {
		p := 2 + int(seed%4)
		inj := chaos.New(chaos.DefaultConfig(seed, p), nil)
		flag := &fault.Flag{}
		team := NewTeam(p, nil).Chaos(inj).Cancel(flag)
		before := runtime.NumGoroutine()
		var did atomic.Int64
		err := team.RunErr(func(c *Ctx) {
			c.ForDynamic(n, func(i int) {
				if did.Add(1) == int64(n/10) {
					flag.Trip(fault.CauseCanceled)
				}
			})
			c.Barrier()
		})
		if !errors.Is(err, fault.ErrCanceled) {
			t.Fatalf("seed=%d p=%d: err = %v, want ErrCanceled", seed, p, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("seed=%d p=%d: goroutines leaked after cancel", seed, p)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
