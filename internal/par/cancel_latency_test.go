package par

import (
	"errors"
	"sync/atomic"
	"testing"

	"spantree/internal/fault"
	"spantree/internal/smpmodel"
)

// TestForDynamicCancellationLatencyBound pins the documented polling
// cadence: the flag is checked once per drain chunk, so after a trip
// each worker finishes at most the chunk it already claimed — with the
// fixed policy, at most p*chunk body calls run after the flag is
// visible. The body trips the flag on the first item and counts every
// call; the overshoot past the snapshot taken right after the trip must
// stay within the bound.
func TestForDynamicCancellationLatencyBound(t *testing.T) {
	const (
		n     = 1_000_000
		chunk = 64
		p     = 4
	)
	flag := &fault.Flag{}
	team := NewTeam(p, nil).Chunk(ChunkFixed, chunk).Cancel(flag)
	var done, atTrip atomic.Int64
	err := team.RunErr(func(c *Ctx) {
		c.ForDynamic(n, func(i int) {
			if i == 0 {
				flag.Trip(fault.CauseCanceled)
				atTrip.Store(done.Load())
			}
			done.Add(1)
		})
	})
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	total, snap := done.Load(), atTrip.Load()
	// Items executed after the snapshot are a subset of the items
	// executed after the trip, and those are bounded by one in-flight
	// chunk per worker.
	if total-snap > p*chunk {
		t.Fatalf("%d items ran after the trip, bound is p*chunk = %d", total-snap, p*chunk)
	}
	if total == n {
		t.Fatal("sweep ran to completion; the trip canceled nothing")
	}
}

// TestForDynamicModeledCancellationLatency drives the same bound on the
// deterministic modeled path (static blocks, same per-chunk poll).
func TestForDynamicModeledCancellationLatency(t *testing.T) {
	const (
		n     = 400_000
		chunk = 64
		p     = 4
	)
	flag := &fault.Flag{}
	team := NewTeam(p, smpmodel.New(p)).Chunk(ChunkFixed, chunk).Cancel(flag)
	var done, atTrip atomic.Int64
	err := team.RunErr(func(c *Ctx) {
		c.ForDynamic(n, func(i int) {
			if i == 0 {
				flag.Trip(fault.CauseCanceled)
				atTrip.Store(done.Load())
			}
			done.Add(1)
		})
	})
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if total, snap := done.Load(), atTrip.Load(); total-snap > p*chunk {
		t.Fatalf("%d items ran after the trip, bound is p*chunk = %d", total-snap, p*chunk)
	}
}
