package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"spantree/internal/smpmodel"
)

func TestBlockRangeCoversExactly(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 5000)
		p := int(pRaw%64) + 1
		covered := make([]int, n)
		prevHi := 0
		for tid := 0; tid < p; tid++ {
			lo, hi := BlockRange(n, p, tid)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > n/p+1 || (n >= p && hi-lo < n/p) {
				return false // blocks must be balanced
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != n {
			return false
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTeamRunAllProcessors(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		team := NewTeam(p, nil)
		if team.NumProcs() != p {
			t.Fatalf("NumProcs = %d", team.NumProcs())
		}
		seen := make([]int32, p)
		team.Run(func(c *Ctx) {
			atomic.AddInt32(&seen[c.TID()], 1)
			if c.NumProcs() != p {
				t.Errorf("ctx NumProcs = %d, want %d", c.NumProcs(), p)
			}
		})
		for tid, s := range seen {
			if s != 1 {
				t.Fatalf("p=%d: tid %d ran %d times", p, tid, s)
			}
		}
	}
}

func TestTeamRunPropagatesPanic(t *testing.T) {
	team := NewTeam(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("panic not propagated")
		}
	}()
	team.Run(func(c *Ctx) {
		if c.TID() == 1 {
			panic("boom")
		}
		// NOTE: survivors must not wait on a barrier here — a panicking
		// participant never arrives and the team would deadlock, which
		// is the documented contract of barrier-synchronized code.
	})
}

func TestForStaticPartitions(t *testing.T) {
	const n = 1000
	team := NewTeam(4, nil)
	hits := make([]int32, n)
	team.Run(func(c *Ctx) {
		c.ForStatic(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForDynamicPartitions(t *testing.T) {
	const n = 1000
	for _, chunk := range []int{0, 1, 7, 64, 5000} {
		team := NewTeam(4, nil)
		d := NewCounter()
		hits := make([]int32, n)
		team.Run(func(c *Ctx) {
			c.ForDynamic(d, n, chunk, func(i int) { atomic.AddInt32(&hits[i], 1) })
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: index %d visited %d times", chunk, i, h)
			}
		}
	}
}

func TestReductions(t *testing.T) {
	team := NewTeam(6, nil)
	team.Run(func(c *Ctx) {
		sum := c.ReduceSum(int64(c.TID() + 1))
		if sum != 21 { // 1+2+...+6
			t.Errorf("ReduceSum = %d, want 21", sum)
		}
		max := c.ReduceMax(int64(c.TID()))
		if max != 5 {
			t.Errorf("ReduceMax = %d, want 5", max)
		}
		or := c.ReduceOr(c.TID() == 3)
		if !or {
			t.Error("ReduceOr missed the true vote")
		}
		or = c.ReduceOr(false)
		if or {
			t.Error("ReduceOr fabricated a true vote")
		}
		// Back-to-back reductions must not interfere.
		a := c.ReduceSum(1)
		b := c.ReduceSum(2)
		if a != 6 || b != 12 {
			t.Errorf("sequential reductions %d, %d", a, b)
		}
	})
}

func TestBarrierChargesModel(t *testing.T) {
	model := smpmodel.New(4)
	team := NewTeam(4, model)
	team.Run(func(c *Ctx) {
		for i := 0; i < 5; i++ {
			c.Barrier()
		}
	})
	if model.Barriers() != 5 {
		t.Fatalf("model recorded %d barriers, want 5", model.Barriers())
	}
}

func TestProbeAccess(t *testing.T) {
	model := smpmodel.New(2)
	team := NewTeam(2, model)
	team.Run(func(c *Ctx) {
		c.Probe().NonContig(int64(c.TID() + 1))
	})
	if model.Proc(0).NonContig != 1 || model.Proc(1).NonContig != 2 {
		t.Fatal("probes charged the wrong processors")
	}
	// Nil-model teams yield nil probes that are safe to use.
	team = NewTeam(2, nil)
	team.Run(func(c *Ctx) {
		c.Probe().NonContig(5)
		c.Probe().Contig(5)
		c.Probe().Ops(5)
	})
}

func TestNewTeamPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) accepted")
		}
	}()
	NewTeam(0, nil)
}
