package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"spantree/internal/obs"
	"spantree/internal/smpmodel"
)

func TestBlockRangeCoversExactly(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 5000)
		p := int(pRaw%64) + 1
		covered := make([]int, n)
		prevHi := 0
		for tid := 0; tid < p; tid++ {
			lo, hi := BlockRange(n, p, tid)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > n/p+1 || (n >= p && hi-lo < n/p) {
				return false // blocks must be balanced
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != n {
			return false
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTeamRunAllProcessors(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		team := NewTeam(p, nil)
		if team.NumProcs() != p {
			t.Fatalf("NumProcs = %d", team.NumProcs())
		}
		seen := make([]int32, p)
		team.Run(func(c *Ctx) {
			atomic.AddInt32(&seen[c.TID()], 1)
			if c.NumProcs() != p {
				t.Errorf("ctx NumProcs = %d, want %d", c.NumProcs(), p)
			}
		})
		for tid, s := range seen {
			if s != 1 {
				t.Fatalf("p=%d: tid %d ran %d times", p, tid, s)
			}
		}
	}
}

func TestTeamRunPropagatesPanic(t *testing.T) {
	team := NewTeam(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("panic not propagated")
		}
	}()
	team.Run(func(c *Ctx) {
		if c.TID() == 1 {
			panic("boom")
		}
		// NOTE: survivors must not wait on a barrier here — a panicking
		// participant never arrives and the team would deadlock, which
		// is the documented contract of barrier-synchronized code.
	})
}

func TestForStaticPartitions(t *testing.T) {
	const n = 1000
	team := NewTeam(4, nil)
	hits := make([]int32, n)
	team.Run(func(c *Ctx) {
		c.ForStatic(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForDynamicPartitions(t *testing.T) {
	const n = 1000
	for _, cfg := range []struct {
		policy ChunkPolicy
		size   int
	}{
		{ChunkAdaptive, 0}, {ChunkAdaptive, 4},
		{ChunkFixed, 1}, {ChunkFixed, 7}, {ChunkFixed, 64}, {ChunkFixed, 5000},
	} {
		for _, p := range []int{1, 3, 4, 8} {
			team := NewTeam(p, nil).Chunk(cfg.policy, cfg.size)
			hits := make([]int32, n)
			team.Run(func(c *Ctx) {
				c.ForDynamic(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%v/%d p=%d: index %d visited %d times",
						cfg.policy, cfg.size, p, i, h)
				}
			}
		}
	}
}

// TestForDynamicBackToBack covers the barrier-free contract: two
// consecutive ForDynamic calls with no Barrier between them must still
// visit every index of both loops exactly once, with cross-call steals
// rejected by the slot tags.
func TestForDynamicBackToBack(t *testing.T) {
	const n = 2000
	for rep := 0; rep < 20; rep++ {
		team := NewTeam(8, nil)
		a := make([]int32, n)
		b := make([]int32, n)
		team.Run(func(c *Ctx) {
			c.ForDynamic(n, func(i int) { atomic.AddInt32(&a[i], 1) })
			c.ForDynamic(n, func(i int) { atomic.AddInt32(&b[i], 1) })
		})
		for i := 0; i < n; i++ {
			if a[i] != 1 || b[i] != 1 {
				t.Fatalf("rep %d: index %d visited a=%d b=%d times", rep, i, a[i], b[i])
			}
		}
	}
}

// TestForDynamicStealsFromSkew pins the point of the port: with all the
// work piled on one worker's static block (everyone else's body is a
// no-op region), the other workers must actually steal some of it.
func TestForDynamicStealsFromSkew(t *testing.T) {
	const n = 1 << 14
	team := NewTeam(4, nil)
	var who [n]int32
	team.Run(func(c *Ctx) {
		c.ForDynamic(n, func(i int) {
			// Skew: only indices in worker 0's static block cost
			// anything. The Gosched makes the skew observable even on a
			// single-CPU box, where goroutines interleave only at yield
			// points — without it the loaded worker can run its whole
			// block before any thief gets scheduled.
			if lo, hi := BlockRange(n, 4, 0); i >= lo && i < hi {
				runtime.Gosched()
			}
			atomic.StoreInt32(&who[i], int32(c.TID())+1)
		})
	})
	lo, hi := BlockRange(n, 4, 0)
	stolen := 0
	for i := lo; i < hi; i++ {
		if who[i] == 0 {
			t.Fatalf("index %d never executed", i)
		}
		if who[i] != 1 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("no work migrated off the loaded worker")
	}
}

// TestForDynamicModeledDeterministic pins the determinism contract:
// with a model attached the per-processor T_M charge is identical
// run-to-run (no stealing on the modeled path).
func TestForDynamicModeledDeterministic(t *testing.T) {
	const n, p = 5000, 4
	charge := func() [p]int64 {
		model := smpmodel.New(p)
		team := NewTeam(p, model)
		team.Run(func(c *Ctx) {
			c.ForDynamic(n, func(i int) { c.Probe().NonContig(1) })
		})
		var out [p]int64
		for tid := 0; tid < p; tid++ {
			out[tid] = model.Proc(tid).NonContig
		}
		return out
	}
	first := charge()
	for rep := 0; rep < 5; rep++ {
		if got := charge(); got != first {
			t.Fatalf("modeled charge varied: %v vs %v", got, first)
		}
	}
}

// TestForDynamicModeledStealFloor pins the modeled steal-traffic floor:
// every worker of a modeled ForDynamic charges one terminal victim scan
// (p-1 size probes plus a fruitless poll) and reports it as one failed
// steal attempt, while a p=1 team charges none.
func TestForDynamicModeledStealFloor(t *testing.T) {
	const n = 1000
	run := func(p int) (attempts, failures, successes int64, nc [8]int64) {
		model := smpmodel.New(p)
		rec := obs.New(p)
		team := NewTeam(p, model).Observe(rec)
		team.Run(func(c *Ctx) {
			c.ForDynamic(n, func(i int) {})
		})
		for tid := 0; tid < p; tid++ {
			nc[tid] = model.Proc(tid).NonContig
		}
		return rec.Total(obs.StealAttempts), rec.Total(obs.StealFailures),
			rec.Total(obs.StealSuccesses), nc
	}
	att, fail, succ, _ := run(4)
	if att != 4 || fail != 4 || succ != 0 {
		t.Fatalf("p=4: attempts=%d failures=%d successes=%d, want 4/4/0", att, fail, succ)
	}
	att, fail, _, _ = run(1)
	if att != 0 || fail != 0 {
		t.Fatalf("p=1: attempts=%d failures=%d, want 0/0", att, fail)
	}
	// The scan charge itself: run the same block shape with and without a
	// body charge; the fixed floor is p-1 probes + 1 poll on every worker.
	_, _, _, nc := run(4)
	for tid := 0; tid < 4; tid++ {
		perDrain := nc[tid] // drains + scan; the scan part must be >= p
		if perDrain < int64(4-1+1) {
			t.Fatalf("worker %d: NonContig=%d, below the scan floor", tid, perDrain)
		}
	}
}

func TestReductions(t *testing.T) {
	team := NewTeam(6, nil)
	team.Run(func(c *Ctx) {
		sum := c.ReduceSum(int64(c.TID() + 1))
		if sum != 21 { // 1+2+...+6
			t.Errorf("ReduceSum = %d, want 21", sum)
		}
		max := c.ReduceMax(int64(c.TID()))
		if max != 5 {
			t.Errorf("ReduceMax = %d, want 5", max)
		}
		or := c.ReduceOr(c.TID() == 3)
		if !or {
			t.Error("ReduceOr missed the true vote")
		}
		or = c.ReduceOr(false)
		if or {
			t.Error("ReduceOr fabricated a true vote")
		}
		// Back-to-back reductions must not interfere.
		a := c.ReduceSum(1)
		b := c.ReduceSum(2)
		if a != 6 || b != 12 {
			t.Errorf("sequential reductions %d, %d", a, b)
		}
	})
}

func TestBarrierChargesModel(t *testing.T) {
	model := smpmodel.New(4)
	team := NewTeam(4, model)
	team.Run(func(c *Ctx) {
		for i := 0; i < 5; i++ {
			c.Barrier()
		}
	})
	if model.Barriers() != 5 {
		t.Fatalf("model recorded %d barriers, want 5", model.Barriers())
	}
}

func TestProbeAccess(t *testing.T) {
	model := smpmodel.New(2)
	team := NewTeam(2, model)
	team.Run(func(c *Ctx) {
		c.Probe().NonContig(int64(c.TID() + 1))
	})
	if model.Proc(0).NonContig != 1 || model.Proc(1).NonContig != 2 {
		t.Fatal("probes charged the wrong processors")
	}
	// Nil-model teams yield nil probes that are safe to use.
	team = NewTeam(2, nil)
	team.Run(func(c *Ctx) {
		c.Probe().NonContig(5)
		c.Probe().Contig(5)
		c.Probe().Ops(5)
	})
}

func TestNewTeamPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) accepted")
		}
	}()
	NewTeam(0, nil)
}
