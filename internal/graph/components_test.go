package graph

import (
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.NumSets() != 5 {
		t.Fatalf("NumSets = %d, want 5", uf.NumSets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions reported no-op")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	if uf.NumSets() != 3 {
		t.Fatalf("NumSets = %d, want 3", uf.NumSets())
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Fatal("Same disagrees with unions")
	}
	uf.Union(0, 2)
	if !uf.Same(1, 3) {
		t.Fatal("transitivity broken")
	}
}

func TestUnionFindMatchesBFSComponents(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 400)
		g := randomGraph(seed, n, m)
		uf := NewUnionFind(n)
		for _, e := range g.Edges() {
			uf.Union(e.U, e.V)
		}
		comp, ncomp := Components(g)
		if uf.NumSets() != ncomp {
			return false
		}
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if (comp[v] == comp[w]) != uf.Same(VID(v), VID(w)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsLabeling(t *testing.T) {
	// Two triangles and an isolated vertex.
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	g := b.Build()
	comp, n := Components(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	// Labels assigned in order of smallest vertex.
	if comp[0] != 0 || comp[3] != 1 || comp[6] != 2 {
		t.Fatalf("labels %v", comp)
	}
	if comp[1] != 0 || comp[5] != 1 {
		t.Fatalf("labels %v", comp)
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestIsConnectedEdgeCases(t *testing.T) {
	if !IsConnected(NewBuilder(0).Build()) {
		t.Fatal("empty graph should count as connected")
	}
	if !IsConnected(NewBuilder(1).Build()) {
		t.Fatal("single vertex should be connected")
	}
	if IsConnected(NewBuilder(2).Build()) {
		t.Fatal("two isolated vertices are not connected")
	}
}

func TestPseudoDiameter(t *testing.T) {
	if d := PseudoDiameter(pathGraph(10), 5); d != 9 {
		t.Fatalf("path pseudo-diameter from middle = %d, want 9", d)
	}
	if d := PseudoDiameter(cycleGraph(10), 0); d != 5 {
		t.Fatalf("10-cycle pseudo-diameter = %d, want 5", d)
	}
	if d := PseudoDiameter(NewBuilder(1).Build(), 0); d != 0 {
		t.Fatalf("singleton pseudo-diameter = %d, want 0", d)
	}
	if d := PseudoDiameter(NewBuilder(0).Build(), 0); d != 0 {
		t.Fatalf("empty pseudo-diameter = %d, want 0", d)
	}
}
