package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%300) + 1
		g := randomGraph(seed, n, int(mRaw%600))
		g.Name = "roundtrip"
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return back.Equal(g) && back.Name == "roundtrip"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________________"),
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid stream.
	var buf bytes.Buffer
	g := randomGraph(1, 20, 40)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestBinaryRejectsCorruptStructure(t *testing.T) {
	g := randomGraph(2, 10, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside the adjacency section to break symmetry (the
	// final Validate must reject it). Offset: magic(8)+namelen(1)+name+
	// header(16)+offs. Corrupt the very last adjacency byte.
	if len(g.Adj) > 0 {
		data[len(data)-1] ^= 0x3F
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatal("corrupted adjacency accepted")
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		g := randomGraph(seed, n, int(mRaw%400))
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			return false
		}
		back, err := ReadText(&buf)
		return err == nil && back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTextParsing(t *testing.T) {
	good := "# 4 3\n0 1\n\n# comment\n1 2\n2 3\n"
	g, err := ReadText(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("parsed n=%d m=%d", g.NumVertices(), g.NumEdges())
	}

	bad := []string{
		"",               // no header
		"0 1\n",          // edge before header
		"# x\n",          // bad vertex count
		"# 3\n0\n",       // malformed edge
		"# 3\n0 zebra\n", // bad endpoint
		"# 3\n0 7\n",     // out of range
		"# -2\n",         // negative count
		"# 3\n1 2 3\n",   // too many fields
	}
	for i, s := range bad {
		if _, err := ReadText(strings.NewReader(s)); err == nil {
			t.Fatalf("bad input %d accepted: %q", i, s)
		}
	}
}

func TestTextAcceptsMessyEdgeLists(t *testing.T) {
	// Duplicates, reversals and self-loops are tolerated and cleaned.
	s := "# 3 99\n0 1\n1 0\n1 1\n1 2\n"
	g, err := ReadText(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("cleaned edge count %d, want 2", g.NumEdges())
	}
}

func TestBinaryLongNameTruncated(t *testing.T) {
	g := randomGraph(3, 5, 5)
	g.Name = strings.Repeat("x", 300)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Name) != 255 {
		t.Fatalf("name length %d, want 255", len(back.Name))
	}
}
