package graph

// Compact uint32 CSR layout. The wide Graph spends 8 bytes per offset
// (int64) where graphs at the paper's scale (n = 1M) need 4, and keeps
// offsets and adjacency in two separately allocated slices. CSR32 packs
// both into one uint32 arena: offsets in arena[:n+1], adjacency in
// arena[n+1:]. Halving the offset width halves the random-access
// footprint of the per-vertex "load Offs[v], Offs[v+1]" pair that the
// Helman–JáJá model charges as non-contiguous, and the single arena
// keeps the two regions adjacent so a traversal's working set spans one
// allocation instead of two.
//
// CSR32 is a read-only view for hot loops; cold paths (stub walk,
// fallback, verification) keep using the wide Graph it was built from.

import "fmt"

// CSR32 is a compact read-only CSR graph: uint32 offsets and adjacency
// in one arena-backed allocation, valid for graphs with fewer than 2^32
// vertices and directed-edge slots.
type CSR32 struct {
	// Offs and Adj alias one backing arena: Offs = arena[:n+1],
	// Adj = arena[n+1:]. Neighbors of v are Adj[Offs[v]:Offs[v+1]].
	Offs []uint32
	Adj  []uint32
	// Name carries over the source graph's provenance.
	Name string
}

// CompactOf builds the compact layout from a wide graph. It errors when
// the vertex count or adjacency length does not fit uint32 — callers on
// 64-bit inputs must stay on the wide layout.
func CompactOf(g *Graph) (*CSR32, error) {
	n := g.NumVertices()
	if n < 0 {
		return nil, fmt.Errorf("graph: compacting malformed graph (no offsets)")
	}
	const limit = int64(1) << 32
	if int64(n)+1 >= limit || int64(len(g.Adj)) >= limit {
		return nil, fmt.Errorf("graph: %d vertices / %d adjacency slots exceed the uint32 compact layout", n, len(g.Adj))
	}
	arena := make([]uint32, n+1+len(g.Adj))
	offs := arena[: n+1 : n+1]
	adj := arena[n+1:]
	for i, o := range g.Offs {
		if o < 0 || o >= limit {
			return nil, fmt.Errorf("graph: offset %d at vertex %d does not fit the uint32 compact layout", o, i)
		}
		offs[i] = uint32(o)
	}
	for i, w := range g.Adj {
		if w < 0 {
			return nil, fmt.Errorf("graph: negative neighbor %d at slot %d", w, i)
		}
		adj[i] = uint32(w)
	}
	return &CSR32{Offs: offs, Adj: adj, Name: g.Name}, nil
}

// NumVertices returns the number of vertices.
func (c *CSR32) NumVertices() int { return len(c.Offs) - 1 }

// NumEdges returns the number of undirected edges.
func (c *CSR32) NumEdges() int { return len(c.Adj) / 2 }

// Degree returns the degree of v.
func (c *CSR32) Degree(v VID) int {
	return int(c.Offs[v+1] - c.Offs[v])
}

// Neighbors32 returns the neighbor slice of v in the compact encoding.
// The caller must not modify the returned slice.
func (c *CSR32) Neighbors32(v VID) []uint32 {
	return c.Adj[c.Offs[v]:c.Offs[v+1]]
}

// ToGraph widens the compact layout back into a Graph. The result is
// structurally identical to the graph CompactOf was built from
// (round-trip property: g.Equal(CompactOf(g).ToGraph())).
func (c *CSR32) ToGraph() *Graph {
	g := &Graph{
		Offs: make([]int64, len(c.Offs)),
		Adj:  make([]VID, len(c.Adj)),
		Name: c.Name,
	}
	for i, o := range c.Offs {
		g.Offs[i] = int64(o)
	}
	for i, w := range c.Adj {
		g.Adj[i] = VID(w)
	}
	return g
}
