package graph

import "fmt"

// Chain is a maximal path x0-x1-...-xk-x(k+1) whose interior vertices
// x1..xk all have degree exactly 2 in the original graph. U = x0 and
// W = x(k+1) are the (kept) endpoints; Interior lists x1..xk in path
// order from U to W. For a component that is a pure cycle, U == W is the
// chosen representative vertex and Interior is the rest of the cycle.
type Chain struct {
	U, W     VID
	Interior []VID
}

// Deg2Reduction is the result of eliminating degree-2 vertices, the
// preprocessing step the paper describes: "When an input graph contains
// vertices of degree two, these vertices along with a corresponding tree
// edge can be eliminated as a simple preprocessing step."
//
// The reduced graph replaces every chain with a single edge between its
// endpoints. ExpandForest lifts a spanning forest of the reduced graph
// back to a spanning forest of the original graph.
type Deg2Reduction struct {
	Orig    *Graph
	Reduced *Graph
	// KeepID maps an original vertex to its reduced id, or None if the
	// vertex was eliminated (interior of some chain).
	KeepID []VID
	// OrigID maps a reduced vertex back to its original id.
	OrigID []VID
	// Chains lists every eliminated chain.
	Chains []Chain
	// chainByEdge maps a reduced canonical edge to the index of the chain
	// that realizes it, when the reduced edge exists only via chains.
	chainByEdge map[Edge]int
}

// EliminateDegree2 computes the degree-2 reduction of g.
func EliminateDegree2(g *Graph) *Deg2Reduction {
	n := g.NumVertices()
	keep := make([]bool, n)
	for v := 0; v < n; v++ {
		keep[v] = g.Degree(VID(v)) != 2
	}
	interior := make([]bool, n) // marked when consumed by a chain walk
	var chains []Chain

	walk := func(u, first VID) Chain {
		// Walk from kept endpoint u into degree-2 vertex first until a
		// kept vertex is reached.
		var ivs []VID
		prev, cur := u, first
		for !keep[cur] {
			interior[cur] = true
			ivs = append(ivs, cur)
			nb := g.Neighbors(cur)
			// Degree-2 vertex: exactly two distinct neighbors.
			next := nb[0]
			if next == prev {
				next = nb[1]
			}
			prev, cur = cur, next
		}
		return Chain{U: u, W: cur, Interior: ivs}
	}

	for v := 0; v < n; v++ {
		if !keep[v] {
			continue
		}
		for _, w := range g.Neighbors(VID(v)) {
			if !keep[w] && !interior[w] {
				chains = append(chains, walk(VID(v), w))
			}
		}
	}
	// Pure cycles: degree-2 vertices not reached from any kept endpoint.
	for v := 0; v < n; v++ {
		if keep[v] || interior[v] {
			continue
		}
		// Promote v to a kept representative, then walk around the cycle.
		keep[v] = true
		nb := g.Neighbors(VID(v))
		chains = append(chains, walk(VID(v), nb[0]))
	}

	// Number kept vertices.
	keepID := make([]VID, n)
	var origID []VID
	for v := 0; v < n; v++ {
		if keep[v] {
			keepID[v] = VID(len(origID))
			origID = append(origID, VID(v))
		} else {
			keepID[v] = None
		}
	}

	// Build the reduced graph: direct edges between kept vertices plus one
	// edge per chain (self-loops from cycles vanish in the builder).
	b := NewBuilder(len(origID))
	for v := 0; v < n; v++ {
		if !keep[v] {
			continue
		}
		for _, w := range g.Neighbors(VID(v)) {
			if keep[w] && VID(v) < w {
				b.AddEdge(keepID[v], keepID[w])
			}
		}
	}
	chainByEdge := make(map[Edge]int)
	for i, c := range chains {
		if c.U == c.W {
			continue // cycle chain: self-loop, never a reduced edge
		}
		re := Edge{keepID[c.U], keepID[c.W]}.Canon()
		// Prefer a direct original edge when one exists; otherwise the
		// first chain between the endpoints realizes the reduced edge.
		if _, dup := chainByEdge[re]; !dup && !g.HasEdge(c.U, c.W) {
			chainByEdge[re] = i
		}
		b.AddEdge(re.U, re.V)
	}
	red := b.Build()
	red.Name = g.Name + "+deg2"
	return &Deg2Reduction{
		Orig:        g,
		Reduced:     red,
		KeepID:      keepID,
		OrigID:      origID,
		Chains:      chains,
		chainByEdge: chainByEdge,
	}
}

// NumEliminated returns how many vertices the reduction removed.
func (r *Deg2Reduction) NumEliminated() int {
	return r.Orig.NumVertices() - r.Reduced.NumVertices()
}

// ExpandForest lifts a spanning forest of the reduced graph, given as a
// parent array (parent[v] == None marks a root), to a spanning forest of
// the original graph. It returns an error if reducedParent is not a
// valid parent array for the reduced graph's vertex count.
func (r *Deg2Reduction) ExpandForest(reducedParent []VID) ([]VID, error) {
	rn := r.Reduced.NumVertices()
	if len(reducedParent) != rn {
		return nil, fmt.Errorf("graph: ExpandForest parent length %d != reduced n %d", len(reducedParent), rn)
	}
	n := r.Orig.NumVertices()
	parent := make([]VID, n)
	for i := range parent {
		parent[i] = None
	}
	chainUsed := make([]bool, len(r.Chains))

	// Lift each reduced tree edge. A reduced edge {rv, rp} is realized
	// either by a direct original edge or by routing through the chain
	// registered for it.
	for rv := 0; rv < rn; rv++ {
		rp := reducedParent[rv]
		if rp == None {
			continue
		}
		if rp < 0 || int(rp) >= rn {
			return nil, fmt.Errorf("graph: ExpandForest parent[%d] = %d out of range", rv, rp)
		}
		u, w := r.OrigID[rv], r.OrigID[rp] // child u hangs under parent w
		ci, viaChain := r.chainByEdge[Edge{VID(rv), rp}.Canon()]
		if !viaChain {
			if !r.Orig.HasEdge(u, w) {
				return nil, fmt.Errorf("graph: ExpandForest tree edge {%d,%d} has no original edge or chain", u, w)
			}
			parent[u] = w
			continue
		}
		chainUsed[ci] = true
		c := r.Chains[ci]
		ivs := c.Interior
		if c.U != u {
			// Orient the chain from child u toward parent w.
			ivs = reverseVIDs(ivs)
		}
		// u -> ivs[0] -> ... -> ivs[k-1] -> w
		prev := u
		for _, x := range ivs {
			parent[prev] = x
			// prev's parent set; continue down the chain toward w.
			prev = x
		}
		parent[prev] = w
		// The loop above set parent[u] toward the interior and each
		// interior vertex toward w, exactly k+1 edges.
	}

	// Every unused chain still must span its interior vertices: attach
	// them as a path hanging off endpoint U (dropping the edge xk-W, or
	// the closing edge for a cycle chain).
	for i, c := range r.Chains {
		if chainUsed[i] || len(c.Interior) == 0 {
			continue
		}
		prev := c.U
		for _, x := range c.Interior {
			parent[x] = prev
			prev = x
		}
	}
	return parent, nil
}

func reverseVIDs(s []VID) []VID {
	out := make([]VID, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
