package graph

import (
	"testing"
	"testing/quick"

	"spantree/internal/xrand"
)

func TestRelabelIsomorphismInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 80, 200)
		perm := xrand.New(seed ^ 0xABCD).Perm(g.NumVertices())
		h := Relabel(g, perm)
		if h.Validate() != nil {
			return false
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			return false
		}
		// Edge set maps exactly through perm.
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(VID(v)) != h.Degree(perm[v]) {
				return false
			}
			for _, w := range g.Neighbors(VID(v)) {
				if !h.HasEdge(perm[v], perm[w]) {
					return false
				}
			}
		}
		return NumComponents(g) == NumComponents(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := randomGraph(3, 40, 80)
	perm := make([]VID, g.NumVertices())
	for i := range perm {
		perm[i] = VID(i)
	}
	if !Relabel(g, perm).Equal(g) {
		t.Fatal("identity relabel changed the graph")
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := randomGraph(4, 5, 8)
	cases := [][]VID{
		{0, 1, 2},          // wrong length
		{0, 0, 1, 2, 3},    // duplicate
		{0, 1, 2, 3, 9},    // out of range
		{0, 1, 2, 3, None}, // negative
	}
	for i, perm := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad perm accepted", i)
				}
			}()
			Relabel(g, perm)
		}()
	}
}

func TestRandomRelabelDeterministic(t *testing.T) {
	g := randomGraph(5, 60, 120)
	a := RandomRelabel(g, 77)
	b := RandomRelabel(g, 77)
	if !a.Equal(b) {
		t.Fatal("same seed produced different relabelings")
	}
	c := RandomRelabel(g, 78)
	if a.Equal(c) && g.NumEdges() > 10 {
		t.Fatal("different seeds produced identical relabelings")
	}
}

func TestBFSOrderRelabel(t *testing.T) {
	g := randomGraph(6, 70, 140)
	h := BFSOrderRelabel(g)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() || NumComponents(h) != NumComponents(g) {
		t.Fatal("BFS relabel not an isomorphism")
	}
	// On a path graph BFS order from 0 is the identity.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(VID(i-1), VID(i))
	}
	path := b.Build()
	if !BFSOrderRelabel(path).Equal(path) {
		t.Fatal("BFS relabel of a path from 0 should be the identity")
	}
}
