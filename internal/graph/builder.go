package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a canonical CSR
// Graph: self-loops dropped, parallel edges deduplicated, neighbor lists
// sorted. It is the single entry point all generators use, so every
// Graph in the library satisfies Validate.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices. It panics if
// n < 0 or n exceeds the int32 vertex space.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBuilder with negative n = %d", n))
	}
	if int64(n) > int64(1)<<31-1 {
		panic(fmt.Sprintf("graph: n = %d exceeds int32 vertex space", n))
	}
	return &Builder{n: n}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// NumPendingEdges returns the number of edges added so far (before
// dedup).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// AddEdge records the undirected edge {u,v}. Self-loops are silently
// dropped; duplicates are removed at Build time. It panics on
// out-of-range endpoints: generators are internal code, and a bad
// endpoint is a programming error, not an input error.
func (b *Builder) AddEdge(u, v VID) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, Edge{u, v}.Canon())
}

// Grow appends extra vertices, returning the id of the first new vertex.
func (b *Builder) Grow(extra int) VID {
	if extra < 0 {
		panic("graph: Grow with negative extra")
	}
	first := VID(b.n)
	b.n += extra
	return first
}

// Build produces the canonical CSR graph and resets nothing: the builder
// may continue to accumulate edges for a later Build.
func (b *Builder) Build() *Graph {
	// Sort canonical edges to dedup.
	es := make([]Edge, len(b.edges))
	copy(es, b.edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	uniq := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			uniq = append(uniq, e)
		}
	}
	return fromCanonicalEdges(b.n, uniq)
}

// fromCanonicalEdges builds CSR from deduplicated canonical (U<V) edges.
func fromCanonicalEdges(n int, es []Edge) *Graph {
	offs := make([]int64, n+1)
	for _, e := range es {
		offs[e.U+1]++
		offs[e.V+1]++
	}
	for i := 0; i < n; i++ {
		offs[i+1] += offs[i]
	}
	adj := make([]VID, offs[n])
	next := make([]int64, n)
	copy(next, offs[:n])
	for _, e := range es {
		adj[next[e.U]] = e.V
		next[e.U]++
		adj[next[e.V]] = e.U
		next[e.V]++
	}
	g := &Graph{Offs: offs, Adj: adj}
	// Neighbor lists need sorting: edges arrive in (U,V)-sorted order, so
	// each U's list of larger neighbors is sorted, but smaller neighbors
	// are appended afterward in U order — merge by a per-vertex sort.
	for v := 0; v < n; v++ {
		nb := adj[offs[v]:offs[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// FromEdges builds a canonical graph with n vertices from an arbitrary
// edge list (self-loops dropped, duplicates removed). It returns an
// error for out-of-range endpoints, making it suitable for external
// input, unlike Builder.AddEdge which panics.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	b := NewBuilder(n)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
		}
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// Union returns the disjoint union of the given graphs: vertex ids of
// graph i are shifted by the total vertex count of graphs 0..i-1. Useful
// for constructing disconnected test inputs.
func Union(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.NumVertices()
	}
	b := NewBuilder(total)
	base := VID(0)
	for _, g := range gs {
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(VID(v)) {
				if VID(v) < w {
					b.AddEdge(base+VID(v), base+w)
				}
			}
		}
		base += VID(g.NumVertices())
	}
	u := b.Build()
	u.Name = "union"
	return u
}
