package graph

import (
	"fmt"

	"spantree/internal/xrand"
)

// Relabel returns an isomorphic copy of g in which old vertex v becomes
// perm[v]. perm must be a permutation of [0, n); Relabel panics
// otherwise, since callers construct perms programmatically.
//
// Vertex labeling matters experimentally: the paper shows that
// Shiloach-Vishkin's iteration count — and therefore its running time —
// depends strongly on the labeling (row-major torus vs randomly labeled
// torus, sequential vs random chain), while the work-stealing algorithm
// is labeling-insensitive.
func Relabel(g *Graph, perm []VID) *Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: Relabel perm length %d != n %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			panic(fmt.Sprintf("graph: Relabel perm is not a permutation (value %d)", p))
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VID(v)) {
			if VID(v) < w {
				b.AddEdge(perm[v], perm[w])
			}
		}
	}
	h := b.Build()
	h.Name = g.Name + "+relabel"
	return h
}

// RandomRelabel relabels g by a seed-determined random permutation.
func RandomRelabel(g *Graph, seed uint64) *Graph {
	perm := xrand.New(seed).Perm(g.NumVertices())
	h := Relabel(g, perm)
	h.Name = g.Name + "+randlabel"
	return h
}

// BFSOrderRelabel relabels g so that vertices are numbered in BFS
// discovery order from vertex 0 (unreached vertices keep relative order
// after all reached ones). This produces a locality-friendly labeling,
// the analogue of the paper's "sequential" labelings.
func BFSOrderRelabel(g *Graph) *Graph {
	n := g.NumVertices()
	perm := make([]VID, n)
	for i := range perm {
		perm[i] = None
	}
	next := VID(0)
	queue := make([]VID, 0, n)
	for s := 0; s < n; s++ {
		if perm[s] != None {
			continue
		}
		perm[s] = next
		next++
		queue = append(queue[:0], VID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if perm[w] == None {
					perm[w] = next
					next++
					queue = append(queue, w)
				}
			}
		}
	}
	h := Relabel(g, perm)
	h.Name = g.Name + "+bfslabel"
	return h
}
