package graph

import (
	"errors"
	"math"
	"testing"
)

// csr hand-builds a Graph without the builders' sanitation, so tests
// can construct precisely malformed inputs.
func csr(offs []int64, adj []VID) *Graph { return &Graph{Offs: offs, Adj: adj} }

func TestValidateCodes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want ValidationCode
	}{
		{"empty-offs", csr(nil, nil), BadShape},
		{"offs0-nonzero", csr([]int64{1, 2}, []VID{0, 0}), BadShape},
		{"offs-end-mismatch", csr([]int64{0, 1}, []VID{0, 0}), BadShape},
		{"odd-adj", csr([]int64{0, 1}, []VID{0}), BadShape},
		{"non-monotone", csr([]int64{0, 4, 2}, []VID{1, 1, 0, 0}), BadShape},
		{"neighbor-negative", csr([]int64{0, 1, 2}, []VID{-3, 0}), OutOfRange},
		{"neighbor-too-big", csr([]int64{0, 1, 2}, []VID{5, 0}), OutOfRange},
		{"self-loop", csr([]int64{0, 2, 2}, []VID{0, 0}), SelfLoop},
		{"multi-edge", csr([]int64{0, 2, 4}, []VID{1, 1, 0, 0}), MultiEdge},
		{"unsorted", csr([]int64{0, 2, 3, 4}, []VID{2, 1, 0, 0}), Unsorted},
		{"asymmetric", csr([]int64{0, 1, 2, 4}, []VID{1, 0, 0, 1}), Asymmetric},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a malformed graph", tc.name)
		}
		ve, ok := AsValidationError(err)
		if !ok {
			t.Fatalf("%s: error %v is not a *ValidationError", tc.name, err)
		}
		if ve.Code != tc.want {
			t.Fatalf("%s: code = %v, want %v", tc.name, ve.Code, tc.want)
		}
		if ve.Error() == "" || ve.Code.String() == "" {
			t.Fatalf("%s: empty rendering", tc.name)
		}
	}
}

func TestValidateAcceptsGoodGraphs(t *testing.T) {
	for _, g := range []*Graph{
		csr([]int64{0}, nil),                                 // empty graph
		csr([]int64{0, 0}, nil),                              // one isolated vertex
		csr([]int64{0, 1, 2}, []VID{1, 0}),                   // one edge
		randomGraph(3, 50, 80),                               // builder output
		csr([]int64{0, 0, 1, 2}, []VID{2, 1}),                // isolated vertex plus edge
		csr([]int64{0, 2, 3, 5, 6}, []VID{1, 2, 0, 0, 3, 2}), // small tree
	} {
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate rejected a valid graph %v: %v", g, err)
		}
	}
}

func TestValidatePolicies(t *testing.T) {
	selfLoop := csr([]int64{0, 2, 3}, []VID{0, 1, 0})
	if err := selfLoop.Validate(); err == nil {
		t.Fatal("strict policy accepted a self-loop")
	}
	if err := selfLoop.ValidateWith(ValidateOpts{AllowSelfLoops: true}); err != nil {
		t.Fatalf("AllowSelfLoops rejected a self-loop: %v", err)
	}

	multi := csr([]int64{0, 2, 4}, []VID{1, 1, 0, 0})
	if err := multi.Validate(); err == nil {
		t.Fatal("strict policy accepted a multi-edge")
	}
	if err := multi.ValidateWith(ValidateOpts{AllowMultiEdges: true}); err != nil {
		t.Fatalf("AllowMultiEdges rejected a parallel edge: %v", err)
	}
	// The relaxed policy must not mask unrelated violations.
	bad := csr([]int64{0, 1, 2}, []VID{5, 0})
	if err := bad.ValidateWith(ValidateOpts{AllowSelfLoops: true, AllowMultiEdges: true}); err == nil {
		t.Fatal("relaxed policy accepted an out-of-range neighbor")
	}
}

func TestValidateWeights(t *testing.T) {
	g := csr([]int64{0, 1, 2}, []VID{1, 0})
	if err := g.ValidateWeights(nil); err != nil {
		t.Fatalf("nil weight function rejected: %v", err)
	}
	if err := g.ValidateWeights(func(u, v VID) float64 { return 1.5 }); err != nil {
		t.Fatalf("finite weights rejected: %v", err)
	}
	err := g.ValidateWeights(func(u, v VID) float64 { return math.NaN() })
	ve, ok := AsValidationError(err)
	if !ok || ve.Code != NaNWeight {
		t.Fatalf("NaN weight: err = %v, want NaNWeight ValidationError", err)
	}
}

func TestAsValidationErrorMiss(t *testing.T) {
	if _, ok := AsValidationError(errors.New("plain")); ok {
		t.Fatal("AsValidationError matched a plain error")
	}
	if _, ok := AsValidationError(nil); ok {
		t.Fatal("AsValidationError matched nil")
	}
}
