package graph

// Typed input validation. Validate historically returned ad-hoc
// fmt.Errorf values; the hardened runtime needs machine-checkable
// rejection reasons (the CLI maps them to exit codes, the fuzz target
// asserts the checker never panics and always classifies), so every
// violation is now a *ValidationError carrying a code and the offending
// location. The old Validate() signature and semantics — strict policy,
// first violation wins — are unchanged.

import (
	"errors"
	"fmt"
	"math"
)

// ValidationCode classifies why a graph failed validation.
type ValidationCode int

const (
	// BadShape: the CSR arrays themselves are malformed (wrong Offs
	// length or bounds, non-monotone offsets, odd Adj length).
	BadShape ValidationCode = iota + 1
	// OutOfRange: a neighbor entry is outside [0, n).
	OutOfRange
	// SelfLoop: a vertex lists itself as a neighbor (rejected unless
	// ValidateOpts.AllowSelfLoops).
	SelfLoop
	// MultiEdge: a neighbor appears twice in one adjacency list
	// (rejected unless ValidateOpts.AllowMultiEdges).
	MultiEdge
	// Unsorted: an adjacency list is not in ascending order.
	Unsorted
	// Asymmetric: arc v->w exists but w->v does not.
	Asymmetric
	// NaNWeight: a weight function returned NaN for an edge.
	NaNWeight
)

// String returns the schema name of the code.
func (c ValidationCode) String() string {
	switch c {
	case BadShape:
		return "bad-shape"
	case OutOfRange:
		return "out-of-range"
	case SelfLoop:
		return "self-loop"
	case MultiEdge:
		return "multi-edge"
	case Unsorted:
		return "unsorted"
	case Asymmetric:
		return "asymmetric"
	case NaNWeight:
		return "nan-weight"
	}
	return fmt.Sprintf("validation-code(%d)", int(c))
}

// ValidationError is the typed rejection every validation path returns:
// a code, the first offending location, and a human-readable detail.
type ValidationError struct {
	Code ValidationCode
	// Vertex and Neighbor locate the first violation; None when the
	// violation is not tied to a particular vertex (shape errors).
	Vertex   VID
	Neighbor VID
	Detail   string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return "graph: invalid input (" + e.Code.String() + "): " + e.Detail
}

// AsValidationError returns the *ValidationError in err's chain, if any.
func AsValidationError(err error) (*ValidationError, bool) {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ve, true
	}
	return nil, false
}

// ValidateOpts is the acceptance policy of ValidateWith. The zero value
// is the strict policy of Validate: self-loops and multi-edges are
// structural errors.
type ValidateOpts struct {
	// AllowSelfLoops accepts v in adj(v). The traversal algorithms skip
	// claimed vertices, so a self-loop is semantically harmless; strict
	// inputs still reject it as a likely construction bug.
	AllowSelfLoops bool
	// AllowMultiEdges accepts repeated neighbors. Parallel edges cannot
	// enter a forest twice (the second claim fails), so they too are a
	// policy choice, not a correctness requirement.
	AllowMultiEdges bool
}

// Validate checks structural invariants of the CSR representation under
// the strict policy: monotone offsets, in-range targets, no self-loops,
// sorted and duplicate-free neighbor lists, and symmetry (u in adj(v)
// iff v in adj(u)). The first violation is returned as a
// *ValidationError.
func (g *Graph) Validate() error {
	return g.ValidateWith(ValidateOpts{})
}

// ValidateWith is Validate under an explicit self-loop/multi-edge
// policy.
func (g *Graph) ValidateWith(opt ValidateOpts) error {
	n := g.NumVertices()
	if len(g.Offs) == 0 {
		return &ValidationError{Code: BadShape, Vertex: None, Neighbor: None,
			Detail: "Offs must have length n+1 >= 1, got 0"}
	}
	if g.Offs[0] != 0 {
		return &ValidationError{Code: BadShape, Vertex: None, Neighbor: None,
			Detail: fmt.Sprintf("Offs[0] = %d, want 0", g.Offs[0])}
	}
	if g.Offs[n] != int64(len(g.Adj)) {
		return &ValidationError{Code: BadShape, Vertex: None, Neighbor: None,
			Detail: fmt.Sprintf("Offs[n] = %d, want len(Adj) = %d", g.Offs[n], len(g.Adj))}
	}
	if len(g.Adj)%2 != 0 && !opt.AllowSelfLoops {
		return &ValidationError{Code: BadShape, Vertex: None, Neighbor: None,
			Detail: fmt.Sprintf("len(Adj) = %d is odd; undirected graphs store both directions", len(g.Adj))}
	}
	// The whole shape pass must complete before any Neighbors call: with
	// Offs[0] == 0, Offs[n] == len(Adj) and monotonicity established for
	// EVERY vertex, each Offs[v]:Offs[v+1] slice is in bounds. Checking
	// pairwise inside the scan loop would slice Adj with a wild offset
	// before reaching the violation (the fuzz target's favorite panic).
	for v := 0; v < n; v++ {
		if g.Offs[v] > g.Offs[v+1] {
			return &ValidationError{Code: BadShape, Vertex: VID(v), Neighbor: None,
				Detail: fmt.Sprintf("Offs not monotone at vertex %d: %d > %d", v, g.Offs[v], g.Offs[v+1])}
		}
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(VID(v))
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				return &ValidationError{Code: OutOfRange, Vertex: VID(v), Neighbor: w,
					Detail: fmt.Sprintf("neighbor %d of vertex %d out of range [0,%d)", w, v, n)}
			}
			if w == VID(v) && !opt.AllowSelfLoops {
				return &ValidationError{Code: SelfLoop, Vertex: VID(v), Neighbor: w,
					Detail: fmt.Sprintf("self-loop at vertex %d", v)}
			}
			if i > 0 {
				switch {
				case nb[i-1] == w && !opt.AllowMultiEdges:
					return &ValidationError{Code: MultiEdge, Vertex: VID(v), Neighbor: w,
						Detail: fmt.Sprintf("duplicate neighbor %d of vertex %d", w, v)}
				case nb[i-1] > w:
					return &ValidationError{Code: Unsorted, Vertex: VID(v), Neighbor: w,
						Detail: fmt.Sprintf("unsorted neighbors of vertex %d: %d before %d", v, nb[i-1], w)}
				}
			}
		}
	}
	// Symmetry: count directed arcs both ways using a degree-indexed scan.
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VID(v)) {
			if !g.HasEdge(w, VID(v)) {
				return &ValidationError{Code: Asymmetric, Vertex: VID(v), Neighbor: w,
					Detail: fmt.Sprintf("asymmetric edge %d->%d has no reverse", v, w)}
			}
		}
	}
	return nil
}

// ValidateWeights evaluates w over every directed arc and rejects the
// first NaN with a typed error. A NaN weight poisons atomic
// min-elections (every comparison against NaN is false), so weighted
// algorithms check it up front instead of silently producing an
// arbitrary forest.
func (g *Graph) ValidateWeights(w func(u, v VID) float64) error {
	if w == nil {
		return nil
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(VID(v)) {
			if math.IsNaN(w(VID(v), u)) {
				return &ValidationError{Code: NaNWeight, Vertex: VID(v), Neighbor: u,
					Detail: fmt.Sprintf("weight of edge {%d,%d} is NaN", v, u)}
			}
		}
	}
	return nil
}
