package graph_test

// The compact uint32 CSR must be an exact structural mirror of the wide
// Graph it was built from: same neighbors, same degrees, same Validate
// verdicts after a round trip. The generator list mirrors the Fig. 4
// experiment inputs so every graph family the harness measures is
// covered by the equivalence property.

import (
	"strings"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

// fig4Graphs builds a small instance of every Fig. 4 generator family.
func fig4Graphs(t *testing.T) []*graph.Graph {
	t.Helper()
	const n, seed = 1 << 10, uint64(7)
	logn := 10
	return []*graph.Graph{
		gen.Torus2D(32, 32),
		graph.RandomRelabel(gen.Torus2D(32, 32), seed^0xA5A5),
		gen.Random(n, n*logn, seed),
		gen.Mesh2D(32, 32, 0.60, seed),
		gen.Mesh3D(10, 10, 10, 0.40, seed),
		gen.AD3(n, seed),
		gen.GeoFlat(n, gen.DefaultGeoFlatParams(), seed),
		gen.GeoHier(n, gen.DefaultGeoHierParams(), seed),
		gen.Chain(n),
		graph.RandomRelabel(gen.Chain(n), seed^0x5A5A),
	}
}

func TestCompactRoundTripFig4Families(t *testing.T) {
	for _, g := range fig4Graphs(t) {
		c, err := graph.CompactOf(g)
		if err != nil {
			t.Fatalf("%v: CompactOf: %v", g, err)
		}
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			t.Fatalf("%v: compact shape %d/%d, want %d/%d",
				g, c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			if c.Degree(graph.VID(v)) != g.Degree(graph.VID(v)) {
				t.Fatalf("%v: degree(%d) = %d, want %d", g, v,
					c.Degree(graph.VID(v)), g.Degree(graph.VID(v)))
			}
			wide := g.Neighbors(graph.VID(v))
			narrow := c.Neighbors32(graph.VID(v))
			if len(wide) != len(narrow) {
				t.Fatalf("%v: vertex %d has %d compact neighbors, want %d",
					g, v, len(narrow), len(wide))
			}
			for i := range wide {
				if graph.VID(narrow[i]) != wide[i] {
					t.Fatalf("%v: neighbor %d of vertex %d is %d, want %d",
						g, i, v, narrow[i], wide[i])
				}
			}
		}
		back := c.ToGraph()
		if !g.Equal(back) {
			t.Fatalf("%v: round trip through CSR32 is not structurally equal", g)
		}
		if g.Validate() != nil {
			t.Fatalf("%v: generator produced an invalid graph", g)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%v: round-tripped graph fails validation: %v", g, err)
		}
	}
}

func TestCompactPreservesValidateVerdictOnMalformedGraphs(t *testing.T) {
	// Malformed-but-compactable graphs must stay malformed in the same
	// way after the round trip: the compact layout is a re-encoding, not
	// a repair pass.
	bad := []*graph.Graph{
		// Non-monotone offsets.
		{Offs: []int64{0, 4, 2, 6}, Adj: []graph.VID{1, 2, 2, 0, 0, 1}, Name: "nonmonotone"},
		// Neighbor out of range.
		{Offs: []int64{0, 1, 2}, Adj: []graph.VID{9, 0}, Name: "outofrange"},
		// Asymmetric adjacency.
		{Offs: []int64{0, 1, 2, 2}, Adj: []graph.VID{1, 2}, Name: "asymmetric"},
	}
	for _, g := range bad {
		wantErr := g.Validate()
		if wantErr == nil {
			t.Fatalf("%s: test fixture unexpectedly valid", g.Name)
		}
		c, err := graph.CompactOf(g)
		if err != nil {
			t.Fatalf("%s: CompactOf rejected a uint32-representable graph: %v", g.Name, err)
		}
		gotErr := c.ToGraph().Validate()
		if gotErr == nil {
			t.Fatalf("%s: round trip laundered the validation error %v", g.Name, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: verdict changed across the round trip: %v vs %v",
				g.Name, wantErr, gotErr)
		}
	}
}

func TestCompactOfRejectsUnrepresentableGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want string
	}{
		{"offset overflow", &graph.Graph{Offs: []int64{0, 1 << 33}, Adj: nil}, "does not fit"},
		{"negative offset", &graph.Graph{Offs: []int64{0, -1}, Adj: nil}, "does not fit"},
		{"negative neighbor", &graph.Graph{Offs: []int64{0, 1, 2}, Adj: []graph.VID{-3, 0}}, "negative neighbor"},
		{"no offsets", &graph.Graph{}, "malformed"},
	}
	for _, tc := range cases {
		if _, err := graph.CompactOf(tc.g); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: CompactOf error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
