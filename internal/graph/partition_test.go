package graph_test

import (
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

// partitionShapes are the graphs the invariant tests sweep: regular,
// degree-skewed, dense-cut, tiny, and empty.
func partitionShapes(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	star, err := graph.FromEdges(64, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 63}})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"torus":    gen.Torus2D(16, 16),
		"geo-hier": gen.GeoHier(1<<10, gen.DefaultGeoHierParams(), 7),
		"random":   gen.Random(1<<10, 1<<13, 7),
		"chain":    gen.Chain(100),
		"star":     star,
		"empty":    empty,
	}
}

// TestPartitionInvariants checks the partition contract on every shape:
// the shards tile [0, n) with contiguous non-empty ranges, every shard
// view holds exactly the intra-shard edges (local offsets, global
// adjacency ids inside the range), each cross-shard edge appears in the
// boundary list exactly once in canonical order, and nothing is lost —
// IntraArcs + 2*len(Boundary) == len(g.Adj).
func TestPartitionInvariants(t *testing.T) {
	for name, g := range partitionShapes(t) {
		for _, shards := range []int{1, 2, 3, 7, 64} {
			for _, policy := range []graph.CutPolicy{graph.CutVertexBalanced, graph.CutEdgeBalanced} {
				p, err := graph.PartitionCSR(g, shards, policy)
				if err != nil {
					t.Fatalf("%s shards=%d %v: %v", name, shards, policy, err)
				}
				n := g.NumVertices()
				// Contiguous tiling, non-empty shards (one empty shard
				// allowed only for the empty graph).
				next := graph.VID(0)
				for i, sh := range p.Shards {
					if sh.Lo != next || (sh.Hi <= sh.Lo && n > 0) {
						t.Fatalf("%s shards=%d %v: shard %d = [%d,%d), expected lo %d",
							name, shards, policy, i, sh.Lo, sh.Hi, next)
					}
					next = sh.Hi
				}
				if int(next) != n {
					t.Fatalf("%s shards=%d %v: shards cover [0,%d), want [0,%d)", name, shards, policy, next, n)
				}
				// Conservation: every arc is intra in exactly one view or
				// counted once as a boundary edge.
				if got := p.IntraArcs() + 2*len(p.Boundary); got != len(g.Adj) {
					t.Fatalf("%s shards=%d %v: intra %d + 2*boundary %d = %d arcs, graph has %d",
						name, shards, policy, p.IntraArcs(), len(p.Boundary), got, len(g.Adj))
				}
				// Shard views: per-vertex neighbor sets equal the wide
				// graph's neighbors restricted to the shard range.
				for si, sh := range p.Shards {
					for v := sh.Lo; v < sh.Hi; v++ {
						want := map[graph.VID]int{}
						for _, w := range g.Neighbors(v) {
							if w >= sh.Lo && w < sh.Hi {
								want[w]++
							}
						}
						got := map[graph.VID]int{}
						for _, w := range sh.CSR.Neighbors32(v - sh.Lo) {
							wid := graph.VID(w)
							if wid < sh.Lo || wid >= sh.Hi {
								t.Fatalf("%s shards=%d %v: shard %d vertex %d has out-of-range neighbor %d",
									name, shards, policy, si, v, wid)
							}
							got[wid]++
						}
						if len(got) != len(want) {
							t.Fatalf("%s shards=%d %v: vertex %d intra-neighbors %v, want %v",
								name, shards, policy, v, got, want)
						}
						for w, c := range want {
							if got[w] != c {
								t.Fatalf("%s shards=%d %v: vertex %d neighbor %d count %d, want %d",
									name, shards, policy, v, w, got[w], c)
							}
						}
					}
				}
				// Boundary edges: canonical, cross-shard, no duplicates.
				shardOf := func(v graph.VID) int {
					for i, sh := range p.Shards {
						if v < sh.Hi {
							return i
						}
					}
					t.Fatalf("vertex %d outside every shard", v)
					return -1
				}
				seen := map[graph.Edge]bool{}
				for _, e := range p.Boundary {
					if e.U >= e.V {
						t.Fatalf("%s shards=%d %v: boundary edge %v not canonical", name, shards, policy, e)
					}
					if shardOf(e.U) == shardOf(e.V) {
						t.Fatalf("%s shards=%d %v: boundary edge %v is intra-shard", name, shards, policy, e)
					}
					if seen[e] {
						t.Fatalf("%s shards=%d %v: boundary edge %v duplicated", name, shards, policy, e)
					}
					seen[e] = true
				}
			}
		}
	}
}

// TestPartitionEdgeBalance checks the generator-aware cut: on the
// degree-skewed geo-hier family the edge-balanced policy must spread
// arcs far more evenly than vertex counts would.
func TestPartitionEdgeBalance(t *testing.T) {
	g := gen.GeoHier(1<<12, gen.DefaultGeoHierParams(), 7)
	const shards = 4
	p, err := graph.PartitionCSR(g, shards, graph.CutEdgeBalanced)
	if err != nil {
		t.Fatal(err)
	}
	maxArcs, minArcs := 0, int(^uint(0)>>1)
	for i := range p.Shards {
		a := len(p.Shards[i].CSR.Adj)
		// Include the shard's side of each boundary edge so the balance
		// measure reflects total incident arcs, not just intra ones.
		for _, e := range p.Boundary {
			if (e.U >= p.Shards[i].Lo && e.U < p.Shards[i].Hi) ||
				(e.V >= p.Shards[i].Lo && e.V < p.Shards[i].Hi) {
				a++
			}
		}
		if a > maxArcs {
			maxArcs = a
		}
		if a < minArcs {
			minArcs = a
		}
	}
	if maxArcs > 2*minArcs {
		t.Fatalf("edge-balanced cut is skewed: max %d vs min %d incident arcs", maxArcs, minArcs)
	}
}

// TestPartitionErrors pins the rejection surface: non-positive shard
// counts fail, oversized shard counts clamp.
func TestPartitionErrors(t *testing.T) {
	g := gen.Chain(10)
	if _, err := graph.PartitionCSR(g, 0, graph.CutVertexBalanced); err == nil {
		t.Fatal("graph.PartitionCSR accepted 0 shards")
	}
	if _, err := graph.PartitionCSR(g, -3, graph.CutVertexBalanced); err == nil {
		t.Fatal("graph.PartitionCSR accepted negative shards")
	}
	p, err := graph.PartitionCSR(g, 100, graph.CutVertexBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 10 {
		t.Fatalf("shard count %d, want clamp to n = 10", len(p.Shards))
	}
}

// TestCutPolicyFor pins the generator-aware policy table.
func TestCutPolicyFor(t *testing.T) {
	cases := map[string]graph.CutPolicy{
		"geoflat(1024,a=0.9)": graph.CutEdgeBalanced,
		"geohier(1024)":       graph.CutEdgeBalanced,
		"torus2d(32x32)":      graph.CutVertexBalanced,
		"random(1024,8192)":   graph.CutVertexBalanced,
		"":                    graph.CutVertexBalanced,
	}
	for name, want := range cases {
		if got := graph.CutPolicyFor(name); got != want {
			t.Errorf("graph.CutPolicyFor(%q) = %v, want %v", name, got, want)
		}
	}
}
