package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization formats:
//
//   - Binary: a compact little-endian CSR dump with a magic header, used
//     by cmd/graphgen and cmd/spantree to pass graphs between tools.
//   - Text: one "u v" edge per line with a "# n m" header, convenient for
//     interchange with other tools and for tests.

const binaryMagic = "SPTG0001"

// MaxSerializedVertices bounds the vertex count accepted by ReadBinary:
// a tiny malicious or corrupt header must not make the reader allocate
// gigabytes (the offsets array costs 8 bytes per vertex). Larger graphs
// are constructed programmatically.
const MaxSerializedVertices = 1 << 27

// MaxTextVertices bounds the vertex count accepted by ReadText. The
// text format is an interchange format for small graphs; unlike the
// binary reader — which fails fast when the declared payload is absent —
// a text header is trusted on its own, so a forged "# n" line with a
// huge n would otherwise cost seconds of allocation and scanning.
const MaxTextVertices = 1 << 22

// MaxSerializedAdjacency bounds the adjacency length (2m) accepted by
// ReadBinary, for the same reason as MaxSerializedVertices: the array is
// allocated before the payload is read, so the header alone must not be
// able to demand gigabytes.
const MaxSerializedAdjacency = 1 << 28

// WriteBinary writes g to w in the library's binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	name := []byte(g.Name)
	if len(name) > 255 {
		name = name[:255]
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return fmt.Errorf("graph: write name length: %w", err)
	}
	if _, err := bw.Write(name); err != nil {
		return fmt.Errorf("graph: write name: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(g.Adj)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var buf [8]byte
	for _, o := range g.Offs {
		binary.LittleEndian.PutUint64(buf[:8], uint64(o))
		if _, err := bw.Write(buf[:8]); err != nil {
			return fmt.Errorf("graph: write offsets: %w", err)
		}
	}
	for _, a := range g.Adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(a))
		if _, err := bw.Write(buf[:4]); err != nil {
			return fmt.Errorf("graph: write adjacency: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("graph: read name length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("graph: read name: %w", err)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: read header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	adjLen := binary.LittleEndian.Uint64(hdr[8:16])
	if n > MaxSerializedVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the %d serialization limit", n, MaxSerializedVertices)
	}
	if adjLen > MaxSerializedAdjacency {
		return nil, fmt.Errorf("graph: adjacency length %d exceeds the %d serialization limit", adjLen, MaxSerializedAdjacency)
	}
	g := &Graph{
		Offs: make([]int64, n+1),
		Adj:  make([]VID, adjLen),
		Name: string(name),
	}
	buf := make([]byte, 8)
	for i := range g.Offs {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("graph: read offsets: %w", err)
		}
		g.Offs[i] = int64(binary.LittleEndian.Uint64(buf[:8]))
	}
	for i := range g.Adj {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: read adjacency: %w", err)
		}
		g.Adj[i] = VID(binary.LittleEndian.Uint32(buf[:4]))
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary input invalid: %w", err)
	}
	return g, nil
}

// WriteText writes g as a "# n m" header followed by one "u v" line per
// undirected edge with u < v.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: write text header: %w", err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VID(v)) {
			if VID(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return fmt.Errorf("graph: write text edge: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text format written by WriteText. Blank lines and
// additional comment lines starting with '#' after the header are
// ignored; edges are deduplicated and self-loops dropped, so arbitrary
// edge lists are accepted.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		b       *Builder
		lineNum int
	)
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if b == nil {
				fields := strings.Fields(strings.TrimPrefix(line, "#"))
				if len(fields) < 1 {
					return nil, fmt.Errorf("graph: line %d: header must be '# n [m]'", lineNum)
				}
				n, err := strconv.ParseInt(fields[0], 10, 32)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNum, fields[0])
				}
				if n > MaxTextVertices {
					return nil, fmt.Errorf("graph: line %d: vertex count %d exceeds the %d text-format limit", lineNum, n, MaxTextVertices)
				}
				b = NewBuilder(int(n))
			}
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graph: line %d: edge before '# n m' header", lineNum)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNum, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNum, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNum, fields[1])
		}
		if u < 0 || u >= int64(b.NumVertices()) || v < 0 || v >= int64(b.NumVertices()) {
			return nil, fmt.Errorf("graph: line %d: edge {%d,%d} out of range [0,%d)", lineNum, u, v, b.NumVertices())
		}
		b.AddEdge(VID(u), VID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan text input: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty text input (missing '# n m' header)")
	}
	return b.Build(), nil
}
