package graph

// Sharded execution support: partition the vertex range of a CSR graph
// into contiguous shards, each backed by a compact per-shard CSR32 view
// of its intra-shard edges, plus one global list of the boundary edges
// that cross shards. The wide CSR is never copied — each shard view is
// materialized directly into its own uint32 arena (offsets local to the
// shard, adjacency ids global), so a shard team's working set is the
// shard arena plus its slice of the shared parent array, and the
// boundary edges are exactly the edges a stitch pass must consider to
// join the per-shard forests.
//
// Contiguous vertex ranges are the default cut: every generator in this
// repository lays out locality-correlated vertices with nearby ids
// (tori and meshes by row, geometric families by construction), so a
// contiguous range keeps most edges internal. The geographic families
// (flat and hierarchical wide-area network graphs) concentrate degree
// on backbone vertices, so an equal-vertex cut hands one shard far more
// arcs than another; CutEdgeBalanced places the cut points on the
// cumulative offset array instead, equalizing per-shard arc counts.

import (
	"fmt"
	"sort"
	"strings"
)

// CutPolicy selects how Partition places its shard cut points.
type CutPolicy int

const (
	// CutVertexBalanced (the default) gives every shard an equal share
	// of the vertex range: shard s covers [s*n/S, (s+1)*n/S).
	CutVertexBalanced CutPolicy = iota
	// CutEdgeBalanced places cut points on the cumulative offset array
	// so every shard holds an approximately equal share of the arcs —
	// the generator-aware cut for degree-skewed families (geo/hier).
	CutEdgeBalanced
)

// String returns the CLI name of the cut policy.
func (c CutPolicy) String() string {
	if c == CutEdgeBalanced {
		return "edge"
	}
	return "vertex"
}

// CutPolicyFor picks the cut policy for a generated graph by its
// provenance name: the geographic families (geoflat/geohier) carry the
// degree skew that defeats equal-vertex cuts, everything else keeps the
// default contiguous equal-vertex ranges.
func CutPolicyFor(name string) CutPolicy {
	if strings.HasPrefix(name, "geo") {
		return CutEdgeBalanced
	}
	return CutVertexBalanced
}

// Shard is one contiguous vertex range [Lo, Hi) of a partition together
// with the compact view of its intra-shard edges.
type Shard struct {
	// Lo and Hi bound the shard's global vertex range [Lo, Hi).
	Lo, Hi VID
	// CSR is the shard's intra-shard adjacency: offsets are indexed by
	// the LOCAL id v-Lo, adjacency entries are GLOBAL vertex ids (they
	// all fall inside [Lo, Hi)). Neighbors of global v are
	// CSR.Neighbors32(v - Lo). Edges with an endpoint outside the range
	// are excluded here and appear exactly once in Partition.Boundary.
	CSR *CSR32
}

// NumVertices returns the shard's vertex count.
func (s *Shard) NumVertices() int { return int(s.Hi - s.Lo) }

// Partition is a sharding of one graph: contiguous vertex ranges with
// per-shard compact views plus the cross-shard boundary edges.
type Partition struct {
	// Shards covers [0, n) with contiguous, disjoint ranges in order.
	Shards []Shard
	// Boundary holds every edge whose endpoints land in different
	// shards, exactly once, in canonical U < V order. These are the
	// edges the stitch pass joins the per-shard forests through.
	Boundary []Edge
	// Policy records the cut policy the partition was built with.
	Policy CutPolicy
	// N is the partitioned graph's vertex count.
	N int
}

// IntraArcs returns the total directed arc count across the shard views
// (the conservation invariant: IntraArcs + 2*len(Boundary) equals the
// source graph's adjacency length).
func (p *Partition) IntraArcs() int {
	total := 0
	for i := range p.Shards {
		total += len(p.Shards[i].CSR.Adj)
	}
	return total
}

// PartitionCSR splits g into at most shards contiguous vertex ranges
// under the given cut policy. The effective shard count is clamped to
// [1, max(1, n)], so every shard is non-empty whenever the graph is.
// Adjacency ids in the shard views are global, so the graph must fit
// the uint32 compact layout (the same bound as CompactOf).
func PartitionCSR(g *Graph, shards int, policy CutPolicy) (*Partition, error) {
	n := g.NumVertices()
	if shards < 1 {
		return nil, fmt.Errorf("graph: PartitionCSR needs >= 1 shards, got %d", shards)
	}
	if n > 0 && shards > n {
		shards = n
	}
	if n == 0 {
		shards = 1
	}
	const limit = int64(1) << 32
	if int64(n)+1 >= limit || int64(len(g.Adj)) >= limit {
		return nil, fmt.Errorf("graph: %d vertices / %d adjacency slots exceed the uint32 shard layout", n, len(g.Adj))
	}

	cuts := cutPoints(g, shards, policy)
	p := &Partition{
		Shards: make([]Shard, shards),
		Policy: policy,
		N:      n,
	}
	for s := 0; s < shards; s++ {
		lo, hi := cuts[s], cuts[s+1]
		p.Shards[s] = buildShard(g, VID(lo), VID(hi))
		// Boundary edges are collected from their smaller-id endpoint's
		// shard, so each cross-shard edge is recorded exactly once.
		for v := lo; v < hi; v++ {
			for _, w := range g.Neighbors(VID(v)) {
				if (int(w) < lo || int(w) >= hi) && VID(v) < w {
					p.Boundary = append(p.Boundary, Edge{U: VID(v), V: w})
				}
			}
		}
	}
	return p, nil
}

// cutPoints returns the shards+1 cut offsets into the vertex range,
// monotone with every shard non-empty (shards <= n is guaranteed by the
// caller's clamp).
func cutPoints(g *Graph, shards int, policy CutPolicy) []int {
	n := g.NumVertices()
	cuts := make([]int, shards+1)
	cuts[shards] = n
	switch policy {
	case CutEdgeBalanced:
		total := len(g.Adj)
		for k := 1; k < shards; k++ {
			target := int64(k) * int64(total) / int64(shards)
			cuts[k] = sort.Search(n, func(v int) bool {
				return g.Offs[v] >= target
			})
		}
		// Degenerate arc distributions (isolated-vertex prefixes, empty
		// graphs) can collapse neighboring cuts; restore one-vertex
		// minimums without disturbing the balanced interior cuts more
		// than necessary.
		for k := 1; k < shards; k++ {
			if cuts[k] <= cuts[k-1] {
				cuts[k] = cuts[k-1] + 1
			}
			if max := n - (shards - k); cuts[k] > max {
				cuts[k] = max
			}
		}
	default: // CutVertexBalanced
		for k := 1; k < shards; k++ {
			cuts[k] = k * n / shards
		}
	}
	return cuts
}

// buildShard materializes the compact intra-shard view for [lo, hi):
// one uint32 arena holding the local offset table and the global-id
// adjacency entries of the edges internal to the range.
func buildShard(g *Graph, lo, hi VID) Shard {
	ns := int(hi - lo)
	arcs := 0
	for v := lo; v < hi; v++ {
		for _, w := range g.Neighbors(v) {
			if w >= lo && w < hi {
				arcs++
			}
		}
	}
	arena := make([]uint32, ns+1+arcs)
	offs := arena[: ns+1 : ns+1]
	adj := arena[ns+1:]
	pos := 0
	for v := lo; v < hi; v++ {
		offs[v-lo] = uint32(pos)
		for _, w := range g.Neighbors(v) {
			if w >= lo && w < hi {
				adj[pos] = uint32(w)
				pos++
			}
		}
	}
	offs[ns] = uint32(pos)
	return Shard{Lo: lo, Hi: hi, CSR: &CSR32{Offs: offs, Adj: adj, Name: g.Name}}
}
