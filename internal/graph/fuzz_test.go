package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Native Go fuzz targets for the two parsers — the only places where
// the library consumes external bytes. `go test` runs the seed corpus;
// `go test -fuzz=FuzzReadText ./internal/graph` explores further.

func FuzzReadText(f *testing.F) {
	f.Add("# 4 3\n0 1\n1 2\n2 3\n")
	f.Add("# 0 0\n")
	f.Add("")
	f.Add("# 3\n0 1\n# trailing comment\n\n1 2\n")
	f.Add("# 2 1\n0 0\n")
	f.Add("0 1\n# 2\n")
	f.Add("# 99999999999999999999 1\n")
	f.Add("# 3 1\n-1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejected input: fine, as long as there is no panic
		}
		// Accepted input must produce a canonical, valid graph that
		// round-trips through the writer.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("write back: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip changed the graph\ninput: %q", input)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with valid encodings of a few graphs plus mutations.
	for _, seed := range []uint64{1, 2, 3} {
		g := randomGraph(seed, 20, 30)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 10 {
			trunc := append([]byte(nil), buf.Bytes()[:buf.Len()/2]...)
			f.Add(trunc)
			flip := append([]byte(nil), buf.Bytes()...)
			flip[buf.Len()-1] ^= 0xFF
			f.Add(flip)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("SPTG0001"))
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v", err)
		}
	})
}

// FuzzValidate throws arbitrary CSR shapes at the validation layer. The
// checker is the gate every untrusted input passes through, so it must
// never panic — it classifies, with a typed *ValidationError, or
// accepts. Acceptance must also be monotone in the policy: a graph the
// strict policy accepts cannot be rejected by a relaxed one.
func FuzzValidate(f *testing.F) {
	// Seeds: a valid two-edge graph, classic malformations, and builder
	// output raw bytes.
	f.Add(uint16(3), []byte{0, 1, 2, 4}, []byte{1, 0, 0, 1})
	f.Add(uint16(2), []byte{0, 1, 2}, []byte{1, 0})
	f.Add(uint16(0), []byte{0}, []byte{})
	f.Add(uint16(1), []byte{0, 2}, []byte{0, 0})          // self-loop
	f.Add(uint16(2), []byte{0, 4, 2}, []byte{1, 1, 0, 0}) // non-monotone
	f.Add(uint16(9), []byte{0, 200}, []byte{7})           // offsets past Adj
	f.Add(uint16(2), []byte{0, 1, 2}, []byte{250, 0})     // out of range
	f.Fuzz(func(t *testing.T, nRaw uint16, offsRaw, adjRaw []byte) {
		n := int(nRaw % 64)
		if len(offsRaw) < n+1 {
			return
		}
		offs := make([]int64, n+1)
		for i := range offs {
			offs[i] = int64(int8(offsRaw[i])) // small signed offsets: negatives included
		}
		adj := make([]VID, len(adjRaw))
		for i, b := range adjRaw {
			adj[i] = VID(int8(b))
		}
		g := &Graph{Offs: offs, Adj: adj}
		check := func(opt ValidateOpts) error {
			err := g.ValidateWith(opt)
			if err != nil {
				if _, ok := AsValidationError(err); !ok {
					t.Fatalf("untyped validation error: %v", err)
				}
			}
			return err
		}
		strict := check(ValidateOpts{})
		relaxed := check(ValidateOpts{AllowSelfLoops: true, AllowMultiEdges: true})
		if strict == nil && relaxed != nil {
			t.Fatalf("strict accepted but relaxed rejected: %v", relaxed)
		}
		if strict == nil {
			// An accepted graph must be safe to traverse.
			for v := 0; v < g.NumVertices(); v++ {
				_ = g.Neighbors(VID(v))
			}
		}
	})
}
