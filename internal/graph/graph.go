// Package graph provides the compressed-sparse-row (CSR) undirected graph
// representation shared by every algorithm in the library, together with
// builders, relabeling, preprocessing, serialization and validation.
//
// Vertices are dense int32 identifiers in [0, N). The adjacency structure
// is two flat slices: Offs (length N+1) and Adj (length 2M for an
// undirected graph with M edges), so that the neighbors of v are
// Adj[Offs[v]:Offs[v+1]]. This mirrors the adjacency-list layout the
// paper assumes and gives the contiguous per-vertex neighbor scans whose
// cost the Helman–JáJá model charges as a single non-contiguous access
// followed by contiguous ones.
package graph

import (
	"fmt"
	"sort"
)

// VID is a vertex identifier: a dense index in [0, NumVertices).
type VID = int32

// None marks the absence of a vertex (e.g. the parent of a root).
const None VID = -1

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V VID
}

// Canon returns the edge with endpoints ordered U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is an immutable undirected graph in CSR form. Both directions of
// every edge are stored, so len(Adj) == 2*NumEdges(). Self-loops and
// parallel edges are removed by the builders.
type Graph struct {
	// Offs has length NumVertices()+1; neighbors of v are
	// Adj[Offs[v]:Offs[v+1]].
	Offs []int64
	// Adj is the concatenated neighbor lists.
	Adj []VID
	// Name optionally records the generator/provenance, e.g. "torus2d".
	Name string
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Offs) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v VID) int {
	return int(g.Offs[v+1] - g.Offs[v])
}

// Neighbors returns the neighbor slice of v. The caller must not modify
// the returned slice.
func (g *Graph) Neighbors(v VID) []VID {
	return g.Adj[g.Offs[v]:g.Offs[v+1]]
}

// HasEdge reports whether {u,v} is an edge, via binary search when the
// adjacency list is sorted (builders always sort) with a linear fallback.
func (g *Graph) HasEdge(u, v VID) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if i < len(nb) && nb[i] == v {
		return true
	}
	// A miss is authoritative only on sorted adjacency. Rather than pay a
	// sortedness check plus a second pass for hand-built unsorted graphs
	// (tolerated for robustness), fall back to one linear scan directly.
	for _, w := range nb {
		if w == v {
			return true
		}
	}
	return false
}

// Edges returns all undirected edges with U < V, in adjacency order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	for v := VID(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				es = append(es, Edge{v, w})
			}
		}
	}
	return es
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	name := g.Name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{n=%d m=%d}", name, g.NumVertices(), g.NumEdges())
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree (2m/n), or 0 for n == 0.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(n)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d,
// up to MaxDegree.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(VID(v))]++
	}
	return counts
}

// Validate is defined in validate.go together with the typed
// ValidationError it returns and the policy-carrying ValidateWith.

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Offs: make([]int64, len(g.Offs)),
		Adj:  make([]VID, len(g.Adj)),
		Name: g.Name,
	}
	copy(c.Offs, g.Offs)
	copy(c.Adj, g.Adj)
	return c
}

// Equal reports whether g and h have identical CSR structure (names are
// ignored).
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || len(g.Adj) != len(h.Adj) {
		return false
	}
	for i, o := range g.Offs {
		if h.Offs[i] != o {
			return false
		}
	}
	for i, a := range g.Adj {
		if h.Adj[i] != a {
			return false
		}
	}
	return true
}
