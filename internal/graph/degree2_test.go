package graph

import (
	"testing"
	"testing/quick"

	"spantree/internal/xrand"
)

// pathGraph returns the path 0-1-...-(n-1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(VID(i-1), VID(i))
	}
	return b.Build()
}

// cycleGraph returns the n-cycle.
func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(VID(i-1), VID(i))
	}
	if n > 2 {
		b.AddEdge(VID(n-1), 0)
	}
	return b.Build()
}

// bfsForest computes a reference spanning forest of g.
func bfsForest(g *Graph) []VID {
	n := g.NumVertices()
	parent := make([]VID, n)
	vis := make([]bool, n)
	for i := range parent {
		parent[i] = None
	}
	var q []VID
	for s := 0; s < n; s++ {
		if vis[s] {
			continue
		}
		vis[s] = true
		q = append(q[:0], VID(s))
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range g.Neighbors(v) {
				if !vis[w] {
					vis[w] = true
					parent[w] = v
					q = append(q, w)
				}
			}
		}
	}
	return parent
}

// checkForest verifies parent is a spanning forest of g (local copy to
// avoid an import cycle with the verify package).
func checkForest(t *testing.T, g *Graph, parent []VID) {
	t.Helper()
	n := g.NumVertices()
	if len(parent) != n {
		t.Fatalf("parent length %d != %d", len(parent), n)
	}
	roots := 0
	for v := 0; v < n; v++ {
		if parent[v] == None {
			roots++
			continue
		}
		if !g.HasEdge(VID(v), parent[v]) {
			t.Fatalf("tree edge {%d,%d} not in graph", v, parent[v])
		}
	}
	// Acyclic: walk up with a step budget.
	for v := 0; v < n; v++ {
		cur, steps := VID(v), 0
		for parent[cur] != None {
			cur = parent[cur]
			if steps++; steps > n {
				t.Fatalf("cycle in parent array near %d", v)
			}
		}
	}
	if want := NumComponents(g); roots != want {
		t.Fatalf("%d roots, want %d components", roots, want)
	}
}

func TestEliminateDegree2Chain(t *testing.T) {
	g := pathGraph(100)
	red := EliminateDegree2(g)
	if red.Reduced.NumVertices() != 2 {
		t.Fatalf("chain reduced to %d vertices, want 2 (the endpoints)", red.Reduced.NumVertices())
	}
	if red.NumEliminated() != 98 {
		t.Fatalf("eliminated %d, want 98", red.NumEliminated())
	}
	parent, err := red.ExpandForest(bfsForest(red.Reduced))
	if err != nil {
		t.Fatal(err)
	}
	checkForest(t, g, parent)
}

func TestEliminateDegree2Cycle(t *testing.T) {
	g := cycleGraph(50)
	red := EliminateDegree2(g)
	// A pure cycle keeps exactly one representative; the reduced graph
	// has no edges (the self-loop vanishes).
	if red.Reduced.NumVertices() != 1 || red.Reduced.NumEdges() != 0 {
		t.Fatalf("cycle reduced to n=%d m=%d, want 1 and 0",
			red.Reduced.NumVertices(), red.Reduced.NumEdges())
	}
	parent, err := red.ExpandForest(bfsForest(red.Reduced))
	if err != nil {
		t.Fatal(err)
	}
	checkForest(t, g, parent)
}

func TestEliminateDegree2ThetaGraph(t *testing.T) {
	// Two vertices joined by three internally-disjoint paths: parallel
	// chains between the same endpoints must not double-count the
	// reduced edge and unused chains must still span their interiors.
	b := NewBuilder(8)
	// Path A: 0-2-3-1; Path B: 0-4-5-1; Path C: 0-6-7-1.
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 1)
	b.AddEdge(0, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 1)
	b.AddEdge(0, 6)
	b.AddEdge(6, 7)
	b.AddEdge(7, 1)
	g := b.Build()
	red := EliminateDegree2(g)
	if red.Reduced.NumVertices() != 2 || red.Reduced.NumEdges() != 1 {
		t.Fatalf("theta reduced to n=%d m=%d, want 2 and 1",
			red.Reduced.NumVertices(), red.Reduced.NumEdges())
	}
	parent, err := red.ExpandForest(bfsForest(red.Reduced))
	if err != nil {
		t.Fatal(err)
	}
	checkForest(t, g, parent)
}

func TestEliminateDegree2DirectEdgePlusChain(t *testing.T) {
	// Endpoints joined directly AND via a degree-2 chain: the reduced
	// edge must be realized by the direct edge, and the chain interior
	// still spanned.
	b := NewBuilder(4)
	b.AddEdge(0, 1) // direct
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 1) // chain 0-2-3-1
	// Make endpoints non-degree-2 by adding stubs... 0 and 1 have degree
	// 2 now, which would eliminate them too; attach leaves.
	g := b.Build()
	red := EliminateDegree2(g)
	parent, err := red.ExpandForest(bfsForest(red.Reduced))
	if err != nil {
		t.Fatal(err)
	}
	checkForest(t, g, parent)
}

func TestEliminateDegree2NoDegree2(t *testing.T) {
	g := randomGraph(9, 40, 200) // dense: few degree-2 vertices
	red := EliminateDegree2(g)
	parent, err := red.ExpandForest(bfsForest(red.Reduced))
	if err != nil {
		t.Fatal(err)
	}
	checkForest(t, g, parent)
}

func TestEliminateDegree2Property(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		// Sparse densities maximize degree-2 chains.
		m := int(mRaw % 300)
		g := randomGraph(seed, n, m)
		red := EliminateDegree2(g)
		if err := red.Reduced.Validate(); err != nil {
			return false
		}
		parent, err := red.ExpandForest(bfsForest(red.Reduced))
		if err != nil {
			return false
		}
		// Full forest check.
		roots := 0
		for v := 0; v < n; v++ {
			p := parent[v]
			if p == None {
				roots++
				continue
			}
			if !g.HasEdge(VID(v), p) {
				return false
			}
		}
		if roots != NumComponents(g) {
			return false
		}
		// Acyclicity.
		for v := 0; v < n; v++ {
			cur, steps := VID(v), 0
			for parent[cur] != None {
				cur = parent[cur]
				if steps++; steps > n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateDegree2ChainStructures(t *testing.T) {
	// Caterpillar-ish: spine with leaves, ensuring mixed degrees.
	r := xrand.New(11)
	b := NewBuilder(60)
	for i := 1; i < 30; i++ {
		b.AddEdge(VID(i-1), VID(i))
	}
	for i := 30; i < 60; i++ {
		b.AddEdge(VID(r.Intn(30)), VID(i))
	}
	g := b.Build()
	red := EliminateDegree2(g)
	parent, err := red.ExpandForest(bfsForest(red.Reduced))
	if err != nil {
		t.Fatal(err)
	}
	checkForest(t, g, parent)
}

func TestExpandForestRejectsBadInput(t *testing.T) {
	red := EliminateDegree2(pathGraph(10))
	if _, err := red.ExpandForest(make([]VID, 99)); err == nil {
		t.Fatal("wrong-length parent accepted")
	}
	bad := bfsForest(red.Reduced)
	if len(bad) > 0 {
		bad[0] = 55
		if _, err := red.ExpandForest(bad); err == nil {
			t.Fatal("out-of-range parent accepted")
		}
	}
}
