package graph

// UnionFind is an array-based disjoint-set structure with union by rank
// and path halving. It is the independent connectivity oracle used by
// the verifier and by the Kruskal-style sequential baseline.
type UnionFind struct {
	parent []VID
	rank   []int8
	sets   int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]VID, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = VID(i)
	}
	return uf
}

// Find returns the representative of x's set, halving the path.
func (uf *UnionFind) Find(x VID) VID {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y, returning true if they were
// previously distinct.
func (uf *UnionFind) Union(x, y VID) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y VID) bool { return uf.Find(x) == uf.Find(y) }

// NumSets returns the current number of disjoint sets.
func (uf *UnionFind) NumSets() int { return uf.sets }

// Components labels each vertex of g with a component id in
// [0, numComponents), assigned in order of the smallest vertex in each
// component, and returns the label array plus the component count.
// Implemented with an iterative BFS so it is safe on deep graphs.
func Components(g *Graph) ([]VID, int) {
	n := g.NumVertices()
	comp := make([]VID, n)
	for i := range comp {
		comp[i] = None
	}
	next := VID(0)
	queue := make([]VID, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] != None {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], VID(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] == None {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// NumComponents returns the number of connected components of g.
func NumComponents(g *Graph) int {
	_, c := Components(g)
	return c
}

// IsConnected reports whether g is connected (true for the empty graph
// and single-vertex graphs).
func IsConnected(g *Graph) bool {
	return NumComponents(g) <= 1
}

// PseudoDiameter returns a lower bound on g's diameter via a double-BFS
// sweep from start (two BFS passes, returning the eccentricity found).
// Useful for characterizing workloads: the paper's pathological case for
// the work-stealing traversal is large-diameter (low-connectivity)
// graphs such as the degenerate chain.
func PseudoDiameter(g *Graph, start VID) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	far, _ := bfsFarthest(g, start)
	_, dist := bfsFarthest(g, far)
	return dist
}

func bfsFarthest(g *Graph, s VID) (VID, int) {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []VID{s}
	last, lastD := s, int32(0)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > lastD {
					lastD, last = dist[w], w
				}
				queue = append(queue, w)
			}
		}
	}
	return last, int(lastD)
}
