package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"spantree/internal/xrand"
)

// randomGraph builds an arbitrary canonical graph from fuzz inputs.
func randomGraph(seed uint64, n, m int) *Graph {
	r := xrand.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m && n > 1; i++ {
		b.AddEdge(r.Int31n(int32(n)), r.Int31n(int32(n)))
	}
	return b.Build()
}

func TestBuilderCanonicalizes(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1) // duplicate, reversed
	b.AddEdge(2, 2) // self-loop: dropped
	b.AddEdge(3, 2)
	b.AddEdge(2, 3) // duplicate
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 3) {
		t.Fatal("unexpected edges present")
	}
}

func TestHasEdgeUnsortedAdjacency(t *testing.T) {
	// Hand-built CSR with deliberately unsorted neighbor lists: the
	// binary search misses, so HasEdge must find the edge via the linear
	// fallback scan.
	g := &Graph{
		Offs: []int64{0, 3, 4, 5, 6},
		Adj:  []VID{3, 1, 2, 0, 0, 0},
	}
	for _, v := range []VID{1, 2, 3} {
		if !g.HasEdge(0, v) {
			t.Fatalf("HasEdge(0, %d) = false on unsorted adjacency", v)
		}
		if !g.HasEdge(v, 0) {
			t.Fatalf("HasEdge(%d, 0) = false", v)
		}
	}
	if g.HasEdge(1, 2) || g.HasEdge(0, 0) {
		t.Fatal("unexpected edges present")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestBuilderReusable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.NumEdges() != 1 || g2.NumEdges() != 2 {
		t.Fatalf("builds saw %d and %d edges, want 1 and 2", g1.NumEdges(), g2.NumEdges())
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(2)
	first := b.Grow(3)
	if first != 2 || b.NumVertices() != 5 {
		t.Fatalf("Grow gave first=%d n=%d", first, b.NumVertices())
	}
	b.AddEdge(0, 4)
	if err := b.Build().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("got %d edges, want 1", g.NumEdges())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Graph {
		g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := []struct {
		name    string
		corrupt func(*Graph)
		wantSub string
	}{
		{"bad offs0", func(g *Graph) { g.Offs[0] = 1 }, "Offs[0]"},
		{"bad final off", func(g *Graph) { g.Offs[3] = 99 }, "Offs[n]"},
		{"nonmonotone", func(g *Graph) { g.Offs[1], g.Offs[2] = g.Offs[2], g.Offs[1] }, ""},
		{"self-loop", func(g *Graph) { g.Adj[0] = 0 }, ""},
		{"out of range", func(g *Graph) { g.Adj[0] = 77 }, "out of range"},
		{"asymmetric", func(g *Graph) { g.Adj[0] = 2 }, ""},
	}
	for _, tc := range cases {
		g := mk()
		tc.corrupt(g)
		err := g.Validate()
		if err == nil {
			t.Fatalf("%s: corruption not detected", tc.name)
		}
		if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestValidateProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%300) + 1
		m := int(mRaw % 1000)
		return randomGraph(seed, n, m).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := randomGraph(1, 50, 120)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	if len(c.Adj) > 0 {
		c.Adj[0] = (c.Adj[0] + 1) % int32(c.NumVertices())
		if g.Equal(c) {
			t.Fatal("mutated clone still equal")
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if g.AvgDegree() != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", g.AvgDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestUnionDisjoint(t *testing.T) {
	a, _ := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	b, _ := FromEdges(2, []Edge{{0, 1}})
	u := Union(a, b)
	if u.NumVertices() != 5 || u.NumEdges() != 3 {
		t.Fatalf("union has n=%d m=%d", u.NumVertices(), u.NumEdges())
	}
	if !u.HasEdge(3, 4) || u.HasEdge(2, 3) {
		t.Fatal("union wiring wrong")
	}
	if NumComponents(u) != 2 {
		t.Fatalf("union components = %d, want 2", NumComponents(u))
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := NewBuilder(n).Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.NumVertices() != n || g.NumEdges() != 0 {
			t.Fatalf("n=%d: got n=%d m=%d", n, g.NumVertices(), g.NumEdges())
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 60, 150)
		back, err := FromEdges(g.NumVertices(), g.Edges())
		return err == nil && g.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
