// Package bicc computes biconnected components, articulation points and
// bridges of an undirected graph — the application the paper's very
// first sentence motivates spanning trees with ("finding a spanning tree
// of a graph is an important building block for many graph algorithms,
// for example, biconnected components and ear decomposition").
//
// The implementation is the classic Hopcroft-Tarjan low-link algorithm
// run over a DFS spanning tree, written iteratively (explicit stacks) so
// it handles the library's degenerate chain inputs without overflowing
// the goroutine stack. The spanning-forest connection is direct: the DFS
// tree is a spanning tree of each component, low-links are computed
// against it, and every non-tree edge is a back edge.
package bicc

import (
	"sort"

	"spantree/internal/graph"
)

// Result holds the biconnected decomposition of a graph.
type Result struct {
	// CompOfEdge maps each undirected edge (in g.Edges() order) to its
	// biconnected component id in [0, NumComponents).
	CompOfEdge []int32
	// NumComponents is the number of biconnected components.
	NumComponents int
	// ArticulationPoints lists the cut vertices in increasing order.
	ArticulationPoints []graph.VID
	// Bridges lists the cut edges (canonical U < V), sorted.
	Bridges []graph.Edge
	// edgeIndex maps a canonical edge to its index in g.Edges() order.
	edgeIndex map[graph.Edge]int
}

// EdgeComponent returns the biconnected component id of edge {u,v}, or
// -1 if the edge does not exist.
func (r *Result) EdgeComponent(u, v graph.VID) int32 {
	i, ok := r.edgeIndex[graph.Edge{U: u, V: v}.Canon()]
	if !ok {
		return -1
	}
	return r.CompOfEdge[i]
}

// IsArticulation reports whether v is a cut vertex.
func (r *Result) IsArticulation(v graph.VID) bool {
	i := sort.Search(len(r.ArticulationPoints), func(i int) bool {
		return r.ArticulationPoints[i] >= v
	})
	return i < len(r.ArticulationPoints) && r.ArticulationPoints[i] == v
}

// Compute returns the biconnected decomposition of g.
func Compute(g *graph.Graph) *Result {
	n := g.NumVertices()
	edges := g.Edges()
	edgeIndex := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		edgeIndex[e] = i
	}

	res := &Result{
		CompOfEdge: make([]int32, len(edges)),
		edgeIndex:  edgeIndex,
	}
	for i := range res.CompOfEdge {
		res.CompOfEdge[i] = -1
	}

	disc := make([]int32, n) // discovery time, 0 = unvisited
	low := make([]int32, n)  // low-link
	parent := make([]graph.VID, n)
	childCount := make([]int32, n) // DFS children of each vertex
	isArt := make([]bool, n)
	for i := range parent {
		parent[i] = graph.None
	}

	// Explicit DFS stack: frame = (vertex, index into its neighbor list).
	type frame struct {
		v  graph.VID
		ni int
	}
	var stack []frame
	// Edge stack for component extraction.
	var estack []graph.Edge
	time := int32(0)
	comp := int32(0)

	popComponent := func(until graph.Edge) {
		for len(estack) > 0 {
			e := estack[len(estack)-1]
			estack = estack[:len(estack)-1]
			res.CompOfEdge[edgeIndex[e]] = comp
			if e == until {
				break
			}
		}
		comp++
	}

	for s := 0; s < n; s++ {
		if disc[s] != 0 {
			continue
		}
		time++
		disc[s] = time
		low[s] = time
		stack = append(stack[:0], frame{graph.VID(s), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			nb := g.Neighbors(v)
			if f.ni < len(nb) {
				w := nb[f.ni]
				f.ni++
				switch {
				case disc[w] == 0:
					// Tree edge: descend.
					parent[w] = v
					childCount[v]++
					time++
					disc[w] = time
					low[w] = time
					estack = append(estack, graph.Edge{U: v, V: w}.Canon())
					stack = append(stack, frame{w, 0})
				case w != parent[v] && disc[w] < disc[v]:
					// Back edge (visited ancestor): push once, update low.
					estack = append(estack, graph.Edge{U: v, V: w}.Canon())
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			// Done with v: propagate low-link into the parent and close
			// components at articulation boundaries.
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p == graph.None {
				continue
			}
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= disc[p] {
				// p separates v's subtree: everything pushed since the
				// tree edge {p,v} forms one biconnected component.
				popComponent(graph.Edge{U: p, V: v}.Canon())
				if parent[p] != graph.None || childCount[p] > 1 {
					isArt[p] = true
				}
			}
			if low[v] > disc[p] {
				res.Bridges = append(res.Bridges, graph.Edge{U: p, V: v}.Canon())
			}
		}
	}
	res.NumComponents = int(comp)
	for v := 0; v < n; v++ {
		if isArt[v] {
			res.ArticulationPoints = append(res.ArticulationPoints, graph.VID(v))
		}
	}
	sort.Slice(res.Bridges, func(i, j int) bool {
		if res.Bridges[i].U != res.Bridges[j].U {
			return res.Bridges[i].U < res.Bridges[j].U
		}
		return res.Bridges[i].V < res.Bridges[j].V
	})
	return res
}
