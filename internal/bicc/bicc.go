// Package bicc computes biconnected components, articulation points and
// bridges of an undirected graph — the application the paper's very
// first sentence motivates spanning trees with ("finding a spanning tree
// of a graph is an important building block for many graph algorithms,
// for example, biconnected components and ear decomposition").
//
// The implementation is the classic Hopcroft-Tarjan low-link algorithm
// run over a DFS spanning tree, written iteratively (explicit stacks) so
// it handles the library's degenerate chain inputs without overflowing
// the goroutine stack. The spanning-forest connection is direct: the DFS
// tree is a spanning tree of each component, low-links are computed
// against it, and every non-tree edge is a back edge.
//
// ComputeP parallelizes across connected components on the shared
// dynamic scheduler: components are vertex- and edge-disjoint, so the
// per-vertex and per-edge arrays can be shared while each component's
// DFS runs independently. Component ids are renumbered afterward to the
// exact sequence the sequential scan would produce, so Compute and
// ComputeP return identical results.
package bicc

import (
	"sort"

	"spantree/internal/graph"
	"spantree/internal/par"
)

// Options configures a parallel run.
type Options struct {
	// NumProcs is the number of virtual processors p (>= 1).
	NumProcs int
	// ChunkPolicy and ChunkSize configure the shared dynamic scheduler
	// (par.ForDynamic) distributing whole components to workers — the
	// same -chunk knobs as every other parallel algorithm here.
	ChunkPolicy par.ChunkPolicy
	ChunkSize   int
}

// Result holds the biconnected decomposition of a graph.
type Result struct {
	// CompOfEdge maps each undirected edge (in g.Edges() order) to its
	// biconnected component id in [0, NumComponents).
	CompOfEdge []int32
	// NumComponents is the number of biconnected components.
	NumComponents int
	// ArticulationPoints lists the cut vertices in increasing order.
	ArticulationPoints []graph.VID
	// Bridges lists the cut edges (canonical U < V), sorted.
	Bridges []graph.Edge
	// edgeIndex maps a canonical edge to its index in g.Edges() order.
	edgeIndex map[graph.Edge]int
}

// EdgeComponent returns the biconnected component id of edge {u,v}, or
// -1 if the edge does not exist.
func (r *Result) EdgeComponent(u, v graph.VID) int32 {
	i, ok := r.edgeIndex[graph.Edge{U: u, V: v}.Canon()]
	if !ok {
		return -1
	}
	return r.CompOfEdge[i]
}

// IsArticulation reports whether v is a cut vertex.
func (r *Result) IsArticulation(v graph.VID) bool {
	i := sort.Search(len(r.ArticulationPoints), func(i int) bool {
		return r.ArticulationPoints[i] >= v
	})
	return i < len(r.ArticulationPoints) && r.ArticulationPoints[i] == v
}

// Compute returns the biconnected decomposition of g.
func Compute(g *graph.Graph) *Result {
	return ComputeP(g, Options{NumProcs: 1})
}

// biccScratch is the shared per-vertex working state. Connected
// components partition the vertices, so concurrent component DFSs touch
// disjoint slots and the arrays can be shared without synchronization.
type biccScratch struct {
	disc       []int32 // discovery time, 0 = unvisited (local to the component)
	low        []int32 // low-link
	parent     []graph.VID
	childCount []int32 // DFS children of each vertex
	isArt      []bool
}

// ComputeP returns the biconnected decomposition of g, distributing
// whole connected components over p virtual processors. The result is
// identical to Compute's.
func ComputeP(g *graph.Graph, opt Options) *Result {
	if opt.NumProcs < 1 {
		opt.NumProcs = 1
	}
	n := g.NumVertices()
	edges := g.Edges()
	edgeIndex := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		edgeIndex[e] = i
	}

	res := &Result{
		CompOfEdge: make([]int32, len(edges)),
		edgeIndex:  edgeIndex,
	}
	for i := range res.CompOfEdge {
		res.CompOfEdge[i] = -1
	}

	sc := &biccScratch{
		disc:       make([]int32, n),
		low:        make([]int32, n),
		parent:     make([]graph.VID, n),
		childCount: make([]int32, n),
		isArt:      make([]bool, n),
	}
	for i := range sc.parent {
		sc.parent[i] = graph.None
	}

	// One work item per connected component, started from its smallest
	// vertex — the same start the sequential ascending scan would pick,
	// so each component's local DFS numbering matches the sequential one.
	compOf, numComps := graph.Components(g)
	starts := make([]graph.VID, numComps)
	for v := n - 1; v >= 0; v-- {
		starts[compOf[v]] = graph.VID(v)
	}

	// Per-component outputs, merged deterministically after the run.
	blockCount := make([]int32, numComps)
	bridgesOf := make([][]graph.Edge, numComps)

	team := par.NewTeam(opt.NumProcs, nil).Chunk(opt.ChunkPolicy, opt.ChunkSize)
	team.Run(func(c *par.Ctx) {
		c.ForDynamic(numComps, func(ci int) {
			blockCount[ci], bridgesOf[ci] = dfsComponent(g, starts[ci], sc, res.CompOfEdge, edgeIndex)
		})
	})

	// Renumber each component's local block ids into the global sequence
	// the sequential scan produces: components in smallest-vertex order
	// (exactly graph.Components' id order) own contiguous id blocks.
	base := make([]int32, numComps)
	total := int32(0)
	for ci := 0; ci < numComps; ci++ {
		base[ci] = total
		total += blockCount[ci]
	}
	res.NumComponents = int(total)
	for i := range res.CompOfEdge {
		if res.CompOfEdge[i] >= 0 {
			res.CompOfEdge[i] += base[compOf[edges[i].U]]
		}
	}
	for _, bs := range bridgesOf {
		res.Bridges = append(res.Bridges, bs...)
	}
	for v := 0; v < n; v++ {
		if sc.isArt[v] {
			res.ArticulationPoints = append(res.ArticulationPoints, graph.VID(v))
		}
	}
	sort.Slice(res.Bridges, func(i, j int) bool {
		if res.Bridges[i].U != res.Bridges[j].U {
			return res.Bridges[i].U < res.Bridges[j].U
		}
		return res.Bridges[i].V < res.Bridges[j].V
	})
	return res
}

// dfsComponent runs the iterative Hopcroft-Tarjan DFS over one connected
// component, writing component-local block ids into compOfEdge and cut
// vertices into sc.isArt. It returns the number of blocks found and the
// component's bridges.
func dfsComponent(g *graph.Graph, s graph.VID, sc *biccScratch,
	compOfEdge []int32, edgeIndex map[graph.Edge]int) (int32, []graph.Edge) {
	// Explicit DFS stack: frame = (vertex, index into its neighbor list).
	type frame struct {
		v  graph.VID
		ni int
	}
	var stack []frame
	// Edge stack for component extraction.
	var estack []graph.Edge
	var bridges []graph.Edge
	time := int32(0)
	comp := int32(0)

	popComponent := func(until graph.Edge) {
		for len(estack) > 0 {
			e := estack[len(estack)-1]
			estack = estack[:len(estack)-1]
			compOfEdge[edgeIndex[e]] = comp
			if e == until {
				break
			}
		}
		comp++
	}

	time++
	sc.disc[s] = time
	sc.low[s] = time
	stack = append(stack, frame{s, 0})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		nb := g.Neighbors(v)
		if f.ni < len(nb) {
			w := nb[f.ni]
			f.ni++
			switch {
			case sc.disc[w] == 0:
				// Tree edge: descend.
				sc.parent[w] = v
				sc.childCount[v]++
				time++
				sc.disc[w] = time
				sc.low[w] = time
				estack = append(estack, graph.Edge{U: v, V: w}.Canon())
				stack = append(stack, frame{w, 0})
			case w != sc.parent[v] && sc.disc[w] < sc.disc[v]:
				// Back edge (visited ancestor): push once, update low.
				estack = append(estack, graph.Edge{U: v, V: w}.Canon())
				if sc.disc[w] < sc.low[v] {
					sc.low[v] = sc.disc[w]
				}
			}
			continue
		}
		// Done with v: propagate low-link into the parent and close
		// components at articulation boundaries.
		stack = stack[:len(stack)-1]
		p := sc.parent[v]
		if p == graph.None {
			continue
		}
		if sc.low[v] < sc.low[p] {
			sc.low[p] = sc.low[v]
		}
		if sc.low[v] >= sc.disc[p] {
			// p separates v's subtree: everything pushed since the
			// tree edge {p,v} forms one biconnected component.
			popComponent(graph.Edge{U: p, V: v}.Canon())
			if sc.parent[p] != graph.None || sc.childCount[p] > 1 {
				sc.isArt[p] = true
			}
		}
		if sc.low[v] > sc.disc[p] {
			bridges = append(bridges, graph.Edge{U: p, V: v}.Canon())
		}
	}
	return comp, bridges
}
